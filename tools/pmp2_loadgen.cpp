// pmp2_loadgen — multi-stream serving load generator (docs/SERVING.md).
//
// Replays the Table-1 stream matrix through one DecodeServer at a
// configurable session count and arrival pattern, optionally corrupting
// chosen sessions with the deterministic fault injector (src/inject), and
// emits a pmp2-bench-report/1 with aggregate and per-session p50/p95/p99
// queue-inclusive frame latency and pictures/sec. This is the serve CI
// stage's harness: the process exits nonzero on any hang, admission
// anomaly, frame-pool leak, or — with --verify-isolation — any clean
// session whose checksum differs from a solo (single-session) run of the
// same stream, which is the byte-exactness half of session isolation.
//
//   pmp2_loadgen --sessions 8 --workers 4
//   pmp2_loadgen --sessions 12 --corrupt 2,5 --fault-seed 3
//                --verify-isolation --report-out serve.json
//
// Streams: every *.m2v under --streams when the directory has any;
// otherwise the 16 Table-1 specs are generated (and cached) via the bench
// stream cache. Session i replays stream i mod streams.
//
// Arrival patterns (--arrival): "burst" submits every session up front
// (peak concurrency = session count, the admission stress case);
// "staggered" spaces submissions --interval-ms apart (steady-state
// serving, exercises admit-from-wait-list as sessions finish).
//
// Violations (any => exit 1):
//   * a session hangs (watchdog fired) or the whole run exceeds its wall
//     budget;
//   * a clean session does not finish ok, or is rejected by admission;
//   * --verify-isolation: a clean session's checksum != its solo-run
//     checksum (a corrupt neighbor leaked into its output);
//   * a corrupt session fails without leaving error records;
//   * frame-pool leak: a session tears down with idle != misses.
//
// Exit codes: 0 clean, 1 violations, 2 operational failure (no streams).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "inject/fault.h"
#include "io/mapped_file.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "parallel/gop_decoder.h"
#include "serve/server.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace pmp2;
namespace fs = std::filesystem;

namespace {

struct LoadStream {
  std::string name;
  io::MappedFile file;             // file-backed streams (mmap)
  std::vector<std::uint8_t> data;  // generated streams

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return file.size() > 0 ? file.bytes()
                           : std::span<const std::uint8_t>(data);
  }
};

std::vector<LoadStream> collect_streams(const Flags& flags) {
  std::vector<LoadStream> out;
  const std::string dir = flags.get_string("streams", "bench_streams");
  std::error_code ec;
  if (fs::is_directory(dir, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".m2v") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      LoadStream s;
      s.name = path.filename().string();
      if (s.file.open(path.string()) && s.file.size() > 0) {
        out.push_back(std::move(s));
      }
    }
  }
  if (!out.empty()) return out;
  const auto pictures = static_cast<int>(flags.get_int("pictures", 0));
  for (auto spec : streamgen::table1_specs(0)) {
    spec.pictures =
        pictures > 0 ? pictures : bench::default_pictures(spec.width);
    if (spec.pictures < spec.gop_size) spec.pictures = spec.gop_size;
    LoadStream s;
    s.name = spec.name();
    s.data = bench::load_or_generate(spec);
    out.push_back(std::move(s));
  }
  return out;
}

/// Parses "1,4,7" into indices; silently drops malformed fields.
std::vector<int> parse_index_list(const std::string& text) {
  std::vector<int> out;
  std::stringstream ss(text);
  std::string field;
  while (std::getline(ss, field, ',')) {
    try {
      out.push_back(std::stoi(field));
    } catch (...) {
    }
  }
  return out;
}

/// One planned session of the replay.
struct SessionPlan {
  int index = 0;
  int stream = 0;            // index into the stream matrix
  bool corrupt = false;
  inject::FaultSpec fault;
  std::vector<std::uint8_t> corrupted;  // owns the faulted copy
  serve::SessionId id = -1;
  serve::SessionResult result;

  [[nodiscard]] std::span<const std::uint8_t> bytes(
      const std::vector<LoadStream>& streams) const {
    return corrupt ? std::span<const std::uint8_t>(corrupted)
                   : streams[static_cast<std::size_t>(stream)].bytes();
  }
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::apply_kernels_flag(flags);
  const auto sessions = static_cast<int>(flags.get_int("sessions", 8));
  const auto workers = static_cast<int>(flags.get_int("workers", 4));
  const std::string arrival = flags.get_string("arrival", "burst");
  const auto interval_ms = flags.get_int("interval-ms", 20);
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));
  const bool verify_isolation = flags.get_bool("verify-isolation", false);
  const std::vector<int> corrupt = parse_index_list(
      flags.get_string("corrupt", ""));
  const std::int64_t watchdog_ns =
      flags.get_int("watchdog-ms", 10'000) * std::int64_t{1'000'000};
  const auto max_queued_gops =
      static_cast<std::size_t>(flags.get_int("max-queued-gops", 4));
  const double capacity = flags.get_double("capacity", 0.0);

  if (sessions <= 0 || workers <= 0) {
    std::fprintf(stderr, "pmp2_loadgen: bad --sessions/--workers\n");
    return 2;
  }
  if (arrival != "burst" && arrival != "staggered") {
    std::fprintf(stderr, "pmp2_loadgen: unknown --arrival %s\n",
                 arrival.c_str());
    return 2;
  }

  std::vector<LoadStream> streams = collect_streams(flags);
  if (streams.empty()) {
    std::fprintf(stderr, "pmp2_loadgen: no streams to replay\n");
    return 2;
  }

  // Plan the sessions: session i replays stream i mod streams, corrupted
  // when listed in --corrupt (deterministic fault per session index).
  std::vector<SessionPlan> plans(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    SessionPlan& p = plans[static_cast<std::size_t>(i)];
    p.index = i;
    p.stream = i % static_cast<int>(streams.size());
    if (std::find(corrupt.begin(), corrupt.end(), i) != corrupt.end()) {
      p.corrupt = true;
      p.fault = inject::plan_fault(fault_seed,
                                   static_cast<std::uint64_t>(i));
      p.corrupted = inject::apply_fault(
          streams[static_cast<std::size_t>(p.stream)].bytes(), p.fault);
    }
  }

  // Solo baselines for --verify-isolation: the quarantine-on GOP decoder
  // is byte-identical to a server session by construction (both run
  // decode_gop/decode_one_picture), so its checksum is the "this stream
  // decoded alone" reference a clean session must reproduce under load.
  std::map<int, std::uint64_t> solo_checksum;
  if (verify_isolation) {
    for (const auto& p : plans) {
      if (p.corrupt || solo_checksum.count(p.stream)) continue;
      parallel::GopDecoderConfig config;
      config.workers = workers;
      config.quarantine_gops = true;
      config.watchdog_ns = watchdog_ns;
      const auto solo = parallel::GopParallelDecoder(config).decode(
          streams[static_cast<std::size_t>(p.stream)].bytes());
      if (!solo.ok) {
        std::fprintf(stderr, "pmp2_loadgen: solo decode failed for %s\n",
                     streams[static_cast<std::size_t>(p.stream)]
                         .name.c_str());
        return 2;
      }
      solo_checksum[p.stream] = solo.checksum;
    }
  }

  serve::ServerConfig server_config;
  server_config.workers = workers;
  server_config.watchdog_ns = watchdog_ns;
  server_config.admission.capacity = capacity;
  // Over-capacity sessions wait rather than bounce: the replay measures
  // serving latency, not admission rejections.
  server_config.admission.max_queued = sessions;

  std::printf("pmp2_loadgen: %d sessions over %zu streams, %d workers, "
              "%s arrival%s\n",
              sessions, streams.size(), workers, arrival.c_str(),
              verify_isolation ? ", isolation verify" : "");

  WallTimer wall;
  serve::DecodeServer server(server_config);
  for (auto& p : plans) {
    if (arrival == "staggered" && p.index > 0 && interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    serve::SessionConfig sc;
    sc.name = streams[static_cast<std::size_t>(p.stream)].name +
              (p.corrupt ? "+" + p.fault.name() : "");
    sc.max_queued_gops = max_queued_gops;
    p.id = server.submit(p.bytes(streams), std::move(sc));
  }
  for (auto& p : plans) p.result = server.wait(p.id);
  const double wall_s = wall.elapsed_s();
  const parallel::WorkerLoadSummary load = server.load_summary();

  // Violation checks.
  int violations = 0;
  auto violation = [&](const SessionPlan& p, const char* what) {
    std::fprintf(stderr, "VIOLATION %s: session=%d stream=%s%s state=%s\n",
                 what, p.index,
                 streams[static_cast<std::size_t>(p.stream)].name.c_str(),
                 p.corrupt ? ("+" + p.fault.name()).c_str() : "",
                 std::string(serve::session_state_name(p.result.state))
                     .c_str());
    ++violations;
  };
  obs::HistogramSnapshot aggregate_latency;
  std::int64_t pictures_total = 0;
  for (const auto& p : plans) {
    const serve::SessionResult& r = p.result;
    pictures_total += r.pictures_delivered;
    aggregate_latency.add(r.latency);
    if (r.hung) violation(p, "hang");
    if (r.state == serve::SessionState::kRejected) {
      violation(p, "rejected");
      continue;
    }
    if (!p.corrupt) {
      if (!r.ok) violation(p, "clean session failed");
      if (verify_isolation && r.ok &&
          r.checksum != solo_checksum[p.stream]) {
        violation(p, "isolation checksum");
      }
    } else if (!r.ok && !r.hung && r.errors.empty() && r.pictures > 0) {
      violation(p, "unexplained corrupt failure");
    }
    if (r.pool_idle != r.pool_misses) violation(p, "frame-pool leak");
  }

  // Per-session table + report.
  obs::RunReport report("pmp2_loadgen", "multi-stream serving replay");
  report.set_meta("sessions", sessions);
  report.set_meta("workers", workers);
  report.set_meta("arrival", arrival);
  report.set_meta("corrupt_sessions",
                  static_cast<std::int64_t>(corrupt.size()));
  report.set_meta("verify_isolation", verify_isolation);
  report.set_meta("violations", violations);
  report.set_meta("wall_s", wall_s);
  report.set_meta("pictures_per_second", wall_s > 0 ? pictures_total / wall_s : 0.0);
  report.set_meta("latency_p50_ms", aggregate_latency.percentile(0.50) / 1e6);
  report.set_meta("latency_p95_ms", aggregate_latency.percentile(0.95) / 1e6);
  report.set_meta("latency_p99_ms", aggregate_latency.percentile(0.99) / 1e6);
  report.set_meta("pool_utilization", load.utilization);
  bench::set_kernel_identity(report);

  std::printf("\n%-40s %-9s %8s %8s %9s %9s %9s\n", "session", "state",
              "pics", "pics/s", "p50 ms", "p95 ms", "p99 ms");
  for (const auto& p : plans) {
    const serve::SessionResult& r = p.result;
    const std::string name =
        streams[static_cast<std::size_t>(p.stream)].name +
        (p.corrupt ? "+fault" : "");
    std::printf("%-40s %-9s %8d %8.1f %9.2f %9.2f %9.2f\n", name.c_str(),
                std::string(serve::session_state_name(r.state)).c_str(),
                r.pictures_delivered, r.pics_per_s(),
                r.latency.percentile(0.50) / 1e6,
                r.latency.percentile(0.95) / 1e6,
                r.latency.percentile(0.99) / 1e6);
    report.add_row()
        .set("session", static_cast<std::int64_t>(p.index))
        .set("stream", name)
        .set("state",
             std::string(serve::session_state_name(r.state)))
        .set("corrupt", p.corrupt)
        .set("ok", r.ok)
        .set("pictures", r.pictures_delivered)
        .set("pictures_per_second", r.pics_per_s())
        .set("wall_s", r.wall_s)
        .set("queued_s", r.queued_s)
        .set("latency_p50_ms", r.latency.percentile(0.50) / 1e6)
        .set("latency_p95_ms", r.latency.percentile(0.95) / 1e6)
        .set("latency_p99_ms", r.latency.percentile(0.99) / 1e6)
        .set("concealed_slices", r.concealed_slices)
        .set("quarantined_gops", r.quarantined_gops)
        .set("exploded_gops", r.exploded_gops)
        .set("gop_mode_gops", r.gop_mode_gops)
        .set("predicted_load", r.profile.predicted_load);
  }
  std::printf("\n%d sessions in %.2fs (%.1f pics/s aggregate), "
              "utilization %.2f, %d violations\n",
              sessions, wall_s,
              wall_s > 0 ? pictures_total / wall_s : 0.0,
              load.utilization, violations);

  const int finish_rc = bench::finish(flags, report);
  if (finish_rc != 0) return finish_rc;
  return violations > 0 ? 1 : 0;
}
