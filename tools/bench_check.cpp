// bench_check — bench-report regression gate and suite aggregator.
//
// compare (default): diffs a candidate report/suite against a baseline;
// exits nonzero when any measurement regresses beyond tolerance or any
// baseline row disappears.
//
//   bench_check BASELINE.json CANDIDATE.json
//   bench_check BASELINE.json CANDIDATE.json --tolerance=0.15
//   bench_check BASELINE.json CANDIDATE.json --tolerance-wall_s=0.3
//
// merge: validates per-bench --report-out documents and aggregates them
// into one pmp2-bench-suite/1 document (what scripts/bench_all.sh writes
// as BENCH_parallel.json):
//
//   bench_check --merge --out=BENCH_parallel.json r1.json r2.json ...
//
// Exit codes: 0 passed, 1 usage/IO error, 2 regression or coverage loss.
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/analysis/bench_compare.h"
#include "util/flags.h"

using namespace pmp2;
using namespace pmp2::obs::analysis;

namespace {

int run_merge(const Flags& flags) {
  const std::string out_path = flags.get_string("out", "");
  if (out_path.empty() || flags.positional().empty()) {
    std::cerr << "usage: bench_check --merge --out=SUITE.json "
                 "REPORT.json...\n";
    return 1;
  }
  std::vector<SuiteEntry> entries;
  for (const std::string& path : flags.positional()) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::cerr << "bench_check: cannot open " << path << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    entries.push_back({path, buf.str()});
  }
  std::ofstream out(out_path, std::ios::binary);
  if (!out) {
    std::cerr << "bench_check: cannot write " << out_path << "\n";
    return 1;
  }
  std::string error;
  if (!write_suite(out, entries, &error)) {
    std::cerr << "bench_check: " << error << "\n";
    return 1;
  }
  std::cout << "merged " << entries.size() << " report(s) into " << out_path
            << "\n";
  return 0;
}

int run_compare(const Flags& flags) {
  const auto& paths = flags.positional();
  if (paths.size() != 2) {
    std::cerr << "usage: bench_check BASELINE.json CANDIDATE.json "
                 "[--tolerance=F] [--tolerance-METRIC=F] "
                 "[--improvements] [--advisory-metrics]\n";
    return 1;
  }
  CompareOptions options;
  options.default_tolerance =
      flags.get_double("tolerance", options.default_tolerance);
  options.report_improvements = flags.get_bool("improvements", false);
  options.advisory_metrics = flags.get_bool("advisory-metrics", false);
  // Per-metric overrides: --tolerance-wall_s=0.3 etc.
  for (const std::string& name : flags.unused()) {
    constexpr const char* kPrefix = "tolerance-";
    if (name.rfind(kPrefix, 0) == 0) {
      const std::string metric = name.substr(std::string(kPrefix).size());
      options.tolerance[metric] =
          flags.get_double(name, options.default_tolerance);
    }
  }
  const CompareResult result =
      compare_report_files(paths[0], paths[1], options);
  write_compare_text(std::cout, result);
  if (!result.ok) return 1;
  return result.passed() ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int rc = flags.get_bool("merge", false) ? run_merge(flags)
                                                : run_compare(flags);
  for (const std::string& f : flags.unused()) {
    std::cerr << "bench_check: unknown flag " << f << "\n";
  }
  return rc;
}
