// pmp2_prof — profiling front door (docs/OBSERVABILITY.md, "Hardware
// profiling").
//
//   pmp2_prof --probe                 # host counter capability report
//   pmp2_prof --check PROFILE.folded  # validate a collapsed-stack file
//   pmp2_prof PROFILE.folded          # top stacks table (--top=N)
//
// Collapsed-stack files come from parallel_playback --prof-out and are the
// "folded" format flamegraph tooling consumes: one "frame;frame;frame N"
// line per unique stack. --check parses strictly and exits 0/1, so CI can
// assert the sampler's output stays well-formed.
//
// Exit codes: 0 ok, 1 usage or failed check, 2 I/O failure.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "obs/prof/counters.h"
#include "obs/prof/sampling.h"
#include "util/flags.h"

using namespace pmp2;
using namespace pmp2::obs::prof;

namespace {

int probe() {
  const HostProfile host = probe_host();
  std::cout << "kernel_release      " << host.kernel_release << "\n";
  std::cout << "perf_event_paranoid " << host.perf_event_paranoid << "\n";
  std::cout << "perf_available      " << (host.perf_available ? "yes" : "no")
            << "\n";
  std::cout << "hw_available        " << (host.hw_available ? "yes" : "no")
            << "\n";
  std::cout << "counter_source      " << host.source << "\n";
  std::cout << "counters            ";
  bool first = true;
  for (int i = 0; i < kCounterCount; ++i) {
    const auto c = static_cast<Counter>(i);
    if (!(host.counter_mask & counter_bit(c))) continue;
    if (!first) std::cout << " ";
    std::cout << counter_name(c);
    first = false;
  }
  if (first) std::cout << "(none)";
  std::cout << "\n";
  return 0;
}

bool load_collapsed(const std::string& path, CollapsedProfile& out,
                    std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open " + path;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return SamplingProfiler::parse_collapsed(text.str(), &out, &error);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto paths = flags.positional();

  if (flags.get_bool("probe", false)) return probe();

  const std::string check_path = flags.get_string("check", "");
  if (!check_path.empty()) {
    CollapsedProfile profile;
    std::string error;
    if (!load_collapsed(check_path, profile, error)) {
      std::cerr << "pmp2_prof: " << error << "\n";
      return 1;
    }
    std::cout << check_path << ": ok (" << profile.stacks.size()
              << " stacks, " << profile.total << " samples";
    if (profile.dropped > 0) std::cout << ", " << profile.dropped
                                       << " dropped";
    std::cout << ")\n";
    return 0;
  }

  if (paths.size() != 1) {
    std::cerr << "usage: pmp2_prof [--probe] [--check FILE.folded] "
                 "[FILE.folded [--top=N]]\n";
    return 1;
  }

  CollapsedProfile profile;
  std::string error;
  if (!load_collapsed(paths[0], profile, error)) {
    std::cerr << "pmp2_prof: " << error << "\n";
    return 2;
  }

  std::vector<std::pair<std::string, std::uint64_t>> rows(
      profile.stacks.begin(), profile.stacks.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  const int top = std::max(1, static_cast<int>(flags.get_int("top", 20)));
  if (rows.size() > static_cast<std::size_t>(top)) {
    rows.resize(static_cast<std::size_t>(top));
  }

  std::cout << "samples " << profile.total << "  unique stacks "
            << profile.stacks.size() << "\n";
  for (const auto& [stack, count] : rows) {
    const double pct =
        profile.total > 0
            ? 100.0 * static_cast<double>(count) /
                  static_cast<double>(profile.total)
            : 0.0;
    char head[32];
    std::snprintf(head, sizeof head, "%8llu %5.1f%%  ",
                  static_cast<unsigned long long>(count), pct);
    std::cout << head << stack << "\n";
  }

  for (const std::string& f : flags.unused()) {
    std::cerr << "pmp2_prof: unknown flag " << f << "\n";
  }
  return 0;
}
