// pmp2_top: terminal monitor for the live telemetry snapshot stream
// (docs/OBSERVABILITY.md, "Live telemetry").
//
// Tails an NDJSON file or fifo produced by --live-out (parallel_playback,
// pmp2_soak) and renders each pmp2-live/1 snapshot as a terminal frame:
// per-worker utilization bars, trailing-window latency percentiles, queue
// depth and active alerts. Three modes:
//
//   pmp2_top live.ndjson                 follow (tail -f style; default)
//   pmp2_top --once live.ndjson          render the last snapshot and exit
//   pmp2_top --replay live.ndjson        render every snapshot in order
//
// --replay with --delay-ms=N paces the frames (0 = as fast as possible),
// which replays a captured run the way it looked live. --ansi enables
// color and clear-screen framing; plain ASCII otherwise, so output stays
// pipeable into files and tests.
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>

#include "obs/live/top_render.h"
#include "util/flags.h"

namespace {

using pmp2::obs::live::LiveSnapshot;
using pmp2::obs::live::parse_snapshot;
using pmp2::obs::live::render_frame;
using pmp2::obs::live::TopOptions;

int fail(const std::string& message) {
  std::cerr << "pmp2_top: " << message << "\n";
  return 2;
}

/// Renders one line if it parses; malformed/foreign lines are counted and
/// skipped (a fifo reader can attach mid-line).
bool render_line(const std::string& line, const TopOptions& options,
                 int& bad_lines) {
  if (line.empty()) return false;
  LiveSnapshot snapshot;
  std::string error;
  if (!parse_snapshot(line, snapshot, &error)) {
    ++bad_lines;
    return false;
  }
  std::cout << render_frame(snapshot, options);
  std::cout.flush();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  pmp2::Flags flags(argc, argv);
  const bool once = flags.get_bool("once", false);
  const bool replay = flags.get_bool("replay", false);
  const std::int64_t delay_ms = flags.get_int("delay-ms", 0);
  TopOptions options;
  options.ansi = flags.get_bool("ansi", false);
  options.width = static_cast<int>(flags.get_int("width", 80));
  const std::int64_t poll_ms = flags.get_int("poll-ms", 100);
  const std::int64_t idle_timeout_ms = flags.get_int("idle-timeout-ms", 0);

  // The Flags parser binds "--replay FILE" as replay=FILE; accept the path
  // from either the positionals or a mode flag's captured value.
  std::string path;
  if (!flags.positional().empty()) {
    path = flags.positional().front();
  } else {
    for (const char* mode : {"once", "replay"}) {
      const std::string value = flags.get_string(mode, "");
      if (value.size() > 1 && value != "true" && value != "false") {
        path = value;
        break;
      }
    }
  }
  if (path.empty()) {
    return fail(
        "usage: pmp2_top [--once|--replay] [--ansi] [--delay-ms=N] FILE");
  }
  for (const auto& f : flags.unused()) {
    std::cerr << "pmp2_top: warning: unused flag --" << f << "\n";
  }

  std::ifstream in(path);
  if (!in) return fail("cannot open '" + path + "'");

  int bad_lines = 0;
  int rendered = 0;
  if (once || replay) {
    std::string line, last;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      if (once) {
        last = line;
        continue;
      }
      if (render_line(line, options, bad_lines)) {
        ++rendered;
        if (delay_ms > 0) {
          std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms));
        }
      }
    }
    if (once && render_line(last, options, bad_lines)) ++rendered;
  } else {
    // Follow mode: drain what exists, then poll for growth. A fifo blocks
    // inside getline instead, which is exactly tail-like behavior.
    std::string line;
    std::int64_t idle_ms = 0;
    for (;;) {
      if (std::getline(in, line)) {
        idle_ms = 0;
        if (render_line(line, options, bad_lines)) ++rendered;
        continue;
      }
      if (in.bad()) break;
      in.clear();  // EOF for now; wait for the writer to append
      std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
      idle_ms += poll_ms;
      if (idle_timeout_ms > 0 && idle_ms >= idle_timeout_ms) break;
    }
  }
  if (rendered == 0) {
    return fail(bad_lines > 0
                    ? "no schema-valid snapshots in '" + path + "'"
                    : "no snapshots in '" + path + "'");
  }
  if (bad_lines > 0) {
    std::cerr << "pmp2_top: skipped " << bad_lines << " malformed line(s)\n";
  }
  return 0;
}
