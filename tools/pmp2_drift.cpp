// pmp2_drift — sim-vs-real cost-model drift detector (docs/ANALYSIS.md).
//
// Decodes a stream with the real std::thread workers under a span tracer,
// profiles the same stream for the virtual-time simulator's cost model
// (sched::profile_stream), and diffs per-task measured cost against the
// model's prediction. Tasks (and GOPs) diverging beyond tolerance are
// flagged: that is the signal that the WorkMeter linear model behind every
// simulated figure has drifted from the real kernels.
//
//   pmp2_drift --width=352 --height=240 --gop=13 --workers=4
//   pmp2_drift --table1 --scale=0.3 --out=drift.json
//
// --table1 sweeps the paper's 16-stream matrix (4 resolutions x GOP sizes
// {4,13,16,31}, Table 1). --decoder=gop diffs at GOP-task granularity.
// Exit codes: 0 ran (see report for flags), 2 operational failure,
// 3 drift beyond tolerance when --strict is set.
#include <fstream>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench/common.h"
#include "obs/analysis/drift.h"
#include "obs/analysis/timeline.h"
#include "obs/json.h"
#include "obs/tracer.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "util/flags.h"

using namespace pmp2;
using namespace pmp2::obs::analysis;

namespace {

struct StreamRun {
  streamgen::StreamSpec spec;
  DriftReport report;
};

bool run_one(const streamgen::StreamSpec& spec, const Flags& flags,
             const DriftOptions& options, DriftReport& out) {
  const auto stream = bench::load_or_generate(spec);
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const int warmup = static_cast<int>(flags.get_int("warmup", 1));
  obs::Tracer tracer(workers + 1);

  // Warmup decodes (untraced) take the cold-cache / page-fault hit so the
  // traced run measures steady-state task costs — the regime the profiled
  // cost model describes.
  const bool use_gop = flags.get_string("decoder", "slice") == "gop";
  auto decode = [&](obs::Tracer* t) {
    if (use_gop) {
      parallel::GopDecoderConfig config;
      config.workers = workers;
      config.tracer = t;
      return parallel::GopParallelDecoder(config).decode(stream);
    }
    parallel::SliceDecoderConfig config;
    config.workers = workers;
    config.tracer = t;
    return parallel::SliceParallelDecoder(config).decode(stream);
  };
  for (int i = 0; i < warmup; ++i) {
    if (!decode(nullptr).ok) {
      out.error = "warmup decode failed";
      return false;
    }
  }
  const parallel::RunResult result = decode(&tracer);
  if (!result.ok) {
    out.error = "real decode failed";
    return false;
  }
  const sched::StreamProfile& profile = bench::cached_profile(spec);
  if (!profile.ok) {
    out.error = "stream profiling failed";
    return false;
  }
  out = detect_drift(from_tracer(tracer), profile, options);
  return out.ok;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Sim-vs-real cost-model drift",
                      "profiled cost model (src/sched/profile) vs traced "
                      "std::thread decode");

  DriftOptions options;
  options.measured = flags.get_bool("measured", false);
  options.tolerance = flags.get_double("tolerance", options.tolerance);
  options.gop_tolerance =
      flags.get_double("gop-tolerance", options.gop_tolerance);
  options.min_predicted_ns = flags.get_int(
      "min-predicted-ns", options.min_predicted_ns);

  std::vector<StreamRun> runs;
  if (flags.get_bool("table1", false)) {
    const auto gop_sizes = flags.get_int_list("gops", {4, 13, 16, 31});
    for (const auto& res : bench::resolutions(flags)) {
      for (const int gop : gop_sizes) {
        streamgen::StreamSpec spec;
        spec.width = res.width;
        spec.height = res.height;
        spec.bit_rate = res.bit_rate;
        spec.gop_size = gop;
        runs.push_back({bench::apply_scale(spec, flags), {}});
      }
    }
  } else {
    streamgen::StreamSpec spec;
    spec.width = static_cast<int>(flags.get_int("width", 352));
    spec.height = static_cast<int>(flags.get_int("height", 240));
    spec.bit_rate = flags.get_int("bitrate", spec.bit_rate);
    spec.gop_size = static_cast<int>(flags.get_int("gop", 13));
    runs.push_back({bench::apply_scale(spec, flags), {}});
  }

  bool operational_failure = false;
  bool any_flagged = false;
  for (StreamRun& run : runs) {
    std::cout << "--- " << run.spec.width << "x" << run.spec.height
              << " gop=" << run.spec.gop_size
              << " pictures=" << run.spec.pictures << " ---\n";
    if (!run_one(run.spec, flags, options, run.report)) {
      std::cout << "FAILED: " << run.report.error << "\n";
      operational_failure = true;
      continue;
    }
    write_drift_text(std::cout, run.report);
    any_flagged |= !run.report.passed();
  }

  const std::string out_path = flags.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "pmp2_drift: cannot write " << out_path << "\n";
      return 2;
    }
    obs::JsonWriter w(out);
    w.begin_object();
    w.key("schema").value("pmp2-drift-suite/1");
    w.key("tolerance").value(options.tolerance);
    w.key("gop_tolerance").value(options.gop_tolerance);
    w.key("streams").begin_array();
    for (const StreamRun& run : runs) {
      w.begin_object();
      w.key("width").value(run.spec.width);
      w.key("height").value(run.spec.height);
      w.key("gop_size").value(run.spec.gop_size);
      w.key("pictures").value(run.spec.pictures);
      std::ostringstream body;
      write_drift_json(body, run.report);
      std::string raw = body.str();
      while (!raw.empty() && raw.back() == '\n') raw.pop_back();
      w.key("report").value_raw(raw);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    out << "\n";
    std::cout << "wrote " << out_path << "\n";
  }

  const int rc = bench::finish(flags);
  if (rc != 0 || operational_failure) return 2;
  if (any_flagged && flags.get_bool("strict", false)) return 3;
  return 0;
}
