// pmp2_analyze — post-mortem trace analyzer (docs/ANALYSIS.md).
//
// Loads a span journal written by --journal-out (binary "PMP2JRNL") or a
// Chrome trace written by --trace-out (JSON; the format is sniffed), then
// reconstructs per-worker timelines, the blocked-time decomposition, the
// critical path, and Graham-bound what-if speedup projections.
//
//   pmp2_analyze RUN.journal
//   pmp2_analyze RUN.trace.json --json --out=analysis.json
//   pmp2_analyze RUN.journal --what-if=1,2,4,8,16 --util-buckets=32
//
// Exit codes: 0 ok, 1 usage, 2 load/analysis failure. A lossy journal
// (dropped spans) prints a warning but still analyzes.
#include <fstream>
#include <iostream>

#include "obs/analysis/analyzer.h"
#include "obs/analysis/timeline.h"
#include "util/flags.h"

using namespace pmp2;
using namespace pmp2::obs::analysis;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto paths = flags.positional();
  if (paths.size() != 1) {
    std::cerr << "usage: pmp2_analyze <trace.journal | trace.json> "
                 "[--json] [--out=PATH] [--what-if=N,N,...] "
                 "[--util-buckets=N]\n";
    return 1;
  }

  const Timeline timeline = load_timeline(paths[0]);
  if (!timeline.ok) {
    std::cerr << "pmp2_analyze: " << timeline.error << "\n";
    return 2;
  }

  AnalyzeOptions options;
  options.what_if_workers = flags.get_int_list("what-if", {});
  options.utilization_buckets =
      flags.get_int("util-buckets", options.utilization_buckets);
  options.min_span_ns =
      flags.get_int("min-span-ns", static_cast<int>(options.min_span_ns));

  const Analysis analysis = analyze(timeline, options);
  if (!analysis.ok) {
    std::cerr << "pmp2_analyze: " << analysis.error << "\n";
    return 2;
  }
  for (const std::string& w : analysis.warnings) {
    std::cerr << "pmp2_analyze: WARNING: " << w << "\n";
  }

  const bool as_json = flags.get_bool("json", false);
  const std::string out_path = flags.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "pmp2_analyze: cannot write " << out_path << "\n";
      return 2;
    }
    if (as_json) {
      write_analysis_json(out, analysis);
    } else {
      write_analysis_text(out, analysis);
    }
    std::cout << "wrote " << out_path << "\n";
  } else if (as_json) {
    write_analysis_json(std::cout, analysis);
  } else {
    write_analysis_text(std::cout, analysis);
  }

  for (const std::string& f : flags.unused()) {
    std::cerr << "pmp2_analyze: unknown flag " << f << "\n";
  }
  return 0;
}
