// pmp2_analyze — post-mortem trace analyzer (docs/ANALYSIS.md).
//
// Loads a span journal written by --journal-out (binary "PMP2JRNL") or a
// Chrome trace written by --trace-out (JSON; the format is sniffed), then
// reconstructs per-worker timelines, the blocked-time decomposition, the
// critical path, and Graham-bound what-if speedup projections.
//
//   pmp2_analyze RUN.journal
//   pmp2_analyze RUN.trace.json --json --out=analysis.json
//   pmp2_analyze RUN.journal --what-if=1,2,4,8,16 --util-buckets=32
//   pmp2_analyze RUN.journal --prof=RUN.prof.json   # stage counter section
//   pmp2_analyze --prof=RUN.prof.json               # counters only
//
// --prof loads a "pmp2-prof/1" stage-counter summary (parallel_playback
// --prof-json-out) and appends the per-stage IPC / cache-miss / memory-
// stall decomposition (paper §7) to the text report.
//
// Exit codes: 0 ok, 1 usage, 2 load/analysis failure. A lossy journal
// (dropped spans) prints a warning but still analyzes.
#include <fstream>
#include <iostream>

#include "obs/analysis/analyzer.h"
#include "obs/analysis/timeline.h"
#include "obs/prof/stage_prof.h"
#include "util/flags.h"

using namespace pmp2;
using namespace pmp2::obs::analysis;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const auto paths = flags.positional();
  const std::string prof_path = flags.get_string("prof", "");
  if (paths.size() != 1 && !(paths.empty() && !prof_path.empty())) {
    std::cerr << "usage: pmp2_analyze <trace.journal | trace.json> "
                 "[--json] [--out=PATH] [--what-if=N,N,...] "
                 "[--util-buckets=N] [--prof=PROF.json]\n";
    return 1;
  }

  obs::prof::ProfSummary prof;
  bool have_prof = false;
  if (!prof_path.empty()) {
    std::string error;
    if (!obs::prof::load_prof_json(prof_path, &prof, &error)) {
      std::cerr << "pmp2_analyze: " << prof_path << ": " << error << "\n";
      return 2;
    }
    have_prof = true;
  }

  if (paths.empty()) {
    // Counters-only mode: no trace, just the stage decomposition.
    obs::prof::write_prof_text(std::cout, prof);
    for (const std::string& f : flags.unused()) {
      std::cerr << "pmp2_analyze: unknown flag " << f << "\n";
    }
    return 0;
  }

  const Timeline timeline = load_timeline(paths[0]);
  if (!timeline.ok) {
    std::cerr << "pmp2_analyze: " << timeline.error << "\n";
    return 2;
  }

  AnalyzeOptions options;
  options.what_if_workers = flags.get_int_list("what-if", {});
  options.utilization_buckets =
      flags.get_int("util-buckets", options.utilization_buckets);
  options.min_span_ns =
      flags.get_int("min-span-ns", static_cast<int>(options.min_span_ns));

  const Analysis analysis = analyze(timeline, options);
  if (!analysis.ok) {
    std::cerr << "pmp2_analyze: " << analysis.error << "\n";
    return 2;
  }
  for (const std::string& w : analysis.warnings) {
    std::cerr << "pmp2_analyze: WARNING: " << w << "\n";
  }

  const bool as_json = flags.get_bool("json", false);
  const std::string out_path = flags.get_string("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path, std::ios::binary);
    if (!out) {
      std::cerr << "pmp2_analyze: cannot write " << out_path << "\n";
      return 2;
    }
    if (as_json) {
      write_analysis_json(out, analysis);
      if (have_prof) {
        std::cerr << "pmp2_analyze: note: --prof section is text-only; the "
                     "prof file itself is already JSON\n";
      }
    } else {
      write_analysis_text(out, analysis);
      if (have_prof) {
        out << "\n";
        obs::prof::write_prof_text(out, prof);
      }
    }
    std::cout << "wrote " << out_path << "\n";
  } else if (as_json) {
    write_analysis_json(std::cout, analysis);
    if (have_prof) {
      std::cerr << "pmp2_analyze: note: --prof section is text-only; the "
                   "prof file itself is already JSON\n";
    }
  } else {
    write_analysis_text(std::cout, analysis);
    if (have_prof) {
      std::cout << "\n";
      obs::prof::write_prof_text(std::cout, prof);
    }
  }

  for (const std::string& f : flags.unused()) {
    std::cerr << "pmp2_analyze: unknown flag " << f << "\n";
  }
  return 0;
}
