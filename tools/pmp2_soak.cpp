// pmp2_soak — fault-injection soak harness (docs/ROBUSTNESS.md).
//
// Fuzzes the Table-1 stream matrix through the deterministic bitstream
// corruptor (src/inject) and decodes every corrupted stream with all three
// parallel decoders (GOP, slice, adaptive) in bounded-recovery mode (GOP
// quarantine + watchdog). The run is budgeted by wall time and/or
// iteration count and exits nonzero on any crash, hang, or invariant
// violation — the CI gate that corrupt input degrades decode quality,
// never decode liveness.
//
//   pmp2_soak --streams bench_streams --budget 60s --seed 1
//   pmp2_soak --budget 10s --iters 2 --psnr --report-out soak.json
//
// Streams: every *.m2v under --streams when the directory has any;
// otherwise the 16 Table-1 specs are generated (and cached) via the bench
// stream cache. Each iteration applies plan_fault(seed, i) — a varied,
// replayable FaultSpec — and every reported violation prints the stream
// plus FaultSpec::name() needed to replay it.
//
// Invariants checked per iteration:
//   * no hang: both decoders terminate and RunResult::hung stays false
//     (the coordinator/display watchdogs convert a would-be deadlock into
//     a failed run, which IS a violation — recovery must not need them);
//   * clean baseline: the uncorrupted stream decodes ok on all three
//     decoders with identical checksums (checked once per stream);
//   * dispatch equivalence: whenever both succeed on a corrupt stream, the
//     adaptive decoder's output is byte-identical to the GOP decoder's —
//     the hybrid dispatch (whole vs exploded, stolen or not) must never
//     change a single output byte, faults included;
//   * a failed corrupt run must say why (error records or zero pictures).
//
// File-backed streams (--streams) are memory-mapped, so repeated passes
// over a large matrix share page cache instead of re-reading copies.
//
// Exit codes: 0 clean, 1 violations, 2 operational failure (no streams).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "inject/degrade.h"
#include "inject/fault.h"
#include "io/mapped_file.h"
#include "obs/live/sampler.h"
#include "obs/live/telemetry.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "parallel/adaptive/adaptive_decoder.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "util/flags.h"
#include "util/timer.h"

using namespace pmp2;
namespace fs = std::filesystem;

namespace {

struct SoakStream {
  std::string name;
  io::MappedFile file;              // file-backed streams (mmap)
  std::vector<std::uint8_t> data;   // generated streams
  std::uint64_t clean_checksum = 0;

  [[nodiscard]] std::span<const std::uint8_t> bytes() const {
    return file.size() > 0 ? file.bytes()
                           : std::span<const std::uint8_t>(data);
  }
  // Per-stream tallies.
  int iterations = 0;
  int ok_runs = 0;
  int degraded_runs = 0;
  int failed_runs = 0;
  int violations = 0;
};

/// Parses "60s", "1500ms", "2m", or a bare number of seconds. <= 0 on bad
/// input (caller treats the budget as disabled then).
double parse_budget(const std::string& text) {
  if (text.empty()) return 0.0;
  double scale = 1.0;
  std::string number = text;
  auto ends_with = [&](const char* suffix) {
    const std::size_t n = std::string(suffix).size();
    return number.size() > n &&
           number.compare(number.size() - n, n, suffix) == 0;
  };
  if (ends_with("ms")) {
    scale = 1e-3;
    number.resize(number.size() - 2);
  } else if (ends_with("s")) {
    number.resize(number.size() - 1);
  } else if (ends_with("m")) {
    scale = 60.0;
    number.resize(number.size() - 1);
  }
  try {
    return std::stod(number) * scale;
  } catch (...) {
    return 0.0;
  }
}

std::vector<SoakStream> collect_streams(const Flags& flags) {
  std::vector<SoakStream> out;
  const std::string dir = flags.get_string("streams", "bench_streams");
  std::error_code ec;
  if (fs::is_directory(dir, ec)) {
    std::vector<fs::path> files;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".m2v") {
        files.push_back(entry.path());
      }
    }
    std::sort(files.begin(), files.end());
    for (const auto& path : files) {
      SoakStream s;
      s.name = path.filename().string();
      if (s.file.open(path.string()) && s.file.size() > 0) {
        out.push_back(std::move(s));
      }
    }
  }
  if (!out.empty()) return out;
  // Fresh checkout: generate the Table-1 matrix through the bench cache.
  const auto pictures = static_cast<int>(flags.get_int("pictures", 0));
  for (auto spec : streamgen::table1_specs(0)) {
    spec.pictures =
        pictures > 0 ? pictures : bench::default_pictures(spec.width);
    if (spec.pictures < spec.gop_size) spec.pictures = spec.gop_size;
    SoakStream s;
    s.name = spec.name();
    s.data = bench::load_or_generate(spec);
    out.push_back(std::move(s));
  }
  return out;
}

struct DecodeSetup {
  int workers = 4;
  std::int64_t watchdog_ns = 0;
  obs::Registry* metrics = nullptr;
  // One soak-wide live surface shared by every iteration (same worker
  // indices each run), so --live-out shows soak progress across streams.
  obs::live::LiveTelemetry* live = nullptr;
};

parallel::RunResult decode_gop_mode(std::span<const std::uint8_t> stream,
                                    const DecodeSetup& setup, bool recover,
                                    const parallel::FrameCallback& cb = {}) {
  parallel::GopDecoderConfig config;
  config.workers = setup.workers;
  config.quarantine_gops = recover;
  config.watchdog_ns = setup.watchdog_ns;
  config.metrics = setup.metrics;
  config.live = setup.live;
  return parallel::GopParallelDecoder(config).decode(stream, cb);
}

parallel::RunResult decode_slice_mode(std::span<const std::uint8_t> stream,
                                      const DecodeSetup& setup, bool recover,
                                      const parallel::FrameCallback& cb = {}) {
  parallel::SliceDecoderConfig config;
  config.workers = setup.workers;
  config.quarantine_gops = recover;
  config.watchdog_ns = setup.watchdog_ns;
  config.metrics = setup.metrics;
  config.live = setup.live;
  return parallel::SliceParallelDecoder(config).decode(stream, cb);
}

parallel::RunResult decode_adaptive_mode(
    std::span<const std::uint8_t> stream, const DecodeSetup& setup,
    bool recover, const parallel::FrameCallback& cb = {}) {
  parallel::AdaptiveDecoderConfig config;
  config.workers = setup.workers;
  config.quarantine_gops = recover;
  config.watchdog_ns = setup.watchdog_ns;
  config.metrics = setup.metrics;
  config.live = setup.live;
  return parallel::AdaptiveDecoder(config).decode(stream, cb);
}

/// One corrupt decode, invariant-checked. Returns true when no invariant
/// was violated (degraded and even failed runs are acceptable outcomes;
/// hangs and unexplained failures are not).
bool check_run(const parallel::RunResult& r, SoakStream& stream,
               const inject::FaultSpec& fault, const char* decoder) {
  bool ok = true;
  if (r.hung) {
    std::fprintf(stderr,
                 "VIOLATION hang: stream=%s fault=%s decoder=%s (%s)\n",
                 stream.name.c_str(), fault.name().c_str(), decoder,
                 r.hang.to_string().c_str());
    ok = false;
  }
  if (!r.ok && !r.hung && r.errors.empty() && r.pictures > 0) {
    std::fprintf(
        stderr,
        "VIOLATION unexplained failure: stream=%s fault=%s decoder=%s\n",
        stream.name.c_str(), fault.name().c_str(), decoder);
    ok = false;
  }
  if (!ok) {
    ++stream.violations;
  } else if (!r.ok) {
    ++stream.failed_runs;
  } else if (r.degraded()) {
    ++stream.degraded_runs;
  } else {
    ++stream.ok_runs;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  bench::apply_kernels_flag(flags);  // --kernels=scalar|sse2|avx2
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const double budget_s = parse_budget(flags.get_string("budget", "30s"));
  const auto max_iters = flags.get_int("iters", 0);  // per stream; 0 = inf
  const bool verbose = flags.get_bool("verbose", false);
  const bool psnr = flags.get_bool("psnr", false);

  DecodeSetup setup;
  setup.workers = static_cast<int>(flags.get_int("workers", 4));
  setup.watchdog_ns =
      flags.get_int("watchdog-ms", 10'000) * std::int64_t{1'000'000};
  obs::Registry metrics;
  setup.metrics = &metrics;

  // Live telemetry: one soak-wide surface shared by every iteration, so a
  // pmp2_top attached to --live-out follows the whole fuzz run.
  const std::string live_out = flags.get_string("live-out", "");
  const std::string prom_out = flags.get_string("prom-out", "");
  const std::int64_t live_interval_ms =
      flags.get_int("live-interval-ms", 250);
  obs::live::SloRules slo;
  const std::string slo_spec = flags.get_string("slo", "");
  if (!slo_spec.empty()) {
    std::string error;
    if (!obs::live::SloRules::parse(slo_spec, slo, &error)) {
      std::fprintf(stderr, "pmp2_soak: bad --slo: %s\n", error.c_str());
      return 2;
    }
  }
  std::unique_ptr<obs::live::LiveTelemetry> live;
  std::unique_ptr<obs::live::LiveSampler> sampler;
  if (!live_out.empty() || !prom_out.empty() || slo.any()) {
    live = std::make_unique<obs::live::LiveTelemetry>(setup.workers);
    obs::live::LiveSampler::Options live_options;
    live_options.interval_ms = live_interval_ms;
    live_options.slo = slo;
    live_options.ndjson_path = live_out;
    live_options.prometheus_path = prom_out;
    live_options.on_alert = [](const obs::live::Alert& alert, bool fired) {
      std::fprintf(stderr,
                   "live-alert %s: %s value=%.3f threshold=%.3f\n",
                   fired ? "FIRED" : "cleared", alert.rule.c_str(),
                   alert.value, alert.threshold);
    };
    sampler = std::make_unique<obs::live::LiveSampler>(*live, live_options);
    sampler->start();
    setup.live = live.get();
  }

  std::vector<SoakStream> streams = collect_streams(flags);
  if (streams.empty()) {
    std::fprintf(stderr, "pmp2_soak: no streams to fuzz\n");
    return 2;
  }
  std::printf("pmp2_soak: %zu streams, budget %.1fs, seed %llu\n",
              streams.size(), budget_s,
              static_cast<unsigned long long>(seed));

  int violations = 0;
  // Clean baseline: streams the sequential reference decoder cannot handle
  // are skipped (stale cache files, foreign .m2v) — there is nothing to
  // degrade from. On decodable streams both parallel decoders must agree
  // bit-exactly, or the baseline itself is broken.
  std::erase_if(streams, [&](SoakStream& s) {
    mpeg2::Decoder reference;
    if (!reference.decode(s.bytes()).ok) {
      std::fprintf(stderr, "pmp2_soak: skipping undecodable %s\n",
                   s.name.c_str());
      return true;
    }
    const auto gop = decode_gop_mode(s.bytes(), setup, false);
    const auto slice = decode_slice_mode(s.bytes(), setup, false);
    const auto adaptive = decode_adaptive_mode(s.bytes(), setup, false);
    if (!gop.ok || !slice.ok || !adaptive.ok ||
        gop.checksum != slice.checksum ||
        gop.checksum != adaptive.checksum) {
      std::fprintf(stderr,
                   "VIOLATION clean baseline: stream=%s gop_ok=%d "
                   "slice_ok=%d adaptive_ok=%d checksums %llx/%llx/%llx\n",
                   s.name.c_str(), gop.ok, slice.ok, adaptive.ok,
                   static_cast<unsigned long long>(gop.checksum),
                   static_cast<unsigned long long>(slice.checksum),
                   static_cast<unsigned long long>(adaptive.checksum));
      ++violations;
    }
    s.clean_checksum = gop.checksum;
    return false;
  });
  if (streams.empty()) {
    std::fprintf(stderr, "pmp2_soak: no decodable streams to fuzz\n");
    return 2;
  }

  inject::PsnrAccumulator psnr_acc;
  WallTimer timer;
  std::uint64_t fault_index = 0;
  std::int64_t total_iterations = 0;
  bool out_of_budget = false;
  // Round-robin passes over the stream matrix until the budget runs out;
  // at least one full pass always happens so every stream gets fuzzed.
  for (int pass = 0; !out_of_budget; ++pass) {
    if (max_iters > 0 && pass >= max_iters) break;
    for (auto& s : streams) {
      if (pass > 0 && budget_s > 0 && timer.elapsed_s() >= budget_s) {
        out_of_budget = true;
        break;
      }
      const inject::FaultSpec fault = inject::plan_fault(seed, fault_index++);
      const auto corrupt = inject::apply_fault(s.bytes(), fault);
      if (verbose) {
        std::printf("  [%s] %s (%zu -> %zu bytes)\n", s.name.c_str(),
                    fault.name().c_str(), s.bytes().size(), corrupt.size());
      }
      std::vector<mpeg2::FramePtr> frames;
      const parallel::FrameCallback keep =
          psnr ? [&frames](mpeg2::FramePtr f) {
            frames.push_back(std::move(f));
          }
               : parallel::FrameCallback{};
      const auto gop = decode_gop_mode(corrupt, setup, true, keep);
      if (!check_run(gop, s, fault, "gop")) ++violations;
      if (psnr && gop.ok) {
        // Degradation vs the clean decode of the same stream.
        mpeg2::Decoder clean;
        const auto reference = clean.decode(s.bytes());
        const std::size_t n =
            std::min(frames.size(), reference.frames.size());
        for (std::size_t i = 0; i < n; ++i) {
          psnr_acc.add(*frames[i], *reference.frames[i]);
        }
      }
      const auto slice = decode_slice_mode(corrupt, setup, true);
      if (!check_run(slice, s, fault, "slice")) ++violations;
      const auto adaptive = decode_adaptive_mode(corrupt, setup, true);
      if (!check_run(adaptive, s, fault, "adaptive")) ++violations;
      if (adaptive.ok && gop.ok && adaptive.checksum != gop.checksum) {
        // Hybrid dispatch must be invisible in the output, faults and all.
        std::fprintf(stderr,
                     "VIOLATION dispatch equivalence: stream=%s fault=%s "
                     "adaptive %llx != gop %llx\n",
                     s.name.c_str(), fault.name().c_str(),
                     static_cast<unsigned long long>(adaptive.checksum),
                     static_cast<unsigned long long>(gop.checksum));
        ++s.violations;
        ++violations;
      }
      ++s.iterations;
      ++total_iterations;
      metrics.counter("soak.iterations").add();
    }
    if (max_iters == 0 && budget_s > 0 && timer.elapsed_s() >= budget_s) {
      break;
    }
    if (max_iters == 0 && budget_s <= 0) break;  // no budget: one pass
  }

  // Summary.
  std::printf("\n%-44s %6s %6s %9s %7s %5s\n", "stream", "iters", "ok",
              "degraded", "failed", "viol");
  int degraded_total = 0;
  for (const auto& s : streams) {
    std::printf("%-44s %6d %6d %9d %7d %5d\n", s.name.c_str(), s.iterations,
                s.ok_runs, s.degraded_runs, s.failed_runs, s.violations);
    degraded_total += s.degraded_runs;
  }
  std::printf("\n%lld iterations in %.1fs, %d violations\n",
              static_cast<long long>(3 * total_iterations),
              timer.elapsed_s(), violations);
  if (psnr && psnr_acc.frames() > 0) {
    std::printf("psnr vs clean: mean %.1f dB, min %.1f dB over %d frames "
                "(%d degraded)\n",
                psnr_acc.mean_db(), psnr_acc.min_db(), psnr_acc.frames(),
                psnr_acc.degraded_frames());
    metrics.histogram("soak.psnr_min_centidb")
        .record(static_cast<std::int64_t>(psnr_acc.min_db() * 100));
  }
  metrics.counter("soak.violations").add(violations);
  metrics.counter("soak.degraded_runs").add(degraded_total);

  if (sampler) sampler->stop();

  obs::RunReport report("pmp2_soak", "fault-injection soak over Table 1");
  report.set_meta("seed", static_cast<std::int64_t>(seed));
  report.set_meta("budget_s", budget_s);
  report.set_meta("workers", setup.workers);
  report.set_meta("violations", violations);
  if (sampler) {
    report.set_meta("live_snapshots",
                    static_cast<std::int64_t>(sampler->snapshots()));
    for (const auto& alert : sampler->alert_log()) {
      report.add_alert({alert.rule, alert.value, alert.threshold,
                        alert.fired_at_ns, alert.cleared_at_ns});
    }
    if (!live_out.empty()) {
      std::printf("wrote %s (%llu snapshots); watch with tools/pmp2_top\n",
                  live_out.c_str(),
                  static_cast<unsigned long long>(sampler->snapshots()));
    }
  }
  for (const auto& s : streams) {
    report.add_row()
        .set("stream", s.name)
        .set("iterations", s.iterations)
        .set("ok", s.ok_runs)
        .set("degraded", s.degraded_runs)
        .set("failed", s.failed_runs)
        .set("violations", s.violations);
  }
  report.attach_metrics(&metrics);
  const int finish_rc = bench::finish(flags, report);
  if (finish_rc != 0) return finish_rc;
  if (sampler && !sampler->io_ok()) {
    std::fprintf(stderr, "pmp2_soak: live exporter I/O failed\n");
    return 1;
  }
  return violations > 0 ? 1 : 0;
}
