#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/flags.h"
#include "util/rng.h"
#include "util/table.h"
#include "util/timer.h"

namespace pmp2 {
namespace {

TEST(Flags, ParsesEqualsAndSpaceForms) {
  // Space form binds the next non-flag token as the value, so positionals
  // must precede flags (or flags must use the = form).
  const char* argv[] = {"prog", "pos1", "--alpha=3", "--beta", "7",
                        "--gamma", "--delta=x,y"};
  const Flags flags(7, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_EQ(flags.get_int("beta", 0), 7);
  EXPECT_TRUE(flags.get_bool("gamma", false));  // bare flag -> true
  EXPECT_EQ(flags.get_string("delta", ""), "x,y");
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, FallbacksWhenAbsent) {
  const char* argv[] = {"prog"};
  const Flags flags(1, argv);
  EXPECT_EQ(flags.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(flags.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(flags.get_string("missing", "d"), "d");
  EXPECT_FALSE(flags.has("missing"));
}

TEST(Flags, IntListParsing) {
  const char* argv[] = {"prog", "--workers=1,2,4,8"};
  const Flags flags(2, argv);
  EXPECT_EQ(flags.get_int_list("workers", {}),
            (std::vector<int>{1, 2, 4, 8}));
  EXPECT_EQ(flags.get_int_list("absent", {3}), (std::vector<int>{3}));
}

TEST(Flags, UnusedReportsUnqueried) {
  const char* argv[] = {"prog", "--used=1", "--typo=2"};
  const Flags flags(3, argv);
  (void)flags.get_int("used", 0);
  const auto unused = flags.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, BoolFalseSpellings) {
  const char* argv[] = {"prog", "--a=false", "--b=0", "--c=no", "--d=true"};
  const Flags flags(5, argv);
  EXPECT_FALSE(flags.get_bool("a", true));
  EXPECT_FALSE(flags.get_bool("b", true));
  EXPECT_FALSE(flags.get_bool("c", true));
  EXPECT_TRUE(flags.get_bool("d", false));
}

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  Rng rng(6);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Table, AlignsColumns) {
  Table t({"a", "long header"});
  t.add_row({"xxxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| a      | long header |"), std::string::npos);
  EXPECT_NE(out.find("| xxxxxx | 1           |"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(10.0, 0), "10");
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  std::ostringstream os;
  t.print(os);  // must not crash; row padded to 3 cells
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Series, PrintsPointsInOrder) {
  Series s("x", {"y1", "y2"});
  s.add_point(1, {0.5, 1.5});
  s.add_point(2, {0.25, 2.5});
  std::ostringstream os;
  s.print(os, 2);
  const std::string out = os.str();
  EXPECT_LT(out.find("0.50"), out.find("0.25"));
}

TEST(Timer, WallTimerAdvances) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_GE(t.elapsed_ns(), 4'000'000);
  t.reset();
  EXPECT_LT(t.elapsed_ns(), 4'000'000);
}

TEST(Timer, ThreadCpuTimerIgnoresSleep) {
  ThreadCpuTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  // Sleeping burns (almost) no CPU time.
  EXPECT_LT(t.elapsed_ns(), 10'000'000);
}

TEST(Timer, AccumulatorSumsScopes) {
  TimeAccumulator acc;
  {
    TimeAccumulator::Scope scope(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  {
    TimeAccumulator::Scope scope(acc);
    std::this_thread::sleep_for(std::chrono::milliseconds(3));
  }
  EXPECT_GE(acc.total_ns(), 5'000'000);
  acc.reset();
  EXPECT_EQ(acc.total_ns(), 0);
}

}  // namespace
}  // namespace pmp2
