#include <gtest/gtest.h>

#include <cmath>

#include "mpeg2/encoder.h"
#include "mpeg2/frame.h"

namespace pmp2::mpeg2 {
namespace {

TEST(Frame, PadsToMacroblockMultiples) {
  Frame f(176, 120);
  EXPECT_EQ(f.width(), 176);
  EXPECT_EQ(f.height(), 120);
  EXPECT_EQ(f.mb_width(), 11);
  EXPECT_EQ(f.mb_height(), 8);  // 120 -> 128 coded
  EXPECT_EQ(f.y_stride(), 176);
  EXPECT_EQ(f.coded_height(), 128);
  EXPECT_EQ(f.c_stride(), 88);
}

TEST(Frame, BytesAccountsAllPlanes) {
  Frame f(352, 240);
  EXPECT_EQ(f.bytes(), 352 * 240 + 2 * (176 * 120));
}

TEST(Frame, MemoryTrackerFollowsLifetime) {
  MemoryTracker t;
  {
    Frame a(352, 240, &t);
    EXPECT_EQ(t.current_bytes(), a.bytes());
    {
      Frame b(352, 240, &t);
      EXPECT_EQ(t.current_bytes(), a.bytes() + b.bytes());
      EXPECT_EQ(t.peak_bytes(), a.bytes() + b.bytes());
    }
    EXPECT_EQ(t.current_bytes(), a.bytes());
    EXPECT_EQ(t.peak_bytes(), 2 * a.bytes());  // peak persists
  }
  EXPECT_EQ(t.current_bytes(), 0);
}

TEST(Frame, TrackerResetPeak) {
  MemoryTracker t;
  { Frame a(64, 48, &t); }
  EXPECT_GT(t.peak_bytes(), 0);
  t.reset_peak();
  EXPECT_EQ(t.peak_bytes(), 0);
}

TEST(FramePool, RecyclesFrames) {
  MemoryTracker t;
  FramePool pool(64, 48, &t);
  Frame* raw;
  {
    FramePtr f = pool.acquire();
    raw = f.get();
    EXPECT_EQ(pool.idle_count(), 0u);
  }
  EXPECT_EQ(pool.idle_count(), 1u);
  FramePtr g = pool.acquire();
  EXPECT_EQ(g.get(), raw);  // same buffer reused
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(FramePool, TrackerSeesPooledFramesAsLive) {
  MemoryTracker t;
  FramePool pool(64, 48, &t);
  { FramePtr f = pool.acquire(); }
  // Frame returned to the pool still owns its buffers.
  EXPECT_GT(t.current_bytes(), 0);
}

TEST(Frame, TraceIdsAreUniqueAndStable) {
  FramePool pool(32, 32);
  FramePtr a = pool.acquire();
  const int id_a = a->trace_id();
  FramePtr b = pool.acquire();
  EXPECT_NE(id_a, b->trace_id());
  a.reset();
  FramePtr c = pool.acquire();  // recycled 'a'
  EXPECT_EQ(c->trace_id(), id_a);
}

TEST(Frame, SamePelsDetectsDifference) {
  Frame a(48, 32), b(48, 32);
  std::fill_n(a.y(), a.y_stride() * a.coded_height(), 10);
  std::fill_n(b.y(), b.y_stride() * b.coded_height(), 10);
  std::fill_n(a.cb(), a.c_stride() * a.coded_height() / 2, 20);
  std::fill_n(b.cb(), b.c_stride() * b.coded_height() / 2, 20);
  std::fill_n(a.cr(), a.c_stride() * a.coded_height() / 2, 30);
  std::fill_n(b.cr(), b.c_stride() * b.coded_height() / 2, 30);
  EXPECT_TRUE(a.same_pels(b));
  b.cr()[5] ^= 1;
  EXPECT_FALSE(a.same_pels(b));
}

TEST(Frame, PsnrInfinityForIdentical) {
  Frame a(48, 32), b(48, 32);
  std::fill_n(a.y(), a.y_stride() * a.coded_height(), 99);
  std::fill_n(b.y(), b.y_stride() * b.coded_height(), 99);
  EXPECT_TRUE(std::isinf(psnr_y(a, b)));
}

TEST(Frame, PsnrKnownValue) {
  Frame a(48, 32), b(48, 32);
  std::fill_n(a.y(), a.y_stride() * a.coded_height(), 100);
  std::fill_n(b.y(), b.y_stride() * b.coded_height(), 110);
  // MSE = 100 -> PSNR = 10 log10(255^2/100) = 28.13 dB.
  EXPECT_NEAR(psnr_y(a, b), 28.13, 0.01);
}

TEST(Frame, PadCodedBorderReplicatesEdges) {
  Frame f(176, 120);  // coded 176x128
  for (int y = 0; y < 120; ++y) {
    for (int x = 0; x < 176; ++x) {
      f.y()[y * f.y_stride() + x] = static_cast<std::uint8_t>(y);
    }
  }
  pad_coded_border(f);
  for (int y = 120; y < 128; ++y) {
    for (int x = 0; x < 176; ++x) {
      EXPECT_EQ(f.y()[y * f.y_stride() + x], 119) << y << "," << x;
    }
  }
  // Chroma bottom rows replicate row 59.
  for (int x = 0; x < f.c_stride(); ++x) f.cb()[59 * f.c_stride() + x] = 42;
  pad_coded_border(f);
  for (int y = 60; y < 64; ++y) {
    EXPECT_EQ(f.cb()[y * f.c_stride() + 3], 42);
  }
}

}  // namespace
}  // namespace pmp2::mpeg2
