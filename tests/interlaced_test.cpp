// Interlaced coding tools (the paper's §7.3 future work, implemented):
// frame pictures with frame_pred_frame_dct = 0, per-macroblock field/frame
// DCT and field/frame motion selection. Verified end to end on an
// interlaced-capture source, and bit-exact across all decoder variants.
#include <gtest/gtest.h>

#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "mpeg2/motion.h"
#include "mpeg2/motion_est.h"
#include "mpeg2/vlc_tables.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/scene.h"

namespace pmp2::mpeg2 {
namespace {

streamgen::SceneGenerator interlaced_scene(int w, int h, double pan = 6.0) {
  streamgen::SceneConfig sc;
  sc.width = w;
  sc.height = h;
  sc.interlaced = true;
  sc.pan_pels_per_picture = pan;  // fast pan => strong field combing
  return streamgen::SceneGenerator(sc);
}

std::vector<std::uint8_t> encode_interlaced(int w, int h, int pictures,
                                            bool tools,
                                            EncoderStats* stats = nullptr) {
  const auto scene = interlaced_scene(w, h);
  EncoderConfig cfg;
  cfg.width = w;
  cfg.height = h;
  cfg.gop_size = std::min(13, pictures);
  cfg.interlaced_tools = tools;
  cfg.rate_control = false;
  cfg.base_qscale_code = 6;
  Encoder enc(cfg);
  for (int i = 0; i < pictures; ++i) enc.push_frame(scene.render(i));
  if (stats) *stats = enc.stats();
  auto out = enc.finish();
  if (stats) *stats = enc.stats();
  return out;
}

TEST(Interlaced, StreamDeclaresInterlacedCoding) {
  const auto stream = encode_interlaced(176, 120, 13, true);
  const StreamStructure s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  EXPECT_FALSE(s.ext.progressive_sequence);
  BitReader br(stream);
  br.seek_bytes(s.gops[0].pictures[0].offset);
  PictureHeader ph;
  PictureCodingExtension pce;
  ASSERT_TRUE(parse_picture_headers(br, ph, pce));
  EXPECT_FALSE(pce.frame_pred_frame_dct);
  EXPECT_FALSE(pce.progressive_frame);
  EXPECT_EQ(pce.picture_structure, 3);  // still frame pictures
}

TEST(Interlaced, DecodesWithGoodQuality) {
  const int pictures = 13;
  const auto stream = encode_interlaced(176, 120, pictures, true);
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.frames.size(), static_cast<std::size_t>(pictures));
  const auto scene = interlaced_scene(176, 120);
  for (int i = 0; i < pictures; i += 3) {
    const auto src = scene.render(i);
    EXPECT_GT(psnr_y(*src, *out.frames[static_cast<std::size_t>(i)]), 24.0)
        << i;
  }
}

TEST(Interlaced, ToolsImproveCompressionOnInterlacedContent) {
  // Same source, same quantizer: field tools must beat frame-only coding
  // on combed content — fewer bits at no quality loss. (176-wide renders
  // alias the fine texture, so measure at the scene's native 352 width.)
  const int pictures = 7;
  EncoderStats with_stats, without_stats;
  const auto with =
      encode_interlaced(352, 240, pictures, true, &with_stats);
  const auto without =
      encode_interlaced(352, 240, pictures, false, &without_stats);
  Decoder d1, d2;
  const auto out_with = d1.decode(with);
  const auto out_without = d2.decode(without);
  ASSERT_TRUE(out_with.ok);
  ASSERT_TRUE(out_without.ok);
  // Field tools actually engaged...
  EXPECT_GT(with_stats.field_dct_mbs, 100);
  EXPECT_GT(with_stats.field_motion_mbs, 20);
  EXPECT_EQ(without_stats.field_dct_mbs, 0);
  // ...saving a solid fraction of the bits...
  EXPECT_LT(with.size(), without.size() * 0.92);
  // ...at no quality cost.
  const auto scene = interlaced_scene(352, 240);
  double gain = 0;
  for (int i = 0; i < pictures; ++i) {
    const auto src = scene.render(i);
    gain += psnr_y(*src, *out_with.frames[static_cast<std::size_t>(i)]) -
            psnr_y(*src, *out_without.frames[static_cast<std::size_t>(i)]);
  }
  EXPECT_GT(gain / pictures, -0.05);
}

TEST(Interlaced, ParallelDecodersBitExact) {
  const auto stream = encode_interlaced(176, 120, 26, true);
  Decoder dec;
  std::uint64_t want = 0;
  const auto st = dec.decode_stream(stream, [&](FramePtr f) {
    want = parallel::chain_frame_checksum(want, *f);
  });
  ASSERT_TRUE(st.ok);

  parallel::GopDecoderConfig gcfg;
  gcfg.workers = 3;
  const auto g = parallel::GopParallelDecoder(gcfg).decode(stream);
  ASSERT_TRUE(g.ok);
  EXPECT_EQ(g.checksum, want);
  for (const auto policy :
       {parallel::SlicePolicy::kSimple, parallel::SlicePolicy::kImproved}) {
    parallel::SliceDecoderConfig scfg;
    scfg.workers = 4;
    scfg.policy = policy;
    const auto r = parallel::SliceParallelDecoder(scfg).decode(stream);
    ASSERT_TRUE(r.ok);
    EXPECT_EQ(r.checksum, want);
  }
}

TEST(Interlaced, FieldMcMatchesManualFieldCopy) {
  // Zero-vector field prediction from the same parity must copy the field.
  const auto scene = interlaced_scene(64, 48);
  auto ref = scene.render(0);
  Frame dst(64, 48);
  mc_field_macroblock(*ref, 0, dst, 1, 1, 1, /*dest_parity=*/0,
                      /*src_parity=*/0, {0, 0}, McMode::kCopy);
  const int stride = dst.y_stride();
  for (int fl = 0; fl < 8; ++fl) {
    const int y = 16 + 2 * fl;  // top-field lines of MB (1,1)
    for (int x = 16; x < 32; ++x) {
      ASSERT_EQ(dst.y()[y * stride + x], ref->y()[y * stride + x])
          << x << "," << y;
    }
  }
}

TEST(Interlaced, FieldMcOppositeParityPullsOtherField) {
  const auto scene = interlaced_scene(64, 48);
  auto ref = scene.render(0);
  Frame dst(64, 48);
  mc_field_macroblock(*ref, 0, dst, 1, 1, 1, /*dest_parity=*/0,
                      /*src_parity=*/1, {0, 0}, McMode::kCopy);
  const int stride = dst.y_stride();
  // Destination top-field line fl holds the reference bottom-field line.
  for (int fl = 0; fl < 8; ++fl) {
    const int dst_y = 16 + 2 * fl;
    const int src_y = 16 + 2 * fl + 1;
    for (int x = 16; x < 32; ++x) {
      ASSERT_EQ(dst.y()[dst_y * stride + x], ref->y()[src_y * stride + x]);
    }
  }
}

TEST(Interlaced, FieldMotionEstimationFindsFieldShift) {
  // Source whose bottom field is the top field shifted 2 pels: field ME
  // from opposite parity should find (+4 half-pel, 0) with near-zero SAD.
  Frame ref(64, 48);
  const int stride = ref.y_stride();
  for (int y = 0; y < ref.coded_height(); ++y) {
    for (int x = 0; x < stride; ++x) {
      const int base = ((x - ((y & 1) ? 2 : 0)) * 5 + (y / 2) * 11) & 0xFF;
      ref.y()[y * stride + x] = static_cast<std::uint8_t>(base);
    }
  }
  // cur top field == ref bottom field shifted +2 full pels.
  Frame cur(64, 48);
  for (int y = 0; y < cur.coded_height(); ++y) {
    for (int x = 0; x < stride; ++x) {
      cur.y()[y * stride + x] = ref.y()[y * stride + x];
    }
  }
  for (int fl = 0; fl < cur.coded_height() / 2; ++fl) {
    for (int x = 0; x < stride; ++x) {
      const int sx = std::min(x + 2, stride - 1);
      cur.y()[2 * fl * stride + x] = ref.y()[(2 * fl + 1) * stride + sx];
    }
  }
  const MeResult me =
      estimate_motion_field(ref, cur, 1, 1, /*dest=*/0, /*src=*/1, 7);
  EXPECT_EQ(me.mv.x, 4);
  EXPECT_EQ(me.mv.y, 0);
  EXPECT_EQ(me.sad, 0);
}

TEST(Interlaced, PreferFieldDctOnCombedContent) {
  const auto scene = interlaced_scene(352, 240, /*pan=*/8.0);
  auto combed = scene.render(5);  // strong comb from fast pan
  streamgen::SceneConfig pc;
  pc.width = 352;
  pc.height = 240;
  const auto progressive = streamgen::SceneGenerator(pc).render(5);
  int combed_votes = 0, prog_votes = 0;
  constexpr int kMbs = 60;
  for (int mb = 0; mb < kMbs; ++mb) {
    const int mb_x = mb % 20;
    const int mb_y = 3 + (mb / 20) * 4;  // spread over texture bands
    if (prefer_field_dct(*combed, mb_x, mb_y)) ++combed_votes;
    if (prefer_field_dct(*progressive, mb_x, mb_y)) ++prog_votes;
  }
  EXPECT_GT(combed_votes, prog_votes + kMbs / 4);
  EXPECT_GE(combed_votes, kMbs / 2);
}

TEST(Interlaced, Mpeg1ForcesToolsOff) {
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.mpeg1 = true;
  cfg.interlaced_tools = true;
  Encoder enc(cfg);
  EXPECT_FALSE(enc.config().interlaced_tools);
}

TEST(Interlaced, DualPrimeRejected) {
  // Hand-build a slice whose MB announces frame_motion_type = dual prime.
  BitWriter bw;
  SequenceHeader sh;
  sh.horizontal_size = 32;
  sh.vertical_size = 32;
  write_sequence_header(bw, sh);
  write_sequence_extension(bw, sh, SequenceExtension{});
  write_gop_header(bw, GopHeader{});
  // I picture first so the P picture has a reference.
  PictureHeader ph;
  ph.type = PictureType::kI;
  write_picture_header(bw, ph);
  PictureCodingExtension pce;
  write_picture_coding_extension(bw, pce);
  for (int row = 0; row < 2; ++row) {
    bw.put_startcode(static_cast<std::uint8_t>(row + 1));
    bw.put(8, 5);
    bw.put_bit(0);
    for (int mb = 0; mb < 2; ++mb) {
      encode_mb_addr_inc(1).put(bw);
      encode_mb_type(1, MbFlags::kIntra).put(bw);
      for (int b = 0; b < 6; ++b) {
        encode_dct_dc_size(b < 4, 0).put(bw);
        dct_eob_code(false).put(bw);
      }
    }
  }
  // P picture with interlaced coding + dual-prime MB.
  ph.type = PictureType::kP;
  ph.temporal_reference = 1;
  write_picture_header(bw, ph);
  pce.f_code[0][0] = pce.f_code[0][1] = 1;
  pce.frame_pred_frame_dct = false;
  pce.progressive_frame = false;
  write_picture_coding_extension(bw, pce);
  bw.put_startcode(1);
  bw.put(8, 5);
  bw.put_bit(0);
  encode_mb_addr_inc(1).put(bw);
  encode_mb_type(2, MbFlags::kMotionForward).put(bw);
  bw.put(0b11, 2);  // frame_motion_type: dual prime (unsupported)
  bw.put_startcode(0xB7);
  const auto bytes = bw.take();
  Decoder dec;
  EXPECT_FALSE(dec.decode(bytes).ok);
}

}  // namespace
}  // namespace pmp2::mpeg2
