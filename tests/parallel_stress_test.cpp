// Stress and configuration-sweep tests for the threaded parallel decoders:
// oversubscription, bounded queues, open-picture windows, repeated runs
// (scheduling nondeterminism must never change the output), and
// interleaved concurrent decoders.
#include <gtest/gtest.h>

#include <thread>

#include "mpeg2/decoder.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/stream_factory.h"

namespace pmp2::parallel {
namespace {

const std::vector<std::uint8_t>& stress_stream() {
  static const std::vector<std::uint8_t> s = [] {
    streamgen::StreamSpec spec;
    spec.width = 176;
    spec.height = 120;
    spec.gop_size = 4;
    spec.pictures = 32;
    spec.bit_rate = 1'500'000;
    return streamgen::generate_stream(spec);
  }();
  return s;
}

std::uint64_t reference_checksum() {
  static const std::uint64_t want = [] {
    mpeg2::Decoder dec;
    std::uint64_t digest = 0;
    (void)dec.decode_stream(stress_stream(), [&](mpeg2::FramePtr f) {
      digest = chain_frame_checksum(digest, *f);
    });
    return digest;
  }();
  return want;
}

TEST(ParallelStress, MassiveOversubscription) {
  // 32 threads on (probably) 1 core: heavy preemption, still bit-exact.
  GopDecoderConfig gcfg;
  gcfg.workers = 32;
  const RunResult g = GopParallelDecoder(gcfg).decode(stress_stream());
  ASSERT_TRUE(g.ok);
  EXPECT_EQ(g.checksum, reference_checksum());

  SliceDecoderConfig scfg;
  scfg.workers = 32;
  const RunResult s = SliceParallelDecoder(scfg).decode(stress_stream());
  ASSERT_TRUE(s.ok);
  EXPECT_EQ(s.checksum, reference_checksum());
}

TEST(ParallelStress, RepeatedRunsIdenticalOutput) {
  SliceDecoderConfig cfg;
  cfg.workers = 4;
  for (int run = 0; run < 5; ++run) {
    const RunResult r = SliceParallelDecoder(cfg).decode(stress_stream());
    ASSERT_TRUE(r.ok) << run;
    EXPECT_EQ(r.checksum, reference_checksum()) << run;
  }
}

TEST(ParallelStress, BoundedGopQueue) {
  for (const std::size_t bound : {1u, 2u, 4u}) {
    GopDecoderConfig cfg;
    cfg.workers = 3;
    cfg.max_queued_gops = bound;
    const RunResult r = GopParallelDecoder(cfg).decode(stress_stream());
    ASSERT_TRUE(r.ok) << bound;
    EXPECT_EQ(r.checksum, reference_checksum()) << bound;
  }
}

TEST(ParallelStress, OpenWindowSweep) {
  for (const int window : {1, 2, 3, 6, 16}) {
    SliceDecoderConfig cfg;
    cfg.workers = 4;
    cfg.policy = SlicePolicy::kImproved;
    cfg.max_open_pictures = window;
    const RunResult r = SliceParallelDecoder(cfg).decode(stress_stream());
    ASSERT_TRUE(r.ok) << window;
    EXPECT_EQ(r.checksum, reference_checksum()) << window;
  }
}

TEST(ParallelStress, ConcurrentIndependentDecoders) {
  // Two decoders running simultaneously in one process must not interfere
  // (CP.2: no shared mutable state between instances).
  std::uint64_t sum_a = 0, sum_b = 0;
  std::jthread a([&] {
    GopDecoderConfig cfg;
    cfg.workers = 2;
    sum_a = GopParallelDecoder(cfg).decode(stress_stream()).checksum;
  });
  std::jthread b([&] {
    SliceDecoderConfig cfg;
    cfg.workers = 2;
    sum_b = SliceParallelDecoder(cfg).decode(stress_stream()).checksum;
  });
  a.join();
  b.join();
  EXPECT_EQ(sum_a, reference_checksum());
  EXPECT_EQ(sum_b, reference_checksum());
}

TEST(ParallelStress, CallbackThrottlingDoesNotDeadlock) {
  // A slow consumer must only slow things down, never wedge the pipeline.
  SliceDecoderConfig cfg;
  cfg.workers = 4;
  int frames = 0;
  const RunResult r =
      SliceParallelDecoder(cfg).decode(stress_stream(), [&](mpeg2::FramePtr) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        ++frames;
      });
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(frames, 32);
}

TEST(ParallelStress, SingleWorkerDegenerate) {
  GopDecoderConfig gcfg;
  gcfg.workers = 1;
  EXPECT_EQ(GopParallelDecoder(gcfg).decode(stress_stream()).checksum,
            reference_checksum());
  SliceDecoderConfig scfg;
  scfg.workers = 1;
  scfg.policy = SlicePolicy::kSimple;
  EXPECT_EQ(SliceParallelDecoder(scfg).decode(stress_stream()).checksum,
            reference_checksum());
}

TEST(ParallelStress, SyncPlusComputeBounded) {
  // Wall-clock sanity of the stats: no worker reports more busy+sync time
  // than ~the whole run (with generous slack for timer granularity).
  SliceDecoderConfig cfg;
  cfg.workers = 3;
  const RunResult r = SliceParallelDecoder(cfg).decode(stress_stream());
  ASSERT_TRUE(r.ok);
  const auto wall_ns = static_cast<std::int64_t>(r.wall_s * 1e9);
  for (const auto& w : r.workers) {
    EXPECT_LE(w.sync_ns, 2 * wall_ns + 10'000'000);
  }
}

}  // namespace
}  // namespace pmp2::parallel
