// Multi-stream DecodeServer tests (docs/SERVING.md): the admission load
// model's deterministic arithmetic, reject-vs-queue decisions, the
// weighted min-service fairness policy and its virtual-time validation,
// and the server itself — solo-equivalent checksums, session isolation
// under injected faults, bounded-queue backpressure, teardown frame-pool
// leak proofs, and concurrent open/decode/cancel/teardown lifecycles (the
// *Lifecycle* suites also run under TSan via scripts/ci.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "inject/fault.h"
#include "parallel/gop_decoder.h"
#include "sched/fairness.h"
#include "serve/admission.h"
#include "serve/server.h"
#include "streamgen/stream_factory.h"

namespace pmp2 {
namespace {

using serve::AdmissionController;
using serve::AdmissionDecision;
using serve::DecodeServer;
using serve::ServerConfig;
using serve::SessionConfig;
using serve::SessionResult;
using serve::SessionState;
using serve::StreamLoadProfile;

std::vector<std::uint8_t> make_stream(int width, int height, int gop_size,
                                      int pictures,
                                      std::int64_t bit_rate = 1'500'000) {
  streamgen::StreamSpec spec;
  spec.width = width;
  spec.height = height;
  spec.gop_size = gop_size;
  spec.pictures = pictures;
  spec.bit_rate = bit_rate;
  return streamgen::generate_stream(spec);
}

std::uint64_t solo_checksum(std::span<const std::uint8_t> stream,
                            int workers = 4) {
  parallel::GopDecoderConfig config;
  config.workers = workers;
  config.quarantine_gops = true;
  const auto r = parallel::GopParallelDecoder(config).decode(stream);
  EXPECT_TRUE(r.ok);
  return r.checksum;
}

// ---------------------------------------------------------------------------
// Load predictor: pure arithmetic over the preamble, pinned exactly.

TEST(Admission, CharacterizesStreamFromPreamble) {
  const auto stream = make_stream(352, 240, 13, 13, 5'000'000);
  const StreamLoadProfile p = serve::characterize_stream(stream);
  ASSERT_TRUE(p.valid);
  EXPECT_EQ(p.width, 352);
  EXPECT_EQ(p.height, 240);
  EXPECT_EQ(p.mb_width, 22);
  EXPECT_EQ(p.mb_height, 15);
  EXPECT_GT(p.frame_rate, 0.0);
  EXPECT_GT(p.bit_rate, 0);
  // The model's exact arithmetic, recomputed from the parsed fields: any
  // drift in the formula is a deliberate, test-visible change.
  EXPECT_DOUBLE_EQ(p.mb_per_s, 22.0 * 15.0 * p.frame_rate);
  EXPECT_DOUBLE_EQ(p.burst_bits_per_s,
                   static_cast<double>(p.bit_rate) +
                       static_cast<double>(p.vbv_bits) * p.frame_rate /
                           serve::kVbvAmortPictures);
  EXPECT_DOUBLE_EQ(p.bits_per_mb, p.burst_bits_per_s / p.mb_per_s);
  EXPECT_DOUBLE_EQ(p.predicted_load,
                   p.mb_per_s * (serve::kPelCostShare +
                                 serve::kBitCostShare * p.bits_per_mb /
                                     serve::kRefBitsPerMb));
  EXPECT_GT(p.predicted_load, 0.0);
}

TEST(Admission, VbvBufferRaisesPredictedLoad) {
  // Same pels, higher coded rate => more VLC work predicted.
  const auto lo = serve::characterize_stream(
      make_stream(352, 240, 13, 13, 1'000'000));
  const auto hi = serve::characterize_stream(
      make_stream(352, 240, 13, 13, 8'000'000));
  ASSERT_TRUE(lo.valid);
  ASSERT_TRUE(hi.valid);
  EXPECT_GT(hi.predicted_load, lo.predicted_load);
  // The pel-proportional floor: even a near-zero-rate stream costs at
  // least kPelCostShare of its macroblock rate.
  EXPECT_GE(lo.predicted_load, lo.mb_per_s * serve::kPelCostShare);
}

TEST(Admission, InvalidStreamIsInvalidProfile) {
  const std::vector<std::uint8_t> garbage(512, 0xA5);
  const StreamLoadProfile p = serve::characterize_stream(garbage);
  EXPECT_FALSE(p.valid);
  EXPECT_EQ(p.predicted_load, 0.0);
}

// ---------------------------------------------------------------------------
// AdmissionController: reject vs queue bookkeeping (no threads).

StreamLoadProfile profile_with_load(double load) {
  StreamLoadProfile p;
  p.valid = true;
  p.predicted_load = load;
  return p;
}

TEST(Admission, AdmitsUntilCapacityThenQueuesThenRejects) {
  AdmissionController::Config config;
  config.capacity = 100.0;
  config.max_queued = 1;
  AdmissionController ctl(config, 4);
  const auto p60 = profile_with_load(60.0);

  EXPECT_EQ(ctl.decide(p60), AdmissionDecision::kAdmit);
  ctl.admit(p60);
  // 60 + 60 > 100 and something is running: queue (one slot).
  EXPECT_EQ(ctl.decide(p60), AdmissionDecision::kQueue);
  ctl.enqueue();
  // Queue full: reject.
  EXPECT_EQ(ctl.decide(p60), AdmissionDecision::kReject);
  // Release frees capacity again.
  ctl.dequeue();
  ctl.release(p60);
  EXPECT_EQ(ctl.decide(p60), AdmissionDecision::kAdmit);
}

TEST(Admission, IdleServerAlwaysAdmits) {
  // Work-conserving rule: a stream whose load alone exceeds capacity is
  // admitted when nothing runs — it must never wait on capacity that can
  // never be free enough.
  AdmissionController::Config config;
  config.capacity = 10.0;
  AdmissionController ctl(config, 4);
  EXPECT_EQ(ctl.decide(profile_with_load(50.0)), AdmissionDecision::kAdmit);
  ctl.admit(profile_with_load(50.0));
  EXPECT_EQ(ctl.decide(profile_with_load(50.0)),
            AdmissionDecision::kReject);  // max_queued = 0
}

TEST(Admission, InvalidProfileAlwaysRejected) {
  AdmissionController ctl({}, 4);
  EXPECT_EQ(ctl.decide(StreamLoadProfile{}), AdmissionDecision::kReject);
}

TEST(Admission, MaxSessionsCapsConcurrency) {
  AdmissionController::Config config;
  config.capacity = 1e9;
  config.max_sessions = 1;
  AdmissionController ctl(config, 4);
  const auto tiny = profile_with_load(1.0);
  EXPECT_EQ(ctl.decide(tiny), AdmissionDecision::kAdmit);
  ctl.admit(tiny);
  EXPECT_EQ(ctl.decide(tiny), AdmissionDecision::kReject);
}

// ---------------------------------------------------------------------------
// Fairness policy: pick_session + the virtual-time validation sim.

TEST(Fairness, PicksLeastNormalizedService) {
  std::vector<sched::FairShare> s(3);
  s[0] = {1.0, 1000, true};
  s[1] = {1.0, 500, true};
  s[2] = {1.0, 2000, true};
  EXPECT_EQ(sched::pick_session(s), 1);
  s[1].runnable = false;
  EXPECT_EQ(sched::pick_session(s), 0);
  s[0].runnable = s[2].runnable = false;
  EXPECT_EQ(sched::pick_session(s), -1);
}

TEST(Fairness, WeightScalesService) {
  // Session 0 has twice the weight: at equal served_ns its normalized
  // service is half, so it wins.
  std::vector<sched::FairShare> s(2);
  s[0] = {2.0, 1000, true};
  s[1] = {1.0, 1000, true};
  EXPECT_EQ(sched::pick_session(s), 0);
  // Ties break toward the lowest index, deterministically.
  s[0] = {1.0, 1000, true};
  EXPECT_EQ(sched::pick_session(s), 0);
}

TEST(Fairness, SimConvergesToWeightRatios) {
  const std::vector<double> weights = {1.0, 2.0, 1.0};
  const std::vector<std::int64_t> costs = {1000, 1000, 1000};
  const auto r = sched::simulate_fair_service(weights, costs, 4, 4000);
  ASSERT_EQ(r.served_ns.size(), weights.size());
  const double total = static_cast<double>(r.served_ns[0] + r.served_ns[1] +
                                           r.served_ns[2]);
  // Weight ratios 1:2:1 => shares 25%/50%/25%, within one task of exact.
  EXPECT_NEAR(r.served_ns[0] / total, 0.25, 0.01);
  EXPECT_NEAR(r.served_ns[1] / total, 0.50, 0.01);
  EXPECT_NEAR(r.served_ns[2] / total, 0.25, 0.01);
}

TEST(Fairness, VirtualStartSeedsArrivalsAtRunningMinimum) {
  // Start-time fair queueing: an arrival's ledger starts at weight times
  // the minimum normalized service of the running set, not at zero.
  std::vector<sched::FairShare> running(2);
  running[0] = {1.0, 4000, true};
  running[1] = {2.0, 6000, true};  // normalized 3000 — the running minimum
  EXPECT_EQ(sched::virtual_start(1.0, running), 3000);
  EXPECT_EQ(sched::virtual_start(2.0, running), 6000);  // weight-scaled
  // Empty server: nothing to catch up to, start from zero.
  EXPECT_EQ(sched::virtual_start(1.0, {}), 0);
}

TEST(Fairness, VirtualStartPreventsLateArrivalStarvation) {
  // A veteran with minutes of accumulated service vs a fresh arrival:
  // unseeded, the newcomer wins every pick until its lifetime total
  // catches up; seeded, they alternate from the moment it arrives.
  std::vector<sched::FairShare> s(1);
  s[0] = {1.0, 300'000'000'000, true};  // 5 minutes of service
  sched::FairShare arrival{1.0, 0, true};
  arrival.served_ns = sched::virtual_start(arrival.weight, s);
  s.push_back(arrival);
  EXPECT_EQ(sched::pick_session(s), 0);  // tie breaks to the veteran
  s[0].served_ns += 1000;                // veteran runs one task...
  EXPECT_EQ(sched::pick_session(s), 1);  // ...then the arrival runs one
  s[1].served_ns += 1000;
  EXPECT_EQ(sched::pick_session(s), 0);  // alternation, not monopoly
}

TEST(Fairness, SimUnevenCostsStillTrackWeights) {
  // Different task costs per session must not break the weight shares:
  // min-service scheduling equalizes *time*, not task counts.
  const std::vector<double> weights = {1.0, 1.0};
  const std::vector<std::int64_t> costs = {500, 2000};
  const auto r = sched::simulate_fair_service(weights, costs, 2, 3000);
  const double total =
      static_cast<double>(r.served_ns[0] + r.served_ns[1]);
  EXPECT_NEAR(r.served_ns[0] / total, 0.5, 0.02);
  // And the cheap-task session ran ~4x as many tasks for that time.
  EXPECT_GT(r.tasks[0], 3 * r.tasks[1]);
}

// ---------------------------------------------------------------------------
// DecodeServer: solo equivalence, isolation, backpressure, teardown.

TEST(Server, SingleSessionMatchesSoloDecoder) {
  const auto stream = make_stream(176, 120, 13, 26);
  const std::uint64_t expected = solo_checksum(stream);
  ServerConfig config;
  config.workers = 4;
  config.watchdog_ns = 30'000'000'000;
  DecodeServer server(config);
  const auto id = server.submit(stream, {});
  const SessionResult r = server.wait(id);
  EXPECT_EQ(r.state, SessionState::kFinished);
  EXPECT_TRUE(r.ok);
  EXPECT_FALSE(r.hung);
  EXPECT_EQ(r.pictures, 26);
  EXPECT_EQ(r.pictures_delivered, 26);
  EXPECT_EQ(r.checksum, expected);
  EXPECT_EQ(r.pool_idle, r.pool_misses) << "frames leaked at teardown";
}

TEST(Server, ConcurrentSessionsAreIsolated) {
  // Two clean sessions and one corrupted neighbor decode concurrently;
  // the clean sessions' outputs must be byte-identical to solo runs.
  const auto a = make_stream(176, 120, 13, 26);
  const auto b = make_stream(176, 120, 4, 16);
  const std::uint64_t expect_a = solo_checksum(a);
  const std::uint64_t expect_b = solo_checksum(b);
  const auto corrupt =
      inject::apply_fault(a, inject::plan_fault(7, 0));

  ServerConfig config;
  config.workers = 4;
  config.watchdog_ns = 30'000'000'000;
  DecodeServer server(config);
  const auto ia = server.submit(a, {});
  const auto ic = server.submit(corrupt, {});
  const auto ib = server.submit(b, {});
  const SessionResult ra = server.wait(ia);
  const SessionResult rc = server.wait(ic);
  const SessionResult rb = server.wait(ib);

  EXPECT_TRUE(ra.ok);
  EXPECT_EQ(ra.checksum, expect_a);
  EXPECT_TRUE(rb.ok);
  EXPECT_EQ(rb.checksum, expect_b);
  EXPECT_FALSE(rc.hung);  // bounded recovery, never a wedge
  EXPECT_EQ(ra.pool_idle, ra.pool_misses);
  EXPECT_EQ(rb.pool_idle, rb.pool_misses);
  EXPECT_EQ(rc.pool_idle, rc.pool_misses);
}

TEST(Server, BoundedQueueStallsAndResumes) {
  // max_queued_gops = 1 throttles the producer to one unstarted GOP; the
  // session must still complete with the exact output (stall + resume,
  // not deadlock or reorder).
  const auto stream = make_stream(176, 120, 4, 32);
  const std::uint64_t expected = solo_checksum(stream);
  ServerConfig config;
  config.workers = 2;
  config.watchdog_ns = 30'000'000'000;
  DecodeServer server(config);
  SessionConfig sc;
  sc.max_queued_gops = 1;
  const auto id = server.submit(stream, std::move(sc));
  const SessionResult r = server.wait(id);
  EXPECT_TRUE(r.ok);
  EXPECT_EQ(r.checksum, expected);
  EXPECT_EQ(r.pictures_delivered, 32);
  EXPECT_EQ(r.pool_idle, r.pool_misses);
}

TEST(Server, OverCapacityQueuesThenRuns) {
  const auto stream = make_stream(176, 120, 13, 13);
  ServerConfig config;
  config.workers = 2;
  // Capacity fits exactly one of these streams; the rest must wait.
  const auto p = serve::characterize_stream(stream);
  ASSERT_TRUE(p.valid);
  config.admission.capacity = p.predicted_load * 1.5;
  config.admission.max_queued = 8;
  DecodeServer server(config);
  std::vector<serve::SessionId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(server.submit(stream, {}));
  int queued = 0;
  for (const auto id : ids) {
    if (server.decision(id) == AdmissionDecision::kQueue) ++queued;
  }
  EXPECT_GE(queued, 1) << "expected at least one session over capacity";
  for (const auto id : ids) {
    const SessionResult r = server.wait(id);
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pool_idle, r.pool_misses);
  }
}

TEST(Server, OverCapacityRejectsWhenQueueDisabled) {
  const auto stream = make_stream(176, 120, 13, 13);
  const auto p = serve::characterize_stream(stream);
  ASSERT_TRUE(p.valid);
  ServerConfig config;
  config.workers = 2;
  config.admission.capacity = p.predicted_load * 1.5;
  config.admission.max_queued = 0;
  DecodeServer server(config);
  const auto first = server.submit(stream, {});
  const auto second = server.submit(stream, {});
  const SessionResult r2 = server.wait(second);
  EXPECT_EQ(r2.state, SessionState::kRejected);
  EXPECT_FALSE(r2.ok);
  const SessionResult r1 = server.wait(first);
  EXPECT_TRUE(r1.ok);
}

TEST(Server, RejectsGarbageStream) {
  const std::vector<std::uint8_t> garbage(1024, 0x5A);
  DecodeServer server({});
  const auto id = server.submit(garbage, {});
  EXPECT_EQ(server.decision(id), AdmissionDecision::kReject);
  const SessionResult r = server.wait(id);
  EXPECT_EQ(r.state, SessionState::kRejected);
}

TEST(Server, CancelMidDecodeReleasesEveryFrame) {
  // A long session cancelled mid-GOP: in-flight tasks finish, nothing
  // leaks, the watchdog never wedges, and wait() returns kCancelled.
  const auto stream = make_stream(352, 240, 4, 64, 5'000'000);
  ServerConfig config;
  config.workers = 2;
  config.watchdog_ns = 30'000'000'000;
  DecodeServer server(config);
  SessionConfig sc;
  sc.max_queued_gops = 1;  // keep the producer mid-stream when we cancel
  const auto id = server.submit(stream, std::move(sc));
  // Let some decode happen so the cancel lands mid-flight, not pre-start.
  while (server.surfaces().size() == 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(server.cancel(id));
  const SessionResult r = server.wait(id);
  EXPECT_EQ(r.state, SessionState::kCancelled);
  EXPECT_FALSE(r.hung);
  EXPECT_EQ(r.pool_idle, r.pool_misses) << "cancel leaked pooled frames";
  EXPECT_FALSE(server.cancel(id));  // already terminal
}

TEST(Server, CancelQueuedSessionNeverStarts) {
  const auto stream = make_stream(176, 120, 13, 13);
  const auto p = serve::characterize_stream(stream);
  ServerConfig config;
  config.workers = 2;
  config.admission.capacity = p.predicted_load * 1.5;
  config.admission.max_queued = 4;
  DecodeServer server(config);
  const auto running = server.submit(stream, {});
  const auto waiting = server.submit(stream, {});
  if (server.decision(waiting) == AdmissionDecision::kQueue) {
    EXPECT_TRUE(server.cancel(waiting));
    const SessionResult r = server.wait(waiting);
    EXPECT_EQ(r.state, SessionState::kCancelled);
    EXPECT_EQ(r.pictures_delivered, 0);
  }
  EXPECT_TRUE(server.wait(running).ok);
}

TEST(Server, WatchdogVerdictSparesProgressingInFlightWork) {
  // The claim-side watchdog only consults this verdict after a full
  // epoch-static period with pending work. A single long in-flight task
  // that keeps landing pictures must not be condemned; claimable work an
  // idle worker sat through the whole period without claiming must be.
  constexpr std::int64_t wd = 1'000'000;
  // No pending work: never wedged, whatever the clocks say.
  EXPECT_FALSE(serve::watchdog_wedged(false, 0, 10 * wd, -1, wd));
  // Pending work, no claims outstanding: claimable-but-unclaimed (or
  // dependency-blocked with nothing running to unblock it) — wedged.
  EXPECT_TRUE(serve::watchdog_wedged(true, 0, 10 * wd, -1, wd));
  // One in-flight task that emitted a picture half a period ago: progress.
  EXPECT_FALSE(serve::watchdog_wedged(true, 1, 10 * wd, 10 * wd - wd / 2, wd));
  // In-flight but telemetry-silent for a full period: wedged.
  EXPECT_TRUE(serve::watchdog_wedged(true, 1, 10 * wd, 9 * wd, wd));
  // Never progressed (-1): measured from the telemetry epoch's origin.
  EXPECT_FALSE(serve::watchdog_wedged(true, 1, wd / 2, -1, wd));
  EXPECT_TRUE(serve::watchdog_wedged(true, 1, wd, -1, wd));
}

TEST(Server, ForgetReleasesTerminalSessions) {
  // A long-lived server must not retain every session ever submitted:
  // forget() frees a terminal session's state and telemetry surface,
  // leaving a tombstone for state()/decision().
  const auto stream = make_stream(176, 120, 13, 13);
  ServerConfig config;
  config.workers = 2;
  DecodeServer server(config);
  const auto id = server.submit(stream, {});
  const SessionResult r = server.wait(id);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(server.surfaces().size(), 1u);
  EXPECT_TRUE(server.forget(id));
  EXPECT_FALSE(server.forget(id));  // already forgotten
  EXPECT_EQ(server.surfaces().size(), 0u) << "surface retained";
  // Tombstone answers survive the release; wait() degrades to a stub.
  EXPECT_EQ(server.state(id), SessionState::kFinished);
  EXPECT_EQ(server.decision(id), AdmissionDecision::kAdmit);
  EXPECT_EQ(server.wait(id).state, SessionState::kFinished);
  EXPECT_FALSE(server.cancel(id));
  EXPECT_FALSE(server.forget(id + 99));  // unknown id
  // The pool keeps serving: ids never recycle, results stay solo-exact.
  const auto id2 = server.submit(stream, {});
  EXPECT_GT(id2, id);
  EXPECT_TRUE(server.wait(id2).ok);
}

TEST(Server, ForgetRefusesNonTerminalSessions) {
  // An admission-queued session is deterministically non-terminal: it
  // cannot be forgotten until it runs (or is cancelled) and finishes.
  const auto stream = make_stream(176, 120, 13, 13);
  const auto p = serve::characterize_stream(stream);
  ASSERT_TRUE(p.valid);
  ServerConfig config;
  config.workers = 2;
  config.admission.capacity = p.predicted_load * 1.5;
  config.admission.max_queued = 4;
  DecodeServer server(config);
  const auto running = server.submit(stream, {});
  const auto waiting = server.submit(stream, {});
  if (server.decision(waiting) == AdmissionDecision::kQueue &&
      server.state(waiting) == SessionState::kQueued) {
    EXPECT_FALSE(server.forget(waiting));
  }
  EXPECT_TRUE(server.wait(running).ok);
  EXPECT_TRUE(server.wait(waiting).ok);
  EXPECT_TRUE(server.forget(waiting));
}

TEST(Server, DestructorDrainsCleanly) {
  // Destroying the server with sessions still running must cancel and
  // join without hanging or crashing (graceful teardown).
  const auto stream = make_stream(352, 240, 13, 39, 5'000'000);
  {
    ServerConfig config;
    config.workers = 2;
    DecodeServer server(config);
    for (int i = 0; i < 3; ++i) server.submit(stream, {});
    // No drain: the destructor owns the teardown.
  }
  SUCCEED();
}

// ---------------------------------------------------------------------------
// Lifecycle stress (run under TSan via scripts/ci.sh stage_tsan):
// concurrent submit/decode/cancel/wait against one shared server.

TEST(ServerLifecycle, ConcurrentOpenDecodeCancelTeardown) {
  const auto stream = make_stream(176, 120, 4, 16);
  const std::uint64_t expected = solo_checksum(stream);
  ServerConfig config;
  config.workers = 4;
  config.watchdog_ns = 30'000'000'000;
  config.admission.max_queued = 64;
  DecodeServer server(config);

  constexpr int kThreads = 4;
  constexpr int kPerThread = 4;
  std::atomic<int> ok_count{0};
  std::atomic<int> cancelled_count{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SessionConfig sc;
        sc.weight = 1.0 + t;  // uneven weights across client threads
        const auto id = server.submit(stream, std::move(sc));
        // Every other session on half the threads is cancelled quickly.
        if (t % 2 == 0 && i % 2 == 1) {
          server.cancel(id);
        }
        const SessionResult r = server.wait(id);
        if (r.state == SessionState::kFinished) {
          EXPECT_EQ(r.checksum, expected);
          ++ok_count;
        } else {
          EXPECT_EQ(r.state, SessionState::kCancelled);
          ++cancelled_count;
        }
        EXPECT_FALSE(r.hung);
        EXPECT_EQ(r.pool_idle, r.pool_misses);
        // Half the threads release their sessions immediately, racing
        // forget() against the scheduler and other clients' submits.
        if (t % 2 == 1) EXPECT_TRUE(server.forget(id));
      }
    });
  }
  for (auto& c : clients) c.join();
  // Cancels may land after natural completion, so only the totals are
  // exact: every session reached a terminal state.
  EXPECT_EQ(ok_count + cancelled_count, kThreads * kPerThread);
  EXPECT_GT(ok_count.load(), 0);
  server.drain();
}

TEST(ServerLifecycle, SequentialSessionsReuseThePool) {
  // One long-lived server decoding sessions back to back: worker threads
  // persist across sessions, results stay solo-identical every time.
  const auto stream = make_stream(176, 120, 13, 13);
  const std::uint64_t expected = solo_checksum(stream);
  ServerConfig config;
  config.workers = 3;
  DecodeServer server(config);
  for (int round = 0; round < 5; ++round) {
    const auto id = server.submit(stream, {});
    const SessionResult r = server.wait(id);
    ASSERT_TRUE(r.ok) << "round " << round;
    EXPECT_EQ(r.checksum, expected) << "round " << round;
  }
  EXPECT_EQ(server.load_summary().workers, 3);
}

}  // namespace
}  // namespace pmp2
