#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "io/image.h"
#include "io/y4m.h"
#include "streamgen/scene.h"

namespace pmp2::io {
namespace {

mpeg2::FramePtr scene_frame(int w, int h, int index) {
  streamgen::SceneConfig sc;
  sc.width = w;
  sc.height = h;
  return streamgen::SceneGenerator(sc).render(index);
}

TEST(Y4m, WriterEmitsHeaderAndFrames) {
  std::ostringstream os;
  Y4mWriter writer(os, 64, 48);
  writer.write(*scene_frame(64, 48, 0));
  writer.write(*scene_frame(64, 48, 1));
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("YUV4MPEG2 W64 H48 F30:1", 0), 0u);
  EXPECT_EQ(writer.frames_written(), 2);
  // Header line + 2 x (FRAME\n + 64*48*1.5 bytes).
  const std::size_t frame_bytes = 64 * 48 * 3 / 2;
  EXPECT_GT(out.size(), 2 * frame_bytes);
}

TEST(Y4m, RoundTripPreservesPels) {
  std::stringstream ss;
  {
    Y4mWriter writer(ss, 64, 48);
    writer.write(*scene_frame(64, 48, 3));
  }
  Y4mReader reader(ss);
  ASSERT_TRUE(reader.valid());
  EXPECT_EQ(reader.width(), 64);
  EXPECT_EQ(reader.height(), 48);
  EXPECT_DOUBLE_EQ(reader.fps(), 30.0);
  auto got = reader.read();
  ASSERT_NE(got, nullptr);
  auto want = scene_frame(64, 48, 3);
  for (int p = 0; p < 3; ++p) {
    const int w = p == 0 ? 64 : 32;
    const int h = p == 0 ? 48 : 24;
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        ASSERT_EQ(got->plane(p)[y * got->stride(p) + x],
                  want->plane(p)[y * want->stride(p) + x])
            << p << " " << x << "," << y;
      }
    }
  }
  EXPECT_EQ(reader.read(), nullptr);  // end of stream
}

TEST(Y4m, RejectsNonY4m) {
  std::istringstream is("not a y4m file");
  Y4mReader reader(is);
  EXPECT_FALSE(reader.valid());
}

TEST(Y4m, Rejects422) {
  std::istringstream is("YUV4MPEG2 W64 H48 F30:1 C422\nFRAME\n");
  Y4mReader reader(is);
  EXPECT_FALSE(reader.valid());
}

TEST(Y4m, TruncatedFrameReturnsNull) {
  std::stringstream ss;
  ss << "YUV4MPEG2 W64 H48 F30:1 C420\nFRAME\n";
  ss << std::string(100, 'x');  // far fewer than 4608 bytes
  Y4mReader reader(ss);
  ASSERT_TRUE(reader.valid());
  EXPECT_EQ(reader.read(), nullptr);
}

TEST(Y4m, FractionalFrameRate) {
  std::istringstream is("YUV4MPEG2 W16 H16 F30000:1001 C420jpeg\n");
  Y4mReader reader(is);
  ASSERT_TRUE(reader.valid());
  EXPECT_NEAR(reader.fps(), 29.97, 0.01);
}

TEST(Image, GrayFrameConvertsToGrayRgb) {
  auto f = std::make_shared<mpeg2::Frame>(16, 16);
  std::fill_n(f->y(), 16 * 16, 126);  // (126-16)*255/219 = 128.08
  std::fill_n(f->cb(), 8 * 8, 128);
  std::fill_n(f->cr(), 8 * 8, 128);
  const auto rgb = to_rgb(*f);
  ASSERT_EQ(rgb.size(), 16u * 16 * 3);
  for (std::size_t i = 0; i < rgb.size(); ++i) {
    EXPECT_NEAR(rgb[i], 128, 1) << i;
  }
}

TEST(Image, RedCastFromCr) {
  auto f = std::make_shared<mpeg2::Frame>(16, 16);
  std::fill_n(f->y(), 16 * 16, 126);
  std::fill_n(f->cb(), 8 * 8, 128);
  std::fill_n(f->cr(), 8 * 8, 200);  // strong +Cr -> red
  const auto rgb = to_rgb(*f);
  EXPECT_GT(rgb[0], rgb[1]);  // R > G
  EXPECT_GT(rgb[0], rgb[2]);  // R > B
}

TEST(Image, PpmHeaderAndSize) {
  auto f = scene_frame(32, 16, 0);
  std::ostringstream os;
  write_ppm(os, *f);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("P6\n32 16\n255\n", 0), 0u);
  EXPECT_EQ(out.size(), 13 + 32u * 16 * 3);
}

TEST(Image, DitherOutputShapeAndDeterminism) {
  auto f = scene_frame(64, 48, 2);
  const auto a = dither_rgb332(*f);
  const auto b = dither_rgb332(*f);
  EXPECT_EQ(a.size(), 64u * 48);
  EXPECT_EQ(a, b);
}

TEST(Image, DitherPreservesAverageBetterThanTruncation) {
  // A mid-gray that falls between RGB332 levels: the dithered average must
  // land nearer the true value than uniform truncation does.
  auto f = std::make_shared<mpeg2::Frame>(64, 64);
  std::fill_n(f->y(), 64 * 64, 120);  // between 3-bit levels
  std::fill_n(f->cb(), 32 * 32, 128);
  std::fill_n(f->cr(), 32 * 32, 128);
  const auto idx = dither_rgb332(*f);
  double dith_avg = 0;
  for (const auto i : idx) {
    std::uint8_t rgb[3];
    rgb332_to_rgb(i, rgb);
    dith_avg += rgb[1];  // green channel
  }
  dith_avg /= static_cast<double>(idx.size());
  const auto true_rgb = to_rgb(*f);
  const double want = true_rgb[1];
  // Truncation error for this value is ~15+ levels; dither averages out.
  EXPECT_NEAR(dith_avg, want, 8.0);
}

TEST(Image, DitherUsesMultiplePaletteEntriesOnGradients) {
  auto f = scene_frame(64, 48, 0);
  const auto idx = dither_rgb332(*f);
  std::set<std::uint8_t> palette(idx.begin(), idx.end());
  EXPECT_GT(palette.size(), 8u);
  EXPECT_LE(palette.size(), 256u);
}

TEST(Image, MeanLumaOfFlatFrame) {
  auto f = std::make_shared<mpeg2::Frame>(16, 16);
  std::fill_n(f->y(), 16 * 16, 99);
  EXPECT_DOUBLE_EQ(mean_luma(*f), 99.0);
}

}  // namespace
}  // namespace pmp2::io
