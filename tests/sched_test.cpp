// Virtual-time scheduler-simulator tests: work conservation, speedup
// bounds, the paper's qualitative properties (slice knees, improved-policy
// advantage, NUMA penalty), all on deterministic work-unit costs.
#include <gtest/gtest.h>

#include "sched/profile.h"
#include "sched/sim.h"
#include "streamgen/stream_factory.h"

namespace pmp2::sched {
namespace {

using parallel::SlicePolicy;

const StreamProfile& profile_176() {
  static const StreamProfile p = [] {
    streamgen::StreamSpec spec;
    spec.width = 176;
    spec.height = 120;
    spec.gop_size = 13;
    spec.pictures = 39;
    spec.bit_rate = 1'500'000;
    const auto stream = streamgen::generate_stream(spec);
    return profile_stream(stream);
  }();
  return p;
}

SimConfig base_config(int workers) {
  SimConfig cfg;
  cfg.workers = workers;
  cfg.measured_costs = false;  // deterministic
  return cfg;
}

TEST(Profile, CapturesStructure) {
  const auto& p = profile_176();
  ASSERT_TRUE(p.ok);
  EXPECT_EQ(p.gops.size(), 3u);
  EXPECT_EQ(p.total_pictures(), 39);
  EXPECT_EQ(p.slices_per_picture, 8);
  EXPECT_GT(p.ns_per_unit, 0.0);
  for (const auto& g : p.gops) {
    EXPECT_EQ(g.pictures.size(), 13u);
    EXPECT_GT(g.stream_bytes, 0u);
    for (const auto& pic : g.pictures) {
      EXPECT_EQ(pic.slices.size(), 8u);
      EXPECT_GT(pic.units(), 0u);
    }
  }
}

TEST(Profile, PictureCostsVaryByType) {
  // The decode-cost mix differs by type (I: all-intra coefficient work;
  // B: two motion-compensated predictions per macroblock). The robust
  // invariant for load-balance experiments is that per-picture costs are
  // positive, of the same order, and not all identical.
  const auto& p = profile_176();
  std::uint64_t units_by_type[4] = {};
  int count_by_type[4] = {};
  std::uint64_t total = 0;
  int n = 0;
  for (const auto& g : p.gops) {
    for (const auto& pic : g.pictures) {
      units_by_type[static_cast<int>(pic.type)] += pic.units();
      ++count_by_type[static_cast<int>(pic.type)];
      total += pic.units();
      ++n;
    }
  }
  const double mean = static_cast<double>(total) / n;
  for (const int t : {1, 2, 3}) {
    ASSERT_GT(count_by_type[t], 0) << t;
    const double avg =
        static_cast<double>(units_by_type[t]) / count_by_type[t];
    EXPECT_GT(avg, 0.3 * mean) << t;
    EXPECT_LT(avg, 3.0 * mean) << t;
  }
  const double i_avg = static_cast<double>(units_by_type[1]) /
                       count_by_type[1];
  const double b_avg = static_cast<double>(units_by_type[3]) /
                       count_by_type[3];
  EXPECT_NE(i_avg, b_avg);
}

TEST(GopSim, WorkConservation) {
  const auto& p = profile_176();
  const SimResult r1 = simulate_gop(p, base_config(1));
  for (const int workers : {2, 4, 8}) {
    const SimResult r = simulate_gop(p, base_config(workers));
    std::int64_t total_busy = 0;
    int total_tasks = 0;
    for (const auto& w : r.workers) {
      total_busy += w.busy_ns;
      total_tasks += w.tasks;
    }
    std::int64_t busy1 = 0;
    for (const auto& w : r1.workers) busy1 += w.busy_ns;
    EXPECT_EQ(total_busy, busy1) << workers;  // same work, redistributed
    EXPECT_EQ(total_tasks, 3);
  }
}

TEST(GopSim, SpeedupBoundedByWorkersAndTasks) {
  const auto& p = profile_176();
  const double base = simulate_gop(p, base_config(1)).pictures_per_second();
  double prev = 0;
  for (const int workers : {1, 2, 3, 4, 8}) {
    const double pps =
        simulate_gop(p, base_config(workers)).pictures_per_second();
    const double speedup = pps / base;
    EXPECT_LE(speedup, workers + 1e-9);
    EXPECT_LE(speedup, 3.0 + 1e-9);  // only 3 GOP tasks exist
    EXPECT_GE(pps, prev * 0.999);    // monotone non-decreasing
    prev = pps;
  }
}

TEST(GopSim, ManyGopsScaleNearlyLinearly) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 4;
  spec.pictures = 96;  // 24 GOP tasks
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  const StreamProfile p = profile_stream(stream);
  ASSERT_TRUE(p.ok);
  const double base = simulate_gop(p, base_config(1)).pictures_per_second();
  const double pps4 = simulate_gop(p, base_config(4)).pictures_per_second();
  EXPECT_GT(pps4 / base, 3.2);  // near-linear, as the paper's Fig. 5
}

TEST(GopSim, MemoryGrowsWithWorkers) {
  const auto& p = profile_176();
  auto cfg2 = base_config(2);
  auto cfg8 = base_config(8);
  cfg2.paced_display = cfg8.paced_display = true;
  const SimResult r2 = simulate_gop(p, cfg2);
  const SimResult r8 = simulate_gop(p, cfg8);
  EXPECT_GT(r8.peak_memory, r2.peak_memory);
}

TEST(SliceSim, SimpleKneeAtSlicesPerPicture) {
  // 176x120 has 8 slices/picture: with the simple policy, 8 workers and 16
  // workers must give (almost) identical throughput.
  const auto& p = profile_176();
  const double pps8 =
      simulate_slice(p, base_config(8), SlicePolicy::kSimple)
          .pictures_per_second();
  const double pps16 =
      simulate_slice(p, base_config(16), SlicePolicy::kSimple)
          .pictures_per_second();
  EXPECT_NEAR(pps16 / pps8, 1.0, 0.01);
}

TEST(SliceSim, ImprovedBeatsSimple) {
  const auto& p = profile_176();
  for (const int workers : {4, 8, 12}) {
    const double simple =
        simulate_slice(p, base_config(workers), SlicePolicy::kSimple)
            .pictures_per_second();
    const double improved =
        simulate_slice(p, base_config(workers), SlicePolicy::kImproved)
            .pictures_per_second();
    EXPECT_GE(improved, simple * 0.999) << workers;
  }
  // Past the knee the improved policy must be strictly better.
  const double simple12 =
      simulate_slice(p, base_config(12), SlicePolicy::kSimple)
          .pictures_per_second();
  const double improved12 =
      simulate_slice(p, base_config(12), SlicePolicy::kImproved)
          .pictures_per_second();
  EXPECT_GT(improved12, simple12 * 1.05);
}

TEST(SliceSim, SyncRatioDropsWithImprovedPolicy) {
  const auto& p = profile_176();
  const SimResult simple =
      simulate_slice(p, base_config(12), SlicePolicy::kSimple);
  const SimResult improved =
      simulate_slice(p, base_config(12), SlicePolicy::kImproved);
  EXPECT_GT(simple.sync_ratio(), improved.sync_ratio());
}

TEST(SliceSim, GopVersionFasterThanSlice) {
  // Table 4: GOP > improved slice > simple slice in max throughput.
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 4;
  spec.pictures = 64;
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  const StreamProfile p = profile_stream(stream);
  const auto cfg = base_config(8);
  const double gop = simulate_gop(p, cfg).pictures_per_second();
  const double improved =
      simulate_slice(p, cfg, SlicePolicy::kImproved).pictures_per_second();
  const double simple =
      simulate_slice(p, cfg, SlicePolicy::kSimple).pictures_per_second();
  EXPECT_GE(gop, improved * 0.98);
  EXPECT_GE(improved, simple * 0.98);
}

TEST(SliceSim, WorkConservation) {
  const auto& p = profile_176();
  for (const auto policy : {SlicePolicy::kSimple, SlicePolicy::kImproved}) {
    const SimResult r = simulate_slice(p, base_config(4), policy);
    int tasks = 0;
    for (const auto& w : r.workers) tasks += w.tasks;
    EXPECT_EQ(tasks, 39 * 8);
  }
}

TEST(SliceSim, OneWorkerMatchesSequentialCost) {
  const auto& p = profile_176();
  auto cfg = base_config(1);
  cfg.queue_overhead_ns = 0;
  cfg.picture_overhead_ns = 0;
  cfg.model_scan = false;
  const SimResult r = simulate_slice(p, cfg, SlicePolicy::kSimple);
  std::int64_t total = 0;
  for (const auto& g : p.gops) {
    for (const auto& pic : g.pictures) {
      for (const auto& s : pic.slices) total += p.slice_cost_ns(s, false);
    }
  }
  EXPECT_EQ(r.workers[0].busy_ns, total);
  EXPECT_GE(r.makespan_ns, total);  // display ordering cannot shrink it
}

TEST(NumaSim, RemotePenaltyReducesSpeedup) {
  // §7.2: on DASH, remote-miss latency is the main impediment.
  const auto& p = profile_176();
  auto uma = base_config(8);
  auto numa = base_config(8);
  numa.cluster_size = 4;
  numa.remote_penalty = 1.5;
  const double pps_uma =
      simulate_slice(p, uma, SlicePolicy::kImproved).pictures_per_second();
  const double pps_numa =
      simulate_slice(p, numa, SlicePolicy::kImproved).pictures_per_second();
  EXPECT_LT(pps_numa, pps_uma);
}

TEST(NumaSim, LocalQueuesReduceRemoteTasks) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 4;
  spec.pictures = 96;
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  const StreamProfile p = profile_stream(stream);
  auto shared_q = base_config(8);
  shared_q.cluster_size = 4;
  shared_q.remote_penalty = 1.5;
  auto local_q = shared_q;
  local_q.numa_local_queues = true;
  auto remote_count = [](const SimResult& r) {
    int n = 0;
    for (const auto& w : r.workers) n += w.remote_tasks;
    return n;
  };
  const SimResult shared = simulate_gop(p, shared_q);
  const SimResult local = simulate_gop(p, local_q);
  EXPECT_LT(remote_count(local), remote_count(shared));
  EXPECT_GE(local.pictures_per_second(), shared.pictures_per_second());
}

TEST(Sim, PacedDisplayStretchesMakespan) {
  const auto& p = profile_176();
  auto fast = base_config(8);
  auto paced = base_config(8);
  paced.paced_display = true;
  const SimResult rf = simulate_gop(p, fast);
  const SimResult rp = simulate_gop(p, paced);
  EXPECT_GE(rp.makespan_ns, rf.makespan_ns);
  // 39 pictures at 30/s >= 1.26 s.
  EXPECT_GE(rp.makespan_ns, static_cast<std::int64_t>(38.0 / 30.0 * 1e9));
}

TEST(Sim, DeterministicAcrossRuns) {
  const auto& p = profile_176();
  const SimResult a = simulate_slice(p, base_config(5), SlicePolicy::kImproved);
  const SimResult b = simulate_slice(p, base_config(5), SlicePolicy::kImproved);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.peak_memory, b.peak_memory);
  for (std::size_t i = 0; i < a.workers.size(); ++i) {
    EXPECT_EQ(a.workers[i].busy_ns, b.workers[i].busy_ns);
    EXPECT_EQ(a.workers[i].sync_ns, b.workers[i].sync_ns);
  }
}

}  // namespace
}  // namespace pmp2::sched
