// Hardware-counter profiling layer (docs/OBSERVABILITY.md, "Hardware
// profiling"): counter sources, per-stage attribution math, the prof
// JSON schema, the sampling profiler's collapsed-stack format, the
// telemetry counter columns and the bench_check counter-capability
// rules. Everything that needs exact numbers runs on FakeCounterSource,
// so the suite passes in PMU-less CI containers; the perf-specific
// tests GTEST_SKIP themselves on hosts that cannot open hardware
// events.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <sstream>
#include <thread>

#include "obs/analysis/bench_compare.h"
#include "obs/json_parse.h"
#include "obs/live/sampler.h"
#include "obs/live/telemetry.h"
#include "obs/prof/counters.h"
#include "obs/prof/sampling.h"
#include "obs/prof/stage_prof.h"
#include "obs/report.h"

namespace {

// No blanket `using namespace pmp2::obs`: the metrics Counter class and
// prof::Counter would collide.
using namespace pmp2::obs::prof;
using pmp2::obs::JsonValue;
using pmp2::obs::json_parse;

// --- Counter sources ------------------------------------------------------

TEST(FakeCounterSource, DeterministicSteps) {
  FakeCounterSource src;
  auto tc = src.open_thread();
  ASSERT_NE(tc, nullptr);
  CounterSample s1, s2, s3;
  ASSERT_TRUE(tc->read(&s1));
  ASSERT_TRUE(tc->read(&s2));
  ASSERT_TRUE(tc->read(&s3));
  const FakeSteps steps;
  EXPECT_EQ(s1.get(Counter::kCycles), steps.cycles);
  EXPECT_EQ(s2.get(Counter::kCycles), 2 * steps.cycles);
  EXPECT_EQ(s3.get(Counter::kCycles), 3 * steps.cycles);
  EXPECT_EQ(s3.get(Counter::kInstructions), 3 * steps.instructions);
  EXPECT_EQ(s3.get(Counter::kTaskClockNs), 3 * steps.task_clock_ns);
  EXPECT_EQ(src.total_reads(), 3u);
  // Deltas between consecutive reads are exactly one step.
  const CounterSample d = s2.delta_since(s1);
  EXPECT_EQ(d.get(Counter::kCycles), steps.cycles);
  EXPECT_EQ(d.get(Counter::kCacheMisses), steps.cache_misses);
}

TEST(FakeCounterSource, RespectsMask) {
  FakeCounterSource src({}, counter_bit(Counter::kCycles));
  auto tc = src.open_thread();
  ASSERT_NE(tc, nullptr);
  CounterSample s;
  ASSERT_TRUE(tc->read(&s));
  EXPECT_TRUE(s.has(Counter::kCycles));
  EXPECT_FALSE(s.has(Counter::kInstructions));
  EXPECT_EQ(s.get(Counter::kInstructions), 0u);
}

TEST(CounterSample, DeltaClampsAndAccumulates) {
  CounterSample a, b;
  a.mask = b.mask = counter_bit(Counter::kCycles);
  a.v[0] = 100;
  b.v[0] = 90;  // "went backwards" (multiplex-scaling jitter)
  const CounterSample d = b.delta_since(a);
  EXPECT_EQ(d.get(Counter::kCycles), 0u);
  CounterSample sum;
  sum.accumulate(d);
  CounterSample d2 = a.delta_since(b);
  sum.accumulate(d2);
  EXPECT_EQ(sum.get(Counter::kCycles), 10u);
  EXPECT_TRUE(sum.has(Counter::kCycles));
}

TEST(ProbeHost, SanityAndSourceSelection) {
  const HostProfile host = probe_host();
#if defined(__linux__)
  EXPECT_FALSE(host.kernel_release.empty());
#endif
  EXPECT_TRUE(host.source == "perf" || host.source == "software");
  if (host.hw_available) {
    EXPECT_TRUE(host.perf_available);
    EXPECT_EQ(host.source, "perf");
  } else {
    EXPECT_EQ(host.source, "software");
  }
  auto src = make_counter_source();
  ASSERT_NE(src, nullptr);
  EXPECT_EQ(host.source, src->name());
}

TEST(SoftwareCounterSource, ThreadClockAdvances) {
  SoftwareCounterSource src;
  auto tc = src.open_thread();
  ASSERT_NE(tc, nullptr);
  CounterSample before, after;
  ASSERT_TRUE(tc->read(&before));
  // Burn actual CPU on this thread; sleep would not move the clock.
  volatile std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(20)) {
    sink += 1;
  }
  ASSERT_TRUE(tc->read(&after));
  EXPECT_GT(after.get(Counter::kTaskClockNs),
            before.get(Counter::kTaskClockNs));
}

TEST(PerfCounterSource, HardwareCountersMonotone) {
  const HostProfile host = probe_host();
  if (!host.hw_available) {
    GTEST_SKIP() << "no usable PMU on this host (perf_event_paranoid="
                 << host.perf_event_paranoid << ")";
  }
  auto src = PerfCounterSource::make();
  ASSERT_NE(src, nullptr);
  auto tc = src->open_thread();
  ASSERT_NE(tc, nullptr);
  CounterSample before, after;
  ASSERT_TRUE(tc->read(&before));
  volatile std::uint64_t sink = 1;
  for (int i = 0; i < 2'000'000; ++i) sink = sink * 3 + 1;
  ASSERT_TRUE(tc->read(&after));
  const CounterSample d = after.delta_since(before);
  EXPECT_GT(d.get(Counter::kCycles), 0u);
  EXPECT_GT(d.get(Counter::kInstructions), 0u);
}

// --- Stage attribution ----------------------------------------------------

TEST(StageProfiler, AttributesDeltasToTheStageBeingLeft) {
  StageProfiler prof(std::make_unique<FakeCounterSource>(), 1);
  WorkerProf* w = prof.bind(0);
  ASSERT_NE(w, nullptr);
  ASSERT_TRUE(w->counting());
  const FakeSteps steps;
  {
    // bind() read the baseline (read #1). Entering the scope reads #2 and
    // charges one step to kOther; leaving reads #3 and charges one step
    // to kVlc.
    StageScope vlc(Stage::kVlc);
  }
  EXPECT_EQ(w->stage(Stage::kVlc).counters.get(Counter::kCycles),
            steps.cycles);
  EXPECT_EQ(w->stage(Stage::kVlc).enters, 1u);
  EXPECT_EQ(w->stage(Stage::kOther).counters.get(Counter::kCycles),
            steps.cycles);
  EXPECT_EQ(w->stage(Stage::kIdct).counters.get(Counter::kCycles), 0u);
  StageProfiler::unbind();
}

TEST(StageProfiler, NestedScopesRestoreThePreviousStage) {
  StageProfiler prof(std::make_unique<FakeCounterSource>(), 1);
  WorkerProf* w = prof.bind(0);
  ASSERT_NE(w, nullptr);
  const FakeSteps steps;
  {
    StageScope vlc(Stage::kVlc);        // read #2: step -> kOther
    {
      StageScope idct(Stage::kIdct);    // read #3: step -> kVlc
    }                                   // read #4: step -> kIdct
  }                                     // read #5: step -> kVlc
  EXPECT_EQ(w->stage(Stage::kVlc).counters.get(Counter::kCycles),
            2 * steps.cycles);
  EXPECT_EQ(w->stage(Stage::kIdct).counters.get(Counter::kCycles),
            steps.cycles);
  EXPECT_EQ(w->stage(Stage::kVlc).enters, 2u);  // entered, then restored
  EXPECT_EQ(w->stage(Stage::kIdct).enters, 1u);
  StageProfiler::unbind();
}

TEST(StageProfiler, TakeTaskDeltaFlushesAndResets) {
  StageProfiler prof(std::make_unique<FakeCounterSource>(), 1);
  WorkerProf* w = prof.bind(0);
  ASSERT_NE(w, nullptr);
  const FakeSteps steps;
  {
    StageScope vlc(Stage::kVlc);  // reads #2, #3
  }
  // take flushes with read #4: three charged deltas since bind.
  const CounterSample task = w->take_task_delta();
  EXPECT_EQ(task.get(Counter::kCycles), 3 * steps.cycles);
  EXPECT_EQ(task.get(Counter::kInstructions), 3 * steps.instructions);
  // The accumulator reset: the next take holds only its own flush read.
  const CounterSample next = w->take_task_delta();
  EXPECT_EQ(next.get(Counter::kCycles), steps.cycles);
  StageProfiler::unbind();
}

TEST(StageProfiler, AggregatesAcrossWorkerSlots) {
  StageProfiler prof(std::make_unique<FakeCounterSource>(), 2);
  const FakeSteps steps;
  auto work = [&prof](int slot) {
    ASSERT_NE(prof.bind(slot), nullptr);
    {
      StageScope mc(Stage::kMc);
    }
    StageProfiler::unbind();
  };
  std::thread a(work, 0);
  a.join();
  std::thread b(work, 1);
  b.join();
  const ProfSummary s = prof.aggregate();
  EXPECT_EQ(s.source, "fake");
  EXPECT_EQ(s.workers, 2);
  EXPECT_EQ(s.stages[static_cast<int>(Stage::kMc)].counters.get(
                Counter::kCycles),
            2 * steps.cycles);
  EXPECT_EQ(s.stages[static_cast<int>(Stage::kMc)].enters, 2u);
  // total = sum over stages (2 scope deltas per worker).
  EXPECT_EQ(s.total.get(Counter::kCycles), 4 * steps.cycles);
  EXPECT_TRUE(s.has_hw());
}

TEST(StageScope, IsANoOpWithoutABoundProfiler) {
  ASSERT_EQ(tls_worker_prof, nullptr);
  StageScope scope(Stage::kIdct);  // must not crash or allocate state
  SUCCEED();
}

TEST(StageProfiler, OutOfRangeSlotReturnsNull) {
  StageProfiler prof(std::make_unique<FakeCounterSource>(), 1);
  EXPECT_EQ(prof.bind(-1), nullptr);
  EXPECT_EQ(prof.bind(1), nullptr);
  EXPECT_EQ(tls_worker_prof, nullptr);
}

// --- pmp2-prof/1 serialization --------------------------------------------

ProfSummary fake_run_summary() {
  StageProfiler prof(std::make_unique<FakeCounterSource>(), 1);
  prof.bind(0);
  {
    StageScope vlc(Stage::kVlc);
    {
      StageScope idct(Stage::kIdct);
    }
  }
  StageProfiler::unbind();
  ProfSummary s = prof.aggregate();
  s.kernels_backend = "scalar";
  return s;
}

TEST(ProfJson, RoundTripsExactly) {
  const ProfSummary a = fake_run_summary();
  std::ostringstream os;
  write_prof_json(os, a);
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(os.str(), doc, &error)) << error;
  ProfSummary b;
  ASSERT_TRUE(parse_prof_json(doc, &b, &error)) << error;
  EXPECT_EQ(b.source, a.source);
  EXPECT_EQ(b.mask, a.mask);
  EXPECT_EQ(b.workers, a.workers);
  EXPECT_EQ(b.kernels_backend, a.kernels_backend);
  for (int i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(b.stages[i].enters, a.stages[i].enters) << "stage " << i;
    for (int c = 0; c < kCounterCount; ++c) {
      EXPECT_EQ(b.stages[i].counters.v[c], a.stages[i].counters.v[c])
          << "stage " << i << " counter " << c;
    }
  }
  EXPECT_EQ(b.total.get(Counter::kCycles), a.total.get(Counter::kCycles));
}

TEST(ProfJson, RejectsWrongSchema) {
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_parse(R"({"schema":"pmp2-live/1"})", doc, &error));
  ProfSummary out;
  EXPECT_FALSE(parse_prof_json(doc, &out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
}

TEST(ProfText, HardwareSummaryShowsTheIdealVsStallSplit) {
  const ProfSummary s = fake_run_summary();
  std::ostringstream os;
  write_prof_text(os, s);
  const std::string text = os.str();
  EXPECT_NE(text.find("ideal-vs-stall split"), std::string::npos);
  EXPECT_NE(text.find("vlc"), std::string::npos);
  EXPECT_NE(text.find("ipc"), std::string::npos);
}

TEST(ProfText, DegradedSummarySaysCountersUnavailable) {
  StageProfiler prof(std::make_unique<SoftwareCounterSource>(), 1);
  std::ostringstream os;
  write_prof_text(os, prof.aggregate());
  EXPECT_NE(os.str().find("hardware counters unavailable"),
            std::string::npos);
}

// --- Sampling profiler ----------------------------------------------------

TEST(CollapsedStacks, WriteParseRoundTrip) {
  CollapsedProfile p;
  p.stacks["main;decode;idct"] = 7;
  p.stacks["main;scan"] = 3;
  p.total = 10;
  std::ostringstream os;
  SamplingProfiler::write_collapsed(os, p);
  CollapsedProfile q;
  std::string error;
  ASSERT_TRUE(SamplingProfiler::parse_collapsed(os.str(), &q, &error))
      << error;
  EXPECT_EQ(q.stacks, p.stacks);
  EXPECT_EQ(q.total, 10u);
}

TEST(CollapsedStacks, ParserRejectsMalformedLines) {
  CollapsedProfile out;
  std::string error;
  EXPECT_FALSE(
      SamplingProfiler::parse_collapsed("main;decode notanumber", &out,
                                        &error));
  EXPECT_FALSE(SamplingProfiler::parse_collapsed("nostackcount", &out,
                                                 &error));
  // Blank lines and comments are tolerated.
  EXPECT_TRUE(
      SamplingProfiler::parse_collapsed("# comment\n\nmain;f 4\n", &out,
                                        &error))
      << error;
  EXPECT_EQ(out.total, 4u);
}

TEST(SamplingProfiler, CapturesABusyLoopEndToEnd) {
#if !defined(__linux__)
  GTEST_SKIP() << "sampling profiler is Linux-only";
#endif
  SamplingProfiler profiler;
  SamplingOptions options;
  options.interval_us = 500;
  ASSERT_TRUE(profiler.start(options));
  EXPECT_TRUE(profiler.running());
  // ITIMER_PROF fires on consumed CPU time, so spin, don't sleep. Lenient
  // on totals: shared CI machines can starve the thread.
  volatile std::uint64_t sink = 1;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::steady_clock::now() - t0 <
         std::chrono::milliseconds(200)) {
    sink = sink * 2862933555777941757ull + 3037000493ull;
  }
  profiler.stop();
  EXPECT_FALSE(profiler.running());
  const CollapsedProfile p = profiler.collapse();
  // Round-trip whatever was captured (possibly empty on a starved host).
  std::ostringstream os;
  SamplingProfiler::write_collapsed(os, p);
  CollapsedProfile q;
  std::string error;
  EXPECT_TRUE(SamplingProfiler::parse_collapsed(os.str(), &q, &error))
      << error;
  EXPECT_EQ(q.total, p.total);
}

TEST(SamplingProfiler, SecondStartWhileRunningFails) {
#if !defined(__linux__)
  GTEST_SKIP() << "sampling profiler is Linux-only";
#endif
  SamplingProfiler a;
  ASSERT_TRUE(a.start());
  SamplingProfiler b;
  EXPECT_FALSE(b.start());  // one profiler per process
  a.stop();
  EXPECT_TRUE(b.start());  // claim released
  b.stop();
}

// --- Telemetry counter columns --------------------------------------------

TEST(TelemetryCounters, AddCountersFoldsIntoTheCell) {
  pmp2::obs::live::TelemetryCell cell;
  CounterSample d;
  d.mask = kHardwareMask;
  d.v[static_cast<int>(Counter::kCycles)] = 1000;
  d.v[static_cast<int>(Counter::kInstructions)] = 800;
  d.v[static_cast<int>(Counter::kCacheMisses)] = 10;
  {
    pmp2::obs::live::TelemetryCell::Write w(cell);
    w.add_counters(d);
  }
  {
    pmp2::obs::live::TelemetryCell::Write w(cell);
    w.add_counters(d);
  }
  const pmp2::obs::live::CellSample s = cell.sample();
  EXPECT_EQ(s.cycles, 2000);
  EXPECT_EQ(s.instructions, 1600);
  EXPECT_EQ(s.cache_misses, 20);
}

TEST(TelemetryCounters, SnapshotComputesWindowedRatios) {
  pmp2::obs::live::LiveTelemetry telemetry(2);
  telemetry.set_counter_source("fake", kHardwareMask);
  pmp2::obs::live::LiveSampler::Options options;
  pmp2::obs::live::LiveSampler sampler(telemetry, options);

  CounterSample d;
  d.mask = kHardwareMask;
  d.v[static_cast<int>(Counter::kCycles)] = 1000;
  d.v[static_cast<int>(Counter::kInstructions)] = 500;
  d.v[static_cast<int>(Counter::kCacheRefs)] = 100;
  d.v[static_cast<int>(Counter::kCacheMisses)] = 25;
  d.v[static_cast<int>(Counter::kStalledBackend)] = 400;
  {
    pmp2::obs::live::TelemetryCell::Write w(telemetry.worker(0));
    w.add_counters(d);
  }
  {
    pmp2::obs::live::TelemetryCell::Write w(telemetry.worker(1));
    w.add_counters(d);
  }
  const auto snap = sampler.sample_at(250'000'000);
  EXPECT_EQ(snap.counter_source, "fake");
  EXPECT_EQ(snap.cycles, 2000);
  EXPECT_EQ(snap.instructions, 1000);
  EXPECT_DOUBLE_EQ(snap.ipc_1s, 0.5);
  EXPECT_DOUBLE_EQ(snap.miss_rate_1s, 0.25);
  EXPECT_DOUBLE_EQ(snap.stall_frac_1s, 0.4);

  // Snapshot JSON round-trips the counter block.
  std::ostringstream os;
  pmp2::obs::live::write_snapshot_json(snap, os);
  pmp2::obs::live::LiveSnapshot back;
  std::string error;
  ASSERT_TRUE(pmp2::obs::live::parse_snapshot(os.str(), back, &error))
      << error;
  EXPECT_EQ(back.counter_source, "fake");
  EXPECT_EQ(back.cycles, 2000);
  EXPECT_DOUBLE_EQ(back.ipc_1s, 0.5);
  ASSERT_EQ(back.workers.size(), 2u);
  EXPECT_EQ(back.workers[0].cell.cycles, 1000);
}

TEST(TelemetryCounters, SnapshotOmitsCountersWithoutAProfiler) {
  pmp2::obs::live::LiveTelemetry telemetry(1);
  pmp2::obs::live::LiveSampler::Options options;
  pmp2::obs::live::LiveSampler sampler(telemetry, options);
  const auto snap = sampler.sample_at(250'000'000);
  EXPECT_TRUE(snap.counter_source.empty());
  std::ostringstream os;
  pmp2::obs::live::write_snapshot_json(snap, os);
  EXPECT_EQ(os.str().find("\"counters\""), std::string::npos);
  pmp2::obs::live::LiveSnapshot back;
  std::string error;
  ASSERT_TRUE(pmp2::obs::live::parse_snapshot(os.str(), back, &error))
      << error;
  EXPECT_TRUE(back.counter_source.empty());
}

// --- bench_check counter rules --------------------------------------------

namespace analysis = pmp2::obs::analysis;

TEST(BenchCompareCounters, MissAndStallRatesAreLowerBetter) {
  EXPECT_FALSE(analysis::metric_higher_is_better("read_miss_rate"));
  EXPECT_FALSE(analysis::metric_higher_is_better("miss_rate_w1s"));
  EXPECT_FALSE(analysis::metric_higher_is_better("stall_percent"));
  EXPECT_FALSE(analysis::metric_higher_is_better("stall_frac_w1s"));
  // ...while genuine rates stay higher-better.
  EXPECT_TRUE(
      analysis::metric_higher_is_better("megabits_per_second_rate"));
  EXPECT_TRUE(analysis::metric_higher_is_better("ipc_after"));
}

TEST(BenchCompareCounters, CounterColumnsAreMetricsNotIdentity) {
  EXPECT_TRUE(analysis::is_metric_field("cycles_per_op_before"));
  EXPECT_TRUE(analysis::is_metric_field("instructions_per_op_after"));
  EXPECT_TRUE(analysis::is_metric_field("ipc_before"));
  EXPECT_TRUE(analysis::is_counter_metric("cycles_per_op_before"));
  EXPECT_TRUE(analysis::is_counter_metric("ipc_after"));
  EXPECT_FALSE(analysis::is_counter_metric("ns_per_op"));
  EXPECT_FALSE(analysis::is_counter_metric("pictures_per_second"));
}

JsonValue make_counter_report(const char* source, double ns,
                              double cycles) {
  pmp2::obs::RunReport r("bench_counters", "counter-capability fixture");
  r.set_meta("counter_source", source);
  auto& row = r.add_row();
  row.set("speedup", "idct_corpus").set("ns_per_op", ns);
  if (cycles > 0) row.set("cycles_per_op_after", cycles);
  std::ostringstream os;
  r.write_json(os);
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(json_parse(os.str(), doc, &error)) << error;
  return doc;
}

TEST(BenchCompareCounters, SourceMismatchSuppressesCounterColumnsOnly) {
  // perf baseline vs software candidate: the cycles column is absent and
  // wildly different metrics would normally fail — but across a
  // counter_source change they are suppressed with a note, while the
  // time columns still compare.
  const JsonValue base = make_counter_report("perf", 100.0, 5000.0);
  const JsonValue cand = make_counter_report("software", 100.0, 0.0);
  const analysis::CompareResult r = analysis::compare_reports(base, cand);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.passed()) << "counter columns must not fail across a "
                             "capability change";
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes[0].find("counter_source"), std::string::npos);

  // Same capability: a 2x cycles regression is a real regression.
  const JsonValue worse = make_counter_report("perf", 100.0, 10000.0);
  const analysis::CompareResult r2 = analysis::compare_reports(base, worse);
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_FALSE(r2.passed());
  ASSERT_FALSE(r2.regressions.empty());
  EXPECT_EQ(r2.regressions[0].metric, "cycles_per_op_after");
  EXPECT_FALSE(r2.regressions[0].higher_better);
}

}  // namespace
