#include <gtest/gtest.h>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/motion.h"
#include "mpeg2/motion_est.h"
#include "util/rng.h"

namespace pmp2::mpeg2 {
namespace {

TEST(MotionVectors, FCodeForRange) {
  EXPECT_EQ(f_code_for_range(15), 1);   // f=1: [-16, 15]
  EXPECT_EQ(f_code_for_range(16), 2);   // needs f=2: [-32, 31]
  EXPECT_EQ(f_code_for_range(31), 2);
  EXPECT_EQ(f_code_for_range(32), 3);
  EXPECT_EQ(f_code_for_range(600), 7);
}

TEST(MotionVectors, ChromaDerivationTruncatesTowardZero) {
  EXPECT_EQ(chroma_mv(3), 1);
  EXPECT_EQ(chroma_mv(-3), -1);
  EXPECT_EQ(chroma_mv(4), 2);
  EXPECT_EQ(chroma_mv(-4), -2);
  EXPECT_EQ(chroma_mv(0), 0);
  EXPECT_EQ(chroma_mv(1), 0);
  EXPECT_EQ(chroma_mv(-1), 0);
}

class MvRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(MvRoundTrip, EncodeDecodeAllValuesInRange) {
  const int f_code = GetParam();
  const int f = 1 << (f_code - 1);
  const int low = -16 * f;
  const int high = 16 * f - 1;
  // Every (pred, value) pair over a subsample of the range must round-trip.
  Rng rng(f_code);
  for (int t = 0; t < 2000; ++t) {
    const int pred0 = rng.next_in(low, high);
    const int value = rng.next_in(low, high);
    BitWriter bw;
    int enc_pred = pred0;
    encode_mv_component(bw, f_code, value, enc_pred);
    EXPECT_EQ(enc_pred, value);
    bw.put(0, 16);  // padding
    auto bytes = bw.take();
    BitReader br(bytes);
    int dec_pred = pred0;
    ASSERT_TRUE(decode_mv_component(br, f_code, dec_pred));
    EXPECT_EQ(dec_pred, value) << "f_code " << f_code << " pred " << pred0;
  }
}

INSTANTIATE_TEST_SUITE_P(FCodes, MvRoundTrip, ::testing::Values(1, 2, 3, 4, 7));

TEST(MotionVectors, ZeroDeltaIsOneBit) {
  BitWriter bw;
  int pred = 5;
  encode_mv_component(bw, 2, 5, pred);
  EXPECT_EQ(bw.bit_count(), 1u);  // motion_code 0 = '1'
}

TEST(MotionVectors, WraparoundUsed) {
  // Delta beyond +high wraps to a small negative code.
  const int f_code = 1;  // range [-16, 15]
  BitWriter bw;
  int pred = 15;
  encode_mv_component(bw, f_code, -16, pred);  // delta -31 -> wraps to +1
  auto bytes = bw.take();
  BitReader br(bytes);
  int dec_pred = 15;
  ASSERT_TRUE(decode_mv_component(br, f_code, dec_pred));
  EXPECT_EQ(dec_pred, -16);
}

// --- form_prediction -------------------------------------------------------

FramePtr make_gradient_ptr(int w, int h) {
  auto fp = std::make_shared<Frame>(w, h);
  Frame& f = *fp;
  for (int y = 0; y < f.coded_height(); ++y) {
    for (int x = 0; x < f.y_stride(); ++x) {
      f.y()[y * f.y_stride() + x] =
          static_cast<std::uint8_t>((x * 3 + y * 7) & 0xFF);
    }
  }
  for (int p = 1; p <= 2; ++p) {
    for (int y = 0; y < f.coded_height() / 2; ++y) {
      for (int x = 0; x < f.c_stride(); ++x) {
        f.plane(p)[y * f.c_stride() + x] =
            static_cast<std::uint8_t>((x * 5 + y * 11 + p) & 0xFF);
      }
    }
  }
  return fp;
}

TEST(FormPrediction, FullPelCopy) {
  FramePtr ref_p = make_gradient_ptr(64, 48);
  Frame& ref = *ref_p;
  std::uint8_t dst[64];
  form_prediction(ref.y(), ref.y_stride(), dst, 8, 16, 16, 8, 8, 2 * 3,
                  2 * -2, McMode::kCopy);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      EXPECT_EQ(dst[r * 8 + c],
                ref.y()[(16 - 2 + r) * ref.y_stride() + 16 + 3 + c]);
    }
  }
}

TEST(FormPrediction, HalfPelHorizontalAveraging) {
  FramePtr ref_p = make_gradient_ptr(64, 48);
  Frame& ref = *ref_p;
  std::uint8_t dst[64];
  form_prediction(ref.y(), ref.y_stride(), dst, 8, 8, 8, 8, 8, 1, 0,
                  McMode::kCopy);
  const int rs = ref.y_stride();
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const int a = ref.y()[(8 + r) * rs + 8 + c];
      const int b = ref.y()[(8 + r) * rs + 8 + c + 1];
      EXPECT_EQ(dst[r * 8 + c], (a + b + 1) >> 1);
    }
  }
}

TEST(FormPrediction, HalfPelDiagonalAveraging) {
  FramePtr ref_p = make_gradient_ptr(64, 48);
  Frame& ref = *ref_p;
  std::uint8_t dst[64];
  form_prediction(ref.y(), ref.y_stride(), dst, 8, 8, 8, 8, 8, -1, -1,
                  McMode::kCopy);
  const int rs = ref.y_stride();
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      // -1 half-pel = integer offset -1 with half bit set.
      const int a = ref.y()[(7 + r) * rs + 7 + c];
      const int b = ref.y()[(7 + r) * rs + 8 + c];
      const int cc = ref.y()[(8 + r) * rs + 7 + c];
      const int d = ref.y()[(8 + r) * rs + 8 + c];
      EXPECT_EQ(dst[r * 8 + c], (a + b + cc + d + 2) >> 2);
    }
  }
}

TEST(FormPrediction, AverageModeMatchesBidirectionalFormula) {
  FramePtr ref_p = make_gradient_ptr(64, 48);
  Frame& ref = *ref_p;
  std::uint8_t dst[64];
  // First pass: copy from one position.
  form_prediction(ref.y(), ref.y_stride(), dst, 8, 0, 0, 8, 8, 0, 0,
                  McMode::kCopy);
  std::uint8_t first[64];
  std::copy(std::begin(dst), std::end(dst), std::begin(first));
  // Second pass: average with another position.
  form_prediction(ref.y(), ref.y_stride(), dst, 8, 16, 8, 8, 8, 0, 0,
                  McMode::kAverage);
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const int other = ref.y()[(8 + r) * ref.y_stride() + 16 + c];
      EXPECT_EQ(dst[r * 8 + c], (first[r * 8 + c] + other + 1) >> 1);
    }
  }
}

TEST(McMacroblock, CopiesWholeMacroblockAtZeroMv) {
  FramePtr ref_p = make_gradient_ptr(64, 48);
  Frame& ref = *ref_p;
  Frame dst(64, 48);
  mc_macroblock(ref, 0, dst, 1, 1, 1, {0, 0}, McMode::kCopy);
  for (int r = 0; r < 16; ++r) {
    for (int c = 0; c < 16; ++c) {
      EXPECT_EQ(dst.y()[(16 + r) * dst.y_stride() + 16 + c],
                ref.y()[(16 + r) * ref.y_stride() + 16 + c]);
    }
  }
  for (int p = 1; p <= 2; ++p) {
    for (int r = 0; r < 8; ++r) {
      for (int c = 0; c < 8; ++c) {
        EXPECT_EQ(dst.plane(p)[(8 + r) * dst.c_stride() + 8 + c],
                  ref.plane(p)[(8 + r) * ref.c_stride() + 8 + c]);
      }
    }
  }
}

// --- motion estimation -----------------------------------------------------

TEST(MotionEstimation, FindsKnownShift) {
  // cur = ref shifted right by 3 full pels: ME must find mv = (+6, 0)
  // in half-pel units (prediction at cur position samples ref at +3).
  FramePtr ref_p = make_gradient_ptr(96, 64);
  Frame& ref = *ref_p;
  Frame cur(96, 64);
  const int rs = ref.y_stride();
  for (int y = 0; y < cur.coded_height(); ++y) {
    for (int x = 0; x < cur.y_stride(); ++x) {
      const int sx = std::min(x + 3, cur.y_stride() - 1);
      cur.y()[y * rs + x] = ref.y()[y * rs + sx];
    }
  }
  const MeResult me = estimate_motion(ref, cur, 2, 2, 7);
  EXPECT_EQ(me.mv.x, 6);
  EXPECT_EQ(me.mv.y, 0);
  EXPECT_EQ(me.sad, 0);
}

TEST(MotionEstimation, ExhaustiveAtLeastAsGoodAsFast) {
  Rng rng(5);
  FramePtr ref_p = make_gradient_ptr(96, 64);
  Frame& ref = *ref_p;
  Frame cur(96, 64);
  for (int y = 0; y < cur.coded_height(); ++y) {
    for (int x = 0; x < cur.y_stride(); ++x) {
      cur.y()[y * cur.y_stride() + x] =
          static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  for (int mb = 0; mb < 6; ++mb) {
    const MeResult fast = estimate_motion(ref, cur, mb, 1, 4);
    const MeResult full = estimate_motion_exhaustive(ref, cur, mb, 1, 4);
    EXPECT_LE(full.sad, fast.sad);
  }
}

TEST(MotionEstimation, ZeroSadOnIdenticalFrames) {
  FramePtr ref_p = make_gradient_ptr(64, 48);
  Frame& ref = *ref_p;
  FramePtr cur_p = make_gradient_ptr(64, 48);
  Frame& cur = *cur_p;
  const MeResult me = estimate_motion(ref, cur, 1, 1, 7);
  EXPECT_EQ(me.sad, 0);
  EXPECT_EQ(me.mv.x, 0);
  EXPECT_EQ(me.mv.y, 0);
}

TEST(MotionEstimation, IntraActivityOfFlatBlockIsZero) {
  Frame f(64, 48);
  std::fill_n(f.y(), f.y_stride() * f.coded_height(), 77);
  EXPECT_EQ(intra_activity(f, 1, 1), 0);
}

}  // namespace
}  // namespace pmp2::mpeg2
