// Parallel-runtime tests: queue/display primitives, and the paper's core
// correctness invariant — every parallel decoder variant produces output
// bit-identical to the sequential decoder, in display order.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "mpeg2/decoder.h"
#include "parallel/display.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "parallel/task_queue.h"
#include "streamgen/stream_factory.h"

namespace pmp2::parallel {
namespace {

using streamgen::StreamSpec;
using streamgen::generate_stream;

// --- TaskQueue -------------------------------------------------------------

TEST(TaskQueue, FifoSingleThread) {
  TaskQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  q.close();
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(TaskQueue, CloseUnblocksConsumers) {
  TaskQueue<int> q;
  std::atomic<int> finished{0};
  std::vector<std::jthread> consumers;
  for (int i = 0; i < 3; ++i) {
    consumers.emplace_back([&] {
      while (q.pop().has_value()) {
      }
      finished.fetch_add(1);
    });
  }
  q.push(42);
  q.close();
  consumers.clear();
  EXPECT_EQ(finished.load(), 3);
}

TEST(TaskQueue, AllTasksConsumedExactlyOnce) {
  TaskQueue<int> q;
  constexpr int kTasks = 2000;
  std::mutex m;
  std::multiset<int> seen;
  {
    std::vector<std::jthread> consumers;
    for (int i = 0; i < 4; ++i) {
      consumers.emplace_back([&] {
        while (auto t = q.pop()) {
          const std::scoped_lock lock(m);
          seen.insert(*t);
        }
      });
    }
    for (int i = 0; i < kTasks; ++i) q.push(i);
    q.close();
  }
  ASSERT_EQ(seen.size(), static_cast<std::size_t>(kTasks));
  for (int i = 0; i < kTasks; ++i) EXPECT_EQ(seen.count(i), 1u) << i;
}

TEST(TaskQueue, BoundedCapacityBlocksProducer) {
  TaskQueue<int> q(2);
  q.push(1);
  q.push(2);
  std::atomic<bool> third_pushed{false};
  std::jthread producer([&] {
    q.push(3);
    third_pushed.store(true);
  });
  // Producer must be blocked while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(third_pushed.load());
  EXPECT_TRUE(q.pop().has_value());
  producer.join();
  EXPECT_TRUE(third_pushed.load());
  q.close();
}

// --- DisplaySink -------------------------------------------------------------

mpeg2::FramePtr make_frame(int display_index, std::uint8_t fill) {
  auto f = std::make_shared<mpeg2::Frame>(32, 32);
  std::fill_n(f->y(), 32 * 32, fill);
  std::fill_n(f->cb(), 16 * 16, fill);
  std::fill_n(f->cr(), 16 * 16, fill);
  f->display_index = display_index;
  return f;
}

TEST(DisplaySink, ReordersOutOfOrderArrivals) {
  std::vector<int> emitted;
  DisplaySink sink(4, [&](mpeg2::FramePtr f) {
    emitted.push_back(f->display_index);
  });
  sink.push(make_frame(2, 2));
  sink.push(make_frame(0, 0));
  sink.push(make_frame(1, 1));
  sink.push(make_frame(3, 3));
  sink.wait_done();
  EXPECT_EQ(emitted, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(sink.max_buffered(), 2u);  // frame 2 waited for 0 and 1
}

TEST(DisplaySink, ChecksumOrderSensitive) {
  DisplaySink a(2, {});
  a.push(make_frame(0, 10));
  a.push(make_frame(1, 20));
  a.wait_done();
  DisplaySink b(2, {});
  b.push(make_frame(0, 20));
  b.push(make_frame(1, 10));
  b.wait_done();
  EXPECT_NE(a.checksum(), b.checksum());
}

TEST(DisplaySink, WatchdogTripsWhenPicturesGoMissing) {
  // The display watchdog behind RunResult::hung: pictures are owed but
  // none arrive, so the progress-based deadline returns false instead of
  // blocking forever.
  DisplaySink sink(3, {});
  sink.push(make_frame(0, 0));
  sink.push(make_frame(1, 1));
  EXPECT_FALSE(sink.wait_done_for(20'000'000));  // picture 2 never came
  EXPECT_EQ(sink.emitted(), 2);
  // A late delivery satisfies a subsequent wait.
  sink.push(make_frame(2, 2));
  EXPECT_TRUE(sink.wait_done_for(20'000'000));
  EXPECT_EQ(sink.emitted(), 3);
}

TEST(HangEvidence, ToStringCarriesWatchdogState) {
  // The evidence line parallel_playback / pmp2_soak print on a hung exit.
  HangEvidence hang;
  hang.where = "display";
  hang.waited_ns = 250'000'000;
  hang.pictures_delivered = 7;
  hang.pictures_indexed = 13;
  std::string text = hang.to_string();
  EXPECT_NE(text.find("display"), std::string::npos) << text;
  EXPECT_NE(text.find("250 ms"), std::string::npos) << text;
  EXPECT_NE(text.find("7/13"), std::string::npos) << text;
  EXPECT_EQ(text.find("epoch"), std::string::npos) << text;
  hang.epoch = 42;  // the coordinator branch adds its scheduling epoch
  text = hang.to_string();
  EXPECT_NE(text.find("scheduling epoch 42"), std::string::npos) << text;
}

TEST(DisplaySink, ConcurrentPushers) {
  std::atomic<int> emitted{0};
  std::vector<int> order;
  std::mutex m;
  DisplaySink sink(64, [&](mpeg2::FramePtr f) {
    const std::scoped_lock lock(m);
    order.push_back(f->display_index);
    emitted.fetch_add(1);
  });
  {
    std::vector<std::jthread> pushers;
    for (int t = 0; t < 4; ++t) {
      pushers.emplace_back([&, t] {
        for (int i = t; i < 64; i += 4) {
          sink.push(make_frame(i, static_cast<std::uint8_t>(i)));
        }
      });
    }
  }
  sink.wait_done();
  EXPECT_EQ(emitted.load(), 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

// --- Parallel decoders vs sequential ----------------------------------------

StreamSpec test_spec(int gop_size, int pictures) {
  StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = gop_size;
  spec.pictures = pictures;
  spec.bit_rate = 1'500'000;
  return spec;
}

std::uint64_t sequential_checksum(std::span<const std::uint8_t> stream,
                                  int* pictures = nullptr) {
  mpeg2::Decoder dec;
  std::uint64_t digest = 0;
  int count = 0;
  const auto st = dec.decode_stream(stream, [&](mpeg2::FramePtr f) {
    digest = chain_frame_checksum(digest, *f);
    ++count;
  });
  EXPECT_TRUE(st.ok);
  if (pictures) *pictures = count;
  return digest;
}

class GopDecoderEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(GopDecoderEquivalence, MatchesSequential) {
  const auto stream = generate_stream(test_spec(4, 16));
  int pictures = 0;
  const std::uint64_t want = sequential_checksum(stream, &pictures);
  GopDecoderConfig cfg;
  cfg.workers = GetParam();
  GopParallelDecoder dec(cfg);
  const RunResult r = dec.decode(stream);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.pictures, pictures);
  EXPECT_EQ(r.checksum, want);
}

INSTANTIATE_TEST_SUITE_P(Workers, GopDecoderEquivalence,
                         ::testing::Values(1, 2, 3, 5));

class SliceDecoderEquivalence
    : public ::testing::TestWithParam<std::tuple<int, SlicePolicy>> {};

TEST_P(SliceDecoderEquivalence, MatchesSequential) {
  const auto stream = generate_stream(test_spec(13, 26));
  int pictures = 0;
  const std::uint64_t want = sequential_checksum(stream, &pictures);
  SliceDecoderConfig cfg;
  cfg.workers = std::get<0>(GetParam());
  cfg.policy = std::get<1>(GetParam());
  SliceParallelDecoder dec(cfg);
  const RunResult r = dec.decode(stream);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.pictures, pictures);
  EXPECT_EQ(r.checksum, want);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndPolicies, SliceDecoderEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(SlicePolicy::kSimple,
                                         SlicePolicy::kImproved)));

TEST(ParallelDecoders, AllVariantsAgreeOnLargerStream) {
  const auto stream = generate_stream(test_spec(13, 39));
  const std::uint64_t want = sequential_checksum(stream);

  GopDecoderConfig gcfg;
  gcfg.workers = 3;
  const RunResult g = GopParallelDecoder(gcfg).decode(stream);
  ASSERT_TRUE(g.ok);
  EXPECT_EQ(g.checksum, want);

  for (const auto policy : {SlicePolicy::kSimple, SlicePolicy::kImproved}) {
    SliceDecoderConfig scfg;
    scfg.workers = 3;
    scfg.policy = policy;
    const RunResult s = SliceParallelDecoder(scfg).decode(stream);
    ASSERT_TRUE(s.ok);
    EXPECT_EQ(s.checksum, want);
  }
}

TEST(ParallelDecoders, FrameCallbackDeliversDisplayOrder) {
  const auto stream = generate_stream(test_spec(4, 12));
  std::vector<int> order;
  GopDecoderConfig cfg;
  cfg.workers = 2;
  const RunResult r = GopParallelDecoder(cfg).decode(
      stream, [&](mpeg2::FramePtr f) { order.push_back(f->display_index); });
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ParallelDecoders, WorkerStatsAccountAllSlices) {
  const auto stream = generate_stream(test_spec(13, 13));
  SliceDecoderConfig cfg;
  cfg.workers = 4;
  const RunResult r = SliceParallelDecoder(cfg).decode(stream);
  ASSERT_TRUE(r.ok);
  std::uint64_t slices = 0;
  for (const auto& w : r.workers) slices += w.tasks;
  EXPECT_EQ(slices, 13u * 8u);  // 8 slices per 176x120 picture
}

TEST(ParallelDecoders, GopMemoryTrackedAndBounded) {
  const auto stream = generate_stream(test_spec(4, 16));
  mpeg2::MemoryTracker tracker;
  GopDecoderConfig cfg;
  cfg.workers = 2;
  cfg.tracker = &tracker;
  const RunResult r = GopParallelDecoder(cfg).decode(stream);
  ASSERT_TRUE(r.ok);
  EXPECT_GT(r.peak_frame_bytes, 0);
  // Frame bytes for 176x120: ~33 KB. Peak must cover at least the 3
  // reference/destination frames of one worker.
  const std::int64_t frame_bytes = 176 * 128 * 3 / 2;
  EXPECT_GE(r.peak_frame_bytes, 3 * frame_bytes);
}

TEST(ParallelDecoders, SliceMemoryIndependentOfGopSize) {
  // The paper's claim: slice-version memory depends on resolution only.
  mpeg2::MemoryTracker t_small, t_large;
  const auto small = generate_stream(test_spec(4, 8));
  const auto large = generate_stream(test_spec(16, 16));
  SliceDecoderConfig cfg;
  cfg.workers = 4;
  cfg.tracker = &t_small;
  ASSERT_TRUE(SliceParallelDecoder(cfg).decode(small).ok);
  cfg.tracker = &t_large;
  ASSERT_TRUE(SliceParallelDecoder(cfg).decode(large).ok);
  // Peak is a handful of frames either way (open window + refs + display
  // backlog); exact counts vary with thread timing, but quadrupling the
  // GOP size must not scale memory the way it does in the GOP decoder
  // (workers x GOP size frames). Allow generous slack, cap the absolute
  // footprint at ~10 frames.
  // Thread timing varies the exact peak (display backlog, pool growth);
  // the GOP decoder at 4 workers x GOP 16 would need ~4 x (16 + 2) frames,
  // so a 13-frame cap still separates the two designs decisively.
  const std::int64_t frame_bytes = 176 * 128 * 3 / 2;
  EXPECT_LE(t_large.peak_bytes(), 3 * t_small.peak_bytes());
  EXPECT_LE(t_large.peak_bytes(), 13 * frame_bytes);
}

TEST(ParallelDecoders, RejectsGarbage) {
  const std::vector<std::uint8_t> garbage(1024, 0xAA);
  GopDecoderConfig gcfg;
  EXPECT_FALSE(GopParallelDecoder(gcfg).decode(garbage).ok);
  SliceDecoderConfig scfg;
  EXPECT_FALSE(SliceParallelDecoder(scfg).decode(garbage).ok);
}

}  // namespace
}  // namespace pmp2::parallel
