// Edge-case and robustness tests across the codec: pathological block
// content, extreme quantizer settings, stream truncation/corruption
// handling, minimum-size pictures, and encoder parameter sweeps.
#include <gtest/gtest.h>

#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "streamgen/scene.h"
#include "streamgen/stream_factory.h"
#include "util/rng.h"

namespace pmp2::mpeg2 {
namespace {

FramePtr flat_frame(int w, int h, std::uint8_t y, std::uint8_t cb,
                    std::uint8_t cr) {
  auto f = std::make_shared<Frame>(w, h);
  std::fill_n(f->y(), f->y_stride() * f->coded_height(), y);
  std::fill_n(f->cb(), f->c_stride() * f->coded_height() / 2, cb);
  std::fill_n(f->cr(), f->c_stride() * f->coded_height() / 2, cr);
  return f;
}

FramePtr noise_frame(int w, int h, std::uint64_t seed) {
  auto f = std::make_shared<Frame>(w, h);
  Rng rng(seed);
  for (int p = 0; p < 3; ++p) {
    const int bytes = f->stride(p) * (p == 0 ? f->coded_height()
                                             : f->coded_height() / 2);
    for (int i = 0; i < bytes; ++i) {
      f->plane(p)[i] = static_cast<std::uint8_t>(rng.next_below(256));
    }
  }
  return f;
}

DecodedStream encode_decode(std::vector<FramePtr> frames,
                            EncoderConfig cfg) {
  cfg.width = frames[0]->width();
  cfg.height = frames[0]->height();
  Encoder enc(cfg);
  for (auto& f : frames) enc.push_frame(std::move(f));
  const auto stream = enc.finish();
  Decoder dec;
  return dec.decode(stream);
}

TEST(EdgeCases, FlatBlackVideo) {
  std::vector<FramePtr> frames;
  for (int i = 0; i < 7; ++i) frames.push_back(flat_frame(64, 48, 16, 128, 128));
  EncoderConfig cfg;
  cfg.gop_size = 7;
  const auto out = encode_decode(std::move(frames), cfg);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.frames.size(), 7u);
  for (const auto& f : out.frames) {
    EXPECT_TRUE(f->same_pels(*flat_frame(64, 48, 16, 128, 128)));
  }
}

TEST(EdgeCases, FlatWhiteVideoSaturatesCleanly) {
  std::vector<FramePtr> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(flat_frame(64, 48, 235, 128, 128));
  EncoderConfig cfg;
  cfg.gop_size = 4;
  const auto out = encode_decode(std::move(frames), cfg);
  ASSERT_TRUE(out.ok);
  for (const auto& f : out.frames) {
    EXPECT_NEAR(f->y()[0], 235, 2);
  }
}

TEST(EdgeCases, RandomNoiseSurvivesRoundTrip) {
  // Noise is the worst case for the codec: every block escapes to high
  // coefficient counts. The stream must still parse and decode.
  std::vector<FramePtr> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(noise_frame(64, 48, 10 + i));
  EncoderConfig cfg;
  cfg.gop_size = 4;
  cfg.rate_control = false;
  cfg.base_qscale_code = 2;
  const auto out = encode_decode(std::move(frames), cfg);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 4u);
}

TEST(EdgeCases, SingleMacroblockPicture) {
  std::vector<FramePtr> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(noise_frame(16, 16, i));
  EncoderConfig cfg;
  cfg.gop_size = 4;
  const auto out = encode_decode(std::move(frames), cfg);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 4u);
}

TEST(EdgeCases, NonMultipleOf16Dimensions) {
  // 90x60: coded 96x64, display cropped.
  streamgen::SceneConfig sc;
  sc.width = 90;
  sc.height = 60;
  const streamgen::SceneGenerator scene(sc);
  std::vector<FramePtr> frames;
  for (int i = 0; i < 4; ++i) frames.push_back(scene.render(i));
  EncoderConfig cfg;
  cfg.gop_size = 4;
  const auto out = encode_decode(std::move(frames), cfg);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames[0]->width(), 90);
  EXPECT_EQ(out.frames[0]->height(), 60);
  EXPECT_EQ(out.frames[0]->mb_width(), 6);
  EXPECT_EQ(out.frames[0]->mb_height(), 4);
}

TEST(EdgeCases, GopSizeOneIsAllIntra) {
  streamgen::SceneConfig sc;
  sc.width = 64;
  sc.height = 48;
  const streamgen::SceneGenerator scene(sc);
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.gop_size = 1;
  Encoder enc(cfg);
  for (int i = 0; i < 5; ++i) enc.push_frame(scene.render(i));
  const auto stream = enc.finish();
  const auto structure = scan_structure(stream);
  ASSERT_TRUE(structure.valid);
  EXPECT_EQ(structure.gops.size(), 5u);
  for (const auto& g : structure.gops) {
    ASSERT_EQ(g.pictures.size(), 1u);
    EXPECT_EQ(g.pictures[0].type, PictureType::kI);
  }
  Decoder dec;
  EXPECT_TRUE(dec.decode(stream).ok);
}

TEST(EdgeCases, GopSizeTwoUsesTailPPictures) {
  // N=2, M=3: position 1 has no ref at +3, so it is coded as a trailing P.
  streamgen::SceneConfig sc;
  sc.width = 64;
  sc.height = 48;
  const streamgen::SceneGenerator scene(sc);
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.gop_size = 2;
  Encoder enc(cfg);
  for (int i = 0; i < 6; ++i) enc.push_frame(scene.render(i));
  const auto stream = enc.finish();
  const auto structure = scan_structure(stream);
  ASSERT_TRUE(structure.valid);
  for (const auto& g : structure.gops) {
    ASSERT_EQ(g.pictures.size(), 2u);
    EXPECT_EQ(g.pictures[0].type, PictureType::kI);
    EXPECT_EQ(g.pictures[1].type, PictureType::kP);
  }
  Decoder dec;
  EXPECT_TRUE(dec.decode(stream).ok);
}

TEST(EdgeCases, ExtremeQuantizerStillDecodes) {
  streamgen::SceneConfig sc;
  sc.width = 64;
  sc.height = 48;
  const streamgen::SceneGenerator scene(sc);
  for (const int q : {2, 16, 31}) {
    EncoderConfig cfg;
    cfg.width = 64;
    cfg.height = 48;
    cfg.gop_size = 4;
    cfg.rate_control = false;
    cfg.base_qscale_code = q;
    Encoder enc(cfg);
    for (int i = 0; i < 4; ++i) enc.push_frame(scene.render(i));
    const auto stream = enc.finish();
    Decoder dec;
    EXPECT_TRUE(dec.decode(stream).ok) << "qscale " << q;
  }
}

TEST(EdgeCases, QScaleTypeNonLinear) {
  streamgen::SceneConfig sc;
  sc.width = 64;
  sc.height = 48;
  const streamgen::SceneGenerator scene(sc);
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.gop_size = 4;
  cfg.q_scale_type = true;
  Encoder enc(cfg);
  for (int i = 0; i < 4; ++i) enc.push_frame(scene.render(i));
  const auto stream = enc.finish();
  Decoder dec;
  EXPECT_TRUE(dec.decode(stream).ok);
}

class DcPrecisionRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DcPrecisionRoundTrip, Decodes) {
  streamgen::SceneConfig sc;
  sc.width = 64;
  sc.height = 48;
  const streamgen::SceneGenerator scene(sc);
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.gop_size = 4;
  cfg.intra_dc_precision = GetParam();
  Encoder enc(cfg);
  std::vector<FramePtr> src;
  for (int i = 0; i < 4; ++i) {
    src.push_back(scene.render(i));
    enc.push_frame(scene.render(i));
  }
  const auto stream = enc.finish();
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  // Higher DC precision should not make quality worse.
  EXPECT_GT(psnr_y(*src[0], *out.frames[0]), 25.0);
}

INSTANTIATE_TEST_SUITE_P(Precisions, DcPrecisionRoundTrip,
                         ::testing::Values(0, 1, 2, 3));

TEST(EdgeCases, TruncatedStreamFailsGracefully) {
  streamgen::StreamSpec spec;
  spec.width = 64;
  spec.height = 48;
  spec.pictures = 4;
  spec.gop_size = 4;
  auto stream = streamgen::generate_stream(spec);
  for (const double keep : {0.9, 0.5, 0.1}) {
    auto cut = stream;
    cut.resize(static_cast<std::size_t>(stream.size() * keep));
    Decoder dec;
    const auto out = dec.decode(cut);
    // Must not crash; ok may be false or frames partial.
    EXPECT_LE(out.frames.size(), 4u) << keep;
  }
}

TEST(EdgeCases, BitFlipsDoNotCrash) {
  streamgen::StreamSpec spec;
  spec.width = 64;
  spec.height = 48;
  spec.pictures = 8;
  spec.gop_size = 4;
  const auto stream = streamgen::generate_stream(spec);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    auto corrupt = stream;
    for (int flips = 0; flips < 4; ++flips) {
      const auto pos = rng.next_below(static_cast<std::uint32_t>(corrupt.size()));
      corrupt[pos] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    }
    Decoder dec;
    (void)dec.decode(corrupt);  // must terminate without crashing
  }
  SUCCEED();
}

TEST(EdgeCases, EmptyAndHeaderOnlyStreams) {
  Decoder dec;
  EXPECT_FALSE(dec.decode({}).ok);
  // Sequence header only, no GOPs.
  BitWriter bw;
  SequenceHeader h;
  h.horizontal_size = 64;
  h.vertical_size = 48;
  write_sequence_header(bw, h);
  bw.put_startcode(0xB7);
  const auto bytes = bw.take();
  EXPECT_FALSE(dec.decode(bytes).ok);
}

TEST(EdgeCases, LargeSearchRangeUsesWiderFCode) {
  streamgen::SceneConfig sc;
  sc.width = 96;
  sc.height = 64;
  sc.pan_pels_per_picture = 20.0;  // fast pan needs a wide search
  const streamgen::SceneGenerator scene(sc);
  EncoderConfig cfg;
  cfg.width = 96;
  cfg.height = 64;
  cfg.gop_size = 4;
  cfg.search_range = 24;
  Encoder enc(cfg);
  std::vector<FramePtr> src;
  for (int i = 0; i < 4; ++i) {
    src.push_back(scene.render(i));
    enc.push_frame(scene.render(i));
  }
  const auto stream = enc.finish();
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_GT(psnr_y(*src[3], *out.frames[3]), 22.0);
}

}  // namespace
}  // namespace pmp2::mpeg2
