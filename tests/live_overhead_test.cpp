// CI perf smoke for the live telemetry subsystem: attaching a
// LiveTelemetry + LiveSampler to a 14-worker parallel playback must cost
// <= 1% wall time over the identical run with the null sink (the
// acceptance bar from docs/OBSERVABILITY.md). Run via `ctest -L
// perfsmoke`.
//
// 1% is below raw CI wall-clock jitter, so the runs are interleaved
// (base, live, base, live, ...), compared min-of-N, and the bound widens
// by the measured baseline spread — on a quiet machine this asserts the
// real 1% budget, on a noisy one it degrades toward a jitter-scaled bound
// instead of flaking. bench_live_overhead reports the precise number into
// the bench_all.sh baseline for regression tracking.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "obs/live/sampler.h"
#include "obs/live/telemetry.h"
#include "parallel/gop_decoder.h"
#include "streamgen/stream_factory.h"

namespace pmp2 {
namespace {

TEST(LiveOverhead, TelemetryCostsAtMostOnePercentModuloNoise) {
  streamgen::StreamSpec spec;  // 352x240 defaults
  spec.gop_size = 13;
  spec.pictures = 78;
  const auto stream = streamgen::generate_stream(spec);
  ASSERT_FALSE(stream.empty());

  constexpr int kWorkers = 14;
  constexpr int kReps = 5;

  auto run_once = [&](obs::live::LiveTelemetry* live) {
    parallel::GopDecoderConfig config;
    config.workers = kWorkers;
    config.live = live;
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = parallel::GopParallelDecoder(config).decode(stream);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    EXPECT_TRUE(r.ok);
    EXPECT_EQ(r.pictures, 78);
    return secs;
  };

  std::vector<double> base_s, live_s;
  for (int rep = 0; rep < kReps; ++rep) {
    base_s.push_back(run_once(nullptr));

    obs::live::LiveTelemetry telemetry(kWorkers);
    obs::live::LiveSampler::Options options;
    options.interval_ms = 5;  // several real ticks inside the decode
    obs::live::LiveSampler sampler(telemetry, options);
    sampler.start();
    live_s.push_back(run_once(&telemetry));
    sampler.stop();
    EXPECT_GE(sampler.snapshots(), 1u);
  }

  std::sort(base_s.begin(), base_s.end());
  std::sort(live_s.begin(), live_s.end());
  const double base_min = base_s.front();
  const double live_min = live_s.front();
  const double overhead = live_min / base_min - 1.0;
  // Baseline self-jitter: the gap between the two best baseline reps is
  // what "identical work" already varies by on this machine.
  const double noise = (base_s[1] - base_s[0]) / base_s[0];
  const double bound = 0.01 + 2.0 * noise + 0.001;
  EXPECT_LE(overhead, bound)
      << "telemetry overhead " << overhead * 100 << "% (base " << base_min
      << " s, live " << live_min << " s, baseline jitter " << noise * 100
      << "%)";
}

}  // namespace
}  // namespace pmp2
