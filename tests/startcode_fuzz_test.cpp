// Fuzz/oracle equivalence tests for the SWAR startcode scanner.
//
// The oracle is the pre-SWAR byte-wise scanner, kept verbatim: the SWAR
// kernel must produce the identical Startcode sequence on every input —
// adversarial prefix layouts, window straddles, codes at the very end of
// the buffer, deterministic random fuzz, and real encoded streams across
// the Table 1 resolution x GOP-size matrix (reduced scale; the full-size
// streams are covered by bench_table1_streams' identity field).
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "bitstream/bit_reader.h"
#include "bitstream/demux.h"
#include "bitstream/startcode.h"
#include "streamgen/stream_factory.h"
#include "util/rng.h"

namespace pmp2 {
namespace {

/// The seed scanner, verbatim (the oracle the SWAR path must match).
class SeedScanner {
 public:
  explicit SeedScanner(std::span<const std::uint8_t> data) : data_(data) {}

  bool next(Startcode& out) {
    std::uint64_t i = pos_;
    while (i + 3 < data_.size()) {
      if (data_[i] == 0 && data_[i + 1] == 0 && data_[i + 2] == 1) {
        out.byte_offset = i;
        out.code = data_[i + 3];
        pos_ = i + 4;
        return true;
      }
      // data_[i+2] > 1 rules out a prefix starting at i, i+1, or i+2.
      i += (data_[i + 2] > 1) ? 3 : 1;
    }
    pos_ = data_.size();
    return false;
  }

 private:
  std::span<const std::uint8_t> data_;
  std::uint64_t pos_ = 0;
};

std::vector<Startcode> seed_scan_all(std::span<const std::uint8_t> data) {
  std::vector<Startcode> out;
  SeedScanner scanner(data);
  Startcode sc;
  while (scanner.next(sc)) out.push_back(sc);
  return out;
}

void expect_identical_scan(std::span<const std::uint8_t> data) {
  const auto expected = seed_scan_all(data);
  const auto actual = scan_all_startcodes(data);
  ASSERT_EQ(actual.size(), expected.size()) << "stream of " << data.size()
                                            << " bytes";
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].byte_offset, expected[i].byte_offset) << "index " << i;
    EXPECT_EQ(actual[i].code, expected[i].code) << "index " << i;
  }
}

TEST(StartcodeFuzz, EmptyAndTinyBuffers) {
  for (std::size_t n = 0; n <= 16; ++n) {
    std::vector<std::uint8_t> zeros(n, 0x00);
    expect_identical_scan(zeros);
    std::vector<std::uint8_t> ones(n, 0x01);
    expect_identical_scan(ones);
    // A prefix that only fits with its code byte exactly at the end.
    if (n >= 4) {
      std::vector<std::uint8_t> tail(n, 0xFF);
      tail[n - 4] = 0x00;
      tail[n - 3] = 0x00;
      tail[n - 2] = 0x01;
      tail[n - 1] = 0xB3;
      expect_identical_scan(tail);
    }
  }
}

TEST(StartcodeFuzz, DensePrefixRuns) {
  // Long 00 00 01 00 00 01 ... runs: every position is a candidate, and
  // consecutive matches overlap the scanner's 4-byte consume step.
  std::vector<std::uint8_t> dense;
  for (int i = 0; i < 300; ++i) {
    dense.push_back(0x00);
    dense.push_back(0x00);
    dense.push_back(0x01);
  }
  expect_identical_scan(dense);

  // All-zero stream with a single 0x01 planted at each offset in turn.
  for (std::size_t at = 0; at < 40; ++at) {
    std::vector<std::uint8_t> zeros(48, 0x00);
    zeros[at] = 0x01;
    expect_identical_scan(zeros);
  }
}

TEST(StartcodeFuzz, PrefixStraddlesEveryEightByteBoundaryPhase) {
  // Slide a single 00 00 01 cc across a buffer so the prefix crosses the
  // 8-byte SWAR window at every phase, with both zero-heavy and 0xFF-heavy
  // backgrounds (the latter exercises the 3-byte skip in the tail loop).
  for (const std::uint8_t fill : {0x00, 0xFF, 0x01, 0x02}) {
    for (std::size_t at = 0; at + 4 <= 64; ++at) {
      std::vector<std::uint8_t> buf(64, fill);
      buf[at] = 0x00;
      buf[at + 1] = 0x00;
      buf[at + 2] = 0x01;
      buf[at + 3] = 0xB8;
      expect_identical_scan(buf);
    }
  }
}

TEST(StartcodeFuzz, CodesInFinalFourBytes) {
  // The SWAR loop must hand the last < 8 bytes (and any prefix whose code
  // byte would fall past the end) to the byte-wise tail without dropping
  // or double-reporting codes.
  for (std::size_t n = 4; n <= 32; ++n) {
    std::vector<std::uint8_t> buf(n, 0x00);
    buf[n - 2] = 0x01;  // prefix at n-4 .. n-2, no code byte -> not a code
    expect_identical_scan(buf);
    buf[n - 2] = 0x00;
    if (n >= 5) {
      buf[n - 3] = 0x01;  // code byte exactly at the last byte
      expect_identical_scan(buf);
    }
  }
}

TEST(StartcodeFuzz, SwarFalsePositiveBytePatterns) {
  // 0x01 preceded by a zero byte makes the SWAR subtract-borrow flag a
  // non-zero byte; every candidate must still be verified byte-wise.
  const std::vector<std::uint8_t> tricky = {
      0x00, 0x01, 0x00, 0x01, 0x00, 0x01, 0x00, 0x01,
      0x01, 0x00, 0x00, 0x80, 0x00, 0x00, 0x01, 0xAF,
      0x80, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00, 0x01};
  expect_identical_scan(tricky);
}

TEST(StartcodeFuzz, DeterministicRandomBuffers) {
  Rng rng(0xF00DF00DULL);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + rng.next_u64() % 513;
    std::vector<std::uint8_t> buf(n);
    // Low-entropy alphabet so prefixes occur often.
    for (auto& b : buf) {
      const std::uint64_t r = rng.next_u64();
      b = (r & 3) == 0   ? 0x00
          : (r & 3) == 1 ? 0x01
                         : static_cast<std::uint8_t>(r >> 8);
    }
    expect_identical_scan(buf);
  }
}

TEST(StartcodeFuzz, AlignToNextStartcodeMatchesScanner) {
  Rng rng(0xABCDULL);
  std::vector<std::uint8_t> buf(2048);
  for (auto& b : buf) {
    const std::uint64_t r = rng.next_u64();
    b = (r & 7) < 3 ? 0x00 : static_cast<std::uint8_t>(r >> 8);
  }
  const auto codes = seed_scan_all(buf);
  BitReader br(buf);
  std::size_t found = 0;
  while (br.align_to_next_startcode()) {
    ASSERT_LT(found, codes.size());
    EXPECT_EQ(br.bit_position() / 8, codes[found].byte_offset);
    br.skip(32);  // past the startcode, same stride as the scanner
    ++found;
  }
  EXPECT_EQ(found, codes.size());
}

TEST(StartcodeFuzz, DemuxUnitsPartitionTheStream) {
  const auto stream =
      streamgen::generate_stream(streamgen::StreamSpec{});  // defaults
  const auto codes = seed_scan_all(stream);
  ASSERT_FALSE(codes.empty());

  StreamDemux demux(stream);
  DemuxUnit unit;
  std::size_t i = 0;
  while (demux.next(unit)) {
    ASSERT_LT(i, codes.size());
    EXPECT_EQ(unit.sc.byte_offset, codes[i].byte_offset);
    EXPECT_EQ(unit.sc.code, codes[i].code);
    // Units tile the stream: each ends where the next begins.
    const std::uint64_t expected_end = i + 1 < codes.size()
                                           ? codes[i + 1].byte_offset
                                           : stream.size();
    EXPECT_EQ(unit.end_offset, expected_end);
    ++i;
  }
  EXPECT_EQ(i, codes.size());
}

TEST(StartcodeFuzz, RealStreamsAcrossResolutionAndGopMatrix) {
  // Reduced-scale Table 1 matrix: same resolution ratios and GOP sizes,
  // fewer pixels/pictures so tier 1 stays fast. Every stream's startcode
  // index must be byte-identical between oracle and SWAR scanner.
  const int gop_sizes[] = {4, 13, 16, 31};
  const int dims[][2] = {{176, 120}, {352, 240}, {320, 224}, {704, 480}};
  for (const auto& d : dims) {
    for (const int g : gop_sizes) {
      streamgen::StreamSpec spec;
      spec.width = d[0];
      spec.height = d[1];
      spec.gop_size = g;
      spec.pictures = g + 3;  // at least two GOPs
      spec.bit_rate = 1'500'000;
      const auto stream = streamgen::generate_stream(spec);
      ASSERT_FALSE(stream.empty());
      expect_identical_scan(stream);
    }
  }
}

}  // namespace
}  // namespace pmp2
