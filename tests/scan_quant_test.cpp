#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "mpeg2/scan_quant.h"
#include "util/rng.h"

namespace pmp2::mpeg2 {
namespace {

TEST(Scan, ZigzagIsPermutation) {
  std::set<int> seen(zigzag_scan().begin(), zigzag_scan().end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 63);
}

TEST(Scan, AlternateIsPermutation) {
  std::set<int> seen(alternate_scan().begin(), alternate_scan().end());
  EXPECT_EQ(seen.size(), 64u);
}

TEST(Scan, ZigzagKnownPrefix) {
  const auto& z = zigzag_scan();
  EXPECT_EQ(z[0], 0);
  EXPECT_EQ(z[1], 1);
  EXPECT_EQ(z[2], 8);
  EXPECT_EQ(z[3], 16);
  EXPECT_EQ(z[4], 9);
  EXPECT_EQ(z[5], 2);
  EXPECT_EQ(z[63], 63);
}

TEST(Scan, BothScansStartAtDc) {
  EXPECT_EQ(zigzag_scan()[0], 0);
  EXPECT_EQ(alternate_scan()[0], 0);
}

TEST(Quant, DefaultIntraMatrixKnownValues) {
  const auto& m = default_intra_matrix();
  EXPECT_EQ(m[0], 8);
  EXPECT_EQ(m[1], 16);
  EXPECT_EQ(m[63], 83);
  for (const auto& v : default_non_intra_matrix()) EXPECT_EQ(v, 16);
}

TEST(Quant, LinearScaleTable) {
  EXPECT_EQ(quantiser_scale(1, false), 2);
  EXPECT_EQ(quantiser_scale(16, false), 32);
  EXPECT_EQ(quantiser_scale(31, false), 62);
}

TEST(Quant, NonLinearScaleTable) {
  EXPECT_EQ(quantiser_scale(1, true), 1);
  EXPECT_EQ(quantiser_scale(8, true), 8);
  EXPECT_EQ(quantiser_scale(9, true), 10);
  EXPECT_EQ(quantiser_scale(24, true), 56);
  EXPECT_EQ(quantiser_scale(31, true), 112);
}

TEST(Quant, IntraDcMult) {
  EXPECT_EQ(intra_dc_mult(8), 8);
  EXPECT_EQ(intra_dc_mult(9), 4);
  EXPECT_EQ(intra_dc_mult(10), 2);
  EXPECT_EQ(intra_dc_mult(11), 1);
}

QuantContext intra_ctx(int scale_code) {
  QuantContext q;
  q.matrix = default_intra_matrix().data();
  q.quantiser_scale = quantiser_scale(scale_code, false);
  q.intra_dc_mult = 8;
  return q;
}

QuantContext inter_ctx(int scale_code) {
  QuantContext q;
  q.matrix = default_non_intra_matrix().data();
  q.quantiser_scale = quantiser_scale(scale_code, false);
  return q;
}

TEST(Quant, MismatchControlTogglesLastCoefficient) {
  // A block whose dequantized sum is even must get coeff 63 toggled.
  Block b{};
  b[0] = 16;  // DC: 16 * 8 = 128 (even), all else 0 -> sum even
  dequantize_intra(b, intra_ctx(8));
  EXPECT_EQ(b[0], 128);
  EXPECT_EQ(b[63], 1);  // toggled from 0
}

TEST(Quant, MismatchControlLeavesOddSumAlone) {
  Block b{};
  b[0] = 16;
  b[1] = 1;  // dequantizes to odd value 2*16*16/32 = 16? -> even; pick matrix
  // position 1 has weight 16: (1*2*16*16)/32 = 16 (even). Use scale code 9
  // => scale 18: (1*2*18*16)/32 = 18 even. Choose value 3 at position 1
  // with scale 2: (3*2*2*16)/32 = 6 even... construct odd sum via DC.
  b[0] = 17;  // 17*8 = 136 even. DC multiples of 8 are always even; use AC.
  b[1] = 0;
  Block c{};
  c[0] = 16;   // 128
  c[2] = 5;    // weight 19 (raster pos 2): (5*2*2*19)/32 = 11 (odd)
  dequantize_intra(c, intra_ctx(1));
  EXPECT_EQ(c[2], 11);
  EXPECT_EQ(c[63], 0);  // sum 139 odd -> untouched
}

TEST(Quant, IntraRoundTripRecoversCoefficients) {
  // quantize -> dequantize must approximately recover the DCT coefficients
  // (within one quantization step).
  Rng rng(3);
  for (int t = 0; t < 200; ++t) {
    const int scale_code = rng.next_in(2, 31);
    const auto ctx = intra_ctx(scale_code);
    std::array<double, 64> dct{};
    dct[0] = rng.next_in(0, 2040);
    for (int i = 1; i < 64; ++i) {
      dct[i] = rng.next_in(-500, 500);
    }
    Block q;
    quantize_intra(dct, q, ctx);
    Block d = q;
    dequantize_intra(d, ctx);
    EXPECT_NEAR(d[0], dct[0], ctx.intra_dc_mult) << "DC";
    for (int i = 1; i < 64; ++i) {
      const double step =
          2.0 * ctx.matrix[i] * ctx.quantiser_scale / 32.0;
      EXPECT_NEAR(d[i], dct[i], step + 1.5) << "i=" << i << " q=" << q[i];
    }
  }
}

TEST(Quant, NonIntraRoundTripWithinDeadZone) {
  Rng rng(4);
  for (int t = 0; t < 200; ++t) {
    const int scale_code = rng.next_in(2, 31);
    const auto ctx = inter_ctx(scale_code);
    std::array<double, 64> dct{};
    for (int i = 0; i < 64; ++i) dct[i] = rng.next_in(-800, 800);
    Block q;
    quantize_non_intra(dct, q, ctx);
    Block d = q;
    dequantize_non_intra(d, ctx);
    for (int i = 0; i < 64; ++i) {
      const double step = 2.0 * ctx.matrix[i] * ctx.quantiser_scale / 32.0;
      // Dead-zone quantizer: error bounded by ~1.5 steps.
      EXPECT_NEAR(d[i], dct[i], 1.5 * step + 1.5) << i;
    }
  }
}

TEST(Quant, DequantizeSaturates) {
  Block b{};
  b[1] = 2047;  // large level, large scale -> must clamp at 2047
  auto ctx = intra_ctx(31);
  dequantize_intra(b, ctx);
  EXPECT_LE(b[1], 2047);
  Block c{};
  c[1] = -2047;
  dequantize_intra(c, ctx);
  EXPECT_GE(c[1], -2048);
}

TEST(Quant, ZeroStaysZeroNonIntra) {
  Block b{};
  dequantize_non_intra(b, inter_ctx(10));
  // Sum 0 is even -> mismatch control toggles coefficient 63 to 1. This is
  // the standard's behaviour; all-zero blocks are never dequantized (cbp
  // skips them), so coefficient 63 toggling is harmless in practice.
  for (int i = 0; i < 63; ++i) EXPECT_EQ(b[i], 0);
  EXPECT_EQ(b[63], 1);
}

}  // namespace
}  // namespace pmp2::mpeg2
