#include <gtest/gtest.h>

#include <map>
#include <set>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/types.h"
#include "mpeg2/vlc_tables.h"

namespace pmp2::mpeg2 {
namespace {

/// Checks pairwise prefix-freeness of an entry list.
void expect_prefix_free(std::span<const VlcEntry> entries,
                        const char* table_name) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    for (std::size_t j = 0; j < entries.size(); ++j) {
      if (i == j) continue;
      const auto& a = entries[i];
      const auto& b = entries[j];
      if (a.len > b.len) continue;
      const std::uint32_t b_prefix = b.code >> (b.len - a.len);
      EXPECT_NE(a.code, b_prefix)
          << table_name << ": code of value " << a.value
          << " is a prefix of code of value " << b.value;
    }
  }
}

/// Checks no two entries share a value (encode map would be ambiguous).
void expect_unique_values(std::span<const VlcEntry> entries,
                          const char* table_name) {
  std::set<std::int16_t> seen;
  for (const auto& e : entries) {
    EXPECT_TRUE(seen.insert(e.value).second)
        << table_name << ": duplicate value " << e.value;
  }
}

/// Every entry must decode back to its own value through the VlcDecoder.
void expect_decoder_roundtrip(std::span<const VlcEntry> entries,
                              const VlcDecoder& dec, const char* table_name) {
  for (const auto& e : entries) {
    BitWriter bw;
    bw.put(e.code, e.len);
    bw.put(0, 24);  // padding so peek() has bits
    auto bytes = bw.take();
    BitReader br(bytes);
    std::int16_t value;
    ASSERT_TRUE(dec.decode(br, value)) << table_name;
    EXPECT_EQ(value, e.value) << table_name;
    EXPECT_EQ(br.bit_position(), e.len) << table_name;
  }
}

struct NamedTable {
  const char* name;
  std::span<const VlcEntry> entries;
  const VlcDecoder* decoder;
};

std::vector<NamedTable> all_tables() {
  return {
      {"B-1 mb_addr_inc", mb_addr_inc_entries(), &mb_addr_inc_decoder()},
      {"B-2 mb_type I", mb_type_i_entries(), &mb_type_decoder(1)},
      {"B-3 mb_type P", mb_type_p_entries(), &mb_type_decoder(2)},
      {"B-4 mb_type B", mb_type_b_entries(), &mb_type_decoder(3)},
      {"B-9 cbp", coded_block_pattern_entries(),
       &coded_block_pattern_decoder()},
      {"B-10 motion", motion_code_entries(), &motion_code_decoder()},
      {"B-12 dc size luma", dct_dc_size_luma_entries(),
       &dct_dc_size_luma_decoder()},
      {"B-13 dc size chroma", dct_dc_size_chroma_entries(),
       &dct_dc_size_chroma_decoder()},
      {"B-14 dct zero", dct_table_zero_entries(), &dct_table_decoder(false)},
      {"B-15 dct one", dct_table_one_entries(), &dct_table_decoder(true)},
  };
}

TEST(VlcTables, AllTablesPrefixFree) {
  for (const auto& t : all_tables()) expect_prefix_free(t.entries, t.name);
}

TEST(VlcTables, AllTablesUniqueValues) {
  for (const auto& t : all_tables()) expect_unique_values(t.entries, t.name);
}

TEST(VlcTables, AllTablesDecoderRoundTrip) {
  for (const auto& t : all_tables()) {
    expect_decoder_roundtrip(t.entries, *t.decoder, t.name);
  }
}

TEST(VlcTables, MbAddrIncrementCoversOneTo33) {
  std::set<int> values;
  for (const auto& e : mb_addr_inc_entries()) values.insert(e.value);
  for (int i = 1; i <= 33; ++i) {
    EXPECT_TRUE(values.count(i)) << "missing increment " << i;
  }
  EXPECT_TRUE(values.count(kVlcEscape));
}

TEST(VlcTables, CbpCoversAll64Values) {
  std::set<int> values;
  for (const auto& e : coded_block_pattern_entries()) values.insert(e.value);
  for (int i = 0; i <= 63; ++i) EXPECT_TRUE(values.count(i)) << i;
}

TEST(VlcTables, MotionCodeCoversFullRange) {
  std::set<int> values;
  for (const auto& e : motion_code_entries()) values.insert(e.value);
  for (int i = -16; i <= 16; ++i) EXPECT_TRUE(values.count(i)) << i;
  // Sign structure: the negative code is the positive code with the last
  // bit set.
  std::map<int, const VlcEntry*> by_value;
  for (const auto& e : motion_code_entries()) by_value[e.value] = &e;
  for (int i = 1; i <= 16; ++i) {
    const auto* pos = by_value[i];
    const auto* neg = by_value[-i];
    EXPECT_EQ(pos->len, neg->len);
    EXPECT_EQ(pos->code | 1u, neg->code);
    EXPECT_EQ(pos->code & 1u, 0u);
  }
}

TEST(VlcTables, WellKnownCodes) {
  // Spot-check against the published tables.
  EXPECT_EQ(encode_mb_addr_inc(1).bits, 0b1u);
  EXPECT_EQ(encode_mb_addr_inc(1).len, 1);
  EXPECT_EQ(encode_mb_addr_inc(8).bits, 0b0000111u);
  EXPECT_EQ(encode_mb_addr_inc(8).len, 7);
  EXPECT_EQ(encode_mb_addr_inc(33).len, 11);

  EXPECT_EQ(encode_mb_type(1, MbFlags::kIntra).len, 1);
  EXPECT_EQ(
      encode_mb_type(2, MbFlags::kMotionForward | MbFlags::kPattern).len, 1);
  EXPECT_EQ(
      encode_mb_type(3, MbFlags::kMotionForward | MbFlags::kMotionBackward)
          .len,
      2);

  EXPECT_EQ(encode_coded_block_pattern(60).bits, 0b111u);
  EXPECT_EQ(encode_coded_block_pattern(60).len, 3);
  EXPECT_EQ(encode_coded_block_pattern(0).len, 9);

  EXPECT_EQ(encode_motion_code(0).len, 1);
  EXPECT_EQ(encode_motion_code(1).bits, 0b010u);
  EXPECT_EQ(encode_motion_code(-1).bits, 0b011u);

  EXPECT_EQ(encode_dct_dc_size(true, 0).bits, 0b100u);
  EXPECT_EQ(encode_dct_dc_size(false, 0).bits, 0b00u);

  // B-14: EOB = '10', 0/1 = '11', 1/1 = '011'.
  EXPECT_EQ(dct_eob_code(false).bits, 0b10u);
  EXPECT_EQ(dct_eob_code(false).len, 2);
  EXPECT_EQ(encode_dct_run_level(false, 0, 1).bits, 0b11u);
  EXPECT_EQ(encode_dct_run_level(false, 1, 1).bits, 0b011u);
  EXPECT_EQ(encode_dct_run_level(false, 0, 40).len, 15);
  EXPECT_EQ(encode_dct_run_level(false, 31, 1).len, 16);
  // B-15: EOB = '0110', 0/1 = '10'.
  EXPECT_EQ(dct_eob_code(true).bits, 0b0110u);
  EXPECT_EQ(encode_dct_run_level(true, 0, 1).bits, 0b10u);
  EXPECT_EQ(dct_escape_code().bits, 0b000001u);
  EXPECT_EQ(dct_escape_code().len, 6);
}

TEST(VlcTables, MissingRunLevelFallsBackToEscape) {
  // (run, level) pairs with no code return len 0 -> escape coding.
  EXPECT_EQ(encode_dct_run_level(false, 31, 2).len, 0);
  EXPECT_EQ(encode_dct_run_level(false, 5, 40).len, 0);
  EXPECT_EQ(encode_dct_run_level(false, 40, 1).len, 0);
  EXPECT_EQ(encode_dct_run_level(false, 0, 41).len, 0);
}

TEST(VlcTables, TableOneInheritsLongCodesFromTableZero) {
  // Every (run, level) with a B-14 code must also have a B-15 code
  // (reassigned short or inherited long).
  for (const auto& e : dct_table_zero_entries()) {
    if (e.value < 0) continue;  // EOB/escape handled separately
    const Code c = encode_dct_run_level(true, unpack_run(e.value),
                                        unpack_level(e.value));
    EXPECT_NE(c.len, 0) << "run " << unpack_run(e.value) << " level "
                        << unpack_level(e.value);
  }
}

TEST(TwoLevelVlcDecoder, ExhaustivelyMatchesFlatDecoder) {
  // Every possible max_len-bit pattern must resolve identically in the
  // flat and two-level decoders, for every table and several split points.
  for (const auto& t : all_tables()) {
    for (const int primary_bits : {4, 8, 12}) {
      const TwoLevelVlcDecoder two(t.entries, primary_bits);
      ASSERT_EQ(two.max_len(), t.decoder->max_len()) << t.name;
      const std::uint32_t patterns = 1u << two.max_len();
      for (std::uint32_t p = 0; p < patterns; ++p) {
        const auto a = t.decoder->lookup(p);
        const auto b = two.lookup(p);
        ASSERT_EQ(a.len, b.len) << t.name << " split " << primary_bits
                                << " pattern " << p;
        if (a.len != 0) {
          ASSERT_EQ(a.value, b.value)
              << t.name << " split " << primary_bits << " pattern " << p;
        }
      }
    }
  }
}

TEST(TwoLevelVlcDecoder, MuchSmallerForDctTables) {
  const TwoLevelVlcDecoder two(dct_table_zero_entries(), 8);
  // Flat table: 2^16 x 4 bytes = 256 KB. Two-level: a few KB.
  EXPECT_LT(two.table_bytes(), 24u << 10);
}

TEST(TwoLevelVlcDecoder, DecodeFromBitReader) {
  const TwoLevelVlcDecoder two(dct_table_zero_entries(), 8);
  BitWriter bw;
  encode_dct_run_level(false, 31, 1).put(bw);  // a 16-bit code
  bw.put(0, 16);
  const auto bytes = bw.take();
  BitReader br(bytes);
  std::int16_t value;
  ASSERT_TRUE(two.decode(br, value));
  EXPECT_EQ(unpack_run(value), 31);
  EXPECT_EQ(unpack_level(value), 1);
  EXPECT_EQ(br.bit_position(), 16u);
}

TEST(VlcDecoder, InvalidCodeRejected) {
  // All-zero bits of max length are not a valid mb_addr_inc code.
  const std::vector<std::uint8_t> zeros(8, 0);
  BitReader br(zeros);
  std::int16_t value;
  EXPECT_FALSE(mb_addr_inc_decoder().decode(br, value));
}

}  // namespace
}  // namespace pmp2::mpeg2
