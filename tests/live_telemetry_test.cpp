// Live telemetry subsystem tests (docs/OBSERVABILITY.md, "Live
// telemetry"): seqlock snapshot consistency under a writer storm (this is
// the test scripts/ci.sh runs under TSan to hold the data-race-free
// claim), sliding-window percentiles against an offline oracle, bucket
// expiry at the window boundary, SLO hysteresis driven with synthetic
// timestamps, and the NDJSON / Prometheus export round-trip.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/live/sampler.h"
#include "obs/live/telemetry.h"
#include "obs/metrics.h"

namespace pmp2::obs::live {
namespace {

constexpr std::int64_t kSecond = 1'000'000'000;

// ---------------------------------------------------------------------------
// TelemetryCell seqlock

TEST(TelemetryCell, WriterStormSnapshotsStayConsistent) {
  // One writer keeps a cross-field invariant inside every Write generation:
  // tasks = 2*pictures, busy_ns = 3*pictures, last_latency_ns =
  // 5*pictures. Readers hammering sample() must never observe a snapshot
  // that breaks it — that is exactly the torn read the seqlock exists to
  // prevent, and a relaxed-ordering bug here is what the TSan CI stage
  // catches.
  TelemetryCell cell;
  constexpr std::int64_t kWrites = 200'000;
  std::atomic<bool> done{false};

  std::thread writer([&] {
    for (std::int64_t i = 1; i <= kWrites; ++i) {
      TelemetryCell::Write w(cell);
      w.add_pictures(1)
          .add_tasks(2)
          .add_busy_ns(3)
          .set_last_latency_ns(5 * i)
          .set_last_progress_ns(7 * i);
    }
    done.store(true, std::memory_order_release);
  });

  std::vector<std::thread> readers;
  std::atomic<std::int64_t> samples_taken{0};
  std::atomic<bool> consistent{true};
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      // do-while: on a single-core host the writer may finish before a
      // reader is first scheduled; each reader still takes one sample so
      // the samples_taken assertion below cannot race to zero.
      do {
        const CellSample s = cell.sample();
        if (s.tasks != 2 * s.pictures || s.busy_ns != 3 * s.pictures ||
            s.last_latency_ns != 5 * s.pictures ||
            (s.pictures > 0 && s.last_progress_ns != 7 * s.pictures)) {
          consistent.store(false, std::memory_order_relaxed);
        }
        samples_taken.fetch_add(1, std::memory_order_relaxed);
      } while (!done.load(std::memory_order_acquire));
    });
  }
  writer.join();
  for (auto& t : readers) t.join();

  EXPECT_TRUE(consistent.load()) << "torn snapshot observed";
  EXPECT_GT(samples_taken.load(), 0);
  const CellSample final = cell.sample();
  EXPECT_EQ(final.pictures, kWrites);
  EXPECT_EQ(final.tasks, 2 * kWrites);
  EXPECT_EQ(final.busy_ns, 3 * kWrites);
}

// ---------------------------------------------------------------------------
// SlidingWindow

TEST(SlidingWindow, WindowedHistogramMatchesOfflineOracle) {
  // Feed one cumulative histogram tick by tick, then check the trailing
  // window against an oracle histogram built offline from exactly the
  // values recorded inside the window. Bucket contents, count, and sum
  // must match structurally; percentiles agree to within one octave (the
  // delta snapshots clamp min/max to bucket bounds, so exact equality is
  // not promised).
  Histogram live;
  SlidingWindow window(10 * kSecond);
  const std::vector<std::vector<std::int64_t>> per_tick = {
      {1'000, 2'000},                    // t = 1 s
      {4'000, 8'000, 16'000},            // t = 2 s
      {3'000},                           // t = 3 s
      {700, 900, 1'100, 250'000},        // t = 4 s
      {5'000, 6'000, 7'000},             // t = 5 s
  };
  std::int64_t recorded = 0;
  for (std::size_t k = 0; k < per_tick.size(); ++k) {
    for (const std::int64_t v : per_tick[k]) {
      live.record(v);
      ++recorded;
    }
    window.push(static_cast<std::int64_t>(k + 1) * kSecond,
                live.snapshot(), recorded);
  }

  // Trailing 3 s at now = 5 s: ticks with t in (2 s, 5 s] = ticks 3..5.
  const auto view = window.over(5 * kSecond, 3 * kSecond);
  Histogram oracle;
  std::int64_t oracle_events = 0;
  for (std::size_t k = 2; k < per_tick.size(); ++k) {
    for (const std::int64_t v : per_tick[k]) {
      oracle.record(v);
      ++oracle_events;
    }
  }
  const HistogramSnapshot want = oracle.snapshot();
  EXPECT_EQ(view.events, oracle_events);
  EXPECT_EQ(view.hist.count, want.count);
  EXPECT_EQ(view.hist.sum, want.sum);
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    EXPECT_EQ(view.hist.buckets[b], want.buckets[b]) << "bucket " << b;
  }
  for (const double q : {0.50, 0.95, 0.99}) {
    const double got = view.hist.percentile(q);
    const double exact = want.percentile(q);
    EXPECT_GE(got, exact / 2 - 1) << "q=" << q;
    EXPECT_LE(got, exact * 2 + 1) << "q=" << q;
  }
  // The window covers exactly the last 3 s.
  EXPECT_EQ(view.span_ns, 3 * kSecond);
}

TEST(SlidingWindow, TickAtWindowEdgeIsExcluded) {
  Histogram live;
  SlidingWindow window(10 * kSecond);
  std::int64_t events = 0;
  for (int k = 1; k <= 3; ++k) {
    live.record(1'000);
    window.push(k * kSecond, live.snapshot(), ++events);
  }
  // window = 2 s at now = 3 s: start = 1 s; the tick stamped exactly 1 s
  // is outside (t_ns <= start), ticks 2 and 3 are in.
  const auto two = window.over(3 * kSecond, 2 * kSecond);
  EXPECT_EQ(two.events, 2);
  EXPECT_EQ(two.span_ns, 2 * kSecond);
  // window = 1 s: only the newest tick.
  const auto one = window.over(3 * kSecond, 1 * kSecond);
  EXPECT_EQ(one.events, 1);
  EXPECT_EQ(one.span_ns, 1 * kSecond);
}

TEST(SlidingWindow, BucketsExpirePastTheLongestWindow) {
  Histogram live;
  SlidingWindow window(10 * kSecond);
  std::int64_t events = 0;
  for (int k = 1; k <= 30; ++k) {
    live.record(1'000);
    window.push(k * kSecond, live.snapshot(), ++events);
    // A bucket expires once its tick time is a full max-window old, so at
    // 1 Hz the ring holds at most 10 live ticks (plus the one just
    // pushed before expiry runs).
    EXPECT_LE(window.buckets(), 10u) << "after tick " << k;
  }
  // The 10 s view still sees every surviving tick's delta.
  const auto view = window.over(30 * kSecond, 10 * kSecond);
  EXPECT_EQ(view.events, 10);
  EXPECT_EQ(view.hist.count, 10);
}

// ---------------------------------------------------------------------------
// SloRules parsing

TEST(SloRules, ParsesFullSpecAndRejectsJunk) {
  SloRules rules;
  std::string error;
  ASSERT_TRUE(SloRules::parse(
      "latency_p99_ms=30,min_pics_s=24,max_stall_ms=500,"
      "trigger_ticks=2,clear_ticks=4",
      rules, &error))
      << error;
  EXPECT_DOUBLE_EQ(rules.latency_p99_ms, 30);
  EXPECT_DOUBLE_EQ(rules.min_pics_s, 24);
  EXPECT_DOUBLE_EQ(rules.max_stall_ms, 500);
  EXPECT_EQ(rules.trigger_ticks, 2);
  EXPECT_EQ(rules.clear_ticks, 4);
  EXPECT_TRUE(rules.any());

  SloRules empty;
  ASSERT_TRUE(SloRules::parse("", empty, &error));
  EXPECT_FALSE(empty.any());

  EXPECT_FALSE(SloRules::parse("bogus_rule=1", rules, &error));
  EXPECT_NE(error.find("bogus_rule"), std::string::npos) << error;
  EXPECT_FALSE(SloRules::parse("min_pics_s=abc", rules, &error));
  EXPECT_FALSE(SloRules::parse("min_pics_s", rules, &error));
}

// ---------------------------------------------------------------------------
// SLO hysteresis (sample_at with synthetic clocks — no sampler thread)

/// Completes `n` pictures on worker 0 at time `t_ns`, each with the given
/// frame latency.
void complete_pictures(LiveTelemetry& telemetry, int n,
                       std::int64_t latency_ns, std::int64_t t_ns) {
  TelemetryCell::Write w(telemetry.worker(0));
  w.add_pictures(n).set_last_latency_ns(latency_ns).set_last_progress_ns(
      t_ns);
  for (int i = 0; i < n; ++i) {
    telemetry.frame_latency().record(latency_ns);
  }
}

TEST(LiveSampler, ThroughputAlertFiresAndClearsWithHysteresis) {
  LiveTelemetry telemetry(1);
  LiveSampler::Options options;
  options.slo.min_pics_s = 10;
  options.slo.trigger_ticks = 2;
  options.slo.clear_ticks = 2;
  int fired = 0, cleared = 0;
  options.on_alert = [&](const Alert&, bool up) {
    (up ? fired : cleared) += 1;
  };
  LiveSampler sampler(telemetry, options);

  // Two healthy ticks at 20 pics/s.
  complete_pictures(telemetry, 20, 1'000'000, 1 * kSecond);
  auto s = sampler.sample_at(1 * kSecond);
  EXPECT_TRUE(s.alerts.empty());
  complete_pictures(telemetry, 20, 1'000'000, 2 * kSecond);
  s = sampler.sample_at(2 * kSecond);
  EXPECT_TRUE(s.alerts.empty());

  // Throughput collapses: first violating tick must NOT fire (trigger=2)…
  s = sampler.sample_at(3 * kSecond);
  EXPECT_TRUE(s.alerts.empty());
  EXPECT_EQ(fired, 0);
  // …the second one does.
  s = sampler.sample_at(4 * kSecond);
  ASSERT_EQ(s.alerts.size(), 1u);
  EXPECT_EQ(s.alerts[0].rule, "min_pics_s");
  EXPECT_TRUE(s.alerts[0].active());
  EXPECT_EQ(s.alerts[0].fired_at_ns, 4 * kSecond);
  EXPECT_EQ(fired, 1);

  // One healthy tick keeps the alert active (clear=2)…
  complete_pictures(telemetry, 20, 1'000'000, 5 * kSecond);
  s = sampler.sample_at(5 * kSecond);
  ASSERT_EQ(s.alerts.size(), 1u);
  EXPECT_EQ(cleared, 0);
  // …the second healthy tick clears it.
  complete_pictures(telemetry, 20, 1'000'000, 6 * kSecond);
  s = sampler.sample_at(6 * kSecond);
  EXPECT_TRUE(s.alerts.empty());
  EXPECT_EQ(cleared, 1);

  const auto log = sampler.alert_log();
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].rule, "min_pics_s");
  EXPECT_EQ(log[0].fired_at_ns, 4 * kSecond);
  EXPECT_EQ(log[0].cleared_at_ns, 6 * kSecond);
  EXPECT_FALSE(log[0].active());
}

TEST(LiveSampler, StallAlertNeedsOutstandingWork) {
  LiveTelemetry telemetry(1);
  LiveSampler::Options options;
  options.slo.max_stall_ms = 100;
  options.slo.trigger_ticks = 1;
  options.slo.clear_ticks = 1;
  LiveSampler sampler(telemetry, options);

  // Progress at t=1 s, then silence. With nothing queued and everything
  // displayed, an old last-progress stamp is a finished run, not a stall.
  complete_pictures(telemetry, 1, 1'000'000, 1 * kSecond);
  {
    TelemetryCell::Write w(telemetry.display());
    w.add_pictures(1).set_last_progress_ns(1 * kSecond);
  }
  auto s = sampler.sample_at(2 * kSecond);
  EXPECT_GT(s.stall_ms, 100);
  EXPECT_TRUE(s.alerts.empty()) << "no outstanding work, must not alarm";

  // The same silence with work outstanding IS a stall.
  telemetry.add_queue_depth(1);
  s = sampler.sample_at(3 * kSecond);
  ASSERT_EQ(s.alerts.size(), 1u);
  EXPECT_EQ(s.alerts[0].rule, "max_stall_ms");

  // Fresh progress clears it.
  telemetry.add_queue_depth(-1);
  complete_pictures(telemetry, 1, 1'000'000, 4 * kSecond);
  s = sampler.sample_at(4 * kSecond);
  EXPECT_TRUE(s.alerts.empty());
}

TEST(LiveSampler, LatencyAlertOnlyArmsWithWindowSamples) {
  LiveTelemetry telemetry(1);
  LiveSampler::Options options;
  options.slo.latency_p99_ms = 10;
  options.slo.trigger_ticks = 1;
  options.slo.clear_ticks = 1;
  LiveSampler sampler(telemetry, options);

  // Empty run: p99 = 0, nothing to judge, no alert.
  auto s = sampler.sample_at(1 * kSecond);
  EXPECT_TRUE(s.alerts.empty());

  // 50 ms frames blow through a 10 ms ceiling immediately (trigger=1).
  complete_pictures(telemetry, 5, 50'000'000, 2 * kSecond);
  s = sampler.sample_at(2 * kSecond);
  ASSERT_EQ(s.alerts.size(), 1u);
  EXPECT_EQ(s.alerts[0].rule, "latency_p99_ms");
  EXPECT_GT(s.alerts[0].value, 10.0);
}

// ---------------------------------------------------------------------------
// Export round-trips

/// A sampler tick over real-looking telemetry, for the exporters.
LiveSnapshot sample_fixture(LiveTelemetry& telemetry,
                            LiveSampler& sampler) {
  {
    TelemetryCell::Write w(telemetry.worker(0));
    w.add_pictures(3).add_tasks(3).add_busy_ns(900'000'000)
        .set_sync_ns(1'000'000).set_last_latency_ns(20'000'000)
        .set_last_progress_ns(kSecond - 1'000'000);
  }
  {
    TelemetryCell::Write w(telemetry.worker(1));
    w.add_pictures(2).add_tasks(2).add_busy_ns(400'000'000)
        .add_concealed(1).add_quarantined(1);
  }
  {
    TelemetryCell::Write w(telemetry.scan());
    w.add_tasks(2).set_bytes(123'456).set_last_progress_ns(kSecond / 2);
  }
  {
    TelemetryCell::Write w(telemetry.display());
    w.add_pictures(4).set_last_progress_ns(kSecond - 2'000'000);
  }
  telemetry.add_queue_depth(3);
  for (const std::int64_t v :
       {5'000'000, 10'000'000, 20'000'000, 20'000'000, 40'000'000}) {
    telemetry.frame_latency().record(v);
  }
  return sampler.sample_at(kSecond);
}

TEST(Exporters, NdjsonRoundTripPreservesEveryField) {
  LiveTelemetry telemetry(2);
  LiveSampler::Options options;
  LiveSampler sampler(telemetry, options);
  const LiveSnapshot snapshot = sample_fixture(telemetry, sampler);

  std::ostringstream os;
  write_snapshot_json(snapshot, os);
  LiveSnapshot back;
  std::string error;
  ASSERT_TRUE(parse_snapshot(os.str(), back, &error)) << error;

  EXPECT_EQ(back.seq, snapshot.seq);
  EXPECT_EQ(back.t_ns, snapshot.t_ns);
  EXPECT_EQ(back.pictures, snapshot.pictures);
  EXPECT_EQ(back.displayed, snapshot.displayed);
  EXPECT_EQ(back.queue_depth, snapshot.queue_depth);
  EXPECT_EQ(back.scan_bytes, snapshot.scan_bytes);
  EXPECT_DOUBLE_EQ(back.pics_per_s_total, snapshot.pics_per_s_total);
  EXPECT_DOUBLE_EQ(back.pics_per_s_1s, snapshot.pics_per_s_1s);
  EXPECT_DOUBLE_EQ(back.p50_1s_ms, snapshot.p50_1s_ms);
  EXPECT_DOUBLE_EQ(back.p95_10s_ms, snapshot.p95_10s_ms);
  EXPECT_DOUBLE_EQ(back.p99_total_ms, snapshot.p99_total_ms);
  EXPECT_DOUBLE_EQ(back.stall_ms, snapshot.stall_ms);
  ASSERT_EQ(back.workers.size(), snapshot.workers.size());
  for (std::size_t w = 0; w < back.workers.size(); ++w) {
    const auto& got = back.workers[w];
    const auto& want = snapshot.workers[w];
    EXPECT_EQ(got.id, want.id);
    EXPECT_EQ(got.cell.pictures, want.cell.pictures);
    EXPECT_EQ(got.cell.tasks, want.cell.tasks);
    EXPECT_EQ(got.cell.busy_ns, want.cell.busy_ns);
    EXPECT_EQ(got.cell.sync_ns, want.cell.sync_ns);
    EXPECT_EQ(got.cell.concealed, want.cell.concealed);
    EXPECT_EQ(got.cell.quarantined, want.cell.quarantined);
    EXPECT_EQ(got.cell.last_latency_ns, want.cell.last_latency_ns);
    EXPECT_EQ(got.cell.last_progress_ns, want.cell.last_progress_ns);
    EXPECT_DOUBLE_EQ(got.utilization, want.utilization);
  }
  EXPECT_EQ(back.alerts.size(), snapshot.alerts.size());
}

TEST(Exporters, ParseRejectsForeignSchemaAndJunk) {
  LiveSnapshot out;
  std::string error;
  EXPECT_FALSE(parse_snapshot("{\"schema\":\"pmp2-live/999\"}", out, &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  EXPECT_FALSE(parse_snapshot("not json at all", out, &error));
  EXPECT_FALSE(parse_snapshot("[1,2,3]", out, &error));
}

TEST(Exporters, PrometheusTextCoversEveryInstrument) {
  LiveTelemetry telemetry(2);
  LiveSampler::Options options;
  options.slo.min_pics_s = 1'000;  // guaranteed violation once armed
  options.slo.trigger_ticks = 1;
  options.slo.clear_ticks = 1;
  LiveSampler sampler(telemetry, options);
  const LiveSnapshot snapshot = sample_fixture(telemetry, sampler);
  ASSERT_FALSE(snapshot.alerts.empty());

  const std::string text = prometheus_text(snapshot);
  for (const char* needle :
       {"pmp2_live_seq 1", "pmp2_pictures_total ", "pmp2_queue_depth 3",
        "pmp2_pics_per_second{window=\"1s\"}",
        "pmp2_frame_latency_ms{window=\"10s\",quantile=\"0.99\"}",
        "pmp2_worker_utilization{worker=\"1\"}", "pmp2_stall_ms ",
        "pmp2_alert_active{rule=\"min_pics_s\"} 1"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }

  const std::string path = ::testing::TempDir() + "pmp2_prom_test.txt";
  ASSERT_TRUE(write_file_atomic(path, text));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), text);
  std::remove(path.c_str());
}

TEST(Exporters, SamplerStreamsNdjsonToFile) {
  const std::string path = ::testing::TempDir() + "pmp2_live_test.ndjson";
  LiveTelemetry telemetry(1);
  LiveSampler::Options options;
  options.ndjson_path = path;
  LiveSampler sampler(telemetry, options);
  complete_pictures(telemetry, 4, 2'000'000, kSecond);
  sampler.sample_at(1 * kSecond);
  complete_pictures(telemetry, 4, 2'000'000, 2 * kSecond);
  sampler.sample_at(2 * kSecond);
  EXPECT_TRUE(sampler.io_ok());

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int valid = 0;
  std::int64_t last_pictures = -1;
  while (std::getline(in, line)) {
    LiveSnapshot snapshot;
    std::string error;
    ASSERT_TRUE(parse_snapshot(line, snapshot, &error)) << error;
    ++valid;
    last_pictures = snapshot.pictures;
  }
  EXPECT_EQ(valid, 2);
  EXPECT_EQ(last_pictures, 8);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace pmp2::obs::live
