#include <gtest/gtest.h>

#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "bitstream/startcode.h"
#include "util/rng.h"

namespace pmp2 {
namespace {

TEST(BitWriter, EmitsMsbFirst) {
  BitWriter bw;
  bw.put(0b1, 1);
  bw.put(0b01, 2);
  bw.put(0b10110, 5);
  const auto& bytes = bw.bytes();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0b10110110);
}

TEST(BitWriter, ByteAlignPadsWithZeros) {
  BitWriter bw;
  bw.put(0b111, 3);
  bw.byte_align();
  EXPECT_TRUE(bw.byte_aligned());
  EXPECT_EQ(bw.bytes()[0], 0b11100000);
}

TEST(BitWriter, StartcodeIsByteAligned) {
  BitWriter bw;
  bw.put(0b1, 1);
  bw.put_startcode(0xB3);
  const auto& b = bw.bytes();
  ASSERT_EQ(b.size(), 5u);
  EXPECT_EQ(b[1], 0x00);
  EXPECT_EQ(b[2], 0x00);
  EXPECT_EQ(b[3], 0x01);
  EXPECT_EQ(b[4], 0xB3);
}

TEST(BitReader, ReadsBackWriterOutput) {
  BitWriter bw;
  bw.put(0xAB, 8);
  bw.put(0x3, 2);
  bw.put(0x1234, 16);
  bw.put(1, 1);
  auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get(8), 0xABu);
  EXPECT_EQ(br.get(2), 0x3u);
  EXPECT_EQ(br.get(16), 0x1234u);
  EXPECT_EQ(br.get(1), 1u);
}

TEST(BitReader, PeekDoesNotConsume) {
  const std::vector<std::uint8_t> data{0xDE, 0xAD};
  BitReader br(data);
  EXPECT_EQ(br.peek(8), 0xDEu);
  EXPECT_EQ(br.peek(16), 0xDEADu);
  EXPECT_EQ(br.bit_position(), 0u);
  br.skip(4);
  EXPECT_EQ(br.peek(8), 0xEAu);
}

TEST(BitReader, ThirtyTwoBitReads) {
  const std::vector<std::uint8_t> data{0x12, 0x34, 0x56, 0x78, 0x9A};
  BitReader br(data);
  EXPECT_EQ(br.get(32), 0x12345678u);
  EXPECT_EQ(br.get(8), 0x9Au);
}

TEST(BitReader, OverrunFlagSetOnReadPastEnd) {
  const std::vector<std::uint8_t> data{0xFF};
  BitReader br(data);
  EXPECT_EQ(br.get(8), 0xFFu);
  EXPECT_FALSE(br.overrun());
  (void)br.get(8);
  EXPECT_TRUE(br.overrun());
}

TEST(BitReader, RandomRoundTrip) {
  Rng rng(42);
  std::vector<std::pair<std::uint32_t, int>> fields;
  BitWriter bw;
  for (int i = 0; i < 5000; ++i) {
    const int n = rng.next_in(1, 32);
    const std::uint32_t v =
        n == 32 ? static_cast<std::uint32_t>(rng.next_u64())
                : static_cast<std::uint32_t>(rng.next_u64()) & ((1u << n) - 1);
    fields.emplace_back(v, n);
    bw.put(v, n);
  }
  auto bytes = bw.take();
  BitReader br(bytes);
  for (const auto& [v, n] : fields) {
    EXPECT_EQ(br.get(n), v) << "field width " << n;
  }
  EXPECT_FALSE(br.overrun());
}

TEST(BitReader, ByteAlignFromAllOffsets) {
  const std::vector<std::uint8_t> data{0x00, 0xFF, 0x00};
  for (int off = 0; off < 16; ++off) {
    BitReader br(data);
    br.skip(off);
    br.byte_align();
    EXPECT_EQ(br.bit_position() % 8, 0u);
    EXPECT_GE(br.bit_position(), static_cast<std::uint64_t>(off));
    EXPECT_LT(br.bit_position(), static_cast<std::uint64_t>(off) + 8);
  }
}

TEST(Startcode, ScannerFindsAllCodes) {
  BitWriter bw;
  bw.put_startcode(0xB3);
  bw.put(0xFFFF, 16);
  bw.put_startcode(0xB8);
  bw.put_startcode(0x00);
  bw.put(0xABCD, 16);
  bw.put_startcode(0x01);  // slice
  bw.put_startcode(0xB7);
  auto bytes = bw.take();
  const auto codes = scan_all_startcodes(bytes);
  ASSERT_EQ(codes.size(), 5u);
  EXPECT_EQ(codes[0].code, 0xB3);
  EXPECT_EQ(codes[0].byte_offset, 0u);
  EXPECT_EQ(codes[1].code, 0xB8);
  EXPECT_EQ(codes[2].code, 0x00);
  EXPECT_EQ(codes[3].code, 0x01);
  EXPECT_EQ(codes[4].code, 0xB7);
}

TEST(Startcode, NoFalsePositiveInsideData) {
  // 0x000002 and 0x0000 0000 01 variants must not trip the scanner except
  // at real 000001 prefixes.
  const std::vector<std::uint8_t> data{0x00, 0x00, 0x02, 0x00, 0x00,
                                       0x00, 0x01, 0xB3, 0x00};
  const auto codes = scan_all_startcodes(data);
  ASSERT_EQ(codes.size(), 1u);
  EXPECT_EQ(codes[0].byte_offset, 4u);
  EXPECT_EQ(codes[0].code, 0xB3);
}

TEST(Startcode, SliceCodeRange) {
  EXPECT_FALSE(is_slice_code(0x00));
  EXPECT_TRUE(is_slice_code(0x01));
  EXPECT_TRUE(is_slice_code(0xAF));
  EXPECT_FALSE(is_slice_code(0xB0));
  EXPECT_EQ(startcode_name(0x05), "slice");
  EXPECT_EQ(startcode_name(0xB3), "sequence_header");
}

TEST(BitReader, AlignToNextStartcode) {
  BitWriter bw;
  bw.put(0x7F, 7);  // unaligned garbage
  bw.put_startcode(0x42);
  bw.put(0x00, 8);
  auto bytes = bw.take();
  BitReader br(bytes);
  br.skip(3);
  ASSERT_TRUE(br.align_to_next_startcode());
  EXPECT_TRUE(br.at_startcode_prefix());
  EXPECT_EQ(br.get(32), 0x00000142u);
}

TEST(BitReader, RandomDataScannerAgreesWithNaive) {
  Rng rng(7);
  std::vector<std::uint8_t> data(4096);
  for (auto& b : data) {
    // Skew toward zeros to generate many near-miss patterns.
    b = rng.next_below(4) == 0 ? static_cast<std::uint8_t>(rng.next_below(3))
                               : static_cast<std::uint8_t>(rng.next_below(256));
  }
  std::vector<std::uint64_t> naive;
  for (std::size_t i = 0; i + 3 < data.size(); ++i) {
    if (data[i] == 0 && data[i + 1] == 0 && data[i + 2] == 1) {
      naive.push_back(i);
    }
  }
  const auto scanned = scan_all_startcodes(data);
  ASSERT_EQ(scanned.size(), naive.size());
  for (std::size_t i = 0; i < naive.size(); ++i) {
    EXPECT_EQ(scanned[i].byte_offset, naive[i]);
    EXPECT_EQ(scanned[i].code, data[naive[i] + 3]);
  }
}

}  // namespace
}  // namespace pmp2
