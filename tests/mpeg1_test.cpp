// MPEG-1 compatibility-mode tests: the paper parallelizes "the MPEG
// standard" (both MPEG-1 and MPEG-2); this library decodes MPEG-1 streams
// (no extensions, picture-header f_codes, MPEG-1 escape coding) through the
// same slice core and both parallel decoders.
#include <gtest/gtest.h>

#include "bitstream/startcode.h"
#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/scene.h"
#include "streamgen/stream_factory.h"

namespace pmp2::mpeg2 {
namespace {

streamgen::StreamSpec mpeg1_spec(int pictures = 26) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = pictures;
  spec.bit_rate = 1'200'000;
  spec.mpeg1 = true;
  return spec;
}

TEST(Mpeg1, StreamHasNoExtensions) {
  const auto stream = streamgen::generate_stream(mpeg1_spec(13));
  const StreamStructure s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  EXPECT_TRUE(s.mpeg1);
  // No 0xB5 extension startcodes anywhere.
  for (const auto& sc : pmp2::scan_all_startcodes(stream)) {
    EXPECT_NE(sc.code, 0xB5);
  }
}

TEST(Mpeg1, Mpeg2StreamDetectedAsMpeg2) {
  auto spec = mpeg1_spec(13);
  spec.mpeg1 = false;
  const auto stream = streamgen::generate_stream(spec);
  const StreamStructure s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  EXPECT_FALSE(s.mpeg1);
}

TEST(Mpeg1, DecodesWithGoodQuality) {
  const auto spec = mpeg1_spec();
  const auto stream = streamgen::generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.frames.size(), 26u);

  streamgen::SceneConfig sc;
  sc.width = spec.width;
  sc.height = spec.height;
  const streamgen::SceneGenerator scene(sc);
  for (int i = 0; i < 26; i += 5) {
    const auto src = scene.render(i);
    EXPECT_GT(psnr_y(*src, *out.frames[static_cast<std::size_t>(i)]), 25.0)
        << i;
  }
}

TEST(Mpeg1, PictureHeaderCarriesFCodes) {
  const auto stream = streamgen::generate_stream(mpeg1_spec(13));
  const StreamStructure s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  // Parse the first P picture's headers: f_code must come from the header.
  for (const auto& info : s.gops[0].pictures) {
    if (info.type != PictureType::kP) continue;
    BitReader br(stream);
    br.seek_bytes(info.offset);
    PictureHeader ph;
    PictureCodingExtension pce;
    ASSERT_TRUE(parse_picture_headers(br, ph, pce));
    EXPECT_GE(ph.forward_f_code, 1);
    EXPECT_LE(ph.forward_f_code, 7);
    EXPECT_EQ(pce.f_code[0][0], ph.forward_f_code);
    EXPECT_FALSE(ph.full_pel_forward);
    return;
  }
  FAIL() << "no P picture found";
}

TEST(Mpeg1, EscapeLevelsRoundTrip) {
  // Noise at the finest quantizer forces escape coding; MPEG-1 uses the
  // 8/16-bit level form, which must round-trip through the decoder.
  streamgen::SceneConfig sc;
  sc.width = 64;
  sc.height = 48;
  const streamgen::SceneGenerator scene(sc);
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.gop_size = 4;
  cfg.mpeg1 = true;
  cfg.rate_control = false;
  cfg.base_qscale_code = 2;
  Encoder enc(cfg);
  std::vector<FramePtr> src;
  for (int i = 0; i < 4; ++i) {
    src.push_back(scene.render(i));
    enc.push_frame(scene.render(i));
  }
  const auto stream = enc.finish();
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_GT(psnr_y(*src[0], *out.frames[0]), 30.0);
}

TEST(Mpeg1, Mpeg2OnlyOptionsForcedOff) {
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.mpeg1 = true;
  cfg.intra_vlc_format = true;   // must be ignored
  cfg.alternate_scan = true;     // must be ignored
  cfg.q_scale_type = true;       // must be ignored
  cfg.intra_dc_precision = 3;    // must be ignored
  Encoder enc(cfg);
  EXPECT_FALSE(enc.config().intra_vlc_format);
  EXPECT_FALSE(enc.config().alternate_scan);
  EXPECT_FALSE(enc.config().q_scale_type);
  EXPECT_EQ(enc.config().intra_dc_precision, 0);
}

TEST(Mpeg1, ParallelDecodersBitExact) {
  const auto stream = streamgen::generate_stream(mpeg1_spec(26));
  Decoder dec;
  std::uint64_t want = 0;
  const auto st = dec.decode_stream(stream, [&](FramePtr f) {
    want = parallel::chain_frame_checksum(want, *f);
  });
  ASSERT_TRUE(st.ok);

  parallel::GopDecoderConfig gcfg;
  gcfg.workers = 3;
  const auto g = parallel::GopParallelDecoder(gcfg).decode(stream);
  ASSERT_TRUE(g.ok);
  EXPECT_EQ(g.checksum, want);

  for (const auto policy :
       {parallel::SlicePolicy::kSimple, parallel::SlicePolicy::kImproved}) {
    parallel::SliceDecoderConfig scfg;
    scfg.workers = 3;
    scfg.policy = policy;
    const auto s = parallel::SliceParallelDecoder(scfg).decode(stream);
    ASSERT_TRUE(s.ok);
    EXPECT_EQ(s.checksum, want);
  }
}

TEST(Mpeg1, SmallerThanMpeg2ForSameContent) {
  // Same content, same quantizer: the MPEG-1 stream should be comparable
  // in size (slightly smaller: no extension headers).
  auto spec1 = mpeg1_spec(13);
  spec1.rate_control = false;
  auto spec2 = spec1;
  spec2.mpeg1 = false;
  const auto s1 = streamgen::generate_stream(spec1);
  const auto s2 = streamgen::generate_stream(spec2);
  EXPECT_LT(s1.size(), s2.size());
  EXPECT_GT(s1.size(), s2.size() / 2);
}

}  // namespace
}  // namespace pmp2::mpeg2
