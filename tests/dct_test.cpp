#include <gtest/gtest.h>

#include <cmath>

#include "mpeg2/dct.h"
#include "util/rng.h"

namespace pmp2::mpeg2 {
namespace {

TEST(Dct, ForwardInverseReferenceIsIdentity) {
  Rng rng(1);
  std::array<double, 64> in, freq, back;
  for (auto& v : in) v = rng.next_in(0, 255);
  fdct_reference(in, freq);
  idct_reference(freq, back);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(back[i], in[i], 1e-9) << i;
}

TEST(Dct, DcOnlyBlock) {
  std::array<double, 64> in{}, freq;
  for (auto& v : in) v = 128.0;
  fdct_reference(in, freq);
  EXPECT_NEAR(freq[0], 8.0 * 128.0, 1e-9);  // DC = 8 x mean
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(freq[i], 0.0, 1e-9);
}

TEST(Dct, IntIdctMatchesReferenceOnDcOnly) {
  Block b{};
  b[0] = 1024;  // flat 128 block
  idct_int(b);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(b[i], 128) << i;
}

TEST(Dct, IntIdctNegativeDc) {
  Block b{};
  b[0] = -1024;
  idct_int(b);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(b[i], -128) << i;
}

TEST(Dct, IntIdctSingleAcCoefficient) {
  // One AC coefficient: compare against the reference transform.
  for (const int pos : {1, 8, 9, 27, 63}) {
    Block b{};
    b[pos] = 500;
    std::array<double, 64> in{}, want;
    in[pos] = 500.0;
    idct_reference(in, want);
    idct_int(b);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(b[i], want[i], 1.0) << "pos " << pos << " i " << i;
    }
  }
}

/// IEEE-1180-style accuracy test: random coefficient blocks (bounded like
/// dequantized MPEG coefficients), integer IDCT vs. double reference.
TEST(Dct, IntIdctAccuracyIeee1180Style) {
  Rng rng(1180);
  constexpr int kTrials = 2000;
  double max_err = 0.0;
  double sum_sq_err = 0.0;
  long count = 0;
  for (int t = 0; t < kTrials; ++t) {
    Block b{};
    std::array<double, 64> in{}, want;
    // Sparse blocks, as produced by dequantization.
    const int ncoef = rng.next_in(1, 16);
    for (int k = 0; k < ncoef; ++k) {
      const int pos = static_cast<int>(rng.next_below(64));
      const int val = rng.next_in(-2048, 2047) / (1 + pos / 8);
      b[pos] = static_cast<std::int16_t>(val);
      in[pos] = val;
    }
    idct_reference(in, want);
    idct_int(b);
    for (int i = 0; i < 64; ++i) {
      // IEEE 1180 compares against the *rounded* reference transform.
      const double err = std::abs(b[i] - std::round(want[i]));
      max_err = std::max(max_err, err);
      sum_sq_err += err * err;
      ++count;
    }
  }
  // IEEE 1180 limits: peak error <= 1, mean square error <= 0.06 per pel.
  EXPECT_LE(max_err, 1.0);
  EXPECT_LE(sum_sq_err / count, 0.06);
}

TEST(Dct, IntIdctLinearityInDc) {
  // IDCT(a+b) == IDCT(a) + IDCT(b) when one block is DC-only (exercises
  // the fast DC path against the general path).
  Rng rng(9);
  for (int t = 0; t < 50; ++t) {
    Block ac{};
    for (int k = 0; k < 5; ++k) {
      ac[rng.next_below(64)] = static_cast<std::int16_t>(rng.next_in(-300, 300));
    }
    Block with_dc = ac;
    with_dc[0] = static_cast<std::int16_t>(ac[0] + 512);
    Block dc_only{};
    dc_only[0] = 512;
    idct_int(ac);
    idct_int(with_dc);
    idct_int(dc_only);
    for (int i = 0; i < 64; ++i) {
      EXPECT_NEAR(with_dc[i], ac[i] + dc_only[i], 1) << i;
    }
  }
}

}  // namespace
}  // namespace pmp2::mpeg2
