// Memory-model tests (paper Fig. 9): shape of mem(t) = scan(t) + frames(t),
// scaling with workers/GOP size/resolution, the infeasible 1408x960 case,
// and agreement with the scheduler simulator's memory timeline.
#include <gtest/gtest.h>

#include "model/memory_model.h"
#include "sched/profile.h"
#include "sched/sim.h"
#include "streamgen/stream_factory.h"

namespace pmp2::model {
namespace {

MemoryModelParams paper_params(int workers, int gop_size, int width,
                               int height) {
  MemoryModelParams p;
  p.workers = workers;
  p.gop_size = gop_size;
  p.frame_bytes = static_cast<std::int64_t>(width) * height * 3 / 2;
  // Paper-scale rates: scan ~200 pics/s worth of bytes, decode ~5 pics/s
  // per processor at 704x480 (scaled by pixel count), display 30/s.
  const double pixels = static_cast<double>(width) * height;
  p.decode_pics_per_s = 5.0 * (704.0 * 480.0) / pixels;
  p.coded_bytes_per_pic = 5e6 / 8 / 30;  // 5 Mb/s at 30 pics/s
  p.scan_bytes_per_s = 200 * p.coded_bytes_per_pic;
  p.display_pics_per_s = 30;
  p.total_pictures = 1120;
  return p;
}

TEST(MemoryModel, TotalIsScanPlusFrames) {
  const MemoryModel m(paper_params(7, 13, 704, 480));
  for (double t = 0; t < 30; t += 1.7) {
    const auto p = m.at(t);
    EXPECT_DOUBLE_EQ(p.total(), p.scan_bytes + p.frame_bytes);
    EXPECT_GE(p.scan_bytes, 0.0);
    EXPECT_GE(p.frame_bytes, 0.0);
  }
}

TEST(MemoryModel, MemoryAtTimeZeroIsZero) {
  const MemoryModel m(paper_params(7, 13, 704, 480));
  EXPECT_DOUBLE_EQ(m.at(0).total(), 0.0);
}

TEST(MemoryModel, PeakGrowsWithWorkers) {
  const auto p4 = MemoryModel(paper_params(4, 13, 704, 480)).peak_bytes();
  const auto p11 = MemoryModel(paper_params(11, 13, 704, 480)).peak_bytes();
  EXPECT_GT(p11, p4);
}

TEST(MemoryModel, PeakGrowsWithResolution) {
  // Isolate the frame-size effect by fixing the decode rate (otherwise the
  // smaller picture's faster decode builds a display backlog that blurs
  // the comparison).
  auto small_p = paper_params(7, 13, 352, 240);
  auto large_p = paper_params(7, 13, 1408, 960);
  small_p.decode_pics_per_s = large_p.decode_pics_per_s = 5.0;
  const auto small = MemoryModel(small_p).peak_bytes();
  const auto large = MemoryModel(large_p).peak_bytes();
  EXPECT_GT(large, 4 * small);

  // At the paper's real (resolution-dependent) rates the larger picture
  // still needs more memory.
  const auto small_real = MemoryModel(paper_params(7, 13, 352, 240)).peak_bytes();
  const auto large_real =
      MemoryModel(paper_params(7, 13, 1408, 960)).peak_bytes();
  EXPECT_GT(large_real, small_real);
}

TEST(MemoryModel, InfeasibleCaseExceeds500MB) {
  // The paper: 1408x960, 31 pictures/GOP, 11 processors could not run in
  // the 500 MB available to the program.
  auto params = paper_params(11, 31, 1408, 960);
  params.coded_bytes_per_pic = 7e6 / 8 / 30;  // 7 Mb/s stream
  params.scan_bytes_per_s = 90 * params.coded_bytes_per_pic;  // Table 2
  const auto peak = MemoryModel(params).peak_bytes();
  EXPECT_GT(peak, 500ll << 20);
}

TEST(MemoryModel, ModerateCaseFits) {
  const auto peak = MemoryModel(paper_params(7, 13, 352, 240)).peak_bytes();
  EXPECT_LT(peak, 200ll << 20);
}

TEST(MemoryModel, RunLengthAtLeastDisplayTime) {
  const MemoryModel m(paper_params(7, 13, 704, 480));
  EXPECT_GE(m.run_length_s(), 1120 / 30.0 - 1e-9);
}

TEST(MemoryModel, MemoryDrainsByEndOfRun) {
  const MemoryModel m(paper_params(7, 13, 704, 480));
  const auto points = m.timeline(0.25, 1e9);
  ASSERT_FALSE(points.empty());
  EXPECT_LT(points.back().total(), 0.05 * m.peak_bytes());
}

TEST(MemoryModel, AgreesWithSimulatorShape) {
  // Drive both the simulator and the analytical model from the same
  // profile; peaks must agree within a factor of ~2 (the paper reports the
  // model as "very close" to the measured behaviour).
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 52;
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  const sched::StreamProfile profile = sched::profile_stream(stream);
  ASSERT_TRUE(profile.ok);

  sched::SimConfig cfg;
  cfg.workers = 4;
  cfg.paced_display = true;
  const sched::SimResult sim = sched::simulate_gop(profile, cfg);

  MemoryModelParams params;
  params.workers = 4;
  params.gop_size = 13;
  params.frame_bytes = profile.frame_bytes();
  params.total_pictures = profile.total_pictures();
  params.coded_bytes_per_pic =
      static_cast<double>(profile.stream_bytes) / profile.total_pictures();
  params.scan_bytes_per_s =
      profile.scan_ns > 0
          ? static_cast<double>(profile.stream_bytes) * 1e9 / profile.scan_ns
          : 1e12;
  // One worker's decode rate from the profile's calibrated costs.
  double total_s = 0;
  for (const auto& g : profile.gops) {
    for (const auto& pic : g.pictures) {
      for (const auto& s : pic.slices) {
        total_s += static_cast<double>(profile.slice_cost_ns(s, false)) * 1e-9;
      }
    }
  }
  params.decode_pics_per_s = profile.total_pictures() / total_s;
  params.display_pics_per_s = profile.frame_rate;

  const auto model_peak = MemoryModel(params).peak_bytes();
  EXPECT_GT(model_peak, sim.peak_memory / 2);
  EXPECT_LT(model_peak, sim.peak_memory * 2);
}

}  // namespace
}  // namespace pmp2::model
