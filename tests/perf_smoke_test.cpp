// CI perf smoke: decode one 352x240 stream end to end (scan + sequential
// decode) and assert it finishes inside a generous wall-clock bound. Run
// via `ctest -L perfsmoke`. The bound is deliberately loose — an order of
// magnitude above the expected time on one slow core — so it only trips on
// a catastrophic kernel regression (e.g. a hot path falling off its fast
// case), not on machine noise.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <span>
#include <vector>

#include "bitstream/startcode.h"
#include "mpeg2/decoder.h"
#include "streamgen/stream_factory.h"

namespace pmp2::mpeg2 {
namespace {

TEST(PerfSmoke, ScanAndDecode352x240UnderBound) {
  streamgen::StreamSpec spec;  // 352x240 defaults
  spec.gop_size = 13;
  spec.pictures = 39;
  const auto stream = streamgen::generate_stream(spec);
  ASSERT_FALSE(stream.empty());

  const auto t0 = std::chrono::steady_clock::now();
  const StreamStructure structure = scan_structure(stream);
  ASSERT_TRUE(structure.valid);
  ASSERT_EQ(structure.total_pictures(), 39);

  Decoder dec;
  int frames = 0;
  const auto status =
      dec.decode_stream(stream, [&frames](FramePtr) { ++frames; });
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ASSERT_TRUE(status.ok);
  EXPECT_EQ(frames, 39);
  // 39 SIF pictures decode in well under a second on any machine this runs
  // on; 20 s only catches pathological regressions.
  EXPECT_LT(secs, 20.0);
}

/// The pre-SWAR scanner, verbatim, as the speed baseline.
std::vector<Startcode> seed_scan_all(std::span<const std::uint8_t> data) {
  std::vector<Startcode> out;
  std::uint64_t i = 0;
  while (i + 3 < data.size()) {
    if (data[i] == 0 && data[i + 1] == 0 && data[i + 2] == 1) {
      Startcode sc;
      sc.byte_offset = i;
      sc.code = data[i + 3];
      out.push_back(sc);
      i += 4;
      continue;
    }
    i += (data[i + 2] > 1) ? 3 : 1;
  }
  return out;
}

TEST(PerfSmoke, SwarScannerAtLeastThreeTimesSeedRate) {
  // The ISSUE 4 acceptance bar: the SWAR scanner must sustain >= 3x the
  // byte-wise scanner's throughput on a real encoded stream. Min-of-N
  // wall times on a multi-MB buffer; both loops touch identical bytes, so
  // the ratio is stable well beyond 3x (typically 6-10x) — the bound only
  // trips if the SWAR fast path stops being taken.
  streamgen::StreamSpec spec;
  spec.width = 704;
  spec.height = 480;
  spec.gop_size = 13;
  spec.pictures = 26;
  spec.bit_rate = 5'000'000;
  const auto stream = streamgen::generate_stream(spec);
  ASSERT_FALSE(stream.empty());

  auto time_min_s = [&](auto&& fn) {
    double best = 1e9;
    for (int rep = 0; rep < 5; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      fn();
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
      best = std::min(best, s);
    }
    return best;
  };

  std::size_t seed_codes = 0, swar_codes = 0;
  const double seed_s =
      time_min_s([&] { seed_codes = seed_scan_all(stream).size(); });
  const double swar_s =
      time_min_s([&] { swar_codes = scan_all_startcodes(stream).size(); });
  ASSERT_EQ(swar_codes, seed_codes);
  ASSERT_GT(seed_codes, 0u);
  EXPECT_GE(seed_s / swar_s, 3.0)
      << "seed " << seed_s << " s vs swar " << swar_s << " s over "
      << stream.size() << " bytes";
}

}  // namespace
}  // namespace pmp2::mpeg2
