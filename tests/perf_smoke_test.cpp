// CI perf smoke: decode one 352x240 stream end to end (scan + sequential
// decode) and assert it finishes inside a generous wall-clock bound. Run
// via `ctest -L perfsmoke`. The bound is deliberately loose — an order of
// magnitude above the expected time on one slow core — so it only trips on
// a catastrophic kernel regression (e.g. a hot path falling off its fast
// case), not on machine noise.
#include <gtest/gtest.h>

#include <chrono>

#include "mpeg2/decoder.h"
#include "streamgen/stream_factory.h"

namespace pmp2::mpeg2 {
namespace {

TEST(PerfSmoke, ScanAndDecode352x240UnderBound) {
  streamgen::StreamSpec spec;  // 352x240 defaults
  spec.gop_size = 13;
  spec.pictures = 39;
  const auto stream = streamgen::generate_stream(spec);
  ASSERT_FALSE(stream.empty());

  const auto t0 = std::chrono::steady_clock::now();
  const StreamStructure structure = scan_structure(stream);
  ASSERT_TRUE(structure.valid);
  ASSERT_EQ(structure.total_pictures(), 39);

  Decoder dec;
  int frames = 0;
  const auto status =
      dec.decode_stream(stream, [&frames](FramePtr) { ++frames; });
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  ASSERT_TRUE(status.ok);
  EXPECT_EQ(frames, 39);
  // 39 SIF pictures decode in well under a second on any machine this runs
  // on; 20 s only catches pathological regressions.
  EXPECT_LT(secs, 20.0);
}

}  // namespace
}  // namespace pmp2::mpeg2
