// Cross-cutting property tests: transform identities (Parseval, DC shift,
// linearity), quantizer monotonicity, motion-vector algebra, and a
// parameterized whole-codec sweep across resolutions and GOP sizes.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "mpeg2/dct.h"
#include "mpeg2/decoder.h"
#include "mpeg2/scan_quant.h"
#include "streamgen/scene.h"
#include "streamgen/stream_factory.h"
#include "util/rng.h"

namespace pmp2::mpeg2 {
namespace {

TEST(Properties, DctParseval) {
  // The DCT is orthonormal up to the defined scaling: energy in == energy
  // out for the reference transform.
  Rng rng(21);
  for (int t = 0; t < 50; ++t) {
    std::array<double, 64> in, out;
    double e_in = 0;
    for (auto& v : in) {
      v = rng.next_in(-255, 255);
      e_in += v * v;
    }
    fdct_reference(in, out);
    double e_out = 0;
    for (const auto v : out) e_out += v * v;
    EXPECT_NEAR(e_out, e_in, 1e-6 * e_in + 1e-9);
  }
}

TEST(Properties, DctDcShift) {
  // Adding a constant c to all pels adds 8c to the DC and nothing else.
  Rng rng(22);
  std::array<double, 64> a, b, fa, fb;
  for (int i = 0; i < 64; ++i) {
    a[i] = rng.next_in(0, 200);
    b[i] = a[i] + 31;
  }
  fdct_reference(a, fa);
  fdct_reference(b, fb);
  EXPECT_NEAR(fb[0] - fa[0], 8.0 * 31, 1e-9);
  for (int i = 1; i < 64; ++i) EXPECT_NEAR(fb[i], fa[i], 1e-9) << i;
}

TEST(Properties, DctLinearity) {
  Rng rng(23);
  std::array<double, 64> a, b, sum, fa, fb, fsum;
  for (int i = 0; i < 64; ++i) {
    a[i] = rng.next_in(-100, 100);
    b[i] = rng.next_in(-100, 100);
    sum[i] = a[i] + b[i];
  }
  fdct_reference(a, fa);
  fdct_reference(b, fb);
  fdct_reference(sum, fsum);
  for (int i = 0; i < 64; ++i) EXPECT_NEAR(fsum[i], fa[i] + fb[i], 1e-9);
}

TEST(Properties, CoarserQuantizerNeverIncreasesLevels) {
  Rng rng(24);
  QuantContext fine, coarse;
  fine.matrix = coarse.matrix = default_non_intra_matrix().data();
  fine.quantiser_scale = quantiser_scale(4, false);
  coarse.quantiser_scale = quantiser_scale(24, false);
  for (int t = 0; t < 100; ++t) {
    std::array<double, 64> dct;
    for (auto& v : dct) v = rng.next_in(-700, 700);
    Block qf, qc;
    quantize_non_intra(dct, qf, fine);
    quantize_non_intra(dct, qc, coarse);
    for (int i = 0; i < 64; ++i) {
      EXPECT_LE(std::abs(qc[i]), std::abs(qf[i])) << i;
    }
  }
}

TEST(Properties, DequantizeMagnitudeMonotoneInLevel) {
  QuantContext q;
  q.matrix = default_non_intra_matrix().data();
  q.quantiser_scale = quantiser_scale(8, false);
  int prev = 0;
  for (int level = 1; level <= 40; ++level) {
    Block b{};
    b[5] = static_cast<std::int16_t>(level);
    dequantize_non_intra(b, q);
    EXPECT_GT(b[5], prev) << level;
    prev = b[5];
  }
}

TEST(Properties, DequantizeOddSymmetry) {
  // dequant(-q) == -dequant(q) for non-intra AC (before mismatch control,
  // which only touches coefficient 63).
  Rng rng(25);
  QuantContext q;
  q.matrix = default_non_intra_matrix().data();
  q.quantiser_scale = quantiser_scale(11, false);
  for (int t = 0; t < 100; ++t) {
    const int pos = 1 + static_cast<int>(rng.next_below(62));
    const int level = rng.next_in(1, 40);
    Block a{}, b{};
    a[pos] = static_cast<std::int16_t>(level);
    b[pos] = static_cast<std::int16_t>(-level);
    dequantize_non_intra(a, q);
    dequantize_non_intra(b, q);
    EXPECT_EQ(a[pos], -b[pos]);
  }
}

TEST(Properties, ScanInverseIsConsistent) {
  // Writing levels through a scan and reading them back through the same
  // scan recovers the sequence, for both scans.
  Rng rng(26);
  for (const bool alt : {false, true}) {
    const auto& scan = scan_order(alt);
    std::array<std::int16_t, 64> seq;
    for (auto& v : seq) v = static_cast<std::int16_t>(rng.next_in(-99, 99));
    Block raster{};
    for (int i = 0; i < 64; ++i) raster[scan[i]] = seq[i];
    for (int i = 0; i < 64; ++i) EXPECT_EQ(raster[scan[i]], seq[i]);
  }
}

// --- whole-codec sweep -------------------------------------------------------

struct SweepParam {
  int width, height, gop;
};

class CodecSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(CodecSweep, EncodesDecodesWithSaneQuality) {
  const auto p = GetParam();
  streamgen::StreamSpec spec;
  spec.width = p.width;
  spec.height = p.height;
  spec.gop_size = p.gop;
  spec.pictures = 2 * p.gop;
  spec.bit_rate = 2'000'000;
  const auto stream = streamgen::generate_stream(spec);
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.frames.size(), static_cast<std::size_t>(spec.pictures));
  streamgen::SceneConfig sc;
  sc.width = p.width;
  sc.height = p.height;
  const streamgen::SceneGenerator scene(sc);
  for (int i = 0; i < spec.pictures; i += p.gop / 2 + 1) {
    const auto src = scene.render(i);
    EXPECT_GT(psnr_y(*src, *out.frames[static_cast<std::size_t>(i)]), 24.0)
        << p.width << "x" << p.height << " gop " << p.gop << " pic " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CodecSweep,
    ::testing::Values(SweepParam{64, 48, 4}, SweepParam{64, 48, 13},
                      SweepParam{90, 60, 4}, SweepParam{176, 120, 7},
                      SweepParam{176, 120, 16}, SweepParam{112, 80, 31}));

}  // namespace
}  // namespace pmp2::mpeg2
