// Cache-simulator tests: hit/miss mechanics, LRU, miss classification
// (cold/capacity/conflict, true/false sharing), and the decoder-trace
// properties the paper's §5.3 relies on.
#include <gtest/gtest.h>

#include "simcache/cache.h"
#include "simcache/trace_gen.h"
#include "streamgen/stream_factory.h"

namespace pmp2::simcache {
namespace {

CacheConfig small_cache(int line = 64, int assoc = 1,
                        std::int64_t size = 4096) {
  CacheConfig c;
  c.size_bytes = size;
  c.line_bytes = line;
  c.associativity = assoc;
  return c;
}

TEST(Cache, FirstAccessIsColdMiss) {
  Cache c(small_cache());
  EXPECT_EQ(c.access(0x1000, 8, false), 1);
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().read_cold, 1u);
  EXPECT_EQ(c.access(0x1000, 8, false), 0);  // now hits
  EXPECT_EQ(c.stats().read_misses, 1u);
  EXPECT_EQ(c.stats().reads, 2u);
}

TEST(Cache, AccessSpanningTwoLines) {
  Cache c(small_cache(64));
  EXPECT_EQ(c.access(0x103C, 8, false), 2);  // crosses the 0x1040 boundary
  EXPECT_EQ(c.access(0x103C, 8, false), 0);
}

TEST(Cache, DirectMappedConflict) {
  // Two lines mapping to the same set of a direct-mapped cache evict each
  // other: second round of accesses are conflict misses (they fit in the
  // fully associative shadow).
  const auto cfg = small_cache(64, 1, 4096);  // 64 sets
  Cache c(cfg);
  const std::uint64_t a = 0x0000;
  const std::uint64_t b = a + 4096;  // same set, different tag
  c.access(a, 4, false);
  c.access(b, 4, false);
  c.access(a, 4, false);
  c.access(b, 4, false);
  EXPECT_EQ(c.stats().read_misses, 4u);
  EXPECT_EQ(c.stats().read_cold, 2u);
  EXPECT_EQ(c.stats().read_conflict, 2u);
  EXPECT_EQ(c.stats().read_capacity, 0u);
}

TEST(Cache, TwoWaySetFixesThatConflict) {
  Cache c(small_cache(64, 2, 4096));
  const std::uint64_t a = 0x0000;
  const std::uint64_t b = a + 4096;
  c.access(a, 4, false);
  c.access(b, 4, false);
  c.access(a, 4, false);
  c.access(b, 4, false);
  EXPECT_EQ(c.stats().read_misses, 2u);  // only the cold pair
}

TEST(Cache, CapacityMissesWhenWorkingSetExceedsCache) {
  // Fully associative 4 KB cache, 64 lines; stream 128 distinct lines
  // twice: second pass is all capacity misses.
  Cache c(small_cache(64, 0, 4096));
  for (int pass = 0; pass < 2; ++pass) {
    for (int i = 0; i < 128; ++i) {
      c.access(static_cast<std::uint64_t>(i) * 64, 4, false);
    }
  }
  EXPECT_EQ(c.stats().read_cold, 128u);
  EXPECT_EQ(c.stats().read_capacity, 128u);
  EXPECT_EQ(c.stats().read_conflict, 0u);
}

TEST(Cache, LruEvictionOrder) {
  // 2-line fully associative cache: A B A C -> C evicts B, not A.
  Cache c(small_cache(64, 0, 128));
  c.access(0x000, 4, false);  // A cold
  c.access(0x040, 4, false);  // B cold
  c.access(0x000, 4, false);  // A hit
  c.access(0x080, 4, false);  // C cold, evicts B (LRU)
  c.access(0x000, 4, false);  // A must still hit
  EXPECT_EQ(c.stats().read_misses, 3u);
}

TEST(MultiCache, WriteInvalidatesOtherCaches) {
  MultiCacheSim sim(2, small_cache());
  sim.on_ref({0x1000, 8, 0, false});  // P0 reads
  sim.on_ref({0x1000, 8, 1, false});  // P1 reads
  sim.on_ref({0x1000, 8, 1, true});   // P1 writes -> invalidates P0
  sim.on_ref({0x1000, 8, 0, false});  // P0 re-reads: coherence miss
  EXPECT_EQ(sim.stats(0).read_misses, 2u);
  EXPECT_EQ(sim.stats(0).true_sharing, 1u);  // same bytes written
  EXPECT_EQ(sim.stats(0).false_sharing, 0u);
}

TEST(MultiCache, FalseSharingDetected) {
  MultiCacheSim sim(2, small_cache(64));
  sim.on_ref({0x1000, 8, 0, false});  // P0 reads bytes 0..7
  sim.on_ref({0x1020, 8, 1, true});   // P1 writes bytes 32..39 (same line)
  sim.on_ref({0x1000, 8, 0, false});  // P0 re-reads bytes 0..7: false share
  EXPECT_EQ(sim.stats(0).false_sharing, 1u);
  EXPECT_EQ(sim.stats(0).true_sharing, 0u);
}

TEST(MultiCache, NoInvalidationOnOwnWrite) {
  MultiCacheSim sim(2, small_cache());
  sim.on_ref({0x2000, 8, 0, false});
  sim.on_ref({0x2000, 8, 0, true});
  sim.on_ref({0x2000, 8, 0, false});
  EXPECT_EQ(sim.stats(0).read_misses, 1u);
}

// --- Decoder traces ---------------------------------------------------------

const std::vector<std::uint8_t>& tiny_stream() {
  static const std::vector<std::uint8_t> s = [] {
    streamgen::StreamSpec spec;
    spec.width = 176;
    spec.height = 120;
    spec.gop_size = 13;
    spec.pictures = 13;
    spec.bit_rate = 1'500'000;
    return streamgen::generate_stream(spec);
  }();
  return s;
}

TEST(TraceGen, ProducesReferences) {
  TraceRecorder rec;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 1, rec));
  EXPECT_GT(rec.refs().size(), 100'000u);
  for (const auto& r : rec.refs()) EXPECT_EQ(r.proc, 0u);
}

TEST(TraceGen, DynamicAssignmentCoversAllProcs) {
  TraceRecorder rec;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 4, rec));
  bool seen[4] = {};
  for (const auto& r : rec.refs()) {
    ASSERT_LT(r.proc, 4u);
    seen[r.proc] = true;
  }
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(TraceGen, RoundRobinAssignmentIsPeriodic) {
  TraceRecorder rec;
  TraceOptions opt;
  opt.procs = 4;
  opt.assignment = SliceAssignment::kRoundRobin;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), rec, opt));
  bool seen[4] = {};
  for (const auto& r : rec.refs()) seen[r.proc] = true;
  for (const bool s : seen) EXPECT_TRUE(s);
}

TEST(TraceGen, PooledBuffersReuseAddresses) {
  // Pooled: few distinct frame windows; fresh: one window per picture.
  auto distinct_windows = [](const TraceRecorder& rec) {
    std::set<std::uint64_t> windows;
    for (const auto& r : rec.refs()) {
      if (r.addr >= mpeg2::trace_layout::kFrameBase) {
        windows.insert((r.addr - mpeg2::trace_layout::kFrameBase) /
                       mpeg2::trace_layout::kFrameWindow);
      }
    }
    return windows.size();
  };
  TraceRecorder pooled, fresh;
  TraceOptions opt;
  opt.procs = 1;
  opt.pooled_buffers = true;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), pooled, opt));
  opt.pooled_buffers = false;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), fresh, opt));
  EXPECT_LE(distinct_windows(pooled), 6u);
  EXPECT_EQ(distinct_windows(fresh), 13u);  // one per picture
}

TEST(TraceGen, PooledSliceTraceShowsCoherenceMisses) {
  // The slice decoder's buffer reuse is what makes sharing observable.
  TraceOptions opt;
  opt.procs = 4;
  opt.pooled_buffers = true;
  CacheConfig cfg;
  cfg.size_bytes = 4 << 20;
  cfg.line_bytes = 64;
  cfg.associativity = 0;
  MultiCacheSim sim(4, cfg);
  simcache::TraceTee tee;
  tee.add(&sim);
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), tee, opt));
  const auto total = sim.total_stats();
  EXPECT_GT(total.true_sharing + total.false_sharing, 0u);
}

TEST(TraceGen, Deterministic) {
  TraceRecorder a, b;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 2, a));
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 2, b));
  ASSERT_EQ(a.refs().size(), b.refs().size());
  for (std::size_t i = 0; i < a.refs().size(); i += 997) {
    EXPECT_EQ(a.refs()[i].addr, b.refs()[i].addr);
    EXPECT_EQ(a.refs()[i].proc, b.refs()[i].proc);
    EXPECT_EQ(a.refs()[i].write, b.refs()[i].write);
  }
}

TEST(TraceGen, SpatialLocalityMissRateHalvesWithLineSize) {
  // The paper's Fig. 13: with a large cache, read miss rate halves as the
  // line size doubles.
  TraceRecorder rec;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 1, rec));
  double prev_rate = 1.0;
  for (const int line : {16, 32, 64, 128}) {
    CacheConfig cfg;
    cfg.size_bytes = 1 << 20;
    cfg.line_bytes = line;
    cfg.associativity = 0;  // fully associative, as in the paper
    MultiCacheSim sim(1, cfg);
    rec.replay(sim);
    const double rate = sim.stats(0).read_miss_rate();
    if (line > 16) {
      EXPECT_LT(rate, prev_rate * 0.65) << "line " << line;
      EXPECT_GT(rate, prev_rate * 0.30) << "line " << line;
    }
    prev_rate = rate;
  }
}

TEST(TraceGen, ColdDominatesAtLargeCache) {
  // Fig. 15: with a 1 MB cache the miss rate is dominated by cold misses.
  TraceRecorder rec;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 1, rec));
  CacheConfig cfg;
  cfg.size_bytes = 1 << 20;
  cfg.line_bytes = 64;
  cfg.associativity = 2;
  MultiCacheSim sim(1, cfg);
  rec.replay(sim);
  const auto& s = sim.stats(0);
  EXPECT_LT(s.read_capacity, s.read_cold);
}

TEST(TraceGen, WorkingSetFitsInSmallCache) {
  // Fig. 14: the working set is macroblock-reconstruction-sized; going
  // from 64 KB to 1 MB barely improves the miss rate.
  TraceRecorder rec;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 1, rec));
  auto rate_at = [&](std::int64_t size) {
    CacheConfig cfg;
    cfg.size_bytes = size;
    cfg.line_bytes = 64;
    cfg.associativity = 2;
    MultiCacheSim sim(1, cfg);
    rec.replay(sim);
    return sim.stats(0).read_miss_rate();
  };
  const double rate_4k = rate_at(4 << 10);
  const double rate_64k = rate_at(64 << 10);
  const double rate_1m = rate_at(1 << 20);
  EXPECT_GT(rate_4k, rate_64k);
  // Beyond the working set, larger caches help little (<25% relative).
  EXPECT_LT((rate_64k - rate_1m) / rate_64k, 0.25);
}

TEST(TraceGen, SharedDecodeHasLowCommunication) {
  // §5.3: even at 8 processors, sharing misses are small relative to cold.
  TraceRecorder rec;
  ASSERT_TRUE(generate_decode_trace(tiny_stream(), 8, rec));
  CacheConfig cfg;
  cfg.size_bytes = 1 << 20;
  cfg.line_bytes = 64;
  cfg.associativity = 2;
  MultiCacheSim sim(8, cfg);
  rec.replay(sim);
  const MissStats total = sim.total_stats();
  EXPECT_LT(total.true_sharing + total.false_sharing, total.cold);
}

}  // namespace
}  // namespace pmp2::simcache
