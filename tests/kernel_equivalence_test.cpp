// Bit-exactness tests for the optimized hot-path kernels against their
// straightforward reference implementations:
//
//  * idct_int (sparsity-aware) vs idct_int_dense across every sparsity
//    shape the slice decoder can produce (DC-only, single-row, random
//    masks, dense), plus IEEE-1180-style accuracy vs idct_reference.
//  * form_prediction (SWAR kernels) vs form_prediction_reference over all
//    four half-pel modes x copy/average x unaligned strides and widths.
//  * BitReader (cached 64-bit window) vs a bit-at-a-time oracle under
//    randomized op sequences including seeks, byte_align and end-of-buffer
//    behavior.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "bitstream/bit_reader.h"
#include "mpeg2/dct.h"
#include "mpeg2/motion.h"
#include "mpeg2/types.h"
#include "util/rng.h"

namespace pmp2::mpeg2 {
namespace {

// ---------------------------------------------------------------------------
// IDCT sparsity equivalence
// ---------------------------------------------------------------------------

/// Fills `b` with random dequantized-range coefficients on the rows of
/// `row_mask` (each selected position nonzero with probability ~1/2) and
/// returns the exact sparsity of what was written.
BlockSparsity fill_random_rows(Rng& rng, Block& b, unsigned row_mask) {
  b.fill(0);
  BlockSparsity s = BlockSparsity::none();
  for (int row = 0; row < 8; ++row) {
    if ((row_mask & (1u << row)) == 0) continue;
    for (int col = 0; col < 8; ++col) {
      if (rng.next_below(2) == 0) continue;
      const int pos = row * 8 + col;
      b[pos] = static_cast<std::int16_t>(rng.next_in(-2048, 2047));
      if (b[pos] != 0) s.mark(pos);
    }
  }
  return s;
}

void expect_blocks_equal(const Block& got, const Block& want,
                         const char* what) {
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " differs at pel " << i;
  }
}

TEST(IdctEquivalence, DcOnlyAllValues) {
  for (int dc = -2048; dc <= 2047; ++dc) {
    Block want{};
    want[0] = static_cast<std::int16_t>(dc);
    Block self = want, tracked = want;
    idct_int_dense(want);
    idct_int(self);  // self-derived sparsity
    idct_int(tracked, BlockSparsity{1, 1, 0, true});
    expect_blocks_equal(self, want, "self-derived DC-only");
    expect_blocks_equal(tracked, want, "tracked DC-only");
    // The collapsed path must produce the analytic value too.
    ASSERT_EQ(want[0], (dc + 4) >> 3) << dc;
  }
}

TEST(IdctEquivalence, SingleRowBlocks) {
  Rng rng(42);
  for (int row = 0; row < 8; ++row) {
    for (int trial = 0; trial < 200; ++trial) {
      Block b;
      const BlockSparsity s = fill_random_rows(rng, b, 1u << row);
      Block want = b, self = b, tracked = b;
      idct_int_dense(want);
      idct_int(self);
      idct_int(tracked, s);
      expect_blocks_equal(self, want, "self-derived single-row");
      expect_blocks_equal(tracked, want, "tracked single-row");
    }
  }
}

TEST(IdctEquivalence, RandomSparsityMasks) {
  Rng rng(7);
  for (int trial = 0; trial < 5000; ++trial) {
    Block b;
    const BlockSparsity s =
        fill_random_rows(rng, b, rng.next_below(256));
    Block want = b, self = b, tracked = b;
    idct_int_dense(want);
    idct_int(self);
    idct_int(tracked, s);
    expect_blocks_equal(self, want, "self-derived random");
    expect_blocks_equal(tracked, want, "tracked random");
  }
}

TEST(IdctEquivalence, RandomCellMasks) {
  // Random row x column occupancy grids: exercises every pass-1 row tier
  // crossed with every pass-2 column tier (including the single-column
  // broadcast), which the row-oriented generator above rarely hits.
  Rng rng(29);
  for (int trial = 0; trial < 4000; ++trial) {
    const unsigned row_mask = rng.next_below(256);
    const unsigned col_mask = rng.next_below(256);
    Block b{};
    BlockSparsity s = BlockSparsity::none();
    for (int row = 0; row < 8; ++row) {
      if ((row_mask & (1u << row)) == 0) continue;
      for (int col = 0; col < 8; ++col) {
        if ((col_mask & (1u << col)) == 0) continue;
        if (rng.next_below(2) == 0) continue;
        const int pos = row * 8 + col;
        b[pos] = static_cast<std::int16_t>(rng.next_in(-2048, 2047));
        if (b[pos] != 0) s.mark(pos);
      }
    }
    Block want = b, self = b, tracked = b;
    idct_int_dense(want);
    idct_int(self);
    idct_int(tracked, s);
    expect_blocks_equal(self, want, "self-derived cell-mask");
    expect_blocks_equal(tracked, want, "tracked cell-mask");
  }
}

TEST(IdctEquivalence, ConservativeMaskSupersetIsExact) {
  // The slice decoder's mask can strictly over-approximate the nonzero set
  // (dequantization may zero small levels); any superset mask must still
  // give bit-identical results, the dense mask in particular.
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    Block b;
    const BlockSparsity exact = fill_random_rows(rng, b, rng.next_below(256));
    BlockSparsity loose = exact;
    loose.row_mask |= static_cast<std::uint8_t>(rng.next_below(256));
    loose.col_mask |= static_cast<std::uint8_t>(rng.next_below(256));
    loose.ac_col_mask |= static_cast<std::uint8_t>(rng.next_below(256));
    loose.col_mask |= loose.ac_col_mask;
    if (loose.row_mask != exact.row_mask ||
        loose.col_mask != exact.col_mask ||
        loose.ac_col_mask != exact.ac_col_mask) {
      loose.dc_only = false;
    }
    Block want = b, got = b, dense_mask = b;
    idct_int_dense(want);
    idct_int(got, loose);
    idct_int(dense_mask, BlockSparsity::dense());
    expect_blocks_equal(got, want, "superset mask");
    expect_blocks_equal(dense_mask, want, "dense mask");
  }
}

TEST(IdctEquivalence, DenseBlocks) {
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    Block b;
    for (auto& v : b) v = static_cast<std::int16_t>(rng.next_in(-2048, 2047));
    Block want = b, self = b;
    idct_int_dense(want);
    idct_int(self);
    expect_blocks_equal(self, want, "dense");
  }
}

/// IEEE-1180-style accuracy of the sparsity-aware transform itself, over
/// the same sparsity shapes (DC-only, single-row, random, dense): compare
/// against the double-precision defining equation.
TEST(IdctEquivalence, AccuracyVsReferenceAcrossSparsity) {
  Rng rng(1180);
  double max_err = 0.0;
  double sum_sq = 0.0;
  long count = 0;
  const unsigned masks[] = {0x01u, 0x02u, 0x80u, 0x0Fu, 0xFFu};
  for (int trial = 0; trial < 400; ++trial) {
    for (const unsigned mask : masks) {
      Block b;
      const BlockSparsity s = fill_random_rows(rng, b, mask);
      std::array<double, 64> in{}, want{};
      for (int i = 0; i < 64; ++i) in[i] = b[i];
      idct_reference(in, want);
      idct_int(b, s);
      for (int i = 0; i < 64; ++i) {
        const double err = std::abs(b[i] - std::round(want[i]));
        max_err = std::max(max_err, err);
        sum_sq += err * err;
        ++count;
      }
    }
  }
  EXPECT_LE(max_err, 1.0);
  EXPECT_LE(sum_sq / static_cast<double>(count), 0.06);
}

// ---------------------------------------------------------------------------
// Motion-compensation kernel equivalence
// ---------------------------------------------------------------------------

TEST(FormPredictionEquivalence, ExhaustiveModesSizesStrides) {
  Rng rng(99);
  // Sizes: every shape the decoders pass, plus ragged widths that exercise
  // the SWAR kernels' scalar tails.
  const std::pair<int, int> sizes[] = {{16, 16}, {8, 8},  {16, 8}, {8, 4},
                                       {12, 6},  {7, 5},  {9, 3},  {17, 2},
                                       {1, 1},   {23, 7}};
  // Unaligned/odd strides to catch any alignment assumption in the 8-byte
  // loads and stores.
  const int ref_strides[] = {64, 37, 41};
  const int dst_strides[] = {64, 43, 29};

  for (const auto [w, h] : sizes) {
    for (const int ref_stride : ref_strides) {
      for (const int dst_stride : dst_strides) {
        if (ref_stride < w + 1 || dst_stride < w) continue;
        // Reference plane with interior origin so negative vector halves
        // stay in bounds; +1 row/column margin for half-pel taps.
        const int x0 = 4, y0 = 4;
        const std::size_t ref_size =
            static_cast<std::size_t>((y0 + h + 2) * ref_stride + 1);
        std::vector<std::uint8_t> ref(ref_size);
        for (auto& p : ref) p = static_cast<std::uint8_t>(rng.next_below(256));
        for (int vx = -4; vx <= 4; ++vx) {      // both parities, both signs
          for (int vy = -4; vy <= 4; ++vy) {
            for (const McMode mode : {McMode::kCopy, McMode::kAverage}) {
              std::vector<std::uint8_t> dst_a(
                  static_cast<std::size_t>(h * dst_stride));
              for (auto& p : dst_a) {
                p = static_cast<std::uint8_t>(rng.next_below(256));
              }
              std::vector<std::uint8_t> dst_b = dst_a;
              form_prediction(ref.data(), ref_stride, dst_a.data(),
                              dst_stride, x0, y0, w, h, vx, vy, mode);
              form_prediction_reference(ref.data(), ref_stride, dst_b.data(),
                                        dst_stride, x0, y0, w, h, vx, vy,
                                        mode);
              ASSERT_EQ(std::memcmp(dst_a.data(), dst_b.data(), dst_a.size()),
                        0)
                  << "w=" << w << " h=" << h << " vx=" << vx << " vy=" << vy
                  << " mode=" << (mode == McMode::kCopy ? "copy" : "avg")
                  << " rs=" << ref_stride << " ds=" << dst_stride;
            }
          }
        }
      }
    }
  }
}

TEST(FormPredictionEquivalence, SaturatedInputs) {
  // All-255 and all-0 planes hit the SWAR carry edge cases (the borrow in
  // (a | b) - (((a ^ b) >> 1) & 0x7f...) and the 16-bit lane headroom).
  for (const int fill : {0, 255}) {
    std::vector<std::uint8_t> ref(32 * 32,
                                  static_cast<std::uint8_t>(fill));
    for (int vx = 0; vx <= 1; ++vx) {
      for (int vy = 0; vy <= 1; ++vy) {
        for (const McMode mode : {McMode::kCopy, McMode::kAverage}) {
          std::vector<std::uint8_t> a(16 * 32,
                                      static_cast<std::uint8_t>(255 - fill));
          std::vector<std::uint8_t> b = a;
          form_prediction(ref.data(), 32, a.data(), 32, 2, 2, 16, 16, vx, vy,
                          mode);
          form_prediction_reference(ref.data(), 32, b.data(), 32, 2, 2, 16,
                                    16, vx, vy, mode);
          ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
              << fill << " " << vx << vy;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BitReader vs bit-at-a-time oracle
// ---------------------------------------------------------------------------

/// Trivially correct MSB-first reader: one bit at a time, straight from the
/// byte array, zero-filling past the end. Mirrors BitReader's contract.
class BitOracle {
 public:
  explicit BitOracle(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t peek(int n) const {
    std::uint32_t v = 0;
    for (int i = 0; i < n; ++i) {
      v = (v << 1) | bit_at(pos_ + static_cast<std::uint64_t>(i));
    }
    return v;
  }
  void skip(int n) {
    pos_ += static_cast<std::uint64_t>(n);
    if (pos_ > static_cast<std::uint64_t>(data_.size()) * 8) overrun_ = true;
  }
  std::uint32_t get(int n) {
    const std::uint32_t v = peek(n);
    skip(n);
    return v;
  }
  void byte_align() {
    if ((pos_ & 7) != 0) pos_ = (pos_ & ~std::uint64_t{7}) + 8;
  }
  void seek_bits(std::uint64_t p) { pos_ = p; }
  std::uint64_t pos() const { return pos_; }
  bool overrun() const { return overrun_; }

 private:
  std::uint32_t bit_at(std::uint64_t p) const {
    const std::uint64_t byte = p >> 3;
    if (byte >= data_.size()) return 0;
    return (data_[byte] >> (7 - (p & 7))) & 1u;
  }
  std::span<const std::uint8_t> data_;
  std::uint64_t pos_ = 0;
  bool overrun_ = false;
};

TEST(BitReaderEquivalence, FuzzAgainstOracle) {
  Rng rng(0xB17);
  for (const std::size_t size : {0u, 1u, 3u, 7u, 8u, 9u, 17u, 64u, 1000u}) {
    std::vector<std::uint8_t> buf(size);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
    BitReader br({buf.data(), buf.size()});
    BitOracle oracle({buf.data(), buf.size()});
    for (int op = 0; op < 4000; ++op) {
      switch (rng.next_below(6)) {
        case 0: {  // peek, all widths including 0 and 32
          const int n = static_cast<int>(rng.next_below(33));
          ASSERT_EQ(br.peek(n), oracle.peek(n))
              << "peek(" << n << ") at bit " << oracle.pos() << " size "
              << size;
          break;
        }
        case 1: {  // get
          const int n = static_cast<int>(rng.next_below(33));
          ASSERT_EQ(br.get(n), oracle.get(n)) << "get(" << n << ")";
          break;
        }
        case 2: {  // skip
          const int n = static_cast<int>(rng.next_below(33));
          br.skip(n);
          oracle.skip(n);
          break;
        }
        case 3:
          br.byte_align();
          oracle.byte_align();
          break;
        case 4: {  // random absolute seek, incl. a bit past the end
          const std::uint64_t limit = size * 8 + 16;
          const std::uint64_t p = rng.next_below(
              static_cast<std::uint32_t>(limit + 1));
          br.seek_bits(p);
          oracle.seek_bits(p);
          break;
        }
        case 5: {  // backward-compatible byte seek
          const std::uint64_t b =
              rng.next_below(static_cast<std::uint32_t>(size + 2));
          br.seek_bytes(b);
          oracle.seek_bits(b * 8);
          break;
        }
      }
      ASSERT_EQ(br.bit_position(), oracle.pos());
      ASSERT_EQ(br.overrun(), oracle.overrun()) << "at bit " << oracle.pos();
    }
  }
}

TEST(BitReaderEquivalence, TailStraddleAndZeroFill) {
  const std::uint8_t data[] = {0xAB, 0xCD, 0xEF};
  BitReader br({data, 3});
  // Peek straddling the final byte: bits 16..39 are 0xEF then zeros.
  br.seek_bits(16);
  EXPECT_EQ(br.peek(8), 0xEFu);
  EXPECT_EQ(br.peek(12), 0xEF0u);
  EXPECT_EQ(br.peek(32), 0xEF000000u);
  EXPECT_FALSE(br.overrun());  // peeking past the end is not an error
  // Entirely past the end: zero bits, still no overrun until consumed.
  br.seek_bits(24);
  EXPECT_EQ(br.peek(32), 0u);
  EXPECT_FALSE(br.overrun());
  br.skip(1);
  EXPECT_TRUE(br.overrun());
}

TEST(BitReaderEquivalence, WindowSurvivesBackwardSeek) {
  // Regression guard for the cached window: a backward seek must not serve
  // stale bits.
  std::vector<std::uint8_t> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 37 + 5);
  }
  BitReader br({buf.data(), buf.size()});
  const std::uint32_t first = br.peek(32);
  br.seek_bytes(32);
  (void)br.get(32);  // forces a refill at byte 32
  br.seek_bytes(0);
  EXPECT_EQ(br.peek(32), first);
}

}  // namespace
}  // namespace pmp2::mpeg2
