// Bit-exactness tests for the optimized hot-path kernels against their
// straightforward reference implementations:
//
//  * idct_int (sparsity-aware) vs idct_int_dense across every sparsity
//    shape the slice decoder can produce (DC-only, single-row, random
//    masks, dense), plus IEEE-1180-style accuracy vs idct_reference.
//  * form_prediction (SWAR kernels) vs form_prediction_reference over all
//    four half-pel modes x copy/average x unaligned strides and widths.
//  * BitReader (cached 64-bit window) vs a bit-at-a-time oracle under
//    randomized op sequences including seeks, byte_align and end-of-buffer
//    behavior.
//  * Every compiled-and-host-supported kernel backend (scalar/sse2/avx2)
//    vs straightforward inline oracles, per kernel family, including
//    half-pel rounding saturation edges, §7.4.4 mismatch-coefficient
//    blocks (a lone coefficient at each raster position), and the
//    crossover-free vector IDCT entry the tuned dispatch may never take.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "bitstream/bit_reader.h"
#include "mpeg2/dct.h"
#include "mpeg2/kernels/backends.h"
#include "mpeg2/kernels/kernels.h"
#include "mpeg2/motion.h"
#include "mpeg2/types.h"
#include "util/rng.h"

namespace pmp2::mpeg2 {
namespace {

// ---------------------------------------------------------------------------
// IDCT sparsity equivalence
// ---------------------------------------------------------------------------

/// Fills `b` with random dequantized-range coefficients on the rows of
/// `row_mask` (each selected position nonzero with probability ~1/2) and
/// returns the exact sparsity of what was written.
BlockSparsity fill_random_rows(Rng& rng, Block& b, unsigned row_mask) {
  b.fill(0);
  BlockSparsity s = BlockSparsity::none();
  for (int row = 0; row < 8; ++row) {
    if ((row_mask & (1u << row)) == 0) continue;
    for (int col = 0; col < 8; ++col) {
      if (rng.next_below(2) == 0) continue;
      const int pos = row * 8 + col;
      b[pos] = static_cast<std::int16_t>(rng.next_in(-2048, 2047));
      if (b[pos] != 0) s.mark(pos);
    }
  }
  return s;
}

void expect_blocks_equal(const Block& got, const Block& want,
                         const char* what) {
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(got[i], want[i]) << what << " differs at pel " << i;
  }
}

TEST(IdctEquivalence, DcOnlyAllValues) {
  for (int dc = -2048; dc <= 2047; ++dc) {
    Block want{};
    want[0] = static_cast<std::int16_t>(dc);
    Block self = want, tracked = want;
    idct_int_dense(want);
    idct_int(self);  // self-derived sparsity
    idct_int(tracked, BlockSparsity{1, 1, 0, true});
    expect_blocks_equal(self, want, "self-derived DC-only");
    expect_blocks_equal(tracked, want, "tracked DC-only");
    // The collapsed path must produce the analytic value too.
    ASSERT_EQ(want[0], (dc + 4) >> 3) << dc;
  }
}

TEST(IdctEquivalence, SingleRowBlocks) {
  Rng rng(42);
  for (int row = 0; row < 8; ++row) {
    for (int trial = 0; trial < 200; ++trial) {
      Block b;
      const BlockSparsity s = fill_random_rows(rng, b, 1u << row);
      Block want = b, self = b, tracked = b;
      idct_int_dense(want);
      idct_int(self);
      idct_int(tracked, s);
      expect_blocks_equal(self, want, "self-derived single-row");
      expect_blocks_equal(tracked, want, "tracked single-row");
    }
  }
}

TEST(IdctEquivalence, RandomSparsityMasks) {
  Rng rng(7);
  for (int trial = 0; trial < 5000; ++trial) {
    Block b;
    const BlockSparsity s =
        fill_random_rows(rng, b, rng.next_below(256));
    Block want = b, self = b, tracked = b;
    idct_int_dense(want);
    idct_int(self);
    idct_int(tracked, s);
    expect_blocks_equal(self, want, "self-derived random");
    expect_blocks_equal(tracked, want, "tracked random");
  }
}

TEST(IdctEquivalence, RandomCellMasks) {
  // Random row x column occupancy grids: exercises every pass-1 row tier
  // crossed with every pass-2 column tier (including the single-column
  // broadcast), which the row-oriented generator above rarely hits.
  Rng rng(29);
  for (int trial = 0; trial < 4000; ++trial) {
    const unsigned row_mask = rng.next_below(256);
    const unsigned col_mask = rng.next_below(256);
    Block b{};
    BlockSparsity s = BlockSparsity::none();
    for (int row = 0; row < 8; ++row) {
      if ((row_mask & (1u << row)) == 0) continue;
      for (int col = 0; col < 8; ++col) {
        if ((col_mask & (1u << col)) == 0) continue;
        if (rng.next_below(2) == 0) continue;
        const int pos = row * 8 + col;
        b[pos] = static_cast<std::int16_t>(rng.next_in(-2048, 2047));
        if (b[pos] != 0) s.mark(pos);
      }
    }
    Block want = b, self = b, tracked = b;
    idct_int_dense(want);
    idct_int(self);
    idct_int(tracked, s);
    expect_blocks_equal(self, want, "self-derived cell-mask");
    expect_blocks_equal(tracked, want, "tracked cell-mask");
  }
}

TEST(IdctEquivalence, ConservativeMaskSupersetIsExact) {
  // The slice decoder's mask can strictly over-approximate the nonzero set
  // (dequantization may zero small levels); any superset mask must still
  // give bit-identical results, the dense mask in particular.
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    Block b;
    const BlockSparsity exact = fill_random_rows(rng, b, rng.next_below(256));
    BlockSparsity loose = exact;
    loose.row_mask |= static_cast<std::uint8_t>(rng.next_below(256));
    loose.col_mask |= static_cast<std::uint8_t>(rng.next_below(256));
    loose.ac_col_mask |= static_cast<std::uint8_t>(rng.next_below(256));
    loose.col_mask |= loose.ac_col_mask;
    if (loose.row_mask != exact.row_mask ||
        loose.col_mask != exact.col_mask ||
        loose.ac_col_mask != exact.ac_col_mask) {
      loose.dc_only = false;
    }
    Block want = b, got = b, dense_mask = b;
    idct_int_dense(want);
    idct_int(got, loose);
    idct_int(dense_mask, BlockSparsity::dense());
    expect_blocks_equal(got, want, "superset mask");
    expect_blocks_equal(dense_mask, want, "dense mask");
  }
}

TEST(IdctEquivalence, DenseBlocks) {
  Rng rng(3);
  for (int trial = 0; trial < 2000; ++trial) {
    Block b;
    for (auto& v : b) v = static_cast<std::int16_t>(rng.next_in(-2048, 2047));
    Block want = b, self = b;
    idct_int_dense(want);
    idct_int(self);
    expect_blocks_equal(self, want, "dense");
  }
}

/// IEEE-1180-style accuracy of the sparsity-aware transform itself, over
/// the same sparsity shapes (DC-only, single-row, random, dense): compare
/// against the double-precision defining equation.
TEST(IdctEquivalence, AccuracyVsReferenceAcrossSparsity) {
  Rng rng(1180);
  double max_err = 0.0;
  double sum_sq = 0.0;
  long count = 0;
  const unsigned masks[] = {0x01u, 0x02u, 0x80u, 0x0Fu, 0xFFu};
  for (int trial = 0; trial < 400; ++trial) {
    for (const unsigned mask : masks) {
      Block b;
      const BlockSparsity s = fill_random_rows(rng, b, mask);
      std::array<double, 64> in{}, want{};
      for (int i = 0; i < 64; ++i) in[i] = b[i];
      idct_reference(in, want);
      idct_int(b, s);
      for (int i = 0; i < 64; ++i) {
        const double err = std::abs(b[i] - std::round(want[i]));
        max_err = std::max(max_err, err);
        sum_sq += err * err;
        ++count;
      }
    }
  }
  EXPECT_LE(max_err, 1.0);
  EXPECT_LE(sum_sq / static_cast<double>(count), 0.06);
}

// ---------------------------------------------------------------------------
// Motion-compensation kernel equivalence
// ---------------------------------------------------------------------------

TEST(FormPredictionEquivalence, ExhaustiveModesSizesStrides) {
  Rng rng(99);
  // Sizes: every shape the decoders pass, plus ragged widths that exercise
  // the SWAR kernels' scalar tails.
  const std::pair<int, int> sizes[] = {{16, 16}, {8, 8},  {16, 8}, {8, 4},
                                       {12, 6},  {7, 5},  {9, 3},  {17, 2},
                                       {1, 1},   {23, 7}};
  // Unaligned/odd strides to catch any alignment assumption in the 8-byte
  // loads and stores.
  const int ref_strides[] = {64, 37, 41};
  const int dst_strides[] = {64, 43, 29};

  for (const auto& [w, h] : sizes) {
    for (const int ref_stride : ref_strides) {
      for (const int dst_stride : dst_strides) {
        if (ref_stride < w + 1 || dst_stride < w) continue;
        // Reference plane with interior origin so negative vector halves
        // stay in bounds; +1 row/column margin for half-pel taps.
        const int x0 = 4, y0 = 4;
        const std::size_t ref_size =
            static_cast<std::size_t>((y0 + h + 2) * ref_stride + 1);
        std::vector<std::uint8_t> ref(ref_size);
        for (auto& p : ref) p = static_cast<std::uint8_t>(rng.next_below(256));
        for (int vx = -4; vx <= 4; ++vx) {      // both parities, both signs
          for (int vy = -4; vy <= 4; ++vy) {
            for (const McMode mode : {McMode::kCopy, McMode::kAverage}) {
              std::vector<std::uint8_t> dst_a(
                  static_cast<std::size_t>(h * dst_stride));
              for (auto& p : dst_a) {
                p = static_cast<std::uint8_t>(rng.next_below(256));
              }
              std::vector<std::uint8_t> dst_b = dst_a;
              form_prediction(ref.data(), ref_stride, dst_a.data(),
                              dst_stride, x0, y0, w, h, vx, vy, mode);
              form_prediction_reference(ref.data(), ref_stride, dst_b.data(),
                                        dst_stride, x0, y0, w, h, vx, vy,
                                        mode);
              ASSERT_EQ(std::memcmp(dst_a.data(), dst_b.data(), dst_a.size()),
                        0)
                  << "w=" << w << " h=" << h << " vx=" << vx << " vy=" << vy
                  << " mode=" << (mode == McMode::kCopy ? "copy" : "avg")
                  << " rs=" << ref_stride << " ds=" << dst_stride;
            }
          }
        }
      }
    }
  }
}

TEST(FormPredictionEquivalence, SaturatedInputs) {
  // All-255 and all-0 planes hit the SWAR carry edge cases (the borrow in
  // (a | b) - (((a ^ b) >> 1) & 0x7f...) and the 16-bit lane headroom).
  for (const int fill : {0, 255}) {
    std::vector<std::uint8_t> ref(32 * 32,
                                  static_cast<std::uint8_t>(fill));
    for (int vx = 0; vx <= 1; ++vx) {
      for (int vy = 0; vy <= 1; ++vy) {
        for (const McMode mode : {McMode::kCopy, McMode::kAverage}) {
          std::vector<std::uint8_t> a(16 * 32,
                                      static_cast<std::uint8_t>(255 - fill));
          std::vector<std::uint8_t> b = a;
          form_prediction(ref.data(), 32, a.data(), 32, 2, 2, 16, 16, vx, vy,
                          mode);
          form_prediction_reference(ref.data(), 32, b.data(), 32, 2, 2, 16,
                                    16, vx, vy, mode);
          ASSERT_EQ(std::memcmp(a.data(), b.data(), a.size()), 0)
              << fill << " " << vx << vy;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// BitReader vs bit-at-a-time oracle
// ---------------------------------------------------------------------------

/// Trivially correct MSB-first reader: one bit at a time, straight from the
/// byte array, zero-filling past the end. Mirrors BitReader's contract.
class BitOracle {
 public:
  explicit BitOracle(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint32_t peek(int n) const {
    std::uint32_t v = 0;
    for (int i = 0; i < n; ++i) {
      v = (v << 1) | bit_at(pos_ + static_cast<std::uint64_t>(i));
    }
    return v;
  }
  void skip(int n) {
    pos_ += static_cast<std::uint64_t>(n);
    if (pos_ > static_cast<std::uint64_t>(data_.size()) * 8) overrun_ = true;
  }
  std::uint32_t get(int n) {
    const std::uint32_t v = peek(n);
    skip(n);
    return v;
  }
  void byte_align() {
    if ((pos_ & 7) != 0) pos_ = (pos_ & ~std::uint64_t{7}) + 8;
  }
  void seek_bits(std::uint64_t p) { pos_ = p; }
  std::uint64_t pos() const { return pos_; }
  bool overrun() const { return overrun_; }

 private:
  std::uint32_t bit_at(std::uint64_t p) const {
    const std::uint64_t byte = p >> 3;
    if (byte >= data_.size()) return 0;
    return (data_[byte] >> (7 - (p & 7))) & 1u;
  }
  std::span<const std::uint8_t> data_;
  std::uint64_t pos_ = 0;
  bool overrun_ = false;
};

TEST(BitReaderEquivalence, FuzzAgainstOracle) {
  Rng rng(0xB17);
  for (const std::size_t size : {0u, 1u, 3u, 7u, 8u, 9u, 17u, 64u, 1000u}) {
    std::vector<std::uint8_t> buf(size);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.next_below(256));
    BitReader br({buf.data(), buf.size()});
    BitOracle oracle({buf.data(), buf.size()});
    for (int op = 0; op < 4000; ++op) {
      switch (rng.next_below(6)) {
        case 0: {  // peek, all widths including 0 and 32
          const int n = static_cast<int>(rng.next_below(33));
          ASSERT_EQ(br.peek(n), oracle.peek(n))
              << "peek(" << n << ") at bit " << oracle.pos() << " size "
              << size;
          break;
        }
        case 1: {  // get
          const int n = static_cast<int>(rng.next_below(33));
          ASSERT_EQ(br.get(n), oracle.get(n)) << "get(" << n << ")";
          break;
        }
        case 2: {  // skip
          const int n = static_cast<int>(rng.next_below(33));
          br.skip(n);
          oracle.skip(n);
          break;
        }
        case 3:
          br.byte_align();
          oracle.byte_align();
          break;
        case 4: {  // random absolute seek, incl. a bit past the end
          const std::uint64_t limit = size * 8 + 16;
          const std::uint64_t p = rng.next_below(
              static_cast<std::uint32_t>(limit + 1));
          br.seek_bits(p);
          oracle.seek_bits(p);
          break;
        }
        case 5: {  // backward-compatible byte seek
          const std::uint64_t b =
              rng.next_below(static_cast<std::uint32_t>(size + 2));
          br.seek_bytes(b);
          oracle.seek_bits(b * 8);
          break;
        }
      }
      ASSERT_EQ(br.bit_position(), oracle.pos());
      ASSERT_EQ(br.overrun(), oracle.overrun()) << "at bit " << oracle.pos();
    }
  }
}

TEST(BitReaderEquivalence, TailStraddleAndZeroFill) {
  const std::uint8_t data[] = {0xAB, 0xCD, 0xEF};
  BitReader br({data, 3});
  // Peek straddling the final byte: bits 16..39 are 0xEF then zeros.
  br.seek_bits(16);
  EXPECT_EQ(br.peek(8), 0xEFu);
  EXPECT_EQ(br.peek(12), 0xEF0u);
  EXPECT_EQ(br.peek(32), 0xEF000000u);
  EXPECT_FALSE(br.overrun());  // peeking past the end is not an error
  // Entirely past the end: zero bits, still no overrun until consumed.
  br.seek_bits(24);
  EXPECT_EQ(br.peek(32), 0u);
  EXPECT_FALSE(br.overrun());
  br.skip(1);
  EXPECT_TRUE(br.overrun());
}

TEST(BitReaderEquivalence, WindowSurvivesBackwardSeek) {
  // Regression guard for the cached window: a backward seek must not serve
  // stale bits.
  std::vector<std::uint8_t> buf(64);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    buf[i] = static_cast<std::uint8_t>(i * 37 + 5);
  }
  BitReader br({buf.data(), buf.size()});
  const std::uint32_t first = br.peek(32);
  br.seek_bytes(32);
  (void)br.get(32);  // forces a refill at byte 32
  br.seek_bytes(0);
  EXPECT_EQ(br.peek(32), first);
}

// ---------------------------------------------------------------------------
// Kernel-backend equivalence: every available backend vs inline oracles
// ---------------------------------------------------------------------------

/// Non-scalar backends this host can actually run. The scalar table is the
/// oracle side of every comparison (seed PR 2 kernels, verbatim), so it is
/// not enumerated here.
std::vector<kernels::Backend> vector_backends() {
  std::vector<kernels::Backend> out;
  for (const kernels::Backend b : kernels::available_backends()) {
    if (b != kernels::Backend::kScalar) out.push_back(b);
  }
  return out;
}

/// One place to surface reduced coverage: when the host lacks AVX2 the
/// avx2 loops in the per-family tests below silently iterate over fewer
/// backends, so this test turns the gap into a visible skip note.
TEST(BackendEquivalence, Avx2HostCoverage) {
  if (!kernels::backend_available(kernels::Backend::kAvx2)) {
    GTEST_SKIP() << "AVX2 unavailable on this host (cpu: "
                 << kernels::cpu_features()
                 << "); avx2 backend rows are not exercised in this run";
  }
  SUCCEED();
}

TEST(BackendEquivalence, DispatchRoundTrips) {
  using kernels::Backend;
  // name -> enum -> name round-trips for every defined backend.
  for (int i = 0; i < kernels::kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    Backend parsed;
    ASSERT_TRUE(kernels::parse_backend(kernels::backend_name(b), parsed));
    EXPECT_EQ(parsed, b);
  }
  Backend junk;
  EXPECT_FALSE(kernels::parse_backend("neon", junk));
  EXPECT_FALSE(kernels::parse_backend("", junk));
  EXPECT_FALSE(kernels::parse_backend("SSE2", junk));

  // Scalar is always available and always listed first.
  const auto avail = kernels::available_backends();
  ASSERT_FALSE(avail.empty());
  EXPECT_EQ(avail.front(), Backend::kScalar);

  // set_backend round-trips through every available backend and the
  // active() table name matches; ScopedBackend restores the selection.
  const Backend before = kernels::active_backend();
  for (const Backend b : avail) {
    ASSERT_TRUE(kernels::set_backend(b));
    EXPECT_EQ(kernels::active_backend(), b);
    EXPECT_STREQ(kernels::active().name, kernels::backend_name(b));
    {
      const kernels::ScopedBackend pin(Backend::kScalar);
      EXPECT_EQ(kernels::active_backend(), Backend::kScalar);
    }
    EXPECT_EQ(kernels::active_backend(), b);
  }
  ASSERT_TRUE(kernels::set_backend(before));
}

TEST(BackendEquivalence, IdctFuzzAllBackends) {
  Rng rng(0x51D);
  for (const kernels::Backend b : vector_backends()) {
    const kernels::KernelTable& kt = kernels::table(b);
    for (int trial = 0; trial < 3000; ++trial) {
      Block blk;
      const BlockSparsity s = fill_random_rows(rng, blk, rng.next_below(256));
      Block want = blk, got = blk;
      idct_int_dense(want);
      kt.idct(got, s);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(got[i], want[i]) << kt.name << " trial " << trial
                                   << " pel " << i;
      }
    }
  }
}

TEST(BackendEquivalence, IdctMismatchCoefficientEdges) {
  // §7.4.4 mismatch-control blocks and friends: a lone coefficient at
  // every raster position (position 63 is the mismatch slot -> group 7 in
  // both passes), at the dequantizer's range edges. Runs through the
  // dispatch entry AND the crossover-free vector entry so sparse shapes
  // the tuned crossover hands to the scalar kernel still exercise the
  // vector butterfly.
  for (const kernels::Backend b : vector_backends()) {
    const kernels::KernelTable& kt = kernels::table(b);
    const kernels::detail::IdctFn raw = kernels::detail::idct_vector_raw(b);
    ASSERT_NE(raw, nullptr) << kt.name;
    for (int pos = 0; pos < 64; ++pos) {
      for (const int level : {1, -1, 2047, -2048}) {
        Block blk{};
        blk[pos] = static_cast<std::int16_t>(level);
        BlockSparsity s = BlockSparsity::none();
        s.mark(pos);
        if (pos == 0) s.mark(0);
        Block want = blk, got = blk, got_raw = blk;
        idct_int_dense(want);
        kt.idct(got, s);
        raw(got_raw, s);
        for (int i = 0; i < 64; ++i) {
          ASSERT_EQ(got[i], want[i])
              << kt.name << " pos " << pos << " level " << level << " pel "
              << i;
          ASSERT_EQ(got_raw[i], want[i])
              << kt.name << "(raw) pos " << pos << " level " << level
              << " pel " << i;
        }
      }
    }
  }
}

TEST(BackendEquivalence, IdctVectorRawAllOccupancies) {
  // The production entries route sparse blocks to the scalar kernel (the
  // occupancy crossover; SSE2 routes everything), so the raw entry is the
  // only way to fuzz the vector butterfly across ALL occupancy classes.
  Rng rng(0x7A3);
  for (const kernels::Backend b : vector_backends()) {
    const kernels::detail::IdctFn raw = kernels::detail::idct_vector_raw(b);
    ASSERT_NE(raw, nullptr);
    for (int trial = 0; trial < 3000; ++trial) {
      Block blk;
      const BlockSparsity s = fill_random_rows(rng, blk, rng.next_below(256));
      Block want = blk, got = blk;
      idct_int_dense(want);
      raw(got, s);
      for (int i = 0; i < 64; ++i) {
        ASSERT_EQ(got[i], want[i])
            << kernels::backend_name(b) << " raw trial " << trial << " pel "
            << i;
      }
    }
  }
}

/// Inline MPEG-2 half-pel prediction oracle (13818-2 7.7: (a+b+1)>>1 taps,
/// (sum+2)>>2 diagonal, (d+p+1)>>1 bidirectional blend).
void mc_oracle(const std::uint8_t* src, int rs, std::uint8_t* dst, int ds,
               int w, int h, bool hx, bool hy, bool avg) {
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const std::uint8_t* s = src + y * rs + x;
      int p;
      if (!hx && !hy) {
        p = s[0];
      } else if (hx && !hy) {
        p = (s[0] + s[1] + 1) >> 1;
      } else if (!hx && hy) {
        p = (s[0] + s[rs] + 1) >> 1;
      } else {
        p = (s[0] + s[1] + s[rs] + s[rs + 1] + 2) >> 2;
      }
      std::uint8_t& d = dst[y * ds + x];
      d = static_cast<std::uint8_t>(avg ? (d + p + 1) >> 1 : p);
    }
  }
}

TEST(BackendEquivalence, McFuzzAndRoundingEdges) {
  Rng rng(0x4C);
  // Ragged shapes take the backends' scalar fallbacks; 8/16-wide the
  // vector rows. Saturation fills (all-0, all-255, checkerboard) pin the
  // rounding carries at both ends of the pel range.
  const std::pair<int, int> sizes[] = {{16, 16}, {16, 8}, {8, 8},
                                       {8, 4},   {12, 6}, {7, 5}};
  constexpr int kStride = 40;
  std::vector<std::uint8_t> ref(kStride * 24);
  std::vector<std::uint8_t> dst_want(kStride * 20), dst_got(kStride * 20);
  for (const kernels::Backend b : vector_backends()) {
    const kernels::KernelTable& kt = kernels::table(b);
    for (int fill = 0; fill < 4; ++fill) {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ref[i] = fill == 0   ? static_cast<std::uint8_t>(rng.next_below(256))
                 : fill == 1 ? std::uint8_t{0}
                 : fill == 2 ? std::uint8_t{255}
                             : static_cast<std::uint8_t>(
                                   ((i ^ (i / kStride)) & 1) ? 255 : 0);
      }
      for (const auto& [w, h] : sizes) {
        for (int mode = 0; mode < 8; ++mode) {
          const bool hx = (mode & 1) != 0, hy = (mode & 2) != 0;
          const bool avg = (mode & 4) != 0;
          for (auto& p : dst_want) {
            p = static_cast<std::uint8_t>(rng.next_below(256));
          }
          dst_got = dst_want;
          mc_oracle(ref.data() + kStride + 1, kStride, dst_want.data() + 1,
                    kStride, w, h, hx, hy, avg);
          kt.mc(ref.data() + kStride + 1, kStride, dst_got.data() + 1,
                kStride, w, h, hx, hy, avg);
          ASSERT_EQ(std::memcmp(dst_got.data(), dst_want.data(),
                                dst_want.size()),
                    0)
              << kt.name << " fill=" << fill << " w=" << w << " h=" << h
              << " hx=" << hx << " hy=" << hy << " avg=" << avg;
        }
      }
    }
  }
}

TEST(BackendEquivalence, ConcealCopyFillAllBackends) {
  Rng rng(0xC0);
  constexpr int kStride = 384;
  std::vector<std::uint8_t> src(kStride * 20);
  std::vector<std::uint8_t> want(kStride * 20), got(kStride * 20);
  for (const kernels::Backend b : vector_backends()) {
    const kernels::KernelTable& kt = kernels::table(b);
    for (const int width : {352, 176, 64, 33, 16, 7, 1}) {
      for (auto& p : src) p = static_cast<std::uint8_t>(rng.next_below(256));
      for (auto& p : want) p = static_cast<std::uint8_t>(rng.next_below(256));
      got = want;
      // Copy: oracle is a plain per-row loop; untouched bytes must stay.
      for (int r = 0; r < 16; ++r) {
        std::copy_n(src.data() + 3 + r * kStride, width,
                    want.data() + 5 + r * kStride);
      }
      kt.conceal_copy(got.data() + 5, kStride, src.data() + 3, kStride,
                      width, 16);
      ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
          << kt.name << " copy width " << width;
      // Fill, including the 0 and 255 extremes and mid-gray 128.
      for (const int value : {0, 128, 255, 42}) {
        got = want;
        for (int r = 0; r < 16; ++r) {
          std::fill_n(want.data() + 5 + r * kStride, width,
                      static_cast<std::uint8_t>(value));
        }
        kt.conceal_fill(got.data() + 5, kStride,
                        static_cast<std::uint8_t>(value), width, 16);
        ASSERT_EQ(std::memcmp(got.data(), want.data(), got.size()), 0)
            << kt.name << " fill width " << width << " value " << value;
      }
    }
  }
}

TEST(BackendEquivalence, SsePlaneAndSad16AllBackends) {
  Rng rng(0x5AD);
  constexpr int kStride = 96;
  std::vector<std::uint8_t> a(kStride * 64), c(kStride * 64);
  for (const kernels::Backend b : vector_backends()) {
    const kernels::KernelTable& kt = kernels::table(b);
    for (int trial = 0; trial < 50; ++trial) {
      // Saturated planes on the last trials hit the accumulator edges.
      const bool extreme = trial >= 46;
      for (auto& p : a) {
        p = extreme ? std::uint8_t{255}
                    : static_cast<std::uint8_t>(rng.next_below(256));
      }
      for (auto& p : c) {
        p = extreme ? std::uint8_t{0}
                    : static_cast<std::uint8_t>(rng.next_below(256));
      }
      for (const auto& [w, h] : {std::pair{64, 48}, {37, 21}, {16, 16},
                                {8, 8}, {1, 1}}) {
        std::uint64_t want = 0;
        for (int y = 0; y < h; ++y) {
          for (int x = 0; x < w; ++x) {
            const int d = int{a[y * kStride + x]} - int{c[y * kStride + x]};
            want += static_cast<std::uint64_t>(d * d);
          }
        }
        ASSERT_EQ(kt.sse_plane(a.data(), kStride, c.data(), kStride, w, h),
                  want)
            << kt.name << " sse " << w << "x" << h;
      }
      for (int mode = 0; mode < 4; ++mode) {
        const bool hx = (mode & 1) != 0, hy = (mode & 2) != 0;
        int want = 0;
        for (int row = 0; row < 16; ++row) {
          const std::uint8_t* rr = a.data() + 1 + (row + 1) * kStride;
          const std::uint8_t* cc = c.data() + row * kStride;
          for (int col = 0; col < 16; ++col) {
            int pel;
            if (!hx && !hy) {
              pel = rr[col];
            } else if (hx && !hy) {
              pel = (rr[col] + rr[col + 1] + 1) >> 1;
            } else if (!hx && hy) {
              pel = (rr[col] + rr[col + kStride] + 1) >> 1;
            } else {
              pel = (rr[col] + rr[col + 1] + rr[col + kStride] +
                     rr[col + kStride + 1] + 2) >>
                    2;
            }
            want += std::abs(pel - int{cc[col]});
          }
        }
        ASSERT_EQ(kt.sad16(a.data() + 1 + kStride, kStride, c.data(),
                           kStride, hx, hy),
                  want)
            << kt.name << " sad hx=" << hx << " hy=" << hy;
      }
    }
  }
}

}  // namespace
}  // namespace pmp2::mpeg2
