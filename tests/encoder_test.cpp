// Direct encoder tests: GOP structure across sizes, skip efficiency on
// static content, rate-control monotonicity, f_code selection, statistics
// accounting, and padding behaviour.
#include <gtest/gtest.h>

#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "mpeg2/motion.h"
#include "streamgen/scene.h"

namespace pmp2::mpeg2 {
namespace {

std::vector<FramePtr> scene_frames(int w, int h, int n, double pan = 2.4) {
  streamgen::SceneConfig sc;
  sc.width = w;
  sc.height = h;
  sc.pan_pels_per_picture = pan;
  const streamgen::SceneGenerator scene(sc);
  std::vector<FramePtr> out;
  for (int i = 0; i < n; ++i) out.push_back(scene.render(i));
  return out;
}

class GopStructure : public ::testing::TestWithParam<int> {};

TEST_P(GopStructure, CodedOrderIsValid) {
  const int n = GetParam();
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.gop_size = n;
  Encoder enc(cfg);
  streamgen::SceneConfig sc;
  sc.width = 64;
  sc.height = 48;
  const streamgen::SceneGenerator scene(sc);
  for (int i = 0; i < 2 * n; ++i) enc.push_frame(scene.render(i));
  const auto stream = enc.finish();
  const auto s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  ASSERT_EQ(s.gops.size(), 2u);
  for (const auto& gop : s.gops) {
    ASSERT_EQ(static_cast<int>(gop.pictures.size()), n);
    // First coded picture is I with temporal_reference 0; every B's
    // references (nearest I/P before and after in display order) are
    // inside the GOP; temporal references are a permutation of 0..n-1.
    EXPECT_EQ(gop.pictures[0].type, PictureType::kI);
    EXPECT_EQ(gop.pictures[0].temporal_reference, 0);
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    int last_ref_tr = -1;
    for (const auto& pic : gop.pictures) {
      ASSERT_GE(pic.temporal_reference, 0);
      ASSERT_LT(pic.temporal_reference, n);
      EXPECT_FALSE(seen[static_cast<std::size_t>(pic.temporal_reference)]);
      seen[static_cast<std::size_t>(pic.temporal_reference)] = true;
      if (pic.type == PictureType::kB) {
        // A B picture must appear after a future reference (closed GOP
        // coded order): its temporal ref lies before the latest reference.
        EXPECT_LT(pic.temporal_reference, last_ref_tr);
      } else {
        last_ref_tr = pic.temporal_reference;
      }
    }
    for (const bool b : seen) EXPECT_TRUE(b);
  }
  // And it must decode.
  Decoder dec;
  EXPECT_TRUE(dec.decode(stream).ok);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GopStructure,
                         ::testing::Values(1, 2, 3, 4, 7, 13, 16, 31));

TEST(Encoder, StaticSceneSkipsMostMacroblocks) {
  // Identical frames: after the I picture, P/B macroblocks should be
  // skipped or not-coded almost everywhere.
  auto frames = scene_frames(176, 120, 13, /*pan=*/0.0);
  EncoderConfig cfg;
  cfg.width = 176;
  cfg.height = 120;
  cfg.gop_size = 13;
  Encoder enc(cfg);
  for (auto& f : frames) enc.push_frame(std::move(f));
  const auto stream = enc.finish();
  const auto& st = enc.stats();
  const int total = st.intra_mbs + st.inter_mbs + st.skipped_mbs;
  EXPECT_GT(st.skipped_mbs, total / 2) << "static scene barely skipped";
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  // No temporal drift: every picture stays close to the first (the
  // skip-bias prevents quantization-noise chasing; B-picture rounding and
  // above-threshold texture noise keep this from being exact).
  for (std::size_t i = 1; i < out.frames.size(); ++i) {
    EXPECT_GT(psnr_y(*out.frames[0], *out.frames[i]), 32.0) << i;
  }
  // And the stream is far cheaper than coding a moving scene.
  auto moving = scene_frames(176, 120, 13, /*pan=*/2.4);
  Encoder enc2(cfg);
  for (auto& f : moving) enc2.push_frame(std::move(f));
  (void)enc2.finish();
  EXPECT_LT(st.bits_total, enc2.stats().bits_total / 2);
}

TEST(Encoder, FasterPanCostsMoreBits) {
  std::int64_t bits[3];
  int k = 0;
  for (const double pan : {0.0, 2.4, 8.0}) {
    auto frames = scene_frames(176, 120, 13, pan);
    EncoderConfig cfg;
    cfg.width = 176;
    cfg.height = 120;
    cfg.gop_size = 13;
    cfg.rate_control = false;
    Encoder enc(cfg);
    for (auto& f : frames) enc.push_frame(std::move(f));
    (void)enc.finish();
    bits[k++] = enc.stats().bits_total;
  }
  EXPECT_LT(bits[0], bits[1]);
  EXPECT_LT(bits[1], bits[2]);
}

TEST(Encoder, RateControlMonotoneInTarget) {
  std::int64_t produced[3];
  int k = 0;
  for (const std::int64_t target : {60'000, 150'000, 400'000}) {
    auto frames = scene_frames(176, 120, 26);
    EncoderConfig cfg;
    cfg.width = 176;
    cfg.height = 120;
    cfg.gop_size = 13;
    cfg.bit_rate = target;
    Encoder enc(cfg);
    for (auto& f : frames) enc.push_frame(std::move(f));
    (void)enc.finish();
    produced[k++] = enc.stats().bits_total;
  }
  EXPECT_LT(produced[0], produced[1]);
  EXPECT_LE(produced[1], produced[2]);
}

TEST(Encoder, StatsAccountEveryMacroblock) {
  auto frames = scene_frames(176, 120, 13);
  EncoderConfig cfg;
  cfg.width = 176;
  cfg.height = 120;
  cfg.gop_size = 13;
  Encoder enc(cfg);
  for (auto& f : frames) enc.push_frame(std::move(f));
  (void)enc.finish();
  const auto& st = enc.stats();
  EXPECT_EQ(st.pictures, 13);
  EXPECT_EQ(st.gops, 1);
  EXPECT_EQ(st.intra_mbs + st.inter_mbs + st.skipped_mbs, 13 * 11 * 8);
  EXPECT_EQ(st.pictures_by_type[1] + st.pictures_by_type[2] +
                st.pictures_by_type[3],
            13);
  EXPECT_EQ(st.bits_by_type[1] + st.bits_by_type[2] + st.bits_by_type[3] +
                /* headers outside pictures: */ 0,
            st.bits_total);
}

TEST(Encoder, SearchRangeSelectsFCode) {
  // f_code must cover 2*range+1 half-pels.
  for (const auto& [range, want] :
       std::vector<std::pair<int, int>>{{4, 1}, {7, 1}, {8, 2}, {15, 2},
                                        {16, 3}}) {
    EXPECT_EQ(f_code_for_range(2 * range + 1), want) << range;
  }
}

TEST(Encoder, PushPadsBorders) {
  auto frame = std::make_shared<Frame>(90, 60);  // coded 96x64
  for (int y = 0; y < 60; ++y) {
    for (int x = 0; x < 90; ++x) {
      frame->y()[y * frame->y_stride() + x] = 77;
    }
  }
  EncoderConfig cfg;
  cfg.width = 90;
  cfg.height = 60;
  cfg.gop_size = 1;
  Encoder enc(cfg);
  Frame* raw = frame.get();
  enc.push_frame(std::move(frame));
  // push_frame pads in place: padding columns/rows replicate edges.
  EXPECT_EQ(raw->y()[10 * raw->y_stride() + 95], 77);
  EXPECT_EQ(raw->y()[63 * raw->y_stride() + 3], 77);
  (void)enc.finish();
}

TEST(Encoder, BitstreamEndsWithSequenceEnd) {
  auto frames = scene_frames(64, 48, 4);
  EncoderConfig cfg;
  cfg.width = 64;
  cfg.height = 48;
  cfg.gop_size = 4;
  Encoder enc(cfg);
  for (auto& f : frames) enc.push_frame(std::move(f));
  const auto stream = enc.finish();
  ASSERT_GE(stream.size(), 4u);
  EXPECT_EQ(stream[stream.size() - 4], 0x00);
  EXPECT_EQ(stream[stream.size() - 3], 0x00);
  EXPECT_EQ(stream[stream.size() - 2], 0x01);
  EXPECT_EQ(stream[stream.size() - 1], 0xB7);
}

}  // namespace
}  // namespace pmp2::mpeg2
