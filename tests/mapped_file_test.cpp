// MappedFile: zero-copy stream input (mmap with a buffered-read fallback).
// The contract under test: bytes() returns exactly the file's contents for
// regular files of any size (including zero), open() reports failure for
// missing paths, reopening replaces the previous mapping, and the mapping
// survives moves.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "io/mapped_file.h"

namespace pmp2::io {
namespace {

/// Unique-ish temp path per test; removed by the fixture.
class MappedFileTest : public ::testing::Test {
 protected:
  std::string temp_path(const char* tag) {
    std::string path = ::testing::TempDir() + "pmp2_mapped_" + tag + "_" +
                       std::to_string(::getpid()) + ".bin";
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  std::vector<std::string> paths_;
};

void write_file(const std::string& path, const std::vector<std::uint8_t>& b) {
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(b.data()),
            static_cast<std::streamsize>(b.size()));
}

TEST_F(MappedFileTest, BytesMatchFileContents) {
  std::vector<std::uint8_t> data(100'000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  }
  const auto path = temp_path("contents");
  write_file(path, data);

  MappedFile file;
  ASSERT_TRUE(file.open(path));
  EXPECT_TRUE(file.valid());
  ASSERT_EQ(file.size(), data.size());
  const auto bytes = file.bytes();
  ASSERT_EQ(bytes.size(), data.size());
  EXPECT_EQ(std::vector<std::uint8_t>(bytes.begin(), bytes.end()), data);
}

TEST_F(MappedFileTest, MissingFileFailsToOpen) {
  MappedFile file;
  EXPECT_FALSE(file.open(temp_path("missing")));
  EXPECT_FALSE(file.valid());
  EXPECT_EQ(file.size(), 0u);
}

TEST_F(MappedFileTest, EmptyFileIsValidWithZeroBytes) {
  const auto path = temp_path("empty");
  write_file(path, {});
  MappedFile file;
  ASSERT_TRUE(file.open(path));
  EXPECT_TRUE(file.valid());
  EXPECT_EQ(file.size(), 0u);
  EXPECT_TRUE(file.bytes().empty());
}

TEST_F(MappedFileTest, ReopenReplacesPreviousMapping) {
  const auto a = temp_path("first");
  const auto b = temp_path("second");
  write_file(a, {1, 2, 3});
  write_file(b, {9, 8, 7, 6});
  MappedFile file;
  ASSERT_TRUE(file.open(a));
  ASSERT_TRUE(file.open(b));
  ASSERT_EQ(file.size(), 4u);
  EXPECT_EQ(file.bytes()[0], 9);
}

TEST_F(MappedFileTest, MoveTransfersOwnership) {
  const auto path = temp_path("move");
  write_file(path, {42, 43, 44});
  MappedFile a;
  ASSERT_TRUE(a.open(path));
  MappedFile b = std::move(a);
  ASSERT_TRUE(b.valid());
  ASSERT_EQ(b.size(), 3u);
  EXPECT_EQ(b.bytes()[0], 42);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): asserting it

  MappedFile c;
  c = std::move(b);
  ASSERT_TRUE(c.valid());
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.bytes()[2], 44);
}

TEST_F(MappedFileTest, LargeFileStreamsAllBytes) {
  // Larger than the fallback path's 64 KiB buffer so both the mmap path
  // and the chunked-read path cover multiple chunks.
  std::vector<std::uint8_t> data(1 << 19);  // 512 KiB
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>((i >> 3) ^ i);
  }
  const auto path = temp_path("large");
  write_file(path, data);
  MappedFile file;
  ASSERT_TRUE(file.open(path));
  ASSERT_EQ(file.size(), data.size());
  const auto bytes = file.bytes();
  EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(), data.begin()));
}

}  // namespace
}  // namespace pmp2::io
