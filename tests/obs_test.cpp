// Observability-layer tests: JSON writer/escaping, tracer ring semantics,
// Chrome trace_event export validity, metrics registry, the shared load
// summary, run reports, and the determinism guarantee of sim-fed traces.
#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "bitstream/startcode.h"
#include "mpeg2/decoder.h"
#include "obs/json.h"
#include "obs/json_parse.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "parallel/stats.h"
#include "sched/sim.h"
#include "streamgen/stream_factory.h"

namespace pmp2 {
namespace {

// --- Minimal strict JSON parser (validity only). Accepts exactly the RFC
// 8259 grammar; used to round-trip-check every exporter in this suite.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!parse_value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }
  void skip_ws() {
    while (!at_end() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                         peek() == '\r')) {
      ++pos_;
    }
  }
  bool consume(char c) {
    if (at_end() || peek() != c) return false;
    ++pos_;
    return true;
  }
  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_value() {
    if (at_end()) return false;
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return parse_number();
    }
  }

  bool parse_object() {
    if (!consume('{')) return false;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      if (!parse_string()) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (consume('}')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_array() {
    if (!consume('[')) return false;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      if (!parse_value()) return false;
      skip_ws();
      if (consume(']')) return true;
      if (!consume(',')) return false;
    }
  }

  bool parse_string() {
    if (!consume('"')) return false;
    while (!at_end()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return false;  // raw control char: invalid
      if (c == '\\') {
        ++pos_;
        if (at_end()) return false;
        const char e = text_[pos_];
        if (e == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<std::size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<std::size_t>(i)]))) {
              return false;
            }
          }
          pos_ += 4;
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    consume('-');
    if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    if (!at_end() && peek() == '.') {
      ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return false;
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(peek()))) {
        ++pos_;
      }
    }
    return pos_ > start;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

bool json_valid(std::string_view text) { return JsonChecker(text).valid(); }

int count_occurrences(const std::string& haystack, const std::string& needle) {
  int n = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

// --- JSON writer ----------------------------------------------------------

TEST(Json, EscapesRfc8259) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("\n\t\r\b\f"), "\\n\\t\\r\\b\\f");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01\x1f", 2)),
            "\\u0001\\u001f");
  // Non-ASCII bytes pass through untouched (UTF-8 payloads are legal JSON).
  EXPECT_EQ(obs::json_escape("\xc3\xa9"), "\xc3\xa9");
}

TEST(Json, DoubleFormatting) {
  EXPECT_EQ(obs::json_double(0.0), "0");
  EXPECT_EQ(obs::json_double(1.5), "1.5");
  EXPECT_EQ(obs::json_double(std::nan("")), "null");
  EXPECT_EQ(obs::json_double(std::numeric_limits<double>::infinity()),
            "null");
}

TEST(Json, WriterProducesValidCompactDocument) {
  std::ostringstream os;
  obs::JsonWriter w(os);
  w.begin_object();
  w.key("name").value("quo\"te");
  w.key("n").value(42);
  w.key("xs").begin_array();
  w.value(1.25).value(true).null();
  w.end_array();
  w.key("nested").begin_object().end_object();
  w.end_object();
  EXPECT_TRUE(w.done());
  const std::string doc = os.str();
  EXPECT_EQ(doc,
            "{\"name\":\"quo\\\"te\",\"n\":42,\"xs\":[1.25,true,null],"
            "\"nested\":{}}");
  EXPECT_TRUE(json_valid(doc));
}

// Escaped payload -> JsonWriter document -> strict obs::json_parse ->
// original bytes. Covers every control character and multi-byte UTF-8.
TEST(Json, ControlCharsRoundTripThroughStrictParser) {
  for (int c = 0; c < 0x20; ++c) {
    std::string payload = "a";
    payload.push_back(static_cast<char>(c));
    payload += "b";
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.key("s").value(payload);
    w.end_object();
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::json_parse(os.str(), doc, &err))
        << "byte 0x" << std::hex << c << ": " << err;
    const obs::JsonValue* s = doc.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->as_string(), payload) << "byte 0x" << std::hex << c;
  }
}

TEST(Json, NonAsciiBytesRoundTripThroughStrictParser) {
  const std::string payloads[] = {
      "\xc3\xa9",                               // 2-byte UTF-8 (e acute)
      "\xe2\x82\xac",                           // 3-byte UTF-8 (euro sign)
      "\xf0\x9f\x8e\xac",                       // 4-byte UTF-8 (clapper)
      std::string("del \x7f nbsp \xc2\xa0"),    // DEL is legal unescaped
  };
  for (const std::string& payload : payloads) {
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.begin_object();
    w.key("s").value(payload);
    w.end_object();
    EXPECT_TRUE(json_valid(os.str()));
    obs::JsonValue doc;
    std::string err;
    ASSERT_TRUE(obs::json_parse(os.str(), doc, &err)) << err;
    const obs::JsonValue* s = doc.find("s");
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->as_string(), payload);
  }
}

// --- Tracer ring ----------------------------------------------------------

TEST(Tracer, RingOverflowKeepsNewestAndCountsDrops) {
  obs::TraceTrack track(4);
  for (int i = 0; i < 10; ++i) {
    obs::Span s;
    s.begin_ns = i;
    s.end_ns = i + 1;
    track.emit(s);
  }
  EXPECT_EQ(track.emitted(), 10u);
  EXPECT_EQ(track.dropped(), 6u);
  const auto spans = track.spans();
  ASSERT_EQ(spans.size(), 4u);
  // Oldest-first unwrap of the newest four spans (6, 7, 8, 9).
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].begin_ns, 6 + i);
  }
}

TEST(Tracer, NoOverflowBelowCapacity) {
  obs::TraceTrack track(16);
  for (int i = 0; i < 10; ++i) track.emit(obs::Span{});
  EXPECT_EQ(track.dropped(), 0u);
  EXPECT_EQ(track.spans().size(), 10u);
}

TEST(Tracer, ChromeExportRoundTripsThroughStrictParser) {
  obs::Tracer tracer(2, /*capacity_per_track=*/8);
  // Track names with JSON-hostile characters must survive escaping.
  tracer.track(0).set_name("worker \"zero\"\\path\n");
  tracer.track(1).set_name("scan");
  tracer.emit(0, obs::SpanKind::kSliceTask, 1000, 2500, 3, 7, 1);
  tracer.emit(0, obs::SpanKind::kSyncWait, 2500, 2600);
  tracer.emit(1, obs::SpanKind::kScan, 0, 900);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"slice p3 s7\""), std::string::npos);
  EXPECT_NE(doc.find("\"worker \\\"zero\\\"\\\\path\\n\""),
            std::string::npos);
  // Complete events carry microsecond fixed-point timestamps: 1000 ns
  // begins at 1.000 us and lasts 1.500 us.
  EXPECT_NE(doc.find("\"ts\":1.000,\"dur\":1.500"), std::string::npos);
  EXPECT_EQ(count_occurrences(doc, "\"ph\":\"X\""), 3);
  EXPECT_EQ(tracer.total_spans(), 3u);
  EXPECT_EQ(tracer.total_dropped(), 0u);
}

// --- Metrics --------------------------------------------------------------

TEST(Metrics, HistogramStatsAndPercentiles) {
  obs::Histogram h;
  for (int i = 1; i <= 100; ++i) h.record(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.sum(), 5050);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Log2 buckets: percentiles are exact to within one octave.
  EXPECT_GE(h.percentile(0.5), 25.0);
  EXPECT_LE(h.percentile(0.5), 75.0);
  EXPECT_GE(h.percentile(0.99), 64.0);
  EXPECT_LE(h.percentile(0.99), 100.0);
  EXPECT_LE(h.percentile(1.0), 100.0);
}

TEST(Metrics, HistogramPercentileEmptyAndSingleSample) {
  obs::Histogram empty;
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(empty.percentile(q), 0.0) << "q=" << q;
  }
  obs::Histogram one;
  one.record(42);
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(one.percentile(q), 42.0) << "q=" << q;
  }
}

TEST(Metrics, HistogramPercentileEndpointsClampAndMonotone) {
  obs::Histogram h;
  for (const int v : {10, 20, 40, 80, 1000}) h.record(v);
  EXPECT_DOUBLE_EQ(h.percentile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(1.0), 1000.0);
  // Out-of-range quantiles clamp to the endpoints.
  EXPECT_DOUBLE_EQ(h.percentile(-0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.percentile(2.0), 1000.0);
  double prev = h.percentile(0.0);
  for (double q = 0.1; q <= 1.0; q += 0.1) {
    const double v = h.percentile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
}

TEST(Metrics, RegistryDumpsAreValidAndDeterministic) {
  obs::Registry reg;
  reg.counter("decode.bytes").add(12345);
  reg.counter("slice.tasks").add(9);
  reg.histogram("slice.task_ns").record(100);
  reg.histogram("slice.task_ns").record(300);

  std::ostringstream text;
  reg.write_text(text);
  EXPECT_NE(text.str().find("decode.bytes = 12345"), std::string::npos);
  EXPECT_NE(text.str().find("slice.task_ns"), std::string::npos);

  std::ostringstream j1, j2;
  reg.write_json(j1);
  reg.write_json(j2);
  EXPECT_TRUE(json_valid(j1.str())) << j1.str();
  EXPECT_EQ(j1.str(), j2.str());
  EXPECT_NE(j1.str().find("\"count\":2"), std::string::npos);
}

TEST(Metrics, CounterLookupIsStable) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("x");
  a.add(3);
  EXPECT_EQ(reg.counter("x").value(), 3);
  EXPECT_EQ(&reg.counter("x"), &a);
}

// --- Shared load summary --------------------------------------------------

TEST(LoadSummary, MatchesHandComputation) {
  const std::vector<std::int64_t> busy = {100, 200, 300};
  const std::vector<std::int64_t> sync = {50, 50, 50};
  const std::vector<std::int64_t> idle = {10, 0, 0};
  const std::vector<std::uint64_t> tasks = {1, 2, 3};
  const auto s = parallel::summarize_load(busy, sync, idle, tasks);
  EXPECT_EQ(s.workers, 3);
  EXPECT_EQ(s.tasks, 6u);
  EXPECT_EQ(s.min_busy_ns, 100);
  EXPECT_EQ(s.max_busy_ns, 300);
  EXPECT_DOUBLE_EQ(s.avg_busy_ns, 200.0);
  EXPECT_DOUBLE_EQ(s.imbalance, 1.5);
  // Mean over workers of sync / (sync + busy).
  EXPECT_DOUBLE_EQ(s.sync_ratio,
                   (50.0 / 150.0 + 50.0 / 250.0 + 50.0 / 350.0) / 3.0);
  EXPECT_DOUBLE_EQ(s.utilization, 600.0 / (600.0 + 150.0 + 10.0));
}

TEST(LoadSummary, EmptyAndZeroInputsAreSafe) {
  const auto empty = parallel::summarize_load({}, {});
  EXPECT_EQ(empty.workers, 0);
  EXPECT_DOUBLE_EQ(empty.imbalance, 0.0);
  const std::vector<std::int64_t> zeros = {0, 0};
  const auto z = parallel::summarize_load(zeros, zeros);
  EXPECT_DOUBLE_EQ(z.sync_ratio, 0.0);
  EXPECT_DOUBLE_EQ(z.utilization, 0.0);
}

// --- Run reports ----------------------------------------------------------

TEST(Report, SerializesValidDeterministicJson) {
  obs::Registry reg;
  reg.counter("tasks").add(4);
  obs::RunReport report("test_tool", "desc \"quoted\"");
  report.set_meta("workers", 4).set_meta("scale", 0.5);
  report.add_row().set("name", "a").set("ok", true).set("x", 1.25);
  report.add_row().set("name", "b").set("n", std::int64_t{7});
  report.attach_metrics(&reg);

  std::ostringstream o1, o2;
  report.write_json(o1);
  report.write_json(o2);
  const std::string doc = o1.str();
  EXPECT_EQ(doc, o2.str());
  EXPECT_TRUE(json_valid(doc)) << doc;
  EXPECT_NE(doc.find("\"tool\":\"test_tool\""), std::string::npos);
  EXPECT_NE(doc.find("\"desc \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(doc.find("\"rows\":["), std::string::npos);
  EXPECT_NE(doc.find("\"metrics\":{"), std::string::npos);
  EXPECT_EQ(doc.back(), '\n');
}

// --- Real decoder integration --------------------------------------------

streamgen::StreamSpec small_spec() {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 26;
  spec.bit_rate = 1'500'000;
  return spec;
}

TEST(DecoderTrace, SliceSpansMatchTaskAndCounterTotals) {
  const auto stream = streamgen::generate_stream(small_spec());
  const int workers = 3;
  obs::Tracer tracer(workers + 1);
  obs::Registry metrics;
  parallel::SliceDecoderConfig cfg;
  cfg.workers = workers;
  cfg.policy = parallel::SlicePolicy::kImproved;
  cfg.tracer = &tracer;
  cfg.metrics = &metrics;
  const auto r = parallel::SliceParallelDecoder(cfg).decode(stream);
  ASSERT_TRUE(r.ok);

  std::uint64_t task_total = 0;
  for (const auto& w : r.workers) task_total += w.tasks;
  EXPECT_GT(task_total, 0u);

  std::uint64_t slice_spans = 0;
  bool scan_span = false;
  for (int t = 0; t < tracer.tracks(); ++t) {
    for (const auto& s : tracer.track(t).spans()) {
      if (s.kind == obs::SpanKind::kSliceTask) {
        ++slice_spans;
        EXPECT_LE(s.begin_ns, s.end_ns);
        EXPECT_GE(s.picture, 0);
        EXPECT_GE(s.slice, 0);
        EXPECT_LT(t, workers);  // slice tasks only on worker tracks
      }
      if (s.kind == obs::SpanKind::kScan) {
        scan_span = true;
        EXPECT_EQ(t, workers);  // scan only on the scan track
      }
    }
  }
  EXPECT_EQ(slice_spans, task_total);
  EXPECT_TRUE(scan_span);
  EXPECT_EQ(
      static_cast<std::uint64_t>(metrics.counter("slice.tasks").value()),
      task_total);
  EXPECT_EQ(metrics.counter("decode.bytes").value(),
            static_cast<std::int64_t>(stream.size()));
  EXPECT_EQ(metrics.histogram("slice.task_ns").count(),
            static_cast<std::int64_t>(task_total));
  // No-trace decode must agree bit-exactly with the traced one.
  parallel::SliceDecoderConfig plain;
  plain.workers = workers;
  plain.policy = parallel::SlicePolicy::kImproved;
  const auto want = parallel::SliceParallelDecoder(plain).decode(stream);
  ASSERT_TRUE(want.ok);
  EXPECT_EQ(r.checksum, want.checksum);
}

TEST(DecoderTrace, GopDecoderEmitsGopAndPictureSpans) {
  const auto stream = streamgen::generate_stream(small_spec());
  const int workers = 2;
  obs::Tracer tracer(workers + 1);
  parallel::GopDecoderConfig cfg;
  cfg.workers = workers;
  cfg.tracer = &tracer;
  const auto r = parallel::GopParallelDecoder(cfg).decode(stream);
  ASSERT_TRUE(r.ok);
  std::uint64_t gop_spans = 0, picture_spans = 0;
  for (int t = 0; t < tracer.tracks(); ++t) {
    for (const auto& s : tracer.track(t).spans()) {
      if (s.kind == obs::SpanKind::kGopTask) {
        ++gop_spans;
        EXPECT_GE(s.gop, 0);
      }
      if (s.kind == obs::SpanKind::kPicture) ++picture_spans;
    }
  }
  EXPECT_EQ(gop_spans, 2u);  // 26 pictures, gop 13
  EXPECT_EQ(picture_spans, 26u);
}

/// Same corruption idiom as concealment_test.cpp: stomp one slice payload.
void corrupt_slice(std::vector<std::uint8_t>& stream, int gop, int pic,
                   int slice) {
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  const auto& info = s.gops[static_cast<std::size_t>(gop)]
                         .pictures[static_cast<std::size_t>(pic)];
  const auto offset = info.slices[static_cast<std::size_t>(slice)].offset;
  std::uint64_t end = stream.size();
  for (const auto& sc : scan_all_startcodes(stream)) {
    if (sc.byte_offset > offset) {
      end = sc.byte_offset;
      break;
    }
  }
  for (std::uint64_t i = offset + 5; i < end; ++i) stream[i] = 0xFF;
}

TEST(DecoderTrace, GopDecoderConcealsAndReportsCorruptSlices) {
  auto stream = streamgen::generate_stream(small_spec());
  corrupt_slice(stream, 0, 3, 4);
  parallel::GopDecoderConfig cfg;
  cfg.workers = 2;
  cfg.conceal_errors = true;
  const auto r = parallel::GopParallelDecoder(cfg).decode(stream);
  ASSERT_TRUE(r.ok);
  EXPECT_GE(r.concealed_slices, 1);
  EXPECT_EQ(r.pictures, 26);
  // Without concealment the same stream must fail.
  parallel::GopDecoderConfig strict;
  strict.workers = 2;
  EXPECT_FALSE(parallel::GopParallelDecoder(strict).decode(stream).ok);
}

// --- Simulator determinism ------------------------------------------------

/// Synthetic profile: fully deterministic costs, no encoding involved.
sched::StreamProfile synthetic_profile() {
  sched::StreamProfile p;
  p.ok = true;
  p.width = 176;
  p.height = 144;
  p.slices_per_picture = 4;
  p.ns_per_unit = 100.0;
  p.scan_ns = 50'000;
  for (int g = 0; g < 3; ++g) {
    sched::GopCost gop;
    for (int i = 0; i < 4; ++i) {
      sched::PictureCost pic;
      pic.type = i == 0 ? mpeg2::PictureType::kI : mpeg2::PictureType::kP;
      pic.temporal_reference = i;
      for (int s = 0; s < 4; ++s) {
        sched::SliceCost slice;
        slice.units = static_cast<std::uint64_t>(100 + 13 * g + 7 * i + s);
        slice.ns = static_cast<std::int64_t>(slice.units) * 100;
        pic.slices.push_back(slice);
      }
      gop.pictures.push_back(pic);
    }
    gop.stream_bytes = 40'000;
    p.gops.push_back(gop);
    p.stream_bytes += gop.stream_bytes;
  }
  return p;
}

std::string sim_trace_json(parallel::SlicePolicy policy, bool gop_level) {
  const auto profile = synthetic_profile();
  sched::SimConfig cfg;
  cfg.workers = 3;
  obs::Tracer tracer(cfg.workers);
  cfg.tracer = &tracer;
  const auto r = gop_level ? sched::simulate_gop(profile, cfg)
                           : sched::simulate_slice(profile, cfg, policy);
  EXPECT_GT(r.makespan_ns, 0);
  std::ostringstream os;
  tracer.write_chrome_trace(os);
  return os.str();
}

TEST(SimTrace, TwoIdenticalRunsExportByteIdenticalJson) {
  for (const bool gop_level : {false, true}) {
    const auto a =
        sim_trace_json(parallel::SlicePolicy::kImproved, gop_level);
    const auto b =
        sim_trace_json(parallel::SlicePolicy::kImproved, gop_level);
    EXPECT_EQ(a, b) << (gop_level ? "gop" : "slice");
    EXPECT_TRUE(json_valid(a));
    EXPECT_NE(a.find(gop_level ? "\"cat\":\"gop\"" : "\"cat\":\"slice\""),
              std::string::npos);
  }
}

TEST(SimTrace, SimplePolicyTraceIsDeterministicToo) {
  const auto a = sim_trace_json(parallel::SlicePolicy::kSimple, false);
  const auto b = sim_trace_json(parallel::SlicePolicy::kSimple, false);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(json_valid(a));
}

TEST(SimTrace, LoadSummaryConsistentWithLegacyAccessors) {
  const auto profile = synthetic_profile();
  sched::SimConfig cfg;
  cfg.workers = 3;
  const auto r = sched::simulate_gop(profile, cfg);
  const auto load = r.load_summary();
  EXPECT_EQ(load.workers, 3);
  EXPECT_EQ(load.min_busy_ns, r.min_busy_ns());
  EXPECT_EQ(load.max_busy_ns, r.max_busy_ns());
  EXPECT_DOUBLE_EQ(load.avg_busy_ns, r.avg_busy_ns());
  EXPECT_DOUBLE_EQ(load.sync_ratio, r.sync_ratio());
  EXPECT_GT(load.utilization, 0.0);
  EXPECT_LE(load.utilization, 1.0);
}

TEST(SimReport, TwoIdenticalRunsSerializeByteIdentically) {
  auto make_report = [] {
    const auto profile = synthetic_profile();
    sched::SimConfig cfg;
    cfg.workers = 3;
    const auto r = sched::simulate_slice(profile, cfg,
                                         parallel::SlicePolicy::kImproved);
    const auto load = r.load_summary();
    obs::RunReport report("sim_test", "determinism check");
    report.set_meta("workers", cfg.workers);
    report.add_row()
        .set("makespan_ns", r.makespan_ns)
        .set("pictures", r.pictures)
        .set("imbalance", load.imbalance)
        .set("sync_ratio", load.sync_ratio);
    std::ostringstream os;
    report.write_json(os);
    return os.str();
  };
  const auto a = make_report();
  const auto b = make_report();
  EXPECT_EQ(a, b);
  EXPECT_TRUE(json_valid(a));
}

}  // namespace
}  // namespace pmp2
