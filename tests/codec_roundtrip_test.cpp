// End-to-end encoder -> decoder integration tests: stream structure,
// reconstruction fidelity, and the encoder/decoder agreement invariant
// (decoded output == encoder reconstruction bit-for-bit is implied by PSNR
// stability across GOPs; drift would compound and tank late-GOP PSNR).
#include <gtest/gtest.h>

#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "streamgen/scene.h"
#include "streamgen/stream_factory.h"

namespace pmp2::mpeg2 {
namespace {

using streamgen::SceneConfig;
using streamgen::SceneGenerator;
using streamgen::StreamSpec;
using streamgen::generate_stream;

StreamSpec small_spec() {
  StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 26;
  spec.bit_rate = 1'500'000;
  return spec;
}

TEST(CodecRoundTrip, StreamHasExpectedStructure) {
  const auto spec = small_spec();
  const auto stream = generate_stream(spec);
  ASSERT_FALSE(stream.empty());
  const StreamStructure s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.seq.horizontal_size, 176);
  EXPECT_EQ(s.seq.vertical_size, 120);
  EXPECT_EQ(s.gops.size(), 2u);
  EXPECT_EQ(s.total_pictures(), 26);
  for (const auto& gop : s.gops) {
    EXPECT_TRUE(gop.closed);
    ASSERT_EQ(gop.pictures.size(), 13u);
    // Coded order: I first, temporal_reference 0.
    EXPECT_EQ(gop.pictures[0].type, PictureType::kI);
    EXPECT_EQ(gop.pictures[0].temporal_reference, 0);
    // One slice per macroblock row.
    for (const auto& pic : gop.pictures) {
      EXPECT_EQ(pic.slices.size(), 8u);  // 120 -> 8 MB rows
      for (std::size_t i = 0; i < pic.slices.size(); ++i) {
        EXPECT_EQ(pic.slices[i].row, static_cast<int>(i));
      }
    }
  }
}

TEST(CodecRoundTrip, GopPictureTypePattern) {
  const auto spec = small_spec();
  const auto stream = generate_stream(spec);
  const StreamStructure s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  // Coded order for N=13, M=3: I P B B P B B P B B P B B.
  const char expect[] = "IPBBPBBPBBPBB";
  for (const auto& gop : s.gops) {
    ASSERT_EQ(gop.pictures.size(), 13u);
    for (int i = 0; i < 13; ++i) {
      EXPECT_EQ(picture_type_char(gop.pictures[i].type), expect[i]) << i;
    }
  }
}

TEST(CodecRoundTrip, DecodeProducesAllFramesInDisplayOrder) {
  const auto spec = small_spec();
  const auto stream = generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.frames.size(), 26u);
  for (std::size_t i = 0; i < out.frames.size(); ++i) {
    EXPECT_EQ(out.frames[i]->display_index, static_cast<int>(i));
  }
  // Display order per GOP: I B B P B B P ... (temporal refs ascending).
  for (int g = 0; g < 2; ++g) {
    for (int i = 0; i < 13; ++i) {
      EXPECT_EQ(out.frames[g * 13 + i]->temporal_reference, i);
    }
  }
}

TEST(CodecRoundTrip, ReconstructionQualityReasonable) {
  const auto spec = small_spec();
  const auto stream = generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);

  SceneConfig sc;
  sc.width = spec.width;
  sc.height = spec.height;
  sc.seed = spec.seed;
  const SceneGenerator scene(sc);
  double min_psnr = 1e9;
  for (int i = 0; i < spec.pictures; ++i) {
    auto src = scene.render(i);
    const double p = psnr_y(*src, *out.frames[i]);
    min_psnr = std::min(min_psnr, p);
  }
  // Lossy codec at ~1.5 Mb/s on a small picture: comfortably above 25 dB;
  // drift between encoder reconstruction and decoder would push late
  // pictures far below this.
  EXPECT_GT(min_psnr, 25.0) << "possible encoder/decoder drift";
}

TEST(CodecRoundTrip, PsnrDoesNotDegradeAcrossGop) {
  // Drift detector: last P picture of a GOP must not be much worse than
  // the first P picture.
  const auto spec = small_spec();
  const auto stream = generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  SceneConfig sc;
  sc.width = spec.width;
  sc.height = spec.height;
  const SceneGenerator scene(sc);
  auto psnr_at = [&](int i) {
    auto src = scene.render(i);
    return psnr_y(*src, *out.frames[i]);
  };
  const double first_p = psnr_at(3);
  const double last_p = psnr_at(12);
  EXPECT_GT(last_p, first_p - 6.0);
}

TEST(CodecRoundTrip, IntraVlcFormatTableOne) {
  auto spec = small_spec();
  spec.pictures = 13;
  spec.intra_vlc_format = true;
  const auto stream = generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 13u);
}

TEST(CodecRoundTrip, AlternateScan) {
  auto spec = small_spec();
  spec.pictures = 13;
  spec.alternate_scan = true;
  const auto stream = generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 13u);
}

TEST(CodecRoundTrip, TinyGop) {
  auto spec = small_spec();
  spec.gop_size = 4;
  spec.pictures = 12;
  const auto stream = generate_stream(spec);
  const StreamStructure s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.gops.size(), 3u);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 12u);
}

TEST(CodecRoundTrip, PartialFinalGop) {
  auto spec = small_spec();
  spec.gop_size = 13;
  spec.pictures = 17;  // 13 + partial GOP of 4
  const auto stream = generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 17u);
}

TEST(CodecRoundTrip, RateControlApproachesTarget) {
  // Use a *binding* target (well below the scene's entropy at the finest
  // quantizer, ~250 kb/s at 176x120) so the controller must coarsen.
  auto spec = small_spec();
  spec.pictures = 39;
  spec.bit_rate = 120'000;
  EncoderStats stats;
  const auto stream = generate_stream(spec, &stats);
  const double seconds = spec.pictures / 30.0;
  const double actual_rate = stats.bits_total / seconds;
  EXPECT_GT(actual_rate, spec.bit_rate * 0.4);
  EXPECT_LT(actual_rate, spec.bit_rate * 1.7);

  // And the controller must produce fewer bits than the encoder at the
  // finest quantizer (~250 kb/s on this content), i.e. it actually
  // coarsened quantization to meet the target.
  EXPECT_LT(actual_rate, 200'000.0);
}

TEST(CodecRoundTrip, WorkMeterCountsArePlausible) {
  const auto spec = small_spec();
  const auto stream = generate_stream(spec);
  Decoder dec;
  const DecodedStream out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  const int mbs_per_pic = 11 * 8;
  EXPECT_EQ(out.work.macroblocks,
            static_cast<std::uint64_t>(mbs_per_pic * spec.pictures));
  EXPECT_GT(out.work.coefficients, 0u);
  EXPECT_GT(out.work.mc_blocks, 0u);
  EXPECT_GT(out.work.bits, 8u * stream.size() / 2);  // most bits are slices
}

TEST(CodecRoundTrip, StreamingCallbackMatchesBatchDecode) {
  const auto spec = small_spec();
  const auto stream = generate_stream(spec);
  Decoder d1, d2;
  const DecodedStream batch = d1.decode(stream);
  std::vector<FramePtr> streamed;
  const auto st = d2.decode_stream(
      stream, [&](FramePtr f) { streamed.push_back(std::move(f)); });
  ASSERT_TRUE(st.ok);
  ASSERT_EQ(streamed.size(), batch.frames.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_TRUE(streamed[i]->same_pels(*batch.frames[i])) << i;
  }
}

}  // namespace
}  // namespace pmp2::mpeg2
