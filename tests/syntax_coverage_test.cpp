// Decoder coverage for syntax our encoder never emits: hand-assembled
// bitstreams exercising macroblock_quant, long skip runs (escape-coded
// address increments), MPEG-1 stuffing, user-data startcodes, and
// "MC not coded" macroblocks.
#include <gtest/gtest.h>

#include "bitstream/bit_writer.h"
#include "mpeg2/decoder.h"
#include "mpeg2/motion.h"
#include "mpeg2/slice_decode.h"
#include "mpeg2/vlc_tables.h"
#include "parallel/slice_parallel.h"
#include "streamgen/stream_factory.h"

namespace pmp2::mpeg2 {
namespace {

/// Emits a minimal intra block: DC differential 0, EOB (table zero).
void put_flat_intra_block(BitWriter& bw, bool luma) {
  encode_dct_dc_size(luma, 0).put(bw);  // dct_dc_size 0 => no differential
  dct_eob_code(false).put(bw);
}

/// Emits a full intra macroblock with the given type code bits.
void put_intra_mb(BitWriter& bw, int picture_type, bool with_quant,
                  int new_qscale = 0) {
  encode_mb_addr_inc(1).put(bw);
  const std::uint8_t flags =
      with_quant ? (MbFlags::kQuant | MbFlags::kIntra) : MbFlags::kIntra;
  encode_mb_type(picture_type, flags).put(bw);
  if (with_quant) bw.put(static_cast<std::uint32_t>(new_qscale), 5);
  for (int b = 0; b < 6; ++b) put_flat_intra_block(bw, b < 4);
}

/// Builds a one-I-picture stream for a 32x32 picture (2x2 macroblocks,
/// 2 slices) using the provided slice-body writer.
template <typename SliceBody>
std::vector<std::uint8_t> build_stream(SliceBody&& body) {
  BitWriter bw;
  SequenceHeader sh;
  sh.horizontal_size = 32;
  sh.vertical_size = 32;
  write_sequence_header(bw, sh);
  write_sequence_extension(bw, sh, SequenceExtension{});
  write_gop_header(bw, GopHeader{});
  PictureHeader ph;
  ph.type = PictureType::kI;
  write_picture_header(bw, ph);
  write_picture_coding_extension(bw, PictureCodingExtension{});
  for (int row = 0; row < 2; ++row) {
    bw.put_startcode(static_cast<std::uint8_t>(row + 1));
    bw.put(8, 5);   // quantiser_scale_code
    bw.put_bit(0);  // extra_bit_slice
    body(bw, row);
  }
  bw.put_startcode(0xB7);
  return bw.take();
}

TEST(SyntaxCoverage, MacroblockQuantChangesScale) {
  // Second MB of each slice carries macroblock_quant with a new scale;
  // the stream must decode (flat DC blocks are scale-invariant here, the
  // point is the syntax path).
  const auto stream = build_stream([](BitWriter& bw, int) {
    put_intra_mb(bw, 1, /*with_quant=*/false);
    put_intra_mb(bw, 1, /*with_quant=*/true, /*new_qscale=*/20);
  });
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.frames.size(), 1u);
  // DC size 0 + predictor 128 => QF 128 => pel 128 everywhere.
  EXPECT_EQ(out.frames[0]->y()[0], 128);
  EXPECT_EQ(out.frames[0]->y()[31 * 32 + 31], 128);
}

TEST(SyntaxCoverage, QuantCodeZeroRejected) {
  const auto stream = build_stream([](BitWriter& bw, int) {
    put_intra_mb(bw, 1, /*with_quant=*/true, /*new_qscale=*/0);  // invalid
    put_intra_mb(bw, 1, false);
  });
  Decoder dec;
  EXPECT_FALSE(dec.decode(stream).ok);
}

TEST(SyntaxCoverage, UserDataAndRepeatedSequenceHeadersSkipped) {
  // user_data after the GOP header and a repeated sequence header before
  // the second picture must not confuse the structure scan.
  BitWriter bw;
  SequenceHeader sh;
  sh.horizontal_size = 32;
  sh.vertical_size = 32;
  write_sequence_header(bw, sh);
  write_sequence_extension(bw, sh, SequenceExtension{});
  write_gop_header(bw, GopHeader{});
  bw.put_startcode(0xB2);  // user data
  for (int i = 0; i < 16; ++i) bw.put(0x55, 8);
  PictureHeader ph;
  ph.type = PictureType::kI;
  write_picture_header(bw, ph);
  write_picture_coding_extension(bw, PictureCodingExtension{});
  for (int row = 0; row < 2; ++row) {
    bw.put_startcode(static_cast<std::uint8_t>(row + 1));
    bw.put(8, 5);
    bw.put_bit(0);
    put_intra_mb(bw, 1, false);
    put_intra_mb(bw, 1, false);
  }
  bw.put_startcode(0xB7);
  const auto bytes = bw.take();
  const auto s = scan_structure(bytes);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.total_pictures(), 1);
  Decoder dec;
  EXPECT_TRUE(dec.decode(bytes).ok);
}

/// Builds a P-picture slice exercising skipped macroblocks on a wide
/// picture (38 MBs per row allows a >33 skip run, forcing the escape).
std::vector<std::uint8_t> build_wide_p_stream(int skip_run) {
  const int mb_w = 38;
  BitWriter bw;
  SequenceHeader sh;
  sh.horizontal_size = mb_w * 16;
  sh.vertical_size = 16;
  write_sequence_header(bw, sh);
  write_sequence_extension(bw, sh, SequenceExtension{});
  write_gop_header(bw, GopHeader{});
  // I picture: all intra.
  PictureHeader ph;
  ph.type = PictureType::kI;
  write_picture_header(bw, ph);
  write_picture_coding_extension(bw, PictureCodingExtension{});
  bw.put_startcode(1);
  bw.put(8, 5);
  bw.put_bit(0);
  for (int mb = 0; mb < mb_w; ++mb) put_intra_mb(bw, 1, false);
  // P picture: first MB coded, `skip_run` skipped, last MB coded.
  ph.type = PictureType::kP;
  ph.temporal_reference = 1;
  write_picture_header(bw, ph);
  PictureCodingExtension pce;
  pce.f_code[0][0] = pce.f_code[0][1] = 1;
  write_picture_coding_extension(bw, pce);
  bw.put_startcode(1);
  bw.put(8, 5);
  bw.put_bit(0);
  {
    // First MB: forward MC, zero vector, no coefficients.
    encode_mb_addr_inc(1).put(bw);
    encode_mb_type(2, MbFlags::kMotionForward).put(bw);
    int pred = 0;
    encode_mv_component(bw, 1, 0, pred);
    encode_mv_component(bw, 1, 0, pred);
    // Skip run, then the last coded MB.
    int increment = skip_run + 1;
    while (increment > 33) {
      bw.put(0b00000001000, 11);  // macroblock_escape
      increment -= 33;
    }
    encode_mb_addr_inc(increment).put(bw);
    encode_mb_type(2, MbFlags::kMotionForward).put(bw);
    encode_mv_component(bw, 1, 0, pred);
    encode_mv_component(bw, 1, 0, pred);
  }
  bw.put_startcode(0xB7);
  return bw.take();
}

TEST(SyntaxCoverage, LongSkipRunWithEscape) {
  // 36 skipped MBs => one escape (33) + increment 4.
  const auto stream = build_wide_p_stream(36);
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  ASSERT_EQ(out.frames.size(), 2u);
  // P picture == I picture (all zero-vector copies / skips).
  EXPECT_TRUE(out.frames[1]->same_pels(*out.frames[0]));
  EXPECT_EQ(out.work.skipped_mbs, 36u);
}

TEST(SyntaxCoverage, ShortSkipRunNoEscape) {
  const auto stream = build_wide_p_stream(10);
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.work.skipped_mbs, 10u);
}

TEST(SyntaxCoverage, McNotCodedMacroblockCopies) {
  // P MBs with kMotionForward only (no pattern): pure motion copies. The
  // slice covers only MBs 0 and 1 (general — non-restricted — slice
  // structure), so compare just that region.
  const auto stream = build_wide_p_stream(0);
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  const auto& i_pic = *out.frames[0];
  const auto& p_pic = *out.frames[1];
  for (int y = 0; y < 16; ++y) {
    for (int x = 0; x < 32; ++x) {
      ASSERT_EQ(p_pic.y()[y * p_pic.y_stride() + x],
                i_pic.y()[y * i_pic.y_stride() + x])
          << x << "," << y;
    }
  }
}

TEST(SyntaxCoverage, Mpeg1StuffingIgnored) {
  // MPEG-1 stream whose slice carries macroblock_stuffing before the
  // address increment.
  BitWriter bw;
  SequenceHeader sh;
  sh.horizontal_size = 32;
  sh.vertical_size = 32;
  write_sequence_header(bw, sh);  // no extension: MPEG-1
  write_gop_header(bw, GopHeader{});
  PictureHeader ph;
  ph.type = PictureType::kI;
  write_picture_header(bw, ph);
  for (int row = 0; row < 2; ++row) {
    bw.put_startcode(static_cast<std::uint8_t>(row + 1));
    bw.put(8, 5);
    bw.put_bit(0);
    // Stuffing, twice, before the first macroblock.
    bw.put(0b00000001111, 11);
    bw.put(0b00000001111, 11);
    put_intra_mb(bw, 1, false);
    put_intra_mb(bw, 1, false);
  }
  bw.put_startcode(0xB7);
  const auto bytes = bw.take();
  const auto s = scan_structure(bytes);
  ASSERT_TRUE(s.valid);
  EXPECT_TRUE(s.mpeg1);
  Decoder dec;
  const auto out = dec.decode(bytes);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 1u);
}

TEST(SyntaxCoverage, IntraSliceFlagParsed) {
  // Slice header with the optional intra_slice syntax (first bit 1).
  BitWriter bw;
  SequenceHeader sh;
  sh.horizontal_size = 32;
  sh.vertical_size = 32;
  write_sequence_header(bw, sh);
  write_sequence_extension(bw, sh, SequenceExtension{});
  write_gop_header(bw, GopHeader{});
  PictureHeader ph;
  ph.type = PictureType::kI;
  write_picture_header(bw, ph);
  write_picture_coding_extension(bw, PictureCodingExtension{});
  for (int row = 0; row < 2; ++row) {
    bw.put_startcode(static_cast<std::uint8_t>(row + 1));
    bw.put(8, 5);      // quantiser_scale_code
    bw.put_bit(1);     // intra_slice_flag = 1
    bw.put_bit(1);     // intra_slice
    bw.put(0x7F, 7);   // reserved_bits
    bw.put_bit(1);     // extra_bit_slice = 1
    bw.put(0xAB, 8);   // extra_information_slice
    bw.put_bit(0);     // extra_bit_slice = 0
    put_intra_mb(bw, 1, false);
    put_intra_mb(bw, 1, false);
  }
  bw.put_startcode(0xB7);
  const auto bytes = bw.take();
  Decoder dec;
  const auto out = dec.decode(bytes);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames[0]->y()[0], 128);
}

TEST(SyntaxCoverage, MultipleSlicesPerRowRoundTrip) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 13;
  spec.bit_rate = 1'500'000;
  spec.slices_per_row = 3;
  const auto stream = streamgen::generate_stream(spec);
  const auto s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  EXPECT_EQ(s.gops[0].pictures[0].slices.size(), 8u * 3);
  // Three slices per row share the row code.
  EXPECT_EQ(s.gops[0].pictures[0].slices[0].row, 0);
  EXPECT_EQ(s.gops[0].pictures[0].slices[2].row, 0);
  EXPECT_EQ(s.gops[0].pictures[0].slices[3].row, 1);
  Decoder dec;
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 13u);
}

TEST(SyntaxCoverage, SlicesPerRowMatchesSingleSliceOutput) {
  // Different slice granularity, same content and quantizer: decoded
  // output may differ slightly (predictor resets), but quality must hold
  // and the parallel decoders must stay bit-exact with the sequential one.
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 13;
  spec.bit_rate = 1'500'000;
  spec.slices_per_row = 2;
  const auto stream = streamgen::generate_stream(spec);
  Decoder dec;
  std::uint64_t want = 0;
  int frames = 0;
  const auto st = dec.decode_stream(stream, [&](FramePtr f) {
    want = parallel::chain_frame_checksum(want, *f);
    ++frames;
  });
  ASSERT_TRUE(st.ok);
  EXPECT_EQ(frames, 13);
  parallel::SliceDecoderConfig cfg;
  cfg.workers = 4;
  const auto r = parallel::SliceParallelDecoder(cfg).decode(stream);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.checksum, want);
}

}  // namespace
}  // namespace pmp2::mpeg2
