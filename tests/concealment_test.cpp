// Error-concealment tests: a decoder with conceal_errors keeps playing
// through corrupt slices, patching them from the forward reference.
#include <gtest/gtest.h>

#include "bitstream/startcode.h"
#include "mpeg2/decoder.h"
#include "parallel/slice_parallel.h"
#include "streamgen/scene.h"
#include "streamgen/stream_factory.h"

namespace pmp2::mpeg2 {
namespace {

streamgen::StreamSpec spec_26() {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 26;
  spec.bit_rate = 1'500'000;
  return spec;
}

/// Stomps the whole payload of one slice (startcode kept) with 0xFF: the
/// all-ones bit pattern decodes as an endless run of small coefficients,
/// overflowing the 64-coefficient block — a guaranteed syntax error, with
/// no startcode emulation and no other slice touched.
void corrupt_slice(std::vector<std::uint8_t>& stream, int gop, int pic,
                   int slice) {
  const auto s = scan_structure(stream);
  ASSERT_TRUE(s.valid);
  const auto& info = s.gops[static_cast<std::size_t>(gop)]
                         .pictures[static_cast<std::size_t>(pic)];
  const auto offset = info.slices[static_cast<std::size_t>(slice)].offset;
  // Find the next startcode after this slice's.
  std::uint64_t end = stream.size();
  for (const auto& sc : pmp2::scan_all_startcodes(stream)) {
    if (sc.byte_offset > offset) {
      end = sc.byte_offset;
      break;
    }
  }
  for (std::uint64_t i = offset + 5; i < end; ++i) stream[i] = 0xFF;
}

TEST(Concealment, OffByDefault) {
  auto stream = streamgen::generate_stream(spec_26());
  corrupt_slice(stream, 0, 3, 4);
  Decoder dec;  // conceal_errors = false
  const auto out = dec.decode(stream);
  EXPECT_FALSE(out.ok);
}

TEST(Concealment, KeepsPlayingThroughCorruptSlice) {
  auto stream = streamgen::generate_stream(spec_26());
  corrupt_slice(stream, 0, 3, 4);
  Decoder dec(nullptr, /*conceal_errors=*/true);
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 26u);
  EXPECT_GE(out.concealed_slices, 1);
}

TEST(Concealment, CleanStreamConcealsNothing) {
  const auto stream = streamgen::generate_stream(spec_26());
  Decoder dec(nullptr, true);
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.concealed_slices, 0);
  // Concealment mode must not change the output of a clean decode.
  Decoder plain;
  const auto want = plain.decode(stream);
  ASSERT_TRUE(want.ok);
  for (std::size_t i = 0; i < want.frames.size(); ++i) {
    EXPECT_TRUE(out.frames[i]->same_pels(*want.frames[i])) << i;
  }
}

TEST(Concealment, QualityDegradesGracefully) {
  auto stream = streamgen::generate_stream(spec_26());
  corrupt_slice(stream, 0, 3, 4);  // a P picture: damage propagates
  Decoder dec(nullptr, true);
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  streamgen::SceneConfig sc;
  sc.width = 176;
  sc.height = 120;
  const streamgen::SceneGenerator scene(sc);
  // Even the damaged pictures stay recognizable (well above garbage).
  for (int i = 0; i < 26; i += 6) {
    const auto src = scene.render(i);
    EXPECT_GT(psnr_y(*src, *out.frames[static_cast<std::size_t>(i)]), 15.0)
        << i;
  }
  // And the next GOP's I picture fully recovers.
  const auto src = scene.render(13);
  EXPECT_GT(psnr_y(*src, *out.frames[13]), 28.0);
}

TEST(Concealment, IntraPictureWithoutReferenceFillsGray) {
  auto stream = streamgen::generate_stream(spec_26());
  corrupt_slice(stream, 0, 0, 2);  // slice of the very first I picture
  Decoder dec(nullptr, true);
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  ASSERT_GE(out.concealed_slices, 1);
  // Concealed rows of the first picture are mid-gray.
  const auto& f = *out.frames[0];
  int gray = 0;
  for (int x = 0; x < f.width(); ++x) {
    if (f.y()[(2 * 16 + 8) * f.y_stride() + x] == 128) ++gray;
  }
  EXPECT_GT(gray, f.width() / 2);
}

TEST(Concealment, ManyCorruptSlicesStillCompletes) {
  auto stream = streamgen::generate_stream(spec_26());
  for (int pic = 1; pic < 13; pic += 2) corrupt_slice(stream, 0, pic, 3);
  Decoder dec(nullptr, true);
  const auto out = dec.decode(stream);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.frames.size(), 26u);
  EXPECT_GE(out.concealed_slices, 3);
}

TEST(Concealment, SliceParallelDecoderConceals) {
  auto stream = streamgen::generate_stream(spec_26());
  corrupt_slice(stream, 0, 3, 4);
  parallel::SliceDecoderConfig cfg;
  cfg.workers = 3;
  cfg.conceal_errors = true;
  int frames = 0;
  const auto r = parallel::SliceParallelDecoder(cfg).decode(
      stream, [&](FramePtr) { ++frames; });
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(frames, 26);
  EXPECT_GE(r.concealed_slices, 1);
}

TEST(Concealment, SliceParallelMatchesSequentialConcealment) {
  auto stream = streamgen::generate_stream(spec_26());
  corrupt_slice(stream, 0, 3, 4);
  Decoder seq(nullptr, true);
  const auto want = seq.decode(stream);
  ASSERT_TRUE(want.ok);
  parallel::SliceDecoderConfig cfg;
  cfg.workers = 4;
  cfg.conceal_errors = true;
  std::vector<FramePtr> got;
  const auto r = parallel::SliceParallelDecoder(cfg).decode(
      stream, [&](FramePtr f) { got.push_back(std::move(f)); });
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(got.size(), want.frames.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i]->same_pels(*want.frames[i])) << i;
  }
}

TEST(Concealment, SliceParallelWithoutConcealmentStillFails) {
  auto stream = streamgen::generate_stream(spec_26());
  corrupt_slice(stream, 0, 3, 4);
  parallel::SliceDecoderConfig cfg;
  cfg.workers = 3;
  const auto r = parallel::SliceParallelDecoder(cfg).decode(stream);
  EXPECT_FALSE(r.ok);
}

}  // namespace
}  // namespace pmp2::mpeg2
