// Tests for the post-mortem analysis library (src/obs/analysis): timeline
// loaders (journal + Chrome round-trips), the analyzer against the
// simulator's own load summary, the critical-path walk, the drift
// detector, and bench-report comparison/aggregation.
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/analysis/analyzer.h"
#include "obs/analysis/bench_compare.h"
#include "obs/analysis/drift.h"
#include "obs/analysis/timeline.h"
#include "obs/json_parse.h"
#include "obs/report.h"
#include "obs/tracer.h"
#include "sched/profile.h"
#include "sched/sim.h"

namespace pmp2 {
namespace {

using obs::SpanKind;
using obs::Tracer;
namespace analysis = obs::analysis;

// Synthetic profile: `gops` x `pics` x `slices` with mildly varying
// per-slice costs (deterministic), calibrated at `ns_per_unit`.
sched::StreamProfile make_profile(int gops, int pics, int slices,
                                  std::uint64_t base_units = 1000,
                                  double ns_per_unit = 2000.0) {
  sched::StreamProfile p;
  p.ok = true;
  p.width = 352;
  p.height = 240;
  p.slices_per_picture = slices;
  p.ns_per_unit = ns_per_unit;
  p.frame_rate = 30.0;
  int k = 0;
  for (int g = 0; g < gops; ++g) {
    sched::GopCost gc;
    gc.stream_bytes = 50'000;
    for (int i = 0; i < pics; ++i) {
      sched::PictureCost pc;
      pc.type = i == 0 ? mpeg2::PictureType::kI : mpeg2::PictureType::kP;
      pc.temporal_reference = i;
      for (int s = 0; s < slices; ++s, ++k) {
        sched::SliceCost sc;
        sc.units = base_units + static_cast<std::uint64_t>(37 * k % 211);
        sc.ns = static_cast<std::int64_t>(static_cast<double>(sc.units) *
                                          ns_per_unit);
        pc.slices.push_back(sc);
      }
      gc.pictures.push_back(pc);
    }
    p.stream_bytes += gc.stream_bytes;
    p.gops.push_back(std::move(gc));
  }
  p.scan_ns = static_cast<std::int64_t>(p.stream_bytes / 10);  // fast scan
  return p;
}

// --- Timeline loaders -----------------------------------------------------

TEST(Timeline, JournalRoundTripPreservesSpansNamesAndIds) {
  Tracer tracer(3);
  tracer.track(2).set_name("scan");
  tracer.emit(0, SpanKind::kSliceTask, 1000, 5000, 7, 2, -1);
  tracer.emit(0, SpanKind::kQueueWait, 5000, 6000);
  tracer.emit(1, SpanKind::kGopTask, 0, 9000, -1, -1, 3);
  tracer.emit(2, SpanKind::kScan, 0, 2500);

  std::stringstream ss;
  tracer.write_journal(ss);
  const analysis::Timeline tl = analysis::load_journal(ss);
  ASSERT_TRUE(tl.ok) << tl.error;
  ASSERT_EQ(tl.tracks.size(), 3u);
  // Unnamed tracks get the same fallback the live snapshot uses.
  EXPECT_EQ(tl.tracks[0].name, "worker 0");
  EXPECT_EQ(tl.tracks[1].name, "worker 1");
  EXPECT_EQ(tl.tracks[2].name, "scan");
  EXPECT_EQ(tl.total_spans(), 4u);
  EXPECT_FALSE(tl.lossy());

  ASSERT_EQ(tl.tracks[0].spans.size(), 2u);
  const obs::Span& s0 = tl.tracks[0].spans[0];
  EXPECT_EQ(s0.kind, SpanKind::kSliceTask);
  EXPECT_EQ(s0.begin_ns, 1000);
  EXPECT_EQ(s0.end_ns, 5000);
  EXPECT_EQ(s0.picture, 7);
  EXPECT_EQ(s0.slice, 2);
  EXPECT_EQ(s0.gop, -1);
  EXPECT_EQ(tl.tracks[0].spans[1].kind, SpanKind::kQueueWait);
  EXPECT_EQ(tl.tracks[1].spans[0].gop, 3);
  EXPECT_EQ(tl.tracks[2].spans[0].kind, SpanKind::kScan);
}

TEST(Timeline, JournalRoundTripPreservesDropAccounting) {
  Tracer tracer(1, /*capacity_per_track=*/4);
  for (int i = 0; i < 10; ++i) {
    tracer.emit(0, SpanKind::kSliceTask, i * 100, i * 100 + 50, i, 0, -1);
  }
  ASSERT_EQ(tracer.total_dropped(), 6u);

  std::stringstream ss;
  tracer.write_journal(ss);
  const analysis::Timeline tl = analysis::load_journal(ss);
  ASSERT_TRUE(tl.ok) << tl.error;
  EXPECT_EQ(tl.tracks[0].emitted, 10u);
  EXPECT_EQ(tl.tracks[0].dropped, 6u);
  EXPECT_EQ(tl.tracks[0].spans.size(), 4u);
  EXPECT_TRUE(tl.lossy());

  // The analyzer must surface the loss instead of silently under-counting.
  const analysis::Analysis a = analysis::analyze(tl);
  ASSERT_TRUE(a.ok) << a.error;
  ASSERT_FALSE(a.warnings.empty());
  EXPECT_NE(a.warnings[0].find("lossy"), std::string::npos);
}

TEST(Timeline, JournalLoaderRejectsGarbage) {
  std::stringstream ss("NOTAJRNL-and-then-some-bytes");
  const analysis::Timeline tl = analysis::load_journal(ss);
  EXPECT_FALSE(tl.ok);
  EXPECT_FALSE(tl.error.empty());
}

TEST(Timeline, ChromeTraceRoundTripMatchesLiveSnapshot) {
  // Chrome export stores microsecond doubles: use multiples of 1000 ns so
  // the round-trip is exact and comparable span for span.
  Tracer tracer(2);
  tracer.track(1).set_name("scan");
  tracer.emit(0, SpanKind::kSliceTask, 5000, 125000, 3, 1, -1);
  tracer.emit(0, SpanKind::kBarrierWait, 125000, 180000);
  tracer.emit(1, SpanKind::kScan, 0, 90000);

  std::stringstream ss;
  tracer.write_chrome_trace(ss);
  const analysis::Timeline loaded = analysis::load_chrome_trace(ss.str());
  ASSERT_TRUE(loaded.ok) << loaded.error;
  const analysis::Timeline live = analysis::from_tracer(tracer);

  ASSERT_EQ(loaded.tracks.size(), live.tracks.size());
  for (std::size_t t = 0; t < live.tracks.size(); ++t) {
    EXPECT_EQ(loaded.tracks[t].name, live.tracks[t].name);
    ASSERT_EQ(loaded.tracks[t].spans.size(), live.tracks[t].spans.size());
    for (std::size_t i = 0; i < live.tracks[t].spans.size(); ++i) {
      const obs::Span& a = loaded.tracks[t].spans[i];
      const obs::Span& b = live.tracks[t].spans[i];
      EXPECT_EQ(a.kind, b.kind);
      EXPECT_EQ(a.begin_ns, b.begin_ns);
      EXPECT_EQ(a.end_ns, b.end_ns);
      EXPECT_EQ(a.picture, b.picture);
      EXPECT_EQ(a.slice, b.slice);
      EXPECT_EQ(a.gop, b.gop);
    }
  }
}

// --- Analyzer vs simulator ------------------------------------------------

// The acceptance bar for pmp2_analyze: analyzing a traced run must
// reproduce the run's own Fig. 7 / Fig. 12 quantities (speedup, sync
// ratio) within 2%. The slice simulator charges queue overhead to busy
// time but not to the task span, so it is zeroed for an exact comparison.
TEST(Analyzer, MatchesSliceSimLoadSummaryAt14Workers) {
  const auto profile = make_profile(8, 6, 28);
  sched::SimConfig cfg;
  cfg.workers = 14;
  cfg.queue_overhead_ns = 0;
  cfg.picture_overhead_ns = 0;
  Tracer tracer(cfg.workers);
  cfg.tracer = &tracer;
  const sched::SimResult r =
      sched::simulate_slice(profile, cfg, parallel::SlicePolicy::kImproved);
  const parallel::WorkerLoadSummary sim = r.load_summary();

  const analysis::Analysis a = analysis::analyze(analysis::from_tracer(tracer));
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.worker_tracks, 14);
  EXPECT_EQ(a.speedup_ideal, 14.0);

  const double sim_speedup = sim.utilization * sim.workers;
  EXPECT_NEAR(a.speedup_actual, sim_speedup, 0.02 * sim_speedup);
  EXPECT_NEAR(a.load.sync_ratio, sim.sync_ratio,
              0.02 * sim.sync_ratio + 1e-6);
  EXPECT_NEAR(static_cast<double>(a.total_busy_ns),
              static_cast<double>(sim.total_busy_ns),
              0.02 * static_cast<double>(sim.total_busy_ns));
  EXPECT_NEAR(static_cast<double>(a.makespan_ns),
              static_cast<double>(r.makespan_ns),
              0.02 * static_cast<double>(r.makespan_ns));
}

TEST(Analyzer, MatchesGopSimLoadSummaryAt14Workers) {
  const auto profile = make_profile(28, 4, 4);
  sched::SimConfig cfg;
  cfg.workers = 14;
  Tracer tracer(cfg.workers);
  cfg.tracer = &tracer;
  const sched::SimResult r = sched::simulate_gop(profile, cfg);
  const parallel::WorkerLoadSummary sim = r.load_summary();

  const analysis::Analysis a = analysis::analyze(analysis::from_tracer(tracer));
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.worker_tracks, 14);
  EXPECT_EQ(a.gops, 28);

  const double sim_speedup = sim.utilization * sim.workers;
  EXPECT_NEAR(a.speedup_actual, sim_speedup, 0.02 * sim_speedup);
  EXPECT_NEAR(a.load.sync_ratio, sim.sync_ratio,
              0.02 * sim.sync_ratio + 1e-6);
  EXPECT_NEAR(static_cast<double>(a.makespan_ns),
              static_cast<double>(r.makespan_ns),
              0.02 * static_cast<double>(r.makespan_ns));
}

// The ISSUE 4 acceptance bar for the input stage: with the scan process
// traced (workers + 1 tracks), the critical path reports how much serial
// scan time gates the workers, and the streaming demux (overlapped scan)
// must shrink that input-stage share versus the upfront front-end.
TEST(Analyzer, OverlappedScanShrinksCriticalInputAt14Workers) {
  const auto profile = make_profile(28, 4, 4);
  sched::SimConfig cfg;
  cfg.workers = 14;
  // Slow the scan to a tenth of the default so the input stage is a
  // visible fraction of the makespan (scan_ns = stream_bytes).
  cfg.scan_bytes_per_ns =
      static_cast<double>(profile.stream_bytes) /
      (10.0 * static_cast<double>(profile.scan_ns));

  auto analyze_with = [&](bool upfront, sched::SimResult* result) {
    Tracer tracer(cfg.workers + 1);  // extra track records the scan process
    sched::SimConfig run = cfg;
    run.upfront_scan = upfront;
    run.tracer = &tracer;
    *result = sched::simulate_gop(profile, run);
    return analysis::analyze(analysis::from_tracer(tracer));
  };

  sched::SimResult upfront_r, overlap_r;
  const analysis::Analysis upfront = analyze_with(true, &upfront_r);
  const analysis::Analysis overlap = analyze_with(false, &overlap_r);
  ASSERT_TRUE(upfront.ok) << upfront.error;
  ASSERT_TRUE(overlap.ok) << overlap.error;

  // The scan track is a process track, not a worker.
  EXPECT_EQ(upfront.worker_tracks, 14);
  EXPECT_EQ(overlap.worker_tracks, 14);

  // Upfront: no worker starts until the whole stream is scanned, so the
  // full scan sits on the critical path. Overlapped: only the prefix up to
  // the last task a worker actually waited for can appear.
  EXPECT_GT(upfront.critical_input_ns, 0);
  EXPECT_LT(overlap.critical_input_ns, upfront.critical_input_ns);
  EXPECT_LT(overlap_r.makespan_ns, upfront_r.makespan_ns);

  // The load summary over worker tracks still matches the sim's own.
  const parallel::WorkerLoadSummary sim = overlap_r.load_summary();
  EXPECT_NEAR(overlap.load.sync_ratio, sim.sync_ratio,
              0.02 * sim.sync_ratio + 1e-6);
}

TEST(Analyzer, CriticalPathWalksAcrossWaits) {
  // worker 0: task A [0, 100us]. worker 1: waits for A, then task B
  // [100us, 200us]. Critical path = A -> B: all busy time is serial.
  Tracer tracer(2);
  tracer.emit(0, SpanKind::kSliceTask, 0, 100'000, 0, 0, -1);
  tracer.emit(1, SpanKind::kQueueWait, 0, 100'000);
  tracer.emit(1, SpanKind::kSliceTask, 100'000, 200'000, 0, 1, -1);

  const analysis::Analysis a = analysis::analyze(analysis::from_tracer(tracer));
  ASSERT_TRUE(a.ok) << a.error;
  EXPECT_EQ(a.makespan_ns, 200'000);
  EXPECT_EQ(a.total_busy_ns, 200'000);
  EXPECT_EQ(a.critical_spans, 2u);
  EXPECT_EQ(a.critical_busy_ns, 200'000);
  EXPECT_DOUBLE_EQ(a.parallelism, 1.0);
  EXPECT_DOUBLE_EQ(a.speedup_actual, 1.0);
  EXPECT_EQ(a.total_wait.queue_ns, 100'000);
  EXPECT_EQ(a.total_wait.barrier_ns, 0);

  // Graham bound: the serial chain caps every what-if at T1.
  bool saw_n1 = false;
  for (const analysis::WhatIf& w : a.what_if) {
    EXPECT_EQ(w.projected_ns, 200'000) << "N=" << w.workers;
    if (w.workers == 1) saw_n1 = true;
  }
  EXPECT_TRUE(saw_n1);
}

TEST(Analyzer, JsonOutputParsesWithDeclaredSchema) {
  Tracer tracer(2);
  tracer.emit(0, SpanKind::kSliceTask, 0, 50'000, 0, 0, -1);
  tracer.emit(1, SpanKind::kSliceTask, 0, 50'000, 0, 1, -1);
  const analysis::Analysis a = analysis::analyze(analysis::from_tracer(tracer));
  ASSERT_TRUE(a.ok);

  std::ostringstream os;
  analysis::write_analysis_json(os, a);
  obs::JsonValue doc;
  std::string err;
  ASSERT_TRUE(obs::json_parse(os.str(), doc, &err)) << err;
  const obs::JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), "pmp2-analysis/1");
  const obs::JsonValue* makespan = doc.find("makespan_ns");
  ASSERT_NE(makespan, nullptr);
  EXPECT_EQ(makespan->as_int(), 50'000);
}

// --- Drift detector -------------------------------------------------------

// Emits one slice span per profile slice, `actual = predicted * factor(k)`.
template <typename FactorFn>
analysis::Timeline trace_from_profile(const sched::StreamProfile& profile,
                                      Tracer& tracer, FactorFn factor) {
  std::int64_t t = 0;
  int pic = 0;  // global decode-order picture index (slice span convention)
  int k = 0;
  for (const auto& g : profile.gops) {
    for (const auto& p : g.pictures) {
      for (std::size_t s = 0; s < p.slices.size(); ++s, ++k) {
        const std::int64_t cost = static_cast<std::int64_t>(
            static_cast<double>(p.slices[s].ns) * factor(k));
        tracer.emit(0, SpanKind::kSliceTask, t, t + cost, pic,
                    static_cast<int>(s), -1);
        t += cost;
      }
      ++pic;
    }
  }
  return analysis::from_tracer(tracer);
}

TEST(Drift, CleanTracePassesAndFitsScale) {
  const auto profile = make_profile(2, 3, 4);
  Tracer tracer(1);
  const auto tl = trace_from_profile(profile, tracer, [](int) { return 1.0; });

  const analysis::DriftReport r = analysis::detect_drift(tl, profile);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.slice_granularity);
  EXPECT_EQ(r.matched_tasks, 24);
  EXPECT_EQ(r.flagged_total, 0);
  EXPECT_TRUE(r.passed());
  // actual == units * ns_per_unit, so the fitted scale is the calibration.
  EXPECT_NEAR(r.scale, profile.ns_per_unit, 0.01 * profile.ns_per_unit);
  EXPECT_LT(r.mean_abs_rel_error, 1e-6);
  EXPECT_LT(r.median_abs_rel_error, 1e-6);
}

TEST(Drift, FlagsTheOneDoubledSlice) {
  const auto profile = make_profile(2, 3, 4);
  Tracer tracer(1);
  // Slice #18 = gop 1, picture 1 (local), slice 2 runs at twice its
  // predicted cost; everything else matches the model.
  const int doubled = (1 * 3 + 1) * 4 + 2;
  const auto tl = trace_from_profile(
      profile, tracer, [&](int k) { return k == doubled ? 2.0 : 1.0; });

  analysis::DriftOptions opts;
  opts.tolerance = 0.5;
  opts.outlier_fraction = 0.0;  // no outlier absolution: one flag must fail
  const analysis::DriftReport r = analysis::detect_drift(tl, profile, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.matched_tasks, 24);
  EXPECT_EQ(r.flagged_total, 1);
  EXPECT_EQ(r.allowed_outliers, 0);
  EXPECT_FALSE(r.passed());
  ASSERT_EQ(r.flagged.size(), 1u);
  EXPECT_EQ(r.flagged[0].gop, 1);
  EXPECT_EQ(r.flagged[0].slice, 2);
  // One doubled slice among 24 barely moves the median fit, so the
  // flagged task's relative error sits near +1.0.
  EXPECT_NEAR(r.flagged[0].rel_error, 1.0, 0.1);
}

TEST(Drift, MeasuredBasisUsesProfileNanoseconds) {
  // Give the units model the wrong shape (ns not proportional to units):
  // the measured basis must still fit perfectly.
  auto profile = make_profile(2, 2, 4);
  std::int64_t bump = 0;
  for (auto& g : profile.gops) {
    for (auto& p : g.pictures) {
      for (auto& s : p.slices) s.ns += (bump += 500'000);
    }
  }
  Tracer tracer(1);
  const auto tl = trace_from_profile(profile, tracer, [](int) { return 1.0; });

  analysis::DriftOptions opts;
  opts.measured = true;
  const analysis::DriftReport r = analysis::detect_drift(tl, profile, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.measured);
  EXPECT_EQ(r.flagged_total, 0);
  EXPECT_TRUE(r.passed());
  EXPECT_LT(r.mean_abs_rel_error, 1e-6);
}

// --- Bench-report comparison and aggregation ------------------------------

obs::RunReport make_bench_report(double pps, double wall_s,
                                 bool drop_last_row = false) {
  obs::RunReport r("bench_fake", "synthetic comparison fixture");
  r.set_meta("workers", 14);
  r.add_row()
      .set("workers", 14)
      .set("policy", "improved")
      .set("pictures_per_second", pps)
      .set("wall_s", wall_s);
  if (!drop_last_row) {
    r.add_row()
        .set("workers", 14)
        .set("policy", "simple")
        .set("pictures_per_second", pps * 0.6)
        .set("wall_s", wall_s * 1.5);
  }
  return r;
}

obs::JsonValue parse_report(const obs::RunReport& r) {
  std::ostringstream os;
  r.write_json(os);
  obs::JsonValue doc;
  std::string err;
  EXPECT_TRUE(obs::json_parse(os.str(), doc, &err)) << err;
  return doc;
}

TEST(BenchCompare, MetricFieldClassification) {
  EXPECT_TRUE(analysis::is_metric_field("pictures_per_second"));
  EXPECT_TRUE(analysis::is_metric_field("decode_ns"));
  EXPECT_TRUE(analysis::is_metric_field("wall_s"));
  EXPECT_TRUE(analysis::is_metric_field("stream_bytes"));
  EXPECT_TRUE(analysis::is_metric_field("sync_ratio"));
  EXPECT_TRUE(analysis::is_metric_field("ns_per_op"));
  EXPECT_FALSE(analysis::is_metric_field("workers"));
  EXPECT_FALSE(analysis::is_metric_field("gop_size"));
  EXPECT_FALSE(analysis::is_metric_field("line_size"));
  EXPECT_FALSE(analysis::is_metric_field("policy"));

  EXPECT_TRUE(analysis::metric_higher_is_better("pictures_per_second"));
  EXPECT_TRUE(analysis::metric_higher_is_better("gop_speedup"));
  EXPECT_FALSE(analysis::metric_higher_is_better("decode_ns"));
  EXPECT_FALSE(analysis::metric_higher_is_better("wall_s"));
}

TEST(BenchCompare, DetectsRegressionBeyondTolerance) {
  // 12% throughput drop against the default 10% tolerance.
  const obs::JsonValue baseline = parse_report(make_bench_report(100.0, 1.0));
  const obs::JsonValue candidate = parse_report(make_bench_report(88.0, 1.0));
  const analysis::CompareResult r =
      analysis::compare_reports(baseline, candidate);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.rows, 2);
  ASSERT_FALSE(r.regressions.empty());
  EXPECT_FALSE(r.passed());
  bool saw_pps = false;
  for (const analysis::MetricDiff& d : r.regressions) {
    if (d.metric == "pictures_per_second") {
      saw_pps = true;
      EXPECT_NEAR(d.rel_delta, -0.12, 1e-9);
      EXPECT_TRUE(d.higher_better);
    }
  }
  EXPECT_TRUE(saw_pps);
}

TEST(BenchCompare, TenPercentRegressionFailsAtTighterTolerance) {
  // The documented gate for sim-driven (deterministic) metrics: a clean
  // 10% drop must fail when the tolerance is tightened below it.
  const obs::JsonValue baseline = parse_report(make_bench_report(100.0, 1.0));
  const obs::JsonValue candidate = parse_report(make_bench_report(90.0, 1.0));
  analysis::CompareOptions opts;
  opts.default_tolerance = 0.05;
  const analysis::CompareResult r =
      analysis::compare_reports(baseline, candidate, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.passed());
  // And passes inside the default 10% band when the drop is small.
  const obs::JsonValue near = parse_report(make_bench_report(96.0, 1.0));
  EXPECT_TRUE(analysis::compare_reports(baseline, near).passed());
}

TEST(BenchCompare, LowerIsBetterMetricRegressesUpward) {
  const obs::JsonValue baseline = parse_report(make_bench_report(100.0, 1.0));
  const obs::JsonValue candidate = parse_report(make_bench_report(100.0, 1.2));
  const analysis::CompareResult r =
      analysis::compare_reports(baseline, candidate);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_FALSE(r.passed());
  ASSERT_FALSE(r.regressions.empty());
  EXPECT_EQ(r.regressions[0].metric, "wall_s");
  EXPECT_FALSE(r.regressions[0].higher_better);
}

TEST(BenchCompare, AdvisoryMetricsDemoteRegressionsButNotCoverage) {
  // The CI bench stage's mode: metric deltas are listed but never fail.
  const obs::JsonValue baseline = parse_report(make_bench_report(100.0, 1.0));
  const obs::JsonValue worse = parse_report(make_bench_report(50.0, 3.0));
  analysis::CompareOptions opts;
  opts.advisory_metrics = true;
  const analysis::CompareResult r =
      analysis::compare_reports(baseline, worse, opts);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.regressions.empty());
  ASSERT_FALSE(r.advisories.empty());
  EXPECT_TRUE(r.passed());
  // Identity stays strict: a vanished row still fails in advisory mode.
  const obs::JsonValue fewer =
      parse_report(make_bench_report(100.0, 1.0, /*drop_last_row=*/true));
  const analysis::CompareResult lost =
      analysis::compare_reports(baseline, fewer, opts);
  ASSERT_TRUE(lost.ok) << lost.error;
  EXPECT_FALSE(lost.coverage_loss.empty());
  EXPECT_FALSE(lost.passed());
}

TEST(BenchCompare, MissingBaselineRowIsCoverageLoss) {
  const obs::JsonValue baseline = parse_report(make_bench_report(100.0, 1.0));
  const obs::JsonValue candidate =
      parse_report(make_bench_report(100.0, 1.0, /*drop_last_row=*/true));
  const analysis::CompareResult r =
      analysis::compare_reports(baseline, candidate);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_TRUE(r.regressions.empty());
  ASSERT_FALSE(r.coverage_loss.empty());
  EXPECT_FALSE(r.passed());
}

TEST(BenchCompare, SuiteAggregationRoundTrips) {
  obs::RunReport a("bench_alpha", "first");
  a.add_row().set("workers", 2).set("speedup", 1.9);
  obs::RunReport b("bench_beta", "second");
  b.add_row().set("workers", 4).set("speedup", 3.4);
  std::ostringstream ja, jb;
  a.write_json(ja);
  b.write_json(jb);

  std::ostringstream suite;
  std::string err;
  ASSERT_TRUE(analysis::write_suite(
      suite,
      {{"a.json", ja.str()}, {"b.json", jb.str()}},
      &err))
      << err;

  obs::JsonValue doc;
  ASSERT_TRUE(obs::json_parse(suite.str(), doc, &err)) << err;
  const obs::JsonValue* schema = doc.find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->as_string(), analysis::kSuiteSchema);
  const obs::JsonValue* reports = doc.find("reports");
  ASSERT_NE(reports, nullptr);
  EXPECT_EQ(reports->items.size(), 2u);

  // A suite compared against itself is clean and covers both reports.
  const analysis::CompareResult cmp = analysis::compare_reports(doc, doc);
  ASSERT_TRUE(cmp.ok) << cmp.error;
  EXPECT_TRUE(cmp.passed());
  EXPECT_EQ(cmp.reports, 2);
  EXPECT_EQ(cmp.rows, 2);
}

TEST(BenchCompare, SuiteRejectsNonReportDocuments) {
  std::ostringstream suite;
  std::string err;
  EXPECT_FALSE(analysis::write_suite(
      suite, {{"bogus.json", "{\"schema\":\"not-a-bench-report\"}"}}, &err));
  EXPECT_FALSE(err.empty());
}

}  // namespace
}  // namespace pmp2
