#include <gtest/gtest.h>

#include "io/program_stream.h"
#include "mpeg2/decoder.h"
#include "streamgen/stream_factory.h"
#include "util/rng.h"

namespace pmp2::io {
namespace {

std::vector<std::uint8_t> small_es() {
  streamgen::StreamSpec spec;
  spec.width = 64;
  spec.height = 48;
  spec.pictures = 8;
  spec.gop_size = 4;
  spec.bit_rate = 800'000;
  return streamgen::generate_stream(spec);
}

TEST(ProgramStream, MuxDemuxRoundTrip) {
  const auto es = small_es();
  const auto ps = ps_mux(es);
  EXPECT_TRUE(looks_like_program_stream(ps));
  EXPECT_FALSE(looks_like_program_stream(es));
  const PsDemuxResult out = ps_demux(ps);
  ASSERT_TRUE(out.ok);
  EXPECT_GT(out.packs, 0);
  EXPECT_GT(out.pes_packets, 1);
  ASSERT_EQ(out.video.size(), es.size());
  EXPECT_EQ(out.video, es);
}

TEST(ProgramStream, DemuxedStreamDecodes) {
  const auto es = small_es();
  const auto ps = ps_mux(es);
  const PsDemuxResult out = ps_demux(ps);
  ASSERT_TRUE(out.ok);
  mpeg2::Decoder dec;
  const auto decoded = dec.decode(out.video);
  ASSERT_TRUE(decoded.ok);
  EXPECT_EQ(decoded.frames.size(), 8u);
}

TEST(ProgramStream, PayloadSizeRespected) {
  const auto es = small_es();
  PsMuxConfig cfg;
  cfg.pes_payload = 512;
  const auto ps = ps_mux(es, cfg);
  const PsDemuxResult out = ps_demux(ps);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.video, es);
  EXPECT_GE(out.pes_packets,
            static_cast<int>(es.size() / cfg.pes_payload));
}

TEST(ProgramStream, MultiplePacketsPerPack) {
  const auto es = small_es();
  PsMuxConfig cfg;
  cfg.pes_payload = 1024;
  cfg.packets_per_pack = 4;
  const auto ps = ps_mux(es, cfg);
  const PsDemuxResult out = ps_demux(ps);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.video, es);
  EXPECT_LT(out.packs, out.pes_packets);
}

TEST(ProgramStream, StartcodeEmulationInPayloadIsHarmless) {
  // An "elementary stream" full of 0x000001BA patterns must survive the
  // container because the demuxer navigates by length fields.
  std::vector<std::uint8_t> nasty;
  for (int i = 0; i < 500; ++i) {
    nasty.push_back(0x00);
    nasty.push_back(0x00);
    nasty.push_back(0x01);
    nasty.push_back(0xBA);
  }
  const auto ps = ps_mux(nasty);
  const PsDemuxResult out = ps_demux(ps);
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.video, nasty);
}

TEST(ProgramStream, GarbageRejected) {
  Rng rng(3);
  std::vector<std::uint8_t> garbage(4096);
  for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.next_below(256));
  const PsDemuxResult out = ps_demux(garbage);
  EXPECT_FALSE(out.ok);
}

TEST(ProgramStream, TruncationHandled) {
  const auto es = small_es();
  auto ps = ps_mux(es);
  ps.resize(ps.size() / 2);
  const PsDemuxResult out = ps_demux(ps);
  // May salvage a prefix but must not crash or over-read.
  EXPECT_LE(out.video.size(), es.size());
}

TEST(ProgramStream, EmptyInput) {
  const auto ps = ps_mux({});
  const PsDemuxResult out = ps_demux(ps);
  // End code only: parses cleanly with zero payload.
  EXPECT_TRUE(out.ok);
  EXPECT_TRUE(out.video.empty());
}

}  // namespace
}  // namespace pmp2::io
