// Adaptive granularity scheduler tests: the dispatch-policy arithmetic
// (steal order, cost EWMA, explode decision), the frame-latency objective,
// the virtual-time simulator's determinism and work conservation, and the
// hybrid decoder's core guarantee — dispatch mode is invisible in the
// output. The checksum matrix asserts adaptive == gop == slice byte-
// identically on every Table-1 stream shape, clean and under injected
// faults; the stress test exercises the work-stealing paths under
// contention (also run under TSan via scripts/ci.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "bitstream/startcode.h"
#include "inject/fault.h"
#include "mpeg2/decoder.h"
#include "parallel/adaptive/adaptive_decoder.h"
#include "parallel/display.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "sched/adaptive.h"
#include "sched/profile.h"
#include "streamgen/stream_factory.h"

namespace pmp2 {
namespace {

using parallel::AdaptiveDecoder;
using parallel::AdaptiveDecoderConfig;
using parallel::GopDecoderConfig;
using parallel::GopParallelDecoder;
using parallel::RunResult;
using parallel::SliceDecoderConfig;
using parallel::SliceParallelDecoder;

// ---------------------------------------------------------------------------
// steal_order: deterministic, index-based victim selection.

TEST(StealOrder, CoversEveryOtherWorkerExactlyOnce) {
  for (int workers : {2, 3, 4, 8, 14}) {
    for (int self = 0; self < workers; ++self) {
      const auto order = sched::steal_order(self, workers);
      ASSERT_EQ(order.size(), static_cast<std::size_t>(workers - 1));
      std::set<int> seen(order.begin(), order.end());
      EXPECT_EQ(seen.size(), order.size()) << "duplicates for self=" << self;
      EXPECT_EQ(seen.count(self), 0u) << "self-steal for self=" << self;
      for (const int v : order) {
        EXPECT_GE(v, 0);
        EXPECT_LT(v, workers);
      }
    }
  }
}

TEST(StealOrder, StartsAtNextWorkerAndWraps) {
  const auto order = sched::steal_order(2, 4);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 3);
  EXPECT_EQ(order[1], 0);
  EXPECT_EQ(order[2], 1);
}

TEST(StealOrder, DeterministicAcrossCalls) {
  EXPECT_EQ(sched::steal_order(5, 14), sched::steal_order(5, 14));
}

TEST(StealOrder, SingleWorkerHasNoVictims) {
  EXPECT_TRUE(sched::steal_order(0, 1).empty());
  EXPECT_TRUE(sched::steal_order(0, 0).empty());
}

// ---------------------------------------------------------------------------
// CostEwma + should_explode: the dispatch decision.

TEST(AdaptivePolicy, EwmaStartsUncalibratedThenTracksRate) {
  sched::CostEwma ewma;
  EXPECT_EQ(ewma.predict(1000), -1);
  EXPECT_EQ(ewma.average_ns(), -1);
  ewma.observe(10'000, 1'000);  // 10 ns/byte
  EXPECT_EQ(ewma.predict(2'000), 20'000);
  EXPECT_EQ(ewma.average_ns(), 10'000);
  // Second observation at 20 ns/byte with alpha 0.3: 0.7*10 + 0.3*20 = 13.
  ewma.observe(20'000, 1'000);
  EXPECT_EQ(ewma.predict(1'000), 13'000);
  EXPECT_EQ(ewma.average_ns(), 15'000);
  EXPECT_EQ(ewma.observations(), 2);
}

TEST(AdaptivePolicy, EwmaIgnoresDegenerateObservations) {
  sched::CostEwma ewma;
  ewma.observe(0, 1'000);
  ewma.observe(1'000, 0);
  ewma.observe(-5, 1'000);
  EXPECT_EQ(ewma.observations(), 0);
  EXPECT_EQ(ewma.predict(1'000), -1);
}

TEST(AdaptivePolicy, ExplodesWhenUncalibrated) {
  sched::AdaptivePolicy policy;
  sched::CostEwma ewma;  // no observations
  EXPECT_TRUE(sched::should_explode(policy, 4, 100, ewma, 1'000));
}

TEST(AdaptivePolicy, ExplodesWhenQueueShallow) {
  sched::AdaptivePolicy policy;
  sched::CostEwma ewma;
  ewma.observe(10'000, 1'000);
  // Depth threshold defaults to the worker count.
  EXPECT_TRUE(sched::should_explode(policy, 4, 3, ewma, 1'000));
  EXPECT_FALSE(sched::should_explode(policy, 4, 4, ewma, 1'000));
  policy.depth_threshold = 2;
  EXPECT_FALSE(sched::should_explode(policy, 4, 3, ewma, 1'000));
  EXPECT_TRUE(sched::should_explode(policy, 4, 1, ewma, 1'000));
}

TEST(AdaptivePolicy, ExplodesPredictedStragglers) {
  sched::AdaptivePolicy policy;  // cost_factor 2.0
  sched::CostEwma ewma;
  ewma.observe(10'000, 1'000);  // avg 10'000 ns, 10 ns/byte
  // Deep queue, cheap GOP: run whole.
  EXPECT_FALSE(sched::should_explode(policy, 4, 10, ewma, 1'000));
  // A GOP predicted at >2x the average cost is a straggler: explode.
  EXPECT_TRUE(sched::should_explode(policy, 4, 10, ewma, 2'100));
}

// ---------------------------------------------------------------------------
// Frame-latency objective: percentile math over the recorded latencies.

TEST(AdaptiveLatencyObjective, PercentileInterpolatesOrderStatistics) {
  sched::SimResult r;
  r.frame_latency_ns = {40, 10, 30, 20};  // unsorted on purpose
  EXPECT_EQ(r.latency_percentile(0), 10);
  EXPECT_EQ(r.latency_percentile(100), 40);
  // q=50 over 4 samples: rank 1.5 -> 20 + 0.5*(30-20) = 25.
  EXPECT_EQ(r.latency_percentile(50), 25);
  // q=99 over 4 samples: rank 2.97 -> 30 + 0.97*(40-30) = 39 (truncated).
  EXPECT_EQ(r.latency_percentile(99), 39);
}

TEST(AdaptiveLatencyObjective, EmptyAndSingletonAreWellDefined) {
  sched::SimResult r;
  EXPECT_EQ(r.latency_percentile(99), 0);
  r.frame_latency_ns = {7};
  EXPECT_EQ(r.latency_percentile(0), 7);
  EXPECT_EQ(r.latency_percentile(99), 7);
  EXPECT_EQ(r.latency_percentile(100), 7);
}

// ---------------------------------------------------------------------------
// simulate_adaptive: deterministic, work-conserving, accounts every GOP.

const sched::StreamProfile& sim_profile() {
  static const sched::StreamProfile p = [] {
    streamgen::StreamSpec spec;
    spec.width = 176;
    spec.height = 120;
    spec.gop_size = 13;
    spec.pictures = 39;
    spec.bit_rate = 1'500'000;
    const auto stream = streamgen::generate_stream(spec);
    return sched::profile_stream(stream);
  }();
  return p;
}

TEST(AdaptiveSim, DeterministicAndWorkConserving) {
  const auto& p = sim_profile();
  ASSERT_TRUE(p.ok);
  sched::SimConfig cfg;
  cfg.workers = 4;
  cfg.measured_costs = false;
  const sched::AdaptivePolicy policy;
  const auto a = sched::simulate_adaptive(p, cfg, policy);
  const auto b = sched::simulate_adaptive(p, cfg, policy);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.gop_mode_gops, b.gop_mode_gops);
  EXPECT_EQ(a.exploded_gops, b.exploded_gops);
  EXPECT_EQ(a.stolen_tasks, b.stolen_tasks);
  EXPECT_EQ(a.frame_latency_ns, b.frame_latency_ns);
  // Every picture decoded, every GOP dispatched exactly one way.
  EXPECT_EQ(a.pictures, p.total_pictures());
  EXPECT_EQ(a.gop_mode_gops + a.exploded_gops,
            static_cast<int>(p.gops.size()));
  EXPECT_EQ(a.frame_latency_ns.size(),
            static_cast<std::size_t>(p.total_pictures()));
}

// ---------------------------------------------------------------------------
// The real decoder. Dispatch mode must be invisible in the output.

std::uint64_t sequential_checksum(const std::vector<std::uint8_t>& stream) {
  mpeg2::Decoder dec;
  const auto out = dec.decode(stream);
  EXPECT_TRUE(out.ok);
  std::uint64_t sum = 0;
  for (const auto& f : out.frames) {
    sum = parallel::chain_frame_checksum(sum, *f);
  }
  return sum;
}

RunResult decode_adaptive(const std::vector<std::uint8_t>& stream,
                          int workers, bool quarantine) {
  AdaptiveDecoderConfig cfg;
  cfg.workers = workers;
  cfg.quarantine_gops = quarantine;
  return AdaptiveDecoder(cfg).decode(stream, {});
}

RunResult decode_gop(const std::vector<std::uint8_t>& stream, int workers,
                     bool quarantine) {
  GopDecoderConfig cfg;
  cfg.workers = workers;
  cfg.quarantine_gops = quarantine;
  return GopParallelDecoder(cfg).decode(stream, {});
}

RunResult decode_slice(const std::vector<std::uint8_t>& stream, int workers,
                       bool quarantine) {
  SliceDecoderConfig cfg;
  cfg.workers = workers;
  cfg.quarantine_gops = quarantine;
  return SliceParallelDecoder(cfg).decode(stream, {});
}

TEST(AdaptiveDecoder, MatchesSequentialReferenceOnCleanStream) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 39;
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  const std::uint64_t reference = sequential_checksum(stream);
  for (const int workers : {1, 2, 4, 8}) {
    const auto r = decode_adaptive(stream, workers, false);
    ASSERT_TRUE(r.ok) << workers << " workers";
    EXPECT_EQ(r.pictures, 39) << workers << " workers";
    EXPECT_EQ(r.checksum, reference) << workers << " workers";
    EXPECT_EQ(r.gop_mode_gops + r.exploded_gops, 3) << workers << " workers";
  }
}

TEST(AdaptiveDecoder, DeliversDisplayOrder) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 4;
  spec.pictures = 12;
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  AdaptiveDecoderConfig cfg;
  cfg.workers = 4;
  std::vector<int> order;
  const auto r = AdaptiveDecoder(cfg).decode(
      stream, [&](mpeg2::FramePtr f) { order.push_back(f->display_index); });
  ASSERT_TRUE(r.ok);
  ASSERT_EQ(order.size(), 12u);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(AdaptiveDecoder, ShallowQueueExplodesDeepQueueRunsWhole) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 4;
  spec.pictures = 32;  // 8 GOPs
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  // depth_threshold 1: a GOP explodes only when nothing else is queued.
  // With 8 GOPs racing 2 workers the queue is deep almost always, so most
  // GOPs must run whole once the EWMA calibrates.
  AdaptiveDecoderConfig cfg;
  cfg.workers = 2;
  cfg.depth_threshold = 1;
  cfg.cost_factor = 1e9;  // straggler rule off
  const auto r = AdaptiveDecoder(cfg).decode(stream, {});
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.gop_mode_gops + r.exploded_gops, 8);
  EXPECT_GT(r.gop_mode_gops, 0);
  // Forced-explode counterpart: an enormous depth threshold.
  AdaptiveDecoderConfig latency;
  latency.workers = 2;
  latency.depth_threshold = 1'000'000;
  const auto l = AdaptiveDecoder(latency).decode(stream, {});
  ASSERT_TRUE(l.ok);
  EXPECT_EQ(l.exploded_gops, 8);
  EXPECT_EQ(l.gop_mode_gops, 0);
  EXPECT_EQ(l.checksum, r.checksum);  // dispatch mode invisible
}

// ---------------------------------------------------------------------------
// Checksum matrix: all 16 Table-1 stream shapes, clean and faulted. The
// picture counts are bounded for test speed; every GOP size still
// exercises its dispatch shape (gop4 explodes often, gop31 rarely).

struct MatrixStream {
  streamgen::StreamSpec spec;
  std::vector<std::uint8_t> clean;
  std::vector<std::uint8_t> faulted;  // clean + one stomped slice
};

void corrupt_middle_slice(std::vector<std::uint8_t>& stream);

/// The 16 Table-1 shapes with bounded picture counts, generated once and
/// shared by the clean and faulted matrix tests (stream generation, not
/// decoding, dominates their budget). Two GOPs for the small resolutions
/// (cross-GOP scheduling), a single bounded GOP for the large ones.
const std::vector<MatrixStream>& matrix_streams() {
  static const std::vector<MatrixStream> streams = [] {
    std::vector<MatrixStream> out;
    for (auto spec : streamgen::table1_specs(0)) {
      spec.pictures = spec.width <= 352 ? 2 * spec.gop_size
                                        : std::min(spec.gop_size, 13);
      MatrixStream ms;
      ms.spec = spec;
      ms.clean = streamgen::generate_stream(spec);
      ms.faulted = ms.clean;
      corrupt_middle_slice(ms.faulted);
      out.push_back(std::move(ms));
    }
    return out;
  }();
  return streams;
}

/// Stomps the payload of one slice in the middle of the last GOP (startcode
/// kept): a guaranteed syntax error with no startcode emulation.
void corrupt_middle_slice(std::vector<std::uint8_t>& stream) {
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  const auto& gop = s.gops.back();
  const auto& info = gop.pictures[gop.pictures.size() / 2];
  ASSERT_FALSE(info.slices.empty());
  const auto offset = info.slices[info.slices.size() / 2].offset;
  std::uint64_t end = stream.size();
  for (const auto& sc : scan_all_startcodes(stream)) {
    if (sc.byte_offset > offset) {
      end = sc.byte_offset;
      break;
    }
  }
  for (std::uint64_t i = offset + 5; i < end; ++i) stream[i] = 0xFF;
}

TEST(AdaptiveChecksumMatrix, AllStreamsMatchCleanAndFaulted) {
  // One test (not one per variant): generation dominates the budget and
  // ctest runs each TEST in its own process, so splitting would pay for
  // the 16 streams twice.
  for (const auto& ms : matrix_streams()) {
    const std::uint64_t reference = sequential_checksum(ms.clean);
    const auto a = decode_adaptive(ms.clean, 4, false);
    const auto g = decode_gop(ms.clean, 4, false);
    const auto s = decode_slice(ms.clean, 4, false);
    ASSERT_TRUE(a.ok && g.ok && s.ok) << ms.spec.name();
    EXPECT_EQ(a.checksum, reference) << ms.spec.name();
    EXPECT_EQ(g.checksum, reference) << ms.spec.name();
    EXPECT_EQ(s.checksum, reference) << ms.spec.name();

    const auto fa = decode_adaptive(ms.faulted, 4, true);
    const auto fg = decode_gop(ms.faulted, 4, true);
    const auto fs = decode_slice(ms.faulted, 4, true);
    ASSERT_TRUE(fa.ok && fg.ok && fs.ok) << ms.spec.name();
    EXPECT_GE(fa.concealed_slices, 1) << ms.spec.name();
    EXPECT_EQ(fa.checksum, fg.checksum) << ms.spec.name();
    EXPECT_EQ(fs.checksum, fg.checksum) << ms.spec.name();
  }
}

TEST(AdaptiveChecksumMatrix, InjectedFaultsPreserveDispatchEquivalence) {
  // Randomized faults from the soak corruptor (deterministic plan): the
  // dispatch-equivalence invariant must hold whenever both runs complete.
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 39;
  spec.bit_rate = 1'500'000;
  const auto stream = streamgen::generate_stream(spec);
  int compared = 0;
  for (std::uint64_t i = 0; i < 24; ++i) {
    const auto fault = inject::plan_fault(/*seed=*/0x5eed, i);
    const auto corrupt = inject::apply_fault(stream, fault);
    const auto a = decode_adaptive(corrupt, 4, true);
    const auto g = decode_gop(corrupt, 4, true);
    if (!a.ok || !g.ok) continue;
    EXPECT_EQ(a.checksum, g.checksum) << fault.name();
    ++compared;
  }
  EXPECT_GT(compared, 0);
}

// ---------------------------------------------------------------------------
// Steal-path stress (TSan target): repeated contended decodes must be
// deterministic and mode-independent.

TEST(AdaptiveStress, ContendedStealPathsStayDeterministic) {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 4;
  spec.pictures = 24;  // 6 GOPs across 8 workers: constant stealing
  spec.bit_rate = 1'500'000;
  auto stream = streamgen::generate_stream(spec);
  corrupt_middle_slice(stream);  // recovery paths under contention too
  const auto first = decode_adaptive(stream, 8, true);
  ASSERT_TRUE(first.ok);
  const auto reference = decode_gop(stream, 8, true);
  ASSERT_TRUE(reference.ok);
  EXPECT_EQ(first.checksum, reference.checksum);
  for (int rep = 0; rep < 10; ++rep) {
    const auto r = decode_adaptive(stream, 8, true);
    ASSERT_TRUE(r.ok) << "rep " << rep;
    EXPECT_EQ(r.checksum, first.checksum) << "rep " << rep;
    EXPECT_EQ(r.pictures, 24) << "rep " << rep;
  }
}

}  // namespace
}  // namespace pmp2
