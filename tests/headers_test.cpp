#include <gtest/gtest.h>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/headers.h"
#include "mpeg2/scan_quant.h"

namespace pmp2::mpeg2 {
namespace {

TEST(Headers, SequenceHeaderRoundTrip) {
  SequenceHeader h;
  h.horizontal_size = 704;
  h.vertical_size = 480;
  h.aspect_ratio_code = 2;
  h.frame_rate_code = 5;
  h.bit_rate = 5'000'000;
  h.vbv_buffer_size_value = 112;
  BitWriter bw;
  write_sequence_header(bw, h);
  auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get(32), 0x000001B3u);
  SequenceHeader got;
  ASSERT_TRUE(parse_sequence_header(br, got));
  EXPECT_EQ(got.horizontal_size, 704);
  EXPECT_EQ(got.vertical_size, 480);
  EXPECT_EQ(got.aspect_ratio_code, 2);
  EXPECT_EQ(got.frame_rate_code, 5);
  EXPECT_EQ(got.bit_rate, 5'000'000);
  EXPECT_EQ(got.vbv_buffer_size_value, 112);
  // Default matrices installed when not loaded.
  EXPECT_EQ(got.intra_matrix, default_intra_matrix());
  EXPECT_EQ(got.non_intra_matrix, default_non_intra_matrix());
}

TEST(Headers, SequenceHeaderCustomMatrices) {
  SequenceHeader h;
  h.horizontal_size = 176;
  h.vertical_size = 120;
  h.load_intra_matrix = true;
  h.load_non_intra_matrix = true;
  for (int i = 0; i < 64; ++i) {
    h.intra_matrix[i] = static_cast<std::uint8_t>(i + 1);
    h.non_intra_matrix[i] = static_cast<std::uint8_t>(64 - i);
  }
  BitWriter bw;
  write_sequence_header(bw, h);
  auto bytes = bw.take();
  BitReader br(bytes);
  br.skip(32);
  SequenceHeader got;
  ASSERT_TRUE(parse_sequence_header(br, got));
  EXPECT_EQ(got.intra_matrix, h.intra_matrix);
  EXPECT_EQ(got.non_intra_matrix, h.non_intra_matrix);
}

TEST(Headers, SequenceExtensionRoundTrip) {
  SequenceHeader h;
  SequenceExtension e;
  e.profile_and_level = 0x44;
  e.progressive_sequence = true;
  e.chroma_format = 1;
  BitWriter bw;
  write_sequence_extension(bw, h, e);
  auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get(32), 0x000001B5u);
  SequenceExtension got;
  ASSERT_TRUE(parse_extension(br, &got, nullptr));
  EXPECT_EQ(got.profile_and_level, 0x44);
  EXPECT_TRUE(got.progressive_sequence);
  EXPECT_EQ(got.chroma_format, 1);
  EXPECT_FALSE(got.low_delay);
}

TEST(Headers, GopHeaderRoundTrip) {
  GopHeader h;
  h.time_code = (3u << 19) | (25u << 13) | (1u << 12) | (59u << 6) | 14u;
  h.closed_gop = true;
  h.broken_link = false;
  BitWriter bw;
  write_gop_header(bw, h);
  auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get(32), 0x000001B8u);
  GopHeader got;
  ASSERT_TRUE(parse_gop_header(br, got));
  EXPECT_EQ(got.time_code, h.time_code);
  EXPECT_TRUE(got.closed_gop);
  EXPECT_FALSE(got.broken_link);
}

class PictureHeaderRoundTrip : public ::testing::TestWithParam<PictureType> {};

TEST_P(PictureHeaderRoundTrip, RoundTrips) {
  PictureHeader h;
  h.temporal_reference = 517;
  h.type = GetParam();
  h.vbv_delay = 0xFFFF;
  BitWriter bw;
  write_picture_header(bw, h);
  auto bytes = bw.take();
  BitReader br(bytes);
  EXPECT_EQ(br.get(32), 0x00000100u);
  PictureHeader got;
  ASSERT_TRUE(parse_picture_header(br, got));
  EXPECT_EQ(got.temporal_reference, 517);
  EXPECT_EQ(got.type, GetParam());
  EXPECT_EQ(got.vbv_delay, 0xFFFF);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, PictureHeaderRoundTrip,
                         ::testing::Values(PictureType::kI, PictureType::kP,
                                           PictureType::kB));

TEST(Headers, PictureCodingExtensionRoundTrip) {
  PictureCodingExtension e;
  e.f_code[0][0] = 3;
  e.f_code[0][1] = 2;
  e.f_code[1][0] = 4;
  e.f_code[1][1] = 4;
  e.intra_dc_precision = 2;
  e.q_scale_type = true;
  e.intra_vlc_format = true;
  e.alternate_scan = true;
  BitWriter bw;
  write_picture_coding_extension(bw, e);
  auto bytes = bw.take();
  BitReader br(bytes);
  br.skip(32);
  PictureCodingExtension got;
  ASSERT_TRUE(parse_extension(br, nullptr, &got));
  EXPECT_EQ(got.f_code[0][0], 3);
  EXPECT_EQ(got.f_code[0][1], 2);
  EXPECT_EQ(got.f_code[1][0], 4);
  EXPECT_EQ(got.f_code[1][1], 4);
  EXPECT_EQ(got.intra_dc_precision, 2);
  EXPECT_TRUE(got.q_scale_type);
  EXPECT_TRUE(got.intra_vlc_format);
  EXPECT_TRUE(got.alternate_scan);
  EXPECT_EQ(got.picture_structure, 3);
  EXPECT_TRUE(got.frame_pred_frame_dct);
}

TEST(Headers, FrameRateCodes) {
  SequenceHeader h;
  h.frame_rate_code = 5;
  EXPECT_DOUBLE_EQ(h.frame_rate(), 30.0);
  h.frame_rate_code = 3;
  EXPECT_DOUBLE_EQ(h.frame_rate(), 25.0);
  h.frame_rate_code = 4;
  EXPECT_NEAR(h.frame_rate(), 29.97, 0.01);
}

TEST(Headers, BitRateRoundsUpTo400Units) {
  SequenceHeader h;
  h.horizontal_size = 16;
  h.vertical_size = 16;
  h.bit_rate = 5'000'100;  // not a multiple of 400
  BitWriter bw;
  write_sequence_header(bw, h);
  auto bytes = bw.take();
  BitReader br(bytes);
  br.skip(32);
  SequenceHeader got;
  ASSERT_TRUE(parse_sequence_header(br, got));
  EXPECT_EQ(got.bit_rate, 5'000'400);  // ceil to next unit
}

TEST(Headers, ParseRejectsBadMarker) {
  // Corrupt the marker bit after bit_rate in a sequence header.
  SequenceHeader h;
  h.horizontal_size = 352;
  h.vertical_size = 240;
  BitWriter bw;
  write_sequence_header(bw, h);
  auto bytes = bw.take();
  // Payload bits before the marker: 12+12+4+4+18 = 50; bit 50 lives in
  // payload byte 6 at in-byte offset 2 (MSB-first -> mask 0x20).
  bytes[4 + 6] &= ~0x20;
  BitReader br(bytes);
  br.skip(32);
  SequenceHeader got;
  EXPECT_FALSE(parse_sequence_header(br, got));
}

}  // namespace
}  // namespace pmp2::mpeg2
