// Additional scheduler-simulator properties: profile replication,
// cost scaling, scan modelling, and parameterized policy sweeps.
#include <gtest/gtest.h>

#include "sched/profile.h"
#include "sched/sim.h"
#include "streamgen/stream_factory.h"

namespace pmp2::sched {
namespace {

using parallel::SlicePolicy;

const StreamProfile& base_profile() {
  static const StreamProfile p = [] {
    streamgen::StreamSpec spec;
    spec.width = 176;
    spec.height = 120;
    spec.gop_size = 4;
    spec.pictures = 16;
    spec.bit_rate = 1'500'000;
    const auto stream = streamgen::generate_stream(spec);
    return profile_stream(stream);
  }();
  return p;
}

TEST(ReplicateProfile, ReachesTargetAndPreservesStructure) {
  const auto& base = base_profile();
  const StreamProfile big = replicate_profile(base, 160);
  EXPECT_GE(big.total_pictures(), 160);
  EXPECT_EQ(big.total_pictures() % 16, 0);  // whole replicas of 4-GOP units
  EXPECT_EQ(big.ns_per_unit, base.ns_per_unit);
  EXPECT_EQ(big.slices_per_picture, base.slices_per_picture);
  // Scan rate preserved: scan_ns scales with stream_bytes.
  const double base_rate =
      static_cast<double>(base.stream_bytes) / base.scan_ns;
  const double big_rate = static_cast<double>(big.stream_bytes) / big.scan_ns;
  EXPECT_NEAR(big_rate / base_rate, 1.0, 0.01);
}

TEST(ReplicateProfile, NoOpWhenAlreadyBigEnough) {
  const auto& base = base_profile();
  const StreamProfile same = replicate_profile(base, 4);
  EXPECT_EQ(same.total_pictures(), base.total_pictures());
  EXPECT_EQ(same.gops.size(), base.gops.size());
}

TEST(CostScale, SlowsThroughputProportionally) {
  const auto profile = replicate_profile(base_profile(), 64);
  SimConfig fast;
  fast.workers = 4;
  SimConfig slow = fast;
  slow.cost_scale = 10.0;
  const double pps_fast = simulate_gop(profile, fast).pictures_per_second();
  const double pps_slow = simulate_gop(profile, slow).pictures_per_second();
  EXPECT_NEAR(pps_fast / pps_slow, 10.0, 1.5);
}

TEST(CostScale, DoesNotChangeSpeedupShape) {
  // Speedups are ratios: scaling all costs must leave them (nearly) alone.
  const auto profile = replicate_profile(base_profile(), 64);
  auto speedup_at = [&](double scale) {
    SimConfig one;
    one.workers = 1;
    one.cost_scale = scale;
    SimConfig four = one;
    four.workers = 4;
    return simulate_gop(profile, four).pictures_per_second() /
           simulate_gop(profile, one).pictures_per_second();
  };
  EXPECT_NEAR(speedup_at(1.0), speedup_at(8.0), 0.2);
}

TEST(ScanModel, SlowScanBottlenecksThroughput) {
  const auto profile = replicate_profile(base_profile(), 64);
  SimConfig cfg;
  cfg.workers = 8;
  cfg.model_scan = true;
  // Scan slower than 8 workers' decode rate: throughput pinned to scan.
  cfg.scan_bytes_per_ns = 1e-6;  // 1 KB/ms: absurdly slow
  const SimResult starved = simulate_gop(profile, cfg);
  cfg.scan_bytes_per_ns = 1.0;  // 1 GB/s
  const SimResult fed = simulate_gop(profile, cfg);
  EXPECT_LT(starved.pictures_per_second(), fed.pictures_per_second() / 4);
  // Workers starved by the scan accumulate sync (waiting) time.
  std::int64_t sync = 0;
  for (const auto& w : starved.workers) sync += w.sync_ns;
  EXPECT_GT(sync, 0);
}

TEST(ScanModel, DisabledMakesAllTasksImmediate) {
  const auto profile = replicate_profile(base_profile(), 64);
  SimConfig with;
  with.workers = 4;
  SimConfig without = with;
  without.model_scan = false;
  EXPECT_GE(simulate_slice(profile, without, SlicePolicy::kImproved)
                .pictures_per_second(),
            simulate_slice(profile, with, SlicePolicy::kImproved)
                    .pictures_per_second() *
                0.999);
}

class PolicySweep
    : public ::testing::TestWithParam<std::tuple<int, SlicePolicy>> {};

TEST_P(PolicySweep, InvariantsHold) {
  const auto profile = replicate_profile(base_profile(), 48);
  SimConfig cfg;
  cfg.workers = std::get<0>(GetParam());
  const SimResult r = simulate_slice(profile, cfg, std::get<1>(GetParam()));
  // Work conservation: every slice executed exactly once.
  int tasks = 0;
  std::int64_t busy = 0;
  for (const auto& w : r.workers) {
    tasks += w.tasks;
    busy += w.busy_ns;
    EXPECT_GE(w.sync_ns, 0);
  }
  EXPECT_EQ(tasks, profile.total_pictures() * profile.slices_per_picture);
  EXPECT_GT(busy, 0);
  // Makespan bounds: at least the critical path of one picture, at most
  // the serial sum (plus overheads).
  EXPECT_GT(r.makespan_ns, 0);
  EXPECT_LE(r.pictures_per_second(),
            1e9 * cfg.workers * profile.total_pictures() /
                static_cast<double>(busy) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndPolicies, PolicySweep,
    ::testing::Combine(::testing::Values(1, 2, 5, 9, 16),
                       ::testing::Values(SlicePolicy::kSimple,
                                         SlicePolicy::kImproved)));

TEST(NumaSweep, PenaltyMonotone) {
  const auto profile = replicate_profile(base_profile(), 64);
  double prev = 1e18;
  for (const double penalty : {1.0, 1.3, 1.6, 2.0, 3.0}) {
    SimConfig cfg;
    cfg.workers = 8;
    cfg.cluster_size = 4;
    cfg.remote_penalty = penalty;
    const double pps =
        simulate_slice(profile, cfg, SlicePolicy::kImproved)
            .pictures_per_second();
    EXPECT_LE(pps, prev * 1.001) << penalty;
    prev = pps;
  }
}

TEST(NumaSweep, LocalQueuesBeatSharedQueueOnRemoteCount) {
  // With a shared queue, variable GOP costs steadily de-align workers from
  // the round-robin task homes, so a good fraction of tasks run remote;
  // per-cluster queues eliminate nearly all of that.
  const auto profile = replicate_profile(base_profile(), 64);
  SimConfig shared_q;
  shared_q.workers = 4;
  shared_q.cluster_size = 1;  // 4 clusters of one processor
  shared_q.remote_penalty = 2.0;
  auto local_q = shared_q;
  local_q.numa_local_queues = true;
  auto remote_count = [](const SimResult& r) {
    int n = 0;
    for (const auto& w : r.workers) n += w.remote_tasks;
    return n;
  };
  const int shared_remote = remote_count(simulate_gop(profile, shared_q));
  const int local_remote = remote_count(simulate_gop(profile, local_q));
  EXPECT_GT(shared_remote, 0);
  EXPECT_LT(local_remote, shared_remote);
}

TEST(MemoryTimeline, MonotoneTimeAndDrainsToZero) {
  const auto profile = replicate_profile(base_profile(), 64);
  SimConfig cfg;
  cfg.workers = 4;
  cfg.paced_display = true;
  const SimResult r = simulate_gop(profile, cfg);
  ASSERT_FALSE(r.memory_timeline.empty());
  std::int64_t prev_t = -1;
  for (const auto& s : r.memory_timeline) {
    EXPECT_GT(s.t_ns, prev_t);
    prev_t = s.t_ns;
    EXPECT_GE(s.bytes, 0);
  }
  EXPECT_EQ(r.memory_timeline.back().bytes, 0);
  EXPECT_EQ(r.peak_memory,
            std::max_element(r.memory_timeline.begin(),
                             r.memory_timeline.end(),
                             [](const MemSample& a, const MemSample& b) {
                               return a.bytes < b.bytes;
                             })
                ->bytes);
}

}  // namespace
}  // namespace pmp2::sched
