// Unit tests for decoder internals: display reordering, block decoding
// against hand-assembled bitstreams, picture-header plumbing, and the
// structure scanner's GOP/picture bookkeeping.
#include <gtest/gtest.h>

#include "bitstream/bit_writer.h"
#include "mpeg2/decoder.h"
#include "mpeg2/scan_quant.h"
#include "mpeg2/slice_decode.h"
#include "mpeg2/vlc_tables.h"

namespace pmp2::mpeg2 {
namespace {

FramePtr typed_frame(PictureType type) {
  auto f = std::make_shared<Frame>(32, 32);
  f->type = type;
  return f;
}

TEST(DisplayReorder, IbbpPattern) {
  // Decode order I P B B -> display order I B B P.
  DisplayReorder r;
  std::vector<FramePtr> out;
  auto i0 = typed_frame(PictureType::kI);
  auto p3 = typed_frame(PictureType::kP);
  auto b1 = typed_frame(PictureType::kB);
  auto b2 = typed_frame(PictureType::kB);
  r.push(i0, out);
  EXPECT_TRUE(out.empty());  // I held as pending reference
  r.push(p3, out);
  ASSERT_EQ(out.size(), 1u);  // I released when P arrives
  EXPECT_EQ(out[0]->type, PictureType::kI);
  r.push(b1, out);
  r.push(b2, out);
  ASSERT_EQ(out.size(), 3u);  // B frames pass through
  r.flush(out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[3]->type, PictureType::kP);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)]->display_index, i);
}

TEST(DisplayReorder, AllIntraPassesInOrder) {
  DisplayReorder r;
  std::vector<FramePtr> out;
  for (int i = 0; i < 3; ++i) r.push(typed_frame(PictureType::kI), out);
  r.flush(out);
  ASSERT_EQ(out.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)]->display_index, i);
}

TEST(DisplayReorder, FlushWithoutFramesIsNoop) {
  DisplayReorder r;
  std::vector<FramePtr> out;
  r.flush(out);
  EXPECT_TRUE(out.empty());
}

// --- BlockDecoder against hand-built bitstreams -----------------------------

SequenceHeader default_seq() {
  SequenceHeader seq;
  seq.intra_matrix = default_intra_matrix();
  seq.non_intra_matrix = default_non_intra_matrix();
  return seq;
}

TEST(BlockDecoder, IntraDcOnly) {
  // dct_dc_size_luma = 4 ('110'), differential +9 ('1001'), EOB ('10').
  BitWriter bw;
  bw.put(0b110, 3);
  bw.put(9, 4);
  bw.put(0b10, 2);
  bw.put(0, 24);
  const auto bytes = bw.take();
  BitReader br(bytes);
  const auto seq = default_seq();
  PictureContext pic;
  pic.seq = &seq;
  int dc_pred = 128;
  Block out;
  WorkMeter work;
  ASSERT_TRUE(
      BlockDecoder::decode_intra(br, pic, 8, /*luma=*/true, dc_pred, out,
                                 work));
  EXPECT_EQ(dc_pred, 137);
  EXPECT_EQ(out[0], 137 * 8);  // DC x intra_dc_mult (precision 8)
  // Mismatch control may toggle coefficient 63; everything else is 0.
  for (int i = 1; i < 63; ++i) EXPECT_EQ(out[i], 0) << i;
}

TEST(BlockDecoder, IntraNegativeDcDifferential) {
  // size 4, differential -9: bits = -9 + 15 = 6 ('0110').
  BitWriter bw;
  bw.put(0b110, 3);
  bw.put(6, 4);
  bw.put(0b10, 2);
  bw.put(0, 24);
  const auto bytes = bw.take();
  BitReader br(bytes);
  const auto seq = default_seq();
  PictureContext pic;
  pic.seq = &seq;
  int dc_pred = 128;
  Block out;
  WorkMeter work;
  ASSERT_TRUE(BlockDecoder::decode_intra(br, pic, 8, true, dc_pred, out,
                                         work));
  EXPECT_EQ(dc_pred, 119);
}

TEST(BlockDecoder, NonIntraFirstCoefficientShortForm) {
  // '1' + sign 1 => run 0 level -1 at scan position 0, then EOB.
  BitWriter bw;
  bw.put_bit(1);
  bw.put_bit(1);
  bw.put(0b10, 2);
  bw.put(0, 24);
  const auto bytes = bw.take();
  BitReader br(bytes);
  const auto seq = default_seq();
  PictureContext pic;
  pic.seq = &seq;
  Block out;
  WorkMeter work;
  ASSERT_TRUE(BlockDecoder::decode_non_intra(br, pic, 2, out, work));
  // Dequantized: ((2*-1 - 1) * 16 * 4) / 32 = -6.
  EXPECT_EQ(out[0], -6);
}

TEST(BlockDecoder, EscapeCodedCoefficient) {
  // escape '000001' + run=2 (6 bits) + level=100 (12 bits), then EOB.
  BitWriter bw;
  bw.put(0b000001, 6);
  bw.put(2, 6);
  bw.put(100, 12);
  bw.put(0b10, 2);
  bw.put(0, 24);
  const auto bytes = bw.take();
  BitReader br(bytes);
  const auto seq = default_seq();
  PictureContext pic;
  pic.seq = &seq;
  Block out;
  WorkMeter work;
  ASSERT_TRUE(BlockDecoder::decode_non_intra(br, pic, 2, out, work));
  // Scan position 2 = raster 8 (zig-zag). Level 100 dequantized at
  // qscale 4, w 16: ((200+1)*16*4)/32 = 402.
  EXPECT_EQ(out[zigzag_scan()[2]], 402);
  EXPECT_EQ(work.escapes, 1u);
}

TEST(BlockDecoder, RunOverflowRejected) {
  // run 60 at position 10 overruns the block -> must fail.
  BitWriter bw;
  bw.put(0b000001, 6);  // escape
  bw.put(10, 6);
  bw.put(5, 12);
  bw.put(0b000001, 6);  // second escape
  bw.put(60, 6);        // run 60 from position 11 -> out of range
  bw.put(5, 12);
  bw.put(0, 24);
  const auto bytes = bw.take();
  BitReader br(bytes);
  const auto seq = default_seq();
  PictureContext pic;
  pic.seq = &seq;
  Block out;
  WorkMeter work;
  EXPECT_FALSE(BlockDecoder::decode_non_intra(br, pic, 2, out, work));
}

TEST(BlockDecoder, ZeroEscapeLevelRejected) {
  BitWriter bw;
  bw.put(0b000001, 6);
  bw.put(0, 6);
  bw.put(0, 12);  // forbidden level 0
  bw.put(0, 24);
  const auto bytes = bw.take();
  BitReader br(bytes);
  const auto seq = default_seq();
  PictureContext pic;
  pic.seq = &seq;
  Block out;
  WorkMeter work;
  EXPECT_FALSE(BlockDecoder::decode_non_intra(br, pic, 2, out, work));
}

TEST(BlockDecoder, AlternateScanPlacesCoefficientsDifferently) {
  auto decode_with_scan = [](bool alternate) {
    BitWriter bw;
    bw.put_bit(1);  // first coeff: run 0 level +1
    bw.put_bit(0);
    const Code c = encode_dct_run_level(false, 3, 1);  // run 3 level 1
    c.put(bw);
    bw.put_bit(0);
    bw.put(0b10, 2);
    bw.put(0, 24);
    const auto bytes = bw.take();
    BitReader br(bytes);
    static const auto seq = default_seq();
    PictureContext pic;
    pic.seq = &seq;
    pic.ext.alternate_scan = alternate;
    Block out;
    WorkMeter work;
    EXPECT_TRUE(BlockDecoder::decode_non_intra(br, pic, 2, out, work));
    return out;
  };
  const Block zig = decode_with_scan(false);
  const Block alt = decode_with_scan(true);
  // Second coefficient lands at scan position 4: raster 9 (zig-zag) vs
  // raster 1 (alternate).
  EXPECT_NE(zig[9], 0);
  EXPECT_NE(alt[1], 0);
  EXPECT_EQ(zig[1], 0);
  EXPECT_EQ(alt[9], 0);
}

TEST(WorkMeter, UnitsMonotoneInCounts) {
  WorkMeter a;
  a.macroblocks = 10;
  WorkMeter b = a;
  b.coefficients = 100;
  EXPECT_GT(b.units(), a.units());
  WorkMeter sum;
  sum += a;
  sum += b;
  EXPECT_EQ(sum.macroblocks, 20u);
  EXPECT_EQ(sum.coefficients, 100u);
}

}  // namespace
}  // namespace pmp2::mpeg2
