// Fault-injection & bounded-recovery tests (docs/ROBUSTNESS.md): the
// corruptor is deterministic and replayable, resync lands on true
// startcodes, GOP quarantine confines damage to the faulted GOP in both
// parallel decoders, concealed pictures stay recognizable, and nothing
// hangs even on 100%-corrupt input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "bitstream/startcode.h"
#include "inject/degrade.h"
#include "inject/fault.h"
#include "mpeg2/decoder.h"
#include "mpeg2/frame.h"
#include "parallel/display.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "sched/profile.h"
#include "sched/sim.h"
#include "streamgen/stream_factory.h"

namespace pmp2 {
namespace {

using inject::FaultKind;
using inject::FaultReport;
using inject::FaultSpec;
using parallel::GopDecoderConfig;
using parallel::GopParallelDecoder;
using parallel::RecoveryCause;
using parallel::RunResult;
using parallel::SliceDecoderConfig;
using parallel::SliceParallelDecoder;

streamgen::StreamSpec spec_3gops() {
  streamgen::StreamSpec spec;
  spec.width = 176;
  spec.height = 120;
  spec.gop_size = 13;
  spec.pictures = 39;
  spec.bit_rate = 1'500'000;
  return spec;
}

/// Stomps one slice's payload (startcode kept) with 0xFF — a guaranteed
/// syntax error with no startcode emulation (see concealment_test.cpp).
void corrupt_slice(std::vector<std::uint8_t>& stream, int gop, int pic,
                   int slice) {
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  const auto& info = s.gops[static_cast<std::size_t>(gop)]
                         .pictures[static_cast<std::size_t>(pic)];
  const auto offset = info.slices[static_cast<std::size_t>(slice)].offset;
  std::uint64_t end = stream.size();
  for (const auto& sc : scan_all_startcodes(stream)) {
    if (sc.byte_offset > offset) {
      end = sc.byte_offset;
      break;
    }
  }
  for (std::uint64_t i = offset + 5; i < end; ++i) stream[i] = 0xFF;
}

/// Destroys every slice startcode of one picture (0x01 prefix byte ->
/// 0xFE): the scan then sees a picture with no slices at all, forcing
/// whole-picture concealment under quarantine.
void erase_picture_slices(std::vector<std::uint8_t>& stream, int gop,
                          int pic) {
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  const auto& info = s.gops[static_cast<std::size_t>(gop)]
                         .pictures[static_cast<std::size_t>(pic)];
  ASSERT_FALSE(info.slices.empty());
  for (const auto& sl : info.slices) stream[sl.offset + 2] = 0xFE;
}

/// Decodes with both parallel decoders under quarantine, collecting frames
/// by display index. Returns {gop_result, slice_result}.
struct QuarantineRun {
  RunResult result;
  std::vector<mpeg2::FramePtr> frames;  // indexed by display_index
};

QuarantineRun run_gop_quarantine(const std::vector<std::uint8_t>& stream,
                                 int pictures) {
  QuarantineRun run;
  run.frames.resize(static_cast<std::size_t>(pictures));
  GopDecoderConfig cfg;
  cfg.workers = 3;
  cfg.quarantine_gops = true;
  cfg.watchdog_ns = 20'000'000'000;
  run.result = GopParallelDecoder(cfg).decode(stream, [&](mpeg2::FramePtr f) {
    const auto i = static_cast<std::size_t>(f->display_index);
    if (i < run.frames.size()) run.frames[i] = std::move(f);
  });
  return run;
}

QuarantineRun run_slice_quarantine(const std::vector<std::uint8_t>& stream,
                                   int pictures) {
  QuarantineRun run;
  run.frames.resize(static_cast<std::size_t>(pictures));
  SliceDecoderConfig cfg;
  cfg.workers = 3;
  cfg.policy = parallel::SlicePolicy::kImproved;
  cfg.quarantine_gops = true;
  cfg.watchdog_ns = 20'000'000'000;
  run.result =
      SliceParallelDecoder(cfg).decode(stream, [&](mpeg2::FramePtr f) {
        const auto i = static_cast<std::size_t>(f->display_index);
        if (i < run.frames.size()) run.frames[i] = std::move(f);
      });
  return run;
}

// ---------------------------------------------------------------- corruptor

TEST(FaultInjection, DeterministicAndSeedSensitive) {
  const auto stream = streamgen::generate_stream(spec_3gops());
  for (const FaultKind kind : inject::kAllFaultKinds) {
    FaultSpec spec;
    spec.kind = kind;
    spec.seed = 42;
    spec.count = 3;
    FaultReport r1, r2;
    const auto a = inject::apply_fault(stream, spec, &r1);
    const auto b = inject::apply_fault(stream, spec, &r2);
    EXPECT_EQ(a, b) << spec.name();
    EXPECT_EQ(r1.events.size(), r2.events.size()) << spec.name();
    EXPECT_FALSE(r1.events.empty()) << spec.name();
    for (const auto& e : r1.events) {
      EXPECT_LT(e.offset, stream.size()) << spec.name();
    }
    EXPECT_NE(a, stream) << spec.name() << " changed nothing";
    spec.seed = 43;
    const auto c = inject::apply_fault(stream, spec, nullptr);
    EXPECT_NE(a, c) << spec.name() << " ignored the seed";
  }
}

TEST(FaultInjection, PreambleIsNeverDamaged) {
  const auto stream = streamgen::generate_stream(spec_3gops());
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  // Protected region: sequence header through the first GOP header.
  const std::uint64_t guard = s.gops[0].offset + 8;
  for (const FaultKind kind : inject::kAllFaultKinds) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      FaultSpec spec;
      spec.kind = kind;
      spec.seed = seed;
      spec.count = 4;
      const auto out = inject::apply_fault(stream, spec, nullptr);
      ASSERT_GE(out.size(), guard) << spec.name();
      EXPECT_TRUE(std::equal(stream.begin(),
                             stream.begin() + static_cast<long>(guard),
                             out.begin()))
          << spec.name() << " touched the preamble";
    }
  }
}

TEST(FaultInjection, KindNamesRoundTrip) {
  for (const FaultKind kind : inject::kAllFaultKinds) {
    FaultKind parsed;
    ASSERT_TRUE(inject::parse_fault_kind(inject::fault_kind_name(kind),
                                         parsed))
        << inject::fault_kind_name(kind);
    EXPECT_EQ(parsed, kind);
  }
  FaultKind parsed;
  EXPECT_FALSE(inject::parse_fault_kind("no-such-fault", parsed));
}

TEST(FaultInjection, PlanFaultIsDeterministicAndCyclesKinds) {
  std::set<FaultKind> kinds;
  std::set<std::string> names;
  for (std::uint64_t i = 0; i < 32; ++i) {
    const FaultSpec a = inject::plan_fault(7, i);
    const FaultSpec b = inject::plan_fault(7, i);
    EXPECT_EQ(a.name(), b.name()) << i;
    kinds.insert(a.kind);
    names.insert(a.name());
  }
  EXPECT_EQ(kinds.size(), std::size(inject::kAllFaultKinds));
  EXPECT_GT(names.size(), 16u);  // seeds/counts vary, not just kinds
  // A different base seed produces a different schedule.
  EXPECT_NE(inject::plan_fault(7, 0).name(), inject::plan_fault(8, 0).name());
}

// ------------------------------------------------------------------- resync

TEST(FaultInjection, ResyncLandsOnTrueStartcodeForEveryStraddlePhase) {
  // Place the startcode prefix at every alignment mod 8 so the SWAR
  // scanner sees every word-straddle phase.
  for (std::uint64_t phase = 0; phase < 8; ++phase) {
    const std::uint64_t sc_at = 64 + phase;
    std::vector<std::uint8_t> buf(sc_at, 0x55);
    buf.push_back(0x00);
    buf.push_back(0x00);
    buf.push_back(0x01);
    buf.push_back(0xB3);
    buf.insert(buf.end(), 32, 0x55);
    for (const std::uint64_t error_byte : {std::uint64_t{0}, sc_at - 1}) {
      EXPECT_EQ(mpeg2::resync_distance(buf, error_byte), sc_at - error_byte)
          << "phase " << phase << " error at " << error_byte;
    }
    // An error inside the startcode itself resyncs at zero distance only
    // if the prefix is still ahead of it.
    EXPECT_EQ(mpeg2::resync_distance(buf, sc_at), 0u) << phase;
  }
  // No startcode ahead: the distance is the remaining stream.
  const std::vector<std::uint8_t> junk(100, 0x55);
  EXPECT_EQ(mpeg2::resync_distance(junk, 10), 90u);
}

// ------------------------------------------------------------ display ranks

TEST(FaultInjection, DisplayRanksMatchTemporalReferenceOnCleanGops) {
  const auto stream = streamgen::generate_stream(spec_3gops());
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  for (const auto& gop : s.gops) {
    const auto ranks = mpeg2::display_ranks(gop);
    ASSERT_EQ(ranks.size(), gop.pictures.size());
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[i], gop.pictures[i].temporal_reference);
    }
  }
}

TEST(FaultInjection, DisplayRanksAreGapFreeOnCorruptReferences) {
  // Duplicate, out-of-range and wild temporal references (what a corrupted
  // picture header yields) must still map to a permutation of [0, n).
  mpeg2::GopInfo gop;
  for (const int tref : {7, 7, 3, 999, 0, -2}) {
    mpeg2::PictureInfo pic;
    pic.temporal_reference = tref;
    gop.pictures.push_back(pic);
  }
  const auto ranks = mpeg2::display_ranks(gop);
  ASSERT_EQ(ranks.size(), gop.pictures.size());
  std::set<int> seen(ranks.begin(), ranks.end());
  EXPECT_EQ(seen.size(), ranks.size());
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), static_cast<int>(ranks.size()) - 1);
}

// ----------------------------------------------------------- recovery plumbing

TEST(FaultInjection, ErrorLogCapsRecords) {
  parallel::ErrorLog log;
  for (int i = 0; i < 100; ++i) {
    log.add({RecoveryCause::kSliceError, i, i, 0});
  }
  std::vector<parallel::ErrorRecord> records;
  int dropped = 0;
  log.drain(records, dropped);
  EXPECT_EQ(records.size(), parallel::ErrorLog::kMaxRecords);
  EXPECT_EQ(dropped, 100 - static_cast<int>(parallel::ErrorLog::kMaxRecords));
}

TEST(FaultInjection, DisplayDeadlineFiresAndRecovers) {
  mpeg2::FramePool pool(176, 120);
  parallel::DisplaySink sink(2, {});
  auto f0 = pool.acquire();
  f0->display_index = 0;
  sink.push(std::move(f0));
  // Only 1 of 2 pictures arrived: the bounded wait must report failure.
  EXPECT_FALSE(sink.wait_done_for(50'000'000));
  auto f1 = pool.acquire();
  f1->display_index = 1;
  sink.push(std::move(f1));
  EXPECT_TRUE(sink.wait_done_for(50'000'000));
}

// --------------------------------------------------------------- quarantine

TEST(GopQuarantine, SiblingGopsBitExactInBothDecoders) {
  auto stream = streamgen::generate_stream(spec_3gops());
  mpeg2::Decoder clean_dec;
  const auto clean = clean_dec.decode(stream);
  ASSERT_TRUE(clean.ok);
  ASSERT_EQ(clean.frames.size(), 39u);

  corrupt_slice(stream, /*gop=*/1, /*pic=*/3, /*slice=*/4);

  for (const bool slice_level : {false, true}) {
    const QuarantineRun run = slice_level ? run_slice_quarantine(stream, 39)
                                          : run_gop_quarantine(stream, 39);
    const char* const which = slice_level ? "slice" : "gop";
    ASSERT_TRUE(run.result.ok) << which;
    EXPECT_FALSE(run.result.hung) << which;
    EXPECT_EQ(run.result.pictures, 39) << which;
    EXPECT_GE(run.result.concealed_slices, 1) << which;
    EXPECT_EQ(run.result.quarantined_gops, 1) << which;
    ASSERT_FALSE(run.result.errors.empty()) << which;
    EXPECT_EQ(run.result.errors[0].cause, RecoveryCause::kSliceError)
        << which;
    EXPECT_EQ(run.result.errors[0].gop, 1) << which;
    // The blast radius is GOP 1 (display indices [13, 26)): every other
    // GOP's pictures are bit-exact against the clean decode.
    for (int i = 0; i < 39; ++i) {
      if (i >= 13 && i < 26) continue;
      const auto& frame = run.frames[static_cast<std::size_t>(i)];
      ASSERT_TRUE(frame) << which << " missing display index " << i;
      EXPECT_TRUE(
          frame->same_pels(*clean.frames[static_cast<std::size_t>(i)]))
          << which << " display index " << i;
    }
  }
}

TEST(GopQuarantine, ConcealedPicturePsnrBounded) {
  auto stream = streamgen::generate_stream(spec_3gops());
  mpeg2::Decoder clean_dec;
  const auto clean = clean_dec.decode(stream);
  ASSERT_TRUE(clean.ok);

  // Destroy every slice of one mid-stream picture: quarantine synthesizes
  // the whole frame from the nearest reference.
  erase_picture_slices(stream, /*gop=*/1, /*pic=*/3);

  for (const bool slice_level : {false, true}) {
    const QuarantineRun run = slice_level ? run_slice_quarantine(stream, 39)
                                          : run_gop_quarantine(stream, 39);
    const char* const which = slice_level ? "slice" : "gop";
    ASSERT_TRUE(run.result.ok) << which;
    EXPECT_FALSE(run.result.hung) << which;
    EXPECT_EQ(run.result.pictures, 39) << which;
    EXPECT_GE(run.result.concealed_pictures, 1) << which;
    EXPECT_EQ(run.result.quarantined_gops, 1) << which;
    // Concealed + damage-adjacent frames stay recognizable: the copy of a
    // neighbouring reference is far from garbage on a continuous scene.
    inject::PsnrAccumulator psnr;
    for (int i = 13; i < 26; ++i) {
      const auto& frame = run.frames[static_cast<std::size_t>(i)];
      ASSERT_TRUE(frame) << which << " missing display index " << i;
      psnr.add(*frame, *clean.frames[static_cast<std::size_t>(i)]);
    }
    EXPECT_GE(psnr.degraded_frames(), 1) << which;
    EXPECT_GT(psnr.min_db(), 10.0) << which;
    // Sibling GOPs are still bit-exact.
    for (int i = 0; i < 39; ++i) {
      if (i >= 13 && i < 26) continue;
      const auto& frame = run.frames[static_cast<std::size_t>(i)];
      ASSERT_TRUE(frame) << which << " missing display index " << i;
      EXPECT_TRUE(
          frame->same_pels(*clean.frames[static_cast<std::size_t>(i)]))
          << which << " display index " << i;
    }
  }
}

TEST(GopQuarantine, FullyCorruptStreamTerminatesInBothDecoders) {
  streamgen::StreamSpec spec = spec_3gops();
  spec.gop_size = 4;
  spec.pictures = 12;
  auto stream = streamgen::generate_stream(spec);
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  // 100% corrupt: every slice of every picture of every GOP.
  for (std::size_t g = 0; g < s.gops.size(); ++g) {
    for (std::size_t p = 0; p < s.gops[g].pictures.size(); ++p) {
      const int slices =
          static_cast<int>(s.gops[g].pictures[p].slices.size());
      for (int sl = 0; sl < slices; ++sl) {
        corrupt_slice(stream, static_cast<int>(g), static_cast<int>(p), sl);
      }
    }
  }
  for (const bool slice_level : {false, true}) {
    const QuarantineRun run = slice_level ? run_slice_quarantine(stream, 12)
                                          : run_gop_quarantine(stream, 12);
    const char* const which = slice_level ? "slice" : "gop";
    EXPECT_FALSE(run.result.hung) << which;
    ASSERT_TRUE(run.result.ok) << which;
    EXPECT_EQ(run.result.pictures, 12) << which;
    EXPECT_GT(run.result.concealed_slices, 0) << which;
    EXPECT_EQ(run.result.quarantined_gops,
              static_cast<int>(s.gops.size()))
        << which;
    for (const auto& frame : run.frames) EXPECT_TRUE(frame) << which;
  }
}

TEST(GopQuarantine, TruncatedScanKeepsDecodedPrefix) {
  auto stream = streamgen::generate_stream(spec_3gops());
  const auto s = mpeg2::scan_structure(stream);
  ASSERT_TRUE(s.valid);
  // Destroy GOP 2's second picture header (picture type 7 is invalid):
  // the structure scan fails there and recovery keeps the scanned prefix.
  const auto at = s.gops[2].pictures[1].offset;
  stream[at + 4] = 0xFF;
  stream[at + 5] = 0xFF;
  for (const bool slice_level : {false, true}) {
    const QuarantineRun run = slice_level ? run_slice_quarantine(stream, 39)
                                          : run_gop_quarantine(stream, 39);
    const char* const which = slice_level ? "slice" : "gop";
    ASSERT_TRUE(run.result.ok) << which;
    EXPECT_FALSE(run.result.hung) << which;
    // GOPs 0 and 1 (26 pictures) decode; the partial GOP 2 prefix may add
    // a few more, but never the full 39.
    EXPECT_GE(run.result.pictures, 26) << which;
    EXPECT_LT(run.result.pictures, 39) << which;
    bool truncated = false;
    for (const auto& e : run.result.errors) {
      if (e.cause == RecoveryCause::kScanTruncated) truncated = true;
    }
    EXPECT_TRUE(truncated) << which;
  }
}

// ------------------------------------------------------------- sim model

TEST(SimFaultModel, ConcealmentCostModelIsDeterministic) {
  streamgen::StreamSpec spec = spec_3gops();
  spec.pictures = 26;
  const auto stream = streamgen::generate_stream(spec);
  const sched::StreamProfile profile = sched::profile_stream(stream);

  sched::SimConfig cfg;
  cfg.workers = 4;
  cfg.fault_slice_rate = 0.3;
  cfg.fault_seed = 11;

  const auto a = sched::simulate_gop(profile, cfg);
  const auto b = sched::simulate_gop(profile, cfg);
  EXPECT_EQ(a.concealed_slices, b.concealed_slices);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_GT(a.concealed_slices, 0);
  EXPECT_EQ(a.pictures, 26);

  // Rate 0 conceals nothing; rate 1 conceals every slice; the partial rate
  // sits strictly between.
  sched::SimConfig clean = cfg;
  clean.fault_slice_rate = 0.0;
  EXPECT_EQ(sched::simulate_gop(profile, clean).concealed_slices, 0);
  sched::SimConfig all = cfg;
  all.fault_slice_rate = 1.0;
  const auto full = sched::simulate_gop(profile, all);
  EXPECT_GT(full.concealed_slices, a.concealed_slices);
  // Concealment is cheaper than decoding: the fully-degraded run finishes
  // no later than the clean one.
  EXPECT_LE(full.makespan_ns, sched::simulate_gop(profile, clean).makespan_ns);

  // The slice-level policy sees the same fault schedule.
  const auto sl =
      sched::simulate_slice(profile, cfg, parallel::SlicePolicy::kImproved);
  EXPECT_GT(sl.concealed_slices, 0);
  EXPECT_EQ(sl.pictures, 26);
  EXPECT_EQ(sl.concealed_slices,
            sched::simulate_slice(profile, cfg,
                                  parallel::SlicePolicy::kImproved)
                .concealed_slices);
}

}  // namespace
}  // namespace pmp2
