// Figure 13 — read miss rate versus cache line size (1 MB fully
// associative cache, 8-processor execution): the paper's spatial-locality
// result is that the miss rate halves every time the line size doubles.
#include "bench/common.h"
#include "simcache/cache.h"
#include "simcache/trace_gen.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 13: read miss rate vs line size",
                      "Bilas et al., Fig. 13 (1 MB fully assoc., 8 procs)");
  const int procs = static_cast<int>(flags.get_int("procs", 8));
  const int trace_pics = static_cast<int>(flags.get_int("trace-pictures", 13));
  const auto line_sizes = flags.get_int_list("lines", {16, 32, 64, 128, 256});

  obs::RunReport report("bench_fig13_linesize",
                        "Read miss rate vs cache line size (Fig. 13)");
  report.set_meta("procs", procs).set_meta("trace_pictures", trace_pics);

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width > 704) continue;  // trace volume; override with --max-res
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec = bench::apply_scale(spec, flags);
    const auto stream = bench::load_or_generate(spec);

    // One decode pass feeds every cache geometry.
    std::vector<std::unique_ptr<simcache::MultiCacheSim>> sims;
    simcache::TraceTee tee;
    for (const int line : line_sizes) {
      simcache::CacheConfig cfg;
      cfg.size_bytes = 1 << 20;
      cfg.line_bytes = line;
      cfg.associativity = 0;  // fully associative
      sims.push_back(std::make_unique<simcache::MultiCacheSim>(procs, cfg));
      tee.add(sims.back().get());
    }
    if (!simcache::generate_decode_trace(stream, procs, tee, trace_pics)) {
      std::cerr << "trace generation failed\n";
      return 1;
    }

    std::cout << "\n--- " << res.width << "x" << res.height << " ("
              << trace_pics << "-picture trace, " << procs << " procs) ---\n";
    Series series("line bytes", {"read miss rate", "ratio vs prev line"});
    double prev = 0;
    for (std::size_t i = 0; i < sims.size(); ++i) {
      const auto total = sims[i]->total_stats();
      const double rate = total.read_miss_rate();
      series.add_point(line_sizes[i], {rate, prev > 0 ? rate / prev : 0.0});
      prev = rate;
      report.add_row()
          .set("width", res.width)
          .set("height", res.height)
          .set("line_size", line_sizes[i])
          .set("read_miss_rate", rate);
    }
    series.print(std::cout, 4);
  }
  std::cout << "\nPaper reference (Fig. 13): miss rate halves whenever the"
               " line size doubles -> excellent spatial locality."
               "\nShape to check: 'ratio vs prev line' near 0.5 across the"
               " sweep.\n";
  return bench::finish(flags, report);
}
