// Supporting micro-benchmarks (google-benchmark): throughput of the decode
// kernels the paper's costs decompose into — IDCT, VLC block decode, motion
// compensation, SAD — plus startcode scanning.
//
// The *_Ref / optimized pairs measure the hot-path kernel rewrites against
// the reference implementations they replaced (sparsity-aware IDCT vs the
// dense two-pass transform, SWAR motion compensation vs the scalar loops,
// cached-window bit reading vs per-peek byte gathering, sign-folded VLC
// tables vs lookup + sign bit). The IDCT pairs run over a coefficient-block
// corpus harvested from a decoded 704x480 stream, so the sparsity mix is
// the real decoder's, not a synthetic guess.
//
// `--report-out=BENCH_kernels.json` writes every result (ns/op) plus the
// before/after speedup summary through the standard RunReport machinery;
// remaining arguments are passed to google-benchmark.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <map>
#include <set>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bitstream/startcode.h"
#include "mpeg2/dct.h"
#include "mpeg2/decoder.h"
#include "mpeg2/kernels/kernels.h"
#include "mpeg2/motion.h"
#include "mpeg2/motion_est.h"
#include "mpeg2/vlc_tables.h"
#include "obs/prof/counters.h"
#include "obs/report.h"
#include "streamgen/scene.h"
#include "streamgen/stream_factory.h"
#include "util/rng.h"

namespace {

using namespace pmp2;
using namespace pmp2::mpeg2;

void BM_IdctInt(benchmark::State& state) {
  Rng rng(1);
  Block base{};
  for (int i = 0; i < 16; ++i) {
    base[rng.next_below(64)] = static_cast<std::int16_t>(rng.next_in(-500, 500));
  }
  for (auto _ : state) {
    Block b = base;
    idct_int(b);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdctInt);

void BM_IdctIntDcOnly(benchmark::State& state) {
  for (auto _ : state) {
    Block b{};
    b[0] = 1024;
    idct_int(b);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdctIntDcOnly);

void BM_VlcDctDecode(benchmark::State& state) {
  // Encode a representative coefficient block once; decode it repeatedly.
  BitWriter bw;
  const auto& scan = zigzag_scan();
  Block q{};
  Rng rng(2);
  for (int i = 0; i < 12; ++i) {
    q[scan[1 + i * 5]] = static_cast<std::int16_t>(rng.next_in(1, 12));
  }
  int run = 0;
  bool first = true;
  for (int i = 0; i < 64; ++i) {
    const int level = q[scan[i]];
    if (!level) {
      ++run;
      continue;
    }
    if (first && run == 0 && level == 1) {
      bw.put_bit(1);
      bw.put_bit(0);
    } else {
      const Code c = encode_dct_run_level(false, run, level);
      c.put(bw);
      bw.put_bit(0);
    }
    first = false;
    run = 0;
  }
  dct_eob_code(false).put(bw);
  bw.put(0, 24);
  const auto bytes = bw.take();

  SequenceHeader seq;
  seq.intra_matrix = default_intra_matrix();
  seq.non_intra_matrix = default_non_intra_matrix();
  PictureContext pic;
  pic.seq = &seq;
  for (auto _ : state) {
    BitReader br(bytes);
    Block out;
    WorkMeter work;
    const bool ok = BlockDecoder::decode_non_intra(br, pic, 8, out, work);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcDctDecode);

void BM_MotionCompensate(benchmark::State& state) {
  streamgen::SceneConfig sc;
  sc.width = 352;
  sc.height = 240;
  const streamgen::SceneGenerator scene(sc);
  auto ref = scene.render(0);
  auto dst = scene.render(1);
  const MotionVector mv{3, -3};  // half-pel in both axes (worst case)
  int mb = 0;
  for (auto _ : state) {
    const int mb_x = 1 + (mb % 18);
    const int mb_y = 1 + (mb / 18) % 12;
    mc_macroblock(*ref, 0, *dst, 1, mb_x, mb_y, mv, McMode::kCopy);
    ++mb;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MotionCompensate);

void BM_Sad16x16(benchmark::State& state) {
  streamgen::SceneConfig sc;
  sc.width = 352;
  sc.height = 240;
  const streamgen::SceneGenerator scene(sc);
  auto ref = scene.render(0);
  auto cur = scene.render(1);
  int i = 0;
  for (auto _ : state) {
    const MotionVector mv{static_cast<std::int16_t>((i % 5) - 2), 1};
    benchmark::DoNotOptimize(mb_sad(*ref, *cur, 5, 5, mv));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sad16x16);

void BM_VlcLookupFlat(benchmark::State& state) {
  const VlcDecoder& dec = dct_table_decoder(false);
  Rng rng(11);
  std::vector<std::uint32_t> patterns(4096);
  for (auto& p : patterns) {
    p = static_cast<std::uint32_t>(rng.next_u64()) &
        ((1u << dec.max_len()) - 1);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.lookup(patterns[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcLookupFlat);

void BM_VlcLookupTwoLevel(benchmark::State& state) {
  static const TwoLevelVlcDecoder dec(dct_table_zero_entries(), 8);
  Rng rng(11);
  std::vector<std::uint32_t> patterns(4096);
  for (auto& p : patterns) {
    p = static_cast<std::uint32_t>(rng.next_u64()) &
        ((1u << dec.max_len()) - 1);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.lookup(patterns[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcLookupTwoLevel);

void BM_StartcodeScan(benchmark::State& state) {
  static const std::vector<std::uint8_t> stream = [] {
    streamgen::StreamSpec spec;
    spec.width = 176;
    spec.height = 120;
    spec.pictures = 26;
    spec.bit_rate = 1'500'000;
    return streamgen::generate_stream(spec);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmp2::scan_all_startcodes(stream));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_StartcodeScan);

void BM_DecodePicture(benchmark::State& state) {
  static const std::vector<std::uint8_t> stream = [] {
    streamgen::StreamSpec spec;
    spec.width = 352;
    spec.height = 240;
    spec.pictures = 13;
    spec.bit_rate = 5'000'000;
    return streamgen::generate_stream(spec);
  }();
  for (auto _ : state) {
    Decoder dec;
    int frames = 0;
    const auto st =
        dec.decode_stream(stream, [&](FramePtr) { ++frames; });
    benchmark::DoNotOptimize(st.ok);
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(state.iterations() * 13);
}
BENCHMARK(BM_DecodePicture)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// Before/after kernel pairs
// ---------------------------------------------------------------------------

/// Coefficient blocks harvested from a decoded Table-1 704x480 @ 5 Mbit/s
/// stream (post-dequantize, pre-IDCT), with the exact sparsity of each
/// block. This is the distribution the sparsity-aware IDCT actually sees:
/// the paper's main resolution at its Table-1 bit rate (~0.5 bit/pel), so
/// coded blocks are realistically sparse. Every 17th coded block is kept so
/// the corpus spans the whole GOP (I, P and B pictures) instead of just the
/// dense leading I picture, and the 2048-block cap keeps the working set
/// cache-resident — the pair measures the kernels, not DRAM.
struct BlockCorpus {
  std::vector<Block> blocks;
  std::vector<BlockSparsity> sparsity;
  std::size_t dc_only = 0;
  std::size_t row0_only = 0;  // all coefficients in row 0, not dc_only
  std::size_t nonzero_coeffs = 0;
  std::size_t rows_le2 = 0, rows_le4 = 0;  // pass-1 tier occupancy
  std::size_t cols_le2 = 0, cols_le4 = 0;  // pass-2 tier occupancy
};

const BlockCorpus& block_corpus() {
  static const BlockCorpus corpus = [] {
    struct Capture : BlockObserver {
      std::vector<Block>* out;
      std::size_t seen = 0;
      void on_block(const Block& b, bool) override {
        if (seen++ % 17 == 0 && out->size() < 2048) out->push_back(b);
      }
    };
    BlockCorpus c;
    Capture cap;
    cap.out = &c.blocks;
    streamgen::StreamSpec spec;
    spec.width = 704;
    spec.height = 480;
    spec.pictures = 13;
    const auto stream = streamgen::generate_stream(spec);
    Decoder dec;
    dec.set_block_observer(&cap);
    dec.decode_stream(stream, [](FramePtr) {});
    for (const auto& b : c.blocks) {
      BlockSparsity s = BlockSparsity::none();
      for (int i = 0; i < 64; ++i) {
        if (b[i] != 0) {
          s.mark(i);
          ++c.nonzero_coeffs;
        }
      }
      if (b[0] != 0) s.mark(0);
      c.sparsity.push_back(s);
      if (s.dc_only) ++c.dc_only;
      else if ((s.row_mask & 0xFEu) == 0) ++c.row0_only;
      if ((s.row_mask & 0xFCu) == 0) ++c.rows_le2;
      if ((s.row_mask & 0xF0u) == 0) ++c.rows_le4;
      if ((s.col_mask & 0xFCu) == 0) ++c.cols_le2;
      if ((s.col_mask & 0xF0u) == 0) ++c.cols_le4;
    }
    return c;
  }();
  return corpus;
}

/// The pre-rewrite integer IDCT, kept here verbatim as the before side of
/// the IDCT pairs (the same convention as SeedBitReader below): two full
/// passes with a per-column DC-only skip in pass 1, rounding added in every
/// output descale, no sparsity dispatch. The library's idct_int_dense is
/// NOT used as the baseline because it shares the streamlined kernel body
/// with the sparse path (rounding folded into the even part), which would
/// credit part of this PR's work to the "before" measurement.
namespace seed_idct {

constexpr int kConstBits = 13;
constexpr int kPass1Bits = 2;

constexpr std::int32_t kFix_0_298631336 = 2446;
constexpr std::int32_t kFix_0_390180644 = 3196;
constexpr std::int32_t kFix_0_541196100 = 4433;
constexpr std::int32_t kFix_0_765366865 = 6270;
constexpr std::int32_t kFix_0_899976223 = 7373;
constexpr std::int32_t kFix_1_175875602 = 9633;
constexpr std::int32_t kFix_1_501321110 = 12299;
constexpr std::int32_t kFix_1_847759065 = 15137;
constexpr std::int32_t kFix_1_961570560 = 16069;
constexpr std::int32_t kFix_2_053119869 = 16819;
constexpr std::int32_t kFix_2_562915447 = 20995;
constexpr std::int32_t kFix_3_072711026 = 25172;

constexpr std::int32_t descale(std::int64_t x, int n) {
  return static_cast<std::int32_t>((x + (std::int64_t{1} << (n - 1))) >> n);
}

constexpr std::int64_t mul(std::int64_t a, std::int32_t b) { return a * b; }

void idct_int(Block& block) {
  std::int32_t workspace[64];

  // Pass 1: columns, results scaled up by 2^kPass1Bits.
  for (int col = 0; col < 8; ++col) {
    const std::int16_t* in = block.data() + col;
    std::int32_t* ws = workspace + col;

    if (in[8 * 1] == 0 && in[8 * 2] == 0 && in[8 * 3] == 0 &&
        in[8 * 4] == 0 && in[8 * 5] == 0 && in[8 * 6] == 0 &&
        in[8 * 7] == 0) {
      const std::int32_t dc = static_cast<std::int32_t>(in[0]) << kPass1Bits;
      for (int row = 0; row < 8; ++row) ws[8 * row] = dc;
      continue;
    }

    // Even part.
    std::int64_t z2 = in[8 * 2];
    std::int64_t z3 = in[8 * 6];
    std::int64_t z1 = mul(z2 + z3, kFix_0_541196100);
    const std::int64_t tmp2e = z1 + mul(z3, -kFix_1_847759065);
    const std::int64_t tmp3e = z1 + mul(z2, kFix_0_765366865);
    z2 = in[8 * 0];
    z3 = in[8 * 4];
    const std::int64_t tmp0e = (z2 + z3) << kConstBits;
    const std::int64_t tmp1e = (z2 - z3) << kConstBits;
    const std::int64_t tmp10 = tmp0e + tmp3e;
    const std::int64_t tmp13 = tmp0e - tmp3e;
    const std::int64_t tmp11 = tmp1e + tmp2e;
    const std::int64_t tmp12 = tmp1e - tmp2e;

    // Odd part.
    std::int64_t tmp0 = in[8 * 7];
    std::int64_t tmp1 = in[8 * 5];
    std::int64_t tmp2 = in[8 * 3];
    std::int64_t tmp3 = in[8 * 1];
    z1 = tmp0 + tmp3;
    z2 = tmp1 + tmp2;
    z3 = tmp0 + tmp2;
    std::int64_t z4 = tmp1 + tmp3;
    const std::int64_t z5 = mul(z3 + z4, kFix_1_175875602);
    tmp0 = mul(tmp0, kFix_0_298631336);
    tmp1 = mul(tmp1, kFix_2_053119869);
    tmp2 = mul(tmp2, kFix_3_072711026);
    tmp3 = mul(tmp3, kFix_1_501321110);
    z1 = mul(z1, -kFix_0_899976223);
    z2 = mul(z2, -kFix_2_562915447);
    z3 = mul(z3, -kFix_1_961570560) + z5;
    z4 = mul(z4, -kFix_0_390180644) + z5;
    tmp0 += z1 + z3;
    tmp1 += z2 + z4;
    tmp2 += z2 + z3;
    tmp3 += z1 + z4;

    ws[8 * 0] = descale(tmp10 + tmp3, kConstBits - kPass1Bits);
    ws[8 * 7] = descale(tmp10 - tmp3, kConstBits - kPass1Bits);
    ws[8 * 1] = descale(tmp11 + tmp2, kConstBits - kPass1Bits);
    ws[8 * 6] = descale(tmp11 - tmp2, kConstBits - kPass1Bits);
    ws[8 * 2] = descale(tmp12 + tmp1, kConstBits - kPass1Bits);
    ws[8 * 5] = descale(tmp12 - tmp1, kConstBits - kPass1Bits);
    ws[8 * 3] = descale(tmp13 + tmp0, kConstBits - kPass1Bits);
    ws[8 * 4] = descale(tmp13 - tmp0, kConstBits - kPass1Bits);
  }

  // Pass 2: rows, final descale by kConstBits + kPass1Bits + 3 (the +3 is
  // the 1/8 normalization of the 2-D transform).
  for (int row = 0; row < 8; ++row) {
    const std::int32_t* ws = workspace + row * 8;
    std::int16_t* out = block.data() + row * 8;

    // Even part.
    std::int64_t z2 = ws[2];
    std::int64_t z3 = ws[6];
    std::int64_t z1 = mul(z2 + z3, kFix_0_541196100);
    const std::int64_t tmp2e = z1 + mul(z3, -kFix_1_847759065);
    const std::int64_t tmp3e = z1 + mul(z2, kFix_0_765366865);
    z2 = ws[0];
    z3 = ws[4];
    const std::int64_t tmp0e = (z2 + z3) << kConstBits;
    const std::int64_t tmp1e = (z2 - z3) << kConstBits;
    const std::int64_t tmp10 = tmp0e + tmp3e;
    const std::int64_t tmp13 = tmp0e - tmp3e;
    const std::int64_t tmp11 = tmp1e + tmp2e;
    const std::int64_t tmp12 = tmp1e - tmp2e;

    // Odd part.
    std::int64_t tmp0 = ws[7];
    std::int64_t tmp1 = ws[5];
    std::int64_t tmp2 = ws[3];
    std::int64_t tmp3 = ws[1];
    z1 = tmp0 + tmp3;
    z2 = tmp1 + tmp2;
    z3 = tmp0 + tmp2;
    std::int64_t z4 = tmp1 + tmp3;
    const std::int64_t z5 = mul(z3 + z4, kFix_1_175875602);
    tmp0 = mul(tmp0, kFix_0_298631336);
    tmp1 = mul(tmp1, kFix_2_053119869);
    tmp2 = mul(tmp2, kFix_3_072711026);
    tmp3 = mul(tmp3, kFix_1_501321110);
    z1 = mul(z1, -kFix_0_899976223);
    z2 = mul(z2, -kFix_2_562915447);
    z3 = mul(z3, -kFix_1_961570560) + z5;
    z4 = mul(z4, -kFix_0_390180644) + z5;
    tmp0 += z1 + z3;
    tmp1 += z2 + z4;
    tmp2 += z2 + z3;
    tmp3 += z1 + z4;

    constexpr int kFinal = kConstBits + kPass1Bits + 3;
    out[0] = static_cast<std::int16_t>(descale(tmp10 + tmp3, kFinal));
    out[7] = static_cast<std::int16_t>(descale(tmp10 - tmp3, kFinal));
    out[1] = static_cast<std::int16_t>(descale(tmp11 + tmp2, kFinal));
    out[6] = static_cast<std::int16_t>(descale(tmp11 - tmp2, kFinal));
    out[2] = static_cast<std::int16_t>(descale(tmp12 + tmp1, kFinal));
    out[5] = static_cast<std::int16_t>(descale(tmp12 - tmp1, kFinal));
    out[3] = static_cast<std::int16_t>(descale(tmp13 + tmp0, kFinal));
    out[4] = static_cast<std::int16_t>(descale(tmp13 - tmp0, kFinal));
  }
}

}  // namespace seed_idct

void BM_IdctCorpus_DenseRef(benchmark::State& state) {
  const BlockCorpus& c = block_corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    Block b = c.blocks[i];
    seed_idct::idct_int(b);
    benchmark::DoNotOptimize(b);
    if (++i == c.blocks.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["corpus_blocks"] =
      static_cast<double>(c.blocks.size());
  state.counters["corpus_dc_only"] = static_cast<double>(c.dc_only);
  state.counters["corpus_row0_only"] = static_cast<double>(c.row0_only);
  state.counters["corpus_avg_nnz"] =
      static_cast<double>(c.nonzero_coeffs) /
      static_cast<double>(c.blocks.empty() ? 1 : c.blocks.size());
  state.counters["corpus_rows_le2"] = static_cast<double>(c.rows_le2);
  state.counters["corpus_rows_le4"] = static_cast<double>(c.rows_le4);
  state.counters["corpus_cols_le2"] = static_cast<double>(c.cols_le2);
  state.counters["corpus_cols_le4"] = static_cast<double>(c.cols_le4);
}
BENCHMARK(BM_IdctCorpus_DenseRef);

void BM_IdctCorpus_Sparse(benchmark::State& state) {
  const BlockCorpus& c = block_corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    Block b = c.blocks[i];
    idct_int(b, c.sparsity[i]);
    benchmark::DoNotOptimize(b);
    if (++i == c.blocks.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdctCorpus_Sparse);

void BM_IdctCorpus_SelfDerived(benchmark::State& state) {
  const BlockCorpus& c = block_corpus();
  std::size_t i = 0;
  for (auto _ : state) {
    Block b = c.blocks[i];
    idct_int(b);
    benchmark::DoNotOptimize(b);
    if (++i == c.blocks.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdctCorpus_SelfDerived);

/// Interleaved dense/sparse A-B measurement: both kernels sweep the same
/// corpus within every benchmark iteration, and each half keeps its minimum
/// sweep time across iterations. Because the halves alternate ~300us apart,
/// scheduler steal and frequency drift hit both sides symmetrically, and
/// the per-half minimum is the noise floor — this makes the dense/sparse
/// ratio reproducible on shared machines where separately-run benchmarks
/// drift by +-20% between invocations. The official sparse_idct speedup in
/// the report is derived from this pair's counters.
void BM_IdctCorpus_Pair(benchmark::State& state) {
  const BlockCorpus& c = block_corpus();
  const std::size_t n = c.blocks.size();
  std::vector<Block> scratch(n);
  benchmark::DoNotOptimize(scratch.data());
  double dense_min = 0.0;
  double sparse_min = 0.0;
  for (auto _ : state) {
    // Refresh the inputs outside the timed windows: the sweeps time the
    // transforms alone, not the 128-byte block copies common to both.
    std::memcpy(scratch.data(), c.blocks.data(), n * sizeof(Block));
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      seed_idct::idct_int(scratch[i]);
    }
    benchmark::ClobberMemory();
    const auto t1 = std::chrono::steady_clock::now();
    std::memcpy(scratch.data(), c.blocks.data(), n * sizeof(Block));
    const auto t2 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < n; ++i) {
      idct_int(scratch[i], c.sparsity[i]);
    }
    benchmark::ClobberMemory();
    const auto t3 = std::chrono::steady_clock::now();
    const double d = std::chrono::duration<double, std::nano>(t1 - t0).count();
    const double s = std::chrono::duration<double, std::nano>(t3 - t2).count();
    if (dense_min == 0.0 || d < dense_min) dense_min = d;
    if (sparse_min == 0.0 || s < sparse_min) sparse_min = s;
  }
  const double nd = static_cast<double>(n == 0 ? 1 : n);
  state.counters["dense_ns"] = dense_min / nd;
  state.counters["sparse_ns"] = sparse_min / nd;
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_IdctCorpus_Pair)->Unit(benchmark::kMicrosecond);

void BM_IdctDcOnly_DenseRef(benchmark::State& state) {
  for (auto _ : state) {
    Block b{};
    b[0] = 1024;
    seed_idct::idct_int(b);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdctDcOnly_DenseRef);

/// One 16x16 luma prediction, diagonal half-pel — the most expensive
/// interpolation — copy and bidirectional-average variants, scalar
/// reference vs the SWAR kernels.
template <bool Avg, bool Ref>
void BM_McHalfPel(benchmark::State& state) {
  Rng rng(5);
  std::vector<std::uint8_t> ref_plane(64 * 64);
  for (auto& p : ref_plane) p = static_cast<std::uint8_t>(rng.next_below(256));
  std::vector<std::uint8_t> dst(64 * 64, 128);
  const McMode mode = Avg ? McMode::kAverage : McMode::kCopy;
  for (auto _ : state) {
    if constexpr (Ref) {
      form_prediction_reference(ref_plane.data(), 64, dst.data(), 64, 8, 8,
                                16, 16, 3, -3, mode);
    } else {
      form_prediction(ref_plane.data(), 64, dst.data(), 64, 8, 8, 16, 16, 3,
                      -3, mode);
    }
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetItemsProcessed(state.iterations());
}
void BM_McHalfPelCopy_Ref(benchmark::State& s) { BM_McHalfPel<false, true>(s); }
void BM_McHalfPelCopy_Swar(benchmark::State& s) {
  BM_McHalfPel<false, false>(s);
}
void BM_McHalfPelAvg_Ref(benchmark::State& s) { BM_McHalfPel<true, true>(s); }
void BM_McHalfPelAvg_Swar(benchmark::State& s) { BM_McHalfPel<true, false>(s); }
BENCHMARK(BM_McHalfPelCopy_Ref);
BENCHMARK(BM_McHalfPelCopy_Swar);
BENCHMARK(BM_McHalfPelAvg_Ref);
BENCHMARK(BM_McHalfPelAvg_Swar);

/// The pre-rewrite BitReader::peek: gather 8 bytes around the position on
/// every call. Kept here verbatim as the before side of the pair.
std::uint32_t peek_byte_gather(std::span<const std::uint8_t> data,
                               std::uint64_t bitpos, int n) {
  if (n == 0) return 0;
  const std::uint64_t byte = bitpos >> 3;
  std::uint64_t window = 0;
  for (int i = 0; i < 8; ++i) {
    const std::uint64_t idx = byte + static_cast<std::uint64_t>(i);
    const std::uint8_t b = idx < data.size() ? data[idx] : 0;
    window = (window << 8) | b;
  }
  const int shift = 64 - static_cast<int>(bitpos & 7) - n;
  return static_cast<std::uint32_t>(
      (window >> shift) &
      ((n == 32) ? 0xFFFFFFFFULL : ((1ULL << n) - 1)));
}

/// VLC-decoder-shaped access pattern: wide peek, data-dependent short skip.
const std::vector<std::uint8_t>& peek_buffer() {
  static const std::vector<std::uint8_t> buf = [] {
    Rng rng(17);
    std::vector<std::uint8_t> b(1 << 16);
    for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_below(256));
    return b;
  }();
  return buf;
}

void BM_BitReaderPeekSkip_ByteGatherRef(benchmark::State& state) {
  const auto& buf = peek_buffer();
  const std::uint64_t end = (buf.size() - 8) * 8;
  std::uint64_t pos = 0;
  for (auto _ : state) {
    const std::uint32_t v = peek_byte_gather(buf, pos, 16);
    benchmark::DoNotOptimize(v);
    pos += (v & 15) + 2;
    if (pos >= end) pos = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitReaderPeekSkip_ByteGatherRef);

void BM_BitReaderPeekSkip_Window(benchmark::State& state) {
  const auto& buf = peek_buffer();
  const std::uint64_t end = (buf.size() - 8) * 8;
  BitReader br(buf);
  for (auto _ : state) {
    const std::uint32_t v = br.peek(16);
    benchmark::DoNotOptimize(v);
    br.skip(static_cast<int>(v & 15) + 2);
    if (br.bit_position() >= end) br.seek_bits(0);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BitReaderPeekSkip_Window);

/// The DCT coefficient AC loop in isolation, before vs after the
/// sign-folding: unsigned (run, level) lookup + separate sign bit against
/// one signed lookup. Both decode the same pre-encoded coefficient blocks.
const std::vector<std::vector<std::uint8_t>>& encoded_blocks() {
  static const std::vector<std::vector<std::uint8_t>> blocks = [] {
    Rng rng(23);
    std::vector<std::vector<std::uint8_t>> out;
    const auto& scan = zigzag_scan();
    for (int blk = 0; blk < 256; ++blk) {
      Block q{};
      const int ncoef = 2 + static_cast<int>(rng.next_below(14));
      for (int i = 0; i < ncoef; ++i) {
        const int pos = 1 + static_cast<int>(rng.next_below(40));
        const int level = 1 + static_cast<int>(rng.next_below(6));
        q[scan[pos]] = static_cast<std::int16_t>(
            rng.next_below(2) ? level : -level);
      }
      BitWriter bw;
      int run = 0;
      for (int i = 1; i < 64; ++i) {
        const int level = q[scan[i]];
        if (!level) {
          ++run;
          continue;
        }
        const int mag = level > 0 ? level : -level;
        const Code c = encode_dct_run_level(false, run, mag);
        if (c.len != 0) {
          c.put(bw);
          bw.put_bit(level < 0);
        } else {
          dct_escape_code().put(bw);
          bw.put(static_cast<std::uint32_t>(run), 6);
          bw.put(static_cast<std::uint32_t>(level) & 0xFFF, 12);
        }
        run = 0;
      }
      dct_eob_code(false).put(bw);
      bw.put(0, 24);
      out.push_back(bw.take());
    }
    return out;
  }();
  return blocks;
}

/// The seed's whole DCT AC decode path: byte-gather bit reads (the
/// pre-rewrite BitReader) driving the unsigned table + separate sign bit.
/// Against BM_VlcAcLoop_Signed this measures the combined effect of the
/// cached-window reader and the sign-folded tables on VLC block decode;
/// BM_VlcAcLoop_UnsignedRef isolates the sign-folding alone.
struct SeedBitReader {
  std::span<const std::uint8_t> data;
  std::uint64_t pos = 0;

  [[nodiscard]] std::uint32_t peek(int n) const {
    return peek_byte_gather(data, pos, n);
  }
  void skip(int n) { pos += static_cast<std::uint64_t>(n); }
  std::uint32_t get(int n) {
    const std::uint32_t v = peek(n);
    skip(n);
    return v;
  }
  std::uint32_t get_bit() { return get(1); }
};

void BM_VlcAcLoop_SeedRef(benchmark::State& state) {
  const auto& blocks = encoded_blocks();
  const VlcDecoder& dec = dct_table_decoder(false);
  const auto& scan = zigzag_scan();
  std::size_t i = 0;
  for (auto _ : state) {
    SeedBitReader br{blocks[i]};
    Block q{};
    int idx = 1;
    for (;;) {
      const VlcDecoder::Result r = dec.lookup(br.peek(dec.max_len()));
      if (r.len == 0) break;
      br.skip(r.len);
      const std::int16_t value = r.value;
      if (value == kVlcEob) break;
      int run, level;
      if (value == kVlcEscape) {
        run = static_cast<int>(br.get(6));
        int v = static_cast<int>(br.get(12));
        if (v & 0x800) v -= 4096;
        level = v;
      } else {
        run = unpack_run(value);
        level = unpack_level(value);
        if (br.get_bit()) level = -level;
      }
      idx += run;
      if (idx > 63) break;
      q[scan[idx]] = static_cast<std::int16_t>(level);
      ++idx;
    }
    benchmark::DoNotOptimize(q);
    if (++i == blocks.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcAcLoop_SeedRef);

void BM_VlcAcLoop_UnsignedRef(benchmark::State& state) {
  const auto& blocks = encoded_blocks();
  const VlcDecoder& dec = dct_table_decoder(false);
  const auto& scan = zigzag_scan();
  std::size_t i = 0;
  for (auto _ : state) {
    BitReader br(blocks[i]);
    Block q{};
    int idx = 1;
    for (;;) {
      std::int16_t value;
      if (!dec.decode(br, value)) break;
      if (value == kVlcEob) break;
      int run, level;
      if (value == kVlcEscape) {
        run = static_cast<int>(br.get(6));
        int v = static_cast<int>(br.get(12));
        if (v & 0x800) v -= 4096;
        level = v;
      } else {
        run = unpack_run(value);
        level = unpack_level(value);
        if (br.get_bit()) level = -level;
      }
      idx += run;
      if (idx > 63) break;
      q[scan[idx]] = static_cast<std::int16_t>(level);
      ++idx;
    }
    benchmark::DoNotOptimize(q);
    if (++i == blocks.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcAcLoop_UnsignedRef);

void BM_VlcAcLoop_Signed(benchmark::State& state) {
  const auto& blocks = encoded_blocks();
  const DctCoeffDecoder& dec = dct_coeff_decoder(false);
  const auto& scan = zigzag_scan();
  std::size_t i = 0;
  for (auto _ : state) {
    BitReader br(blocks[i]);
    Block q{};
    int idx = 1;
    for (;;) {
      std::int16_t value;
      if (!dec.decode(br, value)) break;
      if (value == kVlcEob) break;
      int run, level;
      if (value == kVlcEscape) {
        run = static_cast<int>(br.get(6));
        int v = static_cast<int>(br.get(12));
        if (v & 0x800) v -= 4096;
        level = v;
      } else {
        run = unpack_signed_run(value);
        level = unpack_signed_level(value);
      }
      idx += run;
      if (idx > 63) break;
      q[scan[idx]] = static_cast<std::int16_t>(level);
      ++idx;
    }
    benchmark::DoNotOptimize(q);
    if (++i == blocks.size()) i = 0;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcAcLoop_Signed);

void BM_VlcLookupSignedFlat(benchmark::State& state) {
  const DctCoeffDecoder& dec = dct_coeff_decoder(false);
  Rng rng(11);
  std::vector<std::uint32_t> patterns(4096);
  for (auto& p : patterns) {
    p = static_cast<std::uint32_t>(rng.next_u64()) &
        ((1u << dec.max_len()) - 1);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.lookup(patterns[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcLookupSignedFlat);

void BM_VlcLookupSignedTwoLevel(benchmark::State& state) {
  static const TwoLevelVlcDecoder dec(dct_signed_entries(false), 10);
  Rng rng(11);
  std::vector<std::uint32_t> patterns(4096);
  for (auto& p : patterns) {
    p = static_cast<std::uint32_t>(rng.next_u64()) &
        ((1u << dec.max_len()) - 1);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.lookup(patterns[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcLookupSignedTwoLevel);

// ---------------------------------------------------------------------------
// Per-backend kernel-table pairs: scalar dispatch table (the PR 2
// SWAR/scalar kernels) vs each SIMD backend, one registered benchmark per
// (kernel family, backend). Same interleaved min-of-sweeps discipline as
// BM_IdctCorpus_Pair, so the ratios survive shared-runner noise; the
// per-backend geometric mean over all families is the headline number
// bench_check guards (the AVX2 gate is >= 1.5x).
// ---------------------------------------------------------------------------

namespace kernels = pmp2::mpeg2::kernels;
namespace prof = pmp2::obs::prof;

/// Per-thread hardware counters for the A/B sweeps, or null when the host
/// has no usable PMU (the sweep then stays time-only). The reads sit
/// outside the timed regions, so enabling them never perturbs the ns/op
/// numbers.
prof::ThreadCounters* sweep_counters() {
  static const std::unique_ptr<prof::CounterSource> source =
      prof::make_counter_source();
  static const bool hw =
      (source->mask() & prof::counter_bit(prof::Counter::kCycles)) &&
      (source->mask() & prof::counter_bit(prof::Counter::kInstructions));
  static thread_local std::unique_ptr<prof::ThreadCounters> tc =
      hw ? source->open_thread() : nullptr;
  return tc.get();
}

/// Interleaved A-B harness: per benchmark iteration run prep_a + timed a,
/// then prep_b + timed b, keeping each side's minimum sweep time. Emits
/// before_ns / after_ns counters normalized per op; on PMU hosts also the
/// minimum sweep's cycles and instructions per op for both sides.
template <typename PA, typename FA, typename PB, typename FB>
void ab_sweep(benchmark::State& state, double ops_per_sweep, PA&& prep_a,
              FA&& a, PB&& prep_b, FB&& b) {
  using clock = std::chrono::steady_clock;
  prof::ThreadCounters* const ctr = sweep_counters();
  double a_min = 0.0;
  double b_min = 0.0;
  prof::CounterSample a_ctr, b_ctr;  // counter deltas of the min sweeps
  for (auto _ : state) {
    prep_a();
    prof::CounterSample c0, c1;
    if (ctr) ctr->read(&c0);
    const auto t0 = clock::now();
    a();
    benchmark::ClobberMemory();
    const auto t1 = clock::now();
    if (ctr) ctr->read(&c1);
    prep_b();
    prof::CounterSample c2, c3;
    if (ctr) ctr->read(&c2);
    const auto t2 = clock::now();
    b();
    benchmark::ClobberMemory();
    const auto t3 = clock::now();
    if (ctr) ctr->read(&c3);
    const double da = std::chrono::duration<double, std::nano>(t1 - t0).count();
    const double db = std::chrono::duration<double, std::nano>(t3 - t2).count();
    if (a_min == 0.0 || da < a_min) {
      a_min = da;
      if (ctr) a_ctr = c1.delta_since(c0);
    }
    if (b_min == 0.0 || db < b_min) {
      b_min = db;
      if (ctr) b_ctr = c3.delta_since(c2);
    }
  }
  state.counters["before_ns"] = a_min / ops_per_sweep;
  state.counters["after_ns"] = b_min / ops_per_sweep;
  if (ctr) {
    state.counters["before_cycles"] =
        static_cast<double>(a_ctr.get(prof::Counter::kCycles)) /
        ops_per_sweep;
    state.counters["before_instructions"] =
        static_cast<double>(a_ctr.get(prof::Counter::kInstructions)) /
        ops_per_sweep;
    state.counters["after_cycles"] =
        static_cast<double>(b_ctr.get(prof::Counter::kCycles)) /
        ops_per_sweep;
    state.counters["after_instructions"] =
        static_cast<double>(b_ctr.get(prof::Counter::kInstructions)) /
        ops_per_sweep;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * ops_per_sweep));
}

void mc_pair(benchmark::State& state, const kernels::KernelTable* sc,
             const kernels::KernelTable* kt, bool avg) {
  Rng rng(5);
  std::vector<std::uint8_t> ref(64 * 64);
  for (auto& p : ref) p = static_cast<std::uint8_t>(rng.next_below(256));
  std::vector<std::uint8_t> dst(64 * 64, 128);
  // Diagonal half-pel 16x16 luma prediction, the most expensive taps.
  constexpr int kCalls = 512;
  const auto run = [&](const kernels::KernelTable* k) {
    for (int i = 0; i < kCalls; ++i) {
      k->mc(ref.data() + 65, 64, dst.data() + 65, 64, 16, 16, true, true,
            avg);
    }
    benchmark::DoNotOptimize(dst.data());
  };
  ab_sweep(
      state, kCalls, [] {}, [&] { run(sc); }, [] {}, [&] { run(kt); });
}

void conceal_pair(benchmark::State& state, const kernels::KernelTable* sc,
                  const kernels::KernelTable* kt, bool fill) {
  Rng rng(7);
  std::vector<std::uint8_t> src(384 * 20);
  for (auto& p : src) p = static_cast<std::uint8_t>(rng.next_below(256));
  std::vector<std::uint8_t> dst(384 * 20, 0);
  // One concealed luma slice row at CIF width: 16 rows x 352 pels.
  constexpr int kCalls = 512;
  const auto run = [&](const kernels::KernelTable* k) {
    for (int i = 0; i < kCalls; ++i) {
      if (fill) {
        k->conceal_fill(dst.data(), 384, 128, 352, 16);
      } else {
        k->conceal_copy(dst.data(), 384, src.data(), 384, 352, 16);
      }
    }
    benchmark::DoNotOptimize(dst.data());
  };
  ab_sweep(
      state, kCalls, [] {}, [&] { run(sc); }, [] {}, [&] { run(kt); });
}

void sad16_pair(benchmark::State& state, const kernels::KernelTable* sc,
                const kernels::KernelTable* kt) {
  Rng rng(9);
  std::vector<std::uint8_t> ref(64 * 64), cur(64 * 64);
  for (auto& p : ref) p = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& p : cur) p = static_cast<std::uint8_t>(rng.next_below(256));
  constexpr int kCalls = 512;
  const auto run = [&](const kernels::KernelTable* k) {
    int sum = 0;
    for (int i = 0; i < kCalls; ++i) {
      sum += k->sad16(ref.data() + 65, 64, cur.data(), 64, true, true);
    }
    benchmark::DoNotOptimize(sum);
  };
  ab_sweep(
      state, kCalls, [] {}, [&] { run(sc); }, [] {}, [&] { run(kt); });
}

void sse_plane_pair(benchmark::State& state, const kernels::KernelTable* sc,
                    const kernels::KernelTable* kt) {
  Rng rng(13);
  std::vector<std::uint8_t> a(352 * 240), b(352 * 240);
  for (auto& p : a) p = static_cast<std::uint8_t>(rng.next_below(256));
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::uint8_t>(a[i] + (rng.next_below(7)) - 3);
  }
  constexpr int kCalls = 4;
  const auto run = [&](const kernels::KernelTable* k) {
    std::uint64_t sum = 0;
    for (int i = 0; i < kCalls; ++i) {
      sum += k->sse_plane(a.data(), 352, b.data(), 352, 352, 240);
    }
    benchmark::DoNotOptimize(sum);
  };
  ab_sweep(
      state, kCalls, [] {}, [&] { run(sc); }, [] {}, [&] { run(kt); });
}

void idct_corpus_pair(benchmark::State& state,
                      const kernels::KernelTable* sc,
                      const kernels::KernelTable* kt) {
  const BlockCorpus& c = block_corpus();
  const std::size_t n = c.blocks.size();
  std::vector<Block> scratch(n);
  benchmark::DoNotOptimize(scratch.data());
  const auto refresh = [&] {
    std::memcpy(scratch.data(), c.blocks.data(), n * sizeof(Block));
  };
  const auto run = [&](const kernels::KernelTable* k) {
    for (std::size_t i = 0; i < n; ++i) k->idct(scratch[i], c.sparsity[i]);
    benchmark::DoNotOptimize(scratch.data());
  };
  ab_sweep(
      state, static_cast<double>(n == 0 ? 1 : n), refresh, [&] { run(sc); },
      refresh, [&] { run(kt); });
}

// Dense blocks (every column carries AC energy) exercise the pure vector
// butterfly with no occupancy shortcut on either side — the corpus pair
// above measures the blend the decoder actually sees, this pair isolates
// the vector kernel's win on the blocks it is dispatched to.
void idct_dense_pair(benchmark::State& state,
                     const kernels::KernelTable* sc,
                     const kernels::KernelTable* kt) {
  constexpr std::size_t kBlocks = 256;
  std::vector<Block> dense(kBlocks);
  std::uint32_t rng = 0x2545F491u;
  for (Block& b : dense) {
    for (int i = 0; i < 64; ++i) {
      rng = rng * 1664525u + 1013904223u;
      // Typical post-quantization coefficient magnitudes, never zero.
      const int v = 1 + static_cast<int>(rng % 300u);
      b[i] = static_cast<std::int16_t>((rng & 0x8000u) ? -v : v);
    }
  }
  std::vector<Block> scratch(kBlocks);
  benchmark::DoNotOptimize(scratch.data());
  const auto refresh = [&] {
    std::memcpy(scratch.data(), dense.data(), kBlocks * sizeof(Block));
  };
  const auto run = [&](const kernels::KernelTable* k) {
    for (std::size_t i = 0; i < kBlocks; ++i) {
      k->idct(scratch[i], BlockSparsity::dense());
    }
    benchmark::DoNotOptimize(scratch.data());
  };
  ab_sweep(
      state, static_cast<double>(kBlocks), refresh, [&] { run(sc); }, refresh,
      [&] { run(kt); });
}

struct BackendPair {
  std::string label;    // report row key, e.g. "mc_halfpel_copy_sse2"
  std::string bench;    // registered benchmark name
  std::string backend;  // "sse2" / "avx2"
};
std::vector<BackendPair> g_backend_pairs;

void register_backend_pairs() {
  const kernels::KernelTable* sc = &kernels::table(kernels::Backend::kScalar);
  for (const kernels::Backend b : kernels::available_backends()) {
    if (b == kernels::Backend::kScalar) continue;
    const kernels::KernelTable* kt = &kernels::table(b);
    const std::string bn = kernels::backend_name(b);
    const auto add = [&](const std::string& family, auto body) {
      const std::string name = "BM_Kernels_" + family + "_" + bn;
      g_backend_pairs.push_back({family + "_" + bn, name, bn});
      benchmark::RegisterBenchmark(name.c_str(), body)
          ->Unit(benchmark::kMicrosecond);
    };
    add("mc_halfpel_copy", [sc, kt](benchmark::State& s) {
      mc_pair(s, sc, kt, false);
    });
    add("mc_halfpel_avg", [sc, kt](benchmark::State& s) {
      mc_pair(s, sc, kt, true);
    });
    add("conceal_copy", [sc, kt](benchmark::State& s) {
      conceal_pair(s, sc, kt, false);
    });
    add("conceal_fill", [sc, kt](benchmark::State& s) {
      conceal_pair(s, sc, kt, true);
    });
    add("sad16_halfpel", [sc, kt](benchmark::State& s) {
      sad16_pair(s, sc, kt);
    });
    add("psnr_sse_plane", [sc, kt](benchmark::State& s) {
      sse_plane_pair(s, sc, kt);
    });
    add("idct_corpus", [sc, kt](benchmark::State& s) {
      idct_corpus_pair(s, sc, kt);
    });
    add("idct_dense", [sc, kt](benchmark::State& s) {
      idct_dense_pair(s, sc, kt);
    });
  }
}

// ---------------------------------------------------------------------------
// Reporting main: console output as usual, plus --report-out=PATH JSON with
// per-benchmark ns/op and the before/after speedup summary.
// ---------------------------------------------------------------------------

// Captures per-iteration CPU time (not wall time): these are single-threaded
// compute kernels, and process CPU time is immune to the scheduler steal /
// frequency noise that dominates wall clock on shared machines.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    for (const auto& run : runs) {
      if (run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      // Skip --benchmark_repetitions aggregate rows; the raw repetitions
      // are folded into a per-name minimum below.
      for (const char* suffix : {"_mean", "_median", "_stddev", "_cv"}) {
        if (name.size() > std::strlen(suffix) &&
            name.compare(name.size() - std::strlen(suffix),
                         std::string::npos, suffix) == 0) {
          goto next_run;
        }
      }
      {
        const double iters =
            run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
        results.emplace_back(name, run.cpu_accumulated_time / iters * 1e9);
        for (const auto& [cname, counter] : run.counters) {
          results.emplace_back(name + "/" + cname, counter.value);
        }
      }
    next_run:;
    }
  }
  std::vector<std::pair<std::string, double>> results;
};

/// Minimum ns/op across repetitions of `name` — the noise-floor estimate.
/// Interference (scheduler steal, frequency dips) only ever adds time, so
/// the min over repetitions is the most repeatable per-op figure.
double find_ns(const std::vector<std::pair<std::string, double>>& results,
               const std::string& name) {
  double best = 0.0;
  for (const auto& [n, ns] : results) {
    if (n == name && (best == 0.0 || ns < best)) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  std::string report_out;
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--report-out=", 0) == 0) {
      report_out = arg.substr(std::strlen("--report-out="));
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, bench_args.data())) {
    return 1;
  }
  register_backend_pairs();
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  if (report_out.empty()) return 0;

  obs::RunReport report(
      "bench_micro_kernels",
      "Decode-kernel micro-benchmarks: ns/op per kernel plus before/after "
      "speedups of the optimized hot paths");
  const prof::HostProfile host = prof::probe_host();
  report.set_meta("kernels_backend", kernels::active().name)
      .set_meta("cpu_features", kernels::cpu_features())
      .set_meta("kernel_release", host.kernel_release)
      .set_meta("perf_event_paranoid",
                static_cast<std::int64_t>(host.perf_event_paranoid))
      .set_meta("counter_source", host.source)
      .set_meta("counters_available", host.hw_available);
  std::set<std::string> reported;
  for (const auto& [name, ns] : reporter.results) {
    if (!reported.insert(name).second) continue;
    report.add_row()
        .set("benchmark", name)
        .set("ns_per_op", find_ns(reporter.results, name));
  }
  const struct {
    const char* label;
    const char* before;
    const char* after;
  } pairs[] = {
      {"sparse_idct", "BM_IdctCorpus_Pair/dense_ns",
       "BM_IdctCorpus_Pair/sparse_ns"},
      {"dc_only_idct", "BM_IdctDcOnly_DenseRef", "BM_IdctIntDcOnly"},
      {"mc_halfpel_copy", "BM_McHalfPelCopy_Ref", "BM_McHalfPelCopy_Swar"},
      {"mc_halfpel_avg", "BM_McHalfPelAvg_Ref", "BM_McHalfPelAvg_Swar"},
      {"bitreader_peek_skip", "BM_BitReaderPeekSkip_ByteGatherRef",
       "BM_BitReaderPeekSkip_Window"},
      {"vlc_block_decode", "BM_VlcAcLoop_SeedRef", "BM_VlcAcLoop_Signed"},
      {"vlc_sign_folding", "BM_VlcAcLoop_UnsignedRef", "BM_VlcAcLoop_Signed"},
  };
  for (const auto& p : pairs) {
    const double before = find_ns(reporter.results, p.before);
    const double after = find_ns(reporter.results, p.after);
    if (before <= 0.0 || after <= 0.0) continue;
    report.add_row()
        .set("speedup", p.label)
        .set("before_ns", before)
        .set("after_ns", after)
        .set("ratio", before / after);
    std::cout << "speedup " << p.label << ": " << before / after << "x ("
              << before << " -> " << after << " ns)\n";
  }
  // Per-backend kernel-table pairs (before = the scalar dispatch table)
  // plus each backend's geometric-mean speedup across all kernel families
  // that ran.
  std::map<std::string, std::vector<double>> ratios_by_backend;
  for (const auto& p : g_backend_pairs) {
    const double before = find_ns(reporter.results, p.bench + "/before_ns");
    const double after = find_ns(reporter.results, p.bench + "/after_ns");
    if (before <= 0.0 || after <= 0.0) continue;
    auto& row = report.add_row();
    row.set("speedup", p.label)
        .set("before_ns", before)
        .set("after_ns", after)
        .set("ratio", before / after);
    // Counter columns (PMU hosts only): cycles and instructions per op for
    // both sides of the pair, plus the derived IPC. bench_check compares
    // them only between runs whose counter_source matches.
    const double bc = find_ns(reporter.results, p.bench + "/before_cycles");
    const double bi =
        find_ns(reporter.results, p.bench + "/before_instructions");
    const double ac = find_ns(reporter.results, p.bench + "/after_cycles");
    const double ai =
        find_ns(reporter.results, p.bench + "/after_instructions");
    if (bc > 0.0 && ac > 0.0) {
      row.set("cycles_per_op_before", bc)
          .set("cycles_per_op_after", ac)
          .set("instructions_per_op_before", bi)
          .set("instructions_per_op_after", ai);
      if (bi > 0.0) row.set("ipc_before", bi / bc);
      if (ai > 0.0) row.set("ipc_after", ai / ac);
    }
    std::cout << "speedup " << p.label << ": " << before / after << "x ("
              << before << " -> " << after << " ns)\n";
    ratios_by_backend[p.backend].push_back(before / after);
  }
  for (const auto& [bn, ratios] : ratios_by_backend) {
    double log_sum = 0.0;
    for (const double r : ratios) log_sum += std::log(r);
    const double geomean =
        std::exp(log_sum / static_cast<double>(ratios.size()));
    report.add_row()
        .set("speedup", "geomean_" + bn)
        .set("ratio", geomean);
    std::cout << "speedup geomean_" << bn << ": " << geomean << "x over "
              << ratios.size() << " kernel families\n";
  }
  if (!report.write_file(report_out)) {
    std::cerr << "error: cannot write report to " << report_out << "\n";
    return 1;
  }
  std::cerr << "wrote report: " << report_out << "\n";
  return 0;
}
