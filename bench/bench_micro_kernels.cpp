// Supporting micro-benchmarks (google-benchmark): throughput of the decode
// kernels the paper's costs decompose into — IDCT, VLC block decode, motion
// compensation, SAD — plus startcode scanning.
#include <benchmark/benchmark.h>

#include "bitstream/startcode.h"
#include "mpeg2/dct.h"
#include "mpeg2/decoder.h"
#include "mpeg2/motion.h"
#include "mpeg2/motion_est.h"
#include "mpeg2/vlc_tables.h"
#include "streamgen/scene.h"
#include "streamgen/stream_factory.h"
#include "util/rng.h"

namespace {

using namespace pmp2;
using namespace pmp2::mpeg2;

void BM_IdctInt(benchmark::State& state) {
  Rng rng(1);
  Block base{};
  for (int i = 0; i < 16; ++i) {
    base[rng.next_below(64)] = static_cast<std::int16_t>(rng.next_in(-500, 500));
  }
  for (auto _ : state) {
    Block b = base;
    idct_int(b);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdctInt);

void BM_IdctIntDcOnly(benchmark::State& state) {
  for (auto _ : state) {
    Block b{};
    b[0] = 1024;
    idct_int(b);
    benchmark::DoNotOptimize(b);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IdctIntDcOnly);

void BM_VlcDctDecode(benchmark::State& state) {
  // Encode a representative coefficient block once; decode it repeatedly.
  BitWriter bw;
  const auto& scan = zigzag_scan();
  Block q{};
  Rng rng(2);
  for (int i = 0; i < 12; ++i) {
    q[scan[1 + i * 5]] = static_cast<std::int16_t>(rng.next_in(1, 12));
  }
  int run = 0;
  bool first = true;
  for (int i = 0; i < 64; ++i) {
    const int level = q[scan[i]];
    if (!level) {
      ++run;
      continue;
    }
    if (first && run == 0 && level == 1) {
      bw.put_bit(1);
      bw.put_bit(0);
    } else {
      const Code c = encode_dct_run_level(false, run, level);
      c.put(bw);
      bw.put_bit(0);
    }
    first = false;
    run = 0;
  }
  dct_eob_code(false).put(bw);
  bw.put(0, 24);
  const auto bytes = bw.take();

  SequenceHeader seq;
  seq.intra_matrix = default_intra_matrix();
  seq.non_intra_matrix = default_non_intra_matrix();
  PictureContext pic;
  pic.seq = &seq;
  for (auto _ : state) {
    BitReader br(bytes);
    Block out;
    WorkMeter work;
    const bool ok = BlockDecoder::decode_non_intra(br, pic, 8, out, work);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcDctDecode);

void BM_MotionCompensate(benchmark::State& state) {
  streamgen::SceneConfig sc;
  sc.width = 352;
  sc.height = 240;
  const streamgen::SceneGenerator scene(sc);
  auto ref = scene.render(0);
  auto dst = scene.render(1);
  const MotionVector mv{3, -3};  // half-pel in both axes (worst case)
  int mb = 0;
  for (auto _ : state) {
    const int mb_x = 1 + (mb % 18);
    const int mb_y = 1 + (mb / 18) % 12;
    mc_macroblock(*ref, 0, *dst, 1, mb_x, mb_y, mv, McMode::kCopy);
    ++mb;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MotionCompensate);

void BM_Sad16x16(benchmark::State& state) {
  streamgen::SceneConfig sc;
  sc.width = 352;
  sc.height = 240;
  const streamgen::SceneGenerator scene(sc);
  auto ref = scene.render(0);
  auto cur = scene.render(1);
  int i = 0;
  for (auto _ : state) {
    const MotionVector mv{static_cast<std::int16_t>((i % 5) - 2), 1};
    benchmark::DoNotOptimize(mb_sad(*ref, *cur, 5, 5, mv));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Sad16x16);

void BM_VlcLookupFlat(benchmark::State& state) {
  const VlcDecoder& dec = dct_table_decoder(false);
  Rng rng(11);
  std::vector<std::uint32_t> patterns(4096);
  for (auto& p : patterns) {
    p = static_cast<std::uint32_t>(rng.next_u64()) &
        ((1u << dec.max_len()) - 1);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.lookup(patterns[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcLookupFlat);

void BM_VlcLookupTwoLevel(benchmark::State& state) {
  static const TwoLevelVlcDecoder dec(dct_table_zero_entries(), 8);
  Rng rng(11);
  std::vector<std::uint32_t> patterns(4096);
  for (auto& p : patterns) {
    p = static_cast<std::uint32_t>(rng.next_u64()) &
        ((1u << dec.max_len()) - 1);
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(dec.lookup(patterns[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VlcLookupTwoLevel);

void BM_StartcodeScan(benchmark::State& state) {
  static const std::vector<std::uint8_t> stream = [] {
    streamgen::StreamSpec spec;
    spec.width = 176;
    spec.height = 120;
    spec.pictures = 26;
    spec.bit_rate = 1'500'000;
    return streamgen::generate_stream(spec);
  }();
  for (auto _ : state) {
    benchmark::DoNotOptimize(pmp2::scan_all_startcodes(stream));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(stream.size()));
}
BENCHMARK(BM_StartcodeScan);

void BM_DecodePicture(benchmark::State& state) {
  static const std::vector<std::uint8_t> stream = [] {
    streamgen::StreamSpec spec;
    spec.width = 352;
    spec.height = 240;
    spec.pictures = 13;
    spec.bit_rate = 5'000'000;
    return streamgen::generate_stream(spec);
  }();
  for (auto _ : state) {
    Decoder dec;
    int frames = 0;
    const auto st =
        dec.decode_stream(stream, [&](FramePtr) { ++frames; });
    benchmark::DoNotOptimize(st.ok);
    benchmark::DoNotOptimize(frames);
  }
  state.SetItemsProcessed(state.iterations() * 13);
}
BENCHMARK(BM_DecodePicture)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
