#include "bench/common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "mpeg2/kernels/kernels.h"
#include "obs/prof/counters.h"

namespace pmp2::bench {

namespace fs = std::filesystem;

int default_pictures(int width) {
  if (width >= 1408) return 8;
  if (width >= 704) return 26;
  if (width >= 352) return 39;
  return 52;
}

streamgen::StreamSpec apply_scale(streamgen::StreamSpec spec,
                                  const Flags& flags) {
  const auto pictures = flags.get_int("pictures", 0);
  const auto scale = flags.get_double("scale", 1.0);
  spec.pictures = pictures > 0
                      ? static_cast<int>(pictures)
                      : static_cast<int>(default_pictures(spec.width) * scale);
  if (spec.pictures < spec.gop_size) spec.pictures = spec.gop_size;
  return spec;
}

namespace {

std::string cache_key(const streamgen::StreamSpec& spec) {
  std::ostringstream os;
  os << "v2_" << spec.name() << "_n" << spec.pictures << "_r" << spec.bit_rate << "_s"
     << spec.seed << "_sr" << spec.search_range << "_rc" << spec.rate_control
     << "_iv" << spec.intra_vlc_format << "_as" << spec.alternate_scan
     << "_m1" << spec.mpeg1 << "_spr" << spec.slices_per_row << ".m2v";
  return os.str();
}

}  // namespace

std::vector<std::uint8_t> load_or_generate(const streamgen::StreamSpec& spec) {
  const fs::path dir = "bench_streams";
  const fs::path path = dir / cache_key(spec);
  std::error_code ec;
  if (fs::exists(path, ec)) {
    std::ifstream in(path, std::ios::binary);
    std::vector<std::uint8_t> data(
        static_cast<std::size_t>(fs::file_size(path)));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
    if (in) return data;
  }
  std::fprintf(stderr, "[bench] encoding %s (%d pictures)...\n",
               spec.name().c_str(), spec.pictures);
  auto data = streamgen::generate_stream(spec);
  fs::create_directories(dir, ec);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return data;
}

const sched::StreamProfile& cached_profile(
    const streamgen::StreamSpec& spec) {
  static std::map<std::string, sched::StreamProfile> cache;
  const std::string key = cache_key(spec);
  auto it = cache.find(key);
  if (it == cache.end()) {
    const auto stream = load_or_generate(spec);
    it = cache.emplace(key, sched::profile_stream(stream)).first;
  }
  return it->second;
}

sched::StreamProfile sim_profile(const streamgen::StreamSpec& spec,
                                 const Flags& flags) {
  const auto target = static_cast<int>(flags.get_int("sim-pictures", 1120));
  auto profile = sched::replicate_profile(cached_profile(spec), target);
  // --ns-per-unit=X pins the calibration constant and the scan rate
  // (1 byte/ns) instead of the values measured on this host, making two
  // invocations of a sim-driven bench produce byte-identical traces and
  // reports. Shapes (imbalance, sync ratio, speedup) are unaffected: only
  // the absolute time scale moves.
  const double npu = flags.get_double("ns-per-unit", 0.0);
  if (npu > 0) {
    profile.ns_per_unit = npu;
    profile.scan_ns = static_cast<std::int64_t>(profile.stream_bytes);
  }
  return profile;
}

std::vector<streamgen::Resolution> resolutions(const Flags& flags) {
  const auto max_res = flags.get_int("max-res", 1408);
  std::vector<streamgen::Resolution> out;
  for (const auto& r : streamgen::paper_resolutions()) {
    if (r.width <= max_res) out.push_back(r);
  }
  return out;
}

void print_header(const std::string& title, const std::string& paper_ref) {
  std::cout << "==========================================================\n"
            << title << "\n"
            << "Reproduces: " << paper_ref << "\n"
            << "(reduced default scale; use --pictures=1120 for paper scale)\n"
            << "==========================================================\n";
}

void append_load_summary(obs::RunReport::Row& row,
                         const parallel::WorkerLoadSummary& load) {
  row.set("workers", load.workers)
      .set("tasks", load.tasks)
      .set("min_busy_ns", load.min_busy_ns)
      .set("avg_busy_ns", load.avg_busy_ns)
      .set("max_busy_ns", load.max_busy_ns)
      .set("imbalance", load.imbalance)
      .set("sync_ratio", load.sync_ratio)
      .set("utilization", load.utilization);
}

std::vector<Startcode> seed_scan_all_startcodes(
    std::span<const std::uint8_t> data) {
  std::vector<Startcode> out;
  std::uint64_t i = 0;
  while (i + 3 < data.size()) {
    if (data[i] == 0 && data[i + 1] == 0 && data[i + 2] == 1) {
      Startcode sc;
      sc.byte_offset = i;
      sc.code = data[i + 3];
      out.push_back(sc);
      i += 4;
      continue;
    }
    // data[i+2] > 1 rules out a prefix starting at i, i+1, or i+2.
    i += (data[i + 2] > 1) ? 3 : 1;
  }
  return out;
}

void apply_kernels_flag(const Flags& flags) {
  const std::string name = flags.get_string("kernels", "");
  if (name.empty()) return;
  mpeg2::kernels::Backend b;
  if (!mpeg2::kernels::parse_backend(name, b)) {
    std::cerr << "[bench] warning: unknown --kernels=" << name
              << " (want scalar|sse2|avx2); keeping "
              << mpeg2::kernels::active().name << "\n";
    return;
  }
  if (!mpeg2::kernels::set_backend(b)) {
    std::cerr << "[bench] warning: --kernels=" << name
              << " unavailable on this host; keeping "
              << mpeg2::kernels::active().name << "\n";
  }
}

void set_kernel_identity(obs::RunReport& report) {
  // Probed once: the host's counter capability is identity like the
  // backend itself — bench_check must not compare counter columns between
  // a PMU host and a software-fallback host.
  static const obs::prof::HostProfile host = obs::prof::probe_host();
  report.set_meta("kernels_backend", mpeg2::kernels::active().name)
      .set_meta("cpu_features", mpeg2::kernels::cpu_features())
      .set_meta("kernel_release", host.kernel_release)
      .set_meta("perf_event_paranoid",
                static_cast<std::int64_t>(host.perf_event_paranoid))
      .set_meta("counter_source", host.source)
      .set_meta("counters_available", host.hw_available);
}

int finish(const Flags& flags) {
  for (const auto& f : flags.unused()) {
    std::cerr << "[bench] warning: unused flag --" << f << "\n";
  }
  std::cout.flush();
  return 0;
}

int finish(const Flags& flags, obs::RunReport& report) {
  set_kernel_identity(report);
  int rc = 0;
  const std::string path = flags.get_string("report-out", "");
  if (!path.empty()) {
    if (report.write_file(path)) {
      std::cerr << "[bench] wrote report: " << path << " (" << report.rows()
                << " rows)\n";
    } else {
      std::cerr << "[bench] error: cannot write report to " << path << "\n";
      rc = 1;
    }
  }
  const int unused_rc = finish(flags);
  return rc != 0 ? rc : unused_rc;
}

}  // namespace pmp2::bench
