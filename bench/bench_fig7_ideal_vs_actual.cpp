// Figure 7 — ideal versus actual execution time for the GOP approach.
//
// The paper compared pixie's "ideal" time (every memory reference = 1
// cycle) with prof's measured time; the gap (10-30%, avg ~20%) is memory
// stall. Substitution here: "ideal" is the decoder's deterministic
// work-unit count scaled by the *best-case* ns/unit observed across the
// stream set (pixie's ideal is likewise a lower-bound model); "actual" is
// measured wall time. The cache simulator independently estimates the
// stall fraction from the decode trace's miss counts with an effective
// miss penalty (--miss-ns, default 15 ns: most of the decoder's misses are
// sequential streams that hardware prefetchers largely hide; use ~80 ns
// for a no-prefetch 1997-style memory system).
#include "bench/common.h"
#include "util/timer.h"
#include "simcache/cache.h"
#include "simcache/trace_gen.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 7: ideal vs actual time (GOP approach)",
                      "Bilas et al., Fig. 7");
  const double miss_ns = flags.get_double("miss-ns", 15.0);
  const int gop = static_cast<int>(flags.get_int("gop", 13));

  struct Row {
    int width, height;
    double ideal_units = 0;
    double actual_ns = 0;
    double stall_pct = 0;
    double misses_per_mb = 0;
  };
  std::vector<Row> rows;

  // Pass 1: gather per-stream work units and measured time; find the
  // best-case ns/unit to serve as the "ideal machine" calibration.
  double best_ns_per_unit = 1e18;
  for (const auto& res : bench::resolutions(flags)) {
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec.gop_size = gop;
    spec = bench::apply_scale(spec, flags);
    const auto& profile = bench::cached_profile(spec);
    Row row;
    row.width = res.width;
    row.height = res.height;
    for (const auto& g : profile.gops) {
      for (const auto& pic : g.pictures) {
        for (const auto& s : pic.slices) {
          row.ideal_units += static_cast<double>(s.units);
        }
      }
    }
    // Time several whole-stream decodes and keep the fastest: scheduling
    // noise only ever makes a run slower, so the minimum is the cleanest
    // estimate of the machine's actual decode time.
    const auto stream0 = bench::load_or_generate(spec);
    const int repeats = static_cast<int>(flags.get_int("repeats", 5));
    double best_ns = 1e18;
    for (int rep = 0; rep < repeats; ++rep) {
      mpeg2::Decoder dec;
      WallTimer timer;
      const auto st = dec.decode_stream(stream0, [](mpeg2::FramePtr) {});
      if (!st.ok) break;
      best_ns = std::min(best_ns, static_cast<double>(timer.elapsed_ns()));
    }
    row.actual_ns = best_ns;
    best_ns_per_unit =
        std::min(best_ns_per_unit, row.actual_ns / row.ideal_units);

    // Cache-sim stall estimate on a short trace.
    const auto& stream = stream0;
    simcache::CacheConfig ccfg;
    ccfg.size_bytes = 1 << 20;
    ccfg.line_bytes = 64;
    ccfg.associativity = 2;
    simcache::MultiCacheSim sim(1, ccfg);
    const int trace_pics = std::min(profile.total_pictures(), 13);
    simcache::TraceOptions topt;
    topt.procs = 1;
    topt.max_pictures = trace_pics;
    topt.pooled_buffers = false;  // GOP-decoder buffer behaviour
    simcache::generate_decode_trace(stream, sim, topt);
    const auto& stats = sim.stats(0);
    const double misses =
        static_cast<double>(stats.read_misses + stats.write_misses);
    const double stall_ns = misses * miss_ns;
    const double compute_ns =
        row.actual_ns * trace_pics / profile.total_pictures();
    row.stall_pct = 100.0 * stall_ns / (stall_ns + compute_ns);
    const double mbs_per_pic =
        ((res.width + 15) / 16) * ((res.height + 15) / 16);
    row.misses_per_mb = misses / (mbs_per_pic * trace_pics);
    rows.push_back(row);
  }

  obs::RunReport report("bench_fig7_ideal_vs_actual",
                        "Ideal vs actual decode time, GOP approach (Fig. 7)");
  report.set_meta("gop_size", gop).set_meta("miss_ns", miss_ns);
  Table t({"Picture size", "Ideal ms", "Actual ms", "Actual/Ideal",
           "Misses/MB", "Stall % (sim)"});
  for (const auto& row : rows) {
    const double ideal_ns = row.ideal_units * best_ns_per_unit;
    t.add_row({std::to_string(row.width) + "x" + std::to_string(row.height),
               Table::fmt(ideal_ns / 1e6, 1),
               Table::fmt(row.actual_ns / 1e6, 1),
               Table::fmt(row.actual_ns / ideal_ns, 2),
               Table::fmt(row.misses_per_mb, 1),
               Table::fmt(row.stall_pct, 1)});
    report.add_row()
        .set("width", row.width)
        .set("height", row.height)
        .set("ideal_ns", ideal_ns)
        .set("actual_ns", row.actual_ns)
        .set("actual_over_ideal_ratio", row.actual_ns / ideal_ns)
        .set("misses_per_macroblock", row.misses_per_mb)
        .set("stall_percent", row.stall_pct);
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Fig. 7): actual time 10-30% above ideal"
               " (avg ~20%), attributed to the memory system."
               "\nShape to check: Actual/Ideal >= 1, growing with picture"
               " size (frames stop fitting in cache); with --miss-ns=80"
               " (1997-style latency, no prefetch) the simulated stall"
               " fraction lands in the paper's band.\n";
  return bench::finish(flags, report);
}
