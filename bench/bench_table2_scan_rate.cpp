// Table 2 — "Scan rate in the scan process": measures the startcode scan
// over each stream and reports pictures/second, as the paper does for the
// three larger resolutions.
#include "bench/common.h"
#include "mpeg2/decoder.h"
#include "util/timer.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Table 2: scan-process rate",
                      "Bilas et al., Table 2");
  const auto repeats = static_cast<int>(flags.get_int("repeats", 9));

  obs::RunReport report("bench_table2_scan_rate",
                        "Scan-process rate (Table 2)");
  report.set_meta("repeats", repeats);
  Table t({"Picture size", "File KB", "Pictures", "Scan ms",
           "Scan rate (pics/s)", "Scan MB/s", "Seed MB/s", "SWAR/seed"});
  for (const auto& res : bench::resolutions(flags)) {
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec = bench::apply_scale(spec, flags);
    const auto stream = bench::load_or_generate(spec);

    // Median-of-repeats scan timing.
    std::vector<double> times;
    int pictures = 0;
    for (int r = 0; r < repeats; ++r) {
      WallTimer timer;
      const auto structure = mpeg2::scan_structure(stream);
      times.push_back(timer.elapsed_s());
      pictures = structure.total_pictures();
    }
    std::sort(times.begin(), times.end());
    const double scan_s = times[times.size() / 2];

    // Before/after pair on the raw startcode walk: the pre-SWAR byte-wise
    // loop (verbatim) vs the SWAR kernel, plus the identity check.
    std::vector<double> seed_times, swar_times;
    std::size_t seed_codes = 0;
    bool identical = true;
    for (int r = 0; r < repeats; ++r) {
      WallTimer seed_timer;
      const auto seed = bench::seed_scan_all_startcodes(stream);
      seed_times.push_back(seed_timer.elapsed_s());
      seed_codes = seed.size();
      WallTimer swar_timer;
      const auto swar = scan_all_startcodes(stream);
      swar_times.push_back(swar_timer.elapsed_s());
      identical = identical && swar == seed;
    }
    std::sort(seed_times.begin(), seed_times.end());
    std::sort(swar_times.begin(), swar_times.end());
    const double seed_s = seed_times[seed_times.size() / 2];
    const double swar_s = swar_times[swar_times.size() / 2];
    const double speedup = swar_s > 0 ? seed_s / swar_s : 0.0;

    t.add_row({std::to_string(res.width) + "x" + std::to_string(res.height),
               Table::fmt(stream.size() / 1024.0, 1),
               std::to_string(pictures), Table::fmt(scan_s * 1e3, 3),
               Table::fmt(pictures / scan_s, 0),
               Table::fmt(stream.size() / scan_s / 1e6, 1),
               Table::fmt(stream.size() / seed_s / 1e6, 1),
               Table::fmt(speedup, 2)});
    report.add_row()
        .set("width", res.width)
        .set("height", res.height)
        .set("pictures", pictures)
        .set("scan_s", scan_s)
        .set("scan_pictures_per_second", pictures / scan_s)
        .set("scan_megabytes_per_second", stream.size() / scan_s / 1e6)
        .set("seed_scan_s", seed_s)
        .set("swar_scan_s", swar_s)
        .set("scan_speedup_vs_seed", speedup)
        .set("startcode_index_identical_to_seed", identical ? 1 : 0)
        .set("startcodes", static_cast<std::int64_t>(seed_codes));
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Table 2, SGI Challenge): 170-250 pics/s at"
               " 352x240 and 704x480; 80-100 pics/s at 1408x960 (45 MB file)."
               "\nShape to check: scan far outpaces decode at every size and"
               " slows with stream bytes, not picture count. SWAR/seed is the"
               " raw startcode-walk speedup of the 8-byte kernel over the"
               " byte-wise loop (expect >= 3x, identical indexes).\n";
  return bench::finish(flags, report);
}
