// Table 2 — "Scan rate in the scan process": measures the startcode scan
// over each stream and reports pictures/second, as the paper does for the
// three larger resolutions.
#include "bench/common.h"
#include "mpeg2/decoder.h"
#include "util/timer.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Table 2: scan-process rate",
                      "Bilas et al., Table 2");
  const auto repeats = static_cast<int>(flags.get_int("repeats", 9));

  obs::RunReport report("bench_table2_scan_rate",
                        "Scan-process rate (Table 2)");
  report.set_meta("repeats", repeats);
  Table t({"Picture size", "File KB", "Pictures", "Scan ms",
           "Scan rate (pics/s)", "Scan MB/s"});
  for (const auto& res : bench::resolutions(flags)) {
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec = bench::apply_scale(spec, flags);
    const auto stream = bench::load_or_generate(spec);

    // Median-of-repeats scan timing.
    std::vector<double> times;
    int pictures = 0;
    for (int r = 0; r < repeats; ++r) {
      WallTimer timer;
      const auto structure = mpeg2::scan_structure(stream);
      times.push_back(timer.elapsed_s());
      pictures = structure.total_pictures();
    }
    std::sort(times.begin(), times.end());
    const double scan_s = times[times.size() / 2];
    t.add_row({std::to_string(res.width) + "x" + std::to_string(res.height),
               Table::fmt(stream.size() / 1024.0, 1),
               std::to_string(pictures), Table::fmt(scan_s * 1e3, 3),
               Table::fmt(pictures / scan_s, 0),
               Table::fmt(stream.size() / scan_s / 1e6, 1)});
    report.add_row()
        .set("width", res.width)
        .set("height", res.height)
        .set("pictures", pictures)
        .set("scan_s", scan_s)
        .set("scan_pictures_per_second", pictures / scan_s)
        .set("scan_megabytes_per_second", stream.size() / scan_s / 1e6);
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Table 2, SGI Challenge): 170-250 pics/s at"
               " 352x240 and 704x480; 80-100 pics/s at 1408x960 (45 MB file)."
               "\nShape to check: scan far outpaces decode at every size and"
               " slows with stream bytes, not picture count.\n";
  return bench::finish(flags, report);
}
