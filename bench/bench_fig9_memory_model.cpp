// Figure 9 — predicted memory requirements over time from the analytical
// model mem(t) = scan(t) + frames(t), for the paper's three cases at full
// paper scale (1120 pictures), including the 1408x960 / 31-pictures /
// 11-processor case that exceeds the machine's 500 MB. The model's rates
// are taken from this host's measured scan/decode throughput; a
// model-vs-simulator comparison at bench scale validates it.
#include "bench/common.h"
#include "model/memory_model.h"
#include "sched/sim.h"

using namespace pmp2;

namespace {

model::MemoryModelParams params_from_profile(
    const sched::StreamProfile& profile, int workers, int gop_size,
    int total_pictures) {
  model::MemoryModelParams p;
  p.workers = workers;
  p.gop_size = gop_size;
  p.frame_bytes = profile.frame_bytes();
  p.total_pictures = total_pictures;
  p.coded_bytes_per_pic =
      static_cast<double>(profile.stream_bytes) / profile.total_pictures();
  p.scan_bytes_per_s =
      profile.scan_ns > 0
          ? static_cast<double>(profile.stream_bytes) * 1e9 / profile.scan_ns
          : 1e12;
  double total_s = 0;
  for (const auto& g : profile.gops) {
    for (const auto& pic : g.pictures) {
      for (const auto& s : pic.slices) {
        total_s += static_cast<double>(profile.slice_cost_ns(s, true)) * 1e-9;
      }
    }
  }
  p.decode_pics_per_s = profile.total_pictures() / total_s;
  p.display_pics_per_s = profile.frame_rate;
  return p;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 9: predicted memory over time (model)",
                      "Bilas et al., Fig. 9");
  const int paper_pictures =
      static_cast<int>(flags.get_int("model-pictures", 1120));

  struct Case {
    int width, height, gop, workers;
    std::int64_t bit_rate;
  };
  const Case cases[] = {
      {352, 240, 13, 7, 5'000'000},
      {704, 480, 31, 7, 5'000'000},
      {1408, 960, 31, 11, 7'000'000},
  };

  obs::RunReport report("bench_fig9_memory_model",
                        "Analytical memory model mem(t) peaks (Fig. 9)");
  report.set_meta("model_pictures", paper_pictures)
      .set_meta("paper_speed", flags.get_bool("paper-speed", true));

  for (const auto& c : cases) {
    if (c.width > flags.get_int("max-res", 1408)) continue;
    streamgen::StreamSpec spec;
    spec.width = c.width;
    spec.height = c.height;
    spec.bit_rate = c.bit_rate;
    spec.gop_size = c.gop;
    spec = bench::apply_scale(spec, flags);
    const auto& profile = bench::cached_profile(spec);
    auto params =
        params_from_profile(profile, c.workers, c.gop, paper_pictures);
    if (flags.get_bool("paper-speed", true)) {
      // Reproduce the paper's machine balance: per-processor decode ~5
      // pics/s at 352x240 (Table 3 / 14 workers), scan ~4.5 MB/s (Table 2).
      params.decode_pics_per_s =
          5.0 * (352.0 * 240.0) / (c.width * c.height);
      params.scan_bytes_per_s = 4.5e6;
    }
    const model::MemoryModel m(params);

    std::cout << "\n--- " << c.width << "x" << c.height << ", "
              << c.gop << " pics/GOP, " << c.workers << " processors, "
              << paper_pictures << " pictures ---\n";
    Series series("t (s)", {"scan MB", "frames MB", "mem MB"});
    const double end = m.run_length_s();
    for (int i = 0; i <= 10; ++i) {
      const double t = end * i / 10;
      const auto p = m.at(t);
      series.add_point(t, {p.scan_bytes / (1 << 20),
                           p.frame_bytes / (1 << 20),
                           p.total() / (1 << 20)});
    }
    series.print(std::cout, 1);
    const double peak_mb =
        static_cast<double>(m.peak_bytes()) / (1 << 20);
    report.add_row()
        .set("case", "model")
        .set("width", c.width)
        .set("height", c.height)
        .set("gop_size", c.gop)
        .set("workers", c.workers)
        .set("peak_memory_bytes", m.peak_bytes())
        .set("fits_500_mb", peak_mb <= 500);
    std::cout << "peak mem(t) = " << Table::fmt(peak_mb, 1) << " MB"
              << (peak_mb > 500 ? "  -> EXCEEDS the paper's 500 MB limit "
                                  "(cannot run, as the paper reports)"
                                : "  (fits in the paper's 500 MB)")
              << "\n";
  }

  // Validation: model vs simulator at bench scale.
  {
    std::cout << "\n--- model vs simulator (bench scale, 352x240, GOP 13,"
                 " 7 workers) ---\n";
    streamgen::StreamSpec spec;
    spec.width = 352;
    spec.height = 240;
    spec.bit_rate = 5'000'000;
    spec.gop_size = 13;
    spec = bench::apply_scale(spec, flags);
    const auto& profile = bench::cached_profile(spec);
    sched::SimConfig cfg;
    cfg.workers = 7;
    cfg.paced_display = true;
    cfg.measured_costs = true;
    const auto sim = sched::simulate_gop(profile, cfg);
    const auto params = params_from_profile(profile, 7, 13,
                                            profile.total_pictures());
    const auto model_peak = model::MemoryModel(params).peak_bytes();
    report.add_row()
        .set("case", "model_vs_sim")
        .set("width", 352)
        .set("height", 240)
        .set("gop_size", 13)
        .set("workers", 7)
        .set("sim_peak_memory_bytes", sim.peak_memory)
        .set("model_peak_memory_bytes", model_peak);
    std::cout << "simulated peak: "
              << Table::fmt(sim.peak_memory / double(1 << 20), 2)
              << " MB, model peak: "
              << Table::fmt(model_peak / double(1 << 20), 2)
              << " MB (paper: 'model verified to be very close')\n";
  }
  std::cout << "\nPaper reference (Fig. 9): mem(x) = scan(x) + frames(x);"
               " memory ramps up while scan and P-worker decode outpace the"
               " 30 pics/s display, then drains; the 1408x960/31/11 case"
               " exceeds available memory.\n";
  return bench::finish(flags, report);
}
