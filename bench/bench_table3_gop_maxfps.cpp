// Table 3 — "Maximum number of pictures/sec decoded for each picture size"
// (GOP version, 14 workers). Uses the virtual-time simulator at 14 workers
// with measured per-slice costs; also reports the real threaded decoder on
// this host's cores for reference.
#include <thread>

#include "bench/common.h"
#include "parallel/gop_decoder.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Table 3: max pictures/sec, GOP-parallel decoder",
      "Bilas et al., Table 3 (14 workers + scan + display)");
  const int workers = static_cast<int>(flags.get_int("workers", 14));
  const int gop = static_cast<int>(flags.get_int("gop", 13));
  const unsigned hw = std::thread::hardware_concurrency();

  obs::RunReport report("bench_table3_gop_maxfps",
                        "Max pictures/sec, GOP-parallel decoder (Table 3)");
  report.set_meta("workers", workers)
      .set_meta("gop_size", gop)
      .set_meta("host_threads", static_cast<std::int64_t>(hw));
  Table t({"Picture size", "Sim pics/s (P=" + std::to_string(workers) + ")",
           "Sim pics/s (P=1)", "Real pics/s (host, P=" +
               std::to_string(hw) + ")"});
  for (const auto& res : bench::resolutions(flags)) {
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec.gop_size = gop;
    spec = bench::apply_scale(spec, flags);
    const auto profile = bench::sim_profile(spec, flags);

    sched::SimConfig cfg;
    cfg.workers = workers;
    cfg.measured_costs = true;
    const double sim = sched::simulate_gop(profile, cfg).pictures_per_second();
    cfg.workers = 1;
    const double sim1 =
        sched::simulate_gop(profile, cfg).pictures_per_second();

    const auto stream = bench::load_or_generate(spec);
    parallel::GopDecoderConfig pcfg;
    pcfg.workers = static_cast<int>(hw);
    const auto real = parallel::GopParallelDecoder(pcfg).decode(stream);

    t.add_row({std::to_string(res.width) + "x" + std::to_string(res.height),
               Table::fmt(sim, 1), Table::fmt(sim1, 1),
               real.ok ? Table::fmt(real.pictures_per_second(), 1) : "fail"});
    report.add_row()
        .set("width", res.width)
        .set("height", res.height)
        .set("sim_pictures_per_second", sim)
        .set("sim_single_worker_pictures_per_second", sim1)
        .set("real_pictures_per_second",
             real.ok ? real.pictures_per_second() : 0.0)
        .set("real_ok", real.ok);
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Table 3, 150 MHz R4400s): 69.9 / 26.6 /"
               " 7.3 pics/s at 352x240 / 704x480 / 1408x960 with 14 workers."
               "\nShape to check: throughput scales ~1/pixels; 14-worker sim"
               " >> 1-worker sim; modern-core absolute numbers are much"
               " higher than 1997's.\n";
  return bench::finish(flags, report);
}
