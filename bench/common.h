// Shared infrastructure for the benchmark harnesses (one binary per table /
// figure of the paper). Provides the default reduced-scale workload (the
// full 1120-picture streams are reproducible with --pictures=1120), a disk
// cache for generated streams so the suite doesn't re-encode per binary,
// and profile helpers.
#pragma once

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include <span>

#include "bitstream/startcode.h"
#include "obs/report.h"
#include "parallel/stats.h"
#include "sched/profile.h"
#include "streamgen/stream_factory.h"
#include "util/flags.h"
#include "util/table.h"

namespace pmp2::bench {

/// The pre-SWAR byte-wise startcode scan, kept verbatim as the "before"
/// half of the Table 2 before/after pair and as the identity oracle for
/// the Table 1 stream matrix.
std::vector<Startcode> seed_scan_all_startcodes(
    std::span<const std::uint8_t> data);

/// Default picture counts per resolution, sized so the whole bench suite
/// completes in minutes on one core. Scaled by --pictures (absolute) or
/// --scale (multiplier).
int default_pictures(int width);

/// Resolves the stream spec's picture count from flags.
streamgen::StreamSpec apply_scale(streamgen::StreamSpec spec,
                                  const Flags& flags);

/// Loads the stream from the on-disk cache (./bench_streams) or generates
/// and stores it. Cache key covers all generation parameters.
std::vector<std::uint8_t> load_or_generate(const streamgen::StreamSpec& spec);

/// Profile with in-process memoization (several benches sweep the same
/// stream at many worker counts).
const sched::StreamProfile& cached_profile(
    const streamgen::StreamSpec& spec);

/// Profile replicated to paper scale for the scheduler simulations:
/// --sim-pictures (default 1120, the paper's stream length) pictures, built
/// by tiling the measured GOP costs, as the paper tiled its source clip.
sched::StreamProfile sim_profile(const streamgen::StreamSpec& spec,
                                 const Flags& flags);

/// The paper's resolutions, largest optionally dropped via --max-res.
std::vector<streamgen::Resolution> resolutions(const Flags& flags);

/// Prints the standard bench header.
void print_header(const std::string& title, const std::string& paper_ref);

/// Appends the shared load-balance/sync fields (parallel/stats.cpp
/// definitions) to a report row, so every harness emits the same schema.
void append_load_summary(obs::RunReport::Row& row,
                         const parallel::WorkerLoadSummary& load);

/// Applies the --kernels=scalar|sse2|avx2 flag (same semantics as the
/// PMP2_KERNELS env override): selects the kernel backend for the rest of
/// the process. Unknown or unavailable backends warn on stderr and leave
/// the CPUID-selected table in place.
void apply_kernels_flag(const Flags& flags);

/// Stamps the run-identity meta fields (`kernels_backend`, `cpu_features`,
/// plus the host counter profile: `kernel_release`, `perf_event_paranoid`,
/// `counter_source`, `counters_available`) on a report, so report
/// consumers can tell runs on different kernel backends or differently
/// counter-capable hosts apart (tools/bench_check treats a backend change
/// as an identity mismatch, not a metric regression, and suppresses
/// counter columns across a counter_source change).
void set_kernel_identity(obs::RunReport& report);

/// Warns about unknown flags at the end of main().
int finish(const Flags& flags);

/// finish() plus the structured JSON run report: when --report-out=PATH was
/// passed, stamps the kernel-backend identity meta and writes `report`
/// there (errors go to stderr and the exit code).
int finish(const Flags& flags, obs::RunReport& report);

}  // namespace pmp2::bench
