// §7.2 — MPEG-2 on distributed shared memory (the paper's Stanford DASH
// experiments): improved-slice and GOP versions on a clustered machine with
// remote-access penalties. The paper reports the improved slice version
// running 1.8x / 3.4x / 5.2x faster on 8 / 16 / 32 processors relative to
// one 4-processor cluster, with remote-miss latency the main impediment,
// and suggests per-node task queues with stealing for the GOP version.
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Section 7.2: DASH-style NUMA experiments",
                      "Bilas et al., §7.2");
  const int cluster = static_cast<int>(flags.get_int("cluster-size", 4));
  const double penalty = flags.get_double("remote-penalty", 1.6);
  const auto proc_list = flags.get_int_list("procs", {4, 8, 16, 32});

  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 704));
  spec.height = spec.width * 480 / 704;
  spec.bit_rate = 5'000'000;
  spec.gop_size = static_cast<int>(flags.get_int("gop", 13));
  spec = bench::apply_scale(spec, flags);
  const auto profile = bench::sim_profile(spec, flags);

  obs::RunReport report("bench_dash_numa",
                        "DASH-style NUMA speedups (Section 7.2)");
  report.set_meta("width", spec.width)
      .set_meta("height", spec.height)
      .set_meta("cluster_size", cluster)
      .set_meta("remote_penalty", penalty);

  std::cout << "\n--- " << spec.width << "x" << spec.height
            << ", cluster size " << cluster << ", remote penalty x"
            << penalty << " ---\n";
  Series series("processors",
                {"improved slice (vs 4)", "GOP shared queue (vs 4)",
                 "GOP local queues (vs 4)", "UMA improved (vs 4)"});
  double base_slice = 0, base_gop = 0, base_gop_local = 0, base_uma = 0;
  for (const int procs : proc_list) {
    sched::SimConfig numa;
    numa.workers = procs;
    numa.cluster_size = cluster;
    numa.remote_penalty = penalty;
    const double slice_pps =
        sched::simulate_slice(profile, numa, parallel::SlicePolicy::kImproved)
            .pictures_per_second();
    const double gop_pps =
        sched::simulate_gop(profile, numa).pictures_per_second();
    auto local = numa;
    local.numa_local_queues = true;
    const double gop_local_pps =
        sched::simulate_gop(profile, local).pictures_per_second();
    sched::SimConfig uma;
    uma.workers = procs;
    const double uma_pps =
        sched::simulate_slice(profile, uma, parallel::SlicePolicy::kImproved)
            .pictures_per_second();
    if (procs == proc_list.front()) {
      base_slice = slice_pps;
      base_gop = gop_pps;
      base_gop_local = gop_local_pps;
      base_uma = uma_pps;
    }
    series.add_point(procs, {slice_pps / base_slice, gop_pps / base_gop,
                             gop_local_pps / base_gop_local,
                             uma_pps / base_uma});
    report.add_row()
        .set("procs", procs)
        .set("slice_speedup", slice_pps / base_slice)
        .set("gop_speedup", gop_pps / base_gop)
        .set("gop_local_queue_speedup", gop_local_pps / base_gop_local)
        .set("uma_slice_speedup", uma_pps / base_uma);
  }
  series.print(std::cout, 2);

  std::cout << "\nPaper reference (§7.2, DASH, 704x480): improved slice 1.8x"
               " / 3.4x / 5.2x at 8 / 16 / 32 procs vs one 4-proc cluster;"
               " GOP version slightly worse; remote-miss latency (not"
               " contention or sync) the main impediment; round-robin GOP"
               " placement + per-node queues with stealing proposed as the"
               " remedy."
               "\nShape to check: NUMA curves well below the UMA curve;"
               " local queues recover part of the GOP version's loss.\n";
  return bench::finish(flags, report);
}
