// §7.3 (future work, implemented) — "shared virtual memory in which
// coherence is maintained at page granularity": rerun the slice-parallel
// decode trace through the coherence simulator with coherence units from
// 64-byte cache lines up to 4 KB pages, and watch sharing misses — false
// sharing especially — explode as neighbouring slices' rows land on shared
// pages. This quantifies the paper's hunch about SVM systems.
#include "bench/common.h"
#include "simcache/cache.h"
#include "simcache/trace_gen.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Section 7.3: page-granularity (SVM) coherence",
      "Bilas et al., §7.3 future work (no figure)");
  const int trace_pics = static_cast<int>(flags.get_int("trace-pictures", 13));
  const auto units = flags.get_int_list("units", {64, 256, 1024, 4096});
  const auto procs_list = flags.get_int_list("procs", {2, 4, 8});

  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 352));
  spec.height = spec.width * 240 / 352;
  spec.bit_rate = 5'000'000;
  spec = bench::apply_scale(spec, flags);
  const auto stream = bench::load_or_generate(spec);

  obs::RunReport report("bench_svm_page_coherence",
                        "Page-granularity coherence sharing (Section 7.3)");
  report.set_meta("width", spec.width)
      .set_meta("height", spec.height)
      .set_meta("trace_pictures", trace_pics);

  for (const int procs : procs_list) {
    std::cout << "\n--- " << procs << " processors, slice-parallel trace ("
              << spec.width << "x" << spec.height << ") ---\n";
    std::vector<std::unique_ptr<simcache::MultiCacheSim>> sims;
    simcache::TraceTee tee;
    for (const int unit : units) {
      simcache::CacheConfig cfg;
      // Keep capacity fixed; vary only the coherence/transfer unit.
      cfg.size_bytes = 4 << 20;
      cfg.line_bytes = unit;
      cfg.associativity = 0;
      sims.push_back(std::make_unique<simcache::MultiCacheSim>(procs, cfg));
      tee.add(sims.back().get());
    }
    if (!simcache::generate_decode_trace(stream, procs, tee, trace_pics)) {
      std::cerr << "trace generation failed\n";
      return 1;
    }
    Series series("coherence unit B",
                  {"true sharing", "false sharing", "false/true",
                   "sharing per MB"});
    const double mbs =
        ((spec.width + 15) / 16) * ((spec.height + 15) / 16) *
        static_cast<double>(trace_pics);
    for (std::size_t i = 0; i < units.size(); ++i) {
      const auto total = sims[i]->total_stats();
      const double ts = static_cast<double>(total.true_sharing);
      const double fs = static_cast<double>(total.false_sharing);
      series.add_point(units[i],
                       {ts, fs, ts > 0 ? fs / ts : 0.0, (ts + fs) / mbs});
      report.add_row()
          .set("procs", procs)
          .set("coherence_unit", units[i])
          .set("true_sharing_misses", total.true_sharing)
          .set("false_sharing_misses", total.false_sharing);
    }
    series.print(std::cout, 2);
  }
  std::cout << "\nPaper reference (§7.3): page-granularity SVM named as"
               " future work; §5.3 found true sharing small and false"
               " sharing negligible at cache-line granularity."
               "\nShape to check: sharing misses per macroblock low and"
               " mostly true at 64 B, then false sharing grows by orders of"
               " magnitude toward 4 KB pages (adjacent slices' rows share"
               " pages), and grows with processor count — the cost an SVM"
               " port would pay.\n";
  return bench::finish(flags, report);
}
