// Extension bench — random-access latency for play-control functions
// (paper §5.1/§5.2 discussion): after a seek, how long until the first
// picture can be displayed?
//
// GOP version: one worker must decode the whole landing GOP alone before
// its first picture is displayable ("the speed at which the video begins to
// display ... is dependent upon one processor"). Slice version: all workers
// attack the landing pictures slice by slice. The simulator measures
// time-to-first-display for both after a seek to each GOP boundary.
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

namespace {

/// Time until the first picture of the (sub)stream is displayable.
std::int64_t first_display_ns(const sched::SimResult& r) {
  // The memory timeline is not what we need; recompute from makespan is
  // wrong too. Approximate: with display unpaced, the first display is the
  // first completion in display order — equal to the makespan of a
  // one-GOP-prefix simulation. Callers pass such a prefix.
  return r.makespan_ns;
}

sched::StreamProfile prefix_profile(const sched::StreamProfile& full,
                                    std::size_t gops, std::size_t pictures) {
  sched::StreamProfile out = full;
  out.gops.assign(full.gops.begin(),
                  full.gops.begin() + static_cast<std::ptrdiff_t>(gops));
  if (pictures > 0 && !out.gops.empty()) {
    auto& pics = out.gops.back().pictures;
    if (pics.size() > pictures) pics.resize(pictures);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Extension: random-access latency after a seek",
      "Bilas et al., §5.1-§5.2 (play-control discussion; no figure)");
  const int workers = static_cast<int>(flags.get_int("workers", 8));
  const auto gop_sizes = flags.get_int_list("gops", {4, 13, 31});

  obs::RunReport report("bench_random_access",
                        "Random-access latency after a seek (Section 5)");
  report.set_meta("workers", workers);

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width < 352) continue;
    std::cout << "\n--- " << res.width << "x" << res.height << " (P="
              << workers << ") ---\n";
    Table t({"GOP size", "GOP seek latency ms", "Slice seek latency ms",
             "GOP/slice"});
    for (const int gop : gop_sizes) {
      streamgen::StreamSpec spec;
      spec.width = res.width;
      spec.height = res.height;
      spec.bit_rate = res.bit_rate;
      spec.gop_size = gop;
      spec = bench::apply_scale(spec, flags);
      const auto& full = bench::cached_profile(spec);
      if (!full.ok || full.gops.empty()) continue;

      // Seek = decode restarts at a GOP boundary. Latency to the first
      // displayable picture: the landing GOP's first picture (display
      // order = its I picture) must complete.
      sched::SimConfig cfg;
      cfg.workers = workers;
      cfg.measured_costs = true;
      cfg.model_scan = false;  // the seek point is already buffered

      // GOP decoder: one worker decodes the I picture after taking the
      // whole-GOP task; the first display needs just the I picture —
      // simulate a one-picture prefix on ONE worker (GOP task is owned by
      // a single worker).
      auto gop_prefix = prefix_profile(full, 1, 1);
      sched::SimConfig one = cfg;
      one.workers = 1;
      const auto g = sched::simulate_gop(gop_prefix, one);

      // Slice decoder: all P workers decode that same I picture's slices.
      const auto s = sched::simulate_slice(
          gop_prefix, cfg, parallel::SlicePolicy::kImproved);

      t.add_row({std::to_string(gop),
                 Table::fmt(first_display_ns(g) / 1e6, 2),
                 Table::fmt(first_display_ns(s) / 1e6, 2),
                 Table::fmt(static_cast<double>(first_display_ns(g)) /
                                static_cast<double>(first_display_ns(s)),
                            2)});
      report.add_row()
          .set("width", res.width)
          .set("height", res.height)
          .set("gop_size", gop)
          .set("gop_seek_latency_ns", first_display_ns(g))
          .set("slice_seek_latency_ns", first_display_ns(s));
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper reference: no figure; §5.1 argues the GOP method has"
               " large random-access latency (one processor decodes the"
               " landing GOP) while §5.2 notes the slice method lets all"
               " workers start immediately."
               "\nShape to check: GOP/slice latency ratio ~P for pictures"
               " with >= P slices.\n";
  return bench::finish(flags, report);
}
