// Figure 5 — GOP-version speedup vs number of worker processes, per picture
// size and GOP size. Speedup is pictures/sec(P workers) over
// pictures/sec(1 worker), exactly the paper's metric (P+2 processors
// total).
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 5: GOP-version speedup vs workers",
                      "Bilas et al., Fig. 5");
  const auto worker_list =
      flags.get_int_list("workers", {1, 2, 4, 6, 8, 10, 12, 14});
  const auto gop_sizes = flags.get_int_list("gops", {4, 13, 31});

  obs::RunReport report("bench_fig5_gop_speedup",
                        "GOP-version speedup vs workers (Fig. 5)");

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width < 352) continue;  // the paper omits 176x120
    std::cout << "\n--- " << res.width << "x" << res.height << " ---\n";
    std::vector<std::string> labels;
    for (const int g : gop_sizes) {
      labels.push_back("speedup (GOP=" + std::to_string(g) + ")");
    }
    Series series("workers", labels);
    std::vector<double> base(gop_sizes.size(), 0.0);
    for (const int workers : worker_list) {
      std::vector<double> ys;
      for (std::size_t gi = 0; gi < gop_sizes.size(); ++gi) {
        streamgen::StreamSpec spec;
        spec.width = res.width;
        spec.height = res.height;
        spec.bit_rate = res.bit_rate;
        spec.gop_size = gop_sizes[gi];
        spec = bench::apply_scale(spec, flags);
        const auto profile = bench::sim_profile(spec, flags);
        sched::SimConfig cfg;
        cfg.workers = workers;
        const double pps =
            sched::simulate_gop(profile, cfg).pictures_per_second();
        if (workers == worker_list.front() && worker_list.front() == 1) {
          base[gi] = pps;
        }
        ys.push_back(base[gi] > 0 ? pps / base[gi] : 0.0);
        report.add_row()
            .set("width", res.width)
            .set("height", res.height)
            .set("gop_size", gop_sizes[gi])
            .set("workers", workers)
            .set("pictures_per_second", pps)
            .set("speedup", ys.back());
      }
      series.add_point(workers, ys);
    }
    series.print(std::cout, 2);
  }
  std::cout << "\nPaper reference (Fig. 5): speedup almost linear in all"
               " cases. Shape to check: near-linear until the number of GOP"
               " tasks in the (shortened) stream limits parallelism; small"
               " GOPs give more tasks and stay linear longer.\n";
  return bench::finish(flags, report);
}
