// Table 4 — maximum frames/sec decoded per picture size for the three
// decoders: simple slice, improved slice, GOP. The ordering (GOP >=
// improved >= simple) and the relative gaps are the paper's result.
#include <thread>

#include "bench/common.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Table 4: max frames/sec by decoder version",
                      "Bilas et al., Table 4 (14 workers)");
  const int workers = static_cast<int>(flags.get_int("workers", 14));
  const int gop = static_cast<int>(flags.get_int("gop", 13));

  obs::RunReport report("bench_table4_maxfps",
                        "Max frames/sec by decoder version (Table 4)");
  report.set_meta("workers", workers).set_meta("gop_size", gop);
  Table t({"Picture size", "Simple slice", "Improved slice", "GOP version",
           "Improved/GOP", "Simple/GOP"});
  for (const auto& res : bench::resolutions(flags)) {
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec.gop_size = gop;
    spec = bench::apply_scale(spec, flags);
    const auto profile = bench::sim_profile(spec, flags);
    sched::SimConfig cfg;
    cfg.workers = workers;
    cfg.measured_costs = true;
    const double simple =
        sched::simulate_slice(profile, cfg, parallel::SlicePolicy::kSimple)
            .pictures_per_second();
    const double improved =
        sched::simulate_slice(profile, cfg, parallel::SlicePolicy::kImproved)
            .pictures_per_second();
    const double gop_pps =
        sched::simulate_gop(profile, cfg).pictures_per_second();
    t.add_row({std::to_string(res.width) + "x" + std::to_string(res.height),
               Table::fmt(simple, 1), Table::fmt(improved, 1),
               Table::fmt(gop_pps, 1), Table::fmt(improved / gop_pps, 2),
               Table::fmt(simple / gop_pps, 2)});
    report.add_row()
        .set("width", res.width)
        .set("height", res.height)
        .set("simple_pictures_per_second", simple)
        .set("improved_pictures_per_second", improved)
        .set("gop_pictures_per_second", gop_pps);
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Table 4): 27.4 / 54.4 / 69.9 (352x240),"
               " 15.1 / 21.6 / 26.6 (704x480), 6.6 / 6.8 / 7.3 (1408x960)"
               " for simple / improved / GOP."
               "\nShape to check: GOP >= improved >= simple; the gap closes"
               " at large pictures (more slices per picture).\n";
  return bench::finish(flags, report);
}
