// Table 1 — "Description of test streams": regenerates the paper's 16-test
// stream matrix (4 resolutions x 4 GOP sizes) with the synthetic scene and
// reports their characteristics next to the paper's.
#include "bench/common.h"
#include "mpeg2/decoder.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Table 1: test stream characteristics",
                      "Bilas et al., Table 1 (streams 1-16)");

  const auto gop_sizes = flags.get_int_list("gops", {4, 13, 16, 31});
  obs::RunReport report("bench_table1_streams",
                        "Test stream characteristics (Table 1)");
  Table t({"Stream", "Resolution", "GOP size", "Pictures", "Target Mb/s",
           "Actual Mb/s", "File KB", "KB/picture", "Slices/pic"});
  int index = 1;
  for (const auto& res : bench::resolutions(flags)) {
    for (const int gop : gop_sizes) {
      streamgen::StreamSpec spec;
      spec.width = res.width;
      spec.height = res.height;
      spec.bit_rate = res.bit_rate;
      spec.gop_size = gop;
      spec = bench::apply_scale(spec, flags);
      const auto stream = bench::load_or_generate(spec);
      const auto structure = mpeg2::scan_structure(stream);
      // SWAR acceptance: the fast scanner's startcode index must match the
      // byte-wise seed loop on all 16 streams of the matrix.
      const bool scan_identical =
          scan_all_startcodes(stream) == bench::seed_scan_all_startcodes(stream);
      const double seconds = spec.pictures / 30.0;
      const double mbps =
          static_cast<double>(stream.size()) * 8 / seconds / 1e6;
      const int slices_per_pic =
          structure.valid
              ? static_cast<int>(structure.gops[0].pictures[0].slices.size())
              : -1;
      report.add_row()
          .set("stream", index)
          .set("width", res.width)
          .set("height", res.height)
          .set("gop_size", gop)
          .set("pictures", spec.pictures)
          .set("actual_megabits_per_second_rate", mbps)
          .set("stream_bytes", static_cast<std::int64_t>(stream.size()))
          .set("slices_per_picture", slices_per_pic)
          .set("startcode_index_identical_to_seed", scan_identical ? 1 : 0);
      t.add_row({std::to_string(index++),
                 std::to_string(res.width) + "x" + std::to_string(res.height),
                 std::to_string(gop), std::to_string(spec.pictures),
                 Table::fmt(res.bit_rate / 1e6, 1), Table::fmt(mbps, 2),
                 Table::fmt(stream.size() / 1024.0, 1),
                 Table::fmt(stream.size() / 1024.0 / spec.pictures, 1),
                 std::to_string(slices_per_pic)});
    }
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (Table 1): picture sizes 22K / 82.5K / 530K"
               " / 1320K bytes decoded; 8 / 15 / 30 / 60 slices per picture;"
               " 5-7 Mb/s; 1120 pictures, 30 pics/s, I/P distance 3.\n";
  return bench::finish(flags, report);
}
