// Figure 11 — slice-version speedups, simple (barrier every picture) vs
// improved (sync only at reference pictures). The simple version's knees
// fall where ceil(slices/P) drops by one; 352x240 has 15 slices so it is
// flat past 8 workers — the paper's headline observation.
#include <tuple>

#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 11: slice-version speedup vs workers",
                      "Bilas et al., Fig. 11");
  const auto worker_list =
      flags.get_int_list("workers", {1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 14});
  const int gop = static_cast<int>(flags.get_int("gop", 13));

  obs::RunReport report("bench_fig11_slice_speedup",
                        "Slice-version speedup, simple vs improved (Fig. 11)");
  report.set_meta("gop_size", gop);

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width < 352) continue;
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec.gop_size = gop;
    spec = bench::apply_scale(spec, flags);
    const auto profile = bench::sim_profile(spec, flags);
    std::cout << "\n--- " << res.width << "x" << res.height << " ("
              << profile.slices_per_picture << " slices/picture) ---\n";

    Series series("workers", {"speedup (simple)", "speedup (improved)"});
    double base_simple = 0, base_improved = 0;
    for (const int workers : worker_list) {
      sched::SimConfig cfg;
      cfg.workers = workers;
      const double simple =
          sched::simulate_slice(profile, cfg, parallel::SlicePolicy::kSimple)
              .pictures_per_second();
      const double improved =
          sched::simulate_slice(profile, cfg,
                                parallel::SlicePolicy::kImproved)
              .pictures_per_second();
      if (workers == worker_list.front()) {
        base_simple = simple;
        base_improved = improved;
      }
      series.add_point(workers,
                       {simple / base_simple, improved / base_improved});
      for (const auto& [policy, pps, speedup] :
           {std::tuple{"simple", simple, simple / base_simple},
            std::tuple{"improved", improved, improved / base_improved}}) {
        report.add_row()
            .set("width", res.width)
            .set("height", res.height)
            .set("policy", policy)
            .set("workers", workers)
            .set("pictures_per_second", pps)
            .set("speedup", speedup);
      }
    }
    series.print(std::cout, 2);
  }
  std::cout << "\nPaper reference (Fig. 11): simple version near-linear only"
               " when pictures have many slices; knees where"
               " ceil(slices/P) steps (352x240: flat past 8 workers, 15"
               " slices). Improved version removes most of the imbalance"
               " and speeds up at all resolutions.\n";
  return bench::finish(flags, report);
}
