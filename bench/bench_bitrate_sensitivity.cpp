// §3 (test streams) — bit-rate sensitivity: "decoding times for streams of
// a given picture size are typically within 10%-15% ... there is no
// noticeable impact on parallel performance." Encode the same content at
// widely varying quantization (hence bit rate), measure decode time and
// simulated speedups.
#include "bench/common.h"
#include "mpeg2/decoder.h"
#include "streamgen/scene.h"
#include "sched/sim.h"
#include "util/timer.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Section 3: bit-rate sensitivity",
                      "Bilas et al., §3 (no figure)");
  const int width = static_cast<int>(flags.get_int("width", 352));
  const int workers = static_cast<int>(flags.get_int("workers", 8));

  obs::RunReport report("bench_bitrate_sensitivity",
                        "Decode-time sensitivity to bit rate (Section 3)");
  report.set_meta("width", width).set_meta("workers", workers);
  Table t({"qscale", "Mb/s", "decode ms (min of 5)", "vs qscale 8",
           "GOP speedup@8", "improved-slice speedup@8"});
  double base_ms = 0;
  for (const int q : {2, 5, 8, 16, 31}) {
    streamgen::StreamSpec spec;
    spec.width = width;
    spec.height = width * 240 / 352;
    spec.gop_size = 13;
    spec.rate_control = false;
    spec.bit_rate = 5'000'000;  // informational; quantizer fixed below
    spec = bench::apply_scale(spec, flags);
    // base_qscale_code is not in StreamSpec; encode directly.
    mpeg2::EncoderConfig cfg;
    cfg.width = spec.width;
    cfg.height = spec.height;
    cfg.gop_size = spec.gop_size;
    cfg.rate_control = false;
    cfg.base_qscale_code = q;
    mpeg2::Encoder enc(cfg);
    streamgen::SceneConfig sc;
    sc.width = spec.width;
    sc.height = spec.height;
    const streamgen::SceneGenerator scene(sc);
    for (int i = 0; i < spec.pictures; ++i) enc.push_frame(scene.render(i));
    const auto stream = enc.finish();

    double best_ns = 1e18;
    for (int rep = 0; rep < 5; ++rep) {
      mpeg2::Decoder dec;
      WallTimer timer;
      (void)dec.decode_stream(stream, [](mpeg2::FramePtr) {});
      best_ns = std::min(best_ns, static_cast<double>(timer.elapsed_ns()));
    }
    if (q == 8) base_ms = best_ns / 1e6;

    const auto profile =
        sched::replicate_profile(sched::profile_stream(stream), 260);
    sched::SimConfig scfg;
    scfg.workers = workers;
    sched::SimConfig one = scfg;
    one.workers = 1;
    const double gop_speedup =
        sched::simulate_gop(profile, scfg).pictures_per_second() /
        sched::simulate_gop(profile, one).pictures_per_second();
    const double slice_speedup =
        sched::simulate_slice(profile, scfg, parallel::SlicePolicy::kImproved)
            .pictures_per_second() /
        sched::simulate_slice(profile, one, parallel::SlicePolicy::kImproved)
            .pictures_per_second();

    const double mbps =
        stream.size() * 8.0 * 30 / spec.pictures / 1e6;
    t.add_row({std::to_string(q), Table::fmt(mbps, 2),
               Table::fmt(best_ns / 1e6, 1),
               base_ms > 0 ? Table::fmt(best_ns / 1e6 / base_ms, 2) : "-",
               Table::fmt(gop_speedup, 2), Table::fmt(slice_speedup, 2)});
    report.add_row()
        .set("qscale", q)
        .set("megabits_per_second_rate", mbps)
        .set("decode_ns", best_ns)
        .set("gop_speedup", gop_speedup)
        .set("slice_speedup", slice_speedup);
  }
  t.print(std::cout);
  std::cout << "\nPaper reference (§3): decode times within 10-15% across"
               " widely varying bit rates; speedups consistent."
               "\nShape to check: decode time varies far less than bit rate"
               " (a ~10x rate spread moves decode time a few tens of"
               " percent); speedup columns flat across quantizers.\n";
  return bench::finish(flags, report);
}
