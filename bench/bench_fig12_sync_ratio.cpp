// Figure 12 — average (sync time / exec time) over all workers versus the
// number of workers, for the simple and improved slice versions. The ratio
// generally rises with workers and dips where slices/P divides evenly
// (the reversed knees of Fig. 11).
//
// The ratio comes from the shared parallel::summarize_load() derivation
// (via SimResult::load_summary), and --report-out=PATH emits the full
// per-policy load summaries as a structured JSON report.
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 12: slice-version sync/exec ratio",
                      "Bilas et al., Fig. 12");
  const auto worker_list =
      flags.get_int_list("workers", {2, 3, 4, 5, 6, 7, 8, 10, 12, 14});
  const int gop = static_cast<int>(flags.get_int("gop", 13));

  obs::RunReport report("bench_fig12_sync_ratio",
                        "Slice-version sync/exec ratio vs workers (Fig. 12)");
  report.set_meta("gop_size", gop);

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width < 352) continue;
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec.gop_size = gop;
    spec = bench::apply_scale(spec, flags);
    const auto profile = bench::sim_profile(spec, flags);
    std::cout << "\n--- " << res.width << "x" << res.height << " ("
              << profile.slices_per_picture << " slices/picture) ---\n";
    Series series("workers", {"sync/exec (simple)", "sync/exec (improved)"});
    for (const int workers : worker_list) {
      sched::SimConfig cfg;
      cfg.workers = workers;
      const auto simple_load =
          sched::simulate_slice(profile, cfg, parallel::SlicePolicy::kSimple)
              .load_summary();
      const auto improved_load =
          sched::simulate_slice(profile, cfg,
                                parallel::SlicePolicy::kImproved)
              .load_summary();
      series.add_point(workers,
                       {simple_load.sync_ratio, improved_load.sync_ratio});
      for (const auto* policy_load : {&simple_load, &improved_load}) {
        auto& row = report.add_row();
        row.set("width", res.width)
            .set("height", res.height)
            .set("slices_per_picture", profile.slices_per_picture)
            .set("policy",
                 policy_load == &simple_load ? "simple" : "improved");
        bench::append_load_summary(row, *policy_load);
      }
    }
    series.print(std::cout, 3);
  }
  std::cout << "\nPaper reference (Fig. 12): improved version clearly lower;"
               " ratio increases (or stays flat) with workers, dropping"
               " whenever slices/workers divides more evenly. Task-queue"
               " time itself is negligible vs barrier waiting.\n";
  return bench::finish(flags, report);
}
