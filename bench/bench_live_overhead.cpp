// Live telemetry overhead: wall time of a 14-worker playback with the
// null telemetry sink vs the same run publishing into LiveTelemetry with
// a LiveSampler ticking (docs/OBSERVABILITY.md, "Live telemetry").
// Acceptance budget: <= 1% overhead. Interleaved min-of-N per decoder so
// the pair sees the same thermal/cache conditions; the report feeds
// bench_all.sh / bench_check regression gating.
#include <algorithm>
#include <chrono>
#include <functional>
#include <vector>

#include "bench/common.h"
#include "obs/live/sampler.h"
#include "obs/live/telemetry.h"
#include "parallel/gop_decoder.h"
#include "parallel/slice_parallel.h"

using namespace pmp2;

namespace {

double min_of(const std::vector<double>& v) {
  return *std::min_element(v.begin(), v.end());
}

double time_once(const std::function<parallel::RunResult()>& run) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = run();
  const double secs = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  return r.ok ? secs : -1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Live telemetry overhead (14-worker playback)",
                      "pmp2 observability acceptance: <= 1% budget");
  const int workers = static_cast<int>(flags.get_int("workers", 14));
  const int reps = static_cast<int>(flags.get_int("reps", 5));
  const std::int64_t interval_ms = flags.get_int("live-interval-ms", 10);

  obs::RunReport report("bench_live_overhead",
                        "Wall-time cost of live telemetry vs null sink");
  report.set_meta("workers", workers)
      .set_meta("reps", reps)
      .set_meta("live_interval_ms", interval_ms);

  streamgen::StreamSpec spec;  // 352x240 defaults
  spec.gop_size = 13;
  spec.pictures = 78;
  spec = bench::apply_scale(spec, flags);
  const auto stream = bench::load_or_generate(spec);

  Table t({"Decoder", "Base s (min)", "Live s (min)", "Overhead %",
           "Ticks"});
  for (const char* decoder : {"gop", "slice"}) {
    const bool gop = decoder[0] == 'g';
    auto decode = [&](obs::live::LiveTelemetry* live) {
      if (gop) {
        parallel::GopDecoderConfig config;
        config.workers = workers;
        config.live = live;
        return parallel::GopParallelDecoder(config).decode(stream);
      }
      parallel::SliceDecoderConfig config;
      config.workers = workers;
      config.live = live;
      return parallel::SliceParallelDecoder(config).decode(stream);
    };

    std::vector<double> base_s, live_s;
    std::uint64_t ticks = 0;
    bool failed = false;
    for (int rep = 0; rep < reps && !failed; ++rep) {
      const double base = time_once([&] { return decode(nullptr); });
      obs::live::LiveTelemetry telemetry(workers);
      obs::live::LiveSampler::Options options;
      options.interval_ms = interval_ms;
      obs::live::LiveSampler sampler(telemetry, options);
      sampler.start();
      const double live = time_once([&] { return decode(&telemetry); });
      sampler.stop();
      ticks += sampler.snapshots();
      if (base < 0 || live < 0) {
        failed = true;
        break;
      }
      base_s.push_back(base);
      live_s.push_back(live);
    }
    if (failed) {
      t.add_row({decoder, "fail", "fail", "-", "-"});
      report.add_row().set("decoder", decoder).set("ok", false);
      continue;
    }
    const double base_min = min_of(base_s);
    const double live_min = min_of(live_s);
    const double overhead_pct = (live_min / base_min - 1.0) * 100.0;
    t.add_row({decoder, Table::fmt(base_min, 4), Table::fmt(live_min, 4),
               Table::fmt(overhead_pct, 2),
               std::to_string(static_cast<long long>(ticks))});
    report.add_row()
        .set("decoder", decoder)
        .set("ok", true)
        .set("base_min_s", base_min)
        .set("live_min_s", live_min)
        .set("overhead_pct", overhead_pct)
        .set("sampler_ticks", static_cast<std::int64_t>(ticks));
  }
  t.print(std::cout);
  std::cout << "\nBudget: overhead <= 1% (null-sink discipline: one pointer"
               " test per event when detached; seqlock cells when live).\n";
  return bench::finish(flags, report);
}
