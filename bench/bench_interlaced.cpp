// §7.3 (future work, implemented) — interlaced video: "it will be
// necessary to explore the parallelization of both these extensions to
// provide a complete multiprocessor solution." Two questions answered:
//
//  1. What do the interlace coding tools (field/frame DCT + field/frame
//     motion selection) buy on interlaced content?
//  2. Does slice-level parallelism survive interlaced coding? (It should:
//     slices remain the independent unit regardless of per-MB field modes.)
#include "bench/common.h"
#include "mpeg2/decoder.h"
#include "mpeg2/encoder.h"
#include "sched/sim.h"
#include "streamgen/scene.h"

using namespace pmp2;

namespace {

std::vector<std::uint8_t> encode(int width, int height, int pictures,
                                 double pan, bool tools,
                                 mpeg2::EncoderStats* stats) {
  streamgen::SceneConfig sc;
  sc.width = width;
  sc.height = height;
  sc.interlaced = true;
  sc.pan_pels_per_picture = pan;
  const streamgen::SceneGenerator scene(sc);
  mpeg2::EncoderConfig cfg;
  cfg.width = width;
  cfg.height = height;
  cfg.gop_size = 13;
  cfg.interlaced_tools = tools;
  cfg.rate_control = false;
  cfg.base_qscale_code = 6;
  mpeg2::Encoder enc(cfg);
  for (int i = 0; i < pictures; ++i) enc.push_frame(scene.render(i));
  auto out = enc.finish();
  *stats = enc.stats();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Section 7.3: interlaced video tools",
                      "Bilas et al., §7.3 future work (no figure)");
  const int width = static_cast<int>(flags.get_int("width", 352));
  const int height = width * 240 / 352;
  const int pictures = static_cast<int>(flags.get_int("il-pictures", 13));

  obs::RunReport report("bench_interlaced",
                        "Interlaced coding tools + parallelism (Section 7.3)");
  report.set_meta("width", width)
      .set_meta("height", height)
      .set_meta("il_pictures", pictures);

  // --- 1. Coding-tool gains vs motion speed ---
  std::cout << "\n--- field tools vs frame-only coding (" << width << "x"
            << height << ", quantizer fixed) ---\n";
  Table t({"pan pels/pic", "bytes (frame-only)", "bytes (field tools)",
           "bit saving %", "field-MC MBs %", "field-DCT MBs %"});
  for (const double pan : {2.4, 6.0, 12.0}) {
    mpeg2::EncoderStats with_stats, without_stats;
    const auto without =
        encode(width, height, pictures, pan, false, &without_stats);
    const auto with = encode(width, height, pictures, pan, true, &with_stats);
    const double total_mbs =
        static_cast<double>(with_stats.intra_mbs + with_stats.inter_mbs +
                            with_stats.skipped_mbs);
    t.add_row({Table::fmt(pan, 1), std::to_string(without.size()),
               std::to_string(with.size()),
               Table::fmt(100.0 * (1.0 - static_cast<double>(with.size()) /
                                             without.size()),
                          1),
               Table::fmt(100.0 * with_stats.field_motion_mbs / total_mbs, 1),
               Table::fmt(100.0 * with_stats.field_dct_mbs / total_mbs, 1)});
    report.add_row()
        .set("study", "coding_tools")
        .set("pan_pels_per_picture", pan)
        .set("frame_only_bytes", static_cast<std::int64_t>(without.size()))
        .set("field_tools_bytes", static_cast<std::int64_t>(with.size()))
        .set("bit_saving_percent",
             100.0 * (1.0 - static_cast<double>(with.size()) /
                                static_cast<double>(without.size())));
  }
  t.print(std::cout);

  // --- 2. Parallel behaviour on the interlaced stream ---
  {
    mpeg2::EncoderStats stats;
    const auto stream = encode(width, height, pictures, 6.0, true, &stats);
    const auto profile =
        sched::replicate_profile(sched::profile_stream(stream),
                                 static_cast<int>(flags.get_int(
                                     "sim-pictures", 1120)));
    std::cout << "\n--- slice-parallel speedup on the interlaced stream ---\n";
    Series series("workers", {"speedup (improved slice)", "speedup (GOP)"});
    double base_slice = 0, base_gop = 0;
    for (const int workers : {1, 2, 4, 8, 12, 14}) {
      sched::SimConfig cfg;
      cfg.workers = workers;
      const double slice =
          sched::simulate_slice(profile, cfg,
                                parallel::SlicePolicy::kImproved)
              .pictures_per_second();
      const double gop =
          sched::simulate_gop(profile, cfg).pictures_per_second();
      if (workers == 1) {
        base_slice = slice;
        base_gop = gop;
      }
      series.add_point(workers, {slice / base_slice, gop / base_gop});
      report.add_row()
          .set("study", "parallel_speedup")
          .set("workers", workers)
          .set("slice_speedup", slice / base_slice)
          .set("gop_speedup", gop / base_gop);
    }
    series.print(std::cout, 2);
  }
  std::cout << "\nPaper reference (§7.3): interlaced support named as the"
               " step toward 'a complete multiprocessor solution'."
               "\nShape to check: bit savings grow with motion speed (comb"
               " amplitude); parallel speedups match the progressive-stream"
               " curves — slices stay the unit of parallelism.\n";
  return bench::finish(flags, report);
}
