// Figure 15 — ratio of read capacity misses to read cold misses versus
// cache size: small ratios at realistic cache sizes show that capacity
// misses (and thus cache size beyond the working set) are not a bottleneck.
#include "bench/common.h"
#include "simcache/cache.h"
#include "simcache/trace_gen.h"

using namespace pmp2;

namespace {

void run_panel(const std::vector<std::uint8_t>& stream, int procs,
               int trace_pics, const std::vector<int>& sizes_kb,
               obs::RunReport& report, const char* panel) {
  std::vector<std::unique_ptr<simcache::MultiCacheSim>> sims;
  simcache::TraceTee tee;
  for (const int kb : sizes_kb) {
    simcache::CacheConfig cfg;
    cfg.size_bytes = static_cast<std::int64_t>(kb) << 10;
    cfg.line_bytes = 64;
    cfg.associativity = 2;
    sims.push_back(std::make_unique<simcache::MultiCacheSim>(procs, cfg));
    tee.add(sims.back().get());
  }
  simcache::TraceOptions topt;
  topt.procs = procs;
  topt.max_pictures = trace_pics;
  // 1 processor = the GOP decoder's execution (fresh buffers per picture);
  // multi-processor = the slice decoder's (pooled, ~3 pictures live).
  topt.pooled_buffers = procs > 1;
  if (!simcache::generate_decode_trace(stream, tee, topt)) {
    std::cerr << "trace generation failed\n";
    return;
  }
  pmp2::Series series("cache KB",
                      {"cap/read-cold", "cap/all-cold", "read cold",
                       "all cold", "read cap"});
  for (std::size_t i = 0; i < sizes_kb.size(); ++i) {
    const auto total = sims[i]->total_stats();
    const double vs_read =
        total.read_cold > 0 ? static_cast<double>(total.read_capacity) /
                                  static_cast<double>(total.read_cold)
                            : 0.0;
    // All first-touch misses (a write-allocate cache fetches the line on a
    // write miss too, which is how an execution-driven simulator of the
    // paper's era accounts them).
    const double vs_all =
        total.cold > 0 ? static_cast<double>(total.read_capacity) /
                             static_cast<double>(total.cold)
                       : 0.0;
    series.add_point(sizes_kb[i],
                     {vs_read, vs_all, static_cast<double>(total.read_cold),
                      static_cast<double>(total.cold),
                      static_cast<double>(total.read_capacity)});
    report.add_row()
        .set("panel", panel)
        .set("cache_kb", sizes_kb[i])
        .set("capacity_over_read_cold_ratio", vs_read)
        .set("capacity_over_all_cold_ratio", vs_all)
        .set("read_capacity_misses", total.read_capacity);
  }
  series.print(std::cout, 3);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 15: read capacity / read cold miss ratio",
                      "Bilas et al., Fig. 15 (64-byte lines, 2-way)");
  const int trace_pics = static_cast<int>(flags.get_int("trace-pictures", 13));
  const auto sizes_kb =
      flags.get_int_list("sizes-kb", {8, 16, 32, 64, 128, 256, 1024});

  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 352));
  spec.height = spec.width * 240 / 352;
  spec.bit_rate = 5'000'000;
  spec = bench::apply_scale(spec, flags);
  const auto stream = bench::load_or_generate(spec);

  obs::RunReport report("bench_fig15_capacity_vs_cold",
                        "Read capacity / cold miss ratio vs cache size "
                        "(Fig. 15)");
  report.set_meta("width", spec.width)
      .set_meta("height", spec.height)
      .set_meta("trace_pictures", trace_pics);

  std::cout << "\n--- GOP version trace: 1 processor ---\n";
  run_panel(stream, 1, trace_pics, sizes_kb, report, "gop_1proc");
  std::cout << "\n--- Simple slice version trace: 8 processors ---\n";
  run_panel(stream, 8, trace_pics, sizes_kb, report, "slice_8proc");

  std::cout << "\nPaper reference (Fig. 15): capacity misses small compared"
               " to cold misses once the cache holds the working set;"
               " growing the cache further does not significantly improve"
               " performance."
               "\nShape to check: capacity/cold ratio falls toward ~0 as the"
               " cache size grows; cold misses are size-invariant.\n";
  return bench::finish(flags, report);
}
