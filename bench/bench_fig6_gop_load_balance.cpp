// Figure 6 — GOP-version load imbalance: minimum / average / maximum worker
// compute time versus GOP size. Larger GOPs mean fewer, larger tasks: one
// extra task on a worker shows as visible imbalance (a finite-stream
// artifact the paper calls out).
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 6: GOP-version load balance vs GOP size",
                      "Bilas et al., Fig. 6");
  const int workers = static_cast<int>(flags.get_int("workers", 8));
  const auto gop_sizes = flags.get_int_list("gops", {4, 13, 16, 31});

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width < 352) continue;
    std::cout << "\n--- " << res.width << "x" << res.height << " (P="
              << workers << ") ---\n";
    Table t({"GOP size", "Tasks", "Min compute ms", "Avg compute ms",
             "Max compute ms", "Max/Avg"});
    for (const int gop : gop_sizes) {
      streamgen::StreamSpec spec;
      spec.width = res.width;
      spec.height = res.height;
      spec.bit_rate = res.bit_rate;
      spec.gop_size = gop;
      spec = bench::apply_scale(spec, flags);
      const auto profile = bench::sim_profile(spec, flags);
      sched::SimConfig cfg;
      cfg.workers = workers;
      const auto r = sched::simulate_gop(profile, cfg);
      t.add_row({std::to_string(gop),
                 std::to_string(profile.gops.size()),
                 Table::fmt(r.min_busy_ns() / 1e6, 2),
                 Table::fmt(r.avg_busy_ns() / 1e6, 2),
                 Table::fmt(r.max_busy_ns() / 1e6, 2),
                 Table::fmt(r.avg_busy_ns() > 0
                                ? r.max_busy_ns() / r.avg_busy_ns()
                                : 0.0,
                            2)});
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper reference (Fig. 6): min/max close to average for"
               " small GOPs; imbalance grows with GOP size as tasks become"
               " fewer and larger (one extra task per worker dominates)."
               "\nShape to check: Max/Avg rises with GOP size.\n";
  return bench::finish(flags);
}
