// Figure 6 — GOP-version load imbalance: minimum / average / maximum worker
// compute time versus GOP size. Larger GOPs mean fewer, larger tasks: one
// extra task on a worker shows as visible imbalance (a finite-stream
// artifact the paper calls out).
//
// The min/avg/max/imbalance columns come from the shared
// parallel::summarize_load() derivation (via SimResult::load_summary), and
// --report-out=PATH emits the same numbers as a structured JSON report.
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 6: GOP-version load balance vs GOP size",
                      "Bilas et al., Fig. 6");
  const int workers = static_cast<int>(flags.get_int("workers", 8));
  const auto gop_sizes = flags.get_int_list("gops", {4, 13, 16, 31});

  obs::RunReport report("bench_fig6_gop_load_balance",
                        "GOP-version load balance vs GOP size (Fig. 6)");
  report.set_meta("workers", workers);

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width < 352) continue;
    std::cout << "\n--- " << res.width << "x" << res.height << " (P="
              << workers << ") ---\n";
    Table t({"GOP size", "Tasks", "Min compute ms", "Avg compute ms",
             "Max compute ms", "Max/Avg"});
    for (const int gop : gop_sizes) {
      streamgen::StreamSpec spec;
      spec.width = res.width;
      spec.height = res.height;
      spec.bit_rate = res.bit_rate;
      spec.gop_size = gop;
      spec = bench::apply_scale(spec, flags);
      const auto profile = bench::sim_profile(spec, flags);
      sched::SimConfig cfg;
      cfg.workers = workers;
      const auto r = sched::simulate_gop(profile, cfg);
      const auto load = r.load_summary();
      t.add_row({std::to_string(gop),
                 std::to_string(profile.gops.size()),
                 Table::fmt(static_cast<double>(load.min_busy_ns) / 1e6, 2),
                 Table::fmt(load.avg_busy_ns / 1e6, 2),
                 Table::fmt(static_cast<double>(load.max_busy_ns) / 1e6, 2),
                 Table::fmt(load.imbalance, 2)});
      auto& row = report.add_row();
      row.set("width", res.width)
          .set("height", res.height)
          .set("gop_size", gop)
          .set("gop_tasks", profile.gops.size())
          .set("makespan_ns", r.makespan_ns)
          .set("pictures_per_second", r.pictures_per_second());
      bench::append_load_summary(row, load);
    }
    t.print(std::cout);
  }
  std::cout << "\nPaper reference (Fig. 6): min/max close to average for"
               " small GOPs; imbalance grows with GOP size as tasks become"
               " fewer and larger (one extra task per worker dominates)."
               "\nShape to check: Max/Avg rises with GOP size.\n";
  return bench::finish(flags, report);
}
