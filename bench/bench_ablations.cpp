// Ablation bench — design choices DESIGN.md calls out, explored with the
// virtual-time simulator:
//
//  1. Task-queue overhead: the paper found lock time negligible; sweep the
//     per-task cost to find where that stops being true (slice tasks are
//     ~100x smaller than GOP tasks).
//  2. Bounded GOP queue: backpressure trades the paper's unbounded memory
//     growth against scan-ahead (the fix the paper's Fig. 9 problem
//     implies).
//  3. Improved-policy open-picture window: how much lookahead the slice
//     decoder needs before returns vanish.
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Ablations: queue overhead, backpressure, window",
                      "design-choice studies (no paper figure)");

  streamgen::StreamSpec spec;
  spec.width = static_cast<int>(flags.get_int("width", 352));
  spec.height = spec.width * 240 / 352;
  spec.bit_rate = 5'000'000;
  spec.gop_size = static_cast<int>(flags.get_int("gop", 13));
  spec = bench::apply_scale(spec, flags);
  const auto profile = bench::sim_profile(spec, flags);
  const int workers = static_cast<int>(flags.get_int("workers", 8));

  obs::RunReport report("bench_ablations",
                        "Queue overhead, backpressure, and window ablations");
  report.set_meta("width", spec.width)
      .set_meta("height", spec.height)
      .set_meta("gop_size", spec.gop_size)
      .set_meta("workers", workers);

  // --- 1. Task-queue overhead sweep --------------------------------------
  {
    std::cout << "\n--- queue overhead per task (P=" << workers << ") ---\n";
    Series series("overhead us",
                  {"GOP pics/s", "slice pics/s", "slice/GOP"});
    for (const int us : {0, 1, 10, 100, 1000, 10000}) {
      sched::SimConfig cfg;
      cfg.workers = workers;
      cfg.queue_overhead_ns = static_cast<std::int64_t>(us) * 1000;
      const double gop =
          sched::simulate_gop(profile, cfg).pictures_per_second();
      const double slice =
          sched::simulate_slice(profile, cfg,
                                parallel::SlicePolicy::kImproved)
              .pictures_per_second();
      series.add_point(us, {gop, slice, slice / gop});
      report.add_row()
          .set("study", "queue_overhead")
          .set("us_per_task", us)
          .set("gop_pictures_per_second", gop)
          .set("slice_pictures_per_second", slice);
    }
    series.print(std::cout, 2);
    std::cout << "Expected: GOP version insensitive (tasks are whole GOPs);"
                 " slice version collapses once overhead rivals a slice's"
                 " decode time — the paper's granularity argument.\n";
  }

  // --- 2. Bounded GOP task queue ------------------------------------------
  {
    std::cout << "\n--- GOP queue bound (paper-speed processors, paced"
                 " display, P=" << workers << ") ---\n";
    // Slow the virtual processors to the paper's per-worker rate so the
    // scan process genuinely runs ahead (on a modern core it barely can).
    double total_ns = 0;
    for (const auto& g : profile.gops) {
      for (const auto& pic : g.pictures) {
        for (const auto& s : pic.slices) {
          total_ns += static_cast<double>(profile.slice_cost_ns(s, false));
        }
      }
    }
    const double one_worker_pps = profile.total_pictures() * 1e9 / total_ns;
    const double target_pps =
        5.0 * (352.0 * 240.0) / (spec.width * spec.height);
    Series series("max queued GOPs",
                  {"scan-ahead peak MB", "total peak MB", "pics/s"});
    for (const int bound : {0, 1, 2, 4, 8, 16}) {
      sched::SimConfig cfg;
      cfg.workers = workers;
      cfg.paced_display = true;
      cfg.cost_scale = one_worker_pps / target_pps;
      cfg.max_queued_gops = bound;
      const auto r = sched::simulate_gop(profile, cfg);
      series.add_point(bound,
                       {static_cast<double>(r.peak_stream_bytes) / (1 << 20),
                        static_cast<double>(r.peak_memory) / (1 << 20),
                        r.pictures_per_second()});
      report.add_row()
          .set("study", "gop_queue_bound")
          .set("max_queued_gops", bound)
          .set("peak_stream_bytes", r.peak_stream_bytes)
          .set("peak_memory_bytes", r.peak_memory)
          .set("pictures_per_second", r.pictures_per_second());
    }
    series.print(std::cout, 2);
    std::cout << "Expected: unbounded (0) lets the scan buffer hold most of"
                 " the stream (the scan(t) term of Fig. 9); small bounds cap"
                 " it at ~bound GOPs of bytes with no throughput loss.\n";
  }

  // --- 3. Improved-policy open-picture window ------------------------------
  {
    std::cout << "\n--- improved slice policy: max open pictures (P="
              << workers << ") ---\n";
    Series series("max open", {"pics/s", "sync/exec"});
    for (const int window : {1, 2, 3, 4, 6, 8}) {
      sched::SimConfig cfg;
      cfg.workers = workers;
      cfg.max_open_pictures = window;
      const auto r = sched::simulate_slice(
          profile, cfg, parallel::SlicePolicy::kImproved);
      series.add_point(window, {r.pictures_per_second(), r.sync_ratio()});
      report.add_row()
          .set("study", "open_picture_window")
          .set("max_open_pictures", window)
          .set("pictures_per_second", r.pictures_per_second())
          .set("sync_ratio", r.sync_ratio());
    }
    series.print(std::cout, 3);
    std::cout << "Expected: window 1 equals the simple policy; gains level"
                 " off around M (the I/P distance, 3) because only the B"
                 " run between references overlaps.\n";
  }
  return bench::finish(flags, report);
}
