// Extension of Fig. 11's analysis — slice granularity: the paper observes
// that pictures usually carry one slice per macroblock row and that the
// slice count caps fine-grained parallelism. Re-encode the same content
// with 1/2/4 slices per row and watch the simple policy's ceiling move,
// and what the extra slices cost in bits.
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Extension: slice granularity vs parallelism",
      "Bilas et al., §4/§5.2 discussion (no figure)");
  const int width = static_cast<int>(flags.get_int("width", 352));
  const auto spr_list = flags.get_int_list("slices-per-row", {1, 2, 4});
  const auto worker_list = flags.get_int_list("workers", {8, 14, 20, 28});

  obs::RunReport report("bench_slice_granularity",
                        "Slice granularity vs parallelism (Section 5.2)");
  report.set_meta("width", width);

  Table t([&] {
    std::vector<std::string> h{"slices/row", "slices/pic", "stream KB"};
    for (const int w : worker_list) {
      h.push_back("simple speedup@" + std::to_string(w));
    }
    for (const int w : worker_list) {
      h.push_back("improved@" + std::to_string(w));
    }
    return h;
  }());

  for (const int spr : spr_list) {
    streamgen::StreamSpec spec;
    spec.width = width;
    spec.height = width * 240 / 352;
    spec.bit_rate = 5'000'000;
    spec.gop_size = 13;
    spec.slices_per_row = spr;
    spec = bench::apply_scale(spec, flags);
    const auto stream = bench::load_or_generate(spec);
    const auto profile = bench::sim_profile(spec, flags);

    sched::SimConfig one;
    one.workers = 1;
    const double base_simple =
        sched::simulate_slice(profile, one, parallel::SlicePolicy::kSimple)
            .pictures_per_second();
    const double base_improved =
        sched::simulate_slice(profile, one, parallel::SlicePolicy::kImproved)
            .pictures_per_second();
    std::vector<std::string> row{
        std::to_string(spr),
        std::to_string(profile.slices_per_picture * spr == 0
                           ? 0
                           : static_cast<int>(
                                 profile.gops[0].pictures[0].slices.size())),
        Table::fmt(stream.size() / 1024.0, 1)};
    std::vector<std::string> improved_cells;
    for (const int workers : worker_list) {
      sched::SimConfig cfg;
      cfg.workers = workers;
      const double simple_speedup =
          sched::simulate_slice(profile, cfg, parallel::SlicePolicy::kSimple)
              .pictures_per_second() /
          base_simple;
      const double improved_speedup =
          sched::simulate_slice(profile, cfg,
                                parallel::SlicePolicy::kImproved)
              .pictures_per_second() /
          base_improved;
      row.push_back(Table::fmt(simple_speedup, 2));
      improved_cells.push_back(Table::fmt(improved_speedup, 2));
      report.add_row()
          .set("slices_per_row", spr)
          .set("workers", workers)
          .set("stream_bytes", static_cast<std::int64_t>(stream.size()))
          .set("simple_speedup", simple_speedup)
          .set("improved_speedup", improved_speedup);
    }
    row.insert(row.end(), improved_cells.begin(), improved_cells.end());
    t.add_row(std::move(row));
  }
  t.print(std::cout);
  std::cout << "\nPaper reference: 'the number of slices per picture ..."
               " has an important impact on the load balance and the"
               " performance' (§5.2); most streams carry one slice per row."
               "\nShape to check: doubling slices/row roughly doubles the"
               " simple policy's worker ceiling (knee at slices/P steps)"
               " for ~1-2% more bits per extra slice/row.\n";
  return bench::finish(flags, report);
}
