// Multi-stream serving bench (docs/SERVING.md): the DecodeServer replaying
// the scaled resolution sweep at several session counts and fault mixes
// over one shared worker pool.
//
// Where bench_table1/bench_adaptive measure one stream decoded alone, this
// harness measures the serving regime the paper's real-time goal implies:
// many streams contending for the same workers, admission by predicted
// load, weighted fair scheduling, per-session frame-latency accounting.
// Each row is one (sessions, corrupt_sessions) configuration — the
// identity bench_check diffs against BENCH_parallel.json — with aggregate
// pictures_per_second (higher-better) and p50/p95/p99 queue-inclusive
// frame latency in ns (lower-better), so a regression in either direction
// is visible under the suite's direction-aware tolerances.
//
// Fault mixes replay deterministic inject::plan_fault specs on the first N
// sessions: the serving cost of bounded recovery (concealment, quarantine)
// under load, not just its correctness.
#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "bench/common.h"
#include "inject/fault.h"
#include "serve/server.h"
#include "util/table.h"
#include "util/timer.h"

using namespace pmp2;

namespace {

struct MixResult {
  bool ok = true;
  double wall_s = 0.0;
  std::int64_t pictures = 0;
  obs::HistogramSnapshot latency;
  parallel::WorkerLoadSummary load;
  int concealed_slices = 0;
  int quarantined_gops = 0;
  int exploded_gops = 0;
  int gop_mode_gops = 0;
};

MixResult run_mix(const std::vector<std::vector<std::uint8_t>>& streams,
                  int sessions, int corrupt, int workers,
                  std::uint64_t fault_seed) {
  serve::ServerConfig config;
  config.workers = workers;
  config.watchdog_ns = 30'000'000'000;
  config.admission.max_queued = sessions;  // wait, never bounce

  // Corrupted copies must outlive their sessions.
  std::vector<std::vector<std::uint8_t>> corrupted;
  corrupted.reserve(static_cast<std::size_t>(corrupt));

  MixResult out;
  WallTimer wall;
  serve::DecodeServer server(config);
  std::vector<serve::SessionId> ids;
  ids.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    const auto& base = streams[static_cast<std::size_t>(i) % streams.size()];
    if (i < corrupt) {
      corrupted.push_back(inject::apply_fault(
          base, inject::plan_fault(fault_seed,
                                   static_cast<std::uint64_t>(i))));
      ids.push_back(server.submit(corrupted.back(), {}));
    } else {
      ids.push_back(server.submit(base, {}));
    }
  }
  for (int i = 0; i < sessions; ++i) {
    const serve::SessionResult r =
        server.wait(ids[static_cast<std::size_t>(i)]);
    if (r.hung || (i >= corrupt && !r.ok)) out.ok = false;
    out.pictures += r.pictures_delivered;
    out.latency.add(r.latency);
    out.concealed_slices += r.concealed_slices;
    out.quarantined_gops += r.quarantined_gops;
    out.exploded_gops += r.exploded_gops;
    out.gop_mode_gops += r.gop_mode_gops;
  }
  out.wall_s = wall.elapsed_s();
  out.load = server.load_summary();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::apply_kernels_flag(flags);
  bench::print_header("Multi-stream serving: DecodeServer session mixes",
                      "shared-pool serving over the paper's stream matrix");
  const int workers = static_cast<int>(flags.get_int("workers", 4));
  const auto fault_seed =
      static_cast<std::uint64_t>(flags.get_int("fault-seed", 1));

  // The scaled resolution sweep, one generated stream per resolution
  // (cached across runs by the bench stream cache).
  std::vector<std::vector<std::uint8_t>> streams;
  std::vector<std::string> names;
  for (const auto& res : bench::resolutions(flags)) {
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec = bench::apply_scale(spec, flags);
    streams.push_back(bench::load_or_generate(spec));
    names.push_back(spec.name());
  }
  if (streams.empty()) {
    std::cerr << "bench_serve: no streams\n";
    return 1;
  }

  obs::RunReport report("bench_serve",
                        "DecodeServer session/fault mixes: aggregate "
                        "throughput and frame-latency percentiles");
  report.set_meta("workers", workers);
  report.set_meta("streams", static_cast<std::int64_t>(streams.size()));
  bench::set_kernel_identity(report);

  // The mix grid: contention from 1x to 4x the worker count, plus one
  // fault mix proving recovery stays affordable under load.
  struct Mix {
    int sessions;
    int corrupt;
  };
  const std::vector<Mix> mixes = {
      {1, 0}, {workers, 0}, {2 * workers, 0}, {4 * workers, 0},
      {2 * workers, 2},
  };

  Table table({"sessions", "corrupt", "pics/s", "p50 ms", "p95 ms",
               "p99 ms", "util", "exploded", "concealed"});
  bool all_ok = true;
  for (const auto& mix : mixes) {
    const MixResult r =
        run_mix(streams, mix.sessions, mix.corrupt, workers, fault_seed);
    all_ok = all_ok && r.ok;
    const double pps = r.wall_s > 0 ? r.pictures / r.wall_s : 0.0;
    table.add_row({std::to_string(mix.sessions),
                   std::to_string(mix.corrupt), Table::fmt(pps, 1),
                   Table::fmt(r.latency.percentile(0.50) / 1e6),
                   Table::fmt(r.latency.percentile(0.95) / 1e6),
                   Table::fmt(r.latency.percentile(0.99) / 1e6),
                   Table::fmt(r.load.utilization),
                   std::to_string(r.exploded_gops),
                   std::to_string(r.concealed_slices)});
    report.add_row()
        .set("sessions", static_cast<std::int64_t>(mix.sessions))
        .set("corrupt_sessions", static_cast<std::int64_t>(mix.corrupt))
        .set("ok", r.ok)
        .set("pictures_per_second", pps)
        .set("latency_p50_ns", r.latency.percentile(0.50))
        .set("latency_p95_ns", r.latency.percentile(0.95))
        .set("latency_p99_ns", r.latency.percentile(0.99))
        .set("utilization", r.load.utilization)
        .set("imbalance", r.load.imbalance)
        .set("exploded_gops", static_cast<std::int64_t>(r.exploded_gops))
        .set("gop_mode_gops", static_cast<std::int64_t>(r.gop_mode_gops))
        .set("concealed_slices",
             static_cast<std::int64_t>(r.concealed_slices))
        .set("quarantined_gops",
             static_cast<std::int64_t>(r.quarantined_gops));
  }
  table.print(std::cout);
  if (!all_ok) {
    std::cerr << "bench_serve: a session hung or a clean session failed\n";
  }

  const int rc = bench::finish(flags, report);
  if (rc != 0) return rc;
  return all_ok ? 0 : 1;
}
