// Figure 14 — read miss rate versus per-processor cache size (64-byte
// lines) for 1-way / 2-way / fully-associative caches. Left panel: GOP
// version on 1 processor; right panel: simple slice version on 8
// processors. The knee at 16-32 KB locates the working set.
#include "bench/common.h"
#include "simcache/cache.h"
#include "simcache/trace_gen.h"

using namespace pmp2;

namespace {

void run_panel(const std::vector<std::uint8_t>& stream, int procs,
               int trace_pics, const std::vector<int>& sizes_kb,
               obs::RunReport& report, const char* panel) {
  std::vector<std::unique_ptr<simcache::MultiCacheSim>> sims;
  simcache::TraceTee tee;
  const int assocs[] = {1, 2, 0};  // 1-way, 2-way, fully associative
  for (const int kb : sizes_kb) {
    for (const int assoc : assocs) {
      simcache::CacheConfig cfg;
      cfg.size_bytes = static_cast<std::int64_t>(kb) << 10;
      cfg.line_bytes = 64;
      cfg.associativity = assoc;
      sims.push_back(std::make_unique<simcache::MultiCacheSim>(procs, cfg));
      tee.add(sims.back().get());
    }
  }
  simcache::TraceOptions topt;
  topt.procs = procs;
  topt.max_pictures = trace_pics;
  // 1 processor = the GOP decoder's execution (fresh buffers per picture);
  // multi-processor = the slice decoder's (pooled, ~3 pictures live).
  topt.pooled_buffers = procs > 1;
  if (!simcache::generate_decode_trace(stream, tee, topt)) {
    std::cerr << "trace generation failed\n";
    return;
  }
  pmp2::Series series("cache KB",
                      {"miss rate 1-way", "miss rate 2-way",
                       "miss rate full"});
  const char* assoc_names[] = {"1-way", "2-way", "full"};
  for (std::size_t i = 0; i < sizes_kb.size(); ++i) {
    std::vector<double> ys;
    for (int a = 0; a < 3; ++a) {
      ys.push_back(sims[i * 3 + static_cast<std::size_t>(a)]
                       ->total_stats()
                       .read_miss_rate());
      report.add_row()
          .set("panel", panel)
          .set("cache_kb", sizes_kb[i])
          .set("associativity", assoc_names[a])
          .set("read_miss_rate", ys.back());
    }
    series.add_point(sizes_kb[i], ys);
  }
  series.print(std::cout, 4);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 14: read miss rate vs cache size",
                      "Bilas et al., Fig. 14 (64-byte lines)");
  const int trace_pics = static_cast<int>(flags.get_int("trace-pictures", 13));
  const auto sizes_kb =
      flags.get_int_list("sizes-kb", {4, 8, 16, 32, 64, 128, 256, 1024});
  const int width = static_cast<int>(flags.get_int("width", 352));

  streamgen::StreamSpec spec;
  spec.width = width;
  spec.height = width == 352 ? 240 : width * 240 / 352;
  spec.bit_rate = width >= 704 ? 5'000'000 : (width >= 352 ? 5'000'000
                                                           : 1'500'000);
  spec = bench::apply_scale(spec, flags);
  const auto stream = bench::load_or_generate(spec);

  obs::RunReport report("bench_fig14_working_sets",
                        "Read miss rate vs cache size (Fig. 14)");
  report.set_meta("width", spec.width)
      .set_meta("height", spec.height)
      .set_meta("trace_pictures", trace_pics);

  std::cout << "\n--- GOP version trace: 1 processor, " << width << "x"
            << spec.height << " ---\n";
  run_panel(stream, 1, trace_pics, sizes_kb, report, "gop_1proc");

  std::cout << "\n--- Simple slice version trace: 8 processors ---\n";
  run_panel(stream, 8, trace_pics, sizes_kb, report, "slice_8proc");

  std::cout << "\nPaper reference (Fig. 14): miss rate drops sharply once"
               " caches exceed 16-32 KB given some associativity;"
               " direct-mapped caches need >= 64 KB. Working set sized by"
               " macroblock reconstruction, independent of picture size and"
               " processor count."
               "\nShape to check: knee at small cache sizes; 1-way curve"
               " shifted right of 2-way/full; flat beyond the knee.\n";
  return bench::finish(flags, report);
}
