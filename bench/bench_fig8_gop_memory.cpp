// Figure 8 — actual memory requirements of the GOP approach as a function
// of the number of processors, GOP size and resolution: peak of the
// simulated memory timeline (stream read-ahead + frame buffers) with the
// display process paced at 30 pictures/s, as in the paper's runs.
//
// The virtual processors are slowed (cost_scale) to the paper's
// per-processor decode rate (~5 pics/s at 352x240 on a 150 MHz R4400):
// a modern core outruns the 30 pics/s display so thoroughly that the
// decoded-but-undisplayed backlog would swamp the workers x GOP-size
// effect this figure is about. Override with --paper-speed=false.
#include "bench/common.h"
#include "sched/sim.h"

using namespace pmp2;

namespace {

double one_worker_rate(const sched::StreamProfile& profile) {
  double total_ns = 0;
  for (const auto& g : profile.gops) {
    for (const auto& pic : g.pictures) {
      for (const auto& s : pic.slices) {
        total_ns += static_cast<double>(profile.slice_cost_ns(s, false));
      }
    }
  }
  return profile.total_pictures() * 1e9 / total_ns;
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header("Figure 8: GOP-version peak memory",
                      "Bilas et al., Fig. 8");
  const auto worker_list = flags.get_int_list("workers", {1, 3, 7, 11, 14});
  const auto gop_sizes = flags.get_int_list("gops", {4, 13, 31});

  obs::RunReport report("bench_fig8_gop_memory",
                        "GOP-version peak memory vs workers (Fig. 8)");
  report.set_meta("paper_speed", flags.get_bool("paper-speed", true));

  for (const auto& res : bench::resolutions(flags)) {
    if (res.width < 352) continue;
    std::cout << "\n--- " << res.width << "x" << res.height << " ---\n";
    std::vector<std::string> labels;
    for (const int g : gop_sizes) {
      labels.push_back("peak MB (GOP=" + std::to_string(g) + ")");
    }
    Series series("workers", labels);
    for (const int workers : worker_list) {
      std::vector<double> ys;
      for (const int gop : gop_sizes) {
        streamgen::StreamSpec spec;
        spec.width = res.width;
        spec.height = res.height;
        spec.bit_rate = res.bit_rate;
        spec.gop_size = gop;
        spec = bench::apply_scale(spec, flags);
        const auto profile = bench::sim_profile(spec, flags);
        sched::SimConfig cfg;
        cfg.workers = workers;
        cfg.paced_display = true;
        if (flags.get_bool("paper-speed", true)) {
          const double target =
              5.0 * (352.0 * 240.0) / (res.width * res.height);
          cfg.cost_scale = one_worker_rate(profile) / target;
        }
        const auto r = sched::simulate_gop(profile, cfg);
        ys.push_back(static_cast<double>(r.peak_memory) / (1 << 20));
        report.add_row()
            .set("width", res.width)
            .set("height", res.height)
            .set("gop_size", gop)
            .set("workers", workers)
            .set("peak_memory_bytes", r.peak_memory);
      }
      series.add_point(workers, ys);
    }
    series.print(std::cout, 2);
  }
  std::cout << "\nPaper reference (Fig. 8): memory grows linearly with the"
               " number of processors, GOP size, and picture resolution; the"
               " largest configurations approach the machine limit."
               "\nShape to check: peak ~ workers x GOP size x frame size"
               " until the stream runs out of GOPs to hand out.\n";
  return bench::finish(flags, report);
}
