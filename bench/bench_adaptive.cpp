// Adaptive-granularity Pareto sweep (docs/PERFORMANCE.md section 7).
//
// The paper fixes granularity per experiment: GOP tasks maximize
// throughput (Fig. 5), slice tasks minimize latency (Fig. 11). The
// adaptive scheduler picks per GOP at dispatch time; this harness sweeps
// all three policies at 2/4/8/14 workers on both objectives:
//
//   - p99 frame latency, from a *paced* simulation where the scan process
//     delivers bytes at the stream's real-time rate (the broadcast-input
//     regime where exploding shallow queues pays off), and
//   - pictures/second, from an unpaced simulation (scan outruns decode,
//     the paper's throughput regime).
//
// A policy is Pareto-dominated when another is at least as good on both
// axes. The acceptance claim: adaptive matches or dominates both fixed
// modes at every worker count. The stolen-task attribution table answers
// "where did stolen work land" per worker.
#include <cstdint>
#include <string>

#include "bench/common.h"
#include "sched/adaptive.h"
#include "sched/sim.h"

using namespace pmp2;

namespace {

struct ModeResult {
  std::int64_t p99_ns = 0;  // paced p99 frame latency
  double pps = 0.0;         // unpaced throughput
  sched::SimResult paced;   // adaptive accounting lives here
};

/// True when `a` is at least as good as `b` on both axes, within `tol`
/// (relative): latency no more than (1+tol) of b's, throughput at least
/// (1-tol) of b's.
bool matches_or_dominates(const ModeResult& a, const ModeResult& b,
                          double tol) {
  const double lat_a = static_cast<double>(a.p99_ns);
  const double lat_b = static_cast<double>(b.p99_ns);
  return lat_a <= lat_b * (1.0 + tol) && a.pps >= b.pps * (1.0 - tol);
}

}  // namespace

int main(int argc, char** argv) {
  const Flags flags(argc, argv);
  bench::print_header(
      "Adaptive granularity: latency/throughput Pareto sweep",
      "hybrid GOP/slice dispatch; cf. Bilas et al. Figs. 5 and 11");
  const auto worker_list = flags.get_int_list("workers", {2, 4, 8, 14});
  const int gop = static_cast<int>(flags.get_int("gop", 13));
  // "Matches" tolerance for the Pareto verdict: the simulator is
  // deterministic, but tie-breaking between policies can differ by a
  // queue-overhead quantum, so exact equality is too strict.
  const double tol = flags.get_double("tol", 0.01);

  obs::RunReport report("bench_adaptive",
                        "Adaptive vs fixed granularity: p99 frame latency "
                        "(paced) and throughput (unpaced)");
  report.set_meta("gop_size", gop);
  report.set_meta("pareto_tol", tol);

  sched::AdaptivePolicy policy;  // defaults: depth = workers, factor 2.0
  int pareto_ok = 0, pareto_total = 0;

  for (const auto& res : bench::resolutions(flags)) {
    streamgen::StreamSpec spec;
    spec.width = res.width;
    spec.height = res.height;
    spec.bit_rate = res.bit_rate;
    spec.gop_size = gop;
    spec = bench::apply_scale(spec, flags);
    const auto profile = bench::sim_profile(spec, flags);

    // Real-time byte rate of this stream: the paced runs feed the scan at
    // exactly playback speed, so frame latency measures how long a picture
    // waits behind the dispatch policy, not behind an infinitely fast scan.
    const double realtime_bytes_per_ns =
        static_cast<double>(profile.stream_bytes) * profile.frame_rate /
        (static_cast<double>(profile.total_pictures()) * 1e9);

    std::cout << "\n--- " << res.width << "x" << res.height << " ("
              << profile.gops.size() << " GOPs, "
              << profile.slices_per_picture << " slices/picture) ---\n";

    Table table({"workers", "policy", "p99 latency (ms)", "pics/s",
                 "gop-mode", "exploded", "stolen"});
    for (const int workers : worker_list) {
      sched::SimConfig paced;
      paced.workers = workers;
      paced.scan_bytes_per_ns = realtime_bytes_per_ns;
      sched::SimConfig unpaced;
      unpaced.workers = workers;

      auto run = [&](auto&& sim) {
        ModeResult r;
        r.paced = sim(paced);
        r.p99_ns = r.paced.latency_percentile(99);
        r.pps = sim(unpaced).pictures_per_second();
        return r;
      };
      const ModeResult gop_fixed = run([&](const sched::SimConfig& c) {
        return sched::simulate_gop(profile, c);
      });
      const ModeResult slice_fixed = run([&](const sched::SimConfig& c) {
        return sched::simulate_slice(profile, c,
                                     parallel::SlicePolicy::kImproved);
      });
      const ModeResult adaptive = run([&](const sched::SimConfig& c) {
        return sched::simulate_adaptive(profile, c, policy);
      });

      const bool ok = matches_or_dominates(adaptive, gop_fixed, tol) &&
                      matches_or_dominates(adaptive, slice_fixed, tol);
      pareto_ok += ok ? 1 : 0;
      ++pareto_total;

      struct Named {
        const char* name;
        const ModeResult* r;
      };
      for (const auto& [name, r] :
           {Named{"gop", &gop_fixed}, Named{"slice", &slice_fixed},
            Named{"adaptive", &adaptive}}) {
        const bool is_adaptive = r == &adaptive;
        table.add_row(
            {std::to_string(workers), name,
             Table::fmt(static_cast<double>(r->p99_ns) / 1e6, 3),
             Table::fmt(r->pps, 1),
             is_adaptive ? std::to_string(r->paced.gop_mode_gops) : "-",
             is_adaptive ? std::to_string(r->paced.exploded_gops) : "-",
             is_adaptive ? std::to_string(r->paced.stolen_tasks) : "-"});
        auto& row = report.add_row()
                        .set("width", res.width)
                        .set("height", res.height)
                        .set("workers", workers)
                        .set("policy", name)
                        .set("p99_latency_ns", r->p99_ns)
                        .set("pictures_per_second", r->pps);
        if (is_adaptive) {
          row.set("gop_mode_gops", r->paced.gop_mode_gops)
              .set("exploded_gops", r->paced.exploded_gops)
              .set("stolen_tasks", r->paced.stolen_tasks)
              .set("pareto_ok", ok);
        }
      }

      std::cout << "  P=" << workers << ": adaptive "
                << (ok ? "matches-or-dominates" : "DOMINATED by a fixed mode")
                << "  [p99 " << Table::fmt(adaptive.p99_ns / 1e6, 3) << " ms"
                << " vs gop " << Table::fmt(gop_fixed.p99_ns / 1e6, 3)
                << " / slice " << Table::fmt(slice_fixed.p99_ns / 1e6, 3)
                << "; pics/s " << Table::fmt(adaptive.pps, 1) << " vs gop "
                << Table::fmt(gop_fixed.pps, 1) << " / slice "
                << Table::fmt(slice_fixed.pps, 1) << "]\n";

      // Steal attribution: which workers absorbed other deques' GOPs in
      // the paced (latency-pressured) run. Non-zero entries concentrate on
      // the workers whose own deques drained first.
      if (adaptive.paced.stolen_tasks > 0) {
        std::cout << "    stolen-task landing (paced):";
        for (std::size_t w = 0; w < adaptive.paced.workers.size(); ++w) {
          if (adaptive.paced.workers[w].stolen_tasks == 0) continue;
          std::cout << " w" << w << "="
                    << adaptive.paced.workers[w].stolen_tasks;
          report.add_row()
              .set("width", res.width)
              .set("height", res.height)
              .set("workers", workers)
              .set("policy", "adaptive-steal")
              .set("worker", static_cast<int>(w))
              .set("stolen_tasks", adaptive.paced.workers[w].stolen_tasks);
        }
        std::cout << "\n";
      }
    }
    std::cout << "\n";
    table.print(std::cout);
  }

  report.set_meta("pareto_ok", pareto_ok);
  report.set_meta("pareto_total", pareto_total);
  std::cout << "\nPareto verdict: adaptive matches-or-dominates both fixed"
            << " modes in " << pareto_ok << "/" << pareto_total
            << " (workers x resolution) cells (tol "
            << Table::fmt(tol * 100, 1) << "%).\n"
            << "Reading: GOP dispatch wins throughput but queues whole GOPs"
            << " ahead of the display; slice dispatch wins latency but pays"
            << " per-picture overhead; adaptive explodes only when the"
            << " pipeline is shallow or the GOP is a predicted straggler.\n";
  return bench::finish(flags, report);
}
