#include "parallel/stats.h"

#include "mpeg2/frame.h"

namespace pmp2::parallel {

std::uint64_t chain_frame_checksum(std::uint64_t digest,
                                   const mpeg2::Frame& frame) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  auto mix = [&](std::uint8_t byte) {
    digest ^= byte;
    digest *= kPrime;
  };
  for (int p = 0; p < 3; ++p) {
    const int w = p == 0 ? frame.width() : frame.width() / 2;
    const int h = p == 0 ? frame.height() : frame.height() / 2;
    const int stride = frame.stride(p);
    const std::uint8_t* pl = frame.plane(p);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) mix(pl[y * stride + x]);
    }
  }
  return digest;
}

}  // namespace pmp2::parallel
