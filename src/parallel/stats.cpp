#include "parallel/stats.h"

#include <algorithm>
#include <sstream>

#include "mpeg2/frame.h"

namespace pmp2::parallel {

std::string HangEvidence::to_string() const {
  std::ostringstream os;
  os << "hang: no progress at the " << (where.empty() ? "unknown" : where)
     << " stage for " << waited_ns / 1'000'000 << " ms; "
     << pictures_delivered << "/" << pictures_indexed
     << " pictures delivered";
  if (epoch >= 0) os << "; scheduling epoch " << epoch;
  return os.str();
}

std::string_view recovery_cause_name(RecoveryCause cause) {
  switch (cause) {
    case RecoveryCause::kSliceError: return "slice-error";
    case RecoveryCause::kPictureHeader: return "picture-header";
    case RecoveryCause::kMissingReference: return "missing-reference";
    case RecoveryCause::kOpenGop: return "open-gop";
    case RecoveryCause::kScanTruncated: return "scan-truncated";
    case RecoveryCause::kWatchdog: return "watchdog";
    case RecoveryCause::kDisplayTimeout: return "display-timeout";
  }
  return "unknown";
}

WorkerLoadSummary summarize_load(std::span<const std::int64_t> busy_ns,
                                 std::span<const std::int64_t> sync_ns,
                                 std::span<const std::int64_t> idle_ns,
                                 std::span<const std::uint64_t> tasks) {
  WorkerLoadSummary out;
  out.workers = static_cast<int>(busy_ns.size());
  if (busy_ns.empty()) return out;

  double sync_ratio_sum = 0.0;
  int sync_ratio_counted = 0;
  out.min_busy_ns = busy_ns[0];
  for (std::size_t i = 0; i < busy_ns.size(); ++i) {
    const std::int64_t busy = busy_ns[i];
    const std::int64_t sync = i < sync_ns.size() ? sync_ns[i] : 0;
    out.min_busy_ns = std::min(out.min_busy_ns, busy);
    out.max_busy_ns = std::max(out.max_busy_ns, busy);
    out.total_busy_ns += busy;
    out.total_sync_ns += sync;
    if (i < idle_ns.size()) out.total_idle_ns += idle_ns[i];
    if (i < tasks.size()) out.tasks += tasks[i];
    const double denom = static_cast<double>(sync + busy);
    if (denom > 0) {
      sync_ratio_sum += static_cast<double>(sync) / denom;
      ++sync_ratio_counted;
    }
  }
  out.avg_busy_ns = static_cast<double>(out.total_busy_ns) /
                    static_cast<double>(out.workers);
  out.imbalance = out.avg_busy_ns > 0
                      ? static_cast<double>(out.max_busy_ns) / out.avg_busy_ns
                      : 0.0;
  out.sync_ratio =
      sync_ratio_counted > 0 ? sync_ratio_sum / sync_ratio_counted : 0.0;
  const double occupied = static_cast<double>(
      out.total_busy_ns + out.total_sync_ns + out.total_idle_ns);
  out.utilization =
      occupied > 0 ? static_cast<double>(out.total_busy_ns) / occupied : 0.0;
  return out;
}

WorkerLoadSummary summarize_load(const RunResult& result) {
  std::vector<std::int64_t> busy, sync, idle;
  std::vector<std::uint64_t> tasks;
  busy.reserve(result.workers.size());
  sync.reserve(result.workers.size());
  idle.reserve(result.workers.size());
  tasks.reserve(result.workers.size());
  for (const auto& w : result.workers) {
    busy.push_back(w.compute_ns);
    sync.push_back(w.sync_ns);
    idle.push_back(w.idle_ns);
    tasks.push_back(w.tasks);
  }
  return summarize_load(busy, sync, idle, tasks);
}

void derive_idle(RunResult& result) {
  const auto wall_ns = static_cast<std::int64_t>(result.wall_s * 1e9);
  for (auto& w : result.workers) {
    w.idle_ns = std::max<std::int64_t>(0, wall_ns - w.compute_ns - w.sync_ns);
  }
}

std::uint64_t chain_frame_checksum(std::uint64_t digest,
                                   const mpeg2::Frame& frame) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  auto mix = [&](std::uint8_t byte) {
    digest ^= byte;
    digest *= kPrime;
  };
  for (int p = 0; p < 3; ++p) {
    const int w = p == 0 ? frame.width() : frame.width() / 2;
    const int h = p == 0 ? frame.height() : frame.height() / 2;
    const int stride = frame.stride(p);
    const std::uint8_t* pl = frame.plane(p);
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) mix(pl[y * stride + x]);
    }
  }
  return digest;
}

}  // namespace pmp2::parallel
