#include "parallel/gop_decoder.h"

#include <atomic>
#include <thread>
#include <vector>

#include "parallel/task_queue.h"
#include "util/timer.h"

namespace pmp2::parallel {

namespace {

struct GopTask {
  const mpeg2::GopInfo* info = nullptr;
  int display_base = 0;  // global display index of this GOP's first picture
};

/// Decodes one closed GOP with private reference state. Frames come from
/// the shared pool; finished pictures go straight to the display sink.
bool decode_gop(std::span<const std::uint8_t> stream,
                const mpeg2::StreamStructure& structure, const GopTask& task,
                mpeg2::FramePool& pool, DisplaySink& display,
                WorkerStats& stats) {
  mpeg2::FramePtr fwd_ref, bwd_ref;
  for (const auto& info : task.info->pictures) {
    pmp2::BitReader br(stream);
    br.seek_bytes(info.offset);
    mpeg2::PictureContext pic;
    pic.seq = &structure.seq;
    pic.mpeg1 = structure.mpeg1;
    if (!mpeg2::parse_picture_headers(br, pic.header, pic.ext)) return false;
    pic.mb_width = structure.mb_width();
    pic.mb_height = structure.mb_height();

    mpeg2::FramePtr dst = pool.acquire();
    dst->type = pic.header.type;
    dst->temporal_reference = pic.header.temporal_reference;
    dst->display_index = task.display_base + pic.header.temporal_reference;
    pic.dst = dst.get();
    pic.dst_id = dst->trace_id();
    if (pic.header.type != mpeg2::PictureType::kI) {
      const mpeg2::FramePtr& past =
          pic.header.type == mpeg2::PictureType::kP ? bwd_ref : fwd_ref;
      if (!past) return false;  // GOP not closed/self-contained
      pic.fwd_ref = past.get();
      pic.fwd_id = past->trace_id();
      if (pic.header.type == mpeg2::PictureType::kB) {
        if (!bwd_ref) return false;
        pic.bwd_ref = bwd_ref.get();
        pic.bwd_id = bwd_ref->trace_id();
      }
    }
    if (!mpeg2::decode_picture_slices(stream, info, pic, stats.work)) {
      return false;
    }
    if (pic.header.type != mpeg2::PictureType::kB) {
      fwd_ref = bwd_ref;
      bwd_ref = dst;
    }
    display.push(std::move(dst));
  }
  return true;
}

}  // namespace

RunResult GopParallelDecoder::decode(std::span<const std::uint8_t> stream,
                                     const FrameCallback& on_frame) {
  RunResult result;
  WallTimer total_timer;

  // --- Scan process: locate GOPs and pictures. ---
  WallTimer scan_timer;
  const mpeg2::StreamStructure structure = mpeg2::scan_structure(stream);
  result.scan_s = scan_timer.elapsed_s();
  if (!structure.valid) return result;
  for (const auto& gop : structure.gops) {
    if (!gop.closed) return result;  // this decoder requires closed GOPs
  }

  const int total_pictures = structure.total_pictures();
  result.pictures = total_pictures;
  DisplaySink display(total_pictures, on_frame);
  mpeg2::FramePool pool(structure.seq.horizontal_size,
                        structure.seq.vertical_size, config_.tracker);
  TaskQueue<GopTask> queue(config_.max_queued_gops);

  result.workers.resize(static_cast<std::size_t>(config_.workers));
  std::atomic<bool> failed{false};

  std::vector<std::jthread> workers;
  workers.reserve(static_cast<std::size_t>(config_.workers));
  for (int w = 0; w < config_.workers; ++w) {
    workers.emplace_back([&, w] {
      WorkerStats& stats = result.workers[static_cast<std::size_t>(w)];
      for (;;) {
        auto task = queue.pop(&stats.sync_ns);
        if (!task) break;
        ThreadCpuTimer cpu;
        if (!decode_gop(stream, structure, *task, pool, display, stats)) {
          failed.store(true, std::memory_order_relaxed);
          queue.close();
          break;
        }
        stats.compute_ns += cpu.elapsed_ns();
        ++stats.tasks;
      }
    });
  }

  // --- Scan process (continued): enqueue GOP tasks in stream order. ---
  {
    int display_base = 0;
    for (const auto& gop : structure.gops) {
      queue.push(GopTask{&gop, display_base});
      display_base += static_cast<int>(gop.pictures.size());
    }
    queue.close();
  }

  workers.clear();  // join
  if (failed.load(std::memory_order_relaxed)) return result;
  display.wait_done();

  result.wall_s = total_timer.elapsed_s();
  result.checksum = display.checksum();
  if (config_.tracker) {
    result.peak_frame_bytes = config_.tracker->peak_bytes();
  }
  result.ok = true;
  return result;
}

}  // namespace pmp2::parallel
