#include "parallel/gop_decoder.h"

#include "parallel/gop_work.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "mpeg2/structure_scan.h"
#include "obs/live/telemetry.h"
#include "obs/metrics.h"
#include "obs/prof/stage_prof.h"
#include "obs/tracer.h"
#include "parallel/task_queue.h"
#include "parallel/worker_pool.h"
#include "util/timer.h"

namespace pmp2::parallel {

namespace {

/// Sync waits shorter than this are not worth a trace span; they still
/// count toward sync_ns.
constexpr std::int64_t kMinWaitSpanNs = 1'000;

}  // namespace

RunResult GopParallelDecoder::decode(std::span<const std::uint8_t> stream,
                                     const FrameCallback& on_frame) {
  RunResult result;
  result.stream_bytes = stream.size();
  WallTimer total_timer;
  obs::Tracer* const tracer = config_.tracer;
  obs::live::LiveTelemetry* const live =
      config_.live && config_.live->workers() >= config_.workers
          ? config_.live
          : nullptr;

  // --- Scan process, stage 1: the serial preamble (sequence header up to
  // the first GOP header). Everything after it is scanned incrementally,
  // overlapped with worker decode, by the producer loop below.
  WallTimer scan_timer;
  std::int64_t span_begin = tracer ? tracer->now_ns() : 0;
  mpeg2::StructureScanner scanner(stream);
  const bool preamble_ok = scanner.scan_preamble();
  double scan_s = scan_timer.elapsed_s();
  if (tracer) {
    tracer->emit(config_.workers, obs::SpanKind::kScan, span_begin,
                 tracer->now_ns());
  }
  if (!preamble_ok) {
    result.scan_s = scan_s;
    return result;
  }

  // Header state shared with the workers (the GOP index streams in later).
  mpeg2::StreamStructure structure;
  structure.seq = scanner.seq();
  structure.ext = scanner.ext();
  structure.mpeg1 = scanner.mpeg1();
  structure.valid = true;

  // The scan process runs on this thread: bind the extra profiler slot so
  // the incremental GOP scan below is counter-attributed to the scan stage.
  obs::prof::WorkerProf* scan_prof =
      config_.prof ? config_.prof->bind(config_.workers) : nullptr;

  DisplaySink display(on_frame);  // picture count known once the scan ends
  display.set_live(live);
  mpeg2::FramePool pool(structure.seq.horizontal_size,
                        structure.seq.vertical_size, config_.tracker);
  TaskQueue<GopTask> queue(config_.max_queued_gops);

  // Resolve metric instruments once; workers then only touch atomics.
  obs::Counter* m_tasks = nullptr;
  obs::Histogram* h_task = nullptr;
  obs::Histogram* h_wait = nullptr;
  if (config_.metrics) {
    m_tasks = &config_.metrics->counter("gop.tasks");
    h_task = &config_.metrics->histogram("gop.task_ns");
    h_wait = &config_.metrics->histogram("gop.queue_wait_ns");
    config_.metrics->counter("decode.bytes")
        .add(static_cast<std::int64_t>(stream.size()));
  }

  result.workers.resize(static_cast<std::size_t>(config_.workers));
  std::atomic<bool> failed{false};
  std::atomic<int> concealed{0};
  std::atomic<int> concealed_pics{0};
  std::atomic<int> quarantined{0};
  ErrorLog errors;
  GopObs gobs;
  gobs.tracer = tracer;
  gobs.conceal_errors = config_.conceal_errors;
  gobs.quarantine = config_.quarantine_gops;
  gobs.concealed = &concealed;
  gobs.concealed_pics = &concealed_pics;
  gobs.quarantined = &quarantined;
  gobs.errors = config_.quarantine_gops ? &errors : nullptr;
  gobs.h_resync = config_.metrics
                      ? &config_.metrics->histogram("recover.resync_bytes")
                      : nullptr;
  gobs.live = live;

  // Thread ownership lives in WorkerPool (the src/serve extraction); the
  // claim loop below is unchanged from the jthread-vector days.
  WorkerPool worker_pool(config_.workers, [&](int w) {
      WorkerStats& stats = result.workers[static_cast<std::size_t>(w)];
      // Per-thread counters: bind() opens them on this thread and
      // installs the TLS hook the mpeg2 StageScopes read.
      obs::prof::WorkerProf* wprof =
          config_.prof ? config_.prof->bind(w) : nullptr;
      for (;;) {
        const std::int64_t wait_begin = tracer ? tracer->now_ns() : 0;
        const std::int64_t sync_before = stats.sync_ns;
        auto task = queue.pop(&stats.sync_ns);
        if (tracer) {
          const std::int64_t wait_end = tracer->now_ns();
          if (wait_end - wait_begin >= kMinWaitSpanNs) {
            // A pop only blocks while the queue is empty (scan not far
            // enough ahead, or fewer tasks than workers remain).
            tracer->emit(w, obs::SpanKind::kQueueWait, wait_begin, wait_end);
          }
        }
        if (!task) break;
        if (live) live->add_queue_depth(-1);
        if (h_wait) h_wait->record(stats.sync_ns - sync_before);
        const std::int64_t task_begin = tracer ? tracer->now_ns() : 0;
        ThreadCpuTimer cpu;
        const bool ok = decode_gop(stream, structure, *task, pool, display,
                                   stats, gobs, w);
        const std::int64_t task_ns = cpu.elapsed_ns();
        if (tracer) {
          tracer->emit(w, obs::SpanKind::kGopTask, task_begin,
                       tracer->now_ns(), -1, -1, task->index);
        }
        if (!ok) {
          failed.store(true, std::memory_order_relaxed);
          queue.close();
          break;
        }
        stats.compute_ns += task_ns;
        ++stats.tasks;
        if (h_task) h_task->record(task_ns);
        if (m_tasks) m_tasks->add();
        if (live) {
          obs::live::TelemetryCell::Write lw(live->worker(w));
          lw.add_tasks().add_busy_ns(task_ns).set_sync_ns(stats.sync_ns);
          if (wprof) lw.add_counters(wprof->take_task_delta());
        }
      }
      if (wprof) obs::prof::StageProfiler::unbind();
  });

  // --- Scan process, stage 2: stream GOPs in and enqueue each task the
  // moment its boundary is known, so workers decode while the scan is
  // still walking later bytes. GopInfo storage must be stable (tasks hold
  // pointers into it), hence the deque.
  std::deque<mpeg2::GopInfo> gops;
  bool scan_ok = true;
  int total_pictures = 0;
  {
    int index = 0;
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) break;
      WallTimer gop_timer;
      span_begin = tracer ? tracer->now_ns() : 0;
      mpeg2::GopInfo gop;
      bool have;
      {
        obs::prof::StageScope scan_stage(obs::prof::Stage::kScan);
        have = scanner.next_gop(gop);
      }
      scan_s += gop_timer.elapsed_s();
      if (tracer) {
        tracer->emit(config_.workers, obs::SpanKind::kScan, span_begin,
                     tracer->now_ns(), -1, -1, index);
      }
      if (!have) {
        scan_ok = !scanner.failed() && index > 0;
        if (scanner.failed() && config_.quarantine_gops) {
          // Bounded recovery: a scan failure mid-stream keeps the scanned
          // prefix. A partial final GOP still decodes what it indexed.
          errors.add({RecoveryCause::kScanTruncated, index, -1,
                      scanner.position()});
          if (scanner.failed_in_gop() && !gop.pictures.empty()) {
            const int display_base = total_pictures;
            total_pictures += static_cast<int>(gop.pictures.size());
            gops.push_back(std::move(gop));
            if (live) live->add_queue_depth(1);
            queue.push(
                GopTask{&gops.back(), index, display_base, display_base});
          }
          scan_ok = total_pictures > 0;
        }
        break;
      }
      if (!gop.closed) {
        if (!config_.quarantine_gops) {
          scan_ok = false;  // this decoder requires closed GOPs
          break;
        }
        // Quarantine: enqueue anyway; leading pictures with missing
        // references become concealed frames inside the worker.
        errors.add({RecoveryCause::kOpenGop, index, -1, gop.offset});
      }
      const int display_base = total_pictures;
      total_pictures += static_cast<int>(gop.pictures.size());
      gops.push_back(std::move(gop));
      if (live) live->add_queue_depth(1);
      const std::int64_t push_begin = tracer ? tracer->now_ns() : 0;
      const std::int64_t blocked_ns =
          queue.push(GopTask{&gops.back(), index, display_base, display_base});
      if (tracer && blocked_ns >= kMinWaitSpanNs) {
        // Bounded queue at capacity: the scan process is the producer, so
        // this is backpressure charged to the scan track.
        tracer->emit(config_.workers, obs::SpanKind::kBackpressure,
                     push_begin, push_begin + blocked_ns);
      }
      if (live) {
        obs::live::TelemetryCell::Write lw(live->scan());
        lw.add_tasks()
            .set_bytes(static_cast<std::int64_t>(scanner.position()))
            .set_last_progress_ns(live->now_ns());
        if (blocked_ns > 0) lw.add_backpressure_ns(blocked_ns);
      }
      ++index;
    }
    queue.close();
  }
  if (scan_prof) {
    if (live) {
      obs::live::TelemetryCell::Write lw(live->scan());
      lw.add_counters(scan_prof->take_task_delta());
    }
    obs::prof::StageProfiler::unbind();
  }
  result.scan_s = scan_s;
  result.pictures = total_pictures;
  display.set_total(total_pictures);
  if (config_.metrics) {
    config_.metrics->counter("decode.pictures").add(total_pictures);
  }

  worker_pool.join();
  result.concealed_slices = concealed.load(std::memory_order_relaxed);
  result.concealed_pictures =
      concealed_pics.load(std::memory_order_relaxed);
  result.quarantined_gops = quarantined.load(std::memory_order_relaxed);
  errors.drain(result.errors, result.errors_dropped);
  auto record_recovery_metrics = [&] {
    if (!config_.metrics) return;
    config_.metrics->counter("recover.concealed_slices")
        .add(result.concealed_slices);
    config_.metrics->counter("recover.concealed_pictures")
        .add(result.concealed_pictures);
    config_.metrics->counter("recover.quarantined_gops")
        .add(result.quarantined_gops);
    config_.metrics->counter("recover.errors").add(
        static_cast<std::int64_t>(result.errors.size()) +
        result.errors_dropped);
  };
  if (!scan_ok || failed.load(std::memory_order_relaxed)) {
    // Failed runs still report their timing/memory so harnesses can log
    // something consistent.
    result.wall_s = total_timer.elapsed_s();
    if (config_.tracker) {
      result.peak_frame_bytes = config_.tracker->peak_bytes();
    }
    derive_idle(result);
    record_recovery_metrics();
    return result;
  }
  if (!display.wait_done_for(config_.watchdog_ns)) {
    // Watchdog: the pipeline stopped delivering pictures. Fail the run
    // (never hang) and record what fired.
    result.hung = true;
    result.hang.where = "display";
    result.hang.waited_ns = config_.watchdog_ns;
    result.hang.pictures_delivered = display.emitted();
    result.hang.pictures_indexed = total_pictures;
    result.errors.push_back(
        {RecoveryCause::kDisplayTimeout, -1, -1, 0});
    result.wall_s = total_timer.elapsed_s();
    if (config_.tracker) {
      result.peak_frame_bytes = config_.tracker->peak_bytes();
    }
    derive_idle(result);
    record_recovery_metrics();
    return result;
  }

  result.wall_s = total_timer.elapsed_s();
  result.checksum = display.checksum();
  if (config_.tracker) {
    result.peak_frame_bytes = config_.tracker->peak_bytes();
  }
  derive_idle(result);
  record_recovery_metrics();
  result.ok = true;
  return result;
}

}  // namespace pmp2::parallel
