// Worker-thread ownership, extracted from the parallel decoders.
//
// Every decoder in src/parallel used to spawn and join its own
// std::jthread vector, which welded worker lifetime to run lifetime — fine
// for a one-shot decode, wrong for a serving layer where one pool outlives
// many sessions (src/serve). WorkerPool is that extraction: it owns the
// threads and nothing else. The work loop stays with the caller (each
// decoder's claim loop is its scheduling policy), so converting a decoder
// is purely a change of thread ownership — the loop body, stats wiring and
// coordinator protocol are untouched, which is what keeps the conversion
// bit-exact by construction.
//
// Lifetime: join() (or the destructor) blocks until every worker body
// returned. The pool never injects a stop signal of its own — the body's
// coordinator is responsible for terminating its loop (scan end, abort,
// watchdog), exactly as before the extraction.
#pragma once

#include <functional>
#include <thread>
#include <utility>
#include <vector>

namespace pmp2::parallel {

class WorkerPool {
 public:
  /// Body of one worker: called once per thread with the worker index
  /// [0, workers); the thread exits when it returns.
  using WorkerBody = std::function<void(int worker)>;

  WorkerPool() = default;

  /// Spawns `workers` threads immediately, each running `body(w)`.
  WorkerPool(int workers, WorkerBody body) { start(workers, std::move(body)); }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Spawns the threads (idle pool only — join() any previous generation
  /// first).
  void start(int workers, WorkerBody body);

  /// Blocks until every worker body returned, then releases the threads.
  /// Idempotent; called by the destructor.
  void join();

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  ~WorkerPool() { join(); }

 private:
  std::vector<std::jthread> threads_;
};

}  // namespace pmp2::parallel
