#include "parallel/display.h"

#include <chrono>

#include "obs/live/telemetry.h"

namespace pmp2::parallel {

void DisplaySink::push(mpeg2::FramePtr frame) {
  std::unique_lock lock(mutex_);
  pending_.emplace(frame->display_index, std::move(frame));
  max_buffered_ = std::max(max_buffered_, pending_.size());
  if (emitting_) return;  // the active emitter will drain what we added
  emitting_ = true;
  while (!pending_.empty() && pending_.begin()->first == next_) {
    mpeg2::FramePtr f = std::move(pending_.begin()->second);
    pending_.erase(pending_.begin());
    checksum_ = chain_frame_checksum(checksum_, *f);
    ++next_;
    if (live_) {
      // mutex_ serializes every writer of the display cell, satisfying
      // the seqlock's single-logical-writer requirement.
      obs::live::TelemetryCell::Write w(live_->display());
      w.add_pictures().set_last_progress_ns(live_->now_ns());
    }
    // Emit without the lock (the callback may be slow). The emitting_ flag
    // guarantees a single emitter, so callbacks stay in display order.
    lock.unlock();
    if (on_frame_) on_frame_(std::move(f));
    f.reset();
    lock.lock();
  }
  emitting_ = false;
  if (total_known_ && next_ >= total_) done_cv_.notify_all();
}

void DisplaySink::set_total(int total_pictures) {
  const std::scoped_lock lock(mutex_);
  total_ = total_pictures;
  total_known_ = true;
  if (next_ >= total_) done_cv_.notify_all();
}

void DisplaySink::wait_done() {
  std::unique_lock lock(mutex_);
  done_cv_.wait(lock, [this] { return total_known_ && next_ >= total_; });
}

int DisplaySink::emitted() {
  const std::scoped_lock lock(mutex_);
  return next_;
}

bool DisplaySink::wait_done_for(std::int64_t timeout_ns) {
  if (timeout_ns <= 0) {
    wait_done();
    return true;
  }
  std::unique_lock lock(mutex_);
  // Progress-based deadline: the clock restarts whenever another picture
  // is emitted, so a slow-but-advancing run never trips it — only a
  // pipeline that stopped delivering entirely does.
  int last_next = next_;
  for (;;) {
    if (total_known_ && next_ >= total_) return true;
    if (done_cv_.wait_for(lock, std::chrono::nanoseconds(timeout_ns)) ==
        std::cv_status::timeout) {
      if (next_ == last_next) return false;
    }
    last_next = next_;
  }
}

}  // namespace pmp2::parallel
