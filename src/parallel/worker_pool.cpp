#include "parallel/worker_pool.h"

namespace pmp2::parallel {

void WorkerPool::start(int workers, WorkerBody body) {
  threads_.reserve(static_cast<std::size_t>(workers > 0 ? workers : 0));
  for (int w = 0; w < workers; ++w) {
    threads_.emplace_back([body, w] { body(w); });
  }
}

void WorkerPool::join() { threads_.clear(); }

}  // namespace pmp2::parallel
