// The display process of the paper's Fig. 4: receives decoded pictures in
// completion order (possibly out of display order), reorders them by
// display index, and emits them in order. Dithering is excluded, as in the
// paper's measurements.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>

#include "mpeg2/frame.h"
#include "parallel/stats.h"

namespace pmp2::obs::live {
class LiveTelemetry;
}

namespace pmp2::parallel {

using FrameCallback = std::function<void(mpeg2::FramePtr)>;

class DisplaySink {
 public:
  /// `on_frame` may be empty; frames are then just checksummed + released.
  DisplaySink(int total_pictures, FrameCallback on_frame)
      : total_(total_pictures),
        total_known_(true),
        on_frame_(std::move(on_frame)) {}

  /// Streaming form: the picture count is unknown until the scan process
  /// finishes. wait_done() blocks until set_total() has been called and
  /// that many pictures were emitted.
  explicit DisplaySink(FrameCallback on_frame)
      : on_frame_(std::move(on_frame)) {}

  /// Fixes the picture count (streaming constructor only; call once).
  void set_total(int total_pictures);

  /// Thread-safe: inserts a completed picture (display_index must be set)
  /// and emits every picture that is now next in display order. Emission
  /// happens on the calling thread while holding no lock on the reorder
  /// map's entries beyond removal.
  void push(mpeg2::FramePtr frame);

  /// Blocks until all pictures have been emitted.
  void wait_done();

  /// Deadline form: returns false if no picture was emitted for
  /// `timeout_ns` while pictures are still owed — the display-side
  /// watchdog of the bounded-recovery layer. timeout_ns <= 0 waits
  /// forever (and returns true).
  [[nodiscard]] bool wait_done_for(std::int64_t timeout_ns);

  /// Final digest over the emitted sequence (valid after wait_done()).
  [[nodiscard]] std::uint64_t checksum() const { return checksum_; }

  /// Maximum number of pictures that were buffered waiting for reordering.
  [[nodiscard]] std::size_t max_buffered() const { return max_buffered_; }

  /// Live telemetry surface: the display cell is bumped per emitted
  /// picture (writes serialized by this sink's mutex). Null = no cost.
  void set_live(obs::live::LiveTelemetry* live) { live_ = live; }

  /// Pictures emitted in display order so far (hang evidence).
  [[nodiscard]] int emitted();

 private:
  int total_ = 0;            // guarded by mutex_ until total_known_
  bool total_known_ = false; // guarded by mutex_
  FrameCallback on_frame_;
  std::mutex mutex_;
  std::condition_variable done_cv_;
  std::map<int, mpeg2::FramePtr> pending_;  // guarded by mutex_
  int next_ = 0;                            // guarded by mutex_
  bool emitting_ = false;                   // guarded by mutex_
  std::uint64_t checksum_ = 0;              // guarded by mutex_
  std::size_t max_buffered_ = 0;            // guarded by mutex_
  obs::live::LiveTelemetry* live_ = nullptr;
};

}  // namespace pmp2::parallel
