// Blocking MPMC task queue — the shared work queue of the paper's Fig. 4.
//
// Producers push tasks; consumers pop, blocking until a task arrives or the
// queue is closed and drained. An optional capacity bound provides
// backpressure (the paper's decoder was unbounded, which is precisely what
// causes the Fig. 8/9 memory growth; the bound exists for ablations).
// Waiting time is reported so callers can account synchronization overhead
// the way the paper does.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

#include "util/timer.h"

namespace pmp2::parallel {

template <typename T>
class TaskQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit TaskQueue(std::size_t capacity = 0) : capacity_(capacity) {}

  /// Pushes a task; blocks while the queue is at capacity. Returns the
  /// nanoseconds spent blocked.
  std::int64_t push(T task) {
    WallTimer timer;
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] {
      return capacity_ == 0 || queue_.size() < capacity_ || closed_;
    });
    if (!closed_) {
      queue_.push_back(std::move(task));
      not_empty_.notify_one();
    }
    return timer.elapsed_ns();
  }

  /// Pops a task, blocking until one is available. Returns nullopt once the
  /// queue is closed and empty. `wait_ns`, if given, accumulates blocked
  /// time.
  std::optional<T> pop(std::int64_t* wait_ns = nullptr) {
    WallTimer timer;
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (wait_ns) *wait_ns += timer.elapsed_ns();
    if (queue_.empty()) return std::nullopt;
    T task = std::move(queue_.front());
    queue_.pop_front();
    not_full_.notify_one();
    return task;
  }

  /// Marks the queue closed: pending tasks drain, then pops return nullopt.
  void close() {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> queue_;   // guarded by mutex_
  bool closed_ = false;   // guarded by mutex_
};

}  // namespace pmp2::parallel
