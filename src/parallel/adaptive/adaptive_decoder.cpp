#include "parallel/adaptive/adaptive_decoder.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "mpeg2/structure_scan.h"
#include "obs/live/telemetry.h"
#include "obs/metrics.h"
#include "obs/prof/stage_prof.h"
#include "obs/tracer.h"
#include "parallel/gop_work.h"
#include "parallel/worker_pool.h"
#include "sched/adaptive.h"
#include "util/timer.h"

namespace pmp2::parallel {

namespace {

/// Sync waits shorter than this are not worth a trace span; they still
/// count toward sync_ns.
constexpr std::int64_t kMinWaitSpanNs = 1'000;

/// One GOP as the coordinator tracks it. Scan-time fields are immutable
/// after push; the exploded block is created under the coordinator lock
/// when the dispatch decision explodes the GOP.
struct GopEntry {
  mpeg2::GopInfo info;
  int index = 0;
  int display_base = 0;
  int decode_base = 0;
  int owner = 0;  // deque this GOP arrived on (index % workers)
  std::uint64_t bytes = 0;

  // --- Exploded state (latency mode) ---
  bool exploded = false;
  std::vector<int> ranks;   // display_ranks (quarantine only)
  std::vector<int> newest;  // per picture: newest non-B before it (-1 none)
  std::vector<int> older;   // per picture: the non-B before that (-1 none)
  std::vector<std::uint8_t> state;  // 0 unclaimed, 1 running, 2 complete
  std::vector<mpeg2::FramePtr> frames;  // completed pictures (ref retention)
  int completed = 0;
  bool damaged = false;
  std::int64_t cost_ns = 0;  // accumulated task CPU time (EWMA feedback)
};

/// What one claim hands a worker.
struct Claim {
  enum class Kind { kWholeGop, kPicture } kind = Kind::kWholeGop;
  int gop = -1;  // GopEntry id
  int pic = -1;  // picture index within the GOP (kPicture)
  bool stolen = false;        // executed for another worker's deque
  bool popped_gop = false;    // this claim consumed a deque entry
  int ranked_display = -1;    // quarantine display slot (kPicture)
  mpeg2::FramePtr fwd, bwd;   // resolved GOP-private references (kPicture)
};

/// The hybrid scheduler: per-worker GOP deques, an active list of exploded
/// GOPs, the dispatch policy and the work-stealing order, all under one
/// mutex. Task granularity is a whole GOP or a whole picture (tens of
/// microseconds and up), so a single lock is far from contended — and it
/// buys the same property the slice coordinator relies on: every
/// scheduling decision and every reference-frame handoff is ordered by one
/// acquire/release pair, which keeps the stealing path data-race-free
/// under TSan by construction.
class AdaptiveCoordinator {
 public:
  AdaptiveCoordinator(int workers, const sched::AdaptivePolicy& policy,
                      std::size_t max_queued, bool quarantine,
                      std::int64_t watchdog_ns, ErrorLog* errors,
                      std::atomic<int>* quarantined)
      : workers_(workers),
        policy_(policy),
        max_queued_(max_queued),
        quarantine_(quarantine),
        watchdog_ns_(watchdog_ns),
        errors_(errors),
        quarantined_(quarantined),
        deques_(static_cast<std::size_t>(workers)) {}

  /// Appends one scanned GOP to its owner's deque (scan thread). Blocks
  /// while the bounded queue is full; returns the time blocked.
  std::int64_t push_gop(mpeg2::GopInfo&& info, int index, int display_base) {
    std::unique_lock lock(mutex_);
    std::int64_t blocked_ns = 0;
    if (max_queued_ > 0) {
      WallTimer timer;
      cv_.wait(lock, [&] {
        return queued_ < static_cast<int>(max_queued_) || aborted_;
      });
      blocked_ns = timer.elapsed_ns();
    }
    if (aborted_) return blocked_ns;
    const int id = static_cast<int>(entries_.size());
    entries_.emplace_back();
    GopEntry& e = entries_.back();
    e.info = std::move(info);
    e.index = index;
    e.display_base = display_base;
    e.decode_base = display_base;
    e.owner = index % workers_;
    e.bytes = e.info.end_offset - e.info.offset;
    deques_[static_cast<std::size_t>(e.owner)].push_back(id);
    ++queued_;
    ++pushed_;
    ++epoch_;
    cv_.notify_all();
    return blocked_ns;
  }

  void finish_scan(bool /*ok*/) {
    const std::scoped_lock lock(mutex_);
    scan_done_ = true;
    ++epoch_;
    cv_.notify_all();
  }

  /// Blocks until work is available or the run ends. Wait time is added to
  /// `sync_ns`. Returns false when the run is complete, aborted or hung.
  bool claim(Claim& out, std::int64_t& sync_ns, int worker) {
    WallTimer timer;
    std::unique_lock lock(mutex_);
    for (;;) {
      if (aborted_) break;
      if (try_claim(out, worker)) {
        sync_ns += timer.elapsed_ns();
        return true;
      }
      if (scan_done_ && completed_gops_ == pushed_) break;
      if (watchdog_ns_ > 0) {
        // Watchdog: epoch_ ticks on every scheduling event (push, dispatch,
        // picture/GOP completion, scan end). A full timeout with no tick
        // means the pipeline is wedged; fail the run rather than hang.
        const std::uint64_t before = epoch_;
        const auto status =
            cv_.wait_for(lock, std::chrono::nanoseconds(watchdog_ns_));
        if (status == std::cv_status::timeout && epoch_ == before &&
            !aborted_) {
          hung_ = true;
          aborted_ = true;
          if (errors_) errors_->add({RecoveryCause::kWatchdog, -1, -1, 0});
          cv_.notify_all();
          break;
        }
      } else {
        cv_.wait(lock);
      }
    }
    sync_ns += timer.elapsed_ns();
    return false;
  }

  /// Reports a finished whole-GOP task.
  void finish_whole(const Claim& claim, std::int64_t cost_ns, bool ok) {
    const std::scoped_lock lock(mutex_);
    ++epoch_;
    if (!ok) {
      aborted_ = true;
      cv_.notify_all();
      return;
    }
    const GopEntry& e = entries_[static_cast<std::size_t>(claim.gop)];
    ewma_.observe(cost_ns, e.bytes);
    ++completed_gops_;
    cv_.notify_all();
  }

  /// Reports a finished picture task of an exploded GOP; completes the GOP
  /// when it was the last. The frame is retained until the GOP completes
  /// so later pictures can reference it.
  void finish_picture(const Claim& claim, mpeg2::FramePtr frame,
                      std::int64_t cost_ns, bool damaged, bool ok) {
    const std::scoped_lock lock(mutex_);
    ++epoch_;
    if (!ok) {
      aborted_ = true;
      cv_.notify_all();
      return;
    }
    GopEntry& e = entries_[static_cast<std::size_t>(claim.gop)];
    e.frames[static_cast<std::size_t>(claim.pic)] = std::move(frame);
    e.state[static_cast<std::size_t>(claim.pic)] = 2;
    e.cost_ns += cost_ns;
    if (damaged) e.damaged = true;
    if (++e.completed == static_cast<int>(e.info.pictures.size())) {
      if (e.damaged && quarantined_) {
        quarantined_->fetch_add(1, std::memory_order_relaxed);
      }
      ewma_.observe(e.cost_ns, e.bytes);
      active_.erase(std::find(active_.begin(), active_.end(), claim.gop));
      e.frames.clear();  // return reference frames to the pool
      ++completed_gops_;
    }
    cv_.notify_all();
  }

  void fail() {
    const std::scoped_lock lock(mutex_);
    aborted_ = true;
    ++epoch_;
    cv_.notify_all();
  }

  /// Scan-time fields of entry `id` (immutable once pushed, so workers may
  /// read them without the lock).
  [[nodiscard]] const GopEntry& entry(int id) const {
    return entries_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] bool aborted() const {
    const std::scoped_lock lock(mutex_);
    return aborted_;
  }
  [[nodiscard]] bool hung() const {
    const std::scoped_lock lock(mutex_);
    return hung_;
  }
  [[nodiscard]] std::uint64_t epoch() const {
    const std::scoped_lock lock(mutex_);
    return epoch_;
  }
  [[nodiscard]] int gop_mode_gops() const {
    const std::scoped_lock lock(mutex_);
    return gop_mode_;
  }
  [[nodiscard]] int exploded_gops() const {
    const std::scoped_lock lock(mutex_);
    return exploded_;
  }

 private:
  /// Claim priority: (1) a ready picture of an exploded GOP, lowest GOP
  /// index first so the frames closest to display drain first; (2) the
  /// worker's own deque, deciding granularity at pop time; (3) a steal
  /// from the first non-empty victim deque in steal_order.
  bool try_claim(Claim& out, int worker) {
    for (const int g : active_) {
      GopEntry& e = entries_[static_cast<std::size_t>(g)];
      for (int i = 0; i < static_cast<int>(e.info.pictures.size()); ++i) {
        if (pic_ready(e, i)) {
          fill_picture_claim(e, g, i, worker, false, out);
          return true;
        }
      }
    }
    auto& own = deques_[static_cast<std::size_t>(worker)];
    if (!own.empty()) {
      const int g = own.front();
      own.pop_front();
      dispatch(g, worker, false, out);
      return true;
    }
    if (policy_.steal) {
      for (const int v : sched::steal_order(worker, workers_)) {
        auto& victim = deques_[static_cast<std::size_t>(v)];
        if (victim.empty()) continue;
        const int g = victim.front();
        victim.pop_front();
        dispatch(g, worker, true, out);
        return true;
      }
    }
    return false;
  }

  /// A picture is claimable once its GOP-private references are complete:
  /// every picture waits for the newest non-B before it (prediction source
  /// for P, future reference for B, concealment source under quarantine);
  /// B pictures additionally wait for the older one.
  bool pic_ready(const GopEntry& e, int i) const {
    if (e.state[static_cast<std::size_t>(i)] != 0) return false;
    const int nw = e.newest[static_cast<std::size_t>(i)];
    if (nw >= 0 && e.state[static_cast<std::size_t>(nw)] != 2) return false;
    if (e.info.pictures[static_cast<std::size_t>(i)].type ==
        mpeg2::PictureType::kB) {
      const int ol = e.older[static_cast<std::size_t>(i)];
      if (ol >= 0 && e.state[static_cast<std::size_t>(ol)] != 2) {
        return false;
      }
    }
    return true;
  }

  void fill_picture_claim(GopEntry& e, int g, int i, int worker,
                          bool popped, Claim& out) {
    e.state[static_cast<std::size_t>(i)] = 1;
    out.kind = Claim::Kind::kPicture;
    out.gop = g;
    out.pic = i;
    out.stolen = e.owner != worker;
    out.popped_gop = popped;
    const int nw = e.newest[static_cast<std::size_t>(i)];
    const int ol = e.older[static_cast<std::size_t>(i)];
    out.bwd = nw >= 0 ? e.frames[static_cast<std::size_t>(nw)] : nullptr;
    out.fwd = ol >= 0 ? e.frames[static_cast<std::size_t>(ol)] : nullptr;
    out.ranked_display =
        quarantine_
            ? e.display_base + e.ranks[static_cast<std::size_t>(i)]
            : -1;
  }

  /// The dispatch decision, at pop time, with the popped GOP still counted
  /// in the queue depth (matching simulate_adaptive).
  void dispatch(int g, int worker, bool stolen, Claim& out) {
    GopEntry& e = entries_[static_cast<std::size_t>(g)];
    const bool explode =
        !e.info.pictures.empty() &&
        sched::should_explode(policy_, workers_, queued_, ewma_, e.bytes);
    --queued_;
    ++epoch_;
    if (explode) {
      ++exploded_;
      explode_entry(e);
      active_.insert(
          std::lower_bound(active_.begin(), active_.end(), g), g);
      // The dispatching worker claims the GOP's first ready picture
      // itself (picture 0 has no intra-GOP references, so one is always
      // ready); the rest are up for grabs.
      for (int i = 0; i < static_cast<int>(e.info.pictures.size()); ++i) {
        if (pic_ready(e, i)) {
          fill_picture_claim(e, g, i, worker, true, out);
          break;
        }
      }
    } else {
      ++gop_mode_;
      out.kind = Claim::Kind::kWholeGop;
      out.gop = g;
      out.pic = -1;
      out.stolen = stolen;
      out.popped_gop = true;
    }
    cv_.notify_all();  // a backpressured scan may resume
  }

  /// Builds the exploded block: the static non-B reference chain (scan
  /// picture types) mirrors decode_gop's rolling fwd/bwd state machine, so
  /// resolved references match the sequential path picture for picture —
  /// including quarantined reference pictures, whose synthesized frames
  /// feed later predictions exactly as in the GOP decoder.
  void explode_entry(GopEntry& e) {
    const std::size_t n = e.info.pictures.size();
    e.exploded = true;
    e.newest.assign(n, -1);
    e.older.assign(n, -1);
    e.state.assign(n, 0);
    e.frames.assign(n, nullptr);
    if (quarantine_) e.ranks = mpeg2::display_ranks(e.info);
    int older = -1, newest = -1;
    for (std::size_t i = 0; i < n; ++i) {
      e.newest[i] = newest;
      e.older[i] = older;
      if (e.info.pictures[i].type != mpeg2::PictureType::kB) {
        older = newest;
        newest = static_cast<int>(i);
      }
    }
  }

  const int workers_;
  const sched::AdaptivePolicy policy_;
  const std::size_t max_queued_;
  const bool quarantine_;
  const std::int64_t watchdog_ns_;
  ErrorLog* const errors_;
  std::atomic<int>* const quarantined_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<GopEntry> entries_;  // stable addresses
  std::vector<std::deque<int>> deques_;
  std::vector<int> active_;  // exploded, incomplete GOP ids (sorted)
  sched::CostEwma ewma_;
  int queued_ = 0;  // GOP tasks sitting in deques
  int pushed_ = 0;
  int completed_gops_ = 0;
  int gop_mode_ = 0;
  int exploded_ = 0;
  bool scan_done_ = false;
  bool aborted_ = false;
  bool hung_ = false;
  std::uint64_t epoch_ = 0;  // bumps on every scheduling event (watchdog)
};

}  // namespace

RunResult AdaptiveDecoder::decode(std::span<const std::uint8_t> stream,
                                  const FrameCallback& on_frame) {
  RunResult result;
  result.stream_bytes = stream.size();
  WallTimer total_timer;
  obs::Tracer* const tracer = config_.tracer;
  obs::live::LiveTelemetry* const live =
      config_.live && config_.live->workers() >= config_.workers
          ? config_.live
          : nullptr;

  // --- Scan process, stage 1: the serial preamble.
  WallTimer scan_timer;
  std::int64_t span_begin = tracer ? tracer->now_ns() : 0;
  mpeg2::StructureScanner scanner(stream);
  const bool preamble_ok = scanner.scan_preamble();
  double scan_s = scan_timer.elapsed_s();
  if (tracer) {
    tracer->emit(config_.workers, obs::SpanKind::kScan, span_begin,
                 tracer->now_ns());
  }
  if (!preamble_ok) {
    result.scan_s = scan_s;
    return result;
  }

  mpeg2::StreamStructure structure;
  structure.seq = scanner.seq();
  structure.ext = scanner.ext();
  structure.mpeg1 = scanner.mpeg1();
  structure.valid = true;

  obs::prof::WorkerProf* scan_prof =
      config_.prof ? config_.prof->bind(config_.workers) : nullptr;

  DisplaySink display(on_frame);
  display.set_live(live);
  mpeg2::FramePool pool(structure.seq.horizontal_size,
                        structure.seq.vertical_size, config_.tracker);
  // Warm allocation: the first pictures of a run should not pay for frame
  // allocation on the decode path. One in-flight frame per worker plus
  // slack for display reorder covers the steady state; the pool hit rate
  // below proves it.
  pool.reserve(static_cast<std::size_t>(config_.workers) + 2);

  obs::Counter* m_tasks = nullptr;
  obs::Histogram* h_task = nullptr;
  obs::Histogram* h_wait = nullptr;
  if (config_.metrics) {
    m_tasks = &config_.metrics->counter("adaptive.tasks");
    h_task = &config_.metrics->histogram("adaptive.task_ns");
    h_wait = &config_.metrics->histogram("adaptive.queue_wait_ns");
    config_.metrics->counter("decode.bytes")
        .add(static_cast<std::int64_t>(stream.size()));
  }

  result.workers.resize(static_cast<std::size_t>(config_.workers));
  std::atomic<int> concealed{0};
  std::atomic<int> concealed_pics{0};
  std::atomic<int> quarantined{0};
  ErrorLog errors;
  GopObs gobs;
  gobs.tracer = tracer;
  gobs.conceal_errors = config_.conceal_errors;
  gobs.quarantine = config_.quarantine_gops;
  gobs.concealed = &concealed;
  gobs.concealed_pics = &concealed_pics;
  gobs.quarantined = &quarantined;
  gobs.errors = config_.quarantine_gops ? &errors : nullptr;
  gobs.h_resync = config_.metrics
                      ? &config_.metrics->histogram("recover.resync_bytes")
                      : nullptr;
  gobs.live = live;

  sched::AdaptivePolicy policy;
  policy.depth_threshold = config_.depth_threshold;
  policy.cost_factor = config_.cost_factor;
  policy.steal = config_.steal;
  AdaptiveCoordinator coord(config_.workers, policy, config_.max_queued_gops,
                            config_.quarantine_gops, config_.watchdog_ns,
                            config_.quarantine_gops ? &errors : nullptr,
                            &quarantined);

  // Thread ownership lives in WorkerPool (the src/serve extraction); the
  // claim loop below is unchanged from the jthread-vector days.
  WorkerPool worker_pool(config_.workers, [&](int w) {
      WorkerStats& stats = result.workers[static_cast<std::size_t>(w)];
      obs::prof::WorkerProf* wprof =
          config_.prof ? config_.prof->bind(w) : nullptr;
      for (;;) {
        const std::int64_t wait_begin = tracer ? tracer->now_ns() : 0;
        const std::int64_t sync_before = stats.sync_ns;
        Claim claim;
        const bool have = coord.claim(claim, stats.sync_ns, w);
        if (tracer) {
          const std::int64_t wait_end = tracer->now_ns();
          if (wait_end - wait_begin >= kMinWaitSpanNs) {
            tracer->emit(w, obs::SpanKind::kQueueWait, wait_begin, wait_end);
          }
        }
        if (!have) break;
        if (live && claim.popped_gop) live->add_queue_depth(-1);
        if (h_wait) h_wait->record(stats.sync_ns - sync_before);
        const std::int64_t task_begin = tracer ? tracer->now_ns() : 0;
        ThreadCpuTimer cpu;
        bool ok = true;
        if (claim.kind == Claim::Kind::kWholeGop) {
          const GopEntry& e = coord.entry(claim.gop);
          const GopTask task{&e.info, e.index, e.display_base,
                             e.decode_base};
          ok = decode_gop(stream, structure, task, pool, display, stats,
                          gobs, w);
          const std::int64_t task_ns = cpu.elapsed_ns();
          if (tracer) {
            tracer->emit(w, obs::SpanKind::kGopTask, task_begin,
                         tracer->now_ns(), -1, -1, e.index);
          }
          coord.finish_whole(claim, task_ns, ok);
          if (!ok) break;
          stats.compute_ns += task_ns;
          ++stats.tasks;
          if (claim.stolen) {
            ++stats.stolen_tasks;
            stats.stolen_ns += task_ns;
          }
          if (h_task) h_task->record(task_ns);
          if (m_tasks) m_tasks->add();
          if (live) {
            obs::live::TelemetryCell::Write lw(live->worker(w));
            lw.add_tasks().add_busy_ns(task_ns).set_sync_ns(stats.sync_ns);
            if (wprof) lw.add_counters(wprof->take_task_delta());
          }
        } else {
          const GopEntry& e = coord.entry(claim.gop);
          const auto& info =
              e.info.pictures[static_cast<std::size_t>(claim.pic)];
          PictureOutcome out = decode_one_picture(
              stream, structure, info, e.index, e.decode_base + claim.pic,
              e.display_base, claim.ranked_display, claim.fwd, claim.bwd,
              pool, display, stats, gobs, w);
          const std::int64_t task_ns = cpu.elapsed_ns();
          ok = out.frame != nullptr;
          const bool damaged =
              out.quarantined ||
              (out.concealed_slices > 0 && config_.quarantine_gops);
          coord.finish_picture(claim, std::move(out.frame), task_ns, damaged,
                               ok);
          if (!ok) break;
          stats.compute_ns += task_ns;
          ++stats.tasks;
          if (claim.stolen) {
            ++stats.stolen_tasks;
            stats.stolen_ns += task_ns;
          }
          if (h_task) h_task->record(task_ns);
          if (m_tasks) m_tasks->add();
          if (live) {
            obs::live::TelemetryCell::Write lw(live->worker(w));
            lw.add_tasks().add_busy_ns(task_ns).set_sync_ns(stats.sync_ns);
            if (wprof) lw.add_counters(wprof->take_task_delta());
          }
        }
      }
      if (wprof) obs::prof::StageProfiler::unbind();
  });

  // --- Scan process, stage 2: stream GOPs into the coordinator's deques.
  bool scan_ok = true;
  int total_pictures = 0;
  {
    int index = 0;
    for (;;) {
      if (coord.aborted()) break;
      WallTimer gop_timer;
      span_begin = tracer ? tracer->now_ns() : 0;
      mpeg2::GopInfo gop;
      bool have;
      {
        obs::prof::StageScope scan_stage(obs::prof::Stage::kScan);
        have = scanner.next_gop(gop);
      }
      scan_s += gop_timer.elapsed_s();
      if (tracer) {
        tracer->emit(config_.workers, obs::SpanKind::kScan, span_begin,
                     tracer->now_ns(), -1, -1, index);
      }
      if (!have) {
        scan_ok = !scanner.failed() && index > 0;
        if (scanner.failed() && config_.quarantine_gops) {
          // Bounded recovery: a scan failure mid-stream keeps the scanned
          // prefix. A partial final GOP still decodes what it indexed.
          errors.add({RecoveryCause::kScanTruncated, index, -1,
                      scanner.position()});
          if (scanner.failed_in_gop() && !gop.pictures.empty()) {
            const int display_base = total_pictures;
            total_pictures += static_cast<int>(gop.pictures.size());
            if (live) live->add_queue_depth(1);
            coord.push_gop(std::move(gop), index, display_base);
          }
          scan_ok = total_pictures > 0;
        }
        break;
      }
      if (!gop.closed) {
        if (!config_.quarantine_gops) {
          scan_ok = false;  // this decoder requires closed GOPs
          break;
        }
        errors.add({RecoveryCause::kOpenGop, index, -1, gop.offset});
      }
      const int display_base = total_pictures;
      total_pictures += static_cast<int>(gop.pictures.size());
      if (live) live->add_queue_depth(1);
      const std::int64_t push_begin = tracer ? tracer->now_ns() : 0;
      const std::int64_t blocked_ns =
          coord.push_gop(std::move(gop), index, display_base);
      if (tracer && blocked_ns >= kMinWaitSpanNs) {
        tracer->emit(config_.workers, obs::SpanKind::kBackpressure,
                     push_begin, push_begin + blocked_ns);
      }
      if (live) {
        obs::live::TelemetryCell::Write lw(live->scan());
        lw.add_tasks()
            .set_bytes(static_cast<std::int64_t>(scanner.position()))
            .set_last_progress_ns(live->now_ns());
        if (blocked_ns > 0) lw.add_backpressure_ns(blocked_ns);
      }
      ++index;
    }
    coord.finish_scan(scan_ok);
  }
  if (scan_prof) {
    if (live) {
      obs::live::TelemetryCell::Write lw(live->scan());
      lw.add_counters(scan_prof->take_task_delta());
    }
    obs::prof::StageProfiler::unbind();
  }
  result.scan_s = scan_s;
  result.pictures = total_pictures;
  display.set_total(total_pictures);
  if (config_.metrics) {
    config_.metrics->counter("decode.pictures").add(total_pictures);
  }

  worker_pool.join();
  result.concealed_slices = concealed.load(std::memory_order_relaxed);
  result.concealed_pictures = concealed_pics.load(std::memory_order_relaxed);
  result.quarantined_gops = quarantined.load(std::memory_order_relaxed);
  result.gop_mode_gops = coord.gop_mode_gops();
  result.exploded_gops = coord.exploded_gops();
  for (const auto& ws : result.workers) {
    result.stolen_tasks += ws.stolen_tasks;
  }
  result.pool_hits = pool.hits();
  result.pool_misses = pool.misses();
  result.hung = coord.hung();
  if (result.hung) {
    result.hang.where = "coordinator";
    result.hang.waited_ns = config_.watchdog_ns;
    result.hang.epoch = static_cast<std::int64_t>(coord.epoch());
    result.hang.pictures_delivered = display.emitted();
    result.hang.pictures_indexed = total_pictures;
  }
  errors.drain(result.errors, result.errors_dropped);
  const auto record_run_metrics = [&] {
    if (!config_.metrics) return;
    config_.metrics->counter("adaptive.gop_mode_gops")
        .add(result.gop_mode_gops);
    config_.metrics->counter("adaptive.exploded_gops")
        .add(result.exploded_gops);
    config_.metrics->counter("adaptive.stolen_tasks")
        .add(static_cast<std::int64_t>(result.stolen_tasks));
    config_.metrics->counter("adaptive.pool_hits")
        .add(static_cast<std::int64_t>(result.pool_hits));
    config_.metrics->counter("adaptive.pool_misses")
        .add(static_cast<std::int64_t>(result.pool_misses));
    config_.metrics->counter("recover.concealed_slices")
        .add(result.concealed_slices);
    config_.metrics->counter("recover.concealed_pictures")
        .add(result.concealed_pictures);
    config_.metrics->counter("recover.quarantined_gops")
        .add(result.quarantined_gops);
    config_.metrics->counter("recover.errors").add(
        static_cast<std::int64_t>(result.errors.size()) +
        result.errors_dropped);
  };
  if (!scan_ok || coord.aborted()) {
    // Failed runs still report their timing/memory so harnesses can log
    // something consistent.
    result.wall_s = total_timer.elapsed_s();
    if (config_.tracker) {
      result.peak_frame_bytes = config_.tracker->peak_bytes();
    }
    derive_idle(result);
    record_run_metrics();
    return result;
  }
  if (!display.wait_done_for(config_.watchdog_ns)) {
    result.hung = true;
    result.hang.where = "display";
    result.hang.waited_ns = config_.watchdog_ns;
    result.hang.epoch = static_cast<std::int64_t>(coord.epoch());
    result.hang.pictures_delivered = display.emitted();
    result.hang.pictures_indexed = total_pictures;
    result.errors.push_back({RecoveryCause::kDisplayTimeout, -1, -1, 0});
    result.wall_s = total_timer.elapsed_s();
    if (config_.tracker) {
      result.peak_frame_bytes = config_.tracker->peak_bytes();
    }
    derive_idle(result);
    record_run_metrics();
    return result;
  }

  result.wall_s = total_timer.elapsed_s();
  result.checksum = display.checksum();
  if (config_.tracker) {
    result.peak_frame_bytes = config_.tracker->peak_bytes();
  }
  derive_idle(result);
  record_run_metrics();
  result.ok = true;
  return result;
}

}  // namespace pmp2::parallel
