// Adaptive-granularity hybrid decoder (ROADMAP item 3): one shared worker
// pool, per-GOP dispatch between the two paper granularities.
//
// Each scanned GOP lands on its owner worker's deque (owner = GOP index mod
// workers, the GOP decoder's round-robin affinity). At pop time the policy
// decides, from queue depth and an online cost model (src/sched
// AdaptivePolicy / CostEwma — the same arithmetic the virtual-time sweeps
// in simulate_adaptive validated):
//
//   throughput mode — the pipeline is deep: run the GOP whole, exactly the
//     GOP decoder's task (decode_gop), zero inter-worker communication;
//   latency mode — the queue is shallow or the GOP is a predicted
//     straggler: explode the GOP into per-picture tasks that any worker
//     may claim, so all workers cooperate on the frames closest to
//     display. Pictures keep GOP-private references (closed GOPs), so
//     exploded GOPs of different indices decode concurrently and every
//     picture decodes byte-identically to the GOP decoder's sequential
//     loop (both run decode_one_picture).
//
// Work stealing: an idle worker first backfills exploded pictures (always
// shared), then pops its own deque, then steals a whole GOP from the next
// victim in sched::steal_order. Stolen work is attributed per worker
// (WorkerStats::stolen_tasks / stolen_ns) so the analyzer can answer where
// stolen work landed.
//
// Recovery semantics are the GOP decoder's: quarantine confines a fault to
// its own GOP in both modes, and playback checksums equal the fixed GOP
// decoder's on clean and damaged streams alike.
#pragma once

#include <cstdint>
#include <span>

#include "mpeg2/decoder.h"
#include "mpeg2/frame.h"
#include "parallel/display.h"
#include "parallel/stats.h"

namespace pmp2::obs {
class Registry;
class Tracer;
}

namespace pmp2::obs::live {
class LiveTelemetry;
}

namespace pmp2::obs::prof {
class StageProfiler;
}

namespace pmp2::parallel {

struct AdaptiveDecoderConfig {
  int workers = 4;
  /// Maximum GOP tasks sitting in deques unstarted; the scan blocks when
  /// full. 0 = unbounded (the paper's configuration).
  std::size_t max_queued_gops = 0;
  /// Explode when fewer than this many GOP tasks are queued; 0 = use the
  /// worker count (sched::AdaptivePolicy::depth_threshold).
  int depth_threshold = 0;
  /// Explode a GOP predicted to cost more than this multiple of the
  /// average completed GOP (sched::AdaptivePolicy::cost_factor).
  double cost_factor = 2.0;
  /// Allow idle workers to steal whole GOPs from other deques. Exploded
  /// pictures are always shared regardless.
  bool steal = true;
  /// Conceal corrupt slices instead of aborting (as in both fixed
  /// decoders); reported in RunResult::concealed_slices.
  bool conceal_errors = false;
  /// Bounded recovery with the GOP decoder's quarantine semantics
  /// (docs/ROBUSTNESS.md): the blast radius of any fault is one GOP, in
  /// either dispatch mode. Implies conceal_errors.
  bool quarantine_gops = false;
  /// Watchdog: fail the run (RunResult::hung) instead of blocking forever
  /// when the coordinator or display stops progressing. 0 = off.
  std::int64_t watchdog_ns = 0;
  /// Tracks frame-buffer bytes.
  mpeg2::MemoryTracker* tracker = nullptr;
  /// Optional span tracer: needs `workers + 1` tracks (track w = worker w,
  /// track `workers` = the scan process). Null = zero-cost no-op.
  obs::Tracer* tracer = nullptr;
  /// Optional counter/histogram registry ("adaptive.*" instruments plus
  /// the shared "decode.*"/"recover.*" families).
  obs::Registry* metrics = nullptr;
  /// Optional live telemetry surface; must be sized with at least
  /// `workers` worker cells (an undersized instance is ignored).
  obs::live::LiveTelemetry* live = nullptr;
  /// Optional hardware-counter stage profiler (`workers + 1` slots).
  obs::prof::StageProfiler* prof = nullptr;
};

class AdaptiveDecoder {
 public:
  explicit AdaptiveDecoder(const AdaptiveDecoderConfig& config)
      : config_(config) {}

  /// Decodes the elementary stream with `config_.workers` worker threads
  /// plus a scan and a display role. Requires closed GOPs (the encoder's
  /// output) unless quarantine is on. Frames are delivered in display
  /// order through `on_frame` (may be empty). Fills RunResult's adaptive
  /// accounting: gop_mode_gops, exploded_gops, stolen_tasks, pool hits.
  [[nodiscard]] RunResult decode(std::span<const std::uint8_t> stream,
                                 const FrameCallback& on_frame = {});

 private:
  AdaptiveDecoderConfig config_;
};

}  // namespace pmp2::parallel
