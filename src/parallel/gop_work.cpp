#include "parallel/gop_work.h"

#include <utility>
#include <vector>

#include "obs/live/telemetry.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace pmp2::parallel {

mpeg2::FramePtr conceal_whole_picture(const mpeg2::StreamStructure& structure,
                                      const mpeg2::PictureInfo& info,
                                      int display_index,
                                      const mpeg2::FramePtr& ref,
                                      mpeg2::FramePool& pool) {
  mpeg2::FramePtr dst = pool.acquire();
  dst->type = info.type;
  dst->temporal_reference = info.temporal_reference;
  dst->display_index = display_index;
  mpeg2::PictureContext pc;
  pc.seq = &structure.seq;
  pc.mb_width = structure.mb_width();
  pc.mb_height = structure.mb_height();
  pc.dst = dst.get();
  pc.fwd_ref = ref ? ref.get() : nullptr;
  for (int row = 0; row < pc.mb_height; ++row) mpeg2::conceal_slice(pc, row);
  return dst;
}

PictureOutcome decode_one_picture(std::span<const std::uint8_t> stream,
                                  const mpeg2::StreamStructure& structure,
                                  const mpeg2::PictureInfo& info,
                                  int gop_index, int pic_index,
                                  int display_base, int ranked_display_index,
                                  const mpeg2::FramePtr& fwd_ref,
                                  const mpeg2::FramePtr& bwd_ref,
                                  mpeg2::FramePool& pool, DisplaySink& display,
                                  WorkerStats& stats, const GopObs& gobs,
                                  int worker) {
  PictureOutcome out;
  const std::int64_t live_begin_ns = gobs.live ? gobs.live->now_ns() : 0;
  auto quarantine_picture = [&](RecoveryCause cause) {
    mpeg2::FramePtr dst = conceal_whole_picture(
        structure, info, ranked_display_index, bwd_ref ? bwd_ref : fwd_ref,
        pool);
    if (gobs.errors) {
      gobs.errors->add({cause, gop_index, pic_index, info.offset});
    }
    if (gobs.concealed_pics) {
      gobs.concealed_pics->fetch_add(1, std::memory_order_relaxed);
    }
    out.quarantined = true;
    out.frame = dst;
    display.push(std::move(dst));
    if (gobs.live) {
      // The synthesized frame still counts as a delivered picture; this
      // runs on the owning worker thread, so the cell write is safe.
      obs::live::TelemetryCell::Write lw(gobs.live->worker(worker));
      lw.add_pictures().add_quarantined().set_last_progress_ns(
          gobs.live->now_ns());
    }
  };

  pmp2::BitReader br(stream);
  br.seek_bytes(info.offset);
  mpeg2::PictureContext pic;
  pic.seq = &structure.seq;
  pic.mpeg1 = structure.mpeg1;
  if (info.slices.empty()) {
    // A picture whose every slice startcode was destroyed: nothing to
    // decode, so the whole frame must be synthesized.
    if (!gobs.quarantine) return out;
    quarantine_picture(RecoveryCause::kPictureHeader);
    return out;
  }
  if (!mpeg2::parse_picture_headers(br, pic.header, pic.ext)) {
    if (!gobs.quarantine) return out;
    quarantine_picture(RecoveryCause::kPictureHeader);
    return out;
  }
  pic.mb_width = structure.mb_width();
  pic.mb_height = structure.mb_height();

  if (pic.header.type != mpeg2::PictureType::kI) {
    const mpeg2::FramePtr& past =
        pic.header.type == mpeg2::PictureType::kP ? bwd_ref : fwd_ref;
    if (!past || (pic.header.type == mpeg2::PictureType::kB && !bwd_ref)) {
      if (!gobs.quarantine) return out;  // GOP not closed/self-contained
      quarantine_picture(RecoveryCause::kMissingReference);
      return out;
    }
  }

  mpeg2::FramePtr dst = pool.acquire();
  dst->type = pic.header.type;
  dst->temporal_reference = pic.header.temporal_reference;
  dst->display_index = gobs.quarantine
                           ? ranked_display_index
                           : display_base + pic.header.temporal_reference;
  pic.dst = dst.get();
  pic.dst_id = dst->trace_id();
  if (pic.header.type != mpeg2::PictureType::kI) {
    const mpeg2::FramePtr& past =
        pic.header.type == mpeg2::PictureType::kP ? bwd_ref : fwd_ref;
    pic.fwd_ref = past.get();
    pic.fwd_id = past->trace_id();
    if (pic.header.type == mpeg2::PictureType::kB) {
      pic.bwd_ref = bwd_ref.get();
      pic.bwd_id = bwd_ref->trace_id();
    }
  }
  int concealed_here = 0;
  mpeg2::PictureDecodeOptions opts;
  opts.tracer = gobs.tracer;
  opts.track = worker;
  opts.picture_id = pic_index;
  opts.conceal_errors = gobs.conceal_errors || gobs.quarantine;
  opts.concealed = &concealed_here;
  opts.resync = gobs.h_resync;
  {
    const std::int64_t pic_begin = gobs.tracer ? gobs.tracer->now_ns() : 0;
    const bool ok =
        mpeg2::decode_picture_slices(stream, info, pic, stats.work, opts);
    if (gobs.tracer) {
      gobs.tracer->emit(worker, obs::SpanKind::kPicture, pic_begin,
                        gobs.tracer->now_ns(), pic_index, -1, gop_index);
    }
    if (!ok) return out;  // unreachable when concealing
  }
  out.concealed_slices = concealed_here;
  if (concealed_here > 0) {
    if (gobs.concealed) {
      gobs.concealed->fetch_add(concealed_here, std::memory_order_relaxed);
    }
    if (gobs.quarantine && gobs.errors) {
      gobs.errors->add(
          {RecoveryCause::kSliceError, gop_index, pic_index, info.offset});
    }
  }
  out.frame = dst;
  display.push(std::move(dst));
  if (gobs.live) {
    const std::int64_t now = gobs.live->now_ns();
    const std::int64_t latency = now - live_begin_ns;
    gobs.live->frame_latency().record(latency);
    obs::live::TelemetryCell::Write lw(gobs.live->worker(worker));
    lw.add_pictures().set_last_latency_ns(latency).set_last_progress_ns(now);
    if (concealed_here > 0) lw.add_concealed(concealed_here);
  }
  return out;
}

bool decode_gop(std::span<const std::uint8_t> stream,
                const mpeg2::StreamStructure& structure, const GopTask& task,
                mpeg2::FramePool& pool, DisplaySink& display,
                WorkerStats& stats, const GopObs& gobs, int worker) {
  mpeg2::FramePtr fwd_ref, bwd_ref;
  int pic_index = task.decode_base;
  bool damaged = false;
  std::vector<int> ranks;
  if (gobs.quarantine) ranks = mpeg2::display_ranks(*task.info);
  for (int i = 0; i < static_cast<int>(task.info->pictures.size());
       ++i, ++pic_index) {
    const auto& info = task.info->pictures[static_cast<std::size_t>(i)];
    const int ranked =
        gobs.quarantine
            ? task.display_base + ranks[static_cast<std::size_t>(i)]
            : -1;
    PictureOutcome out = decode_one_picture(
        stream, structure, info, task.index, pic_index, task.display_base,
        ranked, fwd_ref, bwd_ref, pool, display, stats, gobs, worker);
    if (!out.frame) return false;
    if (out.quarantined || (out.concealed_slices > 0 && gobs.quarantine)) {
      damaged = true;
    }
    // References advance on every non-B picture — a quarantined picture's
    // synthesized frame serves as the reference, which is what bounds the
    // blast radius of a fault to its own GOP.
    const mpeg2::PictureType type = out.frame->type;
    if (type != mpeg2::PictureType::kB) {
      fwd_ref = bwd_ref;
      bwd_ref = std::move(out.frame);
    }
  }
  if (damaged && gobs.quarantined) {
    gobs.quarantined->fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

}  // namespace pmp2::parallel
