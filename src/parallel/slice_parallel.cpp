#include "parallel/slice_parallel.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "mpeg2/structure_scan.h"
#include "obs/live/telemetry.h"
#include "obs/metrics.h"
#include "obs/prof/stage_prof.h"
#include "obs/tracer.h"
#include "parallel/worker_pool.h"
#include "util/timer.h"

namespace pmp2::parallel {

namespace {

/// Sync waits shorter than this are not worth a trace span (an uncontended
/// claim takes well under a microsecond); they still count toward sync_ns.
constexpr std::int64_t kMinWaitSpanNs = 1'000;

/// One picture of the 2-D task structure, in decode order.
struct Pic {
  const mpeg2::PictureInfo* info = nullptr;
  int display_index = 0;
  int gop = -1;            // GOP ordinal (quarantine blast-radius accounting)
  int deps[2] = {-1, -1};  // decode-order indices that must complete first

  // Runtime state; scheduling fields are guarded by the coordinator mutex.
  mpeg2::PictureContext ctx;
  mpeg2::FramePtr dst, fwd, bwd;
  bool open = false;
  bool complete = false;
  bool damaged = false;  // at least one recovery action hit this picture
  int next_slice = 0;
  int remaining = 0;
  std::int64_t open_ns = -1;  // telemetry time the picture opened
  // Conceal mode: macroblocks written so far (raster order), consumed by
  // conceal_coverage_gaps when the last slice completes.
  std::vector<bool> covered;
};

/// Shared scheduling state: the coordinator implements the paper's 2-D
/// picture/slice task queue plus the policy's synchronization rule.
class Coordinator {
 public:
  Coordinator(std::span<const std::uint8_t> stream,
              const mpeg2::StreamStructure& structure, mpeg2::FramePool& pool,
              DisplaySink& display)
      : stream_(stream),
        structure_(structure),
        pool_(pool),
        display_(display) {}

  /// Bounded recovery (docs/ROBUSTNESS.md). With `quarantine`, a picture
  /// that cannot open (bad header, missing reference, no slices) becomes a
  /// whole concealed frame instead of aborting the run; every recovery
  /// action is logged to `errors`. `watchdog_ns > 0` arms the scheduling
  /// watchdog: if nothing progresses for that long while work remains, the
  /// run aborts (hung()) instead of deadlocking on a poisoned entry.
  void set_recovery(bool quarantine, ErrorLog* errors,
                    std::atomic<int>* concealed_pics,
                    std::int64_t watchdog_ns) {
    quarantine_ = quarantine;
    errors_ = errors;
    concealed_pics_ = concealed_pics;
    watchdog_ns_ = watchdog_ns;
  }

  /// Conceal mode: track per-picture macroblock coverage so completion can
  /// conceal the gaps no slice wrote (stale pool bytes otherwise). The
  /// counter receives one increment per concealed gap run.
  void set_conceal(bool on, std::atomic<int>* concealed_slices) {
    conceal_ = on;
    concealed_slices_ = concealed_slices;
  }

  /// Live telemetry surface: frame-latency histogram + open-picture depth
  /// (decoder-validated against the worker count before being passed in).
  void set_live(obs::live::LiveTelemetry* live) { live_ = live; }

  /// Scan process: appends one GOP's pictures (decode order) and wakes any
  /// workers idling for work. Returns the total picture count so far.
  int append(std::vector<Pic> pics) {
    const std::scoped_lock lock(mutex_);
    for (auto& pic : pics) pics_.push_back(std::move(pic));
    ++epoch_;
    cv_.notify_all();
    return static_cast<int>(pics_.size());
  }

  /// Scan process: no more pictures will arrive. A failed scan aborts the
  /// run; otherwise workers drain what was appended and exit.
  void finish_scan(bool ok) {
    const std::scoped_lock lock(mutex_);
    scan_done_ = true;
    if (!ok) aborted_ = true;
    ++epoch_;
    cv_.notify_all();
  }

  /// A claimed unit of work: picture index + slice index.
  struct Claim {
    Pic* pic = nullptr;
    int pic_index = -1;  // decode-order picture index (for tracing)
    int slice = -1;
  };

  /// Blocks until a slice is available, all work is done (returns false),
  /// or the run was aborted (returns false). Accumulates blocked time into
  /// `sync_ns`. When `wait_kind` is non-null it is set to the classified
  /// cause of any blocking: kBackpressure when the open-picture bound was
  /// what stalled us (memory backpressure wins over a concurrent
  /// dependency stall, since lifting the bound would have unblocked the
  /// claim), kBarrierWait otherwise (unsatisfied picture dependency, or
  /// all remaining slices claimed by other workers).
  bool claim(Claim& out, std::int64_t& sync_ns,
             obs::SpanKind* wait_kind = nullptr) {
    WallTimer timer;
    std::vector<mpeg2::FramePtr> emit;
    std::unique_lock lock(mutex_);
    for (;;) {
      if (aborted_) break;
      open_eligible_pictures();
      if (!conceal_ready_.empty()) {
        // Concealed whole pictures synthesized above: deliver them to the
        // display without holding the scheduling lock.
        emit.swap(conceal_ready_);
        lock.unlock();
        for (auto& f : emit) display_.push(std::move(f));
        emit.clear();
        lock.lock();
        continue;
      }
      if (const int index = find_slice_source(); index >= 0) {
        Pic* pic = &pics_[static_cast<std::size_t>(index)];
        out.pic = pic;
        out.pic_index = index;
        out.slice = pic->next_slice++;
        sync_ns += timer.elapsed_ns();
        return true;
      }
      if (scan_done_ && completed_ == static_cast<int>(pics_.size())) break;
      if (wait_kind && *wait_kind != obs::SpanKind::kBackpressure) {
        const bool bound_stall =
            next_to_open_ < static_cast<int>(pics_.size()) &&
            open_count_ >= max_open_;
        *wait_kind = bound_stall ? obs::SpanKind::kBackpressure
                                 : obs::SpanKind::kBarrierWait;
      }
      if (watchdog_ns_ > 0) {
        // Watchdog: epoch_ ticks on every scheduling event (append, open,
        // conceal, slice completion, scan end). A full timeout with no
        // tick means the pipeline is wedged — e.g. a poisoned entry that
        // can never complete — so fail the run rather than hang.
        const std::uint64_t before = epoch_;
        const auto status =
            cv_.wait_for(lock, std::chrono::nanoseconds(watchdog_ns_));
        if (status == std::cv_status::timeout && epoch_ == before &&
            !aborted_) {
          hung_ = true;
          aborted_ = true;
          if (errors_) errors_->add({RecoveryCause::kWatchdog, -1, -1, 0});
          cv_.notify_all();
          break;
        }
      } else {
        cv_.wait(lock);
      }
    }
    sync_ns += timer.elapsed_ns();
    return false;
  }

  /// Reports a finished slice; completes the picture when it was the last.
  /// `worker` credits the completing worker's telemetry cell (it runs on
  /// that worker's thread, preserving the cell's single-writer rule).
  void finish_slice(const Claim& claim, bool ok, int worker = -1,
                    int first_mb = -1, int last_mb = -1) {
    std::unique_lock lock(mutex_);
    ++epoch_;
    if (!ok) {
      aborted_ = true;
      cv_.notify_all();
      return;
    }
    Pic& pic = *claim.pic;
    if (!pic.covered.empty() && first_mb >= 0) {
      const int hi =
          std::min(last_mb, static_cast<int>(pic.covered.size()) - 1);
      for (int a = std::max(first_mb, 0); a <= hi; ++a) {
        pic.covered[static_cast<std::size_t>(a)] = true;
      }
    }
    if (--pic.remaining == 0) {
      if (!pic.covered.empty()) {
        // All slices are claimed and the picture is not yet complete, so
        // no other worker can touch it: safe to drop the lock for the
        // pixel work. References are still pinned by pic.fwd / pic.bwd.
        lock.unlock();
        const int runs = mpeg2::conceal_coverage_gaps(pic.ctx, pic.covered);
        lock.lock();
        if (runs > 0) {
          if (concealed_slices_) {
            concealed_slices_->fetch_add(runs, std::memory_order_relaxed);
          }
          if (!pic.damaged) {
            pic.damaged = true;
            record_damage_locked(RecoveryCause::kSliceError, pic.gop,
                                 claim.pic_index, pic.info->offset);
          }
        }
      }
      pic.complete = true;
      ++completed_;
      mpeg2::FramePtr done = std::move(pic.dst);
      const std::int64_t open_ns = pic.open_ns;
      pic.fwd.reset();
      pic.bwd.reset();
      --open_count_;
      lock.unlock();
      display_.push(std::move(done));
      if (live_ && worker >= 0) {
        const std::int64_t now = live_->now_ns();
        const std::int64_t latency = open_ns >= 0 ? now - open_ns : 0;
        live_->frame_latency().record(latency);
        live_->add_queue_depth(-1);
        obs::live::TelemetryCell::Write lw(live_->worker(worker));
        lw.add_pictures().set_last_latency_ns(latency).set_last_progress_ns(
            now);
      }
      lock.lock();
      cv_.notify_all();
    } else if (pic.next_slice < static_cast<int>(pic.info->slices.size())) {
      // More slices of this picture remain; other waiting workers can help.
      cv_.notify_all();
    }
  }

  /// Worker report: a slice of this picture was concealed. Records one
  /// kSliceError per damaged picture (quarantine accounting).
  void note_concealed_slice(const Claim& claim) {
    const std::scoped_lock lock(mutex_);
    Pic& pic = *claim.pic;
    if (!pic.damaged) {
      pic.damaged = true;
      record_damage_locked(RecoveryCause::kSliceError, pic.gop,
                           claim.pic_index, pic.info->offset);
    }
  }

  [[nodiscard]] bool aborted() const {
    const std::scoped_lock lock(mutex_);
    return aborted_;
  }

  [[nodiscard]] bool hung() const {
    const std::scoped_lock lock(mutex_);
    return hung_;
  }

  /// Scheduling epoch at this instant (hang evidence: the counter that
  /// stopped ticking when the watchdog fired).
  [[nodiscard]] std::uint64_t epoch() const {
    const std::scoped_lock lock(mutex_);
    return epoch_;
  }

  /// Distinct GOPs with at least one recovery action.
  [[nodiscard]] int damaged_gop_count() const {
    const std::scoped_lock lock(mutex_);
    return static_cast<int>(damaged_gops_.size());
  }

  void set_max_open(int n) { max_open_ = n; }

 private:
  /// Called with the mutex held.
  void record_damage_locked(RecoveryCause cause, int gop, int picture,
                            std::uint64_t byte_offset) {
    if (errors_) errors_->add({cause, gop, picture, byte_offset});
    if (gop >= 0) damaged_gops_.insert(gop);
  }

  /// Quarantine fallback for one unopenable picture: synthesize a whole
  /// concealed frame (copy of the newest reference, mid-gray without one),
  /// mark the picture complete so dependents can open, and stage the frame
  /// in conceal_ready_ for claim() to deliver lock-free. Called with the
  /// mutex held.
  void conceal_picture_locked(Pic& pic, int index, RecoveryCause cause) {
    pic.dst = pool_.acquire();
    pic.dst->type = pic.info->type;
    pic.dst->temporal_reference = pic.info->temporal_reference;
    pic.dst->display_index = pic.display_index;
    mpeg2::PictureContext ctx;
    ctx.seq = &structure_.seq;
    ctx.mb_width = structure_.mb_width();
    ctx.mb_height = structure_.mb_height();
    ctx.dst = pic.dst.get();
    ctx.fwd_ref = newest_ref_ ? newest_ref_.get() : nullptr;
    for (int row = 0; row < ctx.mb_height; ++row) {
      mpeg2::conceal_slice(ctx, row);
    }
    // The scanned type drives the reference chain, as it drove the
    // dependency edges at append time.
    if (pic.info->type != mpeg2::PictureType::kB) {
      older_ref_ = newest_ref_;
      newest_ref_ = pic.dst;
    }
    pic.damaged = true;
    pic.complete = true;
    ++completed_;
    record_damage_locked(cause, pic.gop, index, pic.info->offset);
    if (concealed_pics_) {
      concealed_pics_->fetch_add(1, std::memory_order_relaxed);
    }
    if (live_) {
      // Synthesized under the scheduling mutex from whichever thread got
      // here first — no single owning worker, so the whole-picture
      // concealment goes to the run-wide atomic, not a worker cell.
      live_->add_concealed_picture();
      live_->add_queue_depth(-1);
    }
    conceal_ready_.push_back(std::move(pic.dst));
    ++epoch_;
    cv_.notify_all();
  }

  /// Opens pictures (in decode order) whose dependencies are satisfied.
  /// Called with the mutex held.
  void open_eligible_pictures() {
    while (next_to_open_ < static_cast<int>(pics_.size()) &&
           open_count_ < max_open_) {
      Pic& pic = pics_[static_cast<std::size_t>(next_to_open_)];
      for (const int dep : pic.deps) {
        if (dep >= 0 && !pics_[static_cast<std::size_t>(dep)].complete) {
          return;  // strict decode-order opening
        }
      }
      const int index = next_to_open_;
      pmp2::BitReader br(stream_);
      br.seek_bytes(pic.info->offset);
      pic.ctx.seq = &structure_.seq;
      pic.ctx.mpeg1 = structure_.mpeg1;
      // A picture with no indexed slices would never complete (completion
      // is slice-driven), so it must be concealed or abort the run here.
      const bool headers_ok =
          !pic.info->slices.empty() &&
          mpeg2::parse_picture_headers(br, pic.ctx.header, pic.ctx.ext);
      if (!headers_ok) {
        if (quarantine_) {
          conceal_picture_locked(pic, index, RecoveryCause::kPictureHeader);
          ++next_to_open_;
          continue;
        }
        aborted_ = true;
        cv_.notify_all();
        return;
      }
      pic.ctx.mb_width = structure_.mb_width();
      pic.ctx.mb_height = structure_.mb_height();
      if (conceal_) {
        pic.covered.assign(static_cast<std::size_t>(pic.ctx.mb_width) *
                               static_cast<std::size_t>(pic.ctx.mb_height),
                           false);
      }
      if (pic.ctx.header.type != mpeg2::PictureType::kI) {
        const mpeg2::FramePtr& past =
            pic.ctx.header.type == mpeg2::PictureType::kP ? newest_ref_
                                                          : older_ref_;
        if (!past || (pic.ctx.header.type == mpeg2::PictureType::kB &&
                      !newest_ref_)) {
          if (quarantine_) {
            conceal_picture_locked(pic, index,
                                   RecoveryCause::kMissingReference);
            ++next_to_open_;
            continue;
          }
          aborted_ = true;
          cv_.notify_all();
          return;
        }
      }
      pic.dst = pool_.acquire();
      pic.dst->type = pic.ctx.header.type;
      pic.dst->temporal_reference = pic.ctx.header.temporal_reference;
      pic.dst->display_index = pic.display_index;
      pic.ctx.dst = pic.dst.get();
      pic.ctx.dst_id = pic.dst->trace_id();
      if (pic.ctx.header.type != mpeg2::PictureType::kI) {
        const mpeg2::FramePtr& past =
            pic.ctx.header.type == mpeg2::PictureType::kP ? newest_ref_
                                                          : older_ref_;
        pic.fwd = past;
        pic.ctx.fwd_ref = past.get();
        pic.ctx.fwd_id = past->trace_id();
        if (pic.ctx.header.type == mpeg2::PictureType::kB) {
          pic.bwd = newest_ref_;
          pic.ctx.bwd_ref = newest_ref_.get();
          pic.ctx.bwd_id = newest_ref_->trace_id();
        }
      }
      if (pic.ctx.header.type != mpeg2::PictureType::kB) {
        older_ref_ = newest_ref_;
        newest_ref_ = pic.dst;
      }
      pic.remaining = static_cast<int>(pic.info->slices.size());
      pic.open_ns = live_ ? live_->now_ns() : -1;
      pic.open = true;
      ++open_count_;
      ++next_to_open_;
      ++epoch_;
      cv_.notify_all();
    }
  }

  /// Lowest decode-order open picture with unclaimed slices (-1 if none).
  /// Called with the mutex held.
  int find_slice_source() {
    for (int i = first_active_; i < next_to_open_; ++i) {
      Pic& pic = pics_[static_cast<std::size_t>(i)];
      if (pic.complete && i == first_active_) {
        ++first_active_;
        continue;
      }
      if (pic.open && !pic.complete &&
          pic.next_slice < static_cast<int>(pic.info->slices.size())) {
        return i;
      }
    }
    return -1;
  }

  std::span<const std::uint8_t> stream_;
  const mpeg2::StreamStructure& structure_;
  // Deque: the scan process appends while workers hold Pic pointers, so
  // element addresses must be stable.
  std::deque<Pic> pics_;
  mpeg2::FramePool& pool_;
  DisplaySink& display_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  int next_to_open_ = 0;
  int first_active_ = 0;
  int open_count_ = 0;
  int max_open_ = 1;
  int completed_ = 0;
  bool scan_done_ = false;
  bool aborted_ = false;

  // Bounded-recovery state (set_recovery / set_conceal).
  bool quarantine_ = false;
  bool conceal_ = false;
  std::atomic<int>* concealed_slices_ = nullptr;
  std::int64_t watchdog_ns_ = 0;
  ErrorLog* errors_ = nullptr;
  std::atomic<int>* concealed_pics_ = nullptr;
  bool hung_ = false;
  std::uint64_t epoch_ = 0;  // bumps on every scheduling event (watchdog)
  obs::live::LiveTelemetry* live_ = nullptr;
  std::set<int> damaged_gops_;
  std::vector<mpeg2::FramePtr> conceal_ready_;  // drained by claim()

  mpeg2::FramePtr older_ref_, newest_ref_;
};

}  // namespace

RunResult SliceParallelDecoder::decode(std::span<const std::uint8_t> stream,
                                       const FrameCallback& on_frame) {
  RunResult result;
  result.stream_bytes = stream.size();
  WallTimer total_timer;
  obs::Tracer* const tracer = config_.tracer;
  obs::live::LiveTelemetry* const live =
      config_.live && config_.live->workers() >= config_.workers
          ? config_.live
          : nullptr;

  // --- Scan process, stage 1: the serial preamble (sequence header up to
  // the first GOP header). The GOP/picture/slice index streams in below,
  // overlapped with worker decode.
  WallTimer scan_timer;
  std::int64_t span_begin = tracer ? tracer->now_ns() : 0;
  mpeg2::StructureScanner scanner(stream);
  const bool preamble_ok = scanner.scan_preamble();
  double scan_s = scan_timer.elapsed_s();
  if (tracer) {
    tracer->emit(config_.workers, obs::SpanKind::kScan, span_begin,
                 tracer->now_ns());
  }
  if (!preamble_ok) {
    result.scan_s = scan_s;
    return result;
  }

  // Header state shared with the workers (the GOP index streams in later).
  mpeg2::StreamStructure structure;
  structure.seq = scanner.seq();
  structure.ext = scanner.ext();
  structure.mpeg1 = scanner.mpeg1();
  structure.valid = true;

  // The scan process runs on this thread: bind the extra profiler slot so
  // the incremental GOP scan below is counter-attributed to the scan stage.
  obs::prof::WorkerProf* scan_prof =
      config_.prof ? config_.prof->bind(config_.workers) : nullptr;

  DisplaySink display(on_frame);  // picture count known once the scan ends
  display.set_live(live);
  mpeg2::FramePool pool(structure.seq.horizontal_size,
                        structure.seq.vertical_size, config_.tracker);
  const int max_open = config_.policy == SlicePolicy::kSimple
                           ? 1
                           : std::max(1, config_.max_open_pictures);
  // Warm allocation: at most max_open pictures are in flight, plus slack
  // for frames awaiting display reorder; reserving them here keeps frame
  // allocation off the decode path (the pool hit rate proves it).
  pool.reserve(static_cast<std::size_t>(max_open) + 2);
  Coordinator coord(stream, structure, pool, display);
  coord.set_live(live);
  coord.set_max_open(max_open);
  ErrorLog errors;
  std::atomic<int> concealed_pics{0};
  coord.set_recovery(config_.quarantine_gops, &errors, &concealed_pics,
                     config_.watchdog_ns);
  const bool conceal_slices =
      config_.conceal_errors || config_.quarantine_gops;

  // Resolve metric instruments once; workers then only touch atomics.
  obs::Counter* m_tasks = nullptr;
  obs::Counter* m_concealed = nullptr;
  obs::Histogram* h_task = nullptr;
  obs::Histogram* h_wait = nullptr;
  obs::Histogram* h_resync = nullptr;
  if (config_.metrics) {
    m_tasks = &config_.metrics->counter("slice.tasks");
    m_concealed = &config_.metrics->counter("slice.concealed");
    h_task = &config_.metrics->histogram("slice.task_ns");
    h_wait = &config_.metrics->histogram("slice.queue_wait_ns");
    if (conceal_slices) {
      h_resync = &config_.metrics->histogram("recover.resync_bytes");
    }
    config_.metrics->counter("decode.bytes")
        .add(static_cast<std::int64_t>(stream.size()));
  }

  result.workers.resize(static_cast<std::size_t>(config_.workers));
  std::atomic<int> concealed{0};
  coord.set_conceal(conceal_slices, &concealed);
  // Thread ownership lives in WorkerPool (the src/serve extraction); the
  // claim loop below is unchanged from the jthread-vector days.
  WorkerPool worker_pool(config_.workers, [&](int w) {
        WorkerStats& stats = result.workers[static_cast<std::size_t>(w)];
        // Per-thread counters: bind() opens them on this thread and
        // installs the TLS hook the mpeg2 StageScopes read.
        obs::prof::WorkerProf* wprof =
            config_.prof ? config_.prof->bind(w) : nullptr;
        Coordinator::Claim claim;
        for (;;) {
          const std::int64_t wait_begin = tracer ? tracer->now_ns() : 0;
          const std::int64_t sync_before = stats.sync_ns;
          obs::SpanKind wait_kind = obs::SpanKind::kBarrierWait;
          const bool claimed =
              coord.claim(claim, stats.sync_ns, tracer ? &wait_kind : nullptr);
          if (tracer) {
            const std::int64_t wait_end = tracer->now_ns();
            if (wait_end - wait_begin >= kMinWaitSpanNs) {
              tracer->emit(w, wait_kind, wait_begin, wait_end);
            }
          }
          if (!claimed) break;
          if (h_wait) h_wait->record(stats.sync_ns - sync_before);
          const auto& slice_info =
              claim.pic->info->slices[static_cast<std::size_t>(claim.slice)];
          pmp2::BitReader br(stream);
          br.seek_bytes(slice_info.offset + 4);
          const std::int64_t task_begin = tracer ? tracer->now_ns() : 0;
          ThreadCpuTimer cpu;
          mpeg2::SliceResult r = mpeg2::decode_slice(
              br, slice_info.row, claim.pic->ctx, nullptr, w);
          const std::int64_t task_ns = cpu.elapsed_ns();
          stats.compute_ns += task_ns;
          stats.work += r.work;
          ++stats.tasks;
          if (tracer) {
            tracer->emit(w, obs::SpanKind::kSliceTask, task_begin,
                         tracer->now_ns(), claim.pic_index, claim.slice);
          }
          if (h_task) h_task->record(task_ns);
          if (m_tasks) m_tasks->add();
          bool concealed_this = false;
          if (!r.ok && conceal_slices) {
            // Patch the damaged rows from the forward reference and keep
            // the pipeline running.
            const std::int64_t conceal_begin =
                tracer ? tracer->now_ns() : 0;
            if (h_resync) {
              h_resync->record(static_cast<std::int64_t>(
                  mpeg2::resync_distance(stream, br.bit_position() / 8)));
            }
            mpeg2::conceal_slice(claim.pic->ctx, slice_info.row);
            concealed.fetch_add(1, std::memory_order_relaxed);
            if (config_.quarantine_gops) coord.note_concealed_slice(claim);
            if (tracer) {
              tracer->emit(w, obs::SpanKind::kConceal, conceal_begin,
                           tracer->now_ns(), claim.pic_index, claim.slice);
            }
            if (m_concealed) m_concealed->add();
            concealed_this = true;
            r.ok = true;
            // The whole row was just concealed: report it as covered.
            r.first_mb = slice_info.row * claim.pic->ctx.mb_width;
            r.last_mb = r.first_mb + claim.pic->ctx.mb_width - 1;
          }
          if (live) {
            obs::live::TelemetryCell::Write lw(live->worker(w));
            lw.add_tasks().add_busy_ns(task_ns).set_sync_ns(stats.sync_ns);
            if (concealed_this) lw.add_concealed(1);
            if (wprof) lw.add_counters(wprof->take_task_delta());
          }
          coord.finish_slice(claim, r.ok, w, r.first_mb, r.last_mb);
          if (!r.ok) break;
        }
        if (wprof) obs::prof::StageProfiler::unbind();
  });

  // --- Scan process, stage 2: stream GOPs in and append their pictures
  // (with decode-order dependencies) as each boundary is found, so the
  // workers decode while the scan is still walking later bytes. GopInfo
  // storage must be stable (Pic::info points into it), hence the deque.
  std::deque<mpeg2::GopInfo> gops;
  bool scan_ok = true;
  int total_pictures = 0;
  {
    int display_base = 0;
    int older = -1, newest = -1;
    int gop_index = 0;
    // Appends one (possibly partial) GOP's pictures with decode-order
    // dependencies. Under quarantine, display indices come from
    // display_ranks: a gap-free permutation even when the scanned
    // temporal_references are damaged, so the display always terminates.
    const auto append_gop = [&](const mpeg2::GopInfo& g) {
      std::vector<Pic> batch;
      batch.reserve(g.pictures.size());
      std::vector<int> ranks;
      if (config_.quarantine_gops) ranks = mpeg2::display_ranks(g);
      for (std::size_t i = 0; i < g.pictures.size(); ++i) {
        const auto& info = g.pictures[i];
        Pic pic;
        pic.info = &info;
        pic.gop = gop_index;
        pic.display_index =
            display_base + (config_.quarantine_gops
                                ? ranks[i]
                                : info.temporal_reference);
        const int index = total_pictures + static_cast<int>(batch.size());
        if (config_.policy == SlicePolicy::kSimple) {
          // Barrier at every picture: depend on the predecessor.
          pic.deps[0] = index - 1;
        } else {
          switch (info.type) {
            case mpeg2::PictureType::kI:
              break;  // no dependency
            case mpeg2::PictureType::kP:
              pic.deps[0] = newest;
              break;
            case mpeg2::PictureType::kB:
              pic.deps[0] = older;
              pic.deps[1] = newest;
              break;
          }
        }
        if (info.type != mpeg2::PictureType::kB) {
          older = newest;
          newest = index;
        }
        batch.push_back(pic);
      }
      display_base += static_cast<int>(g.pictures.size());
      if (live) {
        live->add_queue_depth(static_cast<std::int64_t>(g.pictures.size()));
      }
      total_pictures = coord.append(std::move(batch));
      if (live) {
        obs::live::TelemetryCell::Write lw(live->scan());
        lw.add_tasks()
            .set_bytes(static_cast<std::int64_t>(scanner.position()))
            .set_last_progress_ns(live->now_ns());
      }
      ++gop_index;
    };
    for (;;) {
      if (coord.aborted()) break;
      WallTimer gop_timer;
      span_begin = tracer ? tracer->now_ns() : 0;
      mpeg2::GopInfo gop;
      bool have;
      {
        obs::prof::StageScope scan_stage(obs::prof::Stage::kScan);
        have = scanner.next_gop(gop);
      }
      scan_s += gop_timer.elapsed_s();
      if (tracer) {
        tracer->emit(config_.workers, obs::SpanKind::kScan, span_begin,
                     tracer->now_ns(), -1, -1, gop_index);
      }
      if (!have) {
        scan_ok = !scanner.failed() && gop_index > 0;
        if (scanner.failed() && config_.quarantine_gops) {
          // Bounded recovery: a scan failure mid-stream keeps the scanned
          // prefix. A partial final GOP still decodes what it indexed.
          errors.add({RecoveryCause::kScanTruncated, gop_index, -1,
                      scanner.position()});
          if (scanner.failed_in_gop() && !gop.pictures.empty()) {
            gops.push_back(std::move(gop));
            append_gop(gops.back());
          }
          scan_ok = total_pictures > 0;
        }
        break;
      }
      gops.push_back(std::move(gop));
      append_gop(gops.back());
    }
  }
  if (scan_prof) {
    if (live) {
      obs::live::TelemetryCell::Write lw(live->scan());
      lw.add_counters(scan_prof->take_task_delta());
    }
    obs::prof::StageProfiler::unbind();
  }
  coord.finish_scan(scan_ok);
  display.set_total(total_pictures);
  result.scan_s = scan_s;
  result.pictures = total_pictures;
  if (config_.metrics) {
    config_.metrics->counter("decode.pictures").add(total_pictures);
  }

  worker_pool.join();
  result.concealed_slices = concealed.load(std::memory_order_relaxed);
  result.concealed_pictures = concealed_pics.load(std::memory_order_relaxed);
  result.quarantined_gops = coord.damaged_gop_count();
  result.hung = coord.hung();
  if (result.hung) {
    result.hang.where = "coordinator";
    result.hang.waited_ns = config_.watchdog_ns;
    result.hang.epoch = static_cast<std::int64_t>(coord.epoch());
    result.hang.pictures_delivered = display.emitted();
    result.hang.pictures_indexed = total_pictures;
  }
  errors.drain(result.errors, result.errors_dropped);
  result.pool_hits = pool.hits();
  result.pool_misses = pool.misses();
  const auto record_recovery_metrics = [&] {
    if (!config_.metrics) return;
    config_.metrics->counter("slice.pool_hits")
        .add(static_cast<std::int64_t>(result.pool_hits));
    config_.metrics->counter("slice.pool_misses")
        .add(static_cast<std::int64_t>(result.pool_misses));
    config_.metrics->counter("recover.concealed_slices")
        .add(result.concealed_slices);
    config_.metrics->counter("recover.concealed_pictures")
        .add(result.concealed_pictures);
    config_.metrics->counter("recover.quarantined_gops")
        .add(result.quarantined_gops);
    config_.metrics->counter("recover.errors").add(
        static_cast<std::int64_t>(result.errors.size()) +
        result.errors_dropped);
  };

  if (coord.aborted()) {
    // Failed runs still report their timing/memory so harnesses can log
    // something consistent.
    result.wall_s = total_timer.elapsed_s();
    if (config_.tracker) {
      result.peak_frame_bytes = config_.tracker->peak_bytes();
    }
    derive_idle(result);
    record_recovery_metrics();
    return result;
  }
  if (!display.wait_done_for(config_.watchdog_ns)) {
    // Watchdog: the pipeline stopped delivering pictures. Fail the run
    // (never hang) and record what fired.
    result.hung = true;
    result.hang.where = "display";
    result.hang.waited_ns = config_.watchdog_ns;
    result.hang.epoch = static_cast<std::int64_t>(coord.epoch());
    result.hang.pictures_delivered = display.emitted();
    result.hang.pictures_indexed = total_pictures;
    result.errors.push_back({RecoveryCause::kDisplayTimeout, -1, -1, 0});
    result.wall_s = total_timer.elapsed_s();
    if (config_.tracker) {
      result.peak_frame_bytes = config_.tracker->peak_bytes();
    }
    derive_idle(result);
    record_recovery_metrics();
    return result;
  }

  result.wall_s = total_timer.elapsed_s();
  result.checksum = display.checksum();
  if (config_.tracker) {
    result.peak_frame_bytes = config_.tracker->peak_bytes();
  }
  derive_idle(result);
  record_recovery_metrics();
  result.ok = true;
  return result;
}

}  // namespace pmp2::parallel
