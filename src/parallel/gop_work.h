// Whole-GOP decode core shared by the GOP-parallel decoder and the
// adaptive hybrid decoder (src/parallel/adaptive). A closed GOP decodes
// end to end with private reference frames; with quarantine on, every
// undecodable picture is synthesized (concealed) so the GOP still delivers
// its full picture count and sibling GOPs stay untouched. Keeping this in
// one translation unit is what makes the adaptive decoder's throughput
// mode bit-exact with the fixed GOP decoder by construction.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>

#include "mpeg2/decoder.h"
#include "mpeg2/frame.h"
#include "parallel/display.h"
#include "parallel/stats.h"

namespace pmp2::obs {
class Histogram;
class Tracer;
}

namespace pmp2::obs::live {
class LiveTelemetry;
}

namespace pmp2::parallel {

struct GopTask {
  const mpeg2::GopInfo* info = nullptr;
  int index = 0;         // GOP ordinal within the stream
  int display_base = 0;  // global display index of this GOP's first picture
  int decode_base = 0;   // global decode index of this GOP's first picture
};

/// Per-run observability/recovery context shared by the GOP workers.
struct GopObs {
  obs::Tracer* tracer = nullptr;
  bool conceal_errors = false;
  bool quarantine = false;
  std::atomic<int>* concealed = nullptr;
  std::atomic<int>* concealed_pics = nullptr;
  std::atomic<int>* quarantined = nullptr;
  ErrorLog* errors = nullptr;
  obs::Histogram* h_resync = nullptr;
  obs::live::LiveTelemetry* live = nullptr;
};

/// Quarantine fallback for one undecodable picture: synthesize a concealed
/// frame (copy of `ref`, mid-gray without one) so the pipeline still
/// delivers a frame for every indexed picture.
[[nodiscard]] mpeg2::FramePtr conceal_whole_picture(
    const mpeg2::StreamStructure& structure, const mpeg2::PictureInfo& info,
    int display_index, const mpeg2::FramePtr& ref, mpeg2::FramePool& pool);

/// Result of decoding (or quarantining) one picture of a closed GOP.
struct PictureOutcome {
  mpeg2::FramePtr frame;     // null only when recovery is off and decode
                             // failed (the caller must fail the run)
  bool quarantined = false;  // the whole picture was synthesized
  int concealed_slices = 0;  // slices concealed within a successful decode
};

/// Decodes one picture with explicit GOP-private references, pushing the
/// finished (or concealed) frame to the display sink. `fwd_ref`/`bwd_ref`
/// follow decode_gop's rolling convention: bwd = newest reference before
/// this picture, fwd = the one before that (P predicts from bwd; B from
/// fwd and bwd; quarantine conceals from bwd, falling back to fwd). With
/// quarantine on, `ranked_display_index` carries the display_ranks()-based
/// slot; otherwise the parsed temporal reference decides. Both the
/// sequential GOP task loop and the adaptive decoder's exploded path call
/// this one function, which is what keeps them byte-identical per picture.
[[nodiscard]] PictureOutcome decode_one_picture(
    std::span<const std::uint8_t> stream,
    const mpeg2::StreamStructure& structure, const mpeg2::PictureInfo& info,
    int gop_index, int pic_index, int display_base, int ranked_display_index,
    const mpeg2::FramePtr& fwd_ref, const mpeg2::FramePtr& bwd_ref,
    mpeg2::FramePool& pool, DisplaySink& display, WorkerStats& stats,
    const GopObs& gobs, int worker);

/// Decodes one closed GOP with private reference state. Frames come from
/// the shared pool; finished pictures go straight to the display sink.
/// Returns false only when recovery is off (gobs.quarantine clear); with
/// quarantine every picture is delivered, concealed where undecodable.
[[nodiscard]] bool decode_gop(std::span<const std::uint8_t> stream,
                              const mpeg2::StreamStructure& structure,
                              const GopTask& task, mpeg2::FramePool& pool,
                              DisplaySink& display, WorkerStats& stats,
                              const GopObs& gobs, int worker);

}  // namespace pmp2::parallel
