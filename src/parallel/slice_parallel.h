// Fine-grained parallel decoder: one task per slice (paper §5.2).
//
// A 2-D task structure (pictures -> slices) feeds the workers, as in the
// paper. Two scheduling policies:
//
//  * kSimple   — all workers decode slices of the current picture and
//    synchronize at *every* picture boundary. Speedup is limited by
//    ceil(slices / P) steps per picture (the "knees" of Fig. 11; 352x240 has
//    15 slices, so no gain past 8 workers).
//  * kImproved — workers synchronize only where a data dependency exists:
//    a picture may open as soon as its reference pictures are complete, so
//    consecutive B pictures (and the next reference) decode concurrently.
//    This is the paper's "synchronize only at the end of I/P pictures".
//
// Correctness relies on the standard's slice independence: predictors reset
// at slice start, and distinct slices write disjoint macroblock rows.
// Memory stays at a handful of pictures regardless of worker count or GOP
// size — the paper's headline advantage over the GOP decoder — and closed
// GOPs are NOT required.
#pragma once

#include <cstdint>
#include <span>

#include "mpeg2/decoder.h"
#include "mpeg2/frame.h"
#include "parallel/display.h"
#include "parallel/stats.h"

namespace pmp2::obs {
class Registry;
class Tracer;
}

namespace pmp2::obs::live {
class LiveTelemetry;
}

namespace pmp2::obs::prof {
class StageProfiler;
}

namespace pmp2::parallel {

enum class SlicePolicy {
  kSimple,    // barrier at every picture
  kImproved,  // dependency-based: sync only at reference pictures
};

struct SliceDecoderConfig {
  int workers = 4;
  SlicePolicy policy = SlicePolicy::kImproved;
  /// Maximum pictures open (being decoded) at once in the improved policy;
  /// bounds memory. The simple policy always has exactly 1.
  int max_open_pictures = 3;
  /// Conceal corrupt slices (copy from the forward reference) instead of
  /// aborting — keeps real-time playback going through bitstream damage.
  bool conceal_errors = false;
  /// Bounded recovery (docs/ROBUSTNESS.md): unparseable or reference-less
  /// pictures become whole concealed frames instead of aborting the run,
  /// damage is logged per GOP in RunResult::errors, and a truncated
  /// structure scan keeps the scanned prefix. Implies conceal_errors.
  /// With closed GOPs every undamaged GOP decodes bit-exact (references
  /// never cross a closed-GOP boundary).
  bool quarantine_gops = false;
  /// Coordinator watchdog: if no scheduling progress happens for this
  /// long while work is outstanding, the run aborts (RunResult::hung)
  /// instead of deadlocking on a poisoned task. 0 = off.
  std::int64_t watchdog_ns = 0;
  mpeg2::MemoryTracker* tracker = nullptr;
  /// Optional span tracer: needs `workers + 1` tracks (track w = worker w,
  /// track `workers` = the scan process). Null = zero-cost no-op.
  obs::Tracer* tracer = nullptr;
  /// Optional counter/histogram registry ("slice.*" instruments).
  obs::Registry* metrics = nullptr;
  /// Optional live telemetry surface (docs/OBSERVABILITY.md, "Live
  /// telemetry"): per-worker cells, scan/display cells, open-picture depth
  /// and the shared frame-latency histogram, updated in flight. Must be
  /// sized with at least `workers` worker cells — an undersized instance
  /// is ignored rather than written out of range. Null = zero cost.
  obs::live::LiveTelemetry* live = nullptr;
  /// Optional hardware-counter stage profiler (docs/OBSERVABILITY.md,
  /// "Hardware profiling"): needs `workers + 1` slots (slot w = worker w,
  /// slot `workers` = the scan process). Workers bind per-thread counters
  /// and the mpeg2 core attributes them per stage; per-task counter
  /// deltas flow into `live` when both are set. Null = zero cost.
  obs::prof::StageProfiler* prof = nullptr;
};

class SliceParallelDecoder {
 public:
  explicit SliceParallelDecoder(const SliceDecoderConfig& config)
      : config_(config) {}

  [[nodiscard]] RunResult decode(std::span<const std::uint8_t> stream,
                                 const FrameCallback& on_frame = {});

 private:
  SliceDecoderConfig config_;
};

}  // namespace pmp2::parallel
