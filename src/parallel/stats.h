// Per-worker and per-run statistics for the parallel decoders, matching the
// quantities the paper reports: compute time, synchronization/queue wait
// time, per-worker task counts, decoded pictures/sec, and peak memory.
#pragma once

#include <cstdint>
#include <vector>

#include "mpeg2/frame.h"
#include "mpeg2/types.h"

namespace pmp2::parallel {

struct WorkerStats {
  std::int64_t compute_ns = 0;  // thread CPU time spent decoding
  std::int64_t sync_ns = 0;     // wall time blocked on queues/dependencies
  std::uint64_t tasks = 0;      // GOPs or slices completed
  mpeg2::WorkMeter work;
};

struct RunResult {
  bool ok = false;
  double wall_s = 0.0;      // total decode wall time (excluding nothing)
  double scan_s = 0.0;      // time the scan pass took
  int pictures = 0;
  std::uint64_t checksum = 0;  // order-sensitive digest of display output
  std::int64_t peak_frame_bytes = 0;  // high-water frame memory
  int concealed_slices = 0;  // slices patched by error concealment
  std::vector<WorkerStats> workers;

  [[nodiscard]] double pictures_per_second() const {
    return wall_s > 0 ? pictures / wall_s : 0.0;
  }
};

/// Order-sensitive FNV-1a over a frame's display-area pels, chained with a
/// running digest. Every decoder variant must produce the same final value.
[[nodiscard]] std::uint64_t chain_frame_checksum(std::uint64_t digest,
                                                 const mpeg2::Frame& frame);

}  // namespace pmp2::parallel
