// Per-worker and per-run statistics for the parallel decoders, matching the
// quantities the paper reports: compute time, synchronization/queue wait
// time, per-worker task counts, decoded pictures/sec, and peak memory.
//
// WorkerLoadSummary is the single place load-balance and synchronization
// metrics (Figs. 6/12) are derived: both the real decoders (WorkerStats)
// and the virtual-time simulator (SimWorkerStats) feed their per-worker
// busy/sync vectors through summarize_load() instead of re-deriving
// max/mean imbalance ad hoc in each bench binary.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpeg2/frame.h"
#include "mpeg2/types.h"

namespace pmp2::parallel {

struct WorkerStats {
  std::int64_t compute_ns = 0;  // thread CPU time spent decoding
  std::int64_t sync_ns = 0;     // wall time blocked on queues/dependencies
  std::int64_t idle_ns = 0;     // run wall time minus compute minus sync
                                // (derived once the run finishes)
  std::uint64_t tasks = 0;      // GOPs or slices completed
  mpeg2::WorkMeter work;
};

struct RunResult {
  bool ok = false;
  double wall_s = 0.0;      // total decode wall time (excluding nothing)
  double scan_s = 0.0;      // time the scan pass took
  int pictures = 0;
  std::uint64_t checksum = 0;  // order-sensitive digest of display output
  std::uint64_t stream_bytes = 0;         // coded bytes decoded
  std::int64_t peak_frame_bytes = 0;  // high-water frame memory
  int concealed_slices = 0;  // slices patched by error concealment
  std::vector<WorkerStats> workers;

  [[nodiscard]] double pictures_per_second() const {
    return wall_s > 0 ? pictures / wall_s : 0.0;
  }
  [[nodiscard]] double megabytes_per_second() const {
    return wall_s > 0 ? static_cast<double>(stream_bytes) / 1e6 / wall_s
                      : 0.0;
  }
};

/// Load-balance / synchronization metrics over one run's workers. Derived
/// in exactly one place (summarize_load) so every bench and report agrees
/// on the definitions:
///   imbalance   = max worker busy time / mean worker busy time
///   sync_ratio  = mean over workers of sync / (sync + busy)  (Fig. 12)
///   utilization = total busy / (total busy + sync + idle)
struct WorkerLoadSummary {
  int workers = 0;
  std::uint64_t tasks = 0;
  std::int64_t min_busy_ns = 0;
  std::int64_t max_busy_ns = 0;
  double avg_busy_ns = 0.0;
  std::int64_t total_busy_ns = 0;
  std::int64_t total_sync_ns = 0;
  std::int64_t total_idle_ns = 0;
  double imbalance = 0.0;
  double sync_ratio = 0.0;
  double utilization = 0.0;
};

/// Core derivation over parallel per-worker vectors. `idle_ns` and `tasks`
/// may be empty (treated as all-zero); the spans must otherwise share one
/// length.
[[nodiscard]] WorkerLoadSummary summarize_load(
    std::span<const std::int64_t> busy_ns,
    std::span<const std::int64_t> sync_ns,
    std::span<const std::int64_t> idle_ns = {},
    std::span<const std::uint64_t> tasks = {});

/// Convenience over a real-decoder run (busy = compute_ns).
[[nodiscard]] WorkerLoadSummary summarize_load(const RunResult& result);

/// Fills each worker's idle_ns from the run wall time:
/// idle = wall - compute - sync, clamped at zero. Called by both parallel
/// decoders after joining their workers.
void derive_idle(RunResult& result);

/// Order-sensitive FNV-1a over a frame's display-area pels, chained with a
/// running digest. Every decoder variant must produce the same final value.
[[nodiscard]] std::uint64_t chain_frame_checksum(std::uint64_t digest,
                                                 const mpeg2::Frame& frame);

}  // namespace pmp2::parallel
