// Per-worker and per-run statistics for the parallel decoders, matching the
// quantities the paper reports: compute time, synchronization/queue wait
// time, per-worker task counts, decoded pictures/sec, and peak memory.
//
// WorkerLoadSummary is the single place load-balance and synchronization
// metrics (Figs. 6/12) are derived: both the real decoders (WorkerStats)
// and the virtual-time simulator (SimWorkerStats) feed their per-worker
// busy/sync vectors through summarize_load() instead of re-deriving
// max/mean imbalance ad hoc in each bench binary.
#pragma once

#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "mpeg2/frame.h"
#include "mpeg2/types.h"

namespace pmp2::parallel {

struct WorkerStats {
  std::int64_t compute_ns = 0;  // thread CPU time spent decoding
  std::int64_t sync_ns = 0;     // wall time blocked on queues/dependencies
  std::int64_t idle_ns = 0;     // run wall time minus compute minus sync
                                // (derived once the run finishes)
  std::uint64_t tasks = 0;      // GOPs or slices completed
  // Work-stealing attribution (adaptive decoder): tasks this worker
  // executed that another worker owned, and the compute time they took —
  // the "where did stolen work land" answer per worker.
  std::uint64_t stolen_tasks = 0;
  std::int64_t stolen_ns = 0;
  mpeg2::WorkMeter work;
};

/// Why a recovery action fired (docs/ROBUSTNESS.md's fault model).
enum class RecoveryCause : std::uint8_t {
  kSliceError,        // slice syntax error, concealed
  kPictureHeader,     // picture header/extension unparseable
  kMissingReference,  // P/B picture with no reference available
  kOpenGop,           // GOP decoder fed a non-closed GOP
  kScanTruncated,     // structure scan failed mid-stream; prefix kept
  kWatchdog,          // coordinator made no progress within the deadline
  kDisplayTimeout,    // display never received every picture
};

[[nodiscard]] std::string_view recovery_cause_name(RecoveryCause cause);

/// One bounded-recovery event. Coordinates are decode-order indices; -1
/// where the dimension does not apply.
struct ErrorRecord {
  RecoveryCause cause = RecoveryCause::kSliceError;
  int gop = -1;
  int picture = -1;  // decode-order picture index within the stream
  std::uint64_t byte_offset = 0;
};

/// Thread-safe, capped error-record collector shared by the workers of one
/// run. The cap bounds memory on 100%-corrupt input; overflow is counted.
class ErrorLog {
 public:
  static constexpr std::size_t kMaxRecords = 64;

  void add(const ErrorRecord& record) {
    const std::scoped_lock lock(mutex_);
    if (records_.size() < kMaxRecords) {
      records_.push_back(record);
    } else {
      ++dropped_;
    }
  }

  /// Moves the collected records out (call after the workers joined).
  void drain(std::vector<ErrorRecord>& records, int& dropped) {
    const std::scoped_lock lock(mutex_);
    records = std::move(records_);
    records_.clear();
    dropped = dropped_;
  }

 private:
  std::mutex mutex_;
  std::vector<ErrorRecord> records_;
  int dropped_ = 0;
};

/// Last-known pipeline state captured when a watchdog or display deadline
/// fires (RunResult::hung). The harnesses print this to stderr so a hung
/// run leaves evidence, not just a nonzero exit code.
struct HangEvidence {
  std::string where;           // "display" | "coordinator"
  std::int64_t waited_ns = 0;  // the deadline that expired
  std::int64_t epoch = -1;     // coordinator scheduling epoch (slice decoder)
  int pictures_delivered = 0;  // emitted in display order before the stall
  int pictures_indexed = 0;    // pictures the scan had indexed by then
  [[nodiscard]] std::string to_string() const;
};

struct RunResult {
  bool ok = false;
  double wall_s = 0.0;      // total decode wall time (excluding nothing)
  double scan_s = 0.0;      // time the scan pass took
  int pictures = 0;
  std::uint64_t checksum = 0;  // order-sensitive digest of display output
  std::uint64_t stream_bytes = 0;         // coded bytes decoded
  std::int64_t peak_frame_bytes = 0;  // high-water frame memory
  int concealed_slices = 0;  // slices patched by error concealment
  int concealed_pictures = 0;  // whole pictures synthesized by quarantine
  int quarantined_gops = 0;  // distinct GOPs with at least one recovery
  bool hung = false;  // a watchdog/display deadline fired (run incomplete)
  HangEvidence hang;  // what the watchdog saw (meaningful only when hung)
  std::vector<ErrorRecord> errors;  // capped at ErrorLog::kMaxRecords
  int errors_dropped = 0;           // records beyond the cap
  std::vector<WorkerStats> workers;

  // Adaptive-granularity accounting (adaptive decoder only; zero
  // elsewhere): how the dispatch policy split the stream, and how much
  // work moved between workers.
  int gop_mode_gops = 0;       // GOPs decoded whole (throughput mode)
  int exploded_gops = 0;       // GOPs exploded into slice batches
  std::uint64_t stolen_tasks = 0;  // sum over workers of stolen_tasks
  // Frame-pool effectiveness (reserve() warm-allocation paths).
  std::uint64_t pool_hits = 0;
  std::uint64_t pool_misses = 0;

  /// Completed despite damage: ok with recovery events recorded.
  [[nodiscard]] bool degraded() const {
    return concealed_slices > 0 || concealed_pictures > 0 || !errors.empty();
  }

  [[nodiscard]] double pictures_per_second() const {
    return wall_s > 0 ? pictures / wall_s : 0.0;
  }
  [[nodiscard]] double megabytes_per_second() const {
    return wall_s > 0 ? static_cast<double>(stream_bytes) / 1e6 / wall_s
                      : 0.0;
  }
};

/// Load-balance / synchronization metrics over one run's workers. Derived
/// in exactly one place (summarize_load) so every bench and report agrees
/// on the definitions:
///   imbalance   = max worker busy time / mean worker busy time
///   sync_ratio  = mean over workers of sync / (sync + busy)  (Fig. 12)
///   utilization = total busy / (total busy + sync + idle)
struct WorkerLoadSummary {
  int workers = 0;
  std::uint64_t tasks = 0;
  std::int64_t min_busy_ns = 0;
  std::int64_t max_busy_ns = 0;
  double avg_busy_ns = 0.0;
  std::int64_t total_busy_ns = 0;
  std::int64_t total_sync_ns = 0;
  std::int64_t total_idle_ns = 0;
  double imbalance = 0.0;
  double sync_ratio = 0.0;
  double utilization = 0.0;
};

/// Core derivation over parallel per-worker vectors. `idle_ns` and `tasks`
/// may be empty (treated as all-zero); the spans must otherwise share one
/// length.
[[nodiscard]] WorkerLoadSummary summarize_load(
    std::span<const std::int64_t> busy_ns,
    std::span<const std::int64_t> sync_ns,
    std::span<const std::int64_t> idle_ns = {},
    std::span<const std::uint64_t> tasks = {});

/// Convenience over a real-decoder run (busy = compute_ns).
[[nodiscard]] WorkerLoadSummary summarize_load(const RunResult& result);

/// Fills each worker's idle_ns from the run wall time:
/// idle = wall - compute - sync, clamped at zero. Called by both parallel
/// decoders after joining their workers.
void derive_idle(RunResult& result);

/// Order-sensitive FNV-1a over a frame's display-area pels, chained with a
/// running digest. Every decoder variant must produce the same final value.
[[nodiscard]] std::uint64_t chain_frame_checksum(std::uint64_t digest,
                                                 const mpeg2::Frame& frame);

}  // namespace pmp2::parallel
