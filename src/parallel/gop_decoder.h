// Coarse-grained parallel decoder: one task per closed GOP (paper §5.1).
//
// Architecture (paper Fig. 4): a scan process locates GOP boundaries by
// startcode scanning and enqueues GOP tasks; worker processes each dequeue
// a GOP and decode it end to end with private reference frames; a display
// process reorders finished pictures into display order. There is no
// inter-worker communication other than the task queue — the paper's reason
// for this design — at the cost of memory that grows with workers x GOP
// size x picture size and poor random-access latency.
#pragma once

#include <cstdint>
#include <span>

#include "mpeg2/decoder.h"
#include "mpeg2/frame.h"
#include "parallel/display.h"
#include "parallel/stats.h"

namespace pmp2::obs {
class Registry;
class Tracer;
}

namespace pmp2::obs::live {
class LiveTelemetry;
}

namespace pmp2::obs::prof {
class StageProfiler;
}

namespace pmp2::parallel {

struct GopDecoderConfig {
  int workers = 4;
  /// Maximum GOP tasks queued ahead of the workers; 0 = unbounded (the
  /// paper's configuration — see Figs. 8/9 for the memory consequence).
  std::size_t max_queued_gops = 0;
  /// Conceal corrupt slices (copy from the forward reference) instead of
  /// aborting, as in the slice decoder; reported in
  /// RunResult::concealed_slices.
  bool conceal_errors = false;
  /// Bounded recovery (docs/ROBUSTNESS.md): a corrupt GOP is quarantined —
  /// unparseable or reference-less pictures become concealed frames, the
  /// damage is logged in RunResult::errors, and every *other* GOP decodes
  /// bit-exact (workers keep private reference state per GOP, so the blast
  /// radius of any fault is one GOP). Implies conceal_errors. A truncated
  /// structure scan keeps the scanned prefix instead of failing the run.
  bool quarantine_gops = false;
  /// Watchdog: fail the run (RunResult::hung) instead of blocking forever
  /// if the display stops receiving pictures for this long. 0 = off.
  std::int64_t watchdog_ns = 0;
  /// Tracks frame-buffer bytes (for the Fig. 8 memory measurements).
  mpeg2::MemoryTracker* tracker = nullptr;
  /// Optional span tracer: needs `workers + 1` tracks (track w = worker w,
  /// track `workers` = the scan process). Null = zero-cost no-op.
  obs::Tracer* tracer = nullptr;
  /// Optional counter/histogram registry ("gop.*" instruments).
  obs::Registry* metrics = nullptr;
  /// Optional live telemetry surface (docs/OBSERVABILITY.md, "Live
  /// telemetry"): per-worker cells, scan/display cells, queue depth and
  /// the shared frame-latency histogram, updated in flight. Must be sized
  /// with at least `workers` worker cells — an undersized instance is
  /// ignored rather than written out of range. Null = zero cost.
  obs::live::LiveTelemetry* live = nullptr;
  /// Optional hardware-counter stage profiler (docs/OBSERVABILITY.md,
  /// "Hardware profiling"): needs `workers + 1` slots (slot w = worker w,
  /// slot `workers` = the scan process). Workers bind per-thread counters
  /// and the mpeg2 core attributes them per stage; per-task counter
  /// deltas flow into `live` when both are set. Null = zero cost.
  obs::prof::StageProfiler* prof = nullptr;
};

class GopParallelDecoder {
 public:
  explicit GopParallelDecoder(const GopDecoderConfig& config)
      : config_(config) {}

  /// Decodes the elementary stream with `config_.workers` worker threads
  /// plus a scan and a display role. Requires closed GOPs (the encoder's
  /// output); returns ok = false otherwise. Frames are delivered in display
  /// order through `on_frame` (may be empty).
  [[nodiscard]] RunResult decode(std::span<const std::uint8_t> stream,
                                 const FrameCallback& on_frame = {});

 private:
  GopDecoderConfig config_;
};

}  // namespace pmp2::parallel
