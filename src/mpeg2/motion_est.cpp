#include "mpeg2/motion_est.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "mpeg2/kernels/kernels.h"
#include "mpeg2/motion.h"

namespace pmp2::mpeg2 {

namespace {

/// True iff every sample the half-pel vector needs lies inside the coded
/// picture.
bool mv_in_bounds(const Frame& ref, int mb_x, int mb_y, MotionVector mv) {
  const int x = mb_x * 16 + (mv.x >> 1);
  const int y = mb_y * 16 + (mv.y >> 1);
  const int extra_x = (mv.x & 1) ? 1 : 0;
  const int extra_y = (mv.y & 1) ? 1 : 0;
  return x >= 0 && y >= 0 && x + 16 + extra_x <= ref.y_stride() &&
         y + 16 + extra_y <= ref.coded_height();
}

}  // namespace

int mb_sad(const Frame& ref, const Frame& cur, int mb_x, int mb_y,
           MotionVector mv) {
  const int x = mb_x * 16;
  const int y = mb_y * 16;
  const int sx = x + (mv.x >> 1);
  const int sy = y + (mv.y >> 1);
  const int rs = ref.y_stride();
  const int cs = cur.y_stride();
  const std::uint8_t* r = ref.y() + sy * rs + sx;
  const std::uint8_t* c = cur.y() + y * cs + x;
  return kernels::active().sad16(r, rs, c, cs, (mv.x & 1) != 0,
                                 (mv.y & 1) != 0);
}

namespace {

/// Evaluates a full-pel candidate (vector in half-pel units, even
/// components), keeping the best.
void try_candidate(const Frame& ref, const Frame& cur, int mb_x, int mb_y,
                   MotionVector mv, MeResult& best) {
  if (!mv_in_bounds(ref, mb_x, mb_y, mv)) return;
  const int sad = mb_sad(ref, cur, mb_x, mb_y, mv);
  // Strict improvement plus a mild zero bias keeps vectors stable.
  if (sad < best.sad) {
    best.sad = sad;
    best.mv = mv;
  }
}

MeResult half_pel_refine(const Frame& ref, const Frame& cur, int mb_x,
                         int mb_y, MeResult best) {
  const MotionVector center = best.mv;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      const MotionVector mv{static_cast<std::int16_t>(center.x + dx),
                            static_cast<std::int16_t>(center.y + dy)};
      try_candidate(ref, cur, mb_x, mb_y, mv, best);
    }
  }
  return best;
}

}  // namespace

MeResult estimate_motion(const Frame& ref, const Frame& cur, int mb_x,
                         int mb_y, int range, MotionVector seed) {
  MeResult best;
  best.mv = {};
  best.sad = std::numeric_limits<int>::max();
  try_candidate(ref, cur, mb_x, mb_y, {}, best);
  // Clamp the seed to the search window and full-pel grid.
  MotionVector s{
      static_cast<std::int16_t>(std::clamp<int>(seed.x & ~1, -2 * range,
                                                2 * range)),
      static_cast<std::int16_t>(std::clamp<int>(seed.y & ~1, -2 * range,
                                                2 * range))};
  try_candidate(ref, cur, mb_x, mb_y, s, best);

  for (int step = range >= 4 ? 4 : (range >= 2 ? 2 : 1); step >= 1;
       step /= 2) {
    bool improved = true;
    while (improved) {
      improved = false;
      const MotionVector center = best.mv;
      for (int dy = -step; dy <= step; dy += step) {
        for (int dx = -step; dx <= step; dx += step) {
          if (dx == 0 && dy == 0) continue;
          const int nx = center.x + 2 * dx;
          const int ny = center.y + 2 * dy;
          if (nx < -2 * range || nx > 2 * range || ny < -2 * range ||
              ny > 2 * range) {
            continue;
          }
          const int before = best.sad;
          try_candidate(ref, cur, mb_x, mb_y,
                        {static_cast<std::int16_t>(nx),
                         static_cast<std::int16_t>(ny)},
                        best);
          if (best.sad < before) improved = true;
        }
      }
    }
  }
  return half_pel_refine(ref, cur, mb_x, mb_y, best);
}

MeResult estimate_motion_exhaustive(const Frame& ref, const Frame& cur,
                                    int mb_x, int mb_y, int range) {
  MeResult best;
  best.mv = {};
  best.sad = std::numeric_limits<int>::max();
  for (int dy = -range; dy <= range; ++dy) {
    for (int dx = -range; dx <= range; ++dx) {
      try_candidate(ref, cur, mb_x, mb_y,
                    {static_cast<std::int16_t>(2 * dx),
                     static_cast<std::int16_t>(2 * dy)},
                    best);
    }
  }
  return half_pel_refine(ref, cur, mb_x, mb_y, best);
}

namespace {

/// SAD of a 16x8 field region against a half-pel position in the
/// reference field.
int field_sad(const Frame& ref, const Frame& cur, int mb_x, int mb_y,
              int dest_parity, int src_parity, MotionVector mv) {
  const int stride = ref.y_stride();
  const int x = mb_x * 16;
  const int yf = mb_y * 8;
  const std::uint8_t* c = cur.y() + (2 * yf + dest_parity) * stride + x;
  const int sx = x + (mv.x >> 1);
  const int sy = yf + (mv.y >> 1);
  const bool hx = (mv.x & 1) != 0;
  const bool hy = (mv.y & 1) != 0;
  const std::uint8_t* r =
      ref.y() + src_parity * stride + sy * 2 * stride + sx;
  const int rs = 2 * stride;
  int sad = 0;
  for (int row = 0; row < 8; ++row) {
    const std::uint8_t* rr = r + row * rs;
    const std::uint8_t* cc = c + row * rs;
    for (int col = 0; col < 16; ++col) {
      int pel;
      if (!hx && !hy) {
        pel = rr[col];
      } else if (hx && !hy) {
        pel = (rr[col] + rr[col + 1] + 1) >> 1;
      } else if (!hx && hy) {
        pel = (rr[col] + rr[col + rs] + 1) >> 1;
      } else {
        pel = (rr[col] + rr[col + 1] + rr[col + rs] + rr[col + rs + 1] + 2) >>
              2;
      }
      sad += pel > cc[col] ? pel - cc[col] : cc[col] - pel;
    }
  }
  return sad;
}

bool field_mv_in_bounds(const Frame& ref, int mb_x, int mb_y,
                        MotionVector mv) {
  const int x = mb_x * 16 + (mv.x >> 1);
  const int yf = mb_y * 8 + (mv.y >> 1);
  return x >= 0 && yf >= 0 &&
         x + 16 + ((mv.x & 1) ? 1 : 0) <= ref.y_stride() &&
         yf + 8 + ((mv.y & 1) ? 1 : 0) <= ref.coded_height() / 2;
}

}  // namespace

MeResult estimate_motion_field(const Frame& ref, const Frame& cur, int mb_x,
                               int mb_y, int dest_parity, int src_parity,
                               int range) {
  MeResult best;
  best.mv = {};
  best.sad = std::numeric_limits<int>::max();
  auto try_mv = [&](MotionVector mv) {
    if (!field_mv_in_bounds(ref, mb_x, mb_y, mv)) return;
    const int sad = field_sad(ref, cur, mb_x, mb_y, dest_parity, src_parity,
                              mv);
    if (sad < best.sad) {
      best.sad = sad;
      best.mv = mv;
    }
  };
  try_mv({});
  for (int step = range >= 4 ? 4 : (range >= 2 ? 2 : 1); step >= 1;
       step /= 2) {
    bool improved = true;
    while (improved) {
      improved = false;
      const MotionVector center = best.mv;
      for (int dy = -step; dy <= step; dy += step) {
        for (int dx = -step; dx <= step; dx += step) {
          if (dx == 0 && dy == 0) continue;
          const int nx = center.x + 2 * dx;
          const int ny = center.y + 2 * dy;
          if (nx < -2 * range || nx > 2 * range || ny < -2 * range ||
              ny > 2 * range) {
            continue;
          }
          const int before = best.sad;
          try_mv({static_cast<std::int16_t>(nx),
                  static_cast<std::int16_t>(ny)});
          if (best.sad < before) improved = true;
        }
      }
    }
  }
  const MotionVector center = best.mv;
  for (int dy = -1; dy <= 1; ++dy) {
    for (int dx = -1; dx <= 1; ++dx) {
      if (dx == 0 && dy == 0) continue;
      try_mv({static_cast<std::int16_t>(center.x + dx),
              static_cast<std::int16_t>(center.y + dy)});
    }
  }
  return best;
}

int intra_activity(const Frame& cur, int mb_x, int mb_y) {
  const int x = mb_x * 16;
  const int y = mb_y * 16;
  const int cs = cur.y_stride();
  const std::uint8_t* c = cur.y() + y * cs + x;
  int sum = 0;
  for (int row = 0; row < 16; ++row) {
    for (int col = 0; col < 16; ++col) sum += c[row * cs + col];
  }
  const int mean = (sum + 128) >> 8;
  int sad = 0;
  for (int row = 0; row < 16; ++row) {
    for (int col = 0; col < 16; ++col) {
      const int d = c[row * cs + col] - mean;
      sad += d < 0 ? -d : d;
    }
  }
  return sad;
}

bool prefer_field_dct(const Frame& cur, int mb_x, int mb_y) {
  const int stride = cur.y_stride();
  const std::uint8_t* c = cur.y() + mb_y * 16 * stride + mb_x * 16;
  long frame_diff = 0, field_diff = 0;
  for (int row = 0; row < 15; ++row) {
    for (int col = 0; col < 16; ++col) {
      frame_diff += std::abs(static_cast<int>(c[row * stride + col]) -
                             c[(row + 1) * stride + col]);
    }
  }
  for (int row = 0; row < 14; ++row) {
    for (int col = 0; col < 16; ++col) {
      field_diff += std::abs(static_cast<int>(c[row * stride + col]) -
                             c[(row + 2) * stride + col]);
    }
  }
  // Scale to the same comparison count.
  return field_diff * 15 < frame_diff * 14;
}

}  // namespace pmp2::mpeg2
