// MPEG-2 main-profile encoder.
//
// Produces the test streams of the paper's Table 1: progressive frame
// pictures, 4:2:0, one slice per macroblock row (as the MSSG encoder did),
// GOP structure I (B B P)* with configurable N (pictures/GOP) and M = 3
// (I/P distance), closed GOPs, and a simple proportional rate controller
// toward the target bit rate.
//
// Reference pictures are reconstructed through the *decoder's* own
// dequantize/IDCT/motion-compensation routines, so encoder and decoder
// never drift: a stream decoded by any decoder variant reproduces exactly
// the encoder's reconstruction.
#pragma once

#include <cstdint>
#include <vector>

#include "bitstream/bit_writer.h"
#include "mpeg2/frame.h"
#include "mpeg2/headers.h"
#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

struct EncoderConfig {
  int width = 352;
  int height = 240;
  int gop_size = 13;     // N: pictures per GOP (display order)
  int ip_distance = 3;   // M: distance between reference pictures
  int frame_rate_code = 5;  // 30 pictures/s
  std::int64_t bit_rate = 5'000'000;  // target bits/s
  bool rate_control = true;
  int base_qscale_code = 8;  // quantiser_scale_code when rate_control off
  int search_range = 7;      // full-pel motion search radius
  bool intra_vlc_format = false;  // use Table B-15 for intra blocks
  bool alternate_scan = false;
  int intra_dc_precision = 0;  // coded value 0..3 (8..11 bits)
  bool q_scale_type = false;   // non-linear quantiser_scale mapping
  /// Emit an MPEG-1 (ISO 11172-2) stream: no sequence/picture extensions,
  /// f_codes in the picture header, MPEG-1 escape-level coding, and the
  /// MPEG-2-only options above forced off.
  bool mpeg1 = false;
  /// Interlace coding tools (frame pictures with frame_pred_frame_dct = 0):
  /// per-macroblock field/frame DCT, and field/frame motion selection in P
  /// pictures. Use with an interlaced source (SceneConfig::interlaced).
  /// Forced off in MPEG-1 mode.
  bool interlaced_tools = false;
  bool top_field_first = true;
  /// Slices per macroblock row (>= 1). The paper's streams — like most —
  /// use one slice per row; more slices raise the fine-grained decoder's
  /// parallelism ceiling (Fig. 11's knees move right) at a small bit cost
  /// (headers + predictor resets).
  int slices_per_row = 1;
};

struct EncoderStats {
  int pictures = 0;
  int gops = 0;
  std::int64_t bits_total = 0;
  std::int64_t bits_by_type[4] = {0, 0, 0, 0};  // indexed by PictureType
  int pictures_by_type[4] = {0, 0, 0, 0};
  int intra_mbs = 0;
  int inter_mbs = 0;
  int skipped_mbs = 0;
  int field_motion_mbs = 0;  // interlaced tools: field-predicted MBs
  int field_dct_mbs = 0;     // interlaced tools: field-DCT MBs
};

class Encoder {
 public:
  explicit Encoder(const EncoderConfig& config);

  /// Appends one source frame in display order. The encoder pads the
  /// frame's coded border (edge replication) in place.
  void push_frame(FramePtr frame);

  /// Flushes the final (possibly partial) GOP, writes sequence_end_code
  /// and returns the elementary stream.
  [[nodiscard]] std::vector<std::uint8_t> finish();

  [[nodiscard]] const EncoderStats& stats() const { return stats_; }
  [[nodiscard]] const EncoderConfig& config() const { return config_; }

 private:
  void encode_gop();
  void encode_picture(const Frame& src, PictureType type, int temporal_ref,
                      const Frame* fwd, const Frame* bwd, Frame& recon);
  int current_qscale_code() const;
  void update_rate_control(std::int64_t picture_bits);

  EncoderConfig config_;
  int f_code_ = 1;
  BitWriter bw_;
  std::vector<FramePtr> gop_;  // pending display-order frames
  FramePool pool_;             // reconstruction frames
  EncoderStats stats_;
  double rate_ratio_ = 1.0;  // running produced/target bits ratio
  bool finished_ = false;
};

/// Replicates the right-most display column and bottom display row into the
/// coded (macroblock-padded) border of all three planes.
void pad_coded_border(Frame& frame);

}  // namespace pmp2::mpeg2
