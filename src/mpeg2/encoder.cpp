#include "mpeg2/encoder.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>

#include "mpeg2/dct.h"
#include "mpeg2/motion.h"
#include "mpeg2/motion_est.h"
#include "mpeg2/scan_quant.h"
#include "mpeg2/slice_decode.h"
#include "mpeg2/vlc_tables.h"

namespace pmp2::mpeg2 {

void pad_coded_border(Frame& frame) {
  for (int p = 0; p < 3; ++p) {
    const int stride = frame.stride(p);
    const int dw = p == 0 ? frame.width() : frame.width() / 2;
    const int dh = p == 0 ? frame.height() : frame.height() / 2;
    const int cw = stride;
    const int ch = p == 0 ? frame.coded_height() : frame.coded_height() / 2;
    std::uint8_t* pl = frame.plane(p);
    for (int y = 0; y < dh; ++y) {
      std::uint8_t* row = pl + y * stride;
      for (int x = dw; x < cw; ++x) row[x] = row[dw - 1];
    }
    for (int y = dh; y < ch; ++y) {
      std::memcpy(pl + y * stride, pl + (dh - 1) * stride,
                  static_cast<std::size_t>(stride));
    }
  }
}

namespace {

/// Per-slice encoding state; mirrors the decoder's SliceState transitions
/// exactly (that is what keeps differential coding consistent).
struct SliceEncState {
  int dc_pred[3];
  int pmv[2][2][2];  // [vector r][fwd/bwd s][x/y t], as in the decoder
  std::uint8_t prev_b_flags = 0;  // previous B macroblock's motion flags
  MotionVector prev_fwd{}, prev_bwd{};
  int skip_run = 0;

  explicit SliceEncState(int intra_dc_precision_coded) {
    reset_dc(intra_dc_precision_coded);
    reset_pmv();
  }
  void reset_dc(int prec) {
    dc_pred[0] = dc_pred[1] = dc_pred[2] = 128 << prec;
  }
  void reset_pmv() {
    for (auto& r : pmv) {
      for (auto& sv : r) sv[0] = sv[1] = 0;
    }
  }
};

/// 8x8 source pels (or residual vs a prediction) as doubles for the FDCT.
void load_block(const std::uint8_t* src, int src_stride,
                const std::uint8_t* pred, int pred_stride,
                std::array<double, 64>& out) {
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      const int s = src[r * src_stride + c];
      out[r * 8 + c] =
          pred ? s - static_cast<int>(pred[r * pred_stride + c]) : s;
    }
  }
}

/// Adds (non-intra) or stores (intra) an IDCT block into the recon frame —
/// identical arithmetic to the decoder's store_block. `dst` points at the
/// block's first pel; `stride` includes any field-line doubling.
void recon_block(std::uint8_t* dst, int stride, const Block& b, bool add) {
  for (int r = 0; r < 8; ++r) {
    std::uint8_t* row = dst + r * stride;
    const std::int16_t* src = b.data() + r * 8;
    for (int c = 0; c < 8; ++c) {
      row[c] = clamp_pel(add ? row[c] + src[c] : src[c]);
    }
  }
}

/// Emits the AC run/level sequence of a quantized block plus EOB.
/// `start_idx` is 1 for intra (DC handled separately) and 0 for non-intra;
/// `first_special` enables the non-intra first-coefficient short form.
void emit_ac(BitWriter& bw, const Block& q,
             const std::array<std::uint8_t, 64>& scan, bool table_one,
             int start_idx, bool first_special, bool mpeg1 = false) {
  int run = 0;
  bool first = first_special;
  for (int i = start_idx; i < 64; ++i) {
    const int level = q[scan[i]];
    if (level == 0) {
      ++run;
      continue;
    }
    const int mag = level < 0 ? -level : level;
    if (first && run == 0 && mag == 1) {
      bw.put_bit(1);
      bw.put_bit(level < 0);
    } else {
      const Code code = encode_dct_run_level(table_one, run, mag);
      if (code.len != 0) {
        code.put(bw);
        bw.put_bit(level < 0);
      } else {
        dct_escape_code().put(bw);
        bw.put(static_cast<std::uint32_t>(run), 6);
        if (mpeg1) {
          // MPEG-1 escape levels: 8-bit two's complement, or the 0x00 /
          // 0x80 marker plus 8 bits for |level| >= 128 (level <= 255).
          if (level > 0 && level < 128) {
            bw.put(static_cast<std::uint32_t>(level), 8);
          } else if (level < 0 && level > -128) {
            bw.put(static_cast<std::uint32_t>(level) & 0xFF, 8);
          } else if (level >= 128) {
            bw.put(0, 8);
            bw.put(static_cast<std::uint32_t>(level), 8);
          } else {
            bw.put(128, 8);
            bw.put(static_cast<std::uint32_t>(level + 256), 8);
          }
        } else {
          bw.put(static_cast<std::uint32_t>(level) & 0xFFF, 12);
        }
      }
    }
    first = false;
    run = 0;
  }
  dct_eob_code(table_one).put(bw);
}

/// MPEG-1 limits quantized levels to [-255, 255] (8/16-bit escapes).
void clamp_levels_mpeg1(Block& q) {
  for (auto& v : q) {
    if (v > 255) v = 255;
    if (v < -255) v = -255;
  }
}

/// Emits dct_dc_size + dc_differential and updates the predictor.
void emit_intra_dc(BitWriter& bw, bool luma, int qf_dc, int& pred) {
  int diff = qf_dc - pred;
  pred = qf_dc;
  int size = 0;
  for (int mag = diff < 0 ? -diff : diff; mag != 0; mag >>= 1) ++size;
  assert(size <= 11);
  encode_dct_dc_size(luma, size).put(bw);
  if (size > 0) {
    const int bits = diff > 0 ? diff : diff + (1 << size) - 1;
    bw.put(static_cast<std::uint32_t>(bits), size);
  }
}

/// Emits macroblock_address_increment for (skip_run skipped MBs + this MB).
void emit_addr_increment(BitWriter& bw, int& skip_run) {
  int increment = skip_run + 1;
  skip_run = 0;
  while (increment > 33) {
    bw.put(0b00000001000, 11);  // macroblock_escape: adds 33
    increment -= 33;
  }
  encode_mb_addr_inc(increment).put(bw);
}

/// Luma SAD of the averaged (bidirectional) prediction.
int bi_sad(const Frame& fwd, const Frame& bwd, const Frame& cur, int mb_x,
           int mb_y, MotionVector mvf, MotionVector mvb) {
  std::uint8_t pf[256], pb[256];
  form_prediction(fwd.y(), fwd.y_stride(), pf, 16, mb_x * 16, mb_y * 16, 16,
                  16, mvf.x, mvf.y, McMode::kCopy);
  form_prediction(bwd.y(), bwd.y_stride(), pb, 16, mb_x * 16, mb_y * 16, 16,
                  16, mvb.x, mvb.y, McMode::kCopy);
  const int cs = cur.y_stride();
  const std::uint8_t* c = cur.y() + mb_y * 16 * cs + mb_x * 16;
  int sad = 0;
  for (int r = 0; r < 16; ++r) {
    for (int col = 0; col < 16; ++col) {
      const int pel = (pf[r * 16 + col] + pb[r * 16 + col] + 1) >> 1;
      const int d = pel - c[r * cs + col];
      sad += d < 0 ? -d : d;
    }
  }
  return sad;
}

}  // namespace

Encoder::Encoder(const EncoderConfig& config)
    : config_(config),
      f_code_(f_code_for_range(2 * config.search_range + 1)),
      pool_(config.width, config.height) {
  if (config_.mpeg1) {
    // MPEG-1 has none of these MPEG-2 coding options.
    config_.intra_vlc_format = false;
    config_.alternate_scan = false;
    config_.q_scale_type = false;
    config_.intra_dc_precision = 0;
    config_.interlaced_tools = false;
  }
  SequenceHeader sh;
  sh.horizontal_size = config_.width;
  sh.vertical_size = config_.height;
  sh.frame_rate_code = config_.frame_rate_code;
  sh.bit_rate = config_.bit_rate;
  write_sequence_header(bw_, sh);
  if (!config_.mpeg1) {
    SequenceExtension ext;
    ext.progressive_sequence = !config_.interlaced_tools;
    write_sequence_extension(bw_, sh, ext);
  }
}

void Encoder::push_frame(FramePtr frame) {
  assert(!finished_);
  assert(frame->width() == config_.width &&
         frame->height() == config_.height);
  pad_coded_border(*frame);
  gop_.push_back(std::move(frame));
  if (static_cast<int>(gop_.size()) == config_.gop_size) encode_gop();
}

std::vector<std::uint8_t> Encoder::finish() {
  assert(!finished_);
  if (!gop_.empty()) encode_gop();
  bw_.put_startcode(0xB7);  // sequence_end_code
  finished_ = true;
  return bw_.take();
}

int Encoder::current_qscale_code() const {
  if (!config_.rate_control) return config_.base_qscale_code;
  const int code = static_cast<int>(
      std::lround(config_.base_qscale_code * rate_ratio_));
  return std::clamp(code, 2, 31);
}

void Encoder::update_rate_control(std::int64_t picture_bits) {
  stats_.bits_total += picture_bits;
  if (!config_.rate_control) return;
  SequenceHeader sh;
  sh.frame_rate_code = config_.frame_rate_code;
  const double target_per_pic =
      static_cast<double>(config_.bit_rate) / sh.frame_rate();
  const double target_cum = target_per_pic * stats_.pictures;
  if (target_cum <= 0) return;
  const double ratio = static_cast<double>(stats_.bits_total) / target_cum;
  rate_ratio_ = std::clamp(0.5 * rate_ratio_ + 0.5 * ratio, 0.25, 8.0);
}

void Encoder::encode_gop() {
  const int n = static_cast<int>(gop_.size());
  const int m = config_.ip_distance;
  GopHeader gh;
  gh.closed_gop = true;
  // SMPTE-ish time code from the first display index of this GOP.
  {
    const int fps = 30;
    const int idx = stats_.pictures;
    const int pic = idx % fps;
    const int total_s = idx / fps;
    const int s = total_s % 60;
    const int min = (total_s / 60) % 60;
    const int h = (total_s / 3600) % 24;
    gh.time_code = (static_cast<std::uint32_t>(h) << 19) |
                   (static_cast<std::uint32_t>(min) << 13) | (1u << 12) |
                   (static_cast<std::uint32_t>(s) << 6) |
                   static_cast<std::uint32_t>(pic);
  }
  write_gop_header(bw_, gh);

  FramePtr recon_scratch = pool_.acquire();  // reused for every B picture
  FramePtr prev_ref;
  int prev_pos = 0;

  auto encode_one = [&](int pos, PictureType type, const Frame* fwd,
                        const Frame* bwd, Frame& recon) {
    encode_picture(*gop_[pos], type, pos, fwd, bwd, recon);
  };

  // I picture at display position 0.
  FramePtr recon_i = pool_.acquire();
  encode_one(0, PictureType::kI, nullptr, nullptr, *recon_i);
  prev_ref = recon_i;

  // Reference pictures at positions M, 2M, ...; B pictures in between are
  // emitted after their future reference (coded order).
  int r = m;
  for (; r < n; r += m) {
    FramePtr recon_p = pool_.acquire();
    encode_one(r, PictureType::kP, prev_ref.get(), nullptr, *recon_p);
    for (int b = prev_pos + 1; b < r; ++b) {
      encode_one(b, PictureType::kB, prev_ref.get(), recon_p.get(),
                 *recon_scratch);
    }
    prev_ref = recon_p;
    prev_pos = r;
  }
  // Tail pictures after the last reference (only when N % M != 1):
  // encoded as a chain of P pictures.
  for (int pos = prev_pos + 1; pos < n; ++pos) {
    FramePtr recon_p = pool_.acquire();
    encode_one(pos, PictureType::kP, prev_ref.get(), nullptr, *recon_p);
    prev_ref = recon_p;
  }

  gop_.clear();
  ++stats_.gops;
}

void Encoder::encode_picture(const Frame& src, PictureType type,
                             int temporal_ref, const Frame* fwd,
                             const Frame* bwd, Frame& recon) {
  const std::uint64_t bits_before = bw_.bit_count();

  PictureHeader ph;
  ph.temporal_reference = temporal_ref & 1023;
  ph.type = type;
  if (config_.mpeg1) {
    // MPEG-1 carries the f_codes in the picture header (half-pel units:
    // full_pel flags stay false).
    if (type != PictureType::kI) ph.forward_f_code = f_code_;
    if (type == PictureType::kB) ph.backward_f_code = f_code_;
  }
  write_picture_header(bw_, ph);

  if (!config_.mpeg1) {
    PictureCodingExtension pce;
    if (type != PictureType::kI) {
      pce.f_code[0][0] = pce.f_code[0][1] = f_code_;
    }
    if (type == PictureType::kB) {
      pce.f_code[1][0] = pce.f_code[1][1] = f_code_;
    }
    pce.intra_dc_precision = config_.intra_dc_precision;
    pce.intra_vlc_format = config_.intra_vlc_format;
    pce.alternate_scan = config_.alternate_scan;
    pce.q_scale_type = config_.q_scale_type;
    if (config_.interlaced_tools) {
      pce.frame_pred_frame_dct = false;
      pce.progressive_frame = false;
      pce.top_field_first = config_.top_field_first;
    }
    write_picture_coding_extension(bw_, pce);
  }

  const int mb_w = src.mb_width();
  const int mb_h = src.mb_height();
  const int qscale_code = current_qscale_code();
  const auto& scan = scan_order(config_.alternate_scan);

  QuantContext qintra, qinter;
  static const auto intra_matrix = default_intra_matrix();
  static const auto non_intra_matrix = default_non_intra_matrix();
  qintra.matrix = intra_matrix.data();
  qinter.matrix = non_intra_matrix.data();
  qintra.quantiser_scale = qinter.quantiser_scale =
      quantiser_scale(qscale_code, config_.q_scale_type);
  qintra.intra_dc_mult = intra_dc_mult(8 + config_.intra_dc_precision);

  // Block geometry within a macroblock: {plane, x offset, y offset, luma}.
  struct BlockGeom {
    int plane, dx, dy;
    bool luma;
  };
  static constexpr BlockGeom kGeom[6] = {
      {0, 0, 0, true}, {0, 8, 0, true}, {0, 0, 8, true},
      {0, 8, 8, true}, {1, 0, 0, false}, {2, 0, 0, false},
  };
  // Resolves one block's position: with field DCT, luma blocks cover the
  // macroblock's top/bottom field lines (line step 2), mirroring the
  // decoder's mapping.
  struct BlockPos {
    int plane, x, y, step;
    bool luma;
  };
  auto block_pos = [&](int b, int mb_x, int mb_y, bool field_dct) {
    const auto& g = kGeom[b];
    BlockPos p;
    p.plane = g.plane;
    p.luma = g.luma;
    if (g.luma) {
      p.x = mb_x * 16 + g.dx;
      if (field_dct) {
        p.y = mb_y * 16 + (b >> 1);
        p.step = 2;
      } else {
        p.y = mb_y * 16 + g.dy;
        p.step = 1;
      }
    } else {
      p.x = mb_x * 8;
      p.y = mb_y * 8;
      p.step = 1;
    }
    return p;
  };
  const bool interlaced = config_.interlaced_tools;

  // Encodes the six blocks of an *intra* macroblock: quantize, emit, and
  // reconstruct.
  auto encode_intra_mb = [&](int mb_x, int mb_y, SliceEncState& st) {
    emit_addr_increment(bw_, st.skip_run);
    encode_mb_type(static_cast<int>(type), MbFlags::kIntra).put(bw_);
    const bool field_dct = interlaced && prefer_field_dct(src, mb_x, mb_y);
    if (interlaced) {
      bw_.put_bit(field_dct);  // dct_type
      if (field_dct) ++stats_.field_dct_mbs;
    }
    st.reset_pmv();
    std::array<double, 64> dct_in, dct_out;
    Block q;
    for (int b = 0; b < 6; ++b) {
      const auto bp = block_pos(b, mb_x, mb_y, field_dct);
      const int stride = src.stride(bp.plane);
      load_block(src.plane(bp.plane) + bp.y * stride + bp.x,
                 stride * bp.step, nullptr, 0, dct_in);
      fdct_reference(dct_in, dct_out);
      quantize_intra(dct_out, q, qintra);
      const int cc = bp.luma ? 0 : bp.plane;
      if (config_.mpeg1) clamp_levels_mpeg1(q);
      emit_intra_dc(bw_, bp.luma, q[0], st.dc_pred[cc]);
      emit_ac(bw_, q, scan, config_.intra_vlc_format, 1, false,
              config_.mpeg1);
      // Reconstruct through the decoder's arithmetic.
      Block d = q;
      dequantize_intra(d, qintra);
      idct_int(d);
      recon_block(recon.plane(bp.plane) + bp.y * stride + bp.x,
                  stride * bp.step, d, /*add=*/false);
    }
    if (type == PictureType::kB) st.prev_b_flags = 0;
    ++stats_.intra_mbs;
  };

  // Quantizes the residual blocks of an inter MB whose prediction is
  // already in `recon`; returns cbp and fills `qblocks`.
  auto quantize_residuals = [&](int mb_x, int mb_y, bool field_dct,
                                std::array<Block, 6>& qblocks) {
    int cbp = 0;
    std::array<double, 64> dct_in, dct_out;
    for (int b = 0; b < 6; ++b) {
      const auto bp = block_pos(b, mb_x, mb_y, field_dct);
      const int stride = src.stride(bp.plane);
      load_block(src.plane(bp.plane) + bp.y * stride + bp.x,
                 stride * bp.step,
                 recon.plane(bp.plane) + bp.y * stride + bp.x,
                 stride * bp.step, dct_in);
      // Skip bias: a residual this small is quantization noise from the
      // reference — coding it chases the error around (and costs bits).
      double res_sad = 0;
      for (const double v : dct_in) res_sad += v < 0 ? -v : v;
      if (res_sad < 2.5 * 64) {
        qblocks[b].fill(0);
        continue;
      }
      fdct_reference(dct_in, dct_out);
      quantize_non_intra(dct_out, qblocks[b], qinter);
      if (config_.mpeg1) clamp_levels_mpeg1(qblocks[b]);
      bool any = false;
      for (const auto v : qblocks[b]) {
        if (v != 0) {
          any = true;
          break;
        }
      }
      if (any) cbp |= 1 << (5 - b);
    }
    return cbp;
  };

  // Emits coefficients and reconstructs the coded blocks of an inter MB.
  auto emit_and_recon_inter_blocks = [&](int mb_x, int mb_y, int cbp,
                                         bool field_dct,
                                         const std::array<Block, 6>& qblocks) {
    for (int b = 0; b < 6; ++b) {
      if ((cbp & (1 << (5 - b))) == 0) continue;
      const auto bp = block_pos(b, mb_x, mb_y, field_dct);
      const int stride = src.stride(bp.plane);
      emit_ac(bw_, qblocks[b], scan, /*table_one=*/false, 0,
              /*first_special=*/true, config_.mpeg1);
      Block d = qblocks[b];
      dequantize_non_intra(d, qinter);
      idct_int(d);
      recon_block(recon.plane(bp.plane) + bp.y * stride + bp.x,
                  stride * bp.step, d, /*add=*/true);
    }
  };

  // Emits a frame motion vector (both PMV rows updated, as the decoder
  // does) or a field vector (vertical predictor at frame scale: /2 on
  // predict, x2 on store).
  auto emit_frame_mv = [&](SliceEncState& st, int s, MotionVector mv) {
    encode_mv_component(bw_, f_code_, mv.x, st.pmv[0][s][0]);
    encode_mv_component(bw_, f_code_, mv.y, st.pmv[0][s][1]);
    st.pmv[1][s][0] = st.pmv[0][s][0];
    st.pmv[1][s][1] = st.pmv[0][s][1];
  };
  auto emit_field_mv = [&](SliceEncState& st, int r, int s, int select,
                           MotionVector mv) {
    bw_.put_bit(select);
    encode_mv_component(bw_, f_code_, mv.x, st.pmv[r][s][0]);
    int vert = st.pmv[r][s][1] >> 1;
    encode_mv_component(bw_, f_code_, mv.y, vert);
    st.pmv[r][s][1] = mv.y * 2;
  };

  const int segments = std::clamp(config_.slices_per_row, 1, mb_w);
  for (int mb_y = 0; mb_y < mb_h; ++mb_y) {
    for (int seg = 0; seg < segments; ++seg) {
    const int seg_begin = seg * mb_w / segments;
    const int seg_end = (seg + 1) * mb_w / segments;
    bw_.put_startcode(static_cast<std::uint8_t>(mb_y + 1));
    bw_.put(static_cast<std::uint32_t>(qscale_code), 5);
    bw_.put_bit(0);  // extra_bit_slice
    SliceEncState st(config_.intra_dc_precision);
    // The first macroblock's address increment positions the slice within
    // the row (§6.3.16); seed the pending run with the column offset.
    st.skip_run = seg_begin;

    for (int mb_x = seg_begin; mb_x < seg_end; ++mb_x) {
      const bool edge = (mb_x == seg_begin) || (mb_x == seg_end - 1);

      if (type == PictureType::kI) {
        encode_intra_mb(mb_x, mb_y, st);
        continue;
      }

      if (type == PictureType::kP) {
        const MeResult me = estimate_motion(
            *fwd, src, mb_x, mb_y, config_.search_range,
            {static_cast<std::int16_t>(st.pmv[0][0][0]),
             static_cast<std::int16_t>(st.pmv[0][0][1])});
        // Field prediction candidate (interlaced tools): best reference
        // field for each destination field.
        MeResult field_me[2];
        int field_sel[2] = {0, 0};
        int field_total = std::numeric_limits<int>::max();
        if (interlaced) {
          field_total = 0;
          for (int r = 0; r < 2; ++r) {
            for (int sel = 0; sel < 2; ++sel) {
              const MeResult cand = estimate_motion_field(
                  *fwd, src, mb_x, mb_y, r, sel, config_.search_range);
              if (sel == 0 || cand.sad < field_me[r].sad) {
                field_me[r] = cand;
                field_sel[r] = sel;
              }
            }
            field_total += field_me[r].sad;
          }
        }
        // ~40 extra header bits for field mode; bias keeps ties on frame.
        const bool use_field = interlaced && field_total + 64 < me.sad;
        const int inter_sad = use_field ? field_total : me.sad;
        if (intra_activity(src, mb_x, mb_y) < inter_sad) {
          encode_intra_mb(mb_x, mb_y, st);
          continue;
        }
        const MotionVector mv = me.mv;
        if (use_field) {
          for (int r = 0; r < 2; ++r) {
            mc_field_macroblock(*fwd, 0, recon, 0, mb_x, mb_y, r,
                                field_sel[r], field_me[r].mv, McMode::kCopy);
          }
        } else {
          mc_macroblock(*fwd, 0, recon, 0, mb_x, mb_y, mv, McMode::kCopy);
        }
        const bool field_dct =
            interlaced && prefer_field_dct(src, mb_x, mb_y);
        if (use_field) ++stats_.field_motion_mbs;
        if (field_dct) ++stats_.field_dct_mbs;
        std::array<Block, 6> qblocks;
        const int cbp = quantize_residuals(mb_x, mb_y, field_dct, qblocks);
        const bool zero_mv = !use_field && mv.x == 0 && mv.y == 0;
        if (cbp == 0 && zero_mv && !edge) {
          ++st.skip_run;
          st.reset_dc(config_.intra_dc_precision);
          st.reset_pmv();
          ++stats_.skipped_mbs;
          continue;
        }
        std::uint8_t flags;
        if (cbp != 0) {
          flags = (zero_mv && !use_field)
                      ? MbFlags::kPattern
                      : (MbFlags::kMotionForward | MbFlags::kPattern);
        } else {
          flags = MbFlags::kMotionForward;
        }
        emit_addr_increment(bw_, st.skip_run);
        encode_mb_type(static_cast<int>(type), flags).put(bw_);
        if (interlaced && (flags & MbFlags::kMotionForward)) {
          bw_.put(use_field ? 0b01 : 0b10, 2);  // frame_motion_type
        }
        if (interlaced && (flags & MbFlags::kPattern)) {
          bw_.put_bit(field_dct);  // dct_type
        }
        if (flags & MbFlags::kMotionForward) {
          if (use_field) {
            emit_field_mv(st, 0, 0, field_sel[0], field_me[0].mv);
            emit_field_mv(st, 1, 0, field_sel[1], field_me[1].mv);
          } else {
            emit_frame_mv(st, 0, mv);
          }
        } else {
          st.reset_pmv();  // "no MC" P macroblock resets predictors
        }
        if (flags & MbFlags::kPattern) {
          encode_coded_block_pattern(cbp).put(bw_);
        }
        st.reset_dc(config_.intra_dc_precision);
        emit_and_recon_inter_blocks(mb_x, mb_y, cbp, field_dct, qblocks);
        ++stats_.inter_mbs;
        continue;
      }

      // B picture: frame motion only (field B prediction is left to the
      // decoder's generality; the encoder keeps B pictures simple).
      const MeResult mef = estimate_motion(
          *fwd, src, mb_x, mb_y, config_.search_range,
          {static_cast<std::int16_t>(st.pmv[0][0][0]),
           static_cast<std::int16_t>(st.pmv[0][0][1])});
      const MeResult meb = estimate_motion(
          *bwd, src, mb_x, mb_y, config_.search_range,
          {static_cast<std::int16_t>(st.pmv[0][1][0]),
           static_cast<std::int16_t>(st.pmv[0][1][1])});
      const int sad_bi =
          bi_sad(*fwd, *bwd, src, mb_x, mb_y, mef.mv, meb.mv);
      // Field candidates (interlaced tools): single-direction field
      // prediction, per destination field with the best reference field.
      MeResult f_fwd[2], f_bwd[2];
      int sel_fwd[2] = {0, 0}, sel_bwd[2] = {0, 0};
      int sad_field_fwd = std::numeric_limits<int>::max();
      int sad_field_bwd = std::numeric_limits<int>::max();
      if (interlaced) {
        sad_field_fwd = sad_field_bwd = 0;
        for (int r = 0; r < 2; ++r) {
          for (int sel = 0; sel < 2; ++sel) {
            const MeResult cf = estimate_motion_field(
                *fwd, src, mb_x, mb_y, r, sel, config_.search_range);
            if (sel == 0 || cf.sad < f_fwd[r].sad) {
              f_fwd[r] = cf;
              sel_fwd[r] = sel;
            }
            const MeResult cb = estimate_motion_field(
                *bwd, src, mb_x, mb_y, r, sel, config_.search_range);
            if (sel == 0 || cb.sad < f_bwd[r].sad) {
              f_bwd[r] = cb;
              sel_bwd[r] = sel;
            }
          }
          sad_field_fwd += f_fwd[r].sad;
          sad_field_bwd += f_bwd[r].sad;
        }
        sad_field_fwd += 64;  // extra header bits bias
        sad_field_bwd += 64;
      }
      std::uint8_t mode;
      bool use_field = false;
      int best_sad;
      if (sad_bi <= mef.sad && sad_bi <= meb.sad) {
        mode = MbFlags::kMotionForward | MbFlags::kMotionBackward;
        best_sad = sad_bi;
      } else if (mef.sad <= meb.sad) {
        mode = MbFlags::kMotionForward;
        best_sad = mef.sad;
      } else {
        mode = MbFlags::kMotionBackward;
        best_sad = meb.sad;
      }
      if (interlaced && std::min(sad_field_fwd, sad_field_bwd) < best_sad) {
        use_field = true;
        if (sad_field_fwd <= sad_field_bwd) {
          mode = MbFlags::kMotionForward;
          best_sad = sad_field_fwd;
        } else {
          mode = MbFlags::kMotionBackward;
          best_sad = sad_field_bwd;
        }
      }
      if (intra_activity(src, mb_x, mb_y) < best_sad) {
        encode_intra_mb(mb_x, mb_y, st);
        continue;
      }
      // Build the prediction in recon via the decoder's own MC path.
      if (use_field) {
        const bool forward = (mode & MbFlags::kMotionForward) != 0;
        const MeResult* fme = forward ? f_fwd : f_bwd;
        const int* fsel = forward ? sel_fwd : sel_bwd;
        const Frame* ref = forward ? fwd : bwd;
        for (int r = 0; r < 2; ++r) {
          mc_field_macroblock(*ref, 0, recon, 0, mb_x, mb_y, r, fsel[r],
                              fme[r].mv, McMode::kCopy);
        }
        ++stats_.field_motion_mbs;
      } else {
        if (mode & MbFlags::kMotionForward) {
          mc_macroblock(*fwd, 0, recon, 0, mb_x, mb_y, mef.mv,
                        McMode::kCopy);
        }
        if (mode & MbFlags::kMotionBackward) {
          mc_macroblock(*bwd, 0, recon, 0, mb_x, mb_y, meb.mv,
                        (mode & MbFlags::kMotionForward) ? McMode::kAverage
                                                         : McMode::kCopy);
        }
      }
      const bool field_dct = interlaced && prefer_field_dct(src, mb_x, mb_y);
      std::array<Block, 6> qblocks;
      const int cbp = quantize_residuals(mb_x, mb_y, field_dct, qblocks);
      const bool same_as_prev =
          !use_field && st.prev_b_flags == mode &&
          (!(mode & MbFlags::kMotionForward) || mef.mv == st.prev_fwd) &&
          (!(mode & MbFlags::kMotionBackward) || meb.mv == st.prev_bwd);
      if (cbp == 0 && same_as_prev && !edge) {
        ++st.skip_run;
        st.reset_dc(config_.intra_dc_precision);
        ++stats_.skipped_mbs;
        continue;
      }
      const std::uint8_t flags =
          static_cast<std::uint8_t>(mode | (cbp != 0 ? MbFlags::kPattern : 0));
      emit_addr_increment(bw_, st.skip_run);
      encode_mb_type(static_cast<int>(type), flags).put(bw_);
      if (interlaced) {
        bw_.put(use_field ? 0b01 : 0b10, 2);  // frame_motion_type
        if (flags & MbFlags::kPattern) bw_.put_bit(field_dct);
      }
      if (use_field) {
        const bool forward = (mode & MbFlags::kMotionForward) != 0;
        const int s_dir = forward ? 0 : 1;
        const MeResult* fme = forward ? f_fwd : f_bwd;
        const int* fsel = forward ? sel_fwd : sel_bwd;
        emit_field_mv(st, 0, s_dir, fsel[0], fme[0].mv);
        emit_field_mv(st, 1, s_dir, fsel[1], fme[1].mv);
      } else {
        if (mode & MbFlags::kMotionForward) emit_frame_mv(st, 0, mef.mv);
        if (mode & MbFlags::kMotionBackward) emit_frame_mv(st, 1, meb.mv);
      }
      if (flags & MbFlags::kPattern) {
        encode_coded_block_pattern(cbp).put(bw_);
      }
      // Field MBs disable the next skip (the frame-vector equality check
      // cannot represent them); the decoder replays any mode on skip, but
      // the encoder only ever skips after frame-motion MBs.
      st.prev_b_flags = use_field ? 0 : mode;
      st.prev_fwd = mef.mv;
      st.prev_bwd = meb.mv;
      st.reset_dc(config_.intra_dc_precision);
      emit_and_recon_inter_blocks(mb_x, mb_y, cbp, field_dct, qblocks);
      ++stats_.inter_mbs;
    }
    }
  }

  ++stats_.pictures;
  ++stats_.pictures_by_type[static_cast<int>(type)];
  const auto bits = static_cast<std::int64_t>(bw_.bit_count() - bits_before);
  stats_.bits_by_type[static_cast<int>(type)] += bits;
  update_rate_control(bits);
}

}  // namespace pmp2::mpeg2
