// Decoded-picture buffers (4:2:0 planar) with byte-accurate allocation
// tracking.
//
// The paper's Fig. 8/9 experiments measure decoder memory as a function of
// processors, GOP size and resolution; MemoryTracker provides the live /
// high-water byte accounting those benches report. Every Frame registers
// its plane bytes with the tracker it was created under.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

/// Thread-safe live/peak byte accounting.
class MemoryTracker {
 public:
  void add(std::int64_t bytes) {
    const std::int64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    // Lock-free high-water update.
    std::int64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
  }
  void sub(std::int64_t bytes) {
    current_.fetch_sub(bytes, std::memory_order_relaxed);
  }

  [[nodiscard]] std::int64_t current_bytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t peak_bytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  void reset_peak() { peak_.store(current_bytes(), std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> current_{0};
  std::atomic<std::int64_t> peak_{0};
};

/// One decoded picture: planar 4:2:0, dimensions padded up to whole
/// macroblocks (the coded size); `width`/`height` are the display size.
class Frame {
 public:
  /// Creates a frame; if `tracker` is non-null the plane bytes are
  /// registered with it for the frame's lifetime.
  Frame(int width, int height, MemoryTracker* tracker = nullptr);
  ~Frame();
  Frame(const Frame&) = delete;
  Frame& operator=(const Frame&) = delete;

  [[nodiscard]] int width() const { return width_; }
  [[nodiscard]] int height() const { return height_; }
  [[nodiscard]] int mb_width() const { return mb_width_; }
  [[nodiscard]] int mb_height() const { return mb_height_; }
  /// Luma stride in bytes (== coded width).
  [[nodiscard]] int y_stride() const { return mb_width_ * kMacroblockSize; }
  /// Chroma stride in bytes.
  [[nodiscard]] int c_stride() const { return y_stride() / 2; }
  [[nodiscard]] int coded_height() const {
    return mb_height_ * kMacroblockSize;
  }

  [[nodiscard]] std::uint8_t* y() { return y_.data(); }
  [[nodiscard]] std::uint8_t* cb() { return cb_.data(); }
  [[nodiscard]] std::uint8_t* cr() { return cr_.data(); }
  [[nodiscard]] const std::uint8_t* y() const { return y_.data(); }
  [[nodiscard]] const std::uint8_t* cb() const { return cb_.data(); }
  [[nodiscard]] const std::uint8_t* cr() const { return cr_.data(); }

  /// Plane accessor: 0 = Y, 1 = Cb, 2 = Cr.
  [[nodiscard]] std::uint8_t* plane(int i) {
    return i == 0 ? y() : (i == 1 ? cb() : cr());
  }
  [[nodiscard]] const std::uint8_t* plane(int i) const {
    return i == 0 ? y() : (i == 1 ? cb() : cr());
  }
  [[nodiscard]] int stride(int i) const {
    return i == 0 ? y_stride() : c_stride();
  }

  [[nodiscard]] std::int64_t bytes() const {
    return static_cast<std::int64_t>(y_.size() + cb_.size() + cr_.size());
  }

  /// True iff every pel of every plane matches (bit-exactness checks).
  [[nodiscard]] bool same_pels(const Frame& other) const;

  // Decode-order metadata, filled by the decoders.
  PictureType type = PictureType::kI;
  int temporal_reference = 0;  // within its GOP
  int display_index = 0;       // global display order

  /// Stable logical identity for trace generation: frames recycled through
  /// a pool keep their id, mirroring buffer reuse in a real decoder.
  [[nodiscard]] int trace_id() const { return trace_id_; }

 private:
  int width_, height_, mb_width_, mb_height_;
  std::vector<std::uint8_t> y_, cb_, cr_;
  MemoryTracker* tracker_;
  int trace_id_;
};

using FramePtr = std::shared_ptr<Frame>;

/// Recycles frames of one size. shared_ptr handles return frames to the
/// pool automatically, which keeps reference-picture lifetime management in
/// the parallel decoders simple (CP.32). Handles may outlive the pool: once
/// the pool is gone, released frames are simply destroyed.
class FramePool {
 public:
  FramePool(int width, int height, MemoryTracker* tracker = nullptr)
      : impl_(std::make_shared<Impl>(width, height, tracker)) {}

  /// Returns a frame (recycled or new) whose pels are unspecified.
  [[nodiscard]] FramePtr acquire();

  /// Warm-allocates until the free list holds at least `count` frames, so
  /// the first pictures of a run are not charged an allocation on the
  /// decode path (first-picture latency). Counts as neither hit nor miss.
  void reserve(std::size_t count);

  /// Frames currently in the free list (for tests).
  [[nodiscard]] std::size_t idle_count() const;

  /// acquire() calls satisfied from the free list / forced to allocate.
  /// hits / (hits + misses) is the pool hit rate the decoders report
  /// through the obs counter registry.
  [[nodiscard]] std::uint64_t hits() const;
  [[nodiscard]] std::uint64_t misses() const;

 private:
  struct Impl {
    Impl(int w, int h, MemoryTracker* t) : width(w), height(h), tracker(t) {}
    int width, height;
    MemoryTracker* tracker;
    std::mutex mutex;
    std::vector<std::unique_ptr<Frame>> free;  // guarded by mutex
    std::uint64_t hits = 0;                    // guarded by mutex
    std::uint64_t misses = 0;                  // guarded by mutex
  };
  std::shared_ptr<Impl> impl_;
};

/// Luma PSNR in dB between two equally sized frames; returns +inf for
/// identical planes.
[[nodiscard]] double psnr_y(const Frame& a, const Frame& b);

}  // namespace pmp2::mpeg2
