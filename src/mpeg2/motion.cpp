#include "mpeg2/motion.h"

#include <cassert>
#include <cstring>

#include "mpeg2/kernels/backends.h"
#include "mpeg2/kernels/kernels.h"
#include "mpeg2/vlc_tables.h"

namespace pmp2::mpeg2 {

bool decode_mv_component(BitReader& br, int f_code, int& pred) {
  std::int16_t code;
  if (!motion_code_decoder().decode(br, code)) return false;
  const int r_size = f_code - 1;
  const int f = 1 << r_size;
  int delta;
  if (code == 0) {
    delta = 0;
  } else {
    const int mag = code > 0 ? code : -code;
    int residual = 0;
    if (r_size > 0) residual = static_cast<int>(br.get(r_size));
    delta = ((mag - 1) * f) + residual + 1;
    if (code < 0) delta = -delta;
  }
  // §7.6.3.1 wraparound reconstruction.
  const int high = 16 * f - 1;
  const int low = -16 * f;
  const int range = 32 * f;
  int v = pred + delta;
  if (v > high) v -= range;
  if (v < low) v += range;
  pred = v;
  return true;
}

void encode_mv_component(BitWriter& bw, int f_code, int value, int& pred) {
  const int r_size = f_code - 1;
  const int f = 1 << r_size;
  const int high = 16 * f - 1;
  const int low = -16 * f;
  const int range = 32 * f;
  assert(value >= low && value <= high);
  int delta = value - pred;
  // Choose the representative of delta (mod range) inside [low, high]; the
  // decoder's wraparound recovers `value` from it.
  if (delta > high) delta -= range;
  if (delta < low) delta += range;
  int code = 0;
  int residual = 0;
  if (delta != 0) {
    const int mag = delta > 0 ? delta : -delta;
    code = (mag - 1) / f + 1;
    residual = (mag - 1) % f;
    if (delta < 0) code = -code;
  }
  assert(code >= -16 && code <= 16);
  const Code vlc = encode_motion_code(code);
  assert(vlc.len != 0);
  vlc.put(bw);
  if (code != 0 && r_size > 0) {
    bw.put(static_cast<std::uint32_t>(residual), r_size);
  }
  pred = value;
}

int f_code_for_range(int bound) {
  for (int f_code = 1; f_code <= 9; ++f_code) {
    const int f = 1 << (f_code - 1);
    if (bound <= 16 * f - 1) return f_code;
  }
  return 9;
}

void form_prediction_reference(const std::uint8_t* ref, int ref_stride,
                               std::uint8_t* dst, int dst_stride, int x,
                               int y, int w, int h, int vx, int vy,
                               McMode mode) {
  const int sx = x + (vx >> 1);
  const int sy = y + (vy >> 1);
  const bool hx = (vx & 1) != 0;
  const bool hy = (vy & 1) != 0;
  const std::uint8_t* src = ref + sy * ref_stride + sx;

  auto store = [&](std::uint8_t* d, int pel) {
    if (mode == McMode::kAverage) {
      *d = static_cast<std::uint8_t>((*d + pel + 1) >> 1);
    } else {
      *d = static_cast<std::uint8_t>(pel);
    }
  };

  if (!hx && !hy) {
    for (int r = 0; r < h; ++r) {
      for (int c = 0; c < w; ++c) {
        store(dst + r * dst_stride + c, src[r * ref_stride + c]);
      }
    }
  } else if (hx && !hy) {
    for (int r = 0; r < h; ++r) {
      const std::uint8_t* s = src + r * ref_stride;
      for (int c = 0; c < w; ++c) {
        store(dst + r * dst_stride + c, (s[c] + s[c + 1] + 1) >> 1);
      }
    }
  } else if (!hx && hy) {
    for (int r = 0; r < h; ++r) {
      const std::uint8_t* s0 = src + r * ref_stride;
      const std::uint8_t* s1 = s0 + ref_stride;
      for (int c = 0; c < w; ++c) {
        store(dst + r * dst_stride + c, (s0[c] + s1[c] + 1) >> 1);
      }
    }
  } else {
    for (int r = 0; r < h; ++r) {
      const std::uint8_t* s0 = src + r * ref_stride;
      const std::uint8_t* s1 = s0 + ref_stride;
      for (int c = 0; c < w; ++c) {
        store(dst + r * dst_stride + c,
              (s0[c] + s0[c + 1] + s1[c] + s1[c + 1] + 2) >> 2);
      }
    }
  }
}

// --- SWAR motion-compensation kernels --------------------------------------
//
// form_prediction is specialized on (interpolation mode x copy/average), 8
// pels per step on uint64_t. Half-pel interpolation uses the carry-free
// byte average (a | b) - (((a ^ b) >> 1) & 0x7f..7f) == per-byte
// (a + b + 1) >> 1, which matches the standard's rounding exactly; the
// diagonal case widens to 16-bit lanes (max lane sum 4*255 + 2 < 2^16).
// The kAverage (bidirectional second pass) destination blend is the same
// byte average applied on top — the scalar reference composes the two
// roundings the same way, so results are bit-identical. Widths that are not
// a multiple of 8 (not produced by any caller, but allowed by the contract)
// fall through to a scalar tail; no byte beyond the w+1 columns the scalar
// code reads is ever touched.

namespace {

inline std::uint64_t load8(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline void store8(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, 8);
}

constexpr std::uint64_t kLow7 = 0x7f7f7f7f7f7f7f7fULL;
constexpr std::uint64_t kLanes16 = 0x00ff00ff00ff00ffULL;
constexpr std::uint64_t kRound2 = 0x0002000200020002ULL;

/// Per-byte (a + b + 1) >> 1 without carries across lanes.
inline std::uint64_t avg8(std::uint64_t a, std::uint64_t b) {
  return (a | b) - (((a ^ b) >> 1) & kLow7);
}

/// Eight diagonal half-pel pels: (s0[c] + s0[c+1] + s1[c] + s1[c+1] + 2)
/// >> 2 per output byte, via even/odd 16-bit lanes.
inline std::uint64_t interp_hv8(const std::uint8_t* s0,
                                const std::uint8_t* s1) {
  const std::uint64_t a = load8(s0);
  const std::uint64_t a1 = load8(s0 + 1);
  const std::uint64_t b = load8(s1);
  const std::uint64_t b1 = load8(s1 + 1);
  const std::uint64_t lo = (((a & kLanes16) + (a1 & kLanes16) +
                             (b & kLanes16) + (b1 & kLanes16) + kRound2) >>
                            2) &
                           kLanes16;
  const std::uint64_t hi = ((((a >> 8) & kLanes16) + ((a1 >> 8) & kLanes16) +
                             ((b >> 8) & kLanes16) + ((b1 >> 8) & kLanes16) +
                             kRound2) >>
                            2) &
                           kLanes16;
  return lo | (hi << 8);
}

template <bool Avg>
inline void store_span(std::uint8_t* d, std::uint64_t pels) {
  if constexpr (Avg) {
    store8(d, avg8(load8(d), pels));
  } else {
    store8(d, pels);
  }
}

template <bool Avg>
inline void store_tail(std::uint8_t* d, int pel) {
  if constexpr (Avg) {
    *d = static_cast<std::uint8_t>((*d + pel + 1) >> 1);
  } else {
    *d = static_cast<std::uint8_t>(pel);
  }
}

template <bool Avg>
void mc_rows_full(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
                  int dst_stride, int w, int h) {
  const int w8 = w & ~7;
  for (int r = 0; r < h; ++r) {
    const std::uint8_t* s = src + r * ref_stride;
    std::uint8_t* d = dst + r * dst_stride;
    for (int c = 0; c < w8; c += 8) store_span<Avg>(d + c, load8(s + c));
    for (int c = w8; c < w; ++c) store_tail<Avg>(d + c, s[c]);
  }
}

template <bool Avg>
void mc_rows_hx(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
                int dst_stride, int w, int h) {
  const int w8 = w & ~7;
  for (int r = 0; r < h; ++r) {
    const std::uint8_t* s = src + r * ref_stride;
    std::uint8_t* d = dst + r * dst_stride;
    for (int c = 0; c < w8; c += 8) {
      store_span<Avg>(d + c, avg8(load8(s + c), load8(s + c + 1)));
    }
    for (int c = w8; c < w; ++c) {
      store_tail<Avg>(d + c, (s[c] + s[c + 1] + 1) >> 1);
    }
  }
}

template <bool Avg>
void mc_rows_hy(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
                int dst_stride, int w, int h) {
  const int w8 = w & ~7;
  for (int r = 0; r < h; ++r) {
    const std::uint8_t* s0 = src + r * ref_stride;
    const std::uint8_t* s1 = s0 + ref_stride;
    std::uint8_t* d = dst + r * dst_stride;
    for (int c = 0; c < w8; c += 8) {
      store_span<Avg>(d + c, avg8(load8(s0 + c), load8(s1 + c)));
    }
    for (int c = w8; c < w; ++c) {
      store_tail<Avg>(d + c, (s0[c] + s1[c] + 1) >> 1);
    }
  }
}

template <bool Avg>
void mc_rows_hv(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
                int dst_stride, int w, int h) {
  const int w8 = w & ~7;
  for (int r = 0; r < h; ++r) {
    const std::uint8_t* s0 = src + r * ref_stride;
    const std::uint8_t* s1 = s0 + ref_stride;
    std::uint8_t* d = dst + r * dst_stride;
    for (int c = 0; c < w8; c += 8) {
      store_span<Avg>(d + c, interp_hv8(s0 + c, s1 + c));
    }
    for (int c = w8; c < w; ++c) {
      store_tail<Avg>(d + c,
                      (s0[c] + s0[c + 1] + s1[c] + s1[c + 1] + 2) >> 2);
    }
  }
}

template <bool Avg>
void form_prediction_impl(const std::uint8_t* src, int ref_stride,
                          std::uint8_t* dst, int dst_stride, int w, int h,
                          bool hx, bool hy) {
  if (!hx && !hy) {
    mc_rows_full<Avg>(src, ref_stride, dst, dst_stride, w, h);
  } else if (hx && !hy) {
    mc_rows_hx<Avg>(src, ref_stride, dst, dst_stride, w, h);
  } else if (!hx && hy) {
    mc_rows_hy<Avg>(src, ref_stride, dst, dst_stride, w, h);
  } else {
    mc_rows_hv<Avg>(src, ref_stride, dst, dst_stride, w, h);
  }
}

}  // namespace

namespace kernels::detail {

void mc_scalar(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
               int dst_stride, int w, int h, bool hx, bool hy, bool avg) {
  if (avg) {
    form_prediction_impl<true>(src, ref_stride, dst, dst_stride, w, h, hx, hy);
  } else {
    form_prediction_impl<false>(src, ref_stride, dst, dst_stride, w, h, hx,
                                hy);
  }
}

}  // namespace kernels::detail

void form_prediction(const std::uint8_t* ref, int ref_stride,
                     std::uint8_t* dst, int dst_stride, int x, int y, int w,
                     int h, int vx, int vy, McMode mode) {
  const std::uint8_t* src = ref + (y + (vy >> 1)) * ref_stride + x + (vx >> 1);
  kernels::active().mc(src, ref_stride, dst, dst_stride, w, h,
                       (vx & 1) != 0, (vy & 1) != 0,
                       mode == McMode::kAverage);
}

void mc_macroblock(const Frame& ref, int ref_frame_id, Frame& dst,
                   int dst_frame_id, int mb_x, int mb_y, MotionVector mv,
                   McMode mode, TraceSink* sink, int proc) {
  // Luma: 16x16.
  {
    const int x = mb_x * 16;
    const int y = mb_y * 16;
    form_prediction(ref.y(), ref.y_stride(),
                    dst.y() + y * dst.y_stride() + x, dst.y_stride(), x, y,
                    16, 16, mv.x, mv.y, mode);
    if (sink) {
      const int rx = x + (mv.x >> 1);
      const int ry = y + (mv.y >> 1);
      const int rw = 16 + ((mv.x & 1) ? 1 : 0);
      const int rh = 16 + ((mv.y & 1) ? 1 : 0);
      emit_region(sink, proc, false,
                  trace_layout::frame_addr(ref_frame_id, 0, 0),
                  ref.y_stride(), rx, ry, rw, rh);
      if (mode == McMode::kCopy) {
        emit_region(sink, proc, true,
                    trace_layout::frame_addr(dst_frame_id, 0, 0),
                    dst.y_stride(), x, y, 16, 16);
      } else {
        // Average: read-modify-write of the destination.
        emit_region(sink, proc, false,
                    trace_layout::frame_addr(dst_frame_id, 0, 0),
                    dst.y_stride(), x, y, 16, 16);
        emit_region(sink, proc, true,
                    trace_layout::frame_addr(dst_frame_id, 0, 0),
                    dst.y_stride(), x, y, 16, 16);
      }
    }
  }
  // Chroma: two 8x8 planes with the derived vector.
  const int cvx = chroma_mv(mv.x);
  const int cvy = chroma_mv(mv.y);
  for (int plane = 1; plane <= 2; ++plane) {
    const int x = mb_x * 8;
    const int y = mb_y * 8;
    form_prediction(ref.plane(plane), ref.c_stride(),
                    dst.plane(plane) + y * dst.c_stride() + x,
                    dst.c_stride(), x, y, 8, 8, cvx, cvy, mode);
    if (sink) {
      const int rx = x + (cvx >> 1);
      const int ry = y + (cvy >> 1);
      const int rw = 8 + ((cvx & 1) ? 1 : 0);
      const int rh = 8 + ((cvy & 1) ? 1 : 0);
      emit_region(sink, proc, false,
                  trace_layout::frame_addr(ref_frame_id, plane, 0),
                  ref.c_stride(), rx, ry, rw, rh);
      emit_region(sink, proc, true,
                  trace_layout::frame_addr(dst_frame_id, plane, 0),
                  dst.c_stride(), x, y, 8, 8);
    }
  }
}

void mc_field_macroblock(const Frame& ref, int ref_frame_id, Frame& dst,
                         int dst_frame_id, int mb_x, int mb_y,
                         int dest_parity, int src_parity, MotionVector mv,
                         McMode mode, TraceSink* sink, int proc) {
  // Luma: 16 wide x 8 field lines.
  {
    const int stride = dst.y_stride();
    const int x = mb_x * 16;
    const int yf = mb_y * 8;  // field-row origin of this macroblock
    std::uint8_t* d =
        dst.y() + (2 * yf + dest_parity) * stride + x;
    const std::uint8_t* r = ref.y() + src_parity * stride;
    form_prediction(r, 2 * stride, d, 2 * stride, x, yf, 16, 8, mv.x, mv.y,
                    mode);
    if (sink) {
      const int rx = x + (mv.x >> 1);
      const int ry = 2 * (yf + (mv.y >> 1)) + src_parity;
      emit_region(sink, proc, false,
                  trace_layout::frame_addr(ref_frame_id, 0, 0), stride, rx,
                  ry, 16 + ((mv.x & 1) ? 1 : 0),
                  2 * (8 + ((mv.y & 1) ? 1 : 0)));
      emit_region(sink, proc, mode == McMode::kCopy,
                  trace_layout::frame_addr(dst_frame_id, 0, 0), stride, x,
                  2 * yf + dest_parity, 16, 16);
    }
  }
  // Chroma: 8 wide x 4 field lines per plane, derived vector.
  const int cvx = chroma_mv(mv.x);
  const int cvy = chroma_mv(mv.y);
  for (int plane = 1; plane <= 2; ++plane) {
    const int stride = dst.c_stride();
    const int x = mb_x * 8;
    const int yf = mb_y * 4;
    std::uint8_t* d =
        dst.plane(plane) + (2 * yf + dest_parity) * stride + x;
    const std::uint8_t* r = ref.plane(plane) + src_parity * stride;
    form_prediction(r, 2 * stride, d, 2 * stride, x, yf, 8, 4, cvx, cvy,
                    mode);
    if (sink) {
      emit_region(sink, proc, true,
                  trace_layout::frame_addr(dst_frame_id, plane, 0), stride,
                  x, 2 * yf + dest_parity, 8, 8);
    }
  }
}

}  // namespace pmp2::mpeg2
