// Coefficient scan orders and (inverse) quantization, ISO/IEC 13818-2 §7.3
// and §7.4.
//
// The decoder's inverse-quantization arithmetic — including saturation to
// [-2048, 2047] and the §7.4.4 mismatch-control LSB toggle — is implemented
// exactly per the standard so that the encoder (which reconstructs reference
// pictures through this same path) and all decoder variants agree bit for
// bit.
#pragma once

#include <array>
#include <cstdint>

#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

/// Zig-zag scan order (ISO figure 7-2): kZigzagScan[n] is the raster index
/// of the n-th transmitted coefficient.
[[nodiscard]] const std::array<std::uint8_t, 64>& zigzag_scan();

/// Alternate scan order (ISO figure 7-3), selected by alternate_scan = 1.
[[nodiscard]] const std::array<std::uint8_t, 64>& alternate_scan();

[[nodiscard]] inline const std::array<std::uint8_t, 64>& scan_order(
    bool alternate) {
  return alternate ? alternate_scan() : zigzag_scan();
}

/// Default intra quantizer matrix (ISO §6.3.11), raster order.
[[nodiscard]] const std::array<std::uint8_t, 64>& default_intra_matrix();

/// Default non-intra matrix: all 16.
[[nodiscard]] const std::array<std::uint8_t, 64>& default_non_intra_matrix();

/// Maps quantiser_scale_code (1..31) to quantiser_scale per q_scale_type
/// (ISO table 7-6).
[[nodiscard]] int quantiser_scale(int code, bool q_scale_type);

/// DC multiplier for the given intra_dc_precision (8..11) -> 8,4,2,1.
[[nodiscard]] constexpr int intra_dc_mult(int intra_dc_precision) {
  return 8 >> (intra_dc_precision - 8);
}

/// Parameters needed to dequantize one block.
struct QuantContext {
  const std::uint8_t* matrix;  // 64 weights, raster order
  int quantiser_scale = 2;     // already mapped through table 7-6
  int intra_dc_mult = 8;       // intra blocks only
};

/// Inverse-quantizes `coeffs` (raster order, as produced by inverse scan) in
/// place, applying saturation and mismatch control. For intra blocks the DC
/// term uses intra_dc_mult instead of the weighted formula.
void dequantize_intra(Block& coeffs, const QuantContext& ctx);
void dequantize_non_intra(Block& coeffs, const QuantContext& ctx);

/// Sparsity-tracking overloads: identical arithmetic, but keep `s` correct
/// across the one way dequantization can create a nonzero coefficient the
/// VLC decode never stored — the §7.4.4 mismatch-control toggle of
/// coeffs[63]. (Values may also *become* zero; the mask stays conservative.)
void dequantize_intra(Block& coeffs, const QuantContext& ctx,
                      BlockSparsity& s);
void dequantize_non_intra(Block& coeffs, const QuantContext& ctx,
                          BlockSparsity& s);

/// Forward quantization (encoder side). Produces quantized levels in raster
/// order from DCT coefficients; inverse of the formulas above with rounding.
/// DC of intra blocks: level = coeff / intra_dc_mult (coeff is the DCT DC,
/// range fits the chosen precision).
void quantize_intra(const std::array<double, 64>& dct, Block& out,
                    const QuantContext& ctx);
void quantize_non_intra(const std::array<double, 64>& dct, Block& out,
                        const QuantContext& ctx);

}  // namespace pmp2::mpeg2
