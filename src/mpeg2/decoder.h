// Stream-level MPEG-2 decoding: structure scan (the "scan process" of the
// paper's Fig. 4), picture decoding, display reordering, and the sequential
// reference decoder against which both parallel decoders are verified
// bit-exact.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "bitstream/bit_reader.h"
#include "mpeg2/frame.h"
#include "mpeg2/headers.h"
#include "mpeg2/slice_decode.h"
#include "mpeg2/types.h"

namespace pmp2::obs {
class Histogram;
class Tracer;
}

namespace pmp2::mpeg2 {

/// One slice located by the scan pass.
struct SliceInfo {
  std::uint64_t offset = 0;  // byte offset of the slice startcode
  int row = 0;               // macroblock row (slice_vertical_position - 1)
};

/// One picture located by the scan pass.
struct PictureInfo {
  std::uint64_t offset = 0;  // byte offset of the picture startcode
  PictureType type = PictureType::kI;
  int temporal_reference = 0;
  std::vector<SliceInfo> slices;
};

/// One GOP located by the scan pass.
struct GopInfo {
  std::uint64_t offset = 0;  // byte offset of the group startcode
  std::uint64_t end_offset = 0;  // one past the last byte of the GOP's data
  bool closed = true;
  std::vector<PictureInfo> pictures;
};

/// Output of the scan pass over a whole elementary stream.
struct StreamStructure {
  SequenceHeader seq;
  SequenceExtension ext;
  std::vector<GopInfo> gops;
  bool valid = false;
  /// True when the stream carries no sequence extension: an MPEG-1 stream
  /// (ISO 11172-2). Motion vectors may then be full-pel and DCT escapes
  /// use the MPEG-1 fixed-length level coding.
  bool mpeg1 = false;

  [[nodiscard]] int mb_width() const {
    return (seq.horizontal_size + 15) / 16;
  }
  [[nodiscard]] int mb_height() const {
    return (seq.vertical_size + 15) / 16;
  }
  [[nodiscard]] int total_pictures() const {
    int n = 0;
    for (const auto& g : gops) n += static_cast<int>(g.pictures.size());
    return n;
  }
};

/// Scans the stream once — startcodes plus the few header fields task
/// creation needs (GOP closedness, picture type). This is exactly the work
/// the scan process performs; Table 2 benches its rate.
[[nodiscard]] StreamStructure scan_structure(
    std::span<const std::uint8_t> stream);

/// Display rank of each picture of one GOP (decode order in, rank out):
/// the position of its scanned temporal_reference in the GOP's sorted
/// temporal_reference list. On a clean closed GOP the references are a
/// permutation of [0, n) and rank == temporal_reference; on a corrupt GOP
/// (duplicate, out-of-range or missing references) the ranks still cover
/// [0, n) exactly once, so a display process fed by ranks always receives
/// a gap-free index sequence and can terminate. Recovery-mode decoders use
/// this instead of the raw temporal_reference (docs/ROBUSTNESS.md).
[[nodiscard]] std::vector<int> display_ranks(const GopInfo& gop);

/// Parses picture_header and (for MPEG-2) picture_coding_extension with
/// `br` positioned at the picture startcode. For MPEG-1 streams (no
/// extension follows) an equivalent extension state is synthesized from the
/// picture header's f_codes. On return `br` rests at the first slice
/// startcode (or wherever parsing failed).
bool parse_picture_headers(BitReader& br, PictureHeader& ph,
                           PictureCodingExtension& pce);

/// Observability / recovery options for one picture's slice loop (shared by
/// the sequential decoder and the GOP-parallel workers).
struct PictureDecodeOptions {
  TraceSink* sink = nullptr;      // memory-reference trace (TangoLite hook)
  int proc = 0;                   // worker/processor id for the sink
  obs::Tracer* tracer = nullptr;  // per-slice span emission (may be null)
  int track = 0;                  // tracer track (the worker's track)
  int picture_id = -1;            // decode-order picture id stamped on spans
  bool conceal_errors = false;    // conceal corrupt slices instead of failing
  int* concealed = nullptr;       // incremented once per concealed slice
  /// Resync-distance histogram: on each concealed slice, records the bytes
  /// between the error-detection point and the next true startcode (found
  /// with the SWAR scanner) where decode resynchronizes. Null = off.
  obs::Histogram* resync = nullptr;
};

/// Bytes between the decode-error position `error_byte` and the next true
/// startcode in `stream` (the SWAR-scan resynchronization point); the
/// remaining stream length when no startcode follows.
[[nodiscard]] std::uint64_t resync_distance(
    std::span<const std::uint8_t> stream, std::uint64_t error_byte);

/// Decodes all slices of one picture sequentially. `pic` must be fully
/// populated (dst + refs). Returns false on any slice error (unless
/// `opts.conceal_errors`, which patches the slice and keeps going).
bool decode_picture_slices(std::span<const std::uint8_t> stream,
                           const PictureInfo& info, const PictureContext& pic,
                           WorkMeter& work,
                           const PictureDecodeOptions& opts);

/// Back-compat overload without observability options.
bool decode_picture_slices(std::span<const std::uint8_t> stream,
                           const PictureInfo& info, const PictureContext& pic,
                           WorkMeter& work, TraceSink* sink = nullptr,
                           int proc = 0);

/// Error concealment: overwrites the macroblock rows of one slice with the
/// co-located pels of the forward reference (mid-gray when the picture has
/// none), the standard temporal-concealment fallback for a corrupt slice.
void conceal_slice(const PictureContext& pic, int slice_row);

/// Conceals macroblock columns [col0, col1] of one macroblock row: the
/// same temporal-concealment policy as conceal_slice, restricted to the
/// columns no slice covered.
void conceal_mb_run(const PictureContext& pic, int row, int col0, int col1);

/// Conceals every macroblock whose bit in `covered` (mb_width * mb_height,
/// raster order) is false. Damaged streams can leave macroblocks no slice
/// writes — a destroyed startcode loses a whole slice, a spurious one can
/// truncate a slice mid-row and still parse "ok" — and those pels would
/// otherwise keep whatever bytes the recycled pool frame held: output that
/// depends on pool history, not on the stream. Returns the number of
/// concealed runs (contiguous per-row gaps).
int conceal_coverage_gaps(const PictureContext& pic,
                          const std::vector<bool>& covered);

/// A decoded stream in display order.
struct DecodedStream {
  std::vector<FramePtr> frames;  // display order
  WorkMeter work;
  SequenceHeader seq;
  bool ok = false;
  int concealed_slices = 0;
};

/// Reference sequential decoder. One instance per stream decode.
class Decoder {
 public:
  /// With `conceal_errors`, a corrupt slice is concealed (see
  /// conceal_slice) instead of aborting the decode; the error count is
  /// reported in Status/DecodedStream.
  explicit Decoder(MemoryTracker* tracker = nullptr,
                   bool conceal_errors = false)
      : tracker_(tracker), conceal_errors_(conceal_errors) {}

  /// Streaming decode: frames are delivered in display order through
  /// `on_frame` and can be released immediately (long benchmark runs must
  /// not retain 1120 frames). Returns ok + accumulated work.
  struct Status {
    bool ok = false;
    WorkMeter work;
    SequenceHeader seq;
    int concealed_slices = 0;
  };
  using FrameCallback = std::function<void(FramePtr)>;
  Status decode_stream(std::span<const std::uint8_t> stream,
                       const FrameCallback& on_frame,
                       TraceSink* sink = nullptr, int proc = 0);

  /// Optional hook receiving every coded block after dequantization and
  /// before the IDCT (see BlockObserver). bench_micro_kernels uses it to
  /// harvest a realistic coefficient-block corpus from decoded streams.
  void set_block_observer(BlockObserver* observer) {
    block_observer_ = observer;
  }

  /// Convenience: decodes a whole elementary stream into display-order
  /// frames (small streams / tests).
  [[nodiscard]] DecodedStream decode(std::span<const std::uint8_t> stream,
                                     TraceSink* sink = nullptr, int proc = 0);

 private:
  MemoryTracker* tracker_;
  bool conceal_errors_;
  BlockObserver* block_observer_ = nullptr;
};

/// Display reordering helper shared by every decoder variant: feed frames
/// in decode order, emit() yields them in display order. (B frames pass
/// through; reference frames are held until the next reference arrives.)
class DisplayReorder {
 public:
  /// Adds a frame in decode order; appends 0..2 display-order frames to
  /// `out`.
  void push(FramePtr frame, std::vector<FramePtr>& out);

  /// Flushes the pending reference at end of stream.
  void flush(std::vector<FramePtr>& out);

 private:
  FramePtr pending_ref_;
  int next_display_index_ = 0;
};

}  // namespace pmp2::mpeg2
