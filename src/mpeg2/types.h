// Core MPEG-2 value types shared by the decoder, encoder and parallel
// runtimes.
//
// Scope of this implementation (documented in DESIGN.md): MPEG-2 main
// profile, 4:2:0, progressive frame pictures with frame_pred_frame_dct = 1 —
// the configuration used by the paper's test streams ("main profile, high
// level"). The syntax elements below still carry the full field widths of
// the standard so headers round-trip exactly.
#pragma once

#include <array>
#include <cstdint>

namespace pmp2::mpeg2 {

/// picture_coding_type values (ISO 13818-2 table 6-12).
enum class PictureType : std::uint8_t {
  kI = 1,
  kP = 2,
  kB = 3,
};

[[nodiscard]] constexpr char picture_type_char(PictureType t) {
  switch (t) {
    case PictureType::kI: return 'I';
    case PictureType::kP: return 'P';
    case PictureType::kB: return 'B';
  }
  return '?';
}

/// macroblock_type flag bits, the decoded form of tables B-2/B-3/B-4.
struct MbFlags {
  static constexpr std::uint8_t kQuant = 0x01;           // macroblock_quant
  static constexpr std::uint8_t kMotionForward = 0x02;   // forward MC
  static constexpr std::uint8_t kMotionBackward = 0x04;  // backward MC
  static constexpr std::uint8_t kPattern = 0x08;         // coded block pattern
  static constexpr std::uint8_t kIntra = 0x10;           // intra coded
};

/// A full-pel*2 motion vector: units of half pels, as decoded.
struct MotionVector {
  std::int16_t x = 0;
  std::int16_t y = 0;

  friend bool operator==(const MotionVector&, const MotionVector&) = default;
};

/// One 8x8 block of DCT coefficients (decode: after inverse scan, before
/// inverse quantization they live in the same buffer).
using Block = std::array<std::int16_t, 64>;

/// Sparsity summary of one coefficient block, tracked for free while the
/// block is filled (VLC decode + dequantization) and consumed by the
/// sparsity-aware IDCT. All masks are conservative: a set bit means the
/// row/column MAY hold a nonzero value; a clear bit is a guarantee of
/// zeros. `dc_only` asserts positions 1..63 are all zero. `ac_col_mask`
/// bit c means column c may have a nonzero coefficient in rows 1..7 — the
/// exact condition under which the IDCT's column pass cannot take its
/// DC-propagation shortcut — while `col_mask` covers all rows and bounds
/// which workspace columns the IDCT's row pass must read.
struct BlockSparsity {
  std::uint8_t row_mask = 0xFF;     // bit r => row r may be nonzero
  std::uint8_t col_mask = 0xFF;     // bit c => col c may be nonzero
  std::uint8_t ac_col_mask = 0xFF;  // bit c => col c may have AC (rows 1..7)
  bool dc_only = false;

  /// Dense (no information): every row/column may be nonzero. Safe default.
  [[nodiscard]] static constexpr BlockSparsity dense() {
    return {0xFF, 0xFF, 0xFF, false};
  }
  /// Empty block: tracking starts here and marks as coefficients land.
  [[nodiscard]] static constexpr BlockSparsity none() {
    return {0, 0, 0, true};
  }

  /// Records a (possibly) nonzero coefficient at raster position `pos`.
  constexpr void mark(int pos) {
    const auto col_bit = static_cast<std::uint8_t>(1u << (pos & 7));
    row_mask = static_cast<std::uint8_t>(row_mask | (1u << (pos >> 3)));
    col_mask = static_cast<std::uint8_t>(col_mask | col_bit);
    if (pos != 0) dc_only = false;
    if (pos >= 8) {
      ac_col_mask = static_cast<std::uint8_t>(ac_col_mask | col_bit);
    }
  }
};

constexpr int kBlockSize = 8;
constexpr int kMacroblockSize = 16;
/// Blocks per macroblock in 4:2:0: 4 luma + 2 chroma.
constexpr int kBlocksPerMb420 = 6;

/// Counts abstract work performed by the decoder. Two uses:
///  * the "ideal time" axis of Fig. 7 (a pixie-like basic-block proxy), and
///  * deterministic per-task costs for the virtual-time scheduler simulator,
///    so speedup experiments are reproducible on any host.
struct WorkMeter {
  std::uint64_t macroblocks = 0;
  std::uint64_t intra_blocks = 0;
  std::uint64_t coded_blocks = 0;   // blocks with coefficient data
  std::uint64_t coefficients = 0;   // non-zero coefficients decoded
  std::uint64_t escapes = 0;        // escape-coded coefficients
  std::uint64_t mc_blocks = 0;      // motion-compensated 8x8 predictions
  std::uint64_t bits = 0;           // bitstream bits consumed
  std::uint64_t skipped_mbs = 0;

  WorkMeter& operator+=(const WorkMeter& o) {
    macroblocks += o.macroblocks;
    intra_blocks += o.intra_blocks;
    coded_blocks += o.coded_blocks;
    coefficients += o.coefficients;
    escapes += o.escapes;
    mc_blocks += o.mc_blocks;
    bits += o.bits;
    skipped_mbs += o.skipped_mbs;
    return *this;
  }

  /// Scalar work units: a fixed linear model of the decode kernels
  /// (weights chosen once from a calibration run; see sched::CostModel).
  [[nodiscard]] std::uint64_t units() const {
    return 60 * macroblocks + 25 * coded_blocks + 2 * coefficients +
           6 * escapes + 30 * mc_blocks + bits / 2 + 20 * skipped_mbs;
  }
};

/// Saturates to the 8-bit pel range.
[[nodiscard]] constexpr std::uint8_t clamp_pel(int v) {
  return static_cast<std::uint8_t>(v < 0 ? 0 : (v > 255 ? 255 : v));
}

/// Saturates a dequantized coefficient to [-2048, 2047] (ISO 7.4.3).
[[nodiscard]] constexpr int clamp_coeff(int v) {
  return v < -2048 ? -2048 : (v > 2047 ? 2047 : v);
}

}  // namespace pmp2::mpeg2
