#include "mpeg2/scan_quant.h"

#include <cassert>
#include <cmath>

namespace pmp2::mpeg2 {

namespace {

// ISO 13818-2 figure 7-2: zig-zag scan.
constexpr std::array<std::uint8_t, 64> kZigzag = {
    0,  1,  8,  16, 9,  2,  3,  10, 17, 24, 32, 25, 18, 11, 4,  5,
    12, 19, 26, 33, 40, 48, 41, 34, 27, 20, 13, 6,  7,  14, 21, 28,
    35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51,
    58, 59, 52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
};

// ISO 13818-2 figure 7-3: alternate scan.
constexpr std::array<std::uint8_t, 64> kAlternate = {
    0,  8,  16, 24, 1,  9,  2,  10, 17, 25, 32, 40, 48, 56, 57, 49,
    41, 33, 26, 18, 3,  11, 4,  12, 19, 27, 34, 42, 50, 58, 35, 43,
    51, 59, 20, 28, 5,  13, 6,  14, 21, 29, 36, 44, 52, 60, 37, 45,
    53, 61, 22, 30, 7,  15, 23, 31, 38, 46, 54, 62, 39, 47, 55, 63,
};

// ISO 13818-2 §6.3.11 default intra quantizer matrix, raster order.
constexpr std::array<std::uint8_t, 64> kDefaultIntra = {
    8,  16, 19, 22, 26, 27, 29, 34, 16, 16, 22, 24, 27, 29, 34, 37,
    19, 22, 26, 27, 29, 34, 34, 38, 22, 22, 26, 27, 29, 34, 37, 40,
    22, 26, 27, 29, 32, 35, 40, 48, 26, 27, 29, 32, 35, 40, 48, 58,
    26, 27, 29, 34, 38, 46, 56, 69, 27, 29, 35, 38, 46, 56, 69, 83,
};

constexpr std::array<std::uint8_t, 64> kDefaultNonIntra = [] {
  std::array<std::uint8_t, 64> m{};
  for (auto& v : m) v = 16;
  return m;
}();

// ISO table 7-6, q_scale_type = 1 (non-linear).
constexpr int kNonLinearScale[32] = {
    0,  1,  2,  3,  4,  5,  6,  7,  8,  10, 12,  14,  16,  18,  20, 22,
    24, 28, 32, 36, 40, 44, 48, 52, 56, 64, 72,  80,  88,  96,  104, 112,
};

/// Integer division truncating toward zero, the standard's "/" operator.
constexpr int div_trunc(int num, int den) { return num / den; }

}  // namespace

const std::array<std::uint8_t, 64>& zigzag_scan() { return kZigzag; }
const std::array<std::uint8_t, 64>& alternate_scan() { return kAlternate; }
const std::array<std::uint8_t, 64>& default_intra_matrix() {
  return kDefaultIntra;
}
const std::array<std::uint8_t, 64>& default_non_intra_matrix() {
  return kDefaultNonIntra;
}

int quantiser_scale(int code, bool q_scale_type) {
  assert(code >= 1 && code <= 31);
  return q_scale_type ? kNonLinearScale[code] : 2 * code;
}

namespace {

/// Applies §7.4.4 mismatch control after all 64 coefficients are final.
void mismatch_control(Block& coeffs, int sum) {
  if ((sum & 1) == 0) {
    coeffs[63] = static_cast<std::int16_t>(coeffs[63] ^ 1);
  }
}

}  // namespace

void dequantize_intra(Block& coeffs, const QuantContext& ctx) {
  int sum = 0;
  coeffs[0] = static_cast<std::int16_t>(coeffs[0] * ctx.intra_dc_mult);
  sum += coeffs[0];
  for (int i = 1; i < 64; ++i) {
    if (coeffs[i] == 0) continue;
    const int v = div_trunc(
        coeffs[i] * 2 * ctx.quantiser_scale * ctx.matrix[i], 32);
    coeffs[i] = static_cast<std::int16_t>(clamp_coeff(v));
    sum += coeffs[i];
  }
  mismatch_control(coeffs, sum);
}

void dequantize_non_intra(Block& coeffs, const QuantContext& ctx) {
  int sum = 0;
  for (int i = 0; i < 64; ++i) {
    if (coeffs[i] == 0) continue;
    const int qf = coeffs[i];
    const int sign = qf > 0 ? 1 : -1;
    const int v =
        div_trunc((2 * qf + sign) * ctx.matrix[i] * ctx.quantiser_scale, 32);
    coeffs[i] = static_cast<std::int16_t>(clamp_coeff(v));
    sum += coeffs[i];
  }
  mismatch_control(coeffs, sum);
}

void dequantize_intra(Block& coeffs, const QuantContext& ctx,
                      BlockSparsity& s) {
  dequantize_intra(coeffs, ctx);
  if (coeffs[63] != 0) s.mark(63);
}

void dequantize_non_intra(Block& coeffs, const QuantContext& ctx,
                          BlockSparsity& s) {
  dequantize_non_intra(coeffs, ctx);
  if (coeffs[63] != 0) s.mark(63);
}

void quantize_intra(const std::array<double, 64>& dct, Block& out,
                    const QuantContext& ctx) {
  // DC: quantized with the fixed precision multiplier.
  int dc = static_cast<int>(std::lround(dct[0] / ctx.intra_dc_mult));
  const int dc_max = 2048 / ctx.intra_dc_mult - 1;
  if (dc > dc_max) dc = dc_max;
  if (dc < 0) dc = 0;  // intra DC of pel data in [0,255] is non-negative
  out[0] = static_cast<std::int16_t>(dc);
  // AC: rounded uniform quantizer, inverse of dequantize_intra.
  for (int i = 1; i < 64; ++i) {
    const double den = 2.0 * ctx.matrix[i] * ctx.quantiser_scale;
    int level = static_cast<int>(std::lround(32.0 * dct[i] / den));
    if (level > 2047) level = 2047;
    if (level < -2047) level = -2047;
    out[i] = static_cast<std::int16_t>(level);
  }
}

void quantize_non_intra(const std::array<double, 64>& dct, Block& out,
                        const QuantContext& ctx) {
  // Dead-zone quantizer (truncation), conventional for inter blocks.
  for (int i = 0; i < 64; ++i) {
    const double den = 2.0 * ctx.matrix[i] * ctx.quantiser_scale;
    const double v = 32.0 * dct[i] / den;
    int level = static_cast<int>(v);  // trunc toward zero
    if (level > 2047) level = 2047;
    if (level < -2047) level = -2047;
    out[i] = static_cast<std::int16_t>(level);
  }
}

}  // namespace pmp2::mpeg2
