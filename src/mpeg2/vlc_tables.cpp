#include "mpeg2/vlc_tables.h"

#include <cassert>
#include <cstdlib>
#include <vector>

#include "mpeg2/types.h"

namespace pmp2::mpeg2 {
namespace {

// ---------------------------------------------------------------------------
// Table B-1: macroblock_address_increment
// ---------------------------------------------------------------------------
constexpr VlcEntry kMbAddrInc[] = {
    {0b1, 1, 1},
    {0b011, 3, 2},
    {0b010, 3, 3},
    {0b0011, 4, 4},
    {0b0010, 4, 5},
    {0b00011, 5, 6},
    {0b00010, 5, 7},
    {0b0000111, 7, 8},
    {0b0000110, 7, 9},
    {0b00001011, 8, 10},
    {0b00001010, 8, 11},
    {0b00001001, 8, 12},
    {0b00001000, 8, 13},
    {0b00000111, 8, 14},
    {0b00000110, 8, 15},
    {0b0000010110, 10, 16},
    {0b0000010101, 10, 17},
    {0b0000010100, 10, 18},
    {0b0000010011, 10, 19},
    {0b0000010010, 10, 20},
    {0b00000100011, 11, 21},
    {0b00000100010, 11, 22},
    {0b00000100001, 11, 23},
    {0b00000100000, 11, 24},
    {0b00000011111, 11, 25},
    {0b00000011110, 11, 26},
    {0b00000011101, 11, 27},
    {0b00000011100, 11, 28},
    {0b00000011011, 11, 29},
    {0b00000011010, 11, 30},
    {0b00000011001, 11, 31},
    {0b00000011000, 11, 32},
    {0b00000010111, 11, 33},
    {0b00000001000, 11, kVlcEscape},    // macroblock_escape (+33)
    {0b00000001111, 11, kVlcStuffing},  // macroblock_stuffing (MPEG-1 only)
};

// ---------------------------------------------------------------------------
// Tables B-2/B-3/B-4: macroblock_type. Values are MbFlags bit combinations.
// ---------------------------------------------------------------------------
constexpr std::int16_t kIntra = MbFlags::kIntra;
constexpr std::int16_t kQuant = MbFlags::kQuant;
constexpr std::int16_t kMf = MbFlags::kMotionForward;
constexpr std::int16_t kMb = MbFlags::kMotionBackward;
constexpr std::int16_t kPat = MbFlags::kPattern;

constexpr VlcEntry kMbTypeI[] = {
    {0b1, 1, kIntra},
    {0b01, 2, static_cast<std::int16_t>(kQuant | kIntra)},
};

constexpr VlcEntry kMbTypeP[] = {
    {0b1, 1, static_cast<std::int16_t>(kMf | kPat)},
    {0b01, 2, kPat},
    {0b001, 3, kMf},
    {0b00011, 5, kIntra},
    {0b00010, 5, static_cast<std::int16_t>(kQuant | kMf | kPat)},
    {0b00001, 5, static_cast<std::int16_t>(kQuant | kPat)},
    {0b000001, 6, static_cast<std::int16_t>(kQuant | kIntra)},
};

constexpr VlcEntry kMbTypeB[] = {
    {0b10, 2, static_cast<std::int16_t>(kMf | kMb)},
    {0b11, 2, static_cast<std::int16_t>(kMf | kMb | kPat)},
    {0b010, 3, kMb},
    {0b011, 3, static_cast<std::int16_t>(kMb | kPat)},
    {0b0010, 4, kMf},
    {0b0011, 4, static_cast<std::int16_t>(kMf | kPat)},
    {0b00011, 5, kIntra},
    {0b00010, 5, static_cast<std::int16_t>(kQuant | kMf | kMb | kPat)},
    {0b000011, 6, static_cast<std::int16_t>(kQuant | kMf | kPat)},
    {0b000010, 6, static_cast<std::int16_t>(kQuant | kMb | kPat)},
    {0b000001, 6, static_cast<std::int16_t>(kQuant | kIntra)},
};

// ---------------------------------------------------------------------------
// Table B-9: coded_block_pattern (4:2:0; cbp 0 is 4:2:2/4:4:4-only but is
// kept so the table is complete).
// ---------------------------------------------------------------------------
constexpr VlcEntry kCodedBlockPattern[] = {
    {0b111, 3, 60},       {0b1101, 4, 4},       {0b1100, 4, 8},
    {0b1011, 4, 16},      {0b1010, 4, 32},      {0b10011, 5, 12},
    {0b10010, 5, 48},     {0b10001, 5, 20},     {0b10000, 5, 40},
    {0b01111, 5, 28},     {0b01110, 5, 44},     {0b01101, 5, 52},
    {0b01100, 5, 56},     {0b01011, 5, 1},      {0b01010, 5, 61},
    {0b01001, 5, 2},      {0b01000, 5, 62},     {0b001111, 6, 24},
    {0b001110, 6, 36},    {0b001101, 6, 3},     {0b001100, 6, 63},
    {0b0010111, 7, 5},    {0b0010110, 7, 9},    {0b0010101, 7, 17},
    {0b0010100, 7, 33},   {0b0010011, 7, 6},    {0b0010010, 7, 10},
    {0b0010001, 7, 18},   {0b0010000, 7, 34},   {0b00011111, 8, 7},
    {0b00011110, 8, 11},  {0b00011101, 8, 19},  {0b00011100, 8, 35},
    {0b00011011, 8, 13},  {0b00011010, 8, 49},  {0b00011001, 8, 21},
    {0b00011000, 8, 41},  {0b00010111, 8, 14},  {0b00010110, 8, 50},
    {0b00010101, 8, 22},  {0b00010100, 8, 42},  {0b00010011, 8, 15},
    {0b00010010, 8, 51},  {0b00010001, 8, 23},  {0b00010000, 8, 43},
    {0b00001111, 8, 25},  {0b00001110, 8, 37},  {0b00001101, 8, 26},
    {0b00001100, 8, 38},  {0b00001011, 8, 29},  {0b00001010, 8, 45},
    {0b00001001, 8, 53},  {0b00001000, 8, 57},  {0b00000111, 8, 30},
    {0b00000110, 8, 46},  {0b00000101, 8, 54},  {0b00000100, 8, 58},
    {0b000000111, 9, 31}, {0b000000110, 9, 47}, {0b000000101, 9, 55},
    {0b000000100, 9, 59}, {0b000000011, 9, 27}, {0b000000010, 9, 39},
    {0b000000001, 9, 0},
};

// ---------------------------------------------------------------------------
// Table B-10: motion_code, fully signed (last bit of each non-zero code is
// the sign: 0 positive, 1 negative).
// ---------------------------------------------------------------------------
constexpr VlcEntry kMotionCode[] = {
    {0b1, 1, 0},
    {0b010, 3, 1},           {0b011, 3, -1},
    {0b0010, 4, 2},          {0b0011, 4, -2},
    {0b00010, 5, 3},         {0b00011, 5, -3},
    {0b0000110, 7, 4},       {0b0000111, 7, -4},
    {0b00001010, 8, 5},      {0b00001011, 8, -5},
    {0b00001000, 8, 6},      {0b00001001, 8, -6},
    {0b00000110, 8, 7},      {0b00000111, 8, -7},
    {0b0000010110, 10, 8},   {0b0000010111, 10, -8},
    {0b0000010100, 10, 9},   {0b0000010101, 10, -9},
    {0b0000010010, 10, 10},  {0b0000010011, 10, -10},
    {0b00000100010, 11, 11}, {0b00000100011, 11, -11},
    {0b00000100000, 11, 12}, {0b00000100001, 11, -12},
    {0b00000011110, 11, 13}, {0b00000011111, 11, -13},
    {0b00000011100, 11, 14}, {0b00000011101, 11, -14},
    {0b00000011010, 11, 15}, {0b00000011011, 11, -15},
    {0b00000011000, 11, 16}, {0b00000011001, 11, -16},
};

// ---------------------------------------------------------------------------
// Tables B-12 / B-13: dct_dc_size
// ---------------------------------------------------------------------------
constexpr VlcEntry kDctDcSizeLuma[] = {
    {0b100, 3, 0},        {0b00, 2, 1},          {0b01, 2, 2},
    {0b101, 3, 3},        {0b110, 3, 4},         {0b1110, 4, 5},
    {0b11110, 5, 6},      {0b111110, 6, 7},      {0b1111110, 7, 8},
    {0b11111110, 8, 9},   {0b111111110, 9, 10},  {0b111111111, 9, 11},
};

constexpr VlcEntry kDctDcSizeChroma[] = {
    {0b00, 2, 0},          {0b01, 2, 1},           {0b10, 2, 2},
    {0b110, 3, 3},         {0b1110, 4, 4},         {0b11110, 5, 5},
    {0b111110, 6, 6},      {0b1111110, 7, 7},      {0b11111110, 8, 8},
    {0b111111110, 9, 9},   {0b1111111110, 10, 10}, {0b1111111111, 10, 11},
};

// ---------------------------------------------------------------------------
// Table B-14: DCT coefficients, table zero. Sign bit excluded. The special
// "first coefficient" form of run 0 / level 1 ('1s') is handled in the block
// decoder, not here.
// ---------------------------------------------------------------------------
constexpr std::int16_t RL(int run, int level) {
  return pack_run_level(run, level);
}

constexpr VlcEntry kDctTableZero[] = {
    {0b10, 2, kVlcEob},
    {0b11, 2, RL(0, 1)},
    {0b011, 3, RL(1, 1)},
    {0b0100, 4, RL(0, 2)},
    {0b0101, 4, RL(2, 1)},
    {0b00101, 5, RL(0, 3)},
    {0b00111, 5, RL(3, 1)},
    {0b00110, 5, RL(4, 1)},
    {0b000110, 6, RL(1, 2)},
    {0b000111, 6, RL(5, 1)},
    {0b000101, 6, RL(6, 1)},
    {0b000100, 6, RL(7, 1)},
    {0b000001, 6, kVlcEscape},
    {0b0000110, 7, RL(0, 4)},
    {0b0000100, 7, RL(2, 2)},
    {0b0000111, 7, RL(8, 1)},
    {0b0000101, 7, RL(9, 1)},
    {0b00100110, 8, RL(0, 5)},
    {0b00100001, 8, RL(0, 6)},
    {0b00100101, 8, RL(1, 3)},
    {0b00100100, 8, RL(3, 2)},
    {0b00100111, 8, RL(10, 1)},
    {0b00100011, 8, RL(11, 1)},
    {0b00100010, 8, RL(12, 1)},
    {0b00100000, 8, RL(13, 1)},
    {0b0000001010, 10, RL(0, 7)},
    {0b0000001100, 10, RL(1, 4)},
    {0b0000001011, 10, RL(2, 3)},
    {0b0000001111, 10, RL(4, 2)},
    {0b0000001001, 10, RL(5, 2)},
    {0b0000001110, 10, RL(14, 1)},
    {0b0000001101, 10, RL(15, 1)},
    {0b0000001000, 10, RL(16, 1)},
    {0b000000011101, 12, RL(0, 8)},
    {0b000000011000, 12, RL(0, 9)},
    {0b000000010011, 12, RL(0, 10)},
    {0b000000010000, 12, RL(0, 11)},
    {0b000000011011, 12, RL(1, 5)},
    {0b000000010100, 12, RL(2, 4)},
    {0b000000011100, 12, RL(3, 3)},
    {0b000000010010, 12, RL(4, 3)},
    {0b000000011110, 12, RL(6, 2)},
    {0b000000010101, 12, RL(7, 2)},
    {0b000000010001, 12, RL(8, 2)},
    {0b000000011111, 12, RL(17, 1)},
    {0b000000011010, 12, RL(18, 1)},
    {0b000000011001, 12, RL(19, 1)},
    {0b000000010111, 12, RL(20, 1)},
    {0b000000010110, 12, RL(21, 1)},
    {0b0000000011010, 13, RL(0, 12)},
    {0b0000000011001, 13, RL(0, 13)},
    {0b0000000011000, 13, RL(0, 14)},
    {0b0000000010111, 13, RL(0, 15)},
    {0b0000000010110, 13, RL(1, 6)},
    {0b0000000010101, 13, RL(1, 7)},
    {0b0000000010100, 13, RL(2, 5)},
    {0b0000000010011, 13, RL(3, 4)},
    {0b0000000010010, 13, RL(5, 3)},
    {0b0000000010001, 13, RL(9, 2)},
    {0b0000000010000, 13, RL(10, 2)},
    {0b0000000011111, 13, RL(22, 1)},
    {0b0000000011110, 13, RL(23, 1)},
    {0b0000000011101, 13, RL(24, 1)},
    {0b0000000011100, 13, RL(25, 1)},
    {0b0000000011011, 13, RL(26, 1)},
    {0b00000000011111, 14, RL(0, 16)},
    {0b00000000011110, 14, RL(0, 17)},
    {0b00000000011101, 14, RL(0, 18)},
    {0b00000000011100, 14, RL(0, 19)},
    {0b00000000011011, 14, RL(0, 20)},
    {0b00000000011010, 14, RL(0, 21)},
    {0b00000000011001, 14, RL(0, 22)},
    {0b00000000011000, 14, RL(0, 23)},
    {0b00000000010111, 14, RL(0, 24)},
    {0b00000000010110, 14, RL(0, 25)},
    {0b00000000010101, 14, RL(0, 26)},
    {0b00000000010100, 14, RL(0, 27)},
    {0b00000000010011, 14, RL(0, 28)},
    {0b00000000010010, 14, RL(0, 29)},
    {0b00000000010001, 14, RL(0, 30)},
    {0b00000000010000, 14, RL(0, 31)},
    {0b000000000011000, 15, RL(0, 32)},
    {0b000000000010111, 15, RL(0, 33)},
    {0b000000000010110, 15, RL(0, 34)},
    {0b000000000010101, 15, RL(0, 35)},
    {0b000000000010100, 15, RL(0, 36)},
    {0b000000000010011, 15, RL(0, 37)},
    {0b000000000010010, 15, RL(0, 38)},
    {0b000000000010001, 15, RL(0, 39)},
    {0b000000000010000, 15, RL(0, 40)},
    {0b000000000011111, 15, RL(1, 8)},
    {0b000000000011110, 15, RL(1, 9)},
    {0b000000000011101, 15, RL(1, 10)},
    {0b000000000011100, 15, RL(1, 11)},
    {0b000000000011011, 15, RL(1, 12)},
    {0b000000000011010, 15, RL(1, 13)},
    {0b000000000011001, 15, RL(1, 14)},
    {0b0000000000010011, 16, RL(1, 15)},
    {0b0000000000010010, 16, RL(1, 16)},
    {0b0000000000010001, 16, RL(1, 17)},
    {0b0000000000010000, 16, RL(1, 18)},
    {0b0000000000010100, 16, RL(6, 3)},
    {0b0000000000011010, 16, RL(11, 2)},
    {0b0000000000011001, 16, RL(12, 2)},
    {0b0000000000011000, 16, RL(13, 2)},
    {0b0000000000010111, 16, RL(14, 2)},
    {0b0000000000010110, 16, RL(15, 2)},
    {0b0000000000010101, 16, RL(16, 2)},
    {0b0000000000011111, 16, RL(27, 1)},
    {0b0000000000011110, 16, RL(28, 1)},
    {0b0000000000011101, 16, RL(29, 1)},
    {0b0000000000011100, 16, RL(30, 1)},
    {0b0000000000011011, 16, RL(31, 1)},
};

// ---------------------------------------------------------------------------
// Table B-15: DCT coefficients, table one (intra_vlc_format = 1).
// Short codes reconstructed (see header note); codes of length >= 10 that
// are not reassigned below are inherited from Table B-14, as in the
// standard.
// ---------------------------------------------------------------------------
constexpr VlcEntry kDctTableOneShort[] = {
    {0b0110, 4, kVlcEob},
    {0b10, 2, RL(0, 1)},
    {0b110, 3, RL(0, 2)},
    {0b0111, 4, RL(0, 3)},
    {0b11100, 5, RL(0, 4)},
    {0b11101, 5, RL(0, 5)},
    {0b000101, 6, RL(0, 6)},
    {0b000100, 6, RL(0, 7)},
    {0b1111011, 7, RL(0, 8)},
    {0b1111100, 7, RL(0, 9)},
    {0b00100011, 8, RL(0, 10)},
    {0b00100010, 8, RL(0, 11)},
    {0b11111010, 8, RL(0, 12)},
    {0b11111011, 8, RL(0, 13)},
    {0b11111110, 8, RL(0, 14)},
    {0b11111111, 8, RL(0, 15)},
    {0b010, 3, RL(1, 1)},
    {0b00110, 5, RL(1, 2)},
    {0b1111001, 7, RL(1, 3)},
    {0b00100111, 8, RL(1, 4)},
    {0b00100000, 8, RL(1, 5)},
    {0b00101, 5, RL(2, 1)},
    {0b0000111, 7, RL(2, 2)},
    {0b11111100, 8, RL(2, 3)},
    {0b00111, 5, RL(3, 1)},
    {0b00100110, 8, RL(3, 2)},
    {0b000110, 6, RL(4, 1)},
    {0b11111101, 8, RL(4, 2)},
    {0b000111, 6, RL(5, 1)},
    {0b0000110, 7, RL(6, 1)},
    {0b0000100, 7, RL(7, 1)},
    {0b0000101, 7, RL(8, 1)},
    {0b1111000, 7, RL(9, 1)},
    {0b1111010, 7, RL(10, 1)},
    {0b00100001, 8, RL(11, 1)},
    {0b00100101, 8, RL(12, 1)},
    {0b00100100, 8, RL(13, 1)},
    {0b000001, 6, kVlcEscape},
};

}  // namespace

// ---------------------------------------------------------------------------
// VlcDecoder
// ---------------------------------------------------------------------------
VlcDecoder::VlcDecoder(std::span<const VlcEntry> entries) {
  max_len_ = 0;
  for (const auto& e : entries) {
    if (e.len > max_len_) max_len_ = e.len;
  }
  const std::size_t size = std::size_t{1} << max_len_;
  table_ = new Result[size];
  for (std::size_t i = 0; i < size; ++i) table_[i] = {0, 0};
  for (const auto& e : entries) {
    const int shift = max_len_ - e.len;
    const std::size_t base = static_cast<std::size_t>(e.code) << shift;
    const std::size_t count = std::size_t{1} << shift;
    for (std::size_t i = 0; i < count; ++i) {
      // Overlap here would mean the table is not prefix-free — a build-time
      // data error, so fail loudly even in release builds.
      if (table_[base + i].len != 0) {
        assert(false && "VLC table is not prefix-free");
        std::abort();
      }
      table_[base + i] = {e.value, e.len};
    }
  }
}

VlcDecoder::~VlcDecoder() { delete[] table_; }

// ---------------------------------------------------------------------------
// Entry-list accessors
// ---------------------------------------------------------------------------
namespace {

// Table one = reconstructed short codes + inherited B-14 long codes for
// every (run, level) not reassigned. Built once.
const std::vector<VlcEntry>& dct_table_one_storage() {
  static const std::vector<VlcEntry> table = [] {
    std::vector<VlcEntry> out(std::begin(kDctTableOneShort),
                              std::end(kDctTableOneShort));
    auto has_value = [&out](std::int16_t v) {
      for (const auto& e : out) {
        if (e.value == v) return true;
      }
      return false;
    };
    for (const auto& e : kDctTableZero) {
      if (e.len >= 10 && !has_value(e.value)) out.push_back(e);
    }
    return out;
  }();
  return table;
}

// Expands an unsigned DCT table into its sign-folded form. Prefix-freeness
// is preserved: appending one bit to every (run, level) code cannot create a
// prefix relation that did not already exist between the unsigned codes, and
// the unchanged EOB/escape codes were already prefix-free against them. The
// decoder constructors re-verify this at build time.
std::vector<VlcEntry> make_signed(std::span<const VlcEntry> entries) {
  std::vector<VlcEntry> out;
  out.reserve(entries.size() * 2);
  for (const auto& e : entries) {
    if (e.value < 0) {  // EOB / escape: no sign bit follows
      out.push_back(e);
      continue;
    }
    const int run = unpack_run(e.value);
    const int level = unpack_level(e.value);
    const auto len = static_cast<std::uint8_t>(e.len + 1);
    out.push_back({e.code << 1, len, pack_signed_run_level(run, level)});
    out.push_back({(e.code << 1) | 1u, len, pack_signed_run_level(run, -level)});
  }
  return out;
}

}  // namespace

std::span<const VlcEntry> mb_addr_inc_entries() { return kMbAddrInc; }
std::span<const VlcEntry> mb_type_i_entries() { return kMbTypeI; }
std::span<const VlcEntry> mb_type_p_entries() { return kMbTypeP; }
std::span<const VlcEntry> mb_type_b_entries() { return kMbTypeB; }
std::span<const VlcEntry> coded_block_pattern_entries() {
  return kCodedBlockPattern;
}
std::span<const VlcEntry> motion_code_entries() { return kMotionCode; }
std::span<const VlcEntry> dct_dc_size_luma_entries() { return kDctDcSizeLuma; }
std::span<const VlcEntry> dct_dc_size_chroma_entries() {
  return kDctDcSizeChroma;
}
std::span<const VlcEntry> dct_table_zero_entries() { return kDctTableZero; }
std::span<const VlcEntry> dct_table_one_entries() {
  return dct_table_one_storage();
}

std::span<const VlcEntry> dct_signed_entries(bool table_one) {
  static const std::vector<VlcEntry> zero =
      make_signed(dct_table_zero_entries());
  static const std::vector<VlcEntry> one =
      make_signed(dct_table_one_entries());
  return table_one ? one : zero;
}

// ---------------------------------------------------------------------------
// Shared decoder instances
// ---------------------------------------------------------------------------
const VlcDecoder& mb_addr_inc_decoder() {
  static const VlcDecoder d(mb_addr_inc_entries());
  return d;
}

const VlcDecoder& mb_type_decoder(int picture_coding_type) {
  static const VlcDecoder di(mb_type_i_entries());
  static const VlcDecoder dp(mb_type_p_entries());
  static const VlcDecoder db(mb_type_b_entries());
  switch (static_cast<PictureType>(picture_coding_type)) {
    case PictureType::kI: return di;
    case PictureType::kP: return dp;
    case PictureType::kB: return db;
  }
  assert(false && "bad picture_coding_type");
  return di;
}

const VlcDecoder& coded_block_pattern_decoder() {
  static const VlcDecoder d(coded_block_pattern_entries());
  return d;
}

const VlcDecoder& motion_code_decoder() {
  static const VlcDecoder d(motion_code_entries());
  return d;
}

const VlcDecoder& dct_dc_size_luma_decoder() {
  static const VlcDecoder d(dct_dc_size_luma_entries());
  return d;
}

const VlcDecoder& dct_dc_size_chroma_decoder() {
  static const VlcDecoder d(dct_dc_size_chroma_entries());
  return d;
}

const VlcDecoder& dct_table_decoder(bool table_one) {
  static const VlcDecoder zero(dct_table_zero_entries());
  static const VlcDecoder one(dct_table_one_entries());
  return table_one ? one : zero;
}

const DctCoeffDecoder& dct_coeff_decoder(bool table_one) {
  static const DctCoeffDecoder zero(dct_signed_entries(false));
  static const DctCoeffDecoder one(dct_signed_entries(true));
  return table_one ? one : zero;
}

// ---------------------------------------------------------------------------
// Encoder-side maps
// ---------------------------------------------------------------------------
namespace {

Code find_code(std::span<const VlcEntry> entries, std::int16_t value) {
  for (const auto& e : entries) {
    if (e.value == value) return {e.code, e.len};
  }
  return {};
}

}  // namespace

Code encode_mb_addr_inc(int increment) {
  assert(increment >= 1 && increment <= 33);
  return find_code(mb_addr_inc_entries(), static_cast<std::int16_t>(increment));
}

Code encode_mb_type(int picture_coding_type, std::uint8_t flags) {
  std::span<const VlcEntry> entries;
  switch (static_cast<PictureType>(picture_coding_type)) {
    case PictureType::kI: entries = mb_type_i_entries(); break;
    case PictureType::kP: entries = mb_type_p_entries(); break;
    case PictureType::kB: entries = mb_type_b_entries(); break;
  }
  return find_code(entries, flags);
}

Code encode_coded_block_pattern(int cbp) {
  assert(cbp >= 0 && cbp <= 63);
  return find_code(coded_block_pattern_entries(),
                   static_cast<std::int16_t>(cbp));
}

Code encode_motion_code(int code) {
  assert(code >= -16 && code <= 16);
  return find_code(motion_code_entries(), static_cast<std::int16_t>(code));
}

Code encode_dct_dc_size(bool luma, int size) {
  assert(size >= 0 && size <= 11);
  return find_code(luma ? dct_dc_size_luma_entries()
                        : dct_dc_size_chroma_entries(),
                   static_cast<std::int16_t>(size));
}

Code encode_dct_run_level(bool table_one, int run, int level) {
  if (run < 0 || run > 31 || level < 1 || level > 40) return {};
  return find_code(table_one ? dct_table_one_entries()
                             : dct_table_zero_entries(),
                   pack_run_level(run, level));
}

Code dct_eob_code(bool table_one) {
  return table_one ? Code{0b0110, 4} : Code{0b10, 2};
}

Code dct_escape_code() { return {0b000001, 6}; }

}  // namespace pmp2::mpeg2

// ---------------------------------------------------------------------------
// TwoLevelVlcDecoder
// ---------------------------------------------------------------------------
namespace pmp2::mpeg2 {

TwoLevelVlcDecoder::TwoLevelVlcDecoder(std::span<const VlcEntry> entries,
                                       int primary_bits)
    : primary_bits_(primary_bits) {
  max_len_ = 0;
  for (const auto& e : entries) {
    if (e.len > max_len_) max_len_ = e.len;
  }
  if (primary_bits_ > max_len_) primary_bits_ = max_len_;
  primary_.assign(std::size_t{1} << primary_bits_, Slot{});

  // Short codes fill primary slots directly.
  for (const auto& e : entries) {
    if (e.len > primary_bits_) continue;
    const int shift = primary_bits_ - e.len;
    const std::size_t base = static_cast<std::size_t>(e.code) << shift;
    for (std::size_t i = 0; i < (std::size_t{1} << shift); ++i) {
      assert(primary_[base + i].len == 0 && "VLC table is not prefix-free");
      primary_[base + i] = {e.value, e.len, -1};
    }
  }
  // Long codes share per-prefix secondary tables.
  const int rest_bits = max_len_ - primary_bits_;
  for (const auto& e : entries) {
    if (e.len <= primary_bits_) continue;
    const std::uint32_t prefix =
        static_cast<std::uint32_t>(e.code) >> (e.len - primary_bits_);
    Slot& slot = primary_[prefix];
    assert(slot.len == 0 && "short code is a prefix of a long code");
    if (slot.secondary < 0) {
      slot.secondary = static_cast<std::int32_t>(secondary_.size());
      secondary_.resize(secondary_.size() + (std::size_t{1} << rest_bits),
                        Result{0, 0});
    }
    // The code's remaining bits, left-aligned within rest_bits.
    const int sec_len = e.len - primary_bits_;
    const std::uint32_t sec_code =
        static_cast<std::uint32_t>(e.code) & ((1u << sec_len) - 1);
    const int shift = rest_bits - sec_len;
    const std::size_t base =
        static_cast<std::size_t>(slot.secondary) +
        (static_cast<std::size_t>(sec_code) << shift);
    for (std::size_t i = 0; i < (std::size_t{1} << shift); ++i) {
      assert(secondary_[base + i].len == 0 && "VLC table is not prefix-free");
      secondary_[base + i] = {e.value, static_cast<std::uint8_t>(e.len)};
    }
  }
}

std::size_t TwoLevelVlcDecoder::table_bytes() const {
  return primary_.size() * sizeof(Slot) + secondary_.size() * sizeof(Result);
}

}  // namespace pmp2::mpeg2
