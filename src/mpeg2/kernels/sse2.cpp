// SSE2 backend: the x86-64 baseline vector ISA, no CPUID gate needed on
// 64-bit hosts. Compiled without extra ISA flags so the whole TU stays
// honest SSE2 (signed 32x32->64 multiplies are emulated with mul_epu32 +
// sign correction; 64-bit arithmetic shifts with the logical-shift
// xor/sub identity — both exact in two's complement).
#include "mpeg2/kernels/backends.h"
#include "mpeg2/kernels/simd_mc.h"

#if defined(PMP2_KERNELS_X86)

#include <emmintrin.h>

#include <cstdint>
#include <cstring>

#include "mpeg2/kernels/simd_idct.h"

namespace pmp2::mpeg2::kernels {
namespace {

using simd::xload;
using simd::xload8;
using simd::xstore;
using simd::xstore8;

// --- IDCT traits -----------------------------------------------------------

/// 64-bit arithmetic shift right (SSE2 has no psraq): logical shift, then
/// sign-propagate with m = 1 << (63 - n): (x >>l n ^ m) - m.
template <int N>
inline __m128i sar64(__m128i x) {
  const __m128i m = _mm_set1_epi64x(std::int64_t{1} << (63 - N));
  return _mm_sub_epi64(_mm_xor_si128(_mm_srli_epi64(x, N), m), m);
}

/// Signed 32x32->64 multiply of the low dword of each 64-bit lane by a
/// non-negative constant: mul_epu32 treats a negative value v as
/// v + 2^32, so subtract c << 32 where the sign bit is set.
inline __m128i mul32x64(__m128i v, __m128i cv) {
  const __m128i p = _mm_mul_epu32(v, cv);
  const __m128i corr =
      _mm_slli_epi64(_mm_and_si128(_mm_srai_epi32(v, 31), cv), 32);
  return _mm_sub_epi64(p, corr);
}

struct Sse2V {
  /// Occupancy crossover (see simd_idct.h): the emulated 64-bit shifts
  /// and signed multiplies (3-4 instructions each, over four register
  /// halves) make this butterfly lose to the scalar column-skipping
  /// kernel at *every* occupancy — measured 0.58x even on fully dense
  /// blocks — so the unreachable threshold routes all IDCT scalar. The
  /// vector body stays compiled and oracle-tested via idct_vector_raw()
  /// for hosts/compilers where the balance differs.
  static constexpr int kMinAcCols = 9;
  struct Row {
    __m128i a, b;  // int32 lanes 0-3, 4-7
  };
  /// Even/odd 64-bit lane split per Row half: e* holds dword lanes {0,2}
  /// (and {4,6}), o* holds {1,3} ({5,7}); mul/widen/narrow keep the
  /// layout consistent so add/sub/shift are plain lanewise ops.
  struct Acc {
    __m128i e0, o0, e1, o1;
  };

  static Row load16(const std::int16_t* p) {
    const __m128i raw =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    return {_mm_srai_epi32(_mm_unpacklo_epi16(raw, raw), 16),
            _mm_srai_epi32(_mm_unpackhi_epi16(raw, raw), 16)};
  }
  static Row zero() {
    return {_mm_setzero_si128(), _mm_setzero_si128()};
  }
  static Row add32(Row x, Row y) {
    return {_mm_add_epi32(x.a, y.a), _mm_add_epi32(x.b, y.b)};
  }
  static Row sub32(Row x, Row y) {
    return {_mm_sub_epi32(x.a, y.a), _mm_sub_epi32(x.b, y.b)};
  }

  static Acc mul(Row r, std::int32_t c) {
    const bool neg = c < 0;
    const __m128i cv = _mm_set1_epi32(neg ? -c : c);
    Acc p{mul32x64(r.a, cv), mul32x64(_mm_srli_epi64(r.a, 32), cv),
          mul32x64(r.b, cv), mul32x64(_mm_srli_epi64(r.b, 32), cv)};
    if (neg) {
      const __m128i z = _mm_setzero_si128();
      p = {_mm_sub_epi64(z, p.e0), _mm_sub_epi64(z, p.o0),
           _mm_sub_epi64(z, p.e1), _mm_sub_epi64(z, p.o1)};
    }
    return p;
  }

  /// (widen(r) << kConstBits) + bias, the even-part term with the pass's
  /// rounding constant folded in.
  static Acc shl13_bias(Row r, std::int64_t bias) {
    const __m128i bv = _mm_set1_epi64x(bias);
    const auto one = [&](__m128i v, bool odd) {
      __m128i w = odd ? sar64<32>(v) : sar64<32>(_mm_slli_epi64(v, 32));
      return _mm_add_epi64(_mm_slli_epi64(w, idct::kConstBits), bv);
    };
    return {one(r.a, false), one(r.a, true), one(r.b, false), one(r.b, true)};
  }

  static Acc add(Acc x, Acc y) {
    return {_mm_add_epi64(x.e0, y.e0), _mm_add_epi64(x.o0, y.o0),
            _mm_add_epi64(x.e1, y.e1), _mm_add_epi64(x.o1, y.o1)};
  }
  static Acc sub(Acc x, Acc y) {
    return {_mm_sub_epi64(x.e0, y.e0), _mm_sub_epi64(x.o0, y.o0),
            _mm_sub_epi64(x.e1, y.e1), _mm_sub_epi64(x.o1, y.o1)};
  }

  /// acc >> N (arithmetic), truncated to the int32 lane layout.
  template <int N>
  static Row sar_narrow(Acc x) {
    const __m128i lo32 = _mm_set1_epi64x(0xffffffffll);
    const auto one = [&](__m128i e, __m128i o) {
      return _mm_or_si128(_mm_and_si128(sar64<N>(e), lo32),
                          _mm_slli_epi64(sar64<N>(o), 32));
    };
    return {one(x.e0, x.o0), one(x.e1, x.o1)};
  }

  static void transpose4(__m128i& r0, __m128i& r1, __m128i& r2,
                         __m128i& r3) {
    const __m128i t0 = _mm_unpacklo_epi32(r0, r1);
    const __m128i t1 = _mm_unpacklo_epi32(r2, r3);
    const __m128i t2 = _mm_unpackhi_epi32(r0, r1);
    const __m128i t3 = _mm_unpackhi_epi32(r2, r3);
    r0 = _mm_unpacklo_epi64(t0, t1);
    r1 = _mm_unpackhi_epi64(t0, t1);
    r2 = _mm_unpacklo_epi64(t2, t3);
    r3 = _mm_unpackhi_epi64(t2, t3);
  }

  /// 8x8 int32 in-place transpose as four 4x4 blocks (off-diagonal pair
  /// swaps).
  static void transpose32(Row m[8]) {
    transpose4(m[0].a, m[1].a, m[2].a, m[3].a);
    transpose4(m[4].b, m[5].b, m[6].b, m[7].b);
    __m128i tr0 = m[0].b, tr1 = m[1].b, tr2 = m[2].b, tr3 = m[3].b;
    __m128i bl0 = m[4].a, bl1 = m[5].a, bl2 = m[6].a, bl3 = m[7].a;
    transpose4(tr0, tr1, tr2, tr3);
    transpose4(bl0, bl1, bl2, bl3);
    m[0].b = bl0;
    m[1].b = bl1;
    m[2].b = bl2;
    m[3].b = bl3;
    m[4].a = tr0;
    m[5].a = tr1;
    m[6].a = tr2;
    m[7].a = tr3;
  }

  /// Truncating int32 -> int16 (the scalar static_cast semantics; the
  /// saturating packs instruction would diverge on fuzz inputs).
  static __m128i trunc16(__m128i v) {
    v = _mm_shufflelo_epi16(v, _MM_SHUFFLE(3, 1, 2, 0));
    v = _mm_shufflehi_epi16(v, _MM_SHUFFLE(3, 1, 2, 0));
    v = _mm_shuffle_epi32(v, _MM_SHUFFLE(3, 1, 2, 0));
    return v;
  }
  static __m128i pack16(Row r) {
    return _mm_unpacklo_epi64(trunc16(r.a), trunc16(r.b));
  }

  /// Pass-2 outputs are the block's columns (lanes = rows): narrow to
  /// int16, 8x8 int16 transpose, row-major store.
  static void store_cols16(Row o[8], std::int16_t* out) {
    __m128i c[8];
    for (int k = 0; k < 8; ++k) c[k] = pack16(o[k]);
    simd::transpose_store_cols16(c, out);
  }
};

void idct_sse2(Block& block, BlockSparsity s) {
  simd::idct_simd<Sse2V>(block, s);
}

void idct_sse2_raw(Block& block, BlockSparsity s) {
  simd::idct_simd_raw<Sse2V>(block, s);
}

// --- motion compensation ---------------------------------------------------

template <bool Avg>
void mc_dispatch_sse2(const std::uint8_t* src, int ref_stride,
                      std::uint8_t* dst, int dst_stride, int w, int h,
                      int mode) {
  switch (mode) {
    case simd::kMcFull:
      simd::mc_rows_xmm<simd::kMcFull, Avg>(src, ref_stride, dst, dst_stride,
                                            w, h);
      break;
    case simd::kMcHx:
      simd::mc_rows_xmm<simd::kMcHx, Avg>(src, ref_stride, dst, dst_stride,
                                          w, h);
      break;
    case simd::kMcHy:
      simd::mc_rows_xmm<simd::kMcHy, Avg>(src, ref_stride, dst, dst_stride,
                                          w, h);
      break;
    default:
      simd::mc_rows_xmm<simd::kMcHv, Avg>(src, ref_stride, dst, dst_stride,
                                          w, h);
      break;
  }
}

void mc_sse2(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
             int dst_stride, int w, int h, bool hx, bool hy, bool avg) {
  if ((w & 7) != 0) {
    // Ragged widths are allowed by the contract but produced by no caller
    // (luma/chroma blocks are 16 or 8 wide); the SWAR path handles them.
    detail::mc_scalar(src, ref_stride, dst, dst_stride, w, h, hx, hy, avg);
    return;
  }
  const int mode = (hx ? 1 : 0) | (hy ? 2 : 0);
  if (avg) {
    mc_dispatch_sse2<true>(src, ref_stride, dst, dst_stride, w, h, mode);
  } else {
    mc_dispatch_sse2<false>(src, ref_stride, dst, dst_stride, w, h, mode);
  }
}

// --- concealment -----------------------------------------------------------

// Concealment is pure row-wise copy/fill, and libc's memcpy/memset already
// dispatch to the widest ISA the host has — a hand-rolled 16-byte SSE2 loop
// measured ~2x slower than glibc's AVX memcpy on wide rows. Delegate.
void conceal_copy_sse2(std::uint8_t* dst, int dst_stride,
                       const std::uint8_t* src, int src_stride, int width,
                       int rows) {
  for (int r = 0; r < rows; ++r) {
    std::memcpy(dst + r * dst_stride, src + r * src_stride,
                static_cast<std::size_t>(width));
  }
}

void conceal_fill_sse2(std::uint8_t* dst, int dst_stride, std::uint8_t value,
                       int width, int rows) {
  for (int r = 0; r < rows; ++r) {
    std::memset(dst + r * dst_stride, value, static_cast<std::size_t>(width));
  }
}

// --- SSE (PSNR) and SAD ----------------------------------------------------

std::uint64_t sse_plane_sse2(const std::uint8_t* a, int stride_a,
                             const std::uint8_t* b, int stride_b, int w,
                             int h) {
  const __m128i zero = _mm_setzero_si128();
  __m128i acc64 = zero;
  std::uint64_t tail = 0;
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* pa = a + y * stride_a;
    const std::uint8_t* pb = b + y * stride_b;
    // 32-bit lanes hold a full row safely: each 16-pel chunk adds at most
    // 2 * 255^2 per lane, so overflow needs rows beyond 260K pels.
    __m128i acc32 = zero;
    int x = 0;
    for (; x + 16 <= w; x += 16) {
      const __m128i va = xload(pa + x);
      const __m128i vb = xload(pb + x);
      const __m128i dlo = _mm_sub_epi16(_mm_unpacklo_epi8(va, zero),
                                        _mm_unpacklo_epi8(vb, zero));
      const __m128i dhi = _mm_sub_epi16(_mm_unpackhi_epi8(va, zero),
                                        _mm_unpackhi_epi8(vb, zero));
      acc32 = _mm_add_epi32(acc32, _mm_madd_epi16(dlo, dlo));
      acc32 = _mm_add_epi32(acc32, _mm_madd_epi16(dhi, dhi));
    }
    for (; x < w; ++x) {
      const int d = static_cast<int>(pa[x]) - static_cast<int>(pb[x]);
      tail += static_cast<std::uint64_t>(d * d);
    }
    acc64 = _mm_add_epi64(acc64,
                          _mm_add_epi64(_mm_unpacklo_epi32(acc32, zero),
                                        _mm_unpackhi_epi32(acc32, zero)));
  }
  alignas(16) std::uint64_t lanes[2];
  _mm_store_si128(reinterpret_cast<__m128i*>(lanes), acc64);
  return lanes[0] + lanes[1] + tail;
}

template <int Mode>
int sad16_rows_sse2(const std::uint8_t* ref, int ref_stride,
                    const std::uint8_t* cur, int cur_stride) {
  __m128i acc = _mm_setzero_si128();
  for (int r = 0; r < 16; ++r) {
    const __m128i p = simd::mc_pels16<Mode>(ref + r * ref_stride, ref_stride);
    acc = _mm_add_epi64(acc, _mm_sad_epu8(p, xload(cur + r * cur_stride)));
  }
  return _mm_cvtsi128_si32(acc) +
         _mm_cvtsi128_si32(_mm_srli_si128(acc, 8));
}

int sad16_sse2(const std::uint8_t* ref, int ref_stride,
               const std::uint8_t* cur, int cur_stride, bool hx, bool hy) {
  const int mode = (hx ? 1 : 0) | (hy ? 2 : 0);
  switch (mode) {
    case simd::kMcFull:
      return sad16_rows_sse2<simd::kMcFull>(ref, ref_stride, cur, cur_stride);
    case simd::kMcHx:
      return sad16_rows_sse2<simd::kMcHx>(ref, ref_stride, cur, cur_stride);
    case simd::kMcHy:
      return sad16_rows_sse2<simd::kMcHy>(ref, ref_stride, cur, cur_stride);
    default:
      return sad16_rows_sse2<simd::kMcHv>(ref, ref_stride, cur, cur_stride);
  }
}

constexpr KernelTable kSse2Table = {
    "sse2",           idct_sse2,         mc_sse2,       conceal_copy_sse2,
    conceal_fill_sse2, sse_plane_sse2,   sad16_sse2,
};

}  // namespace

namespace detail {
const KernelTable* sse2_table() { return &kSse2Table; }
IdctFn sse2_idct_raw() { return idct_sse2_raw; }
}  // namespace detail

}  // namespace pmp2::mpeg2::kernels

#else  // non-x86: backend not compiled; NEON would define its own TU.

namespace pmp2::mpeg2::kernels::detail {
const KernelTable* sse2_table() { return nullptr; }
IdctFn sse2_idct_raw() { return nullptr; }
}  // namespace pmp2::mpeg2::kernels::detail

#endif
