// Scalar backend: the seed PR 2 kernels, verbatim. The IDCT and MC entries
// live next to their machinery (dct.cpp, motion.cpp); the conceal / SSE /
// SAD loops here are the exact loops the call sites ran before dispatch
// existed, kept as the oracle "before" half of every backend comparison.
#include <algorithm>
#include <cstdint>

#include "mpeg2/kernels/backends.h"

namespace pmp2::mpeg2::kernels::detail {

namespace {

void conceal_copy_scalar(std::uint8_t* dst, int dst_stride,
                         const std::uint8_t* src, int src_stride, int width,
                         int rows) {
  for (int r = 0; r < rows; ++r) {
    const std::uint8_t* s = src + r * src_stride;
    std::copy(s, s + width, dst + r * dst_stride);
  }
}

void conceal_fill_scalar(std::uint8_t* dst, int dst_stride,
                         std::uint8_t value, int width, int rows) {
  for (int r = 0; r < rows; ++r) {
    std::uint8_t* d = dst + r * dst_stride;
    std::fill(d, d + width, value);
  }
}

std::uint64_t sse_plane_scalar(const std::uint8_t* a, int stride_a,
                               const std::uint8_t* b, int stride_b, int w,
                               int h) {
  std::uint64_t sse = 0;
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int d = static_cast<int>(a[y * stride_a + x]) -
                    static_cast<int>(b[y * stride_b + x]);
      sse += static_cast<std::uint64_t>(d * d);
    }
  }
  return sse;
}

int sad16_scalar(const std::uint8_t* ref, int ref_stride,
                 const std::uint8_t* cur, int cur_stride, bool hx, bool hy) {
  const int rs = ref_stride;
  int sad = 0;
  for (int row = 0; row < 16; ++row) {
    const std::uint8_t* rr = ref + row * rs;
    const std::uint8_t* cc = cur + row * cur_stride;
    for (int col = 0; col < 16; ++col) {
      int pel;
      if (!hx && !hy) {
        pel = rr[col];
      } else if (hx && !hy) {
        pel = (rr[col] + rr[col + 1] + 1) >> 1;
      } else if (!hx && hy) {
        pel = (rr[col] + rr[col + rs] + 1) >> 1;
      } else {
        pel = (rr[col] + rr[col + 1] + rr[col + rs] + rr[col + rs + 1] + 2) >>
              2;
      }
      sad += pel > cc[col] ? pel - cc[col] : cc[col] - pel;
    }
  }
  return sad;
}

constexpr KernelTable kScalarTable = {
    "scalar",           idct_scalar,        mc_scalar,
    conceal_copy_scalar, conceal_fill_scalar, sse_plane_scalar,
    sad16_scalar,
};

}  // namespace

const KernelTable& scalar_table() { return kScalarTable; }

}  // namespace pmp2::mpeg2::kernels::detail
