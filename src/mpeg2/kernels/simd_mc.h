// XMM (SSE2-baseline) motion-compensation row helpers, shared by the SSE2
// backend and by the AVX2 backend's narrow-width paths. Rounding is exact
// by construction: _mm_avg_epu8 is the standard's (a + b + 1) >> 1, and
// the diagonal case widens to 16-bit lanes for (a + b + c + d + 2) >> 2
// (lane sums <= 4*255 + 2, and results <= 255, so the unsigned pack never
// saturates). Reads never exceed the scalar reference's w+hx columns and
// h+hy rows.
#pragma once

#if defined(__x86_64__) || (defined(__i386__) && defined(__SSE2__))
#define PMP2_KERNELS_X86 1

#include <emmintrin.h>

#include <cstdint>

namespace pmp2::mpeg2::kernels::simd {

inline __m128i xload(const std::uint8_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

inline __m128i xload8(const std::uint8_t* p) {
  return _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
}

inline void xstore(std::uint8_t* p, __m128i v) {
  _mm_storeu_si128(reinterpret_cast<__m128i*>(p), v);
}

inline void xstore8(std::uint8_t* p, __m128i v) {
  _mm_storel_epi64(reinterpret_cast<__m128i*>(p), v);
}

/// Interpolation mode: bit 0 = half-pel x, bit 1 = half-pel y.
enum : int { kMcFull = 0, kMcHx = 1, kMcHy = 2, kMcHv = 3 };

/// Sixteen predicted pels for one row.
template <int Mode>
inline __m128i mc_pels16(const std::uint8_t* s, int ref_stride) {
  if constexpr (Mode == kMcFull) {
    return xload(s);
  } else if constexpr (Mode == kMcHx) {
    return _mm_avg_epu8(xload(s), xload(s + 1));
  } else if constexpr (Mode == kMcHy) {
    return _mm_avg_epu8(xload(s), xload(s + ref_stride));
  } else {
    const __m128i zero = _mm_setzero_si128();
    const __m128i two = _mm_set1_epi16(2);
    const __m128i a = xload(s);
    const __m128i a1 = xload(s + 1);
    const __m128i b = xload(s + ref_stride);
    const __m128i b1 = xload(s + ref_stride + 1);
    __m128i lo = _mm_add_epi16(
        _mm_add_epi16(_mm_unpacklo_epi8(a, zero), _mm_unpacklo_epi8(a1, zero)),
        _mm_add_epi16(_mm_unpacklo_epi8(b, zero),
                      _mm_unpacklo_epi8(b1, zero)));
    __m128i hi = _mm_add_epi16(
        _mm_add_epi16(_mm_unpackhi_epi8(a, zero), _mm_unpackhi_epi8(a1, zero)),
        _mm_add_epi16(_mm_unpackhi_epi8(b, zero),
                      _mm_unpackhi_epi8(b1, zero)));
    lo = _mm_srli_epi16(_mm_add_epi16(lo, two), 2);
    hi = _mm_srli_epi16(_mm_add_epi16(hi, two), 2);
    return _mm_packus_epi16(lo, hi);
  }
}

/// Eight predicted pels for one row (low 64 bits).
template <int Mode>
inline __m128i mc_pels8(const std::uint8_t* s, int ref_stride) {
  if constexpr (Mode == kMcFull) {
    return xload8(s);
  } else if constexpr (Mode == kMcHx) {
    return _mm_avg_epu8(xload8(s), xload8(s + 1));
  } else if constexpr (Mode == kMcHy) {
    return _mm_avg_epu8(xload8(s), xload8(s + ref_stride));
  } else {
    const __m128i zero = _mm_setzero_si128();
    const __m128i two = _mm_set1_epi16(2);
    const __m128i a = _mm_unpacklo_epi8(xload8(s), zero);
    const __m128i a1 = _mm_unpacklo_epi8(xload8(s + 1), zero);
    const __m128i b = _mm_unpacklo_epi8(xload8(s + ref_stride), zero);
    const __m128i b1 = _mm_unpacklo_epi8(xload8(s + ref_stride + 1), zero);
    __m128i sum = _mm_add_epi16(_mm_add_epi16(a, a1), _mm_add_epi16(b, b1));
    sum = _mm_srli_epi16(_mm_add_epi16(sum, two), 2);
    return _mm_packus_epi16(sum, sum);
  }
}

/// MC over rows for widths that are a multiple of 8; Avg is the
/// bidirectional (d + p + 1) >> 1 destination blend.
template <int Mode, bool Avg>
void mc_rows_xmm(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
                 int dst_stride, int w, int h) {
  for (int r = 0; r < h; ++r) {
    const std::uint8_t* s = src + r * ref_stride;
    std::uint8_t* d = dst + r * dst_stride;
    int c = 0;
    for (; c + 16 <= w; c += 16) {
      __m128i p = mc_pels16<Mode>(s + c, ref_stride);
      if constexpr (Avg) p = _mm_avg_epu8(xload(d + c), p);
      xstore(d + c, p);
    }
    if (c < w) {  // the remaining 8 columns (w % 16 == 8)
      __m128i p = mc_pels8<Mode>(s + c, ref_stride);
      if constexpr (Avg) p = _mm_avg_epu8(xload8(d + c), p);
      xstore8(d + c, p);
    }
  }
}

/// Shared IDCT epilogue: `c[k]` holds output column k as 8 int16 lanes
/// (lanes = rows); transpose 8x8 int16 and store row-major. XMM so both
/// the SSE2 and AVX2 backends use the identical network.
inline void transpose_store_cols16(const __m128i c[8], std::int16_t* out) {
  const __m128i p0 = _mm_unpacklo_epi16(c[0], c[1]);
  const __m128i p1 = _mm_unpackhi_epi16(c[0], c[1]);
  const __m128i p2 = _mm_unpacklo_epi16(c[2], c[3]);
  const __m128i p3 = _mm_unpackhi_epi16(c[2], c[3]);
  const __m128i p4 = _mm_unpacklo_epi16(c[4], c[5]);
  const __m128i p5 = _mm_unpackhi_epi16(c[4], c[5]);
  const __m128i p6 = _mm_unpacklo_epi16(c[6], c[7]);
  const __m128i p7 = _mm_unpackhi_epi16(c[6], c[7]);
  const __m128i q0 = _mm_unpacklo_epi32(p0, p2);
  const __m128i q1 = _mm_unpackhi_epi32(p0, p2);
  const __m128i q2 = _mm_unpacklo_epi32(p1, p3);
  const __m128i q3 = _mm_unpackhi_epi32(p1, p3);
  const __m128i q4 = _mm_unpacklo_epi32(p4, p6);
  const __m128i q5 = _mm_unpackhi_epi32(p4, p6);
  const __m128i q6 = _mm_unpacklo_epi32(p5, p7);
  const __m128i q7 = _mm_unpackhi_epi32(p5, p7);
  auto* o16 = reinterpret_cast<__m128i*>(out);
  _mm_storeu_si128(o16 + 0, _mm_unpacklo_epi64(q0, q4));
  _mm_storeu_si128(o16 + 1, _mm_unpackhi_epi64(q0, q4));
  _mm_storeu_si128(o16 + 2, _mm_unpacklo_epi64(q1, q5));
  _mm_storeu_si128(o16 + 3, _mm_unpackhi_epi64(q1, q5));
  _mm_storeu_si128(o16 + 4, _mm_unpacklo_epi64(q2, q6));
  _mm_storeu_si128(o16 + 5, _mm_unpackhi_epi64(q2, q6));
  _mm_storeu_si128(o16 + 6, _mm_unpacklo_epi64(q3, q7));
  _mm_storeu_si128(o16 + 7, _mm_unpackhi_epi64(q3, q7));
}

}  // namespace pmp2::mpeg2::kernels::simd

#endif  // x86
