#include "mpeg2/kernels/kernels.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "mpeg2/kernels/backends.h"

namespace pmp2::mpeg2::kernels {

namespace {

#if defined(__x86_64__) || defined(__i386__)
bool cpu_supports(const char* feature) {
  // __builtin_cpu_supports needs a literal; map the few we ask about.
  std::string_view f(feature);
  if (f == "sse2") return __builtin_cpu_supports("sse2");
  if (f == "ssse3") return __builtin_cpu_supports("ssse3");
  if (f == "sse4.1") return __builtin_cpu_supports("sse4.1");
  if (f == "avx") return __builtin_cpu_supports("avx");
  if (f == "avx2") return __builtin_cpu_supports("avx2");
  return false;
}
#else
bool cpu_supports(const char*) { return false; }
#endif

const KernelTable* table_or_null(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return &detail::scalar_table();
    case Backend::kSse2:
      return cpu_supports("sse2") ? detail::sse2_table() : nullptr;
    case Backend::kAvx2:
      return cpu_supports("avx2") ? detail::avx2_table() : nullptr;
  }
  return nullptr;
}

/// Best available backend, highest ISA first.
const KernelTable* best_table(Backend& chosen) {
  static constexpr Backend kPreference[] = {Backend::kAvx2, Backend::kSse2,
                                            Backend::kScalar};
  for (Backend b : kPreference) {
    if (const KernelTable* t = table_or_null(b)) {
      chosen = b;
      return t;
    }
  }
  chosen = Backend::kScalar;
  return &detail::scalar_table();
}

struct Selection {
  const KernelTable* table;
  Backend backend;
};

/// The PMP2_KERNELS override, resolved once: unknown names and backends
/// the host can't run warn to stderr and fall through to CPUID choice.
Selection initial_selection() {
  Selection sel{};
  if (const char* env = std::getenv("PMP2_KERNELS")) {
    Backend want;
    if (!parse_backend(env, want)) {
      std::fprintf(stderr,
                   "[kernels] PMP2_KERNELS=%s not recognized "
                   "(scalar|sse2|avx2); using CPUID default\n",
                   env);
    } else if (const KernelTable* t = table_or_null(want)) {
      sel.table = t;
      sel.backend = want;
      return sel;
    } else {
      std::fprintf(stderr,
                   "[kernels] PMP2_KERNELS=%s unavailable on this host; "
                   "using CPUID default\n",
                   env);
    }
  }
  sel.table = best_table(sel.backend);
  return sel;
}

std::atomic<const KernelTable*> g_table{nullptr};
std::atomic<int> g_backend{static_cast<int>(Backend::kScalar)};

void ensure_selected() {
  if (g_table.load(std::memory_order_acquire) != nullptr) return;
  // Magic static: selection (env parse + CPUID) runs exactly once even
  // under concurrent first use; the CAS lets an earlier set_backend win.
  static const Selection sel = initial_selection();
  const KernelTable* expected = nullptr;
  if (g_table.compare_exchange_strong(expected, sel.table,
                                      std::memory_order_acq_rel)) {
    g_backend.store(static_cast<int>(sel.backend),
                    std::memory_order_release);
  }
}

}  // namespace

const KernelTable& active() {
  ensure_selected();
  return *g_table.load(std::memory_order_acquire);
}

Backend active_backend() {
  ensure_selected();
  return static_cast<Backend>(g_backend.load(std::memory_order_acquire));
}

bool backend_available(Backend b) { return table_or_null(b) != nullptr; }

std::vector<Backend> available_backends() {
  std::vector<Backend> out;
  for (int i = 0; i < kBackendCount; ++i) {
    const auto b = static_cast<Backend>(i);
    if (backend_available(b)) out.push_back(b);
  }
  return out;
}

const KernelTable& table(Backend b) {
  const KernelTable* t = table_or_null(b);
  return t ? *t : detail::scalar_table();
}

bool set_backend(Backend b) {
  const KernelTable* t = table_or_null(b);
  if (!t) return false;
  g_backend.store(static_cast<int>(b), std::memory_order_release);
  g_table.store(t, std::memory_order_release);
  return true;
}

const char* backend_name(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool parse_backend(std::string_view name, Backend& out) {
  if (name == "scalar") {
    out = Backend::kScalar;
    return true;
  }
  if (name == "sse2") {
    out = Backend::kSse2;
    return true;
  }
  if (name == "avx2") {
    out = Backend::kAvx2;
    return true;
  }
  return false;
}

namespace detail {
IdctFn idct_vector_raw(Backend b) {
  // Host-gated like table_or_null: a raw pointer for an ISA the CPU lacks
  // would fault on first use.
  switch (b) {
    case Backend::kScalar:
      return nullptr;
    case Backend::kSse2:
      return cpu_supports("sse2") ? sse2_idct_raw() : nullptr;
    case Backend::kAvx2:
      return cpu_supports("avx2") ? avx2_idct_raw() : nullptr;
  }
  return nullptr;
}
}  // namespace detail

std::string cpu_features() {
  std::string out;
  static constexpr const char* kProbe[] = {"sse2", "ssse3", "sse4.1", "avx",
                                           "avx2"};
  for (const char* f : kProbe) {
    if (!cpu_supports(f)) continue;
    if (!out.empty()) out += ',';
    out += f;
  }
  if (out.empty()) out = "generic";
  return out;
}

}  // namespace pmp2::mpeg2::kernels
