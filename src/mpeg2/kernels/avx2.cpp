// AVX2 backend. This TU is compiled with -mavx2 (set per-file in
// CMakeLists.txt) and is only ever entered through the dispatch table
// after a CPUID probe, so no function-level target attributes are
// needed. The IDCT keeps the scalar kernel's int64 accumulator width in
// 64-bit ymm lanes (even/odd split, same layout convention as the SSE2
// backend); _mm256_mul_epi32 is a true signed 32x32->64 multiply so no
// sign-correction is required. MC, SAD, and SSE process two rows per
// iteration with 128-bit lane = row.
#include "mpeg2/kernels/backends.h"
#include "mpeg2/kernels/simd_mc.h"

#if defined(PMP2_KERNELS_X86) && defined(__AVX2__)

#include <immintrin.h>

#include <cstdint>
#include <cstring>

#include "mpeg2/kernels/simd_idct.h"

namespace pmp2::mpeg2::kernels {
namespace {

using simd::xload;
using simd::xstore;

inline __m256i yload(const std::uint8_t* p) {
  return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void ystore(std::uint8_t* p, __m256i v) {
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

/// Two consecutive rows of 16 pels, one per 128-bit lane.
inline __m256i yload2(const std::uint8_t* p, int stride) {
  return _mm256_inserti128_si256(_mm256_castsi128_si256(xload(p)),
                                 xload(p + stride), 1);
}

inline void ystore2(std::uint8_t* p, int stride, __m256i v) {
  xstore(p, _mm256_castsi256_si128(v));
  xstore(p + stride, _mm256_extracti128_si256(v, 1));
}

// --- IDCT traits -----------------------------------------------------------

/// 64-bit arithmetic shift right (AVX2 has no vpsraq either): same
/// xor/sub sign-propagation identity as the SSE2 backend.
template <int N>
inline __m256i sar64(__m256i x) {
  const __m256i m = _mm256_set1_epi64x(std::int64_t{1} << (63 - N));
  return _mm256_sub_epi64(_mm256_xor_si256(_mm256_srli_epi64(x, N), m), m);
}

struct Avx2V {
  /// Occupancy crossover (see simd_idct.h): native 64-bit lanes and
  /// _mm256_mul_epi32 keep the butterfly cheap enough to win once a few
  /// columns carry AC energy.
  static constexpr int kMinAcCols = 6;
  using Row = __m256i;  // int32 lanes 0-7
  /// Even/odd 64-bit lane split: e holds dword lanes {0,2,4,6}, o holds
  /// {1,3,5,7}; same convention as the SSE2 traits so the shared kernel
  /// body is layout-agnostic.
  struct Acc {
    __m256i e, o;
  };

  static Row load16(const std::int16_t* p) {
    return _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(p)));
  }
  static Row zero() { return _mm256_setzero_si256(); }
  static Row add32(Row x, Row y) { return _mm256_add_epi32(x, y); }
  static Row sub32(Row x, Row y) { return _mm256_sub_epi32(x, y); }

  static Acc mul(Row r, std::int32_t c) {
    const __m256i cv = _mm256_set1_epi32(c);
    return {_mm256_mul_epi32(r, cv),
            _mm256_mul_epi32(_mm256_srli_epi64(r, 32), cv)};
  }

  /// (widen(r) << kConstBits) + bias. The widen keeps the even/odd
  /// layout (cvtepi32_epi64 would reshuffle lanes), via shift-based
  /// sign extension.
  static Acc shl13_bias(Row r, std::int64_t bias) {
    const __m256i bv = _mm256_set1_epi64x(bias);
    const __m256i e = sar64<32>(_mm256_slli_epi64(r, 32));
    const __m256i o = sar64<32>(r);
    return {_mm256_add_epi64(_mm256_slli_epi64(e, idct::kConstBits), bv),
            _mm256_add_epi64(_mm256_slli_epi64(o, idct::kConstBits), bv)};
  }

  static Acc add(Acc x, Acc y) {
    return {_mm256_add_epi64(x.e, y.e), _mm256_add_epi64(x.o, y.o)};
  }
  static Acc sub(Acc x, Acc y) {
    return {_mm256_sub_epi64(x.e, y.e), _mm256_sub_epi64(x.o, y.o)};
  }

  template <int N>
  static Row sar_narrow(Acc x) {
    const __m256i lo32 = _mm256_set1_epi64x(0xffffffffll);
    return _mm256_or_si256(_mm256_and_si256(sar64<N>(x.e), lo32),
                           _mm256_slli_epi64(sar64<N>(x.o), 32));
  }

  /// 8x8 int32 transpose: dword unpacks, qword unpacks, then the
  /// cross-lane 128-bit shuffles (in-lane unpacks only mix rows r and
  /// r+4's halves, so exactly one permute2x128 layer is needed).
  static void transpose32(Row m[8]) {
    const __m256i t0 = _mm256_unpacklo_epi32(m[0], m[1]);
    const __m256i t1 = _mm256_unpackhi_epi32(m[0], m[1]);
    const __m256i t2 = _mm256_unpacklo_epi32(m[2], m[3]);
    const __m256i t3 = _mm256_unpackhi_epi32(m[2], m[3]);
    const __m256i t4 = _mm256_unpacklo_epi32(m[4], m[5]);
    const __m256i t5 = _mm256_unpackhi_epi32(m[4], m[5]);
    const __m256i t6 = _mm256_unpacklo_epi32(m[6], m[7]);
    const __m256i t7 = _mm256_unpackhi_epi32(m[6], m[7]);
    const __m256i u0 = _mm256_unpacklo_epi64(t0, t2);  // cols 0|4, rows 0-3
    const __m256i u1 = _mm256_unpackhi_epi64(t0, t2);  // cols 1|5
    const __m256i u2 = _mm256_unpacklo_epi64(t1, t3);  // cols 2|6
    const __m256i u3 = _mm256_unpackhi_epi64(t1, t3);  // cols 3|7
    const __m256i u4 = _mm256_unpacklo_epi64(t4, t6);  // rows 4-7
    const __m256i u5 = _mm256_unpackhi_epi64(t4, t6);
    const __m256i u6 = _mm256_unpacklo_epi64(t5, t7);
    const __m256i u7 = _mm256_unpackhi_epi64(t5, t7);
    m[0] = _mm256_permute2x128_si256(u0, u4, 0x20);
    m[1] = _mm256_permute2x128_si256(u1, u5, 0x20);
    m[2] = _mm256_permute2x128_si256(u2, u6, 0x20);
    m[3] = _mm256_permute2x128_si256(u3, u7, 0x20);
    m[4] = _mm256_permute2x128_si256(u0, u4, 0x31);
    m[5] = _mm256_permute2x128_si256(u1, u5, 0x31);
    m[6] = _mm256_permute2x128_si256(u2, u6, 0x31);
    m[7] = _mm256_permute2x128_si256(u3, u7, 0x31);
  }

  /// Truncating int32 -> int16 (scalar static_cast semantics): per-lane
  /// byte gather of the low halves, then collapse the two lanes' low
  /// qwords.
  static __m128i pack16(Row r) {
    const __m256i sh = _mm256_setr_epi8(
        0, 1, 4, 5, 8, 9, 12, 13, -128, -128, -128, -128, -128, -128, -128,
        -128, 0, 1, 4, 5, 8, 9, 12, 13, -128, -128, -128, -128, -128, -128,
        -128, -128);
    const __m256i t = _mm256_shuffle_epi8(r, sh);
    return _mm256_castsi256_si128(
        _mm256_permute4x64_epi64(t, _MM_SHUFFLE(0, 0, 2, 0)));
  }

  static void store_cols16(Row o[8], std::int16_t* out) {
    __m128i c[8];
    for (int k = 0; k < 8; ++k) c[k] = pack16(o[k]);
    simd::transpose_store_cols16(c, out);
  }
};

void idct_avx2(Block& block, BlockSparsity s) {
  simd::idct_simd<Avx2V>(block, s);
}

void idct_avx2_raw(Block& block, BlockSparsity s) {
  simd::idct_simd_raw<Avx2V>(block, s);
}

// --- motion compensation ---------------------------------------------------

/// One row of 16 half-pel-diagonal pels as 16-bit lanes.
inline __m256i hv_row16(const std::uint8_t* s, int ref_stride) {
  const __m256i a = _mm256_cvtepu8_epi16(xload(s));
  const __m256i a1 = _mm256_cvtepu8_epi16(xload(s + 1));
  const __m256i b = _mm256_cvtepu8_epi16(xload(s + ref_stride));
  const __m256i b1 = _mm256_cvtepu8_epi16(xload(s + ref_stride + 1));
  const __m256i sum =
      _mm256_add_epi16(_mm256_add_epi16(a, a1), _mm256_add_epi16(b, b1));
  return _mm256_srli_epi16(_mm256_add_epi16(sum, _mm256_set1_epi16(2)), 2);
}

/// Two rows of 16 predicted pels (lane = row), matching yload2's layout.
template <int Mode>
inline __m256i mc_pels16x2(const std::uint8_t* s, int ref_stride) {
  if constexpr (Mode == simd::kMcFull) {
    return yload2(s, ref_stride);
  } else if constexpr (Mode == simd::kMcHx) {
    return _mm256_avg_epu8(yload2(s, ref_stride), yload2(s + 1, ref_stride));
  } else if constexpr (Mode == simd::kMcHy) {
    return _mm256_avg_epu8(yload2(s, ref_stride),
                           yload2(s + ref_stride, ref_stride));
  } else {
    const __m256i r0 = hv_row16(s, ref_stride);
    const __m256i r1 = hv_row16(s + ref_stride, ref_stride);
    // packus interleaves the rows' qwords across lanes; the permute puts
    // row 0 in lane 0, row 1 in lane 1. No saturation: values <= 255.
    return _mm256_permute4x64_epi64(_mm256_packus_epi16(r0, r1),
                                    _MM_SHUFFLE(3, 1, 2, 0));
  }
}

/// 16-wide MC, two rows per iteration; odd trailing row via the XMM
/// helpers.
template <int Mode, bool Avg>
void mc16_avx2(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
               int dst_stride, int h) {
  int r = 0;
  for (; r + 2 <= h; r += 2) {
    __m256i p = mc_pels16x2<Mode>(src + r * ref_stride, ref_stride);
    if constexpr (Avg)
      p = _mm256_avg_epu8(yload2(dst + r * dst_stride, dst_stride), p);
    ystore2(dst + r * dst_stride, dst_stride, p);
  }
  if (r < h) {
    __m128i p = simd::mc_pels16<Mode>(src + r * ref_stride, ref_stride);
    if constexpr (Avg) p = _mm_avg_epu8(xload(dst + r * dst_stride), p);
    xstore(dst + r * dst_stride, p);
  }
}

template <bool Avg>
void mc_dispatch_avx2(const std::uint8_t* src, int ref_stride,
                      std::uint8_t* dst, int dst_stride, int w, int h,
                      int mode) {
  if (w == 16) {
    switch (mode) {
      case simd::kMcFull:
        mc16_avx2<simd::kMcFull, Avg>(src, ref_stride, dst, dst_stride, h);
        return;
      case simd::kMcHx:
        mc16_avx2<simd::kMcHx, Avg>(src, ref_stride, dst, dst_stride, h);
        return;
      case simd::kMcHy:
        mc16_avx2<simd::kMcHy, Avg>(src, ref_stride, dst, dst_stride, h);
        return;
      default:
        mc16_avx2<simd::kMcHv, Avg>(src, ref_stride, dst, dst_stride, h);
        return;
    }
  }
  switch (mode) {  // 8-wide (chroma) and other multiples of 8
    case simd::kMcFull:
      simd::mc_rows_xmm<simd::kMcFull, Avg>(src, ref_stride, dst, dst_stride,
                                            w, h);
      return;
    case simd::kMcHx:
      simd::mc_rows_xmm<simd::kMcHx, Avg>(src, ref_stride, dst, dst_stride,
                                          w, h);
      return;
    case simd::kMcHy:
      simd::mc_rows_xmm<simd::kMcHy, Avg>(src, ref_stride, dst, dst_stride,
                                          w, h);
      return;
    default:
      simd::mc_rows_xmm<simd::kMcHv, Avg>(src, ref_stride, dst, dst_stride,
                                          w, h);
      return;
  }
}

void mc_avx2(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
             int dst_stride, int w, int h, bool hx, bool hy, bool avg) {
  if ((w & 7) != 0) {
    detail::mc_scalar(src, ref_stride, dst, dst_stride, w, h, hx, hy, avg);
    return;
  }
  const int mode = (hx ? 1 : 0) | (hy ? 2 : 0);
  if (avg) {
    mc_dispatch_avx2<true>(src, ref_stride, dst, dst_stride, w, h, mode);
  } else {
    mc_dispatch_avx2<false>(src, ref_stride, dst, dst_stride, w, h, mode);
  }
}

// --- concealment -----------------------------------------------------------

// Concealment is pure row-wise copy/fill; libc's memcpy/memset already run
// AVX-wide with better alignment handling than a hand loop (an unaligned
// 32-byte ystore loop measured ~30% slower on conceal-width rows).
// Delegate — same choice as the SSE2 backend.
void conceal_copy_avx2(std::uint8_t* dst, int dst_stride,
                       const std::uint8_t* src, int src_stride, int width,
                       int rows) {
  for (int r = 0; r < rows; ++r) {
    std::memcpy(dst + r * dst_stride, src + r * src_stride,
                static_cast<std::size_t>(width));
  }
}

void conceal_fill_avx2(std::uint8_t* dst, int dst_stride, std::uint8_t value,
                       int width, int rows) {
  for (int r = 0; r < rows; ++r) {
    std::memset(dst + r * dst_stride, value, static_cast<std::size_t>(width));
  }
}

// --- SSE (PSNR) and SAD ----------------------------------------------------

std::uint64_t sse_plane_avx2(const std::uint8_t* a, int stride_a,
                             const std::uint8_t* b, int stride_b, int w,
                             int h) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc64 = zero;
  std::uint64_t tail = 0;
  for (int y = 0; y < h; ++y) {
    const std::uint8_t* pa = a + y * stride_a;
    const std::uint8_t* pb = b + y * stride_b;
    // Each 32-pel chunk adds at most 2 * 255^2 per 32-bit lane; safe to
    // ~260K pels per row before the per-row widen.
    __m256i acc32 = zero;
    int x = 0;
    for (; x + 32 <= w; x += 32) {
      const __m256i va = yload(pa + x);
      const __m256i vb = yload(pb + x);
      const __m256i dlo = _mm256_sub_epi16(_mm256_unpacklo_epi8(va, zero),
                                           _mm256_unpacklo_epi8(vb, zero));
      const __m256i dhi = _mm256_sub_epi16(_mm256_unpackhi_epi8(va, zero),
                                           _mm256_unpackhi_epi8(vb, zero));
      acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(dlo, dlo));
      acc32 = _mm256_add_epi32(acc32, _mm256_madd_epi16(dhi, dhi));
    }
    for (; x < w; ++x) {
      const int d = static_cast<int>(pa[x]) - static_cast<int>(pb[x]);
      tail += static_cast<std::uint64_t>(d * d);
    }
    acc64 = _mm256_add_epi64(acc64,
                             _mm256_add_epi64(_mm256_unpacklo_epi32(acc32, zero),
                                              _mm256_unpackhi_epi32(acc32, zero)));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc64);
  return lanes[0] + lanes[1] + lanes[2] + lanes[3] + tail;
}

template <int Mode>
int sad16_rows_avx2(const std::uint8_t* ref, int ref_stride,
                    const std::uint8_t* cur, int cur_stride) {
  __m256i acc = _mm256_setzero_si256();
  for (int r = 0; r < 16; r += 2) {
    const __m256i p = mc_pels16x2<Mode>(ref + r * ref_stride, ref_stride);
    acc = _mm256_add_epi64(
        acc, _mm256_sad_epu8(p, yload2(cur + r * cur_stride, cur_stride)));
  }
  const __m128i s = _mm_add_epi64(_mm256_castsi256_si128(acc),
                                  _mm256_extracti128_si256(acc, 1));
  return _mm_cvtsi128_si32(s) + _mm_cvtsi128_si32(_mm_srli_si128(s, 8));
}

int sad16_avx2(const std::uint8_t* ref, int ref_stride,
               const std::uint8_t* cur, int cur_stride, bool hx, bool hy) {
  const int mode = (hx ? 1 : 0) | (hy ? 2 : 0);
  switch (mode) {
    case simd::kMcFull:
      return sad16_rows_avx2<simd::kMcFull>(ref, ref_stride, cur, cur_stride);
    case simd::kMcHx:
      return sad16_rows_avx2<simd::kMcHx>(ref, ref_stride, cur, cur_stride);
    case simd::kMcHy:
      return sad16_rows_avx2<simd::kMcHy>(ref, ref_stride, cur, cur_stride);
    default:
      return sad16_rows_avx2<simd::kMcHv>(ref, ref_stride, cur, cur_stride);
  }
}

constexpr KernelTable kAvx2Table = {
    "avx2",            idct_avx2,       mc_avx2,       conceal_copy_avx2,
    conceal_fill_avx2, sse_plane_avx2,  sad16_avx2,
};

}  // namespace

namespace detail {
const KernelTable* avx2_table() { return &kAvx2Table; }
IdctFn avx2_idct_raw() { return idct_avx2_raw; }
}  // namespace detail

}  // namespace pmp2::mpeg2::kernels

#else  // toolchain/arch without AVX2 support: backend absent at runtime.

namespace pmp2::mpeg2::kernels::detail {
const KernelTable* avx2_table() { return nullptr; }
IdctFn avx2_idct_raw() { return nullptr; }
}  // namespace pmp2::mpeg2::kernels::detail

#endif
