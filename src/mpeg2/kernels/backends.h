// Internal wiring between the dispatch layer and the backend translation
// units. Not part of the public kernels.h surface.
#pragma once

#include <cstdint>

#include "mpeg2/kernels/kernels.h"
#include "mpeg2/types.h"

namespace pmp2::mpeg2::kernels::detail {

// --- scalar entry points (defined next to the seed implementations) ------

/// The seed sparsity-dispatched IDCT (dct.cpp), verbatim PR 2 behavior.
void idct_scalar(Block& block, BlockSparsity s);

/// idct_scalar minus the idct_collapse entry check, for callers (the SIMD
/// hybrids' occupancy crossover) that have already established no collapse
/// shortcut applies — avoids paying the check twice per block.
void idct_scalar_no_collapse(Block& block, const BlockSparsity& s);

/// Shared collapse paths for ac_col_mask == 0 (DC-only fill and the
/// row-0-only replicate). Returns true when the block was fully handled;
/// SIMD backends call this first so the occupancy-driven shortcuts stay
/// byte-identical — and scalar — across backends.
bool idct_collapse(Block& block, const BlockSparsity& s);

/// Maps an 8-bit row/column occupancy mask to the 4-bit lane-group mask
/// ({1}, {2,3}, {4,5,6}, {7}) driving the 16 kernel instantiations.
unsigned idct_group_of(unsigned mask);

/// The seed SWAR motion-compensation dispatch (motion.cpp).
void mc_scalar(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
               int dst_stride, int w, int h, bool hx, bool hy, bool avg);

// --- per-backend tables ---------------------------------------------------

const KernelTable& scalar_table();

/// Null when the backend is not compiled for this target architecture.
/// Availability on the *host* (CPUID) is dispatch.cpp's concern.
const KernelTable* sse2_table();
const KernelTable* avx2_table();

/// Crossover-free vector IDCT of a backend, for equivalence tests and
/// benchmarks: unlike KernelTable::idct it never hands sparse blocks to
/// the scalar kernel, so the vector butterfly is exercised at every
/// occupancy (SSE2 production IDCT routes everything scalar — its
/// emulated 64-bit lanes lose at all occupancies — yet the vector body
/// must stay oracle-exact for hosts where the tuning differs). Null for
/// the scalar backend and for backends not compiled in.
using IdctFn = void (*)(Block&, BlockSparsity);
IdctFn idct_vector_raw(Backend b);
IdctFn sse2_idct_raw();
IdctFn avx2_idct_raw();

}  // namespace pmp2::mpeg2::kernels::detail
