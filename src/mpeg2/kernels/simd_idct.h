// Vectorized sparsity-aware IDCT, templated over a backend traits type so
// SSE2 and AVX2 (and a future NEON traits type) share one kernel body.
//
// Bit-exactness with the scalar oracle is the design constraint, not an
// aspiration: the scalar kernel accumulates in int64 (pass-2 accumulators
// exceed 2^31 for dense full-range blocks), so the vector kernel keeps
// every accumulator in 64-bit lanes (the traits' Acc type), applies the
// identical constants/shifts/rounding-folds, and truncates to int16 the
// way the scalar static_cast does (no saturating packs). The lane-group
// dispatch survives vectorization: pass 1 runs with lanes = columns (row
// vectors of dead groups fold to literal-zero registers), an 8x8 int32
// register transpose flips the workspace, pass 2 runs with lanes = rows
// (dead column groups fold the same way), 16 instantiations per pass as
// in the scalar kernel. The two scalar collapse shortcuts (DC-only fill,
// row-0-only replicate) stay shared scalar code via idct_collapse, so
// §7.4.4 mismatch blocks (a lone coefficient at position 63 → group 7)
// and every other occupancy class decode byte-identically on all
// backends.
//
// Folding proof sketch (why running the full butterfly on columns the
// scalar shortcuts is still exact): a DC-only column's butterfly yields
// rshift((dc << 13) + 2^10, 11) = dc << 2 in every output lane — exactly
// the scalar DC propagation — because dc·2^13 is a multiple of 2^11 and
// the folded rounding bias shifts out. A coefficient-free column yields
// rshift(2^10, 11) = 0, and pass 2's group folding never reads columns
// outside the read set, matching the scalar's skipped stores.
#pragma once

#include <bit>
#include <cstdint>

#include "mpeg2/kernels/backends.h"
#include "mpeg2/kernels/idct_common.h"
#include "mpeg2/types.h"

namespace pmp2::mpeg2::kernels::simd {

using namespace pmp2::mpeg2::kernels::idct;

// Occupancy crossover for the vector entry: the scalar pass 1 skips
// non-AC columns outright, so a block with only a couple of live columns
// costs it one or two column butterflies, while the vector kernel always
// pays the full 8-wide butterfly plus two register transposes. Below
// V::kMinAcCols AC columns the scalar group dispatch wins (tuned per
// backend on the decoded-stream corpus in bench_micro_kernels — SSE2's
// emulated 64-bit lanes push its crossover higher than AVX2's); at or
// above it the vector kernel does. Any value is bit-exact — both sides
// are oracle equal — the threshold only picks the faster one.

/// The shared LLM butterfly over 8 lane-vectors; kShift selects the pass
/// (pass 1: kConstBits - kPass1Bits, pass 2: kFinalBits) and folds the
/// rounding constant into the even part exactly as the scalar kernels do.
template <typename V, unsigned kG, int kShift>
inline void idct_butterfly_v(typename V::Row x0, typename V::Row x1,
                             typename V::Row x2, typename V::Row x3,
                             typename V::Row x4, typename V::Row x5,
                             typename V::Row x6, typename V::Row x7,
                             typename V::Row out[8]) {
  using Row = typename V::Row;
  using Acc = typename V::Acc;
  constexpr std::int64_t kRound = std::int64_t{1} << (kShift - 1);

  // Even part. x2/x4/x6 are literal-zero registers when their groups are
  // folded; the if constexpr branches drop the same term chains the
  // scalar's constant-folded literal zeros drop, and any multiply that
  // survives on a zero register contributes an exact 0 in int64 — the
  // remaining arithmetic is lanewise identical to the scalar kernel.
  Acc tmp10, tmp11, tmp12, tmp13;
  {
    Acc tmp0e, tmp1e;
    if constexpr ((kG & kGroup456) != 0) {
      tmp0e = V::shl13_bias(V::add32(x0, x4), kRound);
      tmp1e = V::shl13_bias(V::sub32(x0, x4), kRound);
    } else {
      const Acc t = V::shl13_bias(x0, kRound);
      tmp0e = t;
      tmp1e = t;
    }
    if constexpr ((kG & (kGroup23 | kGroup456)) != 0) {
      const Acc z1 = V::mul(V::add32(x2, x6), kFix_0_541196100);
      const Acc tmp2e = V::add(z1, V::mul(x6, -kFix_1_847759065));
      const Acc tmp3e = V::add(z1, V::mul(x2, kFix_0_765366865));
      tmp10 = V::add(tmp0e, tmp3e);
      tmp13 = V::sub(tmp0e, tmp3e);
      tmp11 = V::add(tmp1e, tmp2e);
      tmp12 = V::sub(tmp1e, tmp2e);
    } else {
      tmp10 = tmp0e;
      tmp13 = tmp0e;
      tmp11 = tmp1e;
      tmp12 = tmp1e;
    }
  }

  // Odd part: one live group collapses to four multiplies by the same
  // pre-combined constants as the scalar idct_odd_stage (int64
  // distributivity makes the fold exact); otherwise the general chain.
  Acc o0, o1, o2, o3;
  constexpr int kLive = ((kG & kGroup1) ? 1 : 0) + ((kG & kGroup23) ? 1 : 0) +
                        ((kG & kGroup456) ? 1 : 0) + ((kG & kGroup7) ? 1 : 0);
  if constexpr (kLive == 1) {
    if constexpr ((kG & kGroup1) != 0) {
      o0 = V::mul(x1, kFix_1_175875602 - kFix_0_899976223);
      o1 = V::mul(x1, kFix_1_175875602 - kFix_0_390180644);
      o2 = V::mul(x1, kFix_1_175875602);
      o3 = V::mul(x1, kFix_1_501321110 - kFix_0_899976223 -
                           kFix_0_390180644 + kFix_1_175875602);
    } else if constexpr ((kG & kGroup23) != 0) {
      o0 = V::mul(x3, kFix_1_175875602 - kFix_1_961570560);
      o1 = V::mul(x3, kFix_1_175875602 - kFix_2_562915447);
      o2 = V::mul(x3, kFix_3_072711026 - kFix_2_562915447 -
                           kFix_1_961570560 + kFix_1_175875602);
      o3 = V::mul(x3, kFix_1_175875602);
    } else if constexpr ((kG & kGroup456) != 0) {
      o0 = V::mul(x5, kFix_1_175875602);
      o1 = V::mul(x5, kFix_2_053119869 - kFix_2_562915447 -
                           kFix_0_390180644 + kFix_1_175875602);
      o2 = V::mul(x5, kFix_1_175875602 - kFix_2_562915447);
      o3 = V::mul(x5, kFix_1_175875602 - kFix_0_390180644);
    } else {
      o0 = V::mul(x7, kFix_0_298631336 - kFix_0_899976223 -
                           kFix_1_961570560 + kFix_1_175875602);
      o1 = V::mul(x7, kFix_1_175875602);
      o2 = V::mul(x7, kFix_1_175875602 - kFix_1_961570560);
      o3 = V::mul(x7, kFix_1_175875602 - kFix_0_899976223);
    }
  } else {
    const Row z1r = V::add32(x7, x1);
    const Row z2r = V::add32(x5, x3);
    const Row z3r = V::add32(x7, x3);
    const Row z4r = V::add32(x5, x1);
    const Acc z5 = V::mul(V::add32(z3r, z4r), kFix_1_175875602);
    o0 = V::mul(x7, kFix_0_298631336);
    o1 = V::mul(x5, kFix_2_053119869);
    o2 = V::mul(x3, kFix_3_072711026);
    o3 = V::mul(x1, kFix_1_501321110);
    const Acc z1 = V::mul(z1r, -kFix_0_899976223);
    const Acc z2 = V::mul(z2r, -kFix_2_562915447);
    const Acc z3 = V::add(V::mul(z3r, -kFix_1_961570560), z5);
    const Acc z4 = V::add(V::mul(z4r, -kFix_0_390180644), z5);
    o0 = V::add(o0, V::add(z1, z3));
    o1 = V::add(o1, V::add(z2, z4));
    o2 = V::add(o2, V::add(z2, z3));
    o3 = V::add(o3, V::add(z1, z4));
  }

  out[0] = V::template sar_narrow<kShift>(V::add(tmp10, o3));
  out[7] = V::template sar_narrow<kShift>(V::sub(tmp10, o3));
  out[1] = V::template sar_narrow<kShift>(V::add(tmp11, o2));
  out[6] = V::template sar_narrow<kShift>(V::sub(tmp11, o2));
  out[2] = V::template sar_narrow<kShift>(V::add(tmp12, o1));
  out[5] = V::template sar_narrow<kShift>(V::sub(tmp12, o1));
  out[3] = V::template sar_narrow<kShift>(V::add(tmp13, o0));
  out[4] = V::template sar_narrow<kShift>(V::sub(tmp13, o0));
}

/// Pass 1, lanes = columns: loads the block's rows as vectors, dead row
/// groups become zero registers (clear mask bits are guarantees).
template <typename V, unsigned kG>
void idct_pass1_v(const Block& block, typename V::Row ws[8]) {
  using Row = typename V::Row;
  const std::int16_t* p = block.data();
  const Row x0 = V::load16(p + 0);
  const Row x1 = (kG & kGroup1) ? V::load16(p + 8) : V::zero();
  const Row x2 = (kG & kGroup23) ? V::load16(p + 16) : V::zero();
  const Row x3 = (kG & kGroup23) ? V::load16(p + 24) : V::zero();
  const Row x4 = (kG & kGroup456) ? V::load16(p + 32) : V::zero();
  const Row x5 = (kG & kGroup456) ? V::load16(p + 40) : V::zero();
  const Row x6 = (kG & kGroup456) ? V::load16(p + 48) : V::zero();
  const Row x7 = (kG & kGroup7) ? V::load16(p + 56) : V::zero();
  idct_butterfly_v<V, kG, kConstBits - kPass1Bits>(x0, x1, x2, x3, x4, x5,
                                                   x6, x7, ws);
}

/// Pass 2, lanes = rows: `t` is the transposed workspace (vector j =
/// workspace column j); dead column groups fold to zero registers. The
/// butterfly's outputs are the block's columns, so the int16 results get
/// one 8x8 transpose before the row-major store.
template <typename V, unsigned kG>
void idct_pass2_v(typename V::Row t[8], std::int16_t* out) {
  using Row = typename V::Row;
  const Row x1 = (kG & kGroup1) ? t[1] : V::zero();
  const Row x2 = (kG & kGroup23) ? t[2] : V::zero();
  const Row x3 = (kG & kGroup23) ? t[3] : V::zero();
  const Row x4 = (kG & kGroup456) ? t[4] : V::zero();
  const Row x5 = (kG & kGroup456) ? t[5] : V::zero();
  const Row x6 = (kG & kGroup456) ? t[6] : V::zero();
  const Row x7 = (kG & kGroup7) ? t[7] : V::zero();
  Row o[8];
  idct_butterfly_v<V, kG, kFinalBits>(t[0], x1, x2, x3, x4, x5, x6, x7, o);
  V::store_cols16(o, out);
}

template <typename V>
struct IdctTables {
  using Pass1Fn = void (*)(const Block&, typename V::Row*);
  using Pass2Fn = void (*)(typename V::Row*, std::int16_t*);
  static constexpr Pass1Fn kPass1[16] = {
      idct_pass1_v<V, 0>,  idct_pass1_v<V, 1>,  idct_pass1_v<V, 2>,
      idct_pass1_v<V, 3>,  idct_pass1_v<V, 4>,  idct_pass1_v<V, 5>,
      idct_pass1_v<V, 6>,  idct_pass1_v<V, 7>,  idct_pass1_v<V, 8>,
      idct_pass1_v<V, 9>,  idct_pass1_v<V, 10>, idct_pass1_v<V, 11>,
      idct_pass1_v<V, 12>, idct_pass1_v<V, 13>, idct_pass1_v<V, 14>,
      idct_pass1_v<V, 15>};
  static constexpr Pass2Fn kPass2[16] = {
      idct_pass2_v<V, 0>,  idct_pass2_v<V, 1>,  idct_pass2_v<V, 2>,
      idct_pass2_v<V, 3>,  idct_pass2_v<V, 4>,  idct_pass2_v<V, 5>,
      idct_pass2_v<V, 6>,  idct_pass2_v<V, 7>,  idct_pass2_v<V, 8>,
      idct_pass2_v<V, 9>,  idct_pass2_v<V, 10>, idct_pass2_v<V, 11>,
      idct_pass2_v<V, 12>, idct_pass2_v<V, 13>, idct_pass2_v<V, 14>,
      idct_pass2_v<V, 15>};
};

/// The vector two-pass with per-pass group dispatch; preconditions (no
/// collapse shortcut applies) established by the callers below.
template <typename V>
inline void idct_vector_core(Block& block, const BlockSparsity& s) {
  typename V::Row ws[8];
  IdctTables<V>::kPass1[detail::idct_group_of(s.row_mask)](block, ws);
  V::transpose32(ws);
  IdctTables<V>::kPass2[detail::idct_group_of(s.col_mask)](ws, block.data());
}

/// The backend idct entry: shared scalar collapse shortcuts, the occupancy
/// crossover, then the vector two-pass — exactly mirroring the scalar
/// idct_int's structure with one extra branch.
template <typename V>
void idct_simd(Block& block, BlockSparsity s) {
  if (detail::idct_collapse(block, s)) return;
  if (std::popcount(s.ac_col_mask) < V::kMinAcCols) {
    detail::idct_scalar_no_collapse(block, s);
    return;
  }
  idct_vector_core<V>(block, s);
}

/// Crossover-free variant: every non-collapsed block takes the vector
/// path. Exposed through detail::idct_vector_raw() so equivalence tests
/// and benchmarks can exercise the vector butterfly at occupancies the
/// tuned entry would hand to the scalar kernel (with kMinAcCols == 9 the
/// production entry never vectorizes at all — see the SSE2 traits).
template <typename V>
void idct_simd_raw(Block& block, BlockSparsity s) {
  if (detail::idct_collapse(block, s)) return;
  idct_vector_core<V>(block, s);
}

}  // namespace pmp2::mpeg2::kernels::simd
