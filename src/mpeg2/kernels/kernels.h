// Runtime-dispatched kernel backends for the four hot per-block kernel
// families: the sparsity-aware IDCT, motion-compensation prediction
// (half-pel interpolation + bidirectional averaging), concealment fill
// (copy-conceal and mid-gray synthesis), and the PSNR/SAD accumulation
// used by frame_psnr and the soak/ME paths.
//
// One KernelTable per backend; the active table is chosen once at first
// use from CPUID, overridable with PMP2_KERNELS=scalar|sse2|avx2 (or a
// tool's --kernels flag via set_backend). Every backend is bit-exact
// against the seed-verbatim oracles (tests/kernel_equivalence_test.cpp):
// switching backends never changes a single output byte, only the time it
// takes to produce them. The table is plain function pointers so a NEON
// backend is a drop-in: add Backend::kNeon, a neon.cpp defining its table
// behind __ARM_NEON, and one entry in the dispatch candidate list.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "mpeg2/types.h"

namespace pmp2::mpeg2::kernels {

enum class Backend {
  kScalar = 0,  // seed scalar/SWAR kernels (PR 2), always available
  kSse2 = 1,    // x86-64 baseline vector ISA
  kAvx2 = 2,    // 256-bit integer SIMD, gated on CPUID
  // kNeon would slot in here; keep the count in sync.
};
inline constexpr int kBackendCount = 3;

/// One backend's kernel entry points. All functions are bit-exact across
/// backends; see each member for the contract.
struct KernelTable {
  const char* name;

  /// Sparsity-aware inverse DCT, the idct_int(Block&, BlockSparsity)
  /// contract: clear sparsity bits are guarantees of zero coefficients,
  /// set bits are conservative.
  void (*idct)(Block& block, BlockSparsity s);

  /// Motion-compensated prediction: src points at the integer-pel origin
  /// inside the reference plane (vector already applied), hx/hy select the
  /// half-pel taps, avg blends into dst with (d + p + 1) >> 1 (the
  /// bidirectional second pass). Reads w+hx columns and h+hy rows.
  void (*mc)(const std::uint8_t* src, int ref_stride, std::uint8_t* dst,
             int dst_stride, int w, int h, bool hx, bool hy, bool avg);

  /// Concealment copy: `rows` rows of `width` bytes from src to dst
  /// (copy-conceal from the forward reference).
  void (*conceal_copy)(std::uint8_t* dst, int dst_stride,
                       const std::uint8_t* src, int src_stride, int width,
                       int rows);

  /// Concealment synthesis: `rows` rows of `width` bytes set to `value`.
  void (*conceal_fill)(std::uint8_t* dst, int dst_stride, std::uint8_t value,
                       int width, int rows);

  /// Sum of squared differences over a w x h pel region (PSNR numerator).
  std::uint64_t (*sse_plane)(const std::uint8_t* a, int stride_a,
                             const std::uint8_t* b, int stride_b, int w,
                             int h);

  /// 16x16 SAD between the (optionally half-pel interpolated) reference
  /// window at `ref` and the current macroblock at `cur`.
  int (*sad16)(const std::uint8_t* ref, int ref_stride,
               const std::uint8_t* cur, int cur_stride, bool hx, bool hy);
};

/// The active table. First call selects: PMP2_KERNELS if set (unknown or
/// unavailable values warn to stderr and fall through), else the best
/// CPUID-supported backend. O(1) afterwards (one relaxed atomic load).
const KernelTable& active();

Backend active_backend();

/// True when `b` is compiled in and the host CPU supports it.
bool backend_available(Backend b);

/// All available backends, scalar first.
std::vector<Backend> available_backends();

/// Table for an explicit backend; precondition backend_available(b).
const KernelTable& table(Backend b);

/// Forces the active backend (tests, bench harnesses, --kernels flags).
/// Returns false and leaves the selection unchanged if unavailable. Not
/// intended to race with in-flight decoding.
bool set_backend(Backend b);

const char* backend_name(Backend b);

/// Parses "scalar" | "sse2" | "avx2" (the PMP2_KERNELS values).
bool parse_backend(std::string_view name, Backend& out);

/// CPUID feature bits relevant to kernel selection, comma-joined (e.g.
/// "sse2,ssse3,sse4.1,avx,avx2"); report identity material.
std::string cpu_features();

/// RAII backend pin: stream generation uses it to force the scalar
/// backend so cached artifacts can never depend on the host's dispatch
/// choice (bench_streams/ reuse stays backend-agnostic by construction).
class ScopedBackend {
 public:
  explicit ScopedBackend(Backend b) : prev_(active_backend()) {
    set_backend(b);
  }
  ~ScopedBackend() { set_backend(prev_); }
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  Backend prev_;
};

}  // namespace pmp2::mpeg2::kernels
