// Fixed-point IDCT constants and lane-group masks shared by the SIMD
// backends. These mirror the seed scalar kernel in dct.cpp (FIX(x) =
// round(x * 2^13), LLM/AAN-style islow butterfly); the exhaustive
// equivalence tests pin every backend to the scalar oracle, so the two
// copies cannot drift without tier-1 failing.
#pragma once

#include <cstdint>

namespace pmp2::mpeg2::kernels::idct {

inline constexpr int kConstBits = 13;
inline constexpr int kPass1Bits = 2;
/// Final pass-2 shift: the +3 is the 1/8 normalization of the 2-D
/// transform.
inline constexpr int kFinalBits = kConstBits + kPass1Bits + 3;

inline constexpr std::int32_t kFix_0_298631336 = 2446;
inline constexpr std::int32_t kFix_0_390180644 = 3196;
inline constexpr std::int32_t kFix_0_541196100 = 4433;
inline constexpr std::int32_t kFix_0_765366865 = 6270;
inline constexpr std::int32_t kFix_0_899976223 = 7373;
inline constexpr std::int32_t kFix_1_175875602 = 9633;
inline constexpr std::int32_t kFix_1_501321110 = 12299;
inline constexpr std::int32_t kFix_1_847759065 = 15137;
inline constexpr std::int32_t kFix_1_961570560 = 16069;
inline constexpr std::int32_t kFix_2_053119869 = 16819;
inline constexpr std::int32_t kFix_2_562915447 = 20995;
inline constexpr std::int32_t kFix_3_072711026 = 25172;

/// Lane-group masks, identical to dct.cpp: rows/cols {1}, {2,3}, {4,5,6},
/// {7}; lane 0 (DC) is always live. Lane 7 is its own group because the
/// §7.4.4 mismatch-control coefficient plants a lone value at position 63.
inline constexpr unsigned kGroup1 = 1u;
inline constexpr unsigned kGroup23 = 2u;
inline constexpr unsigned kGroup456 = 4u;
inline constexpr unsigned kGroup7 = 8u;

}  // namespace pmp2::mpeg2::kernels::idct
