#include "mpeg2/frame.h"

#include <cmath>
#include <cstring>
#include <limits>

namespace pmp2::mpeg2 {

namespace {
constexpr int mb_ceil(int pels) {
  return (pels + kMacroblockSize - 1) / kMacroblockSize;
}

std::atomic<int> g_next_trace_id{0};
}  // namespace

Frame::Frame(int width, int height, MemoryTracker* tracker)
    : width_(width),
      height_(height),
      mb_width_(mb_ceil(width)),
      mb_height_(mb_ceil(height)),
      y_(static_cast<std::size_t>(mb_width_ * 16) * (mb_height_ * 16)),
      cb_(y_.size() / 4),
      cr_(y_.size() / 4),
      tracker_(tracker),
      trace_id_(g_next_trace_id.fetch_add(1, std::memory_order_relaxed)) {
  if (tracker_) tracker_->add(bytes());
}

Frame::~Frame() {
  if (tracker_) tracker_->sub(bytes());
}

bool Frame::same_pels(const Frame& other) const {
  return width_ == other.width_ && height_ == other.height_ &&
         std::memcmp(y_.data(), other.y_.data(), y_.size()) == 0 &&
         std::memcmp(cb_.data(), other.cb_.data(), cb_.size()) == 0 &&
         std::memcmp(cr_.data(), other.cr_.data(), cr_.size()) == 0;
}

FramePtr FramePool::acquire() {
  std::unique_ptr<Frame> frame;
  {
    const std::scoped_lock lock(impl_->mutex);
    if (!impl_->free.empty()) {
      frame = std::move(impl_->free.back());
      impl_->free.pop_back();
      ++impl_->hits;
    } else {
      ++impl_->misses;
    }
  }
  if (!frame) {
    frame = std::make_unique<Frame>(impl_->width, impl_->height,
                                    impl_->tracker);
  }
  // The deleter returns the frame to the pool if the pool is still alive,
  // and destroys it otherwise (handles may outlive the pool).
  return FramePtr(frame.release(),
                  [weak = std::weak_ptr<Impl>(impl_)](Frame* f) {
                    if (auto impl = weak.lock()) {
                      const std::scoped_lock lock(impl->mutex);
                      impl->free.emplace_back(f);
                    } else {
                      delete f;
                    }
                  });
}

void FramePool::reserve(std::size_t count) {
  // Allocate outside the lock; the pool is typically cold when called.
  std::vector<std::unique_ptr<Frame>> fresh;
  {
    const std::scoped_lock lock(impl_->mutex);
    if (impl_->free.size() >= count) return;
    fresh.reserve(count - impl_->free.size());
  }
  for (;;) {
    {
      const std::scoped_lock lock(impl_->mutex);
      while (!fresh.empty() && impl_->free.size() < count) {
        impl_->free.push_back(std::move(fresh.back()));
        fresh.pop_back();
      }
      if (impl_->free.size() >= count) return;
    }
    fresh.push_back(std::make_unique<Frame>(impl_->width, impl_->height,
                                            impl_->tracker));
  }
}

std::size_t FramePool::idle_count() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->free.size();
}

std::uint64_t FramePool::hits() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->hits;
}

std::uint64_t FramePool::misses() const {
  const std::scoped_lock lock(impl_->mutex);
  return impl_->misses;
}

double psnr_y(const Frame& a, const Frame& b) {
  double sse = 0.0;
  for (int row = 0; row < a.height(); ++row) {
    const std::uint8_t* pa = a.y() + row * a.y_stride();
    const std::uint8_t* pb = b.y() + row * b.y_stride();
    for (int col = 0; col < a.width(); ++col) {
      const double d = static_cast<double>(pa[col]) - pb[col];
      sse += d * d;
    }
  }
  if (sse == 0.0) return std::numeric_limits<double>::infinity();
  const double mse = sse / (static_cast<double>(a.width()) * a.height());
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace pmp2::mpeg2
