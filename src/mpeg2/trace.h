// Memory-reference trace hooks: the TangoLite substitute.
//
// The paper characterized locality by attaching a memory-system simulator to
// an execution-driven reference generator. Here the decoder itself emits
// logical memory references (frame pels, bitstream bytes, per-processor
// scratch) when a TraceSink is attached; `simcache` consumes them. Logical
// addresses — not raw pointers — are used so traces are identical across
// runs and hosts.
//
// Granularity: references are emitted in up-to-8-byte units (one 64-bit
// access), which is how the decode kernels touch memory; the cache
// simulator splits them across line boundaries.
#pragma once

#include <cstdint>

namespace pmp2::mpeg2 {

/// One logical memory reference.
struct MemRef {
  std::uint64_t addr = 0;
  std::uint16_t size = 0;
  std::uint16_t proc = 0;  // processor id of the accessing worker
  bool write = false;
};

/// Receives the decoder's reference stream. Implementations must be
/// thread-compatible: the parallel decoders attach one sink per worker or
/// an internally synchronized sink.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_ref(const MemRef& ref) = 0;
};

/// Logical address-space layout for traces. Each region is far larger than
/// any real object so regions never collide.
namespace trace_layout {
/// Base of the coded-stream buffer.
constexpr std::uint64_t kStreamBase = 0x1000'0000;
/// Base of frame-plane space; each frame gets a 16 MiB window.
constexpr std::uint64_t kFrameBase = 0x1'0000'0000;
constexpr std::uint64_t kFrameWindow = 16ull << 20;
/// Per-processor scratch (coefficient blocks, IDCT workspace); 64 KiB each.
constexpr std::uint64_t kScratchBase = 0x8000'0000;
constexpr std::uint64_t kScratchWindow = 64ull << 10;

[[nodiscard]] constexpr std::uint64_t frame_addr(int frame_id, int plane,
                                                 std::uint64_t offset) {
  // Planes are laid out consecutively within the frame window at ~4 MiB
  // spacing. A per-frame/per-plane line-granular skew keeps buffers from
  // aliasing to identical cache sets — power-of-2-aligned buffers would
  // fabricate conflict misses no real allocator produces.
  const auto skew = static_cast<std::uint64_t>(
      (frame_id * 147 + plane * 59) % 512);
  return kFrameBase + static_cast<std::uint64_t>(frame_id) * kFrameWindow +
         static_cast<std::uint64_t>(plane) * (4ull << 20) + skew * 64 +
         offset;
}

[[nodiscard]] constexpr std::uint64_t scratch_addr(int proc,
                                                   std::uint64_t offset) {
  return kScratchBase + static_cast<std::uint64_t>(proc) * kScratchWindow +
         offset;
}
}  // namespace trace_layout

/// Convenience emitter: walks a rectangular pel region in row-major order,
/// one <=8-byte reference per run. Used for block reads/writes.
inline void emit_region(TraceSink* sink, int proc, bool write,
                        std::uint64_t base, int stride, int x, int y, int w,
                        int h) {
  if (!sink) return;
  for (int row = 0; row < h; ++row) {
    const std::uint64_t line =
        base + static_cast<std::uint64_t>(y + row) * stride + x;
    int remaining = w;
    std::uint64_t addr = line;
    while (remaining > 0) {
      const int chunk = remaining > 8 ? 8 : remaining;
      sink->on_ref({addr, static_cast<std::uint16_t>(chunk),
                    static_cast<std::uint16_t>(proc), write});
      addr += chunk;
      remaining -= chunk;
    }
  }
}

}  // namespace pmp2::mpeg2
