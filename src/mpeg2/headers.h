// MPEG-2 sequence / GOP / picture headers and their extensions
// (ISO/IEC 13818-2 §6.2–6.3): typed structs plus parse and write functions.
//
// Quantizer matrices are transmitted in zig-zag order in the stream but are
// stored raster-order in these structs (ready for dequantization).
#pragma once

#include <array>
#include <cstdint>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

/// sequence_header() — §6.2.2.1.
struct SequenceHeader {
  int horizontal_size = 0;  // full value (header 12 bits + extension 2)
  int vertical_size = 0;
  int aspect_ratio_code = 1;      // 1 = square pels
  int frame_rate_code = 5;        // 5 = 30 pictures/sec
  std::int64_t bit_rate = 5'000'000;  // bits/sec (coded in 400 bit/s units)
  int vbv_buffer_size_value = 112;
  bool constrained_parameters = false;
  bool load_intra_matrix = false;
  bool load_non_intra_matrix = false;
  std::array<std::uint8_t, 64> intra_matrix{};      // raster order
  std::array<std::uint8_t, 64> non_intra_matrix{};  // raster order

  /// Frames/sec for the standard frame_rate_code values.
  [[nodiscard]] double frame_rate() const;
};

/// sequence_extension() — §6.2.2.3. Always emitted (this is MPEG-2, not
/// MPEG-1).
struct SequenceExtension {
  int profile_and_level = 0x44;  // Main profile @ High level, as the paper
  bool progressive_sequence = true;
  int chroma_format = 1;  // 4:2:0
  bool low_delay = false;
  int frame_rate_ext_n = 0;
  int frame_rate_ext_d = 0;
};

/// group_of_pictures_header() — §6.2.2.6.
struct GopHeader {
  std::uint32_t time_code = 0;  // 25-bit SMPTE time code (opaque here)
  bool closed_gop = true;       // the GOP-parallel decoder requires this
  bool broken_link = false;
};

/// picture_header() — §6.2.3. The full_pel/f_code fields are MPEG-1
/// syntax; MPEG-2 streams code them as 0 and '111' and use the picture
/// coding extension instead.
struct PictureHeader {
  int temporal_reference = 0;
  PictureType type = PictureType::kI;
  int vbv_delay = 0xFFFF;
  bool full_pel_forward = false;
  int forward_f_code = 7;
  bool full_pel_backward = false;
  int backward_f_code = 7;
};

/// picture_coding_extension() — §6.2.3.1.
struct PictureCodingExtension {
  // f_code[s][t]: s = 0 forward / 1 backward, t = 0 horizontal / 1 vertical.
  // 15 means "unused".
  int f_code[2][2] = {{15, 15}, {15, 15}};
  int intra_dc_precision = 0;  // coded 0..3 => precision 8..11
  int picture_structure = 3;   // 3 = frame picture
  bool top_field_first = false;
  bool frame_pred_frame_dct = true;
  bool concealment_motion_vectors = false;
  bool q_scale_type = false;
  bool intra_vlc_format = false;
  bool alternate_scan = false;
  bool repeat_first_field = false;
  bool chroma_420_type = true;
  bool progressive_frame = true;
};

// --- Parsing. Readers are positioned just AFTER the 32-bit startcode.
// Each returns false on malformed syntax (bad marker bits etc.). ----------
bool parse_sequence_header(BitReader& br, SequenceHeader& out);
bool parse_gop_header(BitReader& br, GopHeader& out);
bool parse_picture_header(BitReader& br, PictureHeader& out);

/// Parses an extension_start_code payload. Peeks the 4-bit extension id and
/// fills the matching member; unknown extensions are skipped (up to the next
/// startcode). `seq`/`pce` may each be null if not expected.
bool parse_extension(BitReader& br, SequenceExtension* seq,
                     PictureCodingExtension* pce);

// --- Writing. Each emits its startcode and payload, byte aligned. --------
void write_sequence_header(BitWriter& bw, const SequenceHeader& h);
void write_sequence_extension(BitWriter& bw, const SequenceHeader& h,
                              const SequenceExtension& e);
void write_gop_header(BitWriter& bw, const GopHeader& h);
void write_picture_header(BitWriter& bw, const PictureHeader& h);
void write_picture_coding_extension(BitWriter& bw,
                                    const PictureCodingExtension& e);

}  // namespace pmp2::mpeg2
