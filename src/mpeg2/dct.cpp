#include "mpeg2/dct.h"

#include <cmath>
#include <cstdint>
#include <numbers>

namespace pmp2::mpeg2 {

namespace {

constexpr double kPi = std::numbers::pi;

double basis_c(int u) { return u == 0 ? 1.0 / std::sqrt(2.0) : 1.0; }

}  // namespace

void fdct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out) {
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      double sum = 0.0;
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          sum += in[y * 8 + x] * std::cos((2 * x + 1) * u * kPi / 16.0) *
                 std::cos((2 * y + 1) * v * kPi / 16.0);
        }
      }
      out[v * 8 + u] = 0.25 * basis_c(u) * basis_c(v) * sum;
    }
  }
}

void idct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double sum = 0.0;
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          sum += basis_c(u) * basis_c(v) * in[v * 8 + u] *
                 std::cos((2 * x + 1) * u * kPi / 16.0) *
                 std::cos((2 * y + 1) * v * kPi / 16.0);
        }
      }
      out[y * 8 + x] = 0.25 * sum;
    }
  }
}

namespace {

// Fixed-point constants: FIX(x) = round(x * 2^13).
constexpr int kConstBits = 13;
constexpr int kPass1Bits = 2;

constexpr std::int32_t kFix_0_298631336 = 2446;
constexpr std::int32_t kFix_0_390180644 = 3196;
constexpr std::int32_t kFix_0_541196100 = 4433;
constexpr std::int32_t kFix_0_765366865 = 6270;
constexpr std::int32_t kFix_0_899976223 = 7373;
constexpr std::int32_t kFix_1_175875602 = 9633;
constexpr std::int32_t kFix_1_501321110 = 12299;
constexpr std::int32_t kFix_1_847759065 = 15137;
constexpr std::int32_t kFix_1_961570560 = 16069;
constexpr std::int32_t kFix_2_053119869 = 16819;
constexpr std::int32_t kFix_2_562915447 = 20995;
constexpr std::int32_t kFix_3_072711026 = 25172;

constexpr std::int32_t descale(std::int64_t x, int n) {
  return static_cast<std::int32_t>((x + (std::int64_t{1} << (n - 1))) >> n);
}

constexpr std::int64_t mul(std::int64_t a, std::int32_t b) { return a * b; }

}  // namespace

void idct_int(Block& block) {
  std::int32_t workspace[64];

  // Pass 1: columns, results scaled up by 2^kPass1Bits.
  for (int col = 0; col < 8; ++col) {
    const std::int16_t* in = block.data() + col;
    std::int32_t* ws = workspace + col;

    if (in[8 * 1] == 0 && in[8 * 2] == 0 && in[8 * 3] == 0 &&
        in[8 * 4] == 0 && in[8 * 5] == 0 && in[8 * 6] == 0 &&
        in[8 * 7] == 0) {
      const std::int32_t dc = static_cast<std::int32_t>(in[0]) << kPass1Bits;
      for (int row = 0; row < 8; ++row) ws[8 * row] = dc;
      continue;
    }

    // Even part.
    std::int64_t z2 = in[8 * 2];
    std::int64_t z3 = in[8 * 6];
    std::int64_t z1 = mul(z2 + z3, kFix_0_541196100);
    const std::int64_t tmp2e = z1 + mul(z3, -kFix_1_847759065);
    const std::int64_t tmp3e = z1 + mul(z2, kFix_0_765366865);
    z2 = in[8 * 0];
    z3 = in[8 * 4];
    const std::int64_t tmp0e = (z2 + z3) << kConstBits;
    const std::int64_t tmp1e = (z2 - z3) << kConstBits;
    const std::int64_t tmp10 = tmp0e + tmp3e;
    const std::int64_t tmp13 = tmp0e - tmp3e;
    const std::int64_t tmp11 = tmp1e + tmp2e;
    const std::int64_t tmp12 = tmp1e - tmp2e;

    // Odd part.
    std::int64_t tmp0 = in[8 * 7];
    std::int64_t tmp1 = in[8 * 5];
    std::int64_t tmp2 = in[8 * 3];
    std::int64_t tmp3 = in[8 * 1];
    z1 = tmp0 + tmp3;
    z2 = tmp1 + tmp2;
    z3 = tmp0 + tmp2;
    std::int64_t z4 = tmp1 + tmp3;
    const std::int64_t z5 = mul(z3 + z4, kFix_1_175875602);
    tmp0 = mul(tmp0, kFix_0_298631336);
    tmp1 = mul(tmp1, kFix_2_053119869);
    tmp2 = mul(tmp2, kFix_3_072711026);
    tmp3 = mul(tmp3, kFix_1_501321110);
    z1 = mul(z1, -kFix_0_899976223);
    z2 = mul(z2, -kFix_2_562915447);
    z3 = mul(z3, -kFix_1_961570560) + z5;
    z4 = mul(z4, -kFix_0_390180644) + z5;
    tmp0 += z1 + z3;
    tmp1 += z2 + z4;
    tmp2 += z2 + z3;
    tmp3 += z1 + z4;

    ws[8 * 0] = descale(tmp10 + tmp3, kConstBits - kPass1Bits);
    ws[8 * 7] = descale(tmp10 - tmp3, kConstBits - kPass1Bits);
    ws[8 * 1] = descale(tmp11 + tmp2, kConstBits - kPass1Bits);
    ws[8 * 6] = descale(tmp11 - tmp2, kConstBits - kPass1Bits);
    ws[8 * 2] = descale(tmp12 + tmp1, kConstBits - kPass1Bits);
    ws[8 * 5] = descale(tmp12 - tmp1, kConstBits - kPass1Bits);
    ws[8 * 3] = descale(tmp13 + tmp0, kConstBits - kPass1Bits);
    ws[8 * 4] = descale(tmp13 - tmp0, kConstBits - kPass1Bits);
  }

  // Pass 2: rows, final descale by kConstBits + kPass1Bits + 3 (the +3 is
  // the 1/8 normalization of the 2-D transform).
  for (int row = 0; row < 8; ++row) {
    const std::int32_t* ws = workspace + row * 8;
    std::int16_t* out = block.data() + row * 8;

    // Even part.
    std::int64_t z2 = ws[2];
    std::int64_t z3 = ws[6];
    std::int64_t z1 = mul(z2 + z3, kFix_0_541196100);
    const std::int64_t tmp2e = z1 + mul(z3, -kFix_1_847759065);
    const std::int64_t tmp3e = z1 + mul(z2, kFix_0_765366865);
    z2 = ws[0];
    z3 = ws[4];
    const std::int64_t tmp0e = (z2 + z3) << kConstBits;
    const std::int64_t tmp1e = (z2 - z3) << kConstBits;
    const std::int64_t tmp10 = tmp0e + tmp3e;
    const std::int64_t tmp13 = tmp0e - tmp3e;
    const std::int64_t tmp11 = tmp1e + tmp2e;
    const std::int64_t tmp12 = tmp1e - tmp2e;

    // Odd part.
    std::int64_t tmp0 = ws[7];
    std::int64_t tmp1 = ws[5];
    std::int64_t tmp2 = ws[3];
    std::int64_t tmp3 = ws[1];
    z1 = tmp0 + tmp3;
    z2 = tmp1 + tmp2;
    z3 = tmp0 + tmp2;
    std::int64_t z4 = tmp1 + tmp3;
    const std::int64_t z5 = mul(z3 + z4, kFix_1_175875602);
    tmp0 = mul(tmp0, kFix_0_298631336);
    tmp1 = mul(tmp1, kFix_2_053119869);
    tmp2 = mul(tmp2, kFix_3_072711026);
    tmp3 = mul(tmp3, kFix_1_501321110);
    z1 = mul(z1, -kFix_0_899976223);
    z2 = mul(z2, -kFix_2_562915447);
    z3 = mul(z3, -kFix_1_961570560) + z5;
    z4 = mul(z4, -kFix_0_390180644) + z5;
    tmp0 += z1 + z3;
    tmp1 += z2 + z4;
    tmp2 += z2 + z3;
    tmp3 += z1 + z4;

    constexpr int kFinal = kConstBits + kPass1Bits + 3;
    out[0] = static_cast<std::int16_t>(descale(tmp10 + tmp3, kFinal));
    out[7] = static_cast<std::int16_t>(descale(tmp10 - tmp3, kFinal));
    out[1] = static_cast<std::int16_t>(descale(tmp11 + tmp2, kFinal));
    out[6] = static_cast<std::int16_t>(descale(tmp11 - tmp2, kFinal));
    out[2] = static_cast<std::int16_t>(descale(tmp12 + tmp1, kFinal));
    out[5] = static_cast<std::int16_t>(descale(tmp12 - tmp1, kFinal));
    out[3] = static_cast<std::int16_t>(descale(tmp13 + tmp0, kFinal));
    out[4] = static_cast<std::int16_t>(descale(tmp13 - tmp0, kFinal));
  }
}

}  // namespace pmp2::mpeg2
