#include "mpeg2/dct.h"

#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <numbers>

#include "mpeg2/kernels/backends.h"
#include "mpeg2/kernels/kernels.h"

namespace pmp2::mpeg2 {

namespace {

constexpr double kPi = std::numbers::pi;

double basis_c(int u) { return u == 0 ? 1.0 / std::sqrt(2.0) : 1.0; }

}  // namespace

void fdct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out) {
  for (int v = 0; v < 8; ++v) {
    for (int u = 0; u < 8; ++u) {
      double sum = 0.0;
      for (int y = 0; y < 8; ++y) {
        for (int x = 0; x < 8; ++x) {
          sum += in[y * 8 + x] * std::cos((2 * x + 1) * u * kPi / 16.0) *
                 std::cos((2 * y + 1) * v * kPi / 16.0);
        }
      }
      out[v * 8 + u] = 0.25 * basis_c(u) * basis_c(v) * sum;
    }
  }
}

void idct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out) {
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) {
      double sum = 0.0;
      for (int v = 0; v < 8; ++v) {
        for (int u = 0; u < 8; ++u) {
          sum += basis_c(u) * basis_c(v) * in[v * 8 + u] *
                 std::cos((2 * x + 1) * u * kPi / 16.0) *
                 std::cos((2 * y + 1) * v * kPi / 16.0);
        }
      }
      out[y * 8 + x] = 0.25 * sum;
    }
  }
}

namespace {

// Fixed-point constants: FIX(x) = round(x * 2^13).
constexpr int kConstBits = 13;
constexpr int kPass1Bits = 2;

constexpr std::int32_t kFix_0_298631336 = 2446;
constexpr std::int32_t kFix_0_390180644 = 3196;
constexpr std::int32_t kFix_0_541196100 = 4433;
constexpr std::int32_t kFix_0_765366865 = 6270;
constexpr std::int32_t kFix_0_899976223 = 7373;
constexpr std::int32_t kFix_1_175875602 = 9633;
constexpr std::int32_t kFix_1_501321110 = 12299;
constexpr std::int32_t kFix_1_847759065 = 15137;
constexpr std::int32_t kFix_1_961570560 = 16069;
constexpr std::int32_t kFix_2_053119869 = 16819;
constexpr std::int32_t kFix_2_562915447 = 20995;
constexpr std::int32_t kFix_3_072711026 = 25172;

constexpr std::int32_t descale(std::int64_t x, int n) {
  return static_cast<std::int32_t>((x + (std::int64_t{1} << (n - 1))) >> n);
}

/// Shift without the rounding add: used where the rounding constant has
/// already been folded into the accumulator (descale(a + b, n) ==
/// rshift(a + r + b, n) with r = 2^(n-1) — the kernels fold r into the
/// even-part terms once instead of adding it in every one of the eight
/// output descales).
constexpr std::int32_t rshift(std::int64_t x, int n) {
  return static_cast<std::int32_t>(x >> n);
}

constexpr std::int64_t mul(std::int64_t a, std::int32_t b) { return a * b; }

// Sparse dispatch groups rows (pass 1) and columns (pass 2) into four lane
// sets {1}, {2,3}, {4,5,6}, {7} — index 0 (the DC lane) is always live. A
// 4-bit group mask selects one of 16 kernel instantiations in which the
// loads of guaranteed-zero lanes constant-fold to 0 and the multiplies on
// them vanish. The surviving arithmetic is identical to the full kernel's,
// keeping every instantiation bit-exact; group masks are conservative the
// same way the sparsity masks are. Group granularity (not per-lane, 256
// variants) keeps the generated code icache-resident, and the lane sets
// follow the measured occupancy of decoded coefficient blocks: real
// content concentrates in rows/cols 0-3, lanes 4-6 are nearly always
// empty, and lane 7 gets its own group because the mismatch-control
// coefficient (ISO 13818-2 7.4.4 toggles position 63) plants a lone value
// at row 7 / col 7 in most non-intra blocks — pairing lane 7 with lane 6
// would drag the even-part work for never-occupied lane 6 into two thirds
// of all blocks.
constexpr unsigned kGroup1 = 1u;    // row/col 1
constexpr unsigned kGroup23 = 2u;   // rows/cols 2-3
constexpr unsigned kGroup456 = 4u;  // rows/cols 4-6
constexpr unsigned kGroup7 = 8u;    // row/col 7
constexpr unsigned kGroupAll = 15u;

/// Maps an 8-bit occupancy mask to its 4-bit lane-group mask.
constexpr std::array<std::uint8_t, 256> make_group_table() {
  std::array<std::uint8_t, 256> t{};
  for (unsigned m = 0; m < 256; ++m) {
    unsigned g = 0;
    if (m & 0x02u) g |= kGroup1;
    if (m & 0x0Cu) g |= kGroup23;
    if (m & 0x70u) g |= kGroup456;
    if (m & 0x80u) g |= kGroup7;
    t[m] = static_cast<std::uint8_t>(g);
  }
  return t;
}
constexpr std::array<std::uint8_t, 256> kGroupOf = make_group_table();

/// Columns the pass-2 kernel for group `g` actually reads: column 0 plus
/// both members of every live pair. Pass 1 skips the workspace stores for
/// any column outside this set — such a column has no coefficients at all
/// (the read set is a superset of col_mask's expansion), so its workspace
/// value is zero and pass 2's instantiation folds it away without loading.
constexpr std::array<std::uint8_t, 16> make_group_read_cols() {
  std::array<std::uint8_t, 16> t{};
  for (unsigned g = 0; g < 16; ++g) {
    unsigned m = 0x01u;
    if (g & kGroup1) m |= 0x02u;
    if (g & kGroup23) m |= 0x0Cu;
    if (g & kGroup456) m |= 0x70u;
    if (g & kGroup7) m |= 0x80u;
    t[g] = static_cast<std::uint8_t>(m);
  }
  return t;
}
constexpr std::array<std::uint8_t, 16> kGroupReadCols = make_group_read_cols();

/// Odd stage of the LLM butterfly, shared by both passes. Takes the lane
/// values for rows/columns 1, 3, 5, 7 (literal zero where the group mask
/// folds a lane away) and produces the four accumulator terms: o3 pairs
/// with tmp10 (outputs 0/7), o2 with tmp11, o1 with tmp12, o0 with tmp13.
///
/// Each lane group holds exactly one odd lane (g1->1, g23->3, g456->5,
/// g7->7), so when a single group is live the whole stage collapses to four
/// multiplies by pre-combined constants. The fold is bit-identical to the
/// general chain: every surviving product shares the same lane value, and
/// int64 distributivity (c1*x + c2*x == (c1+c2)*x) is exact.
template <unsigned kG>
inline void idct_odd_stage(std::int64_t x1, std::int64_t x3, std::int64_t x5,
                           std::int64_t x7, std::int64_t& o0, std::int64_t& o1,
                           std::int64_t& o2, std::int64_t& o3) {
  constexpr int kLive = ((kG & kGroup1) ? 1 : 0) + ((kG & kGroup23) ? 1 : 0) +
                        ((kG & kGroup456) ? 1 : 0) + ((kG & kGroup7) ? 1 : 0);
  if constexpr (kLive == 1) {
    if constexpr ((kG & kGroup1) != 0) {
      o0 = mul(x1, kFix_1_175875602 - kFix_0_899976223);
      o1 = mul(x1, kFix_1_175875602 - kFix_0_390180644);
      o2 = mul(x1, kFix_1_175875602);
      o3 = mul(x1, kFix_1_501321110 - kFix_0_899976223 - kFix_0_390180644 +
                       kFix_1_175875602);
    } else if constexpr ((kG & kGroup23) != 0) {
      o0 = mul(x3, kFix_1_175875602 - kFix_1_961570560);
      o1 = mul(x3, kFix_1_175875602 - kFix_2_562915447);
      o2 = mul(x3, kFix_3_072711026 - kFix_2_562915447 - kFix_1_961570560 +
                       kFix_1_175875602);
      o3 = mul(x3, kFix_1_175875602);
    } else if constexpr ((kG & kGroup456) != 0) {
      o0 = mul(x5, kFix_1_175875602);
      o1 = mul(x5, kFix_2_053119869 - kFix_2_562915447 - kFix_0_390180644 +
                       kFix_1_175875602);
      o2 = mul(x5, kFix_1_175875602 - kFix_2_562915447);
      o3 = mul(x5, kFix_1_175875602 - kFix_0_390180644);
    } else {
      o0 = mul(x7, kFix_0_298631336 - kFix_0_899976223 - kFix_1_961570560 +
                       kFix_1_175875602);
      o1 = mul(x7, kFix_1_175875602);
      o2 = mul(x7, kFix_1_175875602 - kFix_1_961570560);
      o3 = mul(x7, kFix_1_175875602 - kFix_0_899976223);
    }
  } else {
    std::int64_t z1 = x7 + x1;
    std::int64_t z2 = x5 + x3;
    std::int64_t z3 = x7 + x3;
    std::int64_t z4 = x5 + x1;
    const std::int64_t z5 = mul(z3 + z4, kFix_1_175875602);
    o0 = mul(x7, kFix_0_298631336);
    o1 = mul(x5, kFix_2_053119869);
    o2 = mul(x3, kFix_3_072711026);
    o3 = mul(x1, kFix_1_501321110);
    z1 = mul(z1, -kFix_0_899976223);
    z2 = mul(z2, -kFix_2_562915447);
    z3 = mul(z3, -kFix_1_961570560) + z5;
    z4 = mul(z4, -kFix_0_390180644) + z5;
    o0 += z1 + z3;
    o1 += z2 + z4;
    o2 += z2 + z3;
    o3 += z1 + z4;
  }
}

/// Pass 1 for one column with at least one nonzero AC coefficient: `in` and
/// `ws` point at the column's first element, stride 8. Results scaled up by
/// 2^kPass1Bits. `kG` is the row pair-group mask.
template <unsigned kG>
inline void idct_pass1_column(const std::int16_t* in, std::int32_t* ws) {
  // Even part.
  std::int64_t z2 = (kG & kGroup23) ? in[8 * 2] : 0;
  std::int64_t z3 = (kG & kGroup456) ? in[8 * 6] : 0;
  std::int64_t z1 = mul(z2 + z3, kFix_0_541196100);
  const std::int64_t tmp2e = z1 + mul(z3, -kFix_1_847759065);
  const std::int64_t tmp3e = z1 + mul(z2, kFix_0_765366865);
  z2 = in[8 * 0];
  z3 = (kG & kGroup456) ? in[8 * 4] : 0;
  // Rounding for the final >> of this pass, folded in once (see rshift).
  constexpr std::int64_t kRound = std::int64_t{1}
                                  << (kConstBits - kPass1Bits - 1);
  const std::int64_t tmp0e = ((z2 + z3) << kConstBits) + kRound;
  const std::int64_t tmp1e = ((z2 - z3) << kConstBits) + kRound;
  const std::int64_t tmp10 = tmp0e + tmp3e;
  const std::int64_t tmp13 = tmp0e - tmp3e;
  const std::int64_t tmp11 = tmp1e + tmp2e;
  const std::int64_t tmp12 = tmp1e - tmp2e;

  // Odd part.
  std::int64_t tmp0, tmp1, tmp2, tmp3;
  idct_odd_stage<kG>((kG & kGroup1) ? in[8 * 1] : 0,
                     (kG & kGroup23) ? in[8 * 3] : 0,
                     (kG & kGroup456) ? in[8 * 5] : 0,
                     (kG & kGroup7) ? in[8 * 7] : 0, tmp0, tmp1, tmp2, tmp3);

  ws[8 * 0] = rshift(tmp10 + tmp3, kConstBits - kPass1Bits);
  ws[8 * 7] = rshift(tmp10 - tmp3, kConstBits - kPass1Bits);
  ws[8 * 1] = rshift(tmp11 + tmp2, kConstBits - kPass1Bits);
  ws[8 * 6] = rshift(tmp11 - tmp2, kConstBits - kPass1Bits);
  ws[8 * 2] = rshift(tmp12 + tmp1, kConstBits - kPass1Bits);
  ws[8 * 5] = rshift(tmp12 - tmp1, kConstBits - kPass1Bits);
  ws[8 * 3] = rshift(tmp13 + tmp0, kConstBits - kPass1Bits);
  ws[8 * 4] = rshift(tmp13 - tmp0, kConstBits - kPass1Bits);
}

/// Pass 2 for one row: final descale by kConstBits + kPass1Bits + 3 (the +3
/// is the 1/8 normalization of the 2-D transform). `kG` is the column
/// pair-group mask, exactly as the row groups bound pass 1.
template <unsigned kG>
inline void idct_pass2_row(const std::int32_t* ws, std::int16_t* out) {
  // Even part.
  std::int64_t z2 = (kG & kGroup23) ? ws[2] : 0;
  std::int64_t z3 = (kG & kGroup456) ? ws[6] : 0;
  std::int64_t z1 = mul(z2 + z3, kFix_0_541196100);
  const std::int64_t tmp2e = z1 + mul(z3, -kFix_1_847759065);
  const std::int64_t tmp3e = z1 + mul(z2, kFix_0_765366865);
  z2 = ws[0];
  z3 = (kG & kGroup456) ? ws[4] : 0;
  // Rounding for the final >> of this pass, folded in once (see rshift).
  constexpr std::int64_t kRound = std::int64_t{1}
                                  << (kConstBits + kPass1Bits + 3 - 1);
  const std::int64_t tmp0e = ((z2 + z3) << kConstBits) + kRound;
  const std::int64_t tmp1e = ((z2 - z3) << kConstBits) + kRound;
  const std::int64_t tmp10 = tmp0e + tmp3e;
  const std::int64_t tmp13 = tmp0e - tmp3e;
  const std::int64_t tmp11 = tmp1e + tmp2e;
  const std::int64_t tmp12 = tmp1e - tmp2e;

  // Odd part.
  std::int64_t tmp0, tmp1, tmp2, tmp3;
  idct_odd_stage<kG>((kG & kGroup1) ? ws[1] : 0, (kG & kGroup23) ? ws[3] : 0,
                     (kG & kGroup456) ? ws[5] : 0, (kG & kGroup7) ? ws[7] : 0,
                     tmp0, tmp1, tmp2, tmp3);

  constexpr int kFinal = kConstBits + kPass1Bits + 3;
  out[0] = static_cast<std::int16_t>(rshift(tmp10 + tmp3, kFinal));
  out[7] = static_cast<std::int16_t>(rshift(tmp10 - tmp3, kFinal));
  out[1] = static_cast<std::int16_t>(rshift(tmp11 + tmp2, kFinal));
  out[6] = static_cast<std::int16_t>(rshift(tmp11 - tmp2, kFinal));
  out[2] = static_cast<std::int16_t>(rshift(tmp12 + tmp1, kFinal));
  out[5] = static_cast<std::int16_t>(rshift(tmp12 - tmp1, kFinal));
  out[3] = static_cast<std::int16_t>(rshift(tmp13 + tmp0, kFinal));
  out[4] = static_cast<std::int16_t>(rshift(tmp13 - tmp0, kFinal));
}

}  // namespace

void idct_int_dense(Block& block) {
  std::int32_t workspace[64];

  // Pass 1: columns, results scaled up by 2^kPass1Bits.
  for (int col = 0; col < 8; ++col) {
    const std::int16_t* in = block.data() + col;
    std::int32_t* ws = workspace + col;

    if (in[8 * 1] == 0 && in[8 * 2] == 0 && in[8 * 3] == 0 &&
        in[8 * 4] == 0 && in[8 * 5] == 0 && in[8 * 6] == 0 &&
        in[8 * 7] == 0) {
      const std::int32_t dc = static_cast<std::int32_t>(in[0]) << kPass1Bits;
      for (int row = 0; row < 8; ++row) ws[8 * row] = dc;
      continue;
    }
    idct_pass1_column<kGroupAll>(in, ws);
  }

  // Pass 2: rows.
  for (int row = 0; row < 8; ++row) {
    idct_pass2_row<kGroupAll>(workspace + row * 8, block.data() + row * 8);
  }
}

namespace {

/// Pass 1 over all 8 columns: active columns (AC mask bit set) get the
/// group-bounded kernel, DC-only columns in pass 2's read set propagate
/// in[col] << kPass1Bits, and columns pass 2 never reads are skipped
/// outright (they are coefficient-free, so their workspace value is zero).
template <unsigned kG>
void idct_pass1_all(const Block& block, std::int32_t* workspace,
                    unsigned ac_cols, unsigned store_cols) {
  for (int col = 0; col < 8; ++col) {
    const std::int16_t* in = block.data() + col;
    std::int32_t* ws = workspace + col;
    if ((ac_cols >> col) & 1u) {
      idct_pass1_column<kG>(in, ws);
    } else if ((store_cols >> col) & 1u) {
      const std::int32_t dc = static_cast<std::int32_t>(in[0]) << kPass1Bits;
      for (int row = 0; row < 8; ++row) ws[8 * row] = dc;
    }
  }
}

template <unsigned kG>
void idct_pass2_all(std::int32_t* workspace, Block& block) {
  for (int row = 0; row < 8; ++row) {
    idct_pass2_row<kG>(workspace + row * 8, block.data() + row * 8);
  }
}

using Pass1AllFn = void (*)(const Block&, std::int32_t*, unsigned, unsigned);
using Pass2AllFn = void (*)(std::int32_t*, Block&);

constexpr Pass1AllFn kPass1All[16] = {
    idct_pass1_all<0>,  idct_pass1_all<1>,  idct_pass1_all<2>,
    idct_pass1_all<3>,  idct_pass1_all<4>,  idct_pass1_all<5>,
    idct_pass1_all<6>,  idct_pass1_all<7>,  idct_pass1_all<8>,
    idct_pass1_all<9>,  idct_pass1_all<10>, idct_pass1_all<11>,
    idct_pass1_all<12>, idct_pass1_all<13>, idct_pass1_all<14>,
    idct_pass1_all<15>};

constexpr Pass2AllFn kPass2All[16] = {
    idct_pass2_all<0>,  idct_pass2_all<1>,  idct_pass2_all<2>,
    idct_pass2_all<3>,  idct_pass2_all<4>,  idct_pass2_all<5>,
    idct_pass2_all<6>,  idct_pass2_all<7>,  idct_pass2_all<8>,
    idct_pass2_all<9>,  idct_pass2_all<10>, idct_pass2_all<11>,
    idct_pass2_all<12>, idct_pass2_all<13>, idct_pass2_all<14>,
    idct_pass2_all<15>};

}  // namespace

namespace kernels::detail {

bool idct_collapse(Block& block, const BlockSparsity& s) {
  // One branch guards both collapse paths: a clear ac_col_mask guarantees
  // rows 1..7 are all zero (clear bits are guarantees), which is the only
  // property either path needs — cheaper than testing dc_only and row_mask
  // separately on the hot path. Shared by every backend: the SIMD idct
  // entries call this first, so the occupancy shortcuts stay byte- and
  // code-identical across backends.
  if (s.ac_col_mask != 0) return false;
  if (s.dc_only) {
    // Both passes collapse: with only coeffs[0] nonzero every output pel
    // is descale((dc << kPass1Bits) << kConstBits,
    // kConstBits + kPass1Bits + 3) = (dc + 4) >> 3, identical to running
    // the dense transform.
    const auto v = static_cast<std::int16_t>((block[0] + 4) >> 3);
    block.fill(v);
    return true;
  }
  // All coefficients live in row 0: every pass-1 column is DC-only, so
  // all eight workspace rows are identical (in[c] << kPass1Bits). Run
  // pass 2 once and replicate its output row — bit-identical to running
  // it eight times on identical input.
  std::int32_t ws[8];
  for (int col = 0; col < 8; ++col) {
    ws[col] = static_cast<std::int32_t>(block[col]) << kPass1Bits;
  }
  idct_pass2_row<kGroupAll>(ws, block.data());
  for (int row = 1; row < 8; ++row) {
    std::memcpy(block.data() + row * 8, block.data(),
                8 * sizeof(std::int16_t));
  }
  return true;
}

unsigned idct_group_of(unsigned mask) { return kGroupOf[mask & 0xffu]; }

void idct_scalar_no_collapse(Block& block, const BlockSparsity& s) {
  // Pair-group dispatch, one table lookup per pass. The dense kernel
  // discovers DC-only columns by reading rows 1..7; here one mask bit per
  // column decides, and the group masks select kernel instantiations with
  // the guaranteed-zero butterfly pairs folded away. A column flagged AC
  // whose values happen to all be zero is harmless: the full pass on a
  // DC-only column produces exactly the propagated-DC result (odd part
  // cancels, descale(dc << kConstBits, kConstBits - kPass1Bits) ==
  // dc << 2), and the reduced kernels only drop terms the masks guarantee
  // are zero.
  std::int32_t workspace[64];
  const unsigned col_group = kGroupOf[s.col_mask];
  kPass1All[kGroupOf[s.row_mask]](block, workspace, s.ac_col_mask,
                                  kGroupReadCols[col_group]);
  kPass2All[col_group](workspace, block);
}

void idct_scalar(Block& block, BlockSparsity s) {
  if (idct_collapse(block, s)) return;
  idct_scalar_no_collapse(block, s);
}

}  // namespace kernels::detail

void idct_int(Block& block, BlockSparsity s) {
  kernels::active().idct(block, s);
}

void idct_int(Block& block) {
  // Derive the sparsity from the values: two 8-byte loads per row decide
  // row occupancy; only occupied AC rows are scanned for column bits.
  BlockSparsity s = BlockSparsity::none();
  std::uint64_t lo, hi;
  std::memcpy(&lo, block.data(), 8);
  std::memcpy(&hi, block.data() + 4, 8);
  if ((lo | hi) != 0) {
    s.row_mask |= 1u;
    for (int c = 0; c < 8; ++c) {
      if (block[c] != 0) s.col_mask |= static_cast<std::uint8_t>(1u << c);
    }
  }
  for (int r = 1; r < 8; ++r) {
    const std::int16_t* row = block.data() + r * 8;
    std::memcpy(&lo, row, 8);
    std::memcpy(&hi, row + 4, 8);
    if ((lo | hi) == 0) continue;
    s.row_mask |= static_cast<std::uint8_t>(1u << r);
    s.dc_only = false;
    for (int c = 0; c < 8; ++c) {
      if (row[c] != 0) s.ac_col_mask |= static_cast<std::uint8_t>(1u << c);
    }
  }
  s.col_mask |= s.ac_col_mask;
  if (s.dc_only) {
    for (int i = 1; i < 8; ++i) {
      if (block[i] != 0) {
        s.dc_only = false;
        break;
      }
    }
  }
  idct_int(block, s);
}

}  // namespace pmp2::mpeg2
