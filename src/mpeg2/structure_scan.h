// Incremental stream-structure scanner: the streaming form of
// scan_structure (decoder.h).
//
// scan_structure walks the whole stream before any decode can start, which
// puts the full scan on the serial prefix of the pipeline (the Amdahl term
// behind the paper's Fig. 5 ceiling). StructureScanner yields the same
// GOP/picture/slice index one GOP at a time, so the scan process can
// enqueue GOP task k while workers already decode tasks 0..k-1:
//
//   StructureScanner scan(stream);
//   if (!scan.scan_preamble()) ...      // sequence header (+ extension)
//   GopInfo gop;
//   while (scan.next_gop(gop)) enqueue(gop);
//   if (scan.failed()) ...              // malformed stream
//
// The produced sequence of GopInfo values is byte-identical to
// scan_structure's `gops` vector (scan_structure is reimplemented on top of
// this class), with one streaming caveat: header state (sequence extension,
// hence mpeg1()) reflects only the bytes consumed so far. Streams that
// introduce their sequence extension after the first GOP header — none do
// in practice; the extension must follow its sequence header — would be
// classified MPEG-1 by a consumer that reads mpeg1() right after
// scan_preamble() but MPEG-2 by the full scan.
#pragma once

#include <cstdint>
#include <span>

#include "bitstream/demux.h"
#include "mpeg2/decoder.h"

namespace pmp2::mpeg2 {

class StructureScanner {
 public:
  explicit StructureScanner(std::span<const std::uint8_t> stream)
      : stream_(stream), demux_(stream) {}

  /// Consumes units up to and including the first GOP header: sequence
  /// header, extensions, user data. Returns true when a sequence header
  /// was parsed, a GOP header follows, and (for MPEG-2) the chroma format
  /// is the supported 4:2:0 — the streaming equivalent of
  /// StreamStructure::valid. On false, failed() distinguishes a parse
  /// error / unsupported format from a stream that simply ends first.
  bool scan_preamble();

  /// Yields the next complete GOP, with pictures, slices and end_offset
  /// filled exactly as scan_structure would. Returns false at end of
  /// stream or on a malformed stream (check failed()). When the failure
  /// struck mid-GOP (failed_in_gop()), `out` holds the partial GOP indexed
  /// so far — scan_structure keeps it, matching the seed scanner's partial
  /// output on malformed streams.
  bool next_gop(GopInfo& out);

  [[nodiscard]] bool failed() const { return failed_; }
  [[nodiscard]] bool failed_in_gop() const { return failed_in_gop_; }
  [[nodiscard]] const SequenceHeader& seq() const { return seq_; }
  [[nodiscard]] const SequenceExtension& ext() const { return ext_; }
  [[nodiscard]] bool have_seq() const { return have_seq_; }
  /// True while no sequence extension has been seen (ISO 11172-2 stream).
  [[nodiscard]] bool mpeg1() const { return !have_seq_ext_; }
  [[nodiscard]] int mb_width() const {
    return (seq_.horizontal_size + 15) / 16;
  }
  [[nodiscard]] int mb_height() const {
    return (seq_.vertical_size + 15) / 16;
  }
  /// Bytes the scan has consumed so far (for progress/scan-span tracing).
  [[nodiscard]] std::uint64_t position() const { return demux_.position(); }

 private:
  /// Handles one unit seen outside any GOP (before the first or between
  /// two). Sets pending_* on a GOP header. False on parse error.
  bool handle_gap_unit(const DemuxUnit& u);

  std::span<const std::uint8_t> stream_;
  StreamDemux demux_;
  SequenceHeader seq_;
  SequenceExtension ext_;
  bool have_seq_ = false;
  bool have_seq_ext_ = false;
  bool failed_ = false;
  bool failed_in_gop_ = false;
  // A GOP header has been consumed but its GOP not yet returned.
  bool have_pending_gop_ = false;
  std::uint64_t pending_offset_ = 0;
  bool pending_closed_ = true;
};

}  // namespace pmp2::mpeg2
