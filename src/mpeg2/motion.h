// Motion-vector arithmetic and motion compensation (ISO/IEC 13818-2 §7.6).
//
// Scope: frame pictures with frame_pred_frame_dct = 1 (frame-based
// prediction), 4:2:0. Vectors are in half-pel units; chroma vectors are the
// luma vector with each component divided by two (truncation toward zero),
// interpreted in chroma half-pel units, as in §7.6.3.7.
//
// The encoder and every decoder variant share these routines, which is what
// makes encoder reconstruction and all parallel decoders bit-identical.
#pragma once

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"
#include "mpeg2/frame.h"
#include "mpeg2/trace.h"
#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

// --- Motion-vector coding (§7.6.3) ---------------------------------------

/// Decodes one vector component: reads motion_code (+ residual when
/// f_code > 1), applies the prediction and the wraparound rule. Returns
/// false on an invalid code. `pred` is updated to the new value.
bool decode_mv_component(BitReader& br, int f_code, int& pred);

/// Encoder side: emits the motion_code VLC and residual encoding
/// `value - pred` (after wraparound). `value` must lie in the decodable
/// range [-16f, 16f-1]. Updates `pred` exactly as the decoder will.
void encode_mv_component(BitWriter& bw, int f_code, int value, int& pred);

/// Smallest f_code (1..9) whose range [-16f, 16f-1] covers every delta the
/// encoder may emit for vectors bounded by |v| <= bound half-pels.
[[nodiscard]] int f_code_for_range(int bound);

/// Chroma vector component for 4:2:0 (truncation toward zero).
[[nodiscard]] constexpr int chroma_mv(int v) { return v / 2; }

// --- Motion compensation (§7.6.4, §7.6.7) ---------------------------------

/// Prediction modes for form_prediction.
enum class McMode {
  kCopy,     // dst = prediction
  kAverage,  // dst = (dst + prediction + 1) >> 1   (bidirectional 2nd pass)
};

/// Forms the half-pel interpolated prediction of a w x h region of one
/// plane. `dst` points directly at the destination block (the caller adds
/// any offset); (x, y) is the block's position in `ref`'s coordinate space
/// and (vx, vy) the vector in half-pel units relative to it. The caller
/// guarantees the referenced area lies inside the coded picture (the
/// encoder clamps its search accordingly).
void form_prediction(const std::uint8_t* ref, int ref_stride,
                     std::uint8_t* dst, int dst_stride, int x, int y, int w,
                     int h, int vx, int vy, McMode mode);

/// The straightforward scalar implementation of form_prediction. Kept as
/// the bit-exactness oracle for the specialized SWAR kernels behind
/// form_prediction (tests compare the two exhaustively) and as the
/// before/after baseline in bench_micro_kernels.
void form_prediction_reference(const std::uint8_t* ref, int ref_stride,
                               std::uint8_t* dst, int dst_stride, int x,
                               int y, int w, int h, int vx, int vy,
                               McMode mode);

/// Motion-compensates a full macroblock (luma + both chroma planes) of
/// `dst` at macroblock coordinates (mb_x, mb_y) from `ref` with luma vector
/// `mv`. Optionally emits the reference-picture reads and destination
/// writes to `sink` (writes only when mode == kCopy to avoid double
/// counting; the bidirectional second pass re-reads and rewrites dst).
void mc_macroblock(const Frame& ref, int ref_frame_id, Frame& dst,
                   int dst_frame_id, int mb_x, int mb_y, MotionVector mv,
                   McMode mode, TraceSink* sink = nullptr, int proc = 0);

/// Field prediction within a frame picture (§7.6.4, mv_format = field):
/// predicts the `dest_parity` field lines (0 = top, 1 = bottom) of the
/// macroblock at (mb_x, mb_y) — a 16x8 luma region on every other line —
/// from the `src_parity` field of `ref`, with `mv` in field coordinates
/// (vertical component in field lines, half-pel units).
void mc_field_macroblock(const Frame& ref, int ref_frame_id, Frame& dst,
                         int dst_frame_id, int mb_x, int mb_y,
                         int dest_parity, int src_parity, MotionVector mv,
                         McMode mode, TraceSink* sink = nullptr,
                         int proc = 0);

}  // namespace pmp2::mpeg2
