// 8x8 forward and inverse discrete cosine transforms.
//
// The decode path (decoder and the encoder's reference-picture
// reconstruction) uses the fixed-point inverse transform `idct_int` so that
// every decoder variant reconstructs identical pels. `fdct_reference` /
// `idct_reference` are double-precision implementations of the defining
// equations, used by the encoder's forward transform and as the accuracy
// oracle in tests (IEEE-1180-style comparison).
#pragma once

#include <array>

#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

/// Forward DCT of the defining equation, spatial -> frequency.
void fdct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out);

/// Inverse DCT of the defining equation, frequency -> spatial.
void idct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out);

/// Fixed-point inverse DCT (Loeffler-Ligtenberg-Moshovitz 11-multiply
/// factorization, 13-bit constants — the jpeglib "islow" variant). Operates
/// in place on the coefficient block; results are spatial values, which may
/// be negative for prediction-error blocks.
///
/// Computes the block's sparsity itself (two 64-bit loads per row) and
/// dispatches to the sparsity-aware transform below. Bit-identical to
/// idct_int_dense for every input.
void idct_int(Block& block);

/// Sparsity-aware variant: `s` is the caller-tracked summary (the slice
/// decoder gets it for free from VLC decode + dequantization). A DC-only
/// block collapses to one rounded fill; otherwise rows absent from
/// s.row_mask are skipped in the column pass. `s` must be conservative
/// (see BlockSparsity); output is bit-identical to idct_int_dense.
void idct_int(Block& block, BlockSparsity s);

/// The pre-sparsity two-pass implementation (with its original per-column
/// zero test only). Kept as the equivalence oracle for tests and the
/// before/after baseline in bench_micro_kernels.
void idct_int_dense(Block& block);

}  // namespace pmp2::mpeg2
