// 8x8 forward and inverse discrete cosine transforms.
//
// The decode path (decoder and the encoder's reference-picture
// reconstruction) uses the fixed-point inverse transform `idct_int` so that
// every decoder variant reconstructs identical pels. `fdct_reference` /
// `idct_reference` are double-precision implementations of the defining
// equations, used by the encoder's forward transform and as the accuracy
// oracle in tests (IEEE-1180-style comparison).
#pragma once

#include <array>

#include "mpeg2/types.h"

namespace pmp2::mpeg2 {

/// Forward DCT of the defining equation, spatial -> frequency.
void fdct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out);

/// Inverse DCT of the defining equation, frequency -> spatial.
void idct_reference(const std::array<double, 64>& in,
                    std::array<double, 64>& out);

/// Fixed-point inverse DCT (Loeffler-Ligtenberg-Moshovitz 11-multiply
/// factorization, 13-bit constants — the jpeglib "islow" variant). Operates
/// in place on the coefficient block; results are spatial values, which may
/// be negative for prediction-error blocks.
void idct_int(Block& block);

}  // namespace pmp2::mpeg2
