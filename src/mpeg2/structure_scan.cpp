#include "mpeg2/structure_scan.h"

#include "bitstream/bit_reader.h"
#include "mpeg2/headers.h"

namespace pmp2::mpeg2 {

bool StructureScanner::scan_preamble() {
  DemuxUnit u;
  while (!have_pending_gop_) {
    if (failed_) return false;
    if (!demux_.next(u)) return false;  // stream ends before any GOP
    if (!handle_gap_unit(u)) {
      failed_ = true;
      return false;
    }
  }
  if (!have_seq_) {
    failed_ = true;
    return false;
  }
  // Scope check: only 4:2:0 is implemented (the paper's configuration).
  if (have_seq_ext_ && ext_.chroma_format != 1) {
    failed_ = true;
    return false;
  }
  return true;
}

bool StructureScanner::handle_gap_unit(const DemuxUnit& u) {
  BitReader br(stream_);
  br.seek_bytes(u.sc.byte_offset + 4);
  switch (u.sc.code) {
    case 0xB3: {  // sequence header
      if (!parse_sequence_header(br, seq_)) return false;
      have_seq_ = true;
      return true;
    }
    case 0xB5: {  // extension: only the sequence extension matters here
      if (br.peek(4) == 1) have_seq_ext_ = true;
      parse_extension(br, &ext_, nullptr);
      return true;
    }
    case 0xB8: {  // group start: the next GOP begins
      GopHeader gh;
      if (!parse_gop_header(br, gh)) return false;
      have_pending_gop_ = true;
      pending_offset_ = u.sc.byte_offset;
      pending_closed_ = gh.closed_gop;
      return true;
    }
    case 0x00:
      return false;  // pictures must live inside a GOP here
    case 0xB7:
      return true;  // sequence end
    default:
      return !is_slice_code(u.sc.code);  // slices must live inside a picture
  }
}

bool StructureScanner::next_gop(GopInfo& out) {
  out = GopInfo{};
  if (failed_) return false;
  DemuxUnit u;
  while (!have_pending_gop_) {
    if (!demux_.next(u)) return false;  // clean end of stream
    if (!handle_gap_unit(u)) {
      failed_ = true;
      return false;
    }
  }
  out.offset = pending_offset_;
  out.closed = pending_closed_;
  have_pending_gop_ = false;

  PictureInfo* pic = nullptr;
  while (demux_.next(u)) {
    BitReader br(stream_);
    br.seek_bytes(u.sc.byte_offset + 4);
    switch (u.sc.code) {
      case 0xB8: {  // next GOP: the current one is complete
        out.end_offset = u.sc.byte_offset;
        GopHeader gh;
        if (!parse_gop_header(br, gh)) {
          failed_ = true;  // the completed GOP still stands
        } else {
          have_pending_gop_ = true;
          pending_offset_ = u.sc.byte_offset;
          pending_closed_ = gh.closed_gop;
        }
        return true;
      }
      case 0xB3: {  // sequence header ends the GOP
        out.end_offset = u.sc.byte_offset;
        if (!parse_sequence_header(br, seq_)) {
          failed_ = true;
        } else {
          have_seq_ = true;
        }
        return true;
      }
      case 0xB7: {  // sequence end
        out.end_offset = u.sc.byte_offset;
        return true;
      }
      case 0xB5: {
        if (br.peek(4) == 1) have_seq_ext_ = true;
        parse_extension(br, &ext_, nullptr);
        break;
      }
      case 0x00: {  // picture start
        PictureHeader ph;
        if (!parse_picture_header(br, ph)) {
          failed_ = true;
          failed_in_gop_ = true;
          return false;
        }
        out.pictures.push_back({});
        pic = &out.pictures.back();
        pic->offset = u.sc.byte_offset;
        pic->type = ph.type;
        pic->temporal_reference = ph.temporal_reference;
        break;
      }
      default: {
        if (is_slice_code(u.sc.code)) {
          if (!pic) {
            failed_ = true;
            failed_in_gop_ = true;
            return false;
          }
          pic->slices.push_back({u.sc.byte_offset, u.sc.code - 1});
        }
        break;
      }
    }
  }
  out.end_offset = stream_.size();
  return true;
}

}  // namespace pmp2::mpeg2
