#include "mpeg2/slice_decode.h"

#include <cassert>

#include "mpeg2/dct.h"
#include "mpeg2/motion.h"
#include "mpeg2/vlc_tables.h"
#include "obs/prof/stage_prof.h"

namespace pmp2::mpeg2 {

namespace {

/// Builds the QuantContext for one block of this picture.
QuantContext make_quant(const PictureContext& pic, int quantiser_scale_code,
                        bool intra) {
  QuantContext q;
  q.matrix = intra ? pic.seq->intra_matrix.data()
                   : pic.seq->non_intra_matrix.data();
  q.quantiser_scale = quantiser_scale(quantiser_scale_code, pic.ext.q_scale_type);
  q.intra_dc_mult = intra_dc_mult(8 + pic.ext.intra_dc_precision);
  return q;
}

/// Decodes the AC run/level loop shared by intra and non-intra blocks.
/// `idx` is the next scan position (1 for intra after DC, 0 for
/// non-intra). Returns false on bad syntax.
bool decode_coefficients(BitReader& br, bool table_one, bool first_special,
                         bool mpeg1, const std::array<std::uint8_t, 64>& scan,
                         int idx, Block& q, WorkMeter& work,
                         BlockSparsity& sparsity) {
  // Sign-folded tables: one lookup yields run, level and sign (the old path
  // was lookup + a separate get_bit for the sign). Escape and EOB codes are
  // unchanged, and a folded hit consumes len+1 bits exactly as lookup+sign
  // did, so the bit positions visited are identical.
  const DctCoeffDecoder& dec = dct_coeff_decoder(table_one);
  bool first = first_special;
  for (;;) {
    int run;
    int level;
    if (first && br.peek(1) == 1) {
      // Special short form of run 0 / level 1 for the first coefficient of
      // a non-intra block (EOB cannot occur first).
      br.skip(1);
      level = br.get_bit() ? -1 : 1;
      run = 0;
    } else {
      std::int16_t value;
      if (!dec.decode(br, value)) return false;
      if (value == kVlcEob) break;
      if (value == kVlcEscape) {
        run = static_cast<int>(br.get(6));
        if (mpeg1) {
          // MPEG-1 (ISO 11172-2): 8-bit two's complement, with the 0x00 /
          // 0x80 markers extending to the 16-bit form for |level| >= 128.
          int b = static_cast<int>(br.get(8));
          if (b == 0) {
            level = static_cast<int>(br.get(8));  // 128..255
            if (level == 0) return false;
          } else if (b == 128) {
            level = static_cast<int>(br.get(8)) - 256;  // -255..-129
          } else {
            level = b >= 128 ? b - 256 : b;
          }
        } else {
          int v = static_cast<int>(br.get(12));
          if (v & 0x800) v -= 4096;
          if (v == 0) return false;  // forbidden escape level
          level = v;
        }
        ++work.escapes;
      } else {
        run = unpack_signed_run(value);
        level = unpack_signed_level(value);
      }
    }
    first = false;
    idx += run;
    if (idx > 63) return false;
    q[scan[idx]] = static_cast<std::int16_t>(level);
    sparsity.mark(scan[idx]);
    ++idx;
    ++work.coefficients;
  }
  return true;
}

}  // namespace

bool BlockDecoder::decode_intra(BitReader& br, const PictureContext& pic,
                                int quantiser_scale_code, bool luma,
                                int& dc_pred, Block& out, WorkMeter& work,
                                BlockSparsity* sparsity) {
  out.fill(0);
  std::int16_t size;
  const VlcDecoder& dc_dec =
      luma ? dct_dc_size_luma_decoder() : dct_dc_size_chroma_decoder();
  if (!dc_dec.decode(br, size)) return false;
  int diff = 0;
  if (size > 0) {
    const int bits = static_cast<int>(br.get(size));
    const int half = 1 << (size - 1);
    diff = (bits >= half) ? bits : bits + 1 - 2 * half;
  }
  dc_pred += diff;
  out[0] = static_cast<std::int16_t>(dc_pred);
  ++work.coefficients;

  BlockSparsity s = BlockSparsity::none();
  s.mark(0);  // DC always counts as present (predictor may be nonzero)
  const auto& scan = scan_order(pic.ext.alternate_scan);
  if (!decode_coefficients(br, pic.ext.intra_vlc_format,
                           /*first_special=*/false, pic.mpeg1, scan, 1, out,
                           work, s)) {
    return false;
  }
  dequantize_intra(out, make_quant(pic, quantiser_scale_code, true), s);
  if (sparsity) *sparsity = s;
  ++work.intra_blocks;
  ++work.coded_blocks;
  return true;
}

bool BlockDecoder::decode_non_intra(BitReader& br, const PictureContext& pic,
                                    int quantiser_scale_code, Block& out,
                                    WorkMeter& work, BlockSparsity* sparsity) {
  out.fill(0);
  BlockSparsity s = BlockSparsity::none();
  const auto& scan = scan_order(pic.ext.alternate_scan);
  if (!decode_coefficients(br, /*table_one=*/false, /*first_special=*/true,
                           pic.mpeg1, scan, 0, out, work, s)) {
    return false;
  }
  dequantize_non_intra(out, make_quant(pic, quantiser_scale_code, false), s);
  if (sparsity) *sparsity = s;
  ++work.coded_blocks;
  return true;
}

namespace {

/// The complete prediction of one macroblock: frame prediction uses
/// vector index r = 0; field prediction (frame pictures with
/// frame_motion_type = field) uses r = 0 for the top and r = 1 for the
/// bottom destination field, each with a reference-field select bit.
struct PredictionSpec {
  std::uint8_t flags = 0;  // kMotionForward / kMotionBackward bits
  bool field = false;
  MotionVector fwd[2], bwd[2];
  int fwd_select[2] = {0, 0}, bwd_select[2] = {0, 0};
};

/// Per-slice decoding state (predictors reset at slice boundaries).
struct SliceState {
  int dc_pred[3];      // QF-domain DC predictors: Y, Cb, Cr
  int pmv[2][2][2];    // [vector r][fwd/bwd s][x/y t], half-pel units
  int qscale_code;     // current quantiser_scale_code
  // Previous macroblock's prediction, for B-picture skipped MBs.
  PredictionSpec prev;
  bool have_prev = false;

  explicit SliceState(const PictureContext& pic) {
    reset_dc(pic);
    reset_pmv();
    qscale_code = 1;
  }
  void reset_dc(const PictureContext& pic) {
    const int r = 128 << pic.ext.intra_dc_precision;
    dc_pred[0] = dc_pred[1] = dc_pred[2] = r;
  }
  void reset_pmv() {
    for (auto& r : pmv) {
      for (auto& s : r) s[0] = s[1] = 0;
    }
  }
};

/// Stores (intra) or adds (non-intra) an IDCT result block. `dst` points
/// at the block's first pel; `stride` already includes any field-line
/// doubling.
void store_block(std::uint8_t* dst, int stride, const Block& b, bool add) {
  for (int r = 0; r < 8; ++r) {
    std::uint8_t* row = dst + r * stride;
    const std::int16_t* src = b.data() + r * 8;
    for (int c = 0; c < 8; ++c) {
      row[c] = clamp_pel(add ? row[c] + src[c] : src[c]);
    }
  }
}

/// Emits the scratch-buffer traffic of decoding + IDCTing one block, plus
/// the frame write (and read when adding).
void trace_block(TraceSink* sink, int proc, const PictureContext& pic,
                 int plane, int x, int y, int ncoef, bool add) {
  if (!sink) return;
  const std::uint64_t scratch = trace_layout::scratch_addr(proc, 0);
  // Coefficient writes during VLC decode (2 bytes each, scattered).
  for (int i = 0; i < ncoef; ++i) {
    sink->on_ref({scratch + static_cast<std::uint64_t>(i) * 2, 2,
                  static_cast<std::uint16_t>(proc), true});
  }
  // IDCT: full read + write of the 128-byte block in 8-byte units.
  for (int i = 0; i < 128; i += 8) {
    sink->on_ref({scratch + static_cast<std::uint64_t>(i), 8,
                  static_cast<std::uint16_t>(proc), false});
    sink->on_ref({scratch + static_cast<std::uint64_t>(i), 8,
                  static_cast<std::uint16_t>(proc), true});
  }
  const std::uint64_t base = trace_layout::frame_addr(pic.dst_id, plane, 0);
  const int stride = pic.dst->stride(plane);
  if (add) emit_region(sink, proc, false, base, stride, x, y, 8, 8);
  emit_region(sink, proc, true, base, stride, x, y, 8, 8);
}

/// Decodes the six blocks of one macroblock. With `field_dct` (dct_type =
/// 1 in interlaced frame pictures, §6.3.17.1) the four luma blocks cover
/// the macroblock's top/bottom *field* lines instead of quadrants.
bool decode_blocks(BitReader& br, const PictureContext& pic, SliceState& st,
                   int mb_x, int mb_y, bool intra, int cbp, bool field_dct,
                   WorkMeter& work, TraceSink* sink, int proc) {
  Block block;
  for (int b = 0; b < kBlocksPerMb420; ++b) {
    if ((cbp & (1 << (5 - b))) == 0) continue;
    const bool luma = b < 4;
    const int cc = luma ? 0 : (b == 4 ? 1 : 2);
    const std::uint64_t coef_before = work.coefficients;
    bool ok;
    BlockSparsity sparsity;
    {
      obs::prof::StageScope vlc_stage(obs::prof::Stage::kVlc);
      if (intra) {
        ok = BlockDecoder::decode_intra(br, pic, st.qscale_code, luma,
                                        st.dc_pred[cc], block, work,
                                        &sparsity);
      } else {
        ok = BlockDecoder::decode_non_intra(br, pic, st.qscale_code, block,
                                            work, &sparsity);
      }
    }
    if (!ok) return false;
    const int ncoef = static_cast<int>(work.coefficients - coef_before);
    if (pic.block_observer) pic.block_observer->on_block(block, intra);
    // Scoped to the rest of the iteration: the transform plus its store
    // (and the trace emit, null in profiled runs) are one IDCT stage.
    obs::prof::StageScope idct_stage(obs::prof::Stage::kIdct);
    idct_int(block, sparsity);
    int x, y, plane, stride;
    int line_step = 1;
    std::uint8_t* pels;
    if (luma) {
      plane = 0;
      stride = pic.dst->y_stride();
      x = mb_x * 16 + (b & 1) * 8;
      if (field_dct) {
        // Blocks 0/1: top field; 2/3: bottom field; 8 field lines each.
        y = mb_y * 16 + (b >> 1);
        line_step = 2;
      } else {
        y = mb_y * 16 + (b >> 1) * 8;
      }
      pels = pic.dst->y();
    } else {
      plane = cc;
      x = mb_x * 8;
      y = mb_y * 8;
      pels = pic.dst->plane(plane);
      stride = pic.dst->c_stride();
    }
    store_block(pels + y * stride + x, stride * line_step, block,
                /*add=*/!intra);
    trace_block(sink, proc, pic, plane, x, y, ncoef, !intra);
  }
  return true;
}

/// True iff every sample the half-pel vector references lies inside the
/// coded picture. A conforming encoder never emits vectors past the edge;
/// a corrupted stream may, and must not read or write out of bounds.
bool mv_in_picture(const PictureContext& pic, int mb_x, int mb_y,
                   MotionVector mv) {
  const int cw = pic.mb_width * kMacroblockSize;
  const int ch = pic.mb_height * kMacroblockSize;
  const int x = mb_x * kMacroblockSize + (mv.x >> 1);
  const int y = mb_y * kMacroblockSize + (mv.y >> 1);
  return x >= 0 && y >= 0 &&
         x + kMacroblockSize + ((mv.x & 1) ? 1 : 0) <= cw &&
         y + kMacroblockSize + ((mv.y & 1) ? 1 : 0) <= ch;
}

/// Field-prediction variant: the vertical component is in field lines.
bool mv_in_field(const PictureContext& pic, int mb_x, int mb_y,
                 MotionVector mv) {
  const int cw = pic.mb_width * kMacroblockSize;
  const int fh = pic.mb_height * kMacroblockSize / 2;
  const int x = mb_x * kMacroblockSize + (mv.x >> 1);
  const int y = mb_y * 8 + (mv.y >> 1);
  return x >= 0 && y >= 0 &&
         x + kMacroblockSize + ((mv.x & 1) ? 1 : 0) <= cw &&
         y + 8 + ((mv.y & 1) ? 1 : 0) <= fh;
}

/// Applies one direction (forward or backward) of a PredictionSpec.
[[nodiscard]] bool apply_direction(const PictureContext& pic, int mb_x,
                                   int mb_y, const Frame* ref, int ref_id,
                                   const PredictionSpec& spec, bool backward,
                                   McMode mode, WorkMeter& work,
                                   TraceSink* sink, int proc) {
  if (ref == nullptr) return false;
  const MotionVector* mvs = backward ? spec.bwd : spec.fwd;
  const int* selects = backward ? spec.bwd_select : spec.fwd_select;
  if (spec.field) {
    for (int r = 0; r < 2; ++r) {
      if (!mv_in_field(pic, mb_x, mb_y, mvs[r])) return false;
      mc_field_macroblock(*ref, ref_id, *pic.dst, pic.dst_id, mb_x, mb_y, r,
                          selects[r], mvs[r], mode, sink, proc);
    }
  } else {
    if (!mv_in_picture(pic, mb_x, mb_y, mvs[0])) return false;
    mc_macroblock(*ref, ref_id, *pic.dst, pic.dst_id, mb_x, mb_y, mvs[0],
                  mode, sink, proc);
  }
  work.mc_blocks += kBlocksPerMb420;
  return true;
}

/// Forms the motion-compensated prediction for one macroblock. Returns
/// false (corrupt stream) if a vector references outside the picture.
[[nodiscard]] bool predict_mb(const PictureContext& pic, int mb_x, int mb_y,
                              const PredictionSpec& spec, WorkMeter& work,
                              TraceSink* sink, int proc) {
  obs::prof::StageScope mc_stage(obs::prof::Stage::kMc);
  const bool use_fwd = (spec.flags & MbFlags::kMotionForward) != 0;
  const bool use_bwd = (spec.flags & MbFlags::kMotionBackward) != 0;
  if (use_fwd) {
    if (!apply_direction(pic, mb_x, mb_y, pic.fwd_ref, pic.fwd_id, spec,
                         false, McMode::kCopy, work, sink, proc)) {
      return false;
    }
  }
  if (use_bwd) {
    if (!apply_direction(pic, mb_x, mb_y, pic.bwd_ref, pic.bwd_id, spec,
                         true, use_fwd ? McMode::kAverage : McMode::kCopy,
                         work, sink, proc)) {
      return false;
    }
  }
  return true;
}

/// Handles one skipped macroblock (§7.6.6). Returns false on a corrupt
/// stream (vector out of picture at this macroblock's position).
[[nodiscard]] bool decode_skipped(const PictureContext& pic, SliceState& st,
                                  int address, WorkMeter& work,
                                  TraceSink* sink, int proc) {
  const int mb_x = address % pic.mb_width;
  const int mb_y = address / pic.mb_width;
  bool ok;
  if (pic.header.type == PictureType::kP) {
    // Zero vector frame copy; PMVs reset.
    st.reset_pmv();
    PredictionSpec zero;
    zero.flags = MbFlags::kMotionForward;
    ok = predict_mb(pic, mb_x, mb_y, zero, work, sink, proc);
  } else {
    // B: repeat the previous macroblock's prediction mode and vectors.
    ok = st.have_prev &&
         predict_mb(pic, mb_x, mb_y, st.prev, work, sink, proc);
  }
  st.reset_dc(pic);
  ++work.skipped_mbs;
  ++work.macroblocks;
  return ok;
}

/// Decodes the motion vectors of one direction (§6.3.17.3, §7.6.3):
/// one frame vector, or two field vectors with field selects. Updates the
/// slice PMVs per the standard's rules (frame vectors set both r entries;
/// field vertical predictors live at frame scale: predict with PMV/2,
/// store back 2x).
[[nodiscard]] bool decode_direction_vectors(BitReader& br,
                                            const PictureContext& pic,
                                            SliceState& st, int s,
                                            bool field, PredictionSpec& spec) {
  MotionVector* mvs = s == 0 ? spec.fwd : spec.bwd;
  int* selects = s == 0 ? spec.fwd_select : spec.bwd_select;
  if (!field) {
    if (!decode_mv_component(br, pic.ext.f_code[s][0], st.pmv[0][s][0]) ||
        !decode_mv_component(br, pic.ext.f_code[s][1], st.pmv[0][s][1])) {
      return false;
    }
    st.pmv[1][s][0] = st.pmv[0][s][0];
    st.pmv[1][s][1] = st.pmv[0][s][1];
    const int sf = (s == 0 ? pic.header.full_pel_forward
                           : pic.header.full_pel_backward)
                       ? 1
                       : 0;
    mvs[0] = {static_cast<std::int16_t>(st.pmv[0][s][0] << sf),
              static_cast<std::int16_t>(st.pmv[0][s][1] << sf)};
    mvs[1] = mvs[0];
    return true;
  }
  for (int r = 0; r < 2; ++r) {
    selects[r] = static_cast<int>(br.get_bit());
    if (!decode_mv_component(br, pic.ext.f_code[s][0], st.pmv[r][s][0])) {
      return false;
    }
    // Vertical: predictor divided by two, stored back doubled (§7.6.3.1).
    int vert = st.pmv[r][s][1] >> 1;
    if (!decode_mv_component(br, pic.ext.f_code[s][1], vert)) return false;
    st.pmv[r][s][1] = vert * 2;
    mvs[r] = {static_cast<std::int16_t>(st.pmv[r][s][0]),
              static_cast<std::int16_t>(vert)};
  }
  return true;
}

}  // namespace

SliceResult decode_slice(BitReader& br, int slice_row,
                         const PictureContext& pic, TraceSink* sink,
                         int proc) {
  SliceResult res;
  if (slice_row < 0 || slice_row >= pic.mb_height) return res;
  SliceState st(pic);
  const std::uint64_t start_bits = br.bit_position();

  // Slice header (after the startcode).
  st.qscale_code = static_cast<int>(br.get(5));
  if (st.qscale_code == 0) return res;
  if (br.peek(1) == 1) {
    br.skip(1 + 1 + 7);  // intra_slice_flag, intra_slice, reserved_bits
    while (br.peek(1) == 1) br.skip(9);  // extra_information_slice
  }
  if (br.get_bit() != 0) return res;  // extra_bit_slice must be 0

  int mb_address = slice_row * pic.mb_width - 1;  // previous MB address
  bool first_mb = true;

  for (;;) {
    if (br.overrun()) return res;
    // End of slice: the next 23 bits are zero (start of the next startcode)
    // or the stream itself ends (e.g. a spliced stream with no
    // sequence_end_code after the last slice).
    if (br.bits_left() < 23 || br.peek(23) == 0) break;
    // --- macroblock_address_increment ---
    int increment = 0;
    for (;;) {
      std::int16_t v;
      if (!mb_addr_inc_decoder().decode(br, v)) return res;
      if (v == kVlcEscape) {
        increment += 33;
        continue;
      }
      if (v == kVlcStuffing) continue;  // MPEG-1 stuffing: ignored
      increment += v;
      break;
    }
    if (first_mb) {
      // The first increment positions the first MB within the row; the MBs
      // before it are not skipped, they are simply outside this slice
      // (§6.3.16). Our encoder always emits 1 (restricted slice structure).
      mb_address += increment;
      first_mb = false;
    } else {
      if (mb_address + increment >= pic.mb_width * pic.mb_height) return res;
      for (int s = 1; s < increment; ++s) {
        if (!decode_skipped(pic, st, mb_address + s, res.work, sink, proc)) {
          return res;
        }
        ++res.macroblocks;
      }
      mb_address += increment;
    }
    if (mb_address < 0 || mb_address >= pic.mb_width * pic.mb_height) {
      return res;
    }
    if (res.first_mb < 0) res.first_mb = mb_address;
    const int mb_x = mb_address % pic.mb_width;
    const int mb_y = mb_address / pic.mb_width;

    // --- macroblock_modes (§6.3.17.1) ---
    std::int16_t flags16;
    if (!mb_type_decoder(static_cast<int>(pic.header.type))
             .decode(br, flags16)) {
      return res;
    }
    const auto flags = static_cast<std::uint8_t>(flags16);
    const bool intra = (flags & MbFlags::kIntra) != 0;
    const bool has_motion =
        (flags & (MbFlags::kMotionForward | MbFlags::kMotionBackward)) != 0;
    // frame_motion_type: present in interlaced frame pictures
    // (frame_pred_frame_dct = 0) when the MB carries motion.
    bool field_motion = false;
    if (has_motion && !pic.ext.frame_pred_frame_dct) {
      const auto motion_type = br.get(2);
      switch (motion_type) {
        case 0b01: field_motion = true; break;
        case 0b10: break;  // frame motion
        default: return res;  // dual prime / reserved: out of scope
      }
    }
    // dct_type: interlaced frame pictures, intra or coded MBs.
    bool field_dct = false;
    if (!pic.ext.frame_pred_frame_dct &&
        (intra || (flags & MbFlags::kPattern))) {
      field_dct = br.get_bit() != 0;
    }
    if (flags & MbFlags::kQuant) {
      st.qscale_code = static_cast<int>(br.get(5));
      if (st.qscale_code == 0) return res;
    }

    // --- motion vectors ---
    PredictionSpec spec;
    spec.flags = flags & (MbFlags::kMotionForward | MbFlags::kMotionBackward);
    spec.field = field_motion;
    if (flags & MbFlags::kMotionForward) {
      if (!decode_direction_vectors(br, pic, st, 0, field_motion, spec)) {
        return res;
      }
    }
    if (flags & MbFlags::kMotionBackward) {
      if (!decode_direction_vectors(br, pic, st, 1, field_motion, spec)) {
        return res;
      }
    }

    // --- prediction ---
    if (!intra) {
      if (pic.header.type == PictureType::kP &&
          (flags & MbFlags::kMotionForward) == 0) {
        // P-picture, no forward vector: zero-vector frame prediction,
        // PMV reset.
        st.reset_pmv();
        spec = PredictionSpec{};
        spec.flags = MbFlags::kMotionForward;
      }
      if (!predict_mb(pic, mb_x, mb_y, spec, res.work, sink, proc)) {
        return res;
      }
      if (pic.header.type == PictureType::kB) {
        st.prev = spec;
        st.have_prev = true;
      }
    } else {
      st.reset_pmv();
      // An intra MB provides no prediction to repeat for B skips; the
      // standard forbids skipped MBs right after intra in B pictures via
      // semantics, and our encoder complies. Keep previous mode unchanged.
    }

    // --- coded block pattern + blocks ---
    int cbp = 0;
    if (intra) {
      cbp = 63;
    } else if (flags & MbFlags::kPattern) {
      std::int16_t v;
      if (!coded_block_pattern_decoder().decode(br, v)) return res;
      cbp = v;
    }
    if (!intra) st.reset_dc(pic);
    if (cbp != 0) {
      if (!decode_blocks(br, pic, st, mb_x, mb_y, intra, cbp, field_dct,
                         res.work, sink, proc)) {
        return res;
      }
    }
    ++res.macroblocks;
    ++res.work.macroblocks;
    res.last_mb = mb_address;
  }

  br.byte_align();
  res.work.bits += br.bit_position() - start_bits;
  // Stream-buffer reads for this slice, in 8-byte units.
  if (sink) {
    const std::uint64_t from = start_bits / 8;
    const std::uint64_t to = br.bit_position() / 8;
    for (std::uint64_t a = from & ~7ull; a < to; a += 8) {
      sink->on_ref({trace_layout::kStreamBase + a, 8,
                    static_cast<std::uint16_t>(proc), false});
    }
  }
  res.ok = !br.overrun();
  return res;
}

}  // namespace pmp2::mpeg2
