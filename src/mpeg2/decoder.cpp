#include "mpeg2/decoder.h"

#include <algorithm>

#include "bitstream/startcode.h"
#include "mpeg2/kernels/kernels.h"
#include "mpeg2/structure_scan.h"
#include "obs/metrics.h"
#include "obs/prof/stage_prof.h"
#include "obs/tracer.h"

namespace pmp2::mpeg2 {

StreamStructure scan_structure(std::span<const std::uint8_t> stream) {
  // Drive the incremental scanner to completion: same index, one GOP at a
  // time (the streaming decoders consume StructureScanner directly).
  StreamStructure out;
  StructureScanner scanner(stream);
  GopInfo gop;
  while (scanner.next_gop(gop)) out.gops.push_back(std::move(gop));
  if (scanner.failed_in_gop()) out.gops.push_back(std::move(gop));
  out.seq = scanner.seq();
  out.ext = scanner.ext();
  if (scanner.failed()) return out;
  out.valid = scanner.have_seq() && !out.gops.empty();
  out.mpeg1 = out.valid && scanner.mpeg1();
  // Scope check: only 4:2:0 is implemented (the paper's configuration).
  if (!scanner.mpeg1() && out.ext.chroma_format != 1) out.valid = false;
  return out;
}

std::vector<int> display_ranks(const GopInfo& gop) {
  const int n = static_cast<int>(gop.pictures.size());
  std::vector<int> order(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return gop.pictures[static_cast<std::size_t>(a)].temporal_reference <
           gop.pictures[static_cast<std::size_t>(b)].temporal_reference;
  });
  std::vector<int> rank(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    rank[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])] = i;
  }
  return rank;
}

bool parse_picture_headers(BitReader& br, PictureHeader& ph,
                           PictureCodingExtension& pce) {
  if (!br.at_startcode_prefix() || br.peek(32) != 0x00000100) return false;
  br.skip(32);
  if (!parse_picture_header(br, ph)) return false;
  if (!br.align_to_next_startcode()) return false;
  if (br.peek(32) == 0x000001B5) {
    // MPEG-2: picture coding extension follows.
    br.skip(32);
    if (!parse_extension(br, nullptr, &pce)) return false;
    // Scope check: frame pictures only — progressive or interlaced
    // (frame_pred_frame_dct = 0 with field prediction / field DCT is
    // supported); field pictures are out of scope. Reject cleanly rather
    // than decode garbage.
    if (pce.picture_structure != 3) return false;
    return br.align_to_next_startcode();
  }
  // MPEG-1: synthesize the equivalent extension state from the header.
  pce = PictureCodingExtension{};
  if (ph.type != PictureType::kI) {
    if (ph.forward_f_code < 1) return false;
    pce.f_code[0][0] = pce.f_code[0][1] = ph.forward_f_code;
  }
  if (ph.type == PictureType::kB) {
    if (ph.backward_f_code < 1) return false;
    pce.f_code[1][0] = pce.f_code[1][1] = ph.backward_f_code;
  }
  return true;
}

void conceal_slice(const PictureContext& pic, int slice_row) {
  if (slice_row < 0 || slice_row >= pic.mb_height) return;
  obs::prof::StageScope conceal_stage(obs::prof::Stage::kConceal);
  const kernels::KernelTable& k = kernels::active();
  for (int p = 0; p < 3; ++p) {
    const int rows = p == 0 ? kMacroblockSize : kMacroblockSize / 2;
    const int y0 = slice_row * rows;
    const int stride = pic.dst->stride(p);
    std::uint8_t* dst = pic.dst->plane(p) + y0 * stride;
    if (pic.fwd_ref) {
      const std::uint8_t* src = pic.fwd_ref->plane(p) + y0 * stride;
      k.conceal_copy(dst, stride, src, stride, stride, rows);
    } else {
      k.conceal_fill(dst, stride, 128, stride, rows);
    }
  }
}

void conceal_mb_run(const PictureContext& pic, int row, int col0, int col1) {
  obs::prof::StageScope conceal_stage(obs::prof::Stage::kConceal);
  const kernels::KernelTable& k = kernels::active();
  for (int p = 0; p < 3; ++p) {
    const int rows = p == 0 ? kMacroblockSize : kMacroblockSize / 2;
    const int mb_cols = rows;  // macroblocks are square in every plane
    const int y0 = row * rows;
    const int x0 = col0 * mb_cols;
    const int width = (col1 - col0 + 1) * mb_cols;
    const int stride = pic.dst->stride(p);
    std::uint8_t* dst = pic.dst->plane(p) + y0 * stride + x0;
    if (pic.fwd_ref) {
      const std::uint8_t* src = pic.fwd_ref->plane(p) + y0 * stride + x0;
      k.conceal_copy(dst, stride, src, stride, width, rows);
    } else {
      k.conceal_fill(dst, stride, 128, width, rows);
    }
  }
}

int conceal_coverage_gaps(const PictureContext& pic,
                          const std::vector<bool>& covered) {
  int runs = 0;
  for (int row = 0; row < pic.mb_height; ++row) {
    const std::size_t base =
        static_cast<std::size_t>(row) * static_cast<std::size_t>(pic.mb_width);
    for (int col = 0; col < pic.mb_width;) {
      if (covered[base + static_cast<std::size_t>(col)]) {
        ++col;
        continue;
      }
      int end = col;
      while (end + 1 < pic.mb_width &&
             !covered[base + static_cast<std::size_t>(end) + 1]) {
        ++end;
      }
      conceal_mb_run(pic, row, col, end);
      ++runs;
      col = end + 1;
    }
  }
  return runs;
}

std::uint64_t resync_distance(std::span<const std::uint8_t> stream,
                              std::uint64_t error_byte) {
  const std::uint64_t from = std::min<std::uint64_t>(error_byte,
                                                     stream.size());
  return find_startcode_prefix(stream, from) - from;
}

bool decode_picture_slices(std::span<const std::uint8_t> stream,
                           const PictureInfo& info, const PictureContext& pic,
                           WorkMeter& work, const PictureDecodeOptions& opts) {
  // Macroblock-granular coverage for conceal_coverage_gaps: a damaged
  // picture must decode to the same bytes in every decoder and every run.
  std::vector<bool> covered;
  if (opts.conceal_errors) {
    covered.assign(static_cast<std::size_t>(pic.mb_width * pic.mb_height),
                   false);
  }
  const auto cover_row = [&](int row) {
    if (row < 0 || row >= pic.mb_height) return;
    std::fill_n(covered.begin() +
                    static_cast<std::ptrdiff_t>(row) * pic.mb_width,
                pic.mb_width, true);
  };
  int slice_ordinal = 0;
  for (const auto& slice : info.slices) {
    BitReader br(stream);
    br.seek_bytes(slice.offset + 4);
    const std::int64_t begin_ns =
        opts.tracer ? opts.tracer->now_ns() : 0;
    const SliceResult r = decode_slice(br, slice.row, pic, opts.sink,
                                       opts.proc);
    if (opts.tracer) {
      opts.tracer->emit(opts.track, obs::SpanKind::kSliceTask, begin_ns,
                        opts.tracer->now_ns(), opts.picture_id,
                        slice_ordinal);
    }
    if (r.ok) {
      work += r.work;
      if (!covered.empty() && r.first_mb >= 0) {
        for (int a = r.first_mb; a <= r.last_mb; ++a) {
          covered[static_cast<std::size_t>(a)] = true;
        }
      }
    } else if (opts.conceal_errors) {
      const std::int64_t conceal_begin =
          opts.tracer ? opts.tracer->now_ns() : 0;
      if (opts.resync) {
        opts.resync->record(static_cast<std::int64_t>(
            resync_distance(stream, br.bit_position() / 8)));
      }
      conceal_slice(pic, slice.row);
      cover_row(slice.row);
      if (opts.concealed) ++*opts.concealed;
      if (opts.tracer) {
        opts.tracer->emit(opts.track, obs::SpanKind::kConceal, conceal_begin,
                          opts.tracer->now_ns(), opts.picture_id,
                          slice_ordinal);
      }
    } else {
      return false;
    }
    ++slice_ordinal;
  }
  if (!covered.empty()) {
    const int runs = conceal_coverage_gaps(pic, covered);
    if (opts.concealed) *opts.concealed += runs;
  }
  return true;
}

bool decode_picture_slices(std::span<const std::uint8_t> stream,
                           const PictureInfo& info, const PictureContext& pic,
                           WorkMeter& work, TraceSink* sink, int proc) {
  PictureDecodeOptions opts;
  opts.sink = sink;
  opts.proc = proc;
  return decode_picture_slices(stream, info, pic, work, opts);
}

void DisplayReorder::push(FramePtr frame, std::vector<FramePtr>& out) {
  if (frame->type == PictureType::kB) {
    frame->display_index = next_display_index_++;
    out.push_back(std::move(frame));
    return;
  }
  if (pending_ref_) {
    pending_ref_->display_index = next_display_index_++;
    out.push_back(std::move(pending_ref_));
  }
  pending_ref_ = std::move(frame);
}

void DisplayReorder::flush(std::vector<FramePtr>& out) {
  if (pending_ref_) {
    pending_ref_->display_index = next_display_index_++;
    out.push_back(std::move(pending_ref_));
  }
}

Decoder::Status Decoder::decode_stream(std::span<const std::uint8_t> stream,
                                       const FrameCallback& on_frame,
                                       TraceSink* sink, int proc) {
  Status out;
  const StreamStructure structure = scan_structure(stream);
  if (!structure.valid) return out;
  out.seq = structure.seq;

  FramePool pool(structure.seq.horizontal_size, structure.seq.vertical_size,
                 tracker_);
  DisplayReorder reorder;
  FramePtr fwd_ref, bwd_ref;  // older / newer reference
  std::vector<FramePtr> ready;

  for (const auto& gop : structure.gops) {
    for (const auto& info : gop.pictures) {
      BitReader br(stream);
      br.seek_bytes(info.offset);
      PictureContext pic;
      pic.seq = &structure.seq;
      pic.mpeg1 = structure.mpeg1;
      pic.block_observer = block_observer_;
      if (!parse_picture_headers(br, pic.header, pic.ext)) return out;
      pic.mb_width = structure.mb_width();
      pic.mb_height = structure.mb_height();

      FramePtr dst = pool.acquire();
      dst->type = pic.header.type;
      dst->temporal_reference = pic.header.temporal_reference;
      pic.dst = dst.get();
      pic.dst_id = dst->trace_id();
      if (pic.header.type != PictureType::kI) {
        // P predicts from the most recent reference; B from both.
        const FramePtr& past =
            pic.header.type == PictureType::kP ? bwd_ref : fwd_ref;
        if (!past) return out;
        pic.fwd_ref = past.get();
        pic.fwd_id = past->trace_id();
        if (pic.header.type == PictureType::kB) {
          if (!bwd_ref) return out;
          pic.bwd_ref = bwd_ref.get();
          pic.bwd_id = bwd_ref->trace_id();
        }
      }

      PictureDecodeOptions opts;
      opts.sink = sink;
      opts.proc = proc;
      opts.conceal_errors = conceal_errors_;
      opts.concealed = &out.concealed_slices;
      if (!decode_picture_slices(stream, info, pic, out.work, opts)) {
        return out;
      }

      if (pic.header.type != PictureType::kB) {
        fwd_ref = bwd_ref;
        bwd_ref = dst;
      }
      reorder.push(std::move(dst), ready);
      for (auto& f : ready) on_frame(std::move(f));
      ready.clear();
    }
  }
  reorder.flush(ready);
  for (auto& f : ready) on_frame(std::move(f));
  out.ok = true;
  return out;
}

DecodedStream Decoder::decode(std::span<const std::uint8_t> stream,
                              TraceSink* sink, int proc) {
  DecodedStream out;
  const Status st = decode_stream(
      stream, [&out](FramePtr f) { out.frames.push_back(std::move(f)); },
      sink, proc);
  out.ok = st.ok;
  out.work = st.work;
  out.seq = st.seq;
  out.concealed_slices = st.concealed_slices;
  return out;
}

}  // namespace pmp2::mpeg2
