#include "mpeg2/headers.h"

#include "mpeg2/scan_quant.h"

namespace pmp2::mpeg2 {

namespace {

constexpr int kExtIdSequence = 1;
constexpr int kExtIdPictureCoding = 8;

/// Reads a 64-entry quantizer matrix (transmitted zig-zag, stored raster).
void read_matrix(BitReader& br, std::array<std::uint8_t, 64>& m) {
  const auto& scan = zigzag_scan();
  for (int i = 0; i < 64; ++i) {
    m[scan[i]] = static_cast<std::uint8_t>(br.get(8));
  }
}

void write_matrix(BitWriter& bw, const std::array<std::uint8_t, 64>& m) {
  const auto& scan = zigzag_scan();
  for (int i = 0; i < 64; ++i) bw.put(m[scan[i]], 8);
}

}  // namespace

double SequenceHeader::frame_rate() const {
  switch (frame_rate_code) {
    case 1: return 24000.0 / 1001.0;
    case 2: return 24.0;
    case 3: return 25.0;
    case 4: return 30000.0 / 1001.0;
    case 5: return 30.0;
    case 6: return 50.0;
    case 7: return 60000.0 / 1001.0;
    case 8: return 60.0;
    default: return 30.0;
  }
}

bool parse_sequence_header(BitReader& br, SequenceHeader& out) {
  out.horizontal_size = static_cast<int>(br.get(12));
  out.vertical_size = static_cast<int>(br.get(12));
  out.aspect_ratio_code = static_cast<int>(br.get(4));
  out.frame_rate_code = static_cast<int>(br.get(4));
  const std::int64_t bit_rate_value = br.get(18);
  if (br.get_bit() != 1) return false;  // marker
  out.bit_rate = bit_rate_value * 400;
  out.vbv_buffer_size_value = static_cast<int>(br.get(10));
  out.constrained_parameters = br.get_bit() != 0;
  out.load_intra_matrix = br.get_bit() != 0;
  if (out.load_intra_matrix) {
    read_matrix(br, out.intra_matrix);
  } else {
    out.intra_matrix = default_intra_matrix();
  }
  out.load_non_intra_matrix = br.get_bit() != 0;
  if (out.load_non_intra_matrix) {
    read_matrix(br, out.non_intra_matrix);
  } else {
    out.non_intra_matrix = default_non_intra_matrix();
  }
  return !br.overrun();
}

bool parse_gop_header(BitReader& br, GopHeader& out) {
  out.time_code = br.get(25);
  out.closed_gop = br.get_bit() != 0;
  out.broken_link = br.get_bit() != 0;
  return !br.overrun();
}

bool parse_picture_header(BitReader& br, PictureHeader& out) {
  out.temporal_reference = static_cast<int>(br.get(10));
  const int type = static_cast<int>(br.get(3));
  if (type < 1 || type > 3) return false;  // D-pictures unsupported (MPEG-2)
  out.type = static_cast<PictureType>(type);
  out.vbv_delay = static_cast<int>(br.get(16));
  // MPEG-1 motion fields; MPEG-2 streams fix them to 0 / '111'.
  if (out.type == PictureType::kP || out.type == PictureType::kB) {
    out.full_pel_forward = br.get_bit() != 0;
    out.forward_f_code = static_cast<int>(br.get(3));
  }
  if (out.type == PictureType::kB) {
    out.full_pel_backward = br.get_bit() != 0;
    out.backward_f_code = static_cast<int>(br.get(3));
  }
  while (br.get_bit() == 1) br.skip(8);  // extra_information_picture
  return !br.overrun();
}

bool parse_extension(BitReader& br, SequenceExtension* seq,
                     PictureCodingExtension* pce) {
  const int id = static_cast<int>(br.get(4));
  if (id == kExtIdSequence && seq) {
    seq->profile_and_level = static_cast<int>(br.get(8));
    seq->progressive_sequence = br.get_bit() != 0;
    seq->chroma_format = static_cast<int>(br.get(2));
    const int h_ext = static_cast<int>(br.get(2));
    const int v_ext = static_cast<int>(br.get(2));
    const int rate_ext = static_cast<int>(br.get(12));
    if (br.get_bit() != 1) return false;  // marker
    br.skip(8);                           // vbv_buffer_size_extension
    seq->low_delay = br.get_bit() != 0;
    seq->frame_rate_ext_n = static_cast<int>(br.get(2));
    seq->frame_rate_ext_d = static_cast<int>(br.get(5));
    // The size/bit-rate extensions carry the high-order bits; the caller's
    // SequenceHeader was parsed first, so fold them in via out-params is
    // not possible here — extensions with non-zero values are rejected
    // instead (our encoder never emits them; sizes fit in 12 bits).
    if (h_ext != 0 || v_ext != 0 || rate_ext != 0) return false;
    return !br.overrun();
  }
  if (id == kExtIdPictureCoding && pce) {
    for (auto& row : pce->f_code) {
      for (auto& f : row) f = static_cast<int>(br.get(4));
    }
    pce->intra_dc_precision = static_cast<int>(br.get(2));
    pce->picture_structure = static_cast<int>(br.get(2));
    pce->top_field_first = br.get_bit() != 0;
    pce->frame_pred_frame_dct = br.get_bit() != 0;
    pce->concealment_motion_vectors = br.get_bit() != 0;
    pce->q_scale_type = br.get_bit() != 0;
    pce->intra_vlc_format = br.get_bit() != 0;
    pce->alternate_scan = br.get_bit() != 0;
    pce->repeat_first_field = br.get_bit() != 0;
    pce->chroma_420_type = br.get_bit() != 0;
    pce->progressive_frame = br.get_bit() != 0;
    if (br.get_bit() != 0) br.skip(20);  // composite display information
    return !br.overrun();
  }
  // Unknown extension: skip to the next startcode.
  br.align_to_next_startcode();
  return true;
}

void write_sequence_header(BitWriter& bw, const SequenceHeader& h) {
  bw.put_startcode(0xB3);
  bw.put(static_cast<std::uint32_t>(h.horizontal_size), 12);
  bw.put(static_cast<std::uint32_t>(h.vertical_size), 12);
  bw.put(static_cast<std::uint32_t>(h.aspect_ratio_code), 4);
  bw.put(static_cast<std::uint32_t>(h.frame_rate_code), 4);
  const std::int64_t units = (h.bit_rate + 399) / 400;
  bw.put(static_cast<std::uint32_t>(units & 0x3FFFF), 18);
  bw.put_bit(1);  // marker
  bw.put(static_cast<std::uint32_t>(h.vbv_buffer_size_value), 10);
  bw.put_bit(h.constrained_parameters);
  bw.put_bit(h.load_intra_matrix);
  if (h.load_intra_matrix) write_matrix(bw, h.intra_matrix);
  bw.put_bit(h.load_non_intra_matrix);
  if (h.load_non_intra_matrix) write_matrix(bw, h.non_intra_matrix);
}

void write_sequence_extension(BitWriter& bw, const SequenceHeader& h,
                              const SequenceExtension& e) {
  (void)h;  // sizes/bit rate fit the base header fields in this library
  bw.put_startcode(0xB5);
  bw.put(kExtIdSequence, 4);
  bw.put(static_cast<std::uint32_t>(e.profile_and_level), 8);
  bw.put_bit(e.progressive_sequence);
  bw.put(static_cast<std::uint32_t>(e.chroma_format), 2);
  bw.put(0, 2);   // horizontal_size_extension
  bw.put(0, 2);   // vertical_size_extension
  bw.put(0, 12);  // bit_rate_extension
  bw.put_bit(1);  // marker
  bw.put(0, 8);   // vbv_buffer_size_extension
  bw.put_bit(e.low_delay);
  bw.put(static_cast<std::uint32_t>(e.frame_rate_ext_n), 2);
  bw.put(static_cast<std::uint32_t>(e.frame_rate_ext_d), 5);
}

void write_gop_header(BitWriter& bw, const GopHeader& h) {
  bw.put_startcode(0xB8);
  bw.put(h.time_code, 25);
  bw.put_bit(h.closed_gop);
  bw.put_bit(h.broken_link);
}

void write_picture_header(BitWriter& bw, const PictureHeader& h) {
  bw.put_startcode(0x00);
  bw.put(static_cast<std::uint32_t>(h.temporal_reference), 10);
  bw.put(static_cast<std::uint32_t>(h.type), 3);
  bw.put(static_cast<std::uint32_t>(h.vbv_delay), 16);
  if (h.type == PictureType::kP || h.type == PictureType::kB) {
    bw.put_bit(h.full_pel_forward);
    bw.put(static_cast<std::uint32_t>(h.forward_f_code), 3);
  }
  if (h.type == PictureType::kB) {
    bw.put_bit(h.full_pel_backward);
    bw.put(static_cast<std::uint32_t>(h.backward_f_code), 3);
  }
  bw.put_bit(0);  // no extra_information_picture
}

void write_picture_coding_extension(BitWriter& bw,
                                    const PictureCodingExtension& e) {
  bw.put_startcode(0xB5);
  bw.put(kExtIdPictureCoding, 4);
  for (const auto& row : e.f_code) {
    for (const int f : row) bw.put(static_cast<std::uint32_t>(f), 4);
  }
  bw.put(static_cast<std::uint32_t>(e.intra_dc_precision), 2);
  bw.put(static_cast<std::uint32_t>(e.picture_structure), 2);
  bw.put_bit(e.top_field_first);
  bw.put_bit(e.frame_pred_frame_dct);
  bw.put_bit(e.concealment_motion_vectors);
  bw.put_bit(e.q_scale_type);
  bw.put_bit(e.intra_vlc_format);
  bw.put_bit(e.alternate_scan);
  bw.put_bit(e.repeat_first_field);
  bw.put_bit(e.chroma_420_type);
  bw.put_bit(e.progressive_frame);
  bw.put_bit(0);  // composite_display_flag
}

}  // namespace pmp2::mpeg2
