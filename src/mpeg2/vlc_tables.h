// Variable-length-code tables of ISO/IEC 13818-2 Annex B, plus a generic
// table-driven Huffman decoder used for all of them.
//
// Tables provided:
//   B-1   macroblock_address_increment
//   B-2/3/4  macroblock_type for I/P/B pictures
//   B-9   coded_block_pattern (4:2:0)
//   B-10  motion_code
//   B-12  dct_dc_size_luminance
//   B-13  dct_dc_size_chrominance
//   B-14  DCT coefficients, table zero
//   B-15  DCT coefficients, table one (intra_vlc_format = 1)
//
// Note on Table B-15: the short-code assignments are a reconstruction (see
// DESIGN.md); prefix-freeness and encoder/decoder agreement are enforced by
// construction-time checks and unit tests, and the encoder falls back to
// escape coding for any (run, level) pair without a code, so generated
// streams always round-trip. Table B-14 follows the standard exactly.
//
// Sign bits: DCT-coefficient and motion-code signs are separate bits in the
// syntax; the entries here describe codes *without* the sign bit except for
// Table B-10, which stores fully signed motion codes (-16..16).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "bitstream/bit_reader.h"
#include "bitstream/bit_writer.h"

namespace pmp2::mpeg2 {

/// One Huffman code: `len` bits, value `code` (MSB-first, right-aligned).
/// `code` is 32-bit so sign-folded DCT entries (17 bits, see
/// dct_signed_entries) fit alongside the standard's 16-bit codes.
struct VlcEntry {
  std::uint32_t code;
  std::uint8_t len;
  std::int16_t value;
};

/// Special `value`s used by the DCT tables and B-1.
constexpr std::int16_t kVlcEob = -1;       // end_of_block
constexpr std::int16_t kVlcEscape = -2;    // escape
constexpr std::int16_t kVlcStuffing = -3;  // macroblock_stuffing (MPEG-1)

/// Packs a DCT (run, level) pair into a VlcEntry value. level is 1..40.
[[nodiscard]] constexpr std::int16_t pack_run_level(int run, int level) {
  return static_cast<std::int16_t>(run * 64 + level);
}
[[nodiscard]] constexpr int unpack_run(std::int16_t v) { return v >> 6; }
[[nodiscard]] constexpr int unpack_level(std::int16_t v) { return v & 63; }

/// Packs a *signed* DCT (run, level) pair, for the sign-folded coefficient
/// tables (dct_signed_entries): run 0..31, level -40..40 and nonzero. The
/// +64 bias keeps the packed value positive, clear of the negative
/// kVlcEob/kVlcEscape markers.
[[nodiscard]] constexpr std::int16_t pack_signed_run_level(int run,
                                                           int level) {
  return static_cast<std::int16_t>(run * 128 + level + 64);
}
[[nodiscard]] constexpr int unpack_signed_run(std::int16_t v) {
  return v >> 7;
}
[[nodiscard]] constexpr int unpack_signed_level(std::int16_t v) {
  return (v & 127) - 64;
}

/// Table-driven prefix-code decoder. Builds a flat lookup of size
/// 2^max_len at construction; every slot covered by a code stores
/// (value, len), uncovered slots store len = 0 (invalid code).
class VlcDecoder {
 public:
  explicit VlcDecoder(std::span<const VlcEntry> entries);
  ~VlcDecoder();
  VlcDecoder(const VlcDecoder&) = delete;
  VlcDecoder& operator=(const VlcDecoder&) = delete;

  struct Result {
    std::int16_t value;
    std::uint8_t len;  // 0 => invalid bit pattern
  };

  /// Looks up `max_len()` peeked bits.
  [[nodiscard]] Result lookup(std::uint32_t peeked) const {
    return table_[peeked];
  }

  [[nodiscard]] int max_len() const { return max_len_; }

  /// Decodes one symbol from the reader. Returns false on an invalid code
  /// (reader position is then unspecified; callers abort the slice, as a
  /// real decoder does on a corrupt stream).
  bool decode(BitReader& br, std::int16_t& value) const {
    const Result r = lookup(br.peek(max_len_));
    if (r.len == 0) return false;
    br.skip(r.len);
    value = r.value;
    return true;
  }

 private:
  Result* table_;  // owned, size 1 << max_len_
  int max_len_;
};

/// Two-level prefix-code decoder: an N-bit primary table resolves all short
/// codes directly and points long-code prefixes at per-prefix secondary
/// tables. Far smaller than the flat table for the 16-bit DCT tables
/// (~3 KB vs 256 KB) at the cost of a second lookup on long codes; decode
/// results are bit-identical to VlcDecoder (tested exhaustively).
class TwoLevelVlcDecoder {
 public:
  explicit TwoLevelVlcDecoder(std::span<const VlcEntry> entries,
                              int primary_bits = 8);

  using Result = VlcDecoder::Result;

  /// Looks up `max_len()` peeked bits (same contract as VlcDecoder).
  [[nodiscard]] Result lookup(std::uint32_t peeked) const {
    const std::uint32_t p =
        max_len_ > primary_bits_ ? peeked >> (max_len_ - primary_bits_)
                                 : peeked << (primary_bits_ - max_len_);
    const Slot slot = primary_[p];
    if (slot.len != 0 || slot.secondary < 0) {
      return {slot.value, slot.len};
    }
    const std::uint32_t rest =
        peeked & ((1u << (max_len_ - primary_bits_)) - 1);
    return secondary_[static_cast<std::size_t>(slot.secondary) + rest];
  }

  [[nodiscard]] int max_len() const { return max_len_; }

  bool decode(BitReader& br, std::int16_t& value) const {
    const Result r = lookup(br.peek(max_len_));
    if (r.len == 0) return false;
    br.skip(r.len);
    value = r.value;
    return true;
  }

  /// Total bytes of lookup storage (for the memory ablation).
  [[nodiscard]] std::size_t table_bytes() const;

 private:
  struct Slot {
    std::int16_t value = 0;
    std::uint8_t len = 0;      // > 0: direct hit
    std::int32_t secondary = -1;  // >= 0: offset into secondary_
  };
  std::vector<Slot> primary_;
  std::vector<Result> secondary_;
  int primary_bits_;
  int max_len_;
};

// --- Entry lists (exposed for exhaustive round-trip tests) ---------------
[[nodiscard]] std::span<const VlcEntry> mb_addr_inc_entries();     // B-1
[[nodiscard]] std::span<const VlcEntry> mb_type_i_entries();       // B-2
[[nodiscard]] std::span<const VlcEntry> mb_type_p_entries();       // B-3
[[nodiscard]] std::span<const VlcEntry> mb_type_b_entries();       // B-4
[[nodiscard]] std::span<const VlcEntry> coded_block_pattern_entries();  // B-9
[[nodiscard]] std::span<const VlcEntry> motion_code_entries();     // B-10
[[nodiscard]] std::span<const VlcEntry> dct_dc_size_luma_entries();    // B-12
[[nodiscard]] std::span<const VlcEntry> dct_dc_size_chroma_entries();  // B-13
[[nodiscard]] std::span<const VlcEntry> dct_table_zero_entries();  // B-14
[[nodiscard]] std::span<const VlcEntry> dct_table_one_entries();   // B-15

/// Sign-folded DCT coefficient tables: every (run, level) entry of B-14/B-15
/// is expanded into two codes with the sign bit appended ({code·0, len+1,
/// +level} and {code·1, len+1, -level}, values packed with
/// pack_signed_run_level), so the hot block-decode loop resolves run, level
/// *and* sign in a single lookup. EOB/escape entries are unchanged, so the
/// set accepts exactly the same bitstrings as table + explicit sign bit.
[[nodiscard]] std::span<const VlcEntry> dct_signed_entries(bool table_one);

// --- Shared decoder instances (built on first use, immutable after) ------
[[nodiscard]] const VlcDecoder& mb_addr_inc_decoder();
[[nodiscard]] const VlcDecoder& mb_type_decoder(int picture_coding_type);
[[nodiscard]] const VlcDecoder& coded_block_pattern_decoder();
[[nodiscard]] const VlcDecoder& motion_code_decoder();
[[nodiscard]] const VlcDecoder& dct_dc_size_luma_decoder();
[[nodiscard]] const VlcDecoder& dct_dc_size_chroma_decoder();
[[nodiscard]] const VlcDecoder& dct_table_decoder(bool table_one);

/// Decoder over dct_signed_entries used by the slice decoder's coefficient
/// loop. The flat table won the bench_micro_kernels VLC shoot-out (single
/// load vs the two-level decoder's dependent second load on long codes), so
/// the alias picks VlcDecoder; flip it to TwoLevelVlcDecoder to trade the
/// 2^17-slot table (512 KB) for ~5 KB at a small decode cost.
using DctCoeffDecoder = VlcDecoder;
[[nodiscard]] const DctCoeffDecoder& dct_coeff_decoder(bool table_one);

// --- Encoder-side code maps ----------------------------------------------
/// A code to emit: low `len` bits of `bits`, MSB-first. len == 0 means "no
/// code exists" (DCT tables: use escape coding).
struct Code {
  std::uint32_t bits = 0;
  std::uint8_t len = 0;

  void put(BitWriter& bw) const { bw.put(bits, len); }
};

[[nodiscard]] Code encode_mb_addr_inc(int increment);     // 1..33
[[nodiscard]] Code encode_mb_type(int picture_coding_type,
                                  std::uint8_t flags);
[[nodiscard]] Code encode_coded_block_pattern(int cbp);   // 0..63
[[nodiscard]] Code encode_motion_code(int code);          // -16..16
[[nodiscard]] Code encode_dct_dc_size(bool luma, int size);  // 0..11
/// Returns the (run, level) code *without* sign; len == 0 => escape needed.
[[nodiscard]] Code encode_dct_run_level(bool table_one, int run, int level);
[[nodiscard]] Code dct_eob_code(bool table_one);
[[nodiscard]] Code dct_escape_code();

}  // namespace pmp2::mpeg2
